package rlckit

// This file is the public facade of the module: it re-exports the key
// types and entry points from the internal packages via aliases and thin
// wrappers, so downstream users can `import "rlckit"` without reaching
// into internal/ (which Go forbids). Power users inside this module can
// keep using the internal packages directly; both views are the same
// types.

import (
	"context"

	"rlckit/internal/core"
	"rlckit/internal/elmore"
	"rlckit/internal/mor"
	"rlckit/internal/netgen"
	"rlckit/internal/refeng"
	"rlckit/internal/repeater"
	"rlckit/internal/report"
	"rlckit/internal/rlctree"
	"rlckit/internal/screen"
	"rlckit/internal/session"
	"rlckit/internal/sweep"
	"rlckit/internal/tech"
	"rlckit/internal/tline"
)

// Version identifies the module build; cmd/rlckitd reports it from
// /healthz and expvar.
const Version = "0.3.0"

// Line is a uniform distributed RLC interconnect (per-unit-length R, L,
// C plus a length). See tline.Line.
type Line = tline.Line

// Drive is the paper's gate model: driver resistance Rtr, load
// capacitance CL, step amplitude V. See tline.Drive.
type Drive = tline.Drive

// Params are the canonical dimensionless parameters (RT, CT, ζ, ωn).
type Params = core.Params

// Buffer characterizes a technology's minimum repeater (R0, C0, Amin,
// Vdd). See repeater.Buffer.
type Buffer = repeater.Buffer

// RepeaterPlan is a complete repeater insertion design.
type RepeaterPlan = repeater.Plan

// TechNode is a technology node's device and wire parameters.
type TechNode = tech.Node

// ScreenResult is an inductance-significance verdict for one net.
type ScreenResult = screen.Result

// LineFromTotals builds a Line of the given length (meters) from total
// impedances Rt (Ω), Lt (H), Ct (F).
func LineFromTotals(rt, lt, ct, length float64) Line {
	return tline.FromTotals(rt, lt, ct, length)
}

// Analyze computes RT, CT, ζ and ωn for a driven line (Eqs. 3, 5, 6).
func Analyze(ln Line, d Drive) (Params, error) {
	return core.Analyze(ln, d)
}

// Delay returns the paper's closed-form 50% propagation delay (Eq. 9).
func Delay(ln Line, d Drive) (float64, error) {
	return core.Delay(ln, d)
}

// DelaySimulated returns the reference delay from the exact
// transmission-line transfer function, numerically inverted — the
// module's stand-in for a dynamic circuit simulation.
func DelaySimulated(ln Line, d Drive) (float64, error) {
	return refeng.DelayExactTF(ln, d, 0)
}

// DelayAuto returns Eq. 9 when the configuration is inside the model's
// validated accuracy domain and falls back to the exact engine
// otherwise; the boolean reports whether the closed form was used.
func DelayAuto(ln Line, d Drive) (float64, bool, error) {
	v, m, err := refeng.DelaySmart(ln, d)
	return v, m == refeng.MethodEq9, err
}

// MORInfo is a reduced-order model's certification metadata: the
// reduced order q, the full order it replaced, and the validated
// worst-case transfer-function error (percent of the response peak).
type MORInfo = mor.Info

// DelayReduced returns the 50% delay measured on a Krylov reduced-order
// model of the driven line (internal/mor): the ladder is reduced once
// to a certified q×q model and the delay read from its q²-per-step
// transient. It returns an error — rather than a degraded number —
// when the reduction cannot be certified; DelaySimulated is the
// canonical fallback (cmd/rlckitd's "reduced" method does exactly
// that and reports which engine answered).
func DelayReduced(ln Line, d Drive) (float64, MORInfo, error) {
	return refeng.DelayReduced(ln, d, refeng.ReducedConfig{})
}

// DelayReducedCtx is DelayReduced bounded by ctx: the Arnoldi build and
// the reduced transient check the context at amortized checkpoints and
// return an error wrapping the typed internal cancellation sentinels
// once it is done. SweepConfig.Ctx and TreeConfig.Ctx provide the same
// control for sweeps and tree analyses.
func DelayReducedCtx(ctx context.Context, ln Line, d Drive) (float64, MORInfo, error) {
	return refeng.DelayReduced(ln, d, refeng.ReducedConfig{Ctx: ctx})
}

// DelayRCOnly returns Sakurai's RC-only 50% delay — what a classic
// timing flow would report if it ignored inductance.
func DelayRCOnly(ln Line, d Drive) float64 {
	rt, _, ct := ln.Totals()
	return elmore.Sakurai50(rt, ct, d.Rtr, d.CL)
}

// DesignRepeaters returns the paper's inductance-aware repeater plan
// (Eqs. 14/15) for the line with the given minimum buffer.
func DesignRepeaters(ln Line, b Buffer) (RepeaterPlan, error) {
	return repeater.Design(ln, b, repeater.RLC)
}

// DesignRepeatersRC returns the classic RC-only (Bakoglu) plan — the
// baseline whose extra delay/area/energy the paper quantifies.
func DesignRepeatersRC(ln Line, b Buffer) (RepeaterPlan, error) {
	return repeater.Design(ln, b, repeater.RC)
}

// NeedsInductance screens a driven net: does RC-only analysis suffice,
// or is the net inside the inductance-significant window (or
// underdamped) for the given input rise time?
func NeedsInductance(ln Line, d Drive, riseTime float64) (ScreenResult, error) {
	return screen.Check(ln, d, riseTime)
}

// Technology returns a built-in technology node by name ("500nm",
// "350nm", "250nm", "180nm", "130nm").
func Technology(name string) (TechNode, error) {
	return tech.Lookup(name)
}

// Technologies lists the built-in node names.
func Technologies() []string {
	return tech.Names()
}

// Net is one named driven interconnect instance — the unit of a sweep
// population. See netgen.Net.
type Net = netgen.Net

// SweepConfig tunes a chip-scale sweep: rise time for screening,
// technology corners, Monte Carlo variation, worker count, optional
// repeater analysis. See sweep.Config.
type SweepConfig = sweep.Config

// SweepCorner is a named technology corner (scale factors on wire
// parasitics and driver strength).
type SweepCorner = sweep.Corner

// SweepMonteCarlo configures seeded process-variation sampling.
type SweepMonteCarlo = sweep.MonteCarlo

// SweepEstimator selects the per-sample delay engine of a sweep.
type SweepEstimator = sweep.Estimator

// Sweep estimators: the closed form (default), the guarded closed form
// (exact outside its accuracy domain), the exact engine for every
// sample, and the Krylov reduced-order engine (one certified basis per
// net, every corner/draw recombined through it; exact fallback).
const (
	SweepEstimatorClosed    = sweep.EstimatorClosed
	SweepEstimatorSmart     = sweep.EstimatorSmart
	SweepEstimatorSimulated = sweep.EstimatorSimulated
	SweepEstimatorReduced   = sweep.EstimatorReduced
)

// SweepResult is a completed sweep: per-sample records plus population
// statistics (percentiles, screening fractions, RC-vs-RLC error
// distributions).
type SweepResult = sweep.Result

// SweepSummary is a population statistic distribution (min/max, mean,
// percentiles). See report.Summary.
type SweepSummary = report.Summary

// ScreenStats tallies screening verdicts over a population.
type ScreenStats = screen.Stats

// SweepDelays runs delay, screening and (optionally) repeater analysis
// over a population of nets × corners × Monte Carlo samples on a
// bounded worker pool. Results are deterministic for a given seed
// regardless of worker count.
func SweepDelays(nets []Net, cfg SweepConfig) (*SweepResult, error) {
	return sweep.Run(nets, cfg)
}

// DefaultCorners returns the standard typical/fast/slow corner set.
func DefaultCorners() []SweepCorner {
	return sweep.DefaultCorners()
}

// RandomNets draws n reproducible random driven nets at a technology
// node — the standard way to build a sweep population. The same seed
// yields byte-identical nets at any GOMAXPROCS setting.
func RandomNets(seed int64, node TechNode, n int) ([]Net, error) {
	return netgen.RandomBatch(seed, node, n)
}

// RLCTree is a multi-sink lumped RLC interconnect tree — a clock tree
// or routed fanout net. Build with NewTree / Tree.Add / Tree.MarkSink.
// See rlctree.Tree.
type RLCTree = rlctree.Tree

// TreeDrive is the gate driving a tree root: a step of V volts behind
// resistance Rtr (sink loads live on the tree's sinks).
type TreeDrive = rlctree.Drive

// TreeEngine selects the per-sink tree delay engine.
type TreeEngine = rlctree.Engine

// Tree delay engines: the moment/two-pole closed form, one shared MNA
// transient with every sink probed, and a multi-output Krylov reduced
// model with exact fallback.
const (
	TreeEngineClosed  = rlctree.EngineClosed
	TreeEngineMNA     = rlctree.EngineMNA
	TreeEngineReduced = rlctree.EngineReduced
)

// TreeConfig tunes AnalyzeTree. The zero value selects the closed-form
// engine with default resolutions.
type TreeConfig = rlctree.Config

// TreeResult is a completed tree analysis: the per-sink delay table
// (delay, RC-only counterfactual, moments, ζ/ωn), the sink-to-sink
// skew, and the RC-vs-RLC skew error.
type TreeResult = rlctree.Result

// TreeNet is one named driven tree instance — the unit of a tree sweep
// population. See netgen.TreeNet.
type TreeNet = netgen.TreeNet

// TreeKind selects a RandomTrees topology family (balanced binary,
// random unbalanced fanout, or H-tree clock distribution).
type TreeKind = netgen.TreeKind

// Tree topology families.
const (
	TreeKindBalanced   = netgen.TreeBalanced
	TreeKindUnbalanced = netgen.TreeUnbalanced
	TreeKindClockH     = netgen.TreeClockH
)

// TreeSweepResult is a completed tree population sweep: per-sample
// skew records plus population statistics.
type TreeSweepResult = sweep.TreeResult

// NewTree returns an RLC tree with a single root node (the driver
// output net) of capacitance cRoot.
func NewTree(cRoot float64) (*RLCTree, error) {
	return rlctree.New(cRoot)
}

// AnalyzeTree computes per-sink 50% delays and sink-to-sink skew of a
// driven multi-sink tree with the configured engine. All sinks of the
// simulation engines come from one shared solve — analyzing a 64-sink
// tree costs one transient, not 64.
func AnalyzeTree(t *RLCTree, d TreeDrive, cfg TreeConfig) (*TreeResult, error) {
	return rlctree.Analyze(t, d, cfg)
}

// Session is an open what-if analysis over a tree: stream value edits
// with Session.Apply, read updated per-sink delays with
// Session.Result. Edits re-use state frozen at open time (moment
// workspaces, the MNA ordering, the certified Krylov basis), so an
// edit-and-reanalyze loop runs an order of magnitude faster than
// re-running AnalyzeTree from scratch. The closed and MNA engines are
// bit-identical to a cold AnalyzeTree of the edited tree; the reduced
// engine answers through the frozen certified basis (exact fallback
// when an edit leaves its envelope and re-certification fails). See
// internal/session.
type Session = session.Session

// SessionEdit is one what-if edit (ops SessionOpBranch /
// SessionOpLoad / SessionOpDriver).
type SessionEdit = session.Edit

// SessionStats counts a session's fast-path decisions.
type SessionStats = session.Stats

// Session edit ops.
const (
	SessionOpBranch = session.OpBranch
	SessionOpLoad   = session.OpLoad
	SessionOpDriver = session.OpDriver
)

// OpenSession starts a what-if session over a copy of the tree.
// cfg.Engine is ignored; each Result call names its engine.
func OpenSession(t *RLCTree, d TreeDrive, cfg TreeConfig) (*Session, error) {
	return session.Open(t, d, cfg)
}

// SweepTreeDelays runs delay and skew analysis over a population of
// trees × corners × Monte Carlo samples on the shared worker pool.
// Results are deterministic for a given seed at every worker count.
func SweepTreeDelays(trees []TreeNet, cfg SweepConfig) (*TreeSweepResult, error) {
	return sweep.RunTrees(trees, cfg)
}

// RandomTrees draws n reproducible random multi-sink trees of the
// given topology family at a technology node. The same seed yields
// byte-identical trees at any GOMAXPROCS setting.
func RandomTrees(seed int64, node TechNode, kind TreeKind, sinks, n int) ([]TreeNet, error) {
	return netgen.RandomTreeBatch(seed, node, kind, sinks, n)
}
