package refeng

import (
	"math"
	"testing"

	"rlckit/internal/tline"
)

// table1Case builds a paper-Table-1 style configuration: Ct = 1 pF,
// Rtr = 500 Ω, with RT = Rtr/Rt and CT = CL/Ct selecting Rt and CL.
func table1Case(rT, cT, lt float64) (tline.Line, tline.Drive) {
	const (
		rtr = 500.0
		ct  = 1e-12
		l   = 0.01
	)
	rt := rtr / rT
	cl := cT * ct
	return tline.FromTotals(rt, lt, ct, l), tline.Drive{Rtr: rtr, CL: cl}
}

func TestPureRCDelayMatchesSakurai(t *testing.T) {
	// With negligible inductance, tiny driver and no load, the 50% delay
	// of a distributed RC line is 0.377·Rt·Ct (Sakurai). Lt is chosen
	// small enough to be irrelevant but present (the model needs L > 0).
	ln := tline.FromTotals(1000, 1e-12, 1e-12, 0.01)
	d := tline.Drive{Rtr: 1e-3, CL: 0}
	got, err := DelayExactTF(ln, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.377 * 1000 * 1e-12
	if math.Abs(got-want) > 0.01*want {
		t.Errorf("distributed RC delay = %.4g, want %.4g", got, want)
	}
}

func TestLumpedRCDelayKnown(t *testing.T) {
	// Rtr ≫ Rt turns the system into a lumped RC: delay = ln2·Rtr·(Ct+CL).
	ln := tline.FromTotals(1, 1e-12, 1e-12, 0.01)
	d := tline.Drive{Rtr: 5000, CL: 5e-13}
	want := math.Ln2 * 5000 * 1.5e-12
	got, err := DelayExactTF(ln, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("lumped RC delay = %.4g, want %.4g", got, want)
	}
}

func TestLosslessLineTimeOfFlight(t *testing.T) {
	// R → 0, no driver, no load: delay = time of flight l√(LC).
	ln := tline.FromTotals(1e-3, 1e-7, 1e-12, 0.01)
	d := tline.Drive{Rtr: 1e-3, CL: 0}
	want := math.Sqrt(1e-7 * 1e-12)
	got, err := DelayExactTF(ln, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("LC delay = %.4g, want time of flight %.4g", got, want)
	}
}

func TestEnginesAgreeOverdamped(t *testing.T) {
	// Table-1-like RC-dominated case: RT=0.5, CT=0.5, Lt=1e-8 H.
	ln, d := table1Case(0.5, 0.5, 1e-8)
	a, err := Validate(ln, d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spread > 0.01 {
		t.Errorf("engines disagree: %+v", a)
	}
}

func TestEnginesAgreeUnderdamped(t *testing.T) {
	// Strongly inductive case: RT=1, CT=0.1, Lt=1e-6 H.
	ln, d := table1Case(1, 0.1, 1e-6)
	a, err := Validate(ln, d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spread > 0.01 {
		t.Errorf("engines disagree: %+v", a)
	}
}

func TestEnginesAgreeModerate(t *testing.T) {
	// Middle of Table 1: RT=0.5, CT=1.0, Lt=1e-7 H.
	ln, d := table1Case(0.5, 1.0, 1e-7)
	a, err := Validate(ln, d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spread > 0.01 {
		t.Errorf("engines disagree: %+v", a)
	}
}

func TestDelayMNAValidation(t *testing.T) {
	ln, d := table1Case(0.5, 0.5, 1e-8)
	if _, err := DelayMNA(tline.Line{}, d, MNAConfig{}); err == nil {
		t.Error("bad line accepted")
	}
	if _, err := DelayMNA(ln, tline.Drive{Rtr: -1}, MNAConfig{}); err == nil {
		t.Error("bad drive accepted")
	}
}

func TestDelayRatfunValidation(t *testing.T) {
	_, d := table1Case(0.5, 0.5, 1e-8)
	if _, err := DelayRatfun(tline.Line{}, d, RatfunConfig{}); err == nil {
		t.Error("bad line accepted")
	}
	ln, _ := table1Case(0.5, 0.5, 1e-8)
	if _, err := DelayRatfun(ln, tline.Drive{CL: -1}, RatfunConfig{}); err == nil {
		t.Error("bad drive accepted")
	}
}

func TestMNAStyleConvergence(t *testing.T) {
	// Pi and Tee ladders must converge to the same delay.
	ln, d := table1Case(1, 0.5, 1e-7)
	dpi, err := DelayMNA(ln, d, MNAConfig{Segments: 100, Style: tline.Pi})
	if err != nil {
		t.Fatal(err)
	}
	dtee, err := DelayMNA(ln, d, MNAConfig{Segments: 100, Style: tline.Tee})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dpi-dtee) > 0.01*dpi {
		t.Errorf("Pi %.4g vs Tee %.4g", dpi, dtee)
	}
}

func TestMNASegmentRefinementConverges(t *testing.T) {
	// Property: doubling segments must change the answer by less than the
	// coarse-grid discretization error, and the sequence must approach
	// the exact-TF value.
	ln, d := table1Case(0.5, 0.5, 1e-7)
	exact, err := DelayExactTF(ln, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, n := range []int{20, 60, 180} {
		got, err := DelayMNA(ln, d, MNAConfig{Segments: n})
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(got-exact) / exact
		if e > prevErr*1.2 {
			t.Errorf("n=%d error %.4g did not shrink (prev %.4g)", n, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 5e-3 {
		t.Errorf("finest ladder still off by %.3g", prevErr)
	}
}

func TestTimeScalingLawExact(t *testing.T) {
	// Paper Eq. 8: the scaled delay t′pd depends only on (ζ, RT, CT) —
	// "no approximations have been made in deriving this result". The
	// transformation Lt → a²·Lt, (Rt, Rtr) → a·(Rt, Rtr) leaves RT, CT
	// and ζ unchanged while scaling 1/ωn by a, so the physical delay
	// must scale exactly by a. Verified with the exact-TF engine.
	base := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	drive := tline.Drive{Rtr: 500, CL: 5e-13}
	d0, err := DelayExactTF(base, drive, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []float64{0.5, 2, 7} {
		rt, lt, ct := base.Totals()
		scaled := tline.FromTotals(a*rt, a*a*lt, ct, 0.01)
		sd := tline.Drive{Rtr: a * drive.Rtr, CL: drive.CL}
		d, err := DelayExactTF(scaled, sd, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-a*d0) > 2e-3*a*d0 {
			t.Errorf("a=%g: delay %g, want %g (law violated by %.3f%%)",
				a, d, a*d0, 100*math.Abs(d-a*d0)/(a*d0))
		}
	}
}

func TestImpedanceScalingLawExact(t *testing.T) {
	// Companion law: scaling all impedances (R → bR, L → bL, C → C/b)
	// leaves every delay unchanged (pure impedance-level change).
	base := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	drive := tline.Drive{Rtr: 500, CL: 5e-13}
	d0, err := DelayExactTF(base, drive, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []float64{0.25, 3} {
		rt, lt, ct := base.Totals()
		scaled := tline.FromTotals(b*rt, b*lt, ct/b, 0.01)
		sd := tline.Drive{Rtr: b * drive.Rtr, CL: drive.CL / b}
		d, err := DelayExactTF(scaled, sd, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-d0) > 2e-3*d0 {
			t.Errorf("b=%g: delay %g, want %g", b, d, d0)
		}
	}
}

func TestPlateauRegimeCharacterization(t *testing.T) {
	// Characterization: with RT ≈ 1, CT ≪ 1 and ζ just below critical,
	// the step response plateaus near V/2 between reflections, so the
	// 50% delay is ill-conditioned — the three engines legitimately
	// spread several percent here (vs <1% elsewhere), and Eq. 9's error
	// peaks. This test pins the behaviour so regressions (or fixes that
	// accidentally "break" it back to agreement) are visible.
	ln := tline.FromTotals(500, 1.72e-7, 1e-12, 0.0054)
	d := tline.Drive{Rtr: 500, CL: 5e-14}
	a, err := Validate(ln, d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spread > 0.12 {
		t.Errorf("plateau spread blew up: %+v", a)
	}
	if a.Spread < 0.005 {
		t.Logf("note: plateau regime now agrees tightly (%+v) — measurement conditioning improved", a)
	}
	// The waveform really does plateau: the MNA response spends a long
	// interval within a few percent of V/2.
	lad, err := tline.BuildLadder(ln, d, 120, tline.Pi, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	tof := ln.TimeOfFlight()
	res, err := mnaSimulate(lad, 30*tof)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(lad.Out)
	if err != nil {
		t.Fatal(err)
	}
	inBand := 0.0
	for i := 1; i < w.Len(); i++ {
		if w.Y[i] > 0.42 && w.Y[i] < 0.58 {
			inBand += w.T[i] - w.T[i-1]
		}
	}
	if inBand < 0.3*tof {
		t.Errorf("expected a V/2 plateau of order the flight time, got %.3g (tof %.3g)", inBand, tof)
	}
}

func TestDelaySmartRouting(t *testing.T) {
	// Safe case: moderate Table-1 line → Eq. 9 path, accurate.
	safe := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	sd := tline.Drive{Rtr: 500, CL: 5e-13}
	v, m, err := DelaySmart(safe, sd)
	if err != nil {
		t.Fatal(err)
	}
	if m != MethodEq9 {
		t.Errorf("safe case routed to %v", m)
	}
	exact, err := DelayExactTF(safe, sd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-exact) > 0.05*exact {
		t.Errorf("eq9 path off by %.1f%%", 100*math.Abs(v-exact)/exact)
	}
	// Plateau case: must fall back to the exact engine.
	plateau := tline.FromTotals(500, 1.72e-7, 1e-12, 0.0054)
	pd := tline.Drive{Rtr: 500, CL: 5e-14}
	v2, m2, err := DelaySmart(plateau, pd)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != MethodExact {
		t.Errorf("plateau case routed to %v", m2)
	}
	exact2, _ := DelayExactTF(plateau, pd, 0)
	if v2 != exact2 {
		t.Errorf("exact path mismatch: %g vs %g", v2, exact2)
	}
	// Out-of-domain case (RT > 1): exact engine.
	strong := tline.FromTotals(100, 1e-8, 1e-12, 0.002)
	_, m3, err := DelaySmart(strong, tline.Drive{Rtr: 500, CL: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if m3 != MethodExact {
		t.Errorf("out-of-domain case routed to %v", m3)
	}
	// Error propagation.
	if _, _, err := DelaySmart(tline.Line{}, sd); err == nil {
		t.Error("bad line accepted")
	}
	// Method strings.
	if MethodEq9.String() != "eq9" || MethodExact.String() != "exact" || Method(9).String() == "" {
		t.Error("method strings")
	}
}
