package refeng

import (
	"context"
	"fmt"
	"math"

	"rlckit/internal/cancel"
	"rlckit/internal/circuit"
	"rlckit/internal/mna"
	"rlckit/internal/mor"
	"rlckit/internal/tline"
)

// This file is the Krylov reduced-order delay engine: the ladder is
// reduced once (internal/mor via mna.Reduce) and the 50% delay is then
// measured on the q×q reduced transient — O(q²) per timestep instead
// of a full band solve, with the stepping cut off at the crossing.
//
// A ReducedLadder is additionally built for reuse across
// same-topology perturbations of the line (process corners, Monte
// Carlo variation): the Krylov basis is anchored at slow/fast
// parameter-envelope instances, so any instance inside the envelope
// projects accurately through the frozen basis, and because the
// congruence projection is linear in the element values, a perturbed
// instance's reduced pencil is recombined from per-class blocks in
// O(q²) — no re-assembly, no O(n) work at all per sample. This is how
// internal/sweep gets simulation-grade delays at a fraction of the
// exact engine's cost.

// ReducedConfig tunes the reduced-order delay engine.
type ReducedConfig struct {
	// Segments is the ladder segment count (default 120, matching
	// MNAConfig; sweeps trade a few segments for speed).
	Segments int
	// StepsPerScale divides the simulation horizon into steps (default
	// 1200 — the reduced response is smooth and the crossing is
	// interpolated, so far fewer steps than the full engine needs).
	StepsPerScale int
	// MaxOrder caps the reduced order (default 40 — the basis hosts
	// the nominal and two anchor instances).
	MaxOrder int
	// ValTol is the transfer-function certification tolerance
	// (default 5e-3 of the response peak), enforced for the nominal
	// and both anchors.
	ValTol float64
	// AnchorSpread is the parameter-envelope factor for the slow/fast
	// anchor instances: R, L, C and Rtr are scaled by AnchorSpread and
	// its reciprocal (default 1.8, generously bracketing corner ±25%
	// shifts compounded with 3σ log-normal variation). 1 disables the
	// anchors — the right choice when the model will only ever evaluate
	// the instance it was built from (DelayReduced's one-shot path),
	// since anchoring widens the band the model must certify across.
	AnchorSpread float64
	// Anchors, when non-nil, replaces the uniform ±AnchorSpread anchor
	// set with explicit (R, L, C, Rtr) scale tuples — callers that know
	// where their perturbations concentrate (sweep anchors at its
	// actual process corners) get moment-matched accuracy there instead
	// of along the uniform diagonal. AnchorSpread still bounds the
	// evaluation envelope.
	Anchors [][4]float64
	// Ctx, when non-nil, cancels the build (between Arnoldi rounds) and
	// later Delay calls (between timestep chunks) with the typed
	// cancel.ErrCanceled/ErrDeadline.
	Ctx context.Context
}

func (c ReducedConfig) withDefaults() ReducedConfig {
	if c.Segments == 0 {
		c.Segments = 120
	}
	if c.StepsPerScale == 0 {
		c.StepsPerScale = 1200
	}
	if c.MaxOrder == 0 {
		c.MaxOrder = 40
	}
	if c.AnchorSpread == 0 {
		c.AnchorSpread = 1.8
	}
	return c
}

// Element classes for the per-class reduced pencil recombination.
const (
	classFixed = iota // sources, incidence structure
	classLineR        // line resistance (scales with R)
	classRtr          // driver resistance
	classLineC        // line capacitance
	classCL           // load capacitance
	classInd          // inductance (branch L entries)
	numClasses
)

// classifyLadder maps ladder element indices to classes by kind and
// the names tline.BuildLadder assigns.
func classifyLadder(ckt *circuit.Circuit) func(int) int {
	els := ckt.Elements()
	classes := make([]int, len(els))
	for i, e := range els {
		switch e.Kind {
		case circuit.KindResistor:
			if e.Name == "rtr" {
				classes[i] = classRtr
			} else {
				classes[i] = classLineR
			}
		case circuit.KindCapacitor:
			if e.Name == "cload" {
				classes[i] = classCL
			} else {
				classes[i] = classLineC
			}
		case circuit.KindInductor:
			classes[i] = classInd
		default:
			classes[i] = classFixed
		}
	}
	return func(elem int) int { return classes[elem] }
}

// reducedProbeFreqs picks the probe/validation band for delay
// extraction: from well below the response envelope (1/horizon) to
// well above the fastest characteristic time, widened by the anchor
// spread so the certified band covers the anchor instances too.
func reducedProbeFreqs(ln tline.Line, d tline.Drive, spread float64) []float64 {
	tRC, tLC := timeScales(ln, d)
	slow := 4*tRC + 8*tLC
	fast := tLC
	if tRC > 0 && tRC < fast {
		fast = tRC
	}
	fLo := 0.03 / (slow * spread)
	fHi := 1.5 * spread / fast
	const n = 7
	out := make([]float64, n)
	ratio := math.Pow(fHi/fLo, 1/float64(n-1))
	f := fLo
	for i := range out {
		out[i] = f
		f *= ratio
	}
	return out
}

// ReducedLadder is a driven line reduced once and evaluated many
// times: Delay measures the 50% delay of any same-topology scaled
// instance by recombining the per-class reduced pencil. It is single-
// goroutine state (Delay mutates the installed pencil).
type ReducedLadder struct {
	cfg    ReducedConfig
	ln0    tline.Line
	d0     tline.Drive
	rtr0   float64 // post-hack nominal driver resistance
	red    *mna.Reduced
	outIdx int
	nIn    int
}

// NewReducedLadder builds and certifies the reduced model for the
// nominal driven line, anchored at the slow/fast parameter envelope.
// An error means the reduction could not be certified; callers fall
// back to an exact engine.
func NewReducedLadder(ln tline.Line, d tline.Drive, cfg ReducedConfig) (*ReducedLadder, error) {
	cfg = cfg.withDefaults()
	if err := ln.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	_, tLC := timeScales(ln, d)
	build := func(sr, sl, sc, sd float64) (*tline.Ladder, error) {
		l2, d2 := ln, d
		l2.R *= sr
		l2.L *= sl
		l2.C *= sc
		d2.Rtr *= sd
		return tline.BuildLadder(l2, d2, cfg.Segments, tline.Pi, tLC)
	}
	lad, err := build(1, 1, 1, 1)
	if err != nil {
		return nil, err
	}
	anchorScales := cfg.Anchors
	if anchorScales == nil && cfg.AnchorSpread != 1 {
		s := cfg.AnchorSpread
		anchorScales = [][4]float64{{s, s, s, s}, {1 / s, 1 / s, 1 / s, 1 / s}}
	}
	var anchors []*circuit.Circuit
	for _, as := range anchorScales {
		a, err := build(as[0], as[1], as[2], as[3])
		if err != nil {
			return nil, err
		}
		anchors = append(anchors, a.Ckt)
	}
	red, err := mna.Reduce(lad.Ckt, []int{lad.Out}, mna.ReduceOptions{
		Freqs:    reducedProbeFreqs(ln, d, cfg.AnchorSpread),
		MaxOrder: cfg.MaxOrder,
		ValTol:   cfg.ValTol,
		Anchors:  anchors,
		Ctx:      cfg.Ctx,
	})
	if err != nil {
		return nil, err
	}
	if err := red.ProjectClasses(numClasses, classifyLadder(lad.Ckt)); err != nil {
		return nil, err
	}
	outIdx, err := red.OutputIndex(lad.Out)
	if err != nil {
		return nil, err
	}
	rtr0 := d.Rtr
	if rtr0 == 0 {
		rtr0 = 1e-6 // BuildLadder's zero-Rtr replacement
	}
	return &ReducedLadder{
		cfg: cfg, ln0: ln, d0: d, rtr0: rtr0,
		red: red, outIdx: outIdx, nIn: red.Model().NumInputs(),
	}, nil
}

// Info returns the model's accuracy metadata.
func (r *ReducedLadder) Info() mor.Info { return r.red.Info() }

// classRatio returns num/den, requiring that the scaled instance keeps
// the nominal topology (a zero stays zero).
func classRatio(num, den float64) (float64, error) {
	if den == 0 {
		if num != 0 {
			return 0, fmt.Errorf("refeng: reduced ladder cannot add a %g element the nominal topology lacks", num)
		}
		return 1, nil
	}
	return num / den, nil
}

// Delay measures the 50% propagation delay of a (possibly perturbed)
// instance of the line on the reduced model: the per-class pencil is
// recombined in O(q²), the reduced transient is stepped until the
// crossing, and the crossing is interpolated — nothing scales with
// the full order n. ln and d must be class-scalings of the nominal
// instance (same topology; any positive values).
func (r *ReducedLadder) Delay(ln tline.Line, d tline.Drive) (float64, error) {
	if err := ln.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	aR, err := classRatio(ln.R*ln.Length, r.ln0.R*r.ln0.Length)
	if err != nil {
		return 0, err
	}
	aL, err := classRatio(ln.L*ln.Length, r.ln0.L*r.ln0.Length)
	if err != nil {
		return 0, err
	}
	aC, err := classRatio(ln.C*ln.Length, r.ln0.C*r.ln0.Length)
	if err != nil {
		return 0, err
	}
	rtr := d.Rtr
	if rtr == 0 {
		rtr = 1e-6
	}
	// The load capacitance is a class like any other: its ratio is both
	// recombined through wC and held to the same envelope bound below
	// (the anchors do not span a CL direction, so far-off loads must be
	// refused, not extrapolated).
	aCL, err := classRatio(d.CL, r.d0.CL)
	if err != nil {
		return 0, err
	}
	// The frozen basis interpolates accurately inside the anchor
	// envelope and degrades as a sample extrapolates beyond it; rather
	// than return a silently degraded number, refuse and let the
	// caller's exact fallback handle the (rare) tail draw.
	lim := math.Pow(r.cfg.AnchorSpread, 1.15)
	if lim < 1.02 {
		lim = 1.02 // unanchored models serve (only) their build instance
	}
	for _, a := range [...]float64{aR, aL, aC, aCL, r.rtr0 / rtr} {
		if a > lim || a < 1/lim {
			return 0, fmt.Errorf("refeng: scale factor %.3g outside the reduced model's ×%.2f anchor envelope", a, r.cfg.AnchorSpread)
		}
	}
	var wG, wC [numClasses]float64
	for c := range wG {
		wG[c], wC[c] = 1, 1
	}
	wG[classLineR] = 1 / aR
	wG[classRtr] = r.rtr0 / rtr
	wC[classLineC] = aC
	wC[classCL] = aCL
	wC[classInd] = aL
	if err := r.red.SetClassWeights(wG[:], wC[:]); err != nil {
		return 0, err
	}

	tEst := horizon(ln, d)
	h := tEst / float64(r.cfg.StepsPerScale)
	delay := 10 * h
	tr, err := r.red.Model().NewTransient(h)
	if err != nil {
		return 0, err
	}
	amp := d.Amplitude()
	level := amp / 2
	u := make([]float64, r.nIn)
	// Step all sources with the delayed step (the ladder has exactly
	// one, the input drive); the state starts from rest since u(0)=0.
	maxSteps := 12 * r.cfg.StepsPerScale
	yPrev := 0.0
	for s := 1; s <= maxSteps; s++ {
		if s%256 == 0 {
			if cerr := cancel.Check(r.cfg.Ctx); cerr != nil {
				return 0, cerr
			}
		}
		t := float64(s) * h
		uv := 0.0
		if t >= delay {
			uv = amp
		}
		for i := range u {
			u[i] = uv
		}
		tr.Step(u)
		y := tr.Output(r.outIdx)
		if y >= level && s > 1 {
			// Linear crossing interpolation, then the same trapezoidal
			// step-smearing correction as DelayMNA.
			cross := t - h + h*(level-yPrev)/(y-yPrev)
			return cross - (delay - h/2), nil
		}
		yPrev = y
	}
	return 0, fmt.Errorf("refeng: reduced response never crossed %g within %d steps", level, maxSteps)
}

// DelayReduced measures the 50% delay of the driven line on a
// reduced-order model built for exactly this instance: the one-shot
// form of ReducedLadder for callers outside sweep populations — it
// therefore skips the parameter-envelope anchors unless the caller
// asks for them. The returned Info carries the model's certification
// metadata.
func DelayReduced(ln tline.Line, d tline.Drive, cfg ReducedConfig) (float64, mor.Info, error) {
	if cfg.AnchorSpread == 0 {
		cfg.AnchorSpread = 1
	}
	r, err := NewReducedLadder(ln, d, cfg)
	if err != nil {
		return 0, mor.Info{}, err
	}
	v, err := r.Delay(ln, d)
	return v, r.Info(), err
}
