package refeng

import (
	"math"
	"testing"

	"rlckit/internal/tline"
)

// benchline is the Table-1 moderate configuration the module's
// benchmarks standardize on.
var (
	rbLine  = tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	rbDrive = tline.Drive{Rtr: 500, CL: 5e-13}
)

func relErrPct(got, want float64) float64 {
	return math.Abs(got-want) / want * 100
}

// TestDelayReducedWithinOnePercent is the acceptance bar: the
// reduced-order 50% delay must match both the full-order transient of
// the same ladder and the exact transmission-line engine within 1% on
// the benchmark configuration.
func TestDelayReducedWithinOnePercent(t *testing.T) {
	exact, err := DelayExactTF(rbLine, rbDrive, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DelayMNA(rbLine, rbDrive, MNAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	red, info, err := DelayReduced(rbLine, rbDrive, ReducedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Validated {
		t.Fatal("model not validated")
	}
	t.Logf("q=%d of n=%d (TF err %.4g%%): exact=%.6g full=%.6g reduced=%.6g",
		info.Q, info.N, info.EstErrPct, exact, full, red)
	if e := relErrPct(red, full); e > 1 {
		t.Errorf("reduced vs full-order MNA delay error %.3f%% > 1%%", e)
	}
	if e := relErrPct(red, exact); e > 1 {
		t.Errorf("reduced vs exact-TF delay error %.3f%% > 1%%", e)
	}
}

// TestDelayReducedChipScaleLadder runs the acceptance configuration at
// chip scale: a ~2000-unknown ladder, still within 1% of the exact
// transmission-line delay.
func TestDelayReducedChipScaleLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-scale ladder build in -short mode")
	}
	exact, err := DelayExactTF(rbLine, rbDrive, 0)
	if err != nil {
		t.Fatal(err)
	}
	red, info, err := DelayReduced(rbLine, rbDrive, ReducedConfig{Segments: 660})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d reduced to q=%d; exact=%.6g reduced=%.6g (%.3f%%)",
		info.N, info.Q, exact, red, relErrPct(red, exact))
	if info.N < 1900 {
		t.Fatalf("expected a ~2000-unknown system, got %d", info.N)
	}
	if e := relErrPct(red, exact); e > 1 {
		t.Errorf("chip-scale reduced delay error %.3f%% > 1%%", e)
	}
}

// TestDelayReducedAcrossRegimes: damping regimes from RC-dominated to
// underdamped; the certified model must stay close to the full-order
// reference everywhere (the underdamped ringing case gets a slightly
// wider transient-resolution allowance).
func TestDelayReducedAcrossRegimes(t *testing.T) {
	cases := []struct {
		name   string
		ln     tline.Line
		d      tline.Drive
		tolPct float64
	}{
		{"rc-heavy", tline.FromTotals(5000, 1e-8, 2e-12, 0.01), tline.Drive{Rtr: 200, CL: 5e-13}, 1},
		{"short-fast", tline.FromTotals(100, 1e-8, 1e-13, 0.002), tline.Drive{Rtr: 1000, CL: 1e-13}, 1},
		{"underdamped", tline.FromTotals(500, 1e-6, 1e-12, 0.01), tline.Drive{Rtr: 500, CL: 1e-13}, 2.5},
	}
	for _, tc := range cases {
		full, err := DelayMNA(tc.ln, tc.d, MNAConfig{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		red, info, err := DelayReduced(tc.ln, tc.d, ReducedConfig{})
		if err != nil {
			t.Errorf("%s: DelayReduced: %v", tc.name, err)
			continue
		}
		e := relErrPct(red, full)
		t.Logf("%s: q=%d err=%.3f%%", tc.name, info.Q, e)
		if e > tc.tolPct {
			t.Errorf("%s: reduced delay error %.3f%% > %.1f%%", tc.name, e, tc.tolPct)
		}
	}
}

// TestReducedLadderFrozenBasisAcrossPerturbations: one anchored model,
// many same-topology perturbed instances — the Monte Carlo reuse path.
// Every in-envelope instance must track the exact engine within a few
// percent without rebuilding anything.
func TestReducedLadderFrozenBasisAcrossPerturbations(t *testing.T) {
	// Anchor the basis the way sweep does: at the corner instances the
	// perturbations concentrate around, plus a uniform MC envelope.
	rl, err := NewReducedLadder(rbLine, rbDrive, ReducedConfig{
		Segments:     60,
		AnchorSpread: 1.6,
		Anchors: [][4]float64{
			{1.15, 1, 1.08, 1.25}, // ss
			{0.85, 1, 0.92, 0.80}, // ff
			{1.2, 1.2, 1.2, 1.2},
			{1 / 1.2, 1 / 1.2, 1 / 1.2, 1 / 1.2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	perturbs := []struct {
		r, l, c, d float64
	}{
		{1, 1, 1, 1},
		{1.15, 1, 1.08, 1.25}, // ss corner (anchored: moment-matched)
		{0.85, 1, 0.92, 0.80}, // ff corner
		{1.25, 1.05, 1.15, 1.35},
		{0.8, 0.95, 0.85, 0.75},
		{1.2, 0.9, 0.95, 1.1},
	}
	sum := 0.0
	for i, p := range perturbs {
		ln := rbLine
		ln.R *= p.r
		ln.L *= p.l
		ln.C *= p.c
		d := rbDrive
		d.Rtr *= p.d
		exact, err := DelayExactTF(ln, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rl.Delay(ln, d)
		if err != nil {
			t.Errorf("perturb %d: %v", i, err)
			continue
		}
		e := relErrPct(got, exact)
		sum += e
		t.Logf("perturb %d (%+v): err=%.3f%%", i, p, e)
		// With the basis anchored across the perturbation family, the
		// recombined pencil is essentially exact (observed ≤0.01%); the
		// bound leaves room for platform rounding only.
		if e > 1 {
			t.Errorf("perturb %d: frozen-basis delay error %.3f%% > 1%%", i, e)
		}
	}
	if mean := sum / float64(len(perturbs)); mean > 0.5 {
		t.Errorf("mean frozen-basis delay error %.3f%% > 0.5%%", mean)
	}
}

// TestReducedLadderEnvelopeGuard: instances outside the anchored
// envelope are refused (the caller's exact fallback handles them)
// rather than silently extrapolated.
func TestReducedLadderEnvelopeGuard(t *testing.T) {
	rl, err := NewReducedLadder(rbLine, rbDrive, ReducedConfig{Segments: 48, AnchorSpread: 1.45})
	if err != nil {
		t.Fatal(err)
	}
	ln := rbLine
	ln.R *= 3 // far outside ×1.45
	if _, err := rl.Delay(ln, rbDrive); err == nil {
		t.Fatal("expected an envelope refusal for a ×3 perturbation")
	}
	// The load capacitance is held to the same envelope (the anchors do
	// not span a CL direction).
	dcl := rbDrive
	dcl.CL *= 3
	if _, err := rl.Delay(rbLine, dcl); err == nil {
		t.Fatal("expected an envelope refusal for a ×3 load-cap perturbation")
	}
	// Topology changes are refused too.
	zl := rbLine
	zl.R = 0
	if _, err := rl.Delay(zl, rbDrive); err == nil {
		t.Fatal("expected a refusal when the instance drops the resistors")
	}
}
