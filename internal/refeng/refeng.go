// Package refeng provides reference 50%-delay measurements of a driven
// distributed RLC line via three independent engines:
//
//   - MNA: transient simulation of a fine lumped ladder (internal/mna) —
//     rlckit's stand-in for the paper's AS/X dynamic simulations. The
//     engine assembles and orders in O(nnz) and steps allocation-free,
//     so fine ladders (hundreds of segments, tens of thousands of
//     timesteps) are routine.
//   - Ratfun: exact pole/residue step response of a moderate lumped
//     ladder (internal/ratfun) — no time stepping at all.
//   - ExactTF: numerical Laplace inversion of the exact hyperbolic
//     transmission-line transfer function (internal/laplace) — no lumping
//     at all.
//
// The three share no numerical machinery beyond linear algebra, so their
// agreement (checked in tests and reported by Validate) certifies the
// reference value used to grade the paper's closed-form model.
package refeng

import (
	"errors"
	"fmt"
	"math"

	"rlckit/internal/core"
	"rlckit/internal/laplace"
	"rlckit/internal/mna"
	"rlckit/internal/numeric"
	"rlckit/internal/ratfun"
	"rlckit/internal/tline"
)

// timeScales returns the two characteristic times of the driven line:
// the RC-ish scale and the flight-time scale.
func timeScales(ln tline.Line, d tline.Drive) (tRC, tLC float64) {
	rt, lt, ct := ln.Totals()
	tRC = (rt + d.Rtr) * (ct + d.CL)
	tLC = math.Sqrt(lt * (ct + d.CL))
	return tRC, tLC
}

// horizon returns a generous initial simulation horizon.
func horizon(ln tline.Line, d tline.Drive) float64 {
	tRC, tLC := timeScales(ln, d)
	return 4*tRC + 8*tLC
}

// MNAConfig tunes the transient reference engine.
type MNAConfig struct {
	// Segments is the ladder segment count (default 120).
	Segments int
	// Style is the segment style (default Pi, which converges fastest).
	Style tline.SegmentStyle
	// StepsPerScale divides the slow time scale into steps (default 4000).
	StepsPerScale int
	// Method is the integration rule (default trapezoidal).
	Method mna.Method
}

func (c MNAConfig) withDefaults() MNAConfig {
	if c.Segments == 0 {
		c.Segments = 120
	}
	if c.StepsPerScale == 0 {
		c.StepsPerScale = 4000
	}
	return c
}

// DelayMNA measures the 50% propagation delay at the far end of the
// driven line by transient simulation of a lumped ladder.
func DelayMNA(ln tline.Line, d tline.Drive, cfg MNAConfig) (float64, error) {
	cfg = cfg.withDefaults()
	if err := ln.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	_, tLC := timeScales(ln, d)
	tEst := horizon(ln, d)
	// dt must resolve both the envelope and the per-segment resonance.
	dt := math.Min(tEst/float64(cfg.StepsPerScale), tLC/(6*float64(cfg.Segments)))
	delay := 10 * dt
	lad, err := tline.BuildLadder(ln, d, cfg.Segments, cfg.Style, delay)
	if err != nil {
		return 0, err
	}
	level := d.Amplitude() / 2
	tEnd := tEst + delay
	for attempt := 0; attempt < 4; attempt++ {
		res, err := mna.Simulate(lad.Ckt, mna.Options{
			Method: cfg.Method,
			Dt:     dt,
			TEnd:   tEnd,
			Probes: []int{lad.Out},
		})
		if err != nil {
			return 0, err
		}
		w, err := res.Waveform(lad.Out)
		if err != nil {
			return 0, err
		}
		cross, err := w.CrossUp(level)
		if err == nil {
			// The trapezoidal rule smears the ideal step across one
			// timestep: the effective step time is delay − dt/2.
			eff := delay
			if cfg.Method == mna.Trapezoidal {
				eff -= dt / 2
			}
			return cross - eff, nil
		}
		tEnd *= 2.5
	}
	return 0, fmt.Errorf("refeng: MNA response never crossed %g within extended horizon", level)
}

// RatfunConfig tunes the pole/residue reference engine.
type RatfunConfig struct {
	// Segments is the ladder segment count (default 24; the engine is
	// exact for the ladder, so this only controls how well the ladder
	// approximates the distributed line, and polynomial root finding
	// limits it to ~24 — beyond that the ladder's tightly clustered real
	// poles defeat the Aberth iteration).
	Segments int
	// Style is the segment style (default Pi).
	Style tline.SegmentStyle
	// NoRichardson disables the half-resolution Richardson step that
	// cancels the ladder's leading O(1/n) delay-discretization error
	// (measured cleanly first-order across damping regimes; the
	// driver-side half-cell asymmetry dominates).
	NoRichardson bool
}

func (c RatfunConfig) withDefaults() RatfunConfig {
	if c.Segments == 0 {
		c.Segments = 24
	}
	return c
}

// DelayRatfun measures the 50% delay from the exact analytic step
// response of the lumped ladder's rational transfer function. By default
// it combines ladders at n and n/2 segments by first-order Richardson
// extrapolation (d ≈ 2·d_n − d_{n/2}), cancelling the leading O(1/n)
// discretization error of the lumped approximation so the result
// estimates the distributed-line delay.
func DelayRatfun(ln tline.Line, d tline.Drive, cfg RatfunConfig) (float64, error) {
	cfg = cfg.withDefaults()
	if err := ln.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if !cfg.NoRichardson && cfg.Segments >= 8 {
		coarse := cfg
		coarse.Segments = cfg.Segments / 2
		coarse.NoRichardson = true
		fine := cfg
		fine.NoRichardson = true
		dc, err := DelayRatfun(ln, d, coarse)
		if err != nil {
			return 0, err
		}
		df, err := DelayRatfun(ln, d, fine)
		if err != nil {
			return 0, err
		}
		return 2*df - dc, nil
	}
	_, lt, ct := ln.Totals()
	t0 := math.Sqrt(lt * (ct + d.CL))
	num, den, err := tline.LadderTF(ln, d, cfg.Segments, cfg.Style, t0)
	if err != nil {
		return 0, err
	}
	h, err := ratfun.New(num, den)
	if err != nil {
		return 0, err
	}
	step, err := h.StepResponse()
	if err != nil {
		return 0, err
	}
	// Scan normalized time for the 0.5 crossing, then bisect. The step
	// response is of a unit step; amplitude scaling cancels at 50%.
	tMaxN := horizon(ln, d) / t0
	const scan = 2000
	prev := 0.0
	for i := 1; i <= scan*4; i++ {
		tn := tMaxN * float64(i) / scan
		if step(tn) >= 0.5 {
			x, err := numeric.Bisect(func(u float64) float64 { return step(u) - 0.5 }, prev, tn, tMaxN*1e-10)
			if err != nil {
				return 0, err
			}
			return x * t0, nil
		}
		prev = tn
	}
	return 0, errors.New("refeng: ratfun response never crossed 0.5")
}

// DelayExactTF measures the 50% delay by numerically inverting the exact
// distributed-line transfer function. m is the Euler parameter (0 =
// default).
func DelayExactTF(ln tline.Line, d tline.Drive, m int) (float64, error) {
	h, err := tline.ExactTF(ln, d)
	if err != nil {
		return 0, err
	}
	tMax := horizon(ln, d)
	tLo := tMax * 1e-6
	for attempt := 0; attempt < 4; attempt++ {
		x, err := laplace.CrossingTime(h, 0.5, tLo, tMax, m)
		if err == nil {
			return x, nil
		}
		tMax *= 2.5
	}
	return 0, errors.New("refeng: exact-TF response never crossed 0.5")
}

// Agreement reports the three engines' delays and their maximum relative
// spread for a driven line. It is the engine cross-validation used by
// tests and recorded in EXPERIMENTS.md.
type Agreement struct {
	MNA, Ratfun, ExactTF float64
	// Spread is max pairwise |a−b| / mean.
	Spread float64
}

// Validate runs all three engines and computes their spread.
func Validate(ln tline.Line, d tline.Drive) (Agreement, error) {
	var a Agreement
	var err error
	if a.MNA, err = DelayMNA(ln, d, MNAConfig{}); err != nil {
		return a, fmt.Errorf("refeng: MNA engine: %w", err)
	}
	if a.Ratfun, err = DelayRatfun(ln, d, RatfunConfig{}); err != nil {
		return a, fmt.Errorf("refeng: ratfun engine: %w", err)
	}
	if a.ExactTF, err = DelayExactTF(ln, d, 0); err != nil {
		return a, fmt.Errorf("refeng: exact-TF engine: %w", err)
	}
	mean := (a.MNA + a.Ratfun + a.ExactTF) / 3
	maxd := math.Max(math.Abs(a.MNA-a.Ratfun),
		math.Max(math.Abs(a.MNA-a.ExactTF), math.Abs(a.Ratfun-a.ExactTF)))
	a.Spread = maxd / mean
	return a, nil
}

// mnaSimulate is a small helper used by characterization tests: simulate
// a prebuilt ladder for the given horizon with sensible steps.
func mnaSimulate(lad *tline.Ladder, tEnd float64) (*mna.Result, error) {
	return mna.Simulate(lad.Ckt, mna.Options{
		Dt:     tEnd / 20000,
		TEnd:   tEnd,
		Probes: []int{lad.Out},
	})
}

// Method labels which estimator produced a DelaySmart result.
type Method int

// DelaySmart methods.
const (
	// MethodEq9 means the closed-form Eq. 9 value was trusted.
	MethodEq9 Method = iota
	// MethodExact means the exact-TF engine was used because the
	// configuration was outside Eq. 9's accuracy domain or in the
	// reflection-plateau regime.
	MethodExact
)

func (m Method) String() string {
	switch m {
	case MethodEq9:
		return "eq9"
	case MethodExact:
		return "exact"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// DelaySmart is the production estimator: it returns the closed-form
// Eq. 9 delay when the configuration is inside the model's validated
// accuracy domain and away from the reflection-plateau regime, and
// otherwise falls back to the exact transmission-line engine. The
// returned Method reports which path was taken.
func DelaySmart(ln tline.Line, d tline.Drive) (float64, Method, error) {
	p, err := core.Analyze(ln, d)
	if err != nil {
		return 0, MethodEq9, err
	}
	if p.InAccuracyDomain() && !p.DelayPlateauRisk() {
		v, err := core.Delay(ln, d)
		return v, MethodEq9, err
	}
	v, err := DelayExactTF(ln, d, 0)
	return v, MethodExact, err
}
