// Package waveform represents sampled time-domain signals and the
// measurements interconnect analysis needs from them: 50% propagation
// delay, rise time, overshoot, ringing and settling metrics.
//
// Waveforms are the common currency between the transient simulator
// (internal/mna), the analytic solvers (internal/ratfun,
// internal/laplace), and the benchmark harness.
package waveform

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rlckit/internal/numeric"
)

// W is a sampled waveform: value Y[i] at time T[i], with T strictly
// increasing.
type W struct {
	T []float64
	Y []float64
}

// New validates and wraps parallel time/value slices into a waveform.
func New(t, y []float64) (*W, error) {
	if len(t) != len(y) {
		return nil, fmt.Errorf("waveform: length mismatch %d vs %d", len(t), len(y))
	}
	if len(t) < 2 {
		return nil, errors.New("waveform: need at least 2 samples")
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return nil, fmt.Errorf("waveform: time not strictly increasing at index %d (%g, %g)", i, t[i-1], t[i])
		}
	}
	return &W{T: t, Y: y}, nil
}

// FromFunc samples f at n uniformly spaced points on [t0, t1].
func FromFunc(f func(float64) float64, t0, t1 float64, n int) (*W, error) {
	if n < 2 {
		return nil, errors.New("waveform: FromFunc needs n >= 2")
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("waveform: bad span [%g, %g]", t0, t1)
	}
	t := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		t[i] = t0 + (t1-t0)*float64(i)/float64(n-1)
		y[i] = f(t[i])
	}
	return &W{T: t, Y: y}, nil
}

// Len returns the number of samples.
func (w *W) Len() int { return len(w.T) }

// At evaluates the waveform at time t by linear interpolation, clamped at
// the ends.
func (w *W) At(t float64) float64 {
	return numeric.LinearInterp(w.T, w.Y, t)
}

// Final returns the last sampled value (used as the settled value for
// step responses that have converged).
func (w *W) Final() float64 { return w.Y[len(w.Y)-1] }

// Peak returns the maximum value and its time.
func (w *W) Peak() (float64, float64) {
	best, bt := w.Y[0], w.T[0]
	for i, v := range w.Y {
		if v > best {
			best, bt = v, w.T[i]
		}
	}
	return best, bt
}

// CrossUp returns the first time the waveform crosses level going up.
func (w *W) CrossUp(level float64) (float64, error) {
	return numeric.InvLinearCrossing(w.T, w.Y, level)
}

// Delay50 returns the 50% propagation delay of a step response that
// settles to final value vFinal: the first upward crossing of vFinal/2.
// This is the paper's t_pd measurement.
func (w *W) Delay50(vFinal float64) (float64, error) {
	return w.CrossUp(vFinal / 2)
}

// RiseTime returns the 10%–90% rise time relative to final value vFinal.
func (w *W) RiseTime(vFinal float64) (float64, error) {
	t10, err := w.CrossUp(0.1 * vFinal)
	if err != nil {
		return 0, fmt.Errorf("waveform: 10%% crossing: %w", err)
	}
	t90, err := w.CrossUp(0.9 * vFinal)
	if err != nil {
		return 0, fmt.Errorf("waveform: 90%% crossing: %w", err)
	}
	return t90 - t10, nil
}

// Overshoot returns the fractional overshoot (peak−final)/final of a step
// response; 0 if the response never exceeds its final value (overdamped).
func (w *W) Overshoot(vFinal float64) float64 {
	if vFinal == 0 {
		return 0
	}
	peak, _ := w.Peak()
	os := (peak - vFinal) / vFinal
	if os < 0 {
		return 0
	}
	return os
}

// SettlingTime returns the earliest time after which the waveform stays
// within ±frac·vFinal of vFinal until the end of the record.
func (w *W) SettlingTime(vFinal, frac float64) (float64, error) {
	if frac <= 0 {
		return 0, errors.New("waveform: settling fraction must be positive")
	}
	band := math.Abs(frac * vFinal)
	last := -1
	for i := len(w.Y) - 1; i >= 0; i-- {
		if math.Abs(w.Y[i]-vFinal) > band {
			last = i
			break
		}
	}
	if last == -1 {
		return w.T[0], nil
	}
	if last == len(w.Y)-1 {
		return 0, fmt.Errorf("waveform: does not settle within ±%g%% by t=%g", frac*100, w.T[last])
	}
	// Interpolate the band crossing between samples last and last+1.
	y0, y1 := w.Y[last], w.Y[last+1]
	target := vFinal + math.Copysign(band, y0-vFinal)
	if y1 == y0 {
		return w.T[last+1], nil
	}
	a := (target - y0) / (y1 - y0)
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	return w.T[last] + a*(w.T[last+1]-w.T[last]), nil
}

// Resample returns the waveform linearly resampled onto n uniform points
// spanning the original record.
func (w *W) Resample(n int) (*W, error) {
	if n < 2 {
		return nil, errors.New("waveform: Resample needs n >= 2")
	}
	return FromFunc(w.At, w.T[0], w.T[len(w.T)-1], n)
}

// Slice returns the sub-waveform with t in [t0, t1] (inclusive of the
// nearest enclosing samples).
func (w *W) Slice(t0, t1 float64) (*W, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("waveform: bad slice span [%g, %g]", t0, t1)
	}
	i := sort.SearchFloat64s(w.T, t0)
	if i > 0 {
		i--
	}
	j := sort.SearchFloat64s(w.T, t1)
	if j < len(w.T) {
		j++
	}
	if j-i < 2 {
		return nil, errors.New("waveform: slice too narrow")
	}
	return New(append([]float64(nil), w.T[i:j]...), append([]float64(nil), w.Y[i:j]...))
}

// MaxAbsDiff returns max_t |w(t) − v(t)| over the overlap of the two
// records, sampled on the union of their time grids. It is the metric the
// validation suite uses to compare independent engines.
func MaxAbsDiff(w, v *W) float64 {
	lo := math.Max(w.T[0], v.T[0])
	hi := math.Min(w.T[len(w.T)-1], v.T[len(v.T)-1])
	if hi <= lo {
		return math.Inf(1)
	}
	grid := make([]float64, 0, len(w.T)+len(v.T))
	for _, t := range w.T {
		if t >= lo && t <= hi {
			grid = append(grid, t)
		}
	}
	for _, t := range v.T {
		if t >= lo && t <= hi {
			grid = append(grid, t)
		}
	}
	sort.Float64s(grid)
	m := 0.0
	for _, t := range grid {
		if d := math.Abs(w.At(t) - v.At(t)); d > m {
			m = d
		}
	}
	return m
}

// Energy returns ∫ w(t)² dt over the record — used by passivity checks in
// simulator validation.
func (w *W) Energy() float64 {
	y2 := make([]float64, len(w.Y))
	for i, v := range w.Y {
		y2[i] = v * v
	}
	return numeric.Trapz(w.T, y2)
}

// CrossDown returns the first time the waveform crosses level going
// downward (the falling-edge counterpart of CrossUp).
func (w *W) CrossDown(level float64) (float64, error) {
	for i := 1; i < len(w.T); i++ {
		if w.Y[i-1] > level && w.Y[i] <= level {
			t := (level - w.Y[i-1]) / (w.Y[i] - w.Y[i-1])
			return w.T[i-1] + t*(w.T[i]-w.T[i-1]), nil
		}
		if w.Y[i-1] == level && w.Y[i] < level {
			return w.T[i-1], nil
		}
	}
	return 0, fmt.Errorf("waveform: signal never falls through %g (range %g..%g)",
		level, w.Y[0], w.Y[len(w.Y)-1])
}

// FallTime returns the 90%–10% fall time relative to the initial value
// v0 of a falling transition.
func (w *W) FallTime(v0 float64) (float64, error) {
	t90, err := w.CrossDown(0.9 * v0)
	if err != nil {
		return 0, fmt.Errorf("waveform: 90%% falling crossing: %w", err)
	}
	t10, err := w.CrossDown(0.1 * v0)
	if err != nil {
		return 0, fmt.Errorf("waveform: 10%% falling crossing: %w", err)
	}
	return t10 - t90, nil
}

// Undershoot returns the fractional undershoot below zero of a falling
// step response that settles to 0 from v0: |min|/v0, or 0 if the record
// never goes negative.
func (w *W) Undershoot(v0 float64) float64 {
	if v0 == 0 {
		return 0
	}
	min := w.Y[0]
	for _, v := range w.Y {
		if v < min {
			min = v
		}
	}
	if min >= 0 {
		return 0
	}
	return -min / v0
}
