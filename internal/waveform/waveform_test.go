package waveform

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// expStep is the canonical RC step response 1 − e^{−t/τ}.
func expStep(tau float64) func(float64) float64 {
	return func(t float64) float64 { return 1 - math.Exp(-t/tau) }
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New([]float64{0}, []float64{0}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := New([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Error("non-increasing time accepted")
	}
	w, err := New([]float64{0, 1}, []float64{0, 1})
	if err != nil || w.Len() != 2 {
		t.Errorf("valid waveform rejected: %v", err)
	}
}

func TestFromFuncErrors(t *testing.T) {
	if _, err := FromFunc(math.Sin, 0, 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := FromFunc(math.Sin, 1, 0, 10); err == nil {
		t.Error("reversed span accepted")
	}
}

func TestDelay50OfRCStep(t *testing.T) {
	tau := 2e-9
	w, err := FromFunc(expStep(tau), 0, 20*tau, 4001)
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.Delay50(1)
	if err != nil {
		t.Fatal(err)
	}
	want := tau * math.Ln2
	if math.Abs(d-want) > 1e-3*want {
		t.Errorf("Delay50 = %g, want %g", d, want)
	}
}

func TestRiseTimeOfRCStep(t *testing.T) {
	tau := 1.0
	w, _ := FromFunc(expStep(tau), 0, 20, 20001)
	rt, err := w.RiseTime(1)
	if err != nil {
		t.Fatal(err)
	}
	want := tau * math.Log(9) // ln(0.9/0.1)
	if math.Abs(rt-want) > 1e-3*want {
		t.Errorf("RiseTime = %g, want %g", rt, want)
	}
}

func TestOvershootUnderdamped(t *testing.T) {
	// Standard 2nd-order step response with ζ=0.3: overshoot = e^{−πζ/√(1−ζ²)}.
	zeta := 0.3
	wn := 1.0
	wd := wn * math.Sqrt(1-zeta*zeta)
	f := func(t float64) float64 {
		return 1 - math.Exp(-zeta*wn*t)*(math.Cos(wd*t)+zeta/math.Sqrt(1-zeta*zeta)*math.Sin(wd*t))
	}
	w, _ := FromFunc(f, 0, 40, 40001)
	want := math.Exp(-math.Pi * zeta / math.Sqrt(1-zeta*zeta))
	if got := w.Overshoot(1); math.Abs(got-want) > 1e-3 {
		t.Errorf("Overshoot = %g, want %g", got, want)
	}
}

func TestOvershootOverdampedIsZero(t *testing.T) {
	w, _ := FromFunc(expStep(1), 0, 10, 1001)
	if got := w.Overshoot(1); got != 0 {
		t.Errorf("overdamped overshoot = %g", got)
	}
	if w.Overshoot(0) != 0 {
		t.Error("zero final value")
	}
}

func TestSettlingTime(t *testing.T) {
	w, _ := FromFunc(expStep(1), 0, 20, 20001)
	ts, err := w.SettlingTime(1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(0.02) // e^{−t} = 0.02
	if math.Abs(ts-want) > 0.01 {
		t.Errorf("SettlingTime = %g, want %g", ts, want)
	}
	if _, err := w.SettlingTime(1, 0); err == nil {
		t.Error("zero fraction accepted")
	}
	// Never settles within the record.
	w2, _ := FromFunc(expStep(1), 0, 0.5, 100)
	if _, err := w2.SettlingTime(1, 0.02); err == nil {
		t.Error("non-settling record accepted")
	}
	// Already settled from t=0.
	w3, _ := FromFunc(func(t float64) float64 { return 1 }, 0, 1, 10)
	ts3, err := w3.SettlingTime(1, 0.02)
	if err != nil || ts3 != 0 {
		t.Errorf("constant record: %g, %v", ts3, err)
	}
}

func TestPeakAndFinal(t *testing.T) {
	w, _ := New([]float64{0, 1, 2, 3}, []float64{0, 5, 3, 4})
	p, pt := w.Peak()
	if p != 5 || pt != 1 {
		t.Errorf("Peak = %g at %g", p, pt)
	}
	if w.Final() != 4 {
		t.Errorf("Final = %g", w.Final())
	}
}

func TestResampleAndAt(t *testing.T) {
	w, _ := FromFunc(math.Sin, 0, math.Pi, 101)
	r, err := w.Resample(1001)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.3, 1.1, 2.9} {
		if math.Abs(r.At(x)-math.Sin(x)) > 1e-3 {
			t.Errorf("resample at %g: %g vs %g", x, r.At(x), math.Sin(x))
		}
	}
	if _, err := w.Resample(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestSlice(t *testing.T) {
	w, _ := FromFunc(math.Sin, 0, 10, 101)
	s, err := w.Slice(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.T[0] > 2 || s.T[len(s.T)-1] < 4 {
		t.Errorf("slice [%g, %g] does not cover [2,4]", s.T[0], s.T[len(s.T)-1])
	}
	if _, err := w.Slice(4, 2); err == nil {
		t.Error("reversed slice accepted")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := FromFunc(math.Sin, 0, 5, 501)
	b, _ := FromFunc(func(t float64) float64 { return math.Sin(t) + 0.01 }, 0, 5, 701)
	d := MaxAbsDiff(a, b)
	if math.Abs(d-0.01) > 1e-3 {
		t.Errorf("MaxAbsDiff = %g, want ~0.01", d)
	}
	c, _ := FromFunc(math.Sin, 100, 101, 10)
	if !math.IsInf(MaxAbsDiff(a, c), 1) {
		t.Error("disjoint records should be +Inf")
	}
}

func TestEnergy(t *testing.T) {
	// ∫₀^{2π} sin² = π.
	w, _ := FromFunc(math.Sin, 0, 2*math.Pi, 10001)
	if e := w.Energy(); math.Abs(e-math.Pi) > 1e-4 {
		t.Errorf("Energy = %g, want π", e)
	}
}

func TestDelay50MonotoneInTau(t *testing.T) {
	// Property: slower RC time constants give larger 50% delays.
	f := func(a, b float64) bool {
		ta := math.Mod(math.Abs(a), 5) + 0.1
		tb := math.Mod(math.Abs(b), 5) + 0.1
		if ta > tb {
			ta, tb = tb, ta
		}
		if tb-ta < 1e-3 {
			return true
		}
		wa, _ := FromFunc(expStep(ta), 0, 20*tb, 4001)
		wb, _ := FromFunc(expStep(tb), 0, 20*tb, 4001)
		da, err1 := wa.Delay50(1)
		db, err2 := wb.Delay50(1)
		return err1 == nil && err2 == nil && da < db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	w, _ := FromFunc(math.Sin, 0, 1, 50)
	var b strings.Builder
	if err := w.WriteCSV(&b, "vout"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()), "vout")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() {
		t.Fatalf("length %d vs %d", got.Len(), w.Len())
	}
	for i := range w.T {
		if math.Abs(got.Y[i]-w.Y[i]) > 1e-8 {
			t.Fatalf("sample %d: %g vs %g", i, got.Y[i], w.Y[i])
		}
	}
	// Default column selection and default header name.
	var b2 strings.Builder
	if err := w.WriteCSV(&b2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(strings.NewReader(b2.String()), ""); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVMultiColumn(t *testing.T) {
	csv := "time,a,b\n0,1,10\n1,2,20\n2,3,30\n"
	w, err := ReadCSV(strings.NewReader(csv), "b")
	if err != nil {
		t.Fatal(err)
	}
	if w.Y[2] != 30 {
		t.Errorf("got %v", w.Y)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, csv, col string }{
		{"empty", "", ""},
		{"one column", "time\n1\n", ""},
		{"missing column", "time,a\n0,1\n", "zzz"},
		{"bad time", "time,a\nxx,1\n1,2\n", ""},
		{"bad value", "time,a\n0,xx\n1,2\n", ""},
		{"short row", "time,a,b\n0,1\n", "b"},
		{"column is time", "time,a\n0,1\n", "time"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), c.col); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestFallingEdgeMeasurements(t *testing.T) {
	// Falling RC discharge from 1: v = e^{−t/τ}.
	tau := 1.0
	w, _ := FromFunc(func(t float64) float64 { return math.Exp(-t / tau) }, 0, 12, 12001)
	x, err := w.CrossDown(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Ln2) > 1e-3 {
		t.Errorf("CrossDown(0.5) = %g, want ln2", x)
	}
	ft, err := w.FallTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := tau * math.Log(9); math.Abs(ft-want) > 1e-3*want {
		t.Errorf("FallTime = %g, want %g", ft, want)
	}
	if w.Undershoot(1) != 0 {
		t.Error("monotone discharge should have no undershoot")
	}
	// Rising signal: CrossDown must fail.
	r, _ := FromFunc(expStep(1), 0, 10, 1001)
	if _, err := r.CrossDown(0.5); err == nil {
		t.Error("rising signal accepted")
	}
	// Ringing discharge: undershoot detected.
	u, _ := FromFunc(func(t float64) float64 {
		return math.Exp(-0.3*t) * math.Cos(2*t)
	}, 0, 10, 5001)
	if us := u.Undershoot(1); us < 0.3 {
		t.Errorf("undershoot %g, want ≳0.5", us)
	}
	if u.Undershoot(0) != 0 {
		t.Error("v0=0 should be 0")
	}
	// Exact-sample falling crossing.
	e, _ := New([]float64{0, 1, 2}, []float64{1, 0.5, 0})
	x2, err := e.CrossDown(0.5)
	if err != nil || math.Abs(x2-1) > 1e-12 {
		t.Errorf("exact-sample falling crossing %g, %v", x2, err)
	}
}
