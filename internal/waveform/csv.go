package waveform

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the waveform as two-column CSV with the given value
// header (the time column is always "time").
func (w *W) WriteCSV(out io.Writer, name string) error {
	if name == "" {
		name = "v"
	}
	bw := bufio.NewWriter(out)
	if _, err := fmt.Fprintf(bw, "time,%s\n", name); err != nil {
		return err
	}
	for i := range w.T {
		if _, err := fmt.Fprintf(bw, "%.9e,%.9e\n", w.T[i], w.Y[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a waveform from two-column CSV written by WriteCSV or
// by cmd/netsim (first column time, chosen column by header name; pass
// "" for the first value column). Extra columns are ignored.
func ReadCSV(in io.Reader, column string) (*W, error) {
	sc := bufio.NewScanner(in)
	if !sc.Scan() {
		return nil, fmt.Errorf("waveform: empty CSV")
	}
	headers := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(headers) < 2 {
		return nil, fmt.Errorf("waveform: CSV needs >= 2 columns, header %q", sc.Text())
	}
	col := 1
	if column != "" {
		col = -1
		for i, h := range headers {
			if strings.TrimSpace(h) == column {
				col = i
				break
			}
		}
		if col <= 0 {
			return nil, fmt.Errorf("waveform: column %q not found in %v", column, headers)
		}
	}
	var ts, ys []float64
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) <= col {
			return nil, fmt.Errorf("waveform: line %d has %d columns, need > %d", lineNo, len(fields), col)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("waveform: line %d time: %v", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[col]), 64)
		if err != nil {
			return nil, fmt.Errorf("waveform: line %d value: %v", lineNo, err)
		}
		ts = append(ts, t)
		ys = append(ys, y)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(ts, ys)
}
