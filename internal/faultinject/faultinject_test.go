package faultinject

import (
	"errors"
	"testing"
)

// TestDisarmedIsInert covers both build modes: with the tag but no
// configured rates, and without the tag unconditionally, every hook
// must be a no-op.
func TestDisarmedIsInert(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if err := Inject(SiteFactor); err != nil {
			t.Fatalf("disarmed Inject fired: %v", err)
		}
		if Corrupt(SiteCache) {
			t.Fatal("disarmed Corrupt fired")
		}
		Panic(SiteBatch)
		Sleep(SitePoolWorker)
	}
	if n := Fired(SiteFactor); n != 0 {
		t.Fatalf("Fired = %d, want 0", n)
	}
	if IsFault(errors.New("x")) {
		t.Error("IsFault(plain error) = true")
	}
}

func TestArmedDeterminism(t *testing.T) {
	if !Active {
		t.Skip("failpoints not compiled in (build without -tags faultinject)")
	}
	cfg := Config{Seed: 42, Rates: map[string]float64{SiteCache: 0.5, SiteFactor: 0.2}}
	record := func() ([]bool, []bool, uint64) {
		Configure(cfg)
		var corrupt, inject []bool
		for i := 0; i < 200; i++ {
			corrupt = append(corrupt, Corrupt(SiteCache))
			inject = append(inject, Inject(SiteFactor) != nil)
		}
		return corrupt, inject, Fired(SiteCache)
	}
	c1, i1, f1 := record()
	c2, i2, f2 := record()
	if f1 == 0 {
		t.Fatal("rate 0.5 never fired in 200 hits")
	}
	if f1 != f2 {
		t.Fatalf("fired counts differ across identical runs: %d vs %d", f1, f2)
	}
	for k := range c1 {
		if c1[k] != c2[k] || i1[k] != i2[k] {
			t.Fatalf("decision sequence diverged at hit %d", k)
		}
	}
	if err := Inject(SiteFactor); err != nil && !IsFault(err) {
		t.Errorf("injected error not classified by IsFault: %v", err)
	}
	Reset()
}
