//go:build faultinject

package faultinject

import (
	"fmt"
	"hash/maphash"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Active reports whether the failpoints are compiled in.
const Active = true

type runtimeState struct {
	seed    uint64
	sleep   time.Duration
	rates   map[string]float64
	crashAt map[string]uint64
}

var (
	current atomic.Pointer[runtimeState]
	hits    sync.Map // site -> *atomic.Uint64: calls seen
	fires   sync.Map // site -> *atomic.Uint64: faults fired
)

func init() {
	cfg := Config{}
	if v := os.Getenv("FAULTINJECT_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			cfg.Seed = n
		}
	}
	if v := os.Getenv("FAULTINJECT_SLEEP"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			cfg.SleepFor = int64(d)
		}
	}
	if v := os.Getenv("FAULTINJECT_RATES"); v != "" {
		cfg.Rates = map[string]float64{}
		for _, kv := range strings.Split(v, ",") {
			site, rate, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				continue
			}
			if r, err := strconv.ParseFloat(rate, 64); err == nil {
				cfg.Rates[site] = r
			}
		}
	}
	if v := os.Getenv("FAULTINJECT_CRASH"); v != "" {
		cfg.CrashAt = map[string]uint64{}
		for _, kv := range strings.Split(v, ",") {
			site, ord, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				continue
			}
			if n, err := strconv.ParseUint(ord, 10, 64); err == nil && n > 0 {
				cfg.CrashAt[site] = n
			}
		}
	}
	Configure(cfg)
}

// Configure arms the failpoints and resets all counters.
func Configure(cfg Config) {
	st := &runtimeState{
		seed:    uint64(cfg.Seed),
		sleep:   time.Duration(cfg.SleepFor),
		rates:   map[string]float64{},
		crashAt: map[string]uint64{},
	}
	if st.seed == 0 {
		st.seed = 1
	}
	if st.sleep <= 0 {
		st.sleep = 2 * time.Millisecond
	}
	for k, v := range cfg.Rates {
		st.rates[k] = v
	}
	for k, v := range cfg.CrashAt {
		st.crashAt[k] = v
	}
	current.Store(st)
	hits.Range(func(k, _ any) bool { hits.Delete(k); return true })
	fires.Range(func(k, _ any) bool { fires.Delete(k); return true })
}

// Reset disarms every failpoint and clears the counters.
func Reset() { Configure(Config{}) }

func counter(m *sync.Map, site string) *atomic.Uint64 {
	if c, ok := m.Load(site); ok {
		return c.(*atomic.Uint64)
	}
	c, _ := m.LoadOrStore(site, new(atomic.Uint64))
	return c.(*atomic.Uint64)
}

// mix is the SplitMix64 finalizer (same avalanche as internal/pool).
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

var siteSeed = maphash.MakeSeed()

// fire draws the deterministic decision for the site's next hit.
func fire(site string) bool {
	st := current.Load()
	if st == nil {
		return false
	}
	rate, ok := st.rates[site]
	if !ok || rate <= 0 {
		return false
	}
	n := counter(&hits, site).Add(1)
	h := mix(st.seed ^ maphash.String(siteSeed, site) ^ n)
	if float64(h>>11)/(1<<53) >= rate {
		return false
	}
	counter(&fires, site).Add(1)
	return true
}

// Inject returns an injected error (wrapping ErrFault) on the site's
// deterministically chosen hits, nil otherwise.
func Inject(site string) error {
	if fire(site) {
		return fmt.Errorf("%w at %s", ErrFault, site)
	}
	return nil
}

// Panic panics on the site's deterministically chosen hits.
func Panic(site string) {
	if fire(site) {
		panic(fmt.Sprintf("faultinject: spurious panic at %s", site))
	}
}

// Sleep delays the caller on the site's deterministically chosen hits.
func Sleep(site string) {
	if fire(site) {
		time.Sleep(current.Load().sleep)
	}
}

// Corrupt reports whether the caller should corrupt its data on this
// hit.
func Corrupt(site string) bool { return fire(site) }

// Crashpoint reports whether the site's armed crash ordinal has been
// reached: hit counting is per-site, and exactly the configured
// (1-based) hit returns true. Callers then tear their in-flight write
// and call KillSelf.
func Crashpoint(site string) bool {
	st := current.Load()
	if st == nil {
		return false
	}
	at, ok := st.crashAt[site]
	if !ok {
		return false
	}
	return counter(&hits, "crash:"+site).Add(1) == at
}

// KillSelf delivers SIGKILL to the current process and never returns:
// no deferred cleanup, no buffered flushing — the closest a test gets
// to a power cut.
func KillSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {}
}

// Fired reports how many faults the site has fired since the last
// Configure/Reset.
func Fired(site string) uint64 {
	if c, ok := fires.Load(site); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}
