// Package faultinject provides seeded, deterministic failpoints for
// chaos testing the serve/engine stack.
//
// Production builds pay nothing: without the `faultinject` build tag,
// Active is the constant false and every hook is an empty inlinable
// no-op, so the tagged call sites (band-LU factorization, pool
// workers, the serve batcher and response cache) compile to dead
// code. Test builds enable the hooks with
//
//	go test -tags faultinject ...
//
// and arm them either programmatically (Configure) or via the
// environment: FAULTINJECT_RATES="numeric.factor=0.01,pool.worker=0.05",
// FAULTINJECT_SEED=7, FAULTINJECT_SLEEP=2ms.
//
// Determinism: each site keeps an atomic hit counter, and the fire
// decision for hit n is a pure hash of (seed, site, n). For a fixed
// seed and rate the set of firing ordinals at a site is therefore
// reproducible across runs — concurrency may reorder which goroutine
// draws which ordinal, but never how many faults fire or where in the
// site's hit sequence they land.
package faultinject

import "errors"

// Failpoint sites tagged in the codebase.
const (
	// SiteFactor simulates a numeric factorization failure inside
	// numeric.FactorBandLU (surfaces as a retryable engine error).
	SiteFactor = "numeric.factor"
	// SitePoolWorker delays a pool worker between claimed indices.
	SitePoolWorker = "pool.worker"
	// SiteBatch panics inside a batched serve compute closure (the
	// handler's recover converts it to a 500).
	SiteBatch = "serve.batch"
	// SiteCache corrupts a response-cache entry as it is stored (the
	// integrity checksum detects it on the next hit).
	SiteCache = "serve.cache"
	// SiteSession panics inside a what-if session compute (the
	// handler's recover converts it to a 500; the session survives).
	SiteSession = "serve.session"
	// SiteStoreWrite injects a write error inside internal/store's
	// snapshot and journal writers (surfaces as a persistence error
	// counter; serving is unaffected).
	SiteStoreWrite = "store.write"
	// SiteStoreShort makes one store write short: only a prefix of the
	// record reaches the file before the error returns — a full disk
	// mid-record. The torn bytes must be discarded on the next load.
	SiteStoreShort = "store.short"
	// SiteStoreSync injects an fsync error inside internal/store
	// (durability degraded, correctness preserved).
	SiteStoreSync = "store.sync"
)

// Crash sites, armed via Config.CrashAt / FAULTINJECT_CRASH rather
// than rates: at the armed ordinal the process writes a torn prefix of
// the in-flight record and SIGKILLs itself — the closest a test can
// get to a power cut mid-write. internal/chaos's crash harness runs a
// real rlckitd child into each of these and asserts recovery.
const (
	// SiteCrashJournal dies mid journal append (torn frame on disk).
	SiteCrashJournal = "store.crash.journal"
	// SiteCrashSnapshot dies mid snapshot record write (torn temp file;
	// the previous snapshot must survive the crash untouched).
	SiteCrashSnapshot = "store.crash.snapshot"
	// SiteCrashRename dies after the snapshot temp file is complete but
	// before the atomic rename installs it.
	SiteCrashRename = "store.crash.rename"
	// SiteCrashRewrite dies mid journal compaction rewrite.
	SiteCrashRewrite = "store.crash.rewrite"
)

// ErrFault is the sentinel wrapped by every injected error, so layers
// above can classify a failure as injected (and map it to a retryable
// status) via IsFault.
var ErrFault = errors.New("faultinject: injected fault")

// IsFault reports whether err is (or wraps) an injected fault.
func IsFault(err error) bool {
	return Active && errors.Is(err, ErrFault)
}

// Config arms the failpoints (only effective under the faultinject
// build tag).
type Config struct {
	// Seed drives the per-site fire decisions; 0 means 1.
	Seed int64
	// Rates maps site name to fire probability in [0, 1].
	Rates map[string]float64
	// SleepFor is the delay injected by Sleep sites; 0 means 2ms.
	SleepFor int64 // nanoseconds
	// CrashAt arms crash sites: the site's Nth Crashpoint hit (1-based)
	// SIGKILLs the process. Environment form:
	// FAULTINJECT_CRASH="store.crash.journal=2".
	CrashAt map[string]uint64
}
