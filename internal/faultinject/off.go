//go:build !faultinject

package faultinject

// Active reports whether the failpoints are compiled in. As a constant
// false it turns every gated call site into dead code.
const Active = false

// Configure is a no-op without the faultinject build tag.
func Configure(Config) {}

// Reset is a no-op without the faultinject build tag.
func Reset() {}

// Inject never fires without the faultinject build tag.
func Inject(string) error { return nil }

// Panic never fires without the faultinject build tag.
func Panic(string) {}

// Sleep never fires without the faultinject build tag.
func Sleep(string) {}

// Corrupt never fires without the faultinject build tag.
func Corrupt(string) bool { return false }

// Fired always reports zero without the faultinject build tag.
func Fired(string) uint64 { return 0 }

// Crashpoint never fires without the faultinject build tag.
func Crashpoint(string) bool { return false }

// KillSelf is a no-op without the faultinject build tag (it is only
// reachable behind a Crashpoint that never fires).
func KillSelf() {}
