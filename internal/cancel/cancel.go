// Package cancel defines the typed cancellation errors the compute
// engines return and the checkpoint helper they call.
//
// Engines (mna transients, mor Arnoldi builds, sweep sample loops,
// rlctree analyses) observe a context.Context at amortized
// checkpoints — once per timestep chunk, frequency, sample or Arnoldi
// block, never per inner iteration — by calling Check. A canceled
// context surfaces as ErrCanceled, an expired deadline as ErrDeadline,
// so the serving layer can distinguish "client went away" from
// "compute budget exhausted" without string matching.
//
// Check(nil) and Check(context.Background()) cost two compares and no
// allocation, so hot loops may call it unconditionally on their
// checkpoint stride.
package cancel

import (
	"context"
	"errors"
)

// ErrCanceled reports that the context driving a computation was
// canceled (client disconnect, server shutdown).
var ErrCanceled = errors.New("rlckit: computation canceled")

// ErrDeadline reports that the computation's deadline expired.
var ErrDeadline = errors.New("rlckit: compute deadline exceeded")

// Check is the engine checkpoint: it returns nil while ctx is live
// (or nil), ErrDeadline once its deadline has expired, and ErrCanceled
// once it has been canceled for any other reason.
func Check(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
	default:
		return nil
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

// Is reports whether err is (or wraps) one of the typed cancellation
// errors. Layers that decorate task errors with positional context
// ("net 7 corner fast draw 3: ...") must return cancellation errors
// bare instead, so Is keeps working at the serving layer.
func Is(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}
