package cancel

import (
	"context"
	"testing"
	"time"
)

func TestCheckLiveContexts(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background(), context.TODO()} {
		if err := Check(ctx); err != nil {
			t.Errorf("Check(%v) = %v, want nil", ctx, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if err := Check(ctx); err != nil {
		t.Errorf("Check(live deadline ctx) = %v, want nil", err)
	}
}

func TestCheckCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Check(ctx); err != ErrCanceled {
		t.Fatalf("Check(canceled) = %v, want ErrCanceled", err)
	}
	if !Is(Check(ctx)) {
		t.Error("Is(ErrCanceled) = false")
	}
}

func TestCheckDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := Check(ctx); err != ErrDeadline {
		t.Fatalf("Check(expired) = %v, want ErrDeadline", err)
	}
	if !Is(Check(ctx)) {
		t.Error("Is(ErrDeadline) = false")
	}
}

// A parent cancelation observed through a child with a far deadline
// must still read as canceled, not deadline.
func TestCheckParentCancelThroughDeadlineChild(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	child, stop := context.WithTimeout(parent, time.Hour)
	defer stop()
	cancel()
	if err := Check(child); err != ErrCanceled {
		t.Fatalf("Check(child of canceled parent) = %v, want ErrCanceled", err)
	}
}

func TestIsRejectsOtherErrors(t *testing.T) {
	if Is(nil) {
		t.Error("Is(nil) = true")
	}
	if Is(context.Canceled) {
		t.Error("Is(context.Canceled) = true; engines return the typed sentinels, not the context errors")
	}
}
