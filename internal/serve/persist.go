package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/maphash"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rlckit"
	"rlckit/internal/store"
)

// This file wires internal/store into the Server: a checksummed
// snapshot of the response cache and the reduced-model pencils plus an
// append-only journal of session opens/edits/closes. Recovery runs
// inside New — before the caller opens a listener — and restores warm
// cache entries (served byte-identical to the cold computes that
// produced them), pencils (warm reduced analyses skip the Arnoldi
// build bit-identically) and live sessions (rebuilt by replaying their
// edit history; sessions are deterministic in their edit sequence).
//
// Corruption policy is inherited from internal/store: every record and
// journal frame is CRC-framed; anything torn, corrupt or
// version-stale is counted (Stats.StoreDiscardedCorrupt) and dropped,
// never served. The serving layer adds its own guard on top: a
// snapshot key that no longer decodes to a canonical cacheKey is
// discarded the same way.

// storeVersion is the serving layer's store-format version, stamped
// into the snapshot and journal headers. Bump it when the cacheKey
// codec or the journal record shape changes incompatibly: stale files
// are then dropped wholesale at open (a cold start), never misread.
const storeVersion = 1

// Store namespaces.
const (
	nsCache  uint8 = 1
	nsPencil uint8 = 2
)

// pencilStore is the Server's rlckit.TreeConfig.Pencils backend: an
// in-memory map of certified reduced-model pencils keyed by the exact
// tree+drive+config bits, persisted through the snapshot store when
// one is configured. Safe for concurrent use.
type pencilStore struct {
	mu     sync.Mutex
	m      map[string][]byte
	hits   atomic.Uint64
	builds atomic.Uint64
}

func newPencilStore() *pencilStore {
	return &pencilStore{m: make(map[string][]byte)}
}

func (p *pencilStore) GetPencil(key string) ([]byte, bool) {
	p.mu.Lock()
	v, ok := p.m[key]
	p.mu.Unlock()
	if ok {
		p.hits.Add(1)
	}
	return v, ok
}

func (p *pencilStore) PutPencil(key string, pencil []byte) {
	p.builds.Add(1)
	p.restore(key, pencil)
}

// restore inserts without counting a build (recovery path).
func (p *pencilStore) restore(key string, pencil []byte) {
	cp := append([]byte(nil), pencil...)
	p.mu.Lock()
	p.m[key] = cp
	p.mu.Unlock()
}

// snapshot copies the map out in sorted key order, so consecutive
// snapshots of the same state are byte-identical on disk.
func (p *pencilStore) snapshot() (keys []string, vals [][]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys = make([]string, 0, len(p.m))
	for k := range p.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals = make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = p.m[k]
	}
	return keys, vals
}

// journalRecord is one session-journal entry, JSON-encoded inside the
// store's CRC frame. Op "open" carries the original /v1/session
// request body (replaying it through the same decoder rebuilds the
// identical tree); "edit" carries one applied batch; "close" retires
// an ID (explicit delete or eviction).
type journalRecord struct {
	Op    string               `json:"op"`
	ID    string               `json:"id"`
	Body  json.RawMessage      `json:"body,omitempty"`
	Edits []rlckit.SessionEdit `json:"edits,omitempty"`
}

// openStore opens the store directory, recovers the previous process's
// state, and starts the snapshot loop. Called from New.
func (s *Server) openStore() error {
	st, err := store.Open(s.cfg.StoreDir, store.Options{Version: storeVersion, Sync: s.cfg.JournalSync})
	if err != nil {
		return err
	}
	s.store = st
	s.recoverStore()
	s.snapStop = make(chan struct{})
	s.snapDone = make(chan struct{})
	interval := s.cfg.SnapshotInterval
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}
	if interval > 0 {
		go s.snapshotLoop(interval)
	} else {
		close(s.snapDone)
	}
	return nil
}

// recoverStore loads the snapshot into the cache and pencil store,
// then replays the session journal. Store-level corruption is already
// counted by internal/store; this layer additionally discards records
// whose keys or payloads no longer decode.
func (s *Server) recoverStore() {
	_ = s.store.LoadSnapshot(func(ns uint8, key, val []byte) {
		switch ns {
		case nsCache:
			if s.cache == nil {
				return
			}
			k, ok := decodeCacheKey(key)
			if !ok {
				s.storeDiscarded.Add(1)
				return
			}
			body := append([]byte(nil), val...)
			s.cache.Put(k, cacheEntry{body: body, sum: maphash.Bytes(cacheHashSeed, body), warm: true})
			s.storeRecovered.Add(1)
		case nsPencil:
			s.pencils.restore(string(key), val)
			s.storeRecovered.Add(1)
		default:
			s.storeDiscarded.Add(1)
		}
	})
	_ = s.store.ReplayJournal(func(payload []byte) error {
		s.replayRecord(payload)
		return nil
	})
}

// replayRecord applies one journal record to the session registry. A
// record that fails to decode or apply is dropped and counted — the
// journal's CRC framing already cut torn tails, so a failure here
// means a semantically invalid record, and serving without that
// session beats serving a wrong one.
func (s *Server) replayRecord(payload []byte) {
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		s.storeDiscarded.Add(1)
		return
	}
	switch rec.Op {
	case "open":
		t, drv, key, err := parseTreeRequest(bytes.NewReader(rec.Body))
		if err != nil {
			s.storeDiscarded.Add(1)
			return
		}
		sess, err := rlckit.OpenSession(t, drv, rlckit.TreeConfig{Pencils: s.pencils})
		if err != nil {
			s.storeDiscarded.Add(1)
			return
		}
		s.restoreSession(rec.ID, sess, t.Len(), key.method, rec.Body)
		s.storeRecovered.Add(1)
	case "edit":
		s.sessMu.Lock()
		ls := s.sessions[rec.ID]
		s.sessMu.Unlock()
		if ls == nil {
			// The open was dropped (or this ID was closed); its edits
			// follow it out.
			s.storeDiscarded.Add(1)
			return
		}
		if err := ls.sess.Apply(rec.Edits); err != nil {
			s.storeDiscarded.Add(1)
			return
		}
		s.storeRecovered.Add(1)
	case "close":
		s.sessMu.Lock()
		if ls := s.sessions[rec.ID]; ls != nil {
			ls.sess.Close()
			delete(s.sessions, rec.ID)
		}
		s.sessMu.Unlock()
		s.storeRecovered.Add(1)
	default:
		s.storeDiscarded.Add(1)
	}
}

// restoreSession registers a replayed session under its original ID,
// advancing sessSeq past it so new sessions never collide with
// recovered ones.
func (s *Server) restoreSession(id string, sess *rlckit.Session, nodes int, engine uint8, body json.RawMessage) {
	seq := uint64(0)
	if strings.HasPrefix(id, "s") {
		if n, err := strconv.ParseUint(id[1:], 10, 64); err == nil {
			seq = n
		}
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if seq > s.sessSeq {
		s.sessSeq = seq
	}
	s.sessions[id] = &liveSession{
		sess: sess, nodes: nodes, engine: engine, seq: seq,
		body: append(json.RawMessage(nil), body...), last: time.Now(),
	}
	s.sessOpened.Add(1)
}

// journalAppend marshals and appends one record under persistMu.
// Append errors are swallowed: the store rolls a failed append back to
// a clean frame boundary, so the journal stays replayable and the
// session merely loses crash durability for this record.
func (s *Server) journalAppend(rec journalRecord) {
	if s.store == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	_ = s.store.Append(payload)
}

// journalCloses appends close records for evicted session IDs.
func (s *Server) journalCloses(ids []string) {
	for _, id := range ids {
		s.journalAppend(journalRecord{Op: "close", ID: id})
	}
}

// applyAndJournal applies an edit batch and journals it as one
// serialized step, so the journal's batch order always matches the
// order the batches were applied in (replay equivalence). Without a
// store it is a plain Apply.
func (s *Server) applyAndJournal(id string, ls *liveSession, edits []rlckit.SessionEdit) error {
	if s.store == nil {
		return ls.sess.Apply(edits)
	}
	payload, merr := json.Marshal(journalRecord{Op: "edit", ID: id, Edits: edits})
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if err := ls.sess.Apply(edits); err != nil {
		return err
	}
	if merr == nil {
		_ = s.store.Append(payload)
	}
	return nil
}

// snapshotNow writes one atomic snapshot (cache entries + pencils) and
// compacts the journal down to the live sessions. A crash at any point
// leaves either the previous snapshot+journal or the new ones — the
// store's temp-file/rename protocol guarantees it.
func (s *Server) snapshotNow() error {
	if s.store == nil {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	w, err := s.store.BeginSnapshot()
	if err != nil {
		return err
	}
	if s.cache != nil {
		s.cache.Range(func(k cacheKey, e cacheEntry) bool {
			// Never persist an entry that fails its in-memory checksum.
			if maphash.Bytes(cacheHashSeed, e.body) != e.sum {
				return true
			}
			err = w.Add(nsCache, encodeCacheKey(&k), e.body)
			return err == nil
		})
		if err != nil {
			w.Abort()
			return err
		}
	}
	keys, vals := s.pencils.snapshot()
	for i, k := range keys {
		if err := w.Add(nsPencil, []byte(k), vals[i]); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Commit(); err != nil {
		return err
	}
	return s.compactJournalLocked()
}

// compactJournalLocked rewrites the journal to exactly the live
// sessions: one open record (the original request body) plus one edit
// record per applied batch, in session-open order. Caller holds
// persistMu; sessMu is taken only for the registry copy, and each
// session's History is read outside any server lock.
func (s *Server) compactJournalLocked() error {
	type ent struct {
		id   string
		seq  uint64
		body json.RawMessage
		sess *rlckit.Session
	}
	s.sessMu.Lock()
	live := make([]ent, 0, len(s.sessions))
	for id, ls := range s.sessions {
		live = append(live, ent{id: id, seq: ls.seq, body: ls.body, sess: ls.sess})
	}
	s.sessMu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	var payloads [][]byte
	for _, e := range live {
		if len(e.body) == 0 {
			continue
		}
		p, err := json.Marshal(journalRecord{Op: "open", ID: e.id, Body: e.body})
		if err != nil {
			continue
		}
		payloads = append(payloads, p)
		for _, batch := range e.sess.History() {
			p, err := json.Marshal(journalRecord{Op: "edit", ID: e.id, Edits: batch})
			if err != nil {
				continue
			}
			payloads = append(payloads, p)
		}
	}
	return s.store.RewriteJournal(payloads)
}

// snapshotLoop snapshots periodically until Close.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			_ = s.snapshotNow()
		}
	}
}

// The cacheKey codec: a fixed-layout binary encoding of the canonical
// request key, so a snapshot written by one process decodes to the
// exact comparable struct in the next. Floats are stored as raw IEEE
// bits (the key is exact-bits by design); the three variable-length
// strings are length-prefixed and placed last.

var ckle = binary.LittleEndian

// ckFixedLen is the fixed prefix: kind, method, 14 float64s, nets,
// seed, samples as u64, one bool byte.
const ckFixedLen = 2 + 14*8 + 3*8 + 1

func encodeCacheKey(k *cacheKey) []byte {
	b := make([]byte, 0, ckFixedLen+12+len(k.node)+len(k.corners)+len(k.tree))
	b = append(b, k.kind, k.method)
	for _, f := range [...]float64{
		k.line.R, k.line.L, k.line.C, k.line.Length,
		k.drive.Rtr, k.drive.CL, k.drive.V, k.rise,
		k.buffer.R0, k.buffer.C0, k.buffer.Amin, k.buffer.Vdd,
		k.sigma, k.drvSig,
	} {
		b = ckle.AppendUint64(b, math.Float64bits(f))
	}
	b = ckle.AppendUint64(b, uint64(k.nets))
	b = ckle.AppendUint64(b, uint64(k.seed))
	b = ckle.AppendUint64(b, uint64(k.samples))
	if k.repeat {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	for _, s := range [...]string{k.node, k.corners, k.tree} {
		b = ckle.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	return b
}

// decodeCacheKey is the exact inverse; it rejects short buffers,
// oversized string lengths and trailing bytes, so a corrupted key can
// never alias a different request.
func decodeCacheKey(b []byte) (cacheKey, bool) {
	var k cacheKey
	if len(b) < ckFixedLen {
		return k, false
	}
	k.kind, k.method = b[0], b[1]
	off := 2
	fs := make([]float64, 14)
	for i := range fs {
		fs[i] = math.Float64frombits(ckle.Uint64(b[off:]))
		off += 8
	}
	k.line.R, k.line.L, k.line.C, k.line.Length = fs[0], fs[1], fs[2], fs[3]
	k.drive.Rtr, k.drive.CL, k.drive.V, k.rise = fs[4], fs[5], fs[6], fs[7]
	k.buffer.R0, k.buffer.C0, k.buffer.Amin, k.buffer.Vdd = fs[8], fs[9], fs[10], fs[11]
	k.sigma, k.drvSig = fs[12], fs[13]
	k.nets = int(int64(ckle.Uint64(b[off:])))
	k.seed = int64(ckle.Uint64(b[off+8:]))
	k.samples = int(int64(ckle.Uint64(b[off+16:])))
	off += 24
	switch b[off] {
	case 0:
	case 1:
		k.repeat = true
	default:
		return cacheKey{}, false
	}
	off++
	strs := make([]string, 3)
	for i := range strs {
		if len(b)-off < 4 {
			return cacheKey{}, false
		}
		n := int(ckle.Uint32(b[off:]))
		off += 4
		if n < 0 || len(b)-off < n {
			return cacheKey{}, false
		}
		strs[i] = string(b[off : off+n])
		off += n
	}
	if off != len(b) {
		return cacheKey{}, false
	}
	k.node, k.corners, k.tree = strs[0], strs[1], strs[2]
	return k, true
}
