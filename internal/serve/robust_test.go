package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file tests the serving layer's robustness contract: request
// cancellation propagates into the engines and frees workers promptly,
// deadlines degrade gracefully instead of failing, cache integrity is
// verified on every hit, and nothing leaks goroutines.

// slowSweepBody is a sweep that takes seconds at Workers:2 — the
// simulated estimator costs ~½ ms per sample and this asks for 10 000.
const slowSweepBody = `{"node":"250nm","nets":10000,"seed":3,"rise_s":5e-11,"estimator":"simulated"}`

// tree64Body renders a 64-sink (127-node) balanced binary tree — the
// same family as rlctree's bench64 — whose shared MNA transient runs
// ~150 ms, long enough to cancel mid-flight.
func tree64Body(engine string) string {
	var b strings.Builder
	b.WriteString(`{"tree":{"root_c":2e-15,"branches":[`)
	for i := 0; i < 126; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		scale := 1 + 0.03*float64(i%4)
		fmt.Fprintf(&b, `{"parent":%d,"r":%g,"l":%g,"c":%g}`, i/2, 18*scale, 0.2e-9*scale, 25e-15*scale)
	}
	b.WriteString(`],"sinks":[`)
	// Nodes 63..126 are the 64 leaves.
	for i := 0; i < 64; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"node":%d,"cl":%g}`, 63+i, float64(4+i%8)*2e-15)
	}
	fmt.Fprintf(&b, `]},"drive":{"rtr":40},"engine":%q}`, engine)
	return b.String()
}

// postCtx drives a request through the full handler chain under ctx.
func postCtx(ctx context.Context, h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestCanceledRequestIs503WithMetadata(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ctx, stop := context.WithCancel(context.Background())
	stop()
	rec := postCtx(ctx, s.Handler(), "/v1/sweep", slowSweepBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	out := rec.Body.String()
	for _, want := range []string{`"reason":"canceled"`, `"retry_after_s":`} {
		if !strings.Contains(out, want) {
			t.Errorf("503 body missing %s: %s", want, out)
		}
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("cancellation 503 without Retry-After header")
	}
	st := s.Stats()
	if st.Canceled != 1 {
		t.Errorf("Stats.Canceled = %d, want 1", st.Canceled)
	}
	if st.Errors != 0 {
		t.Errorf("client cancellation counted as a server error (Errors = %d)", st.Errors)
	}
}

// cancelLatency measures how long a handler takes to return after its
// request context fires mid-flight; the robustness contract is ≤ 50 ms
// (one engine checkpoint).
func cancelLatency(t *testing.T, s *Server, path, body string, warmup time.Duration) (time.Duration, *httptest.ResponseRecorder) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, strings.NewReader(body)).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()
	select {
	case <-done:
		t.Fatalf("%s completed in under %v; request not slow enough to cancel mid-flight", path, warmup)
	case <-time.After(warmup):
	}
	t0 := time.Now()
	stop()
	<-done
	return time.Since(t0), rec
}

func TestSweepCancelMidFlightLatency(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	lat, rec := cancelLatency(t, s, "/v1/sweep", slowSweepBody, 50*time.Millisecond)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	if lat > 50*time.Millisecond {
		t.Errorf("sweep freed its workers %v after cancel, want ≤ 50ms", lat)
	}
	t.Logf("10k-sample simulated sweep released %v after cancel", lat)
}

func TestTreeCancelMidFlightLatency(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	lat, rec := cancelLatency(t, s, "/v1/tree", tree64Body("mna"), 30*time.Millisecond)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	if lat > 50*time.Millisecond {
		t.Errorf("tree transient released %v after cancel, want ≤ 50ms", lat)
	}
	t.Logf("64-sink MNA transient released %v after cancel", lat)
}

// A real client disconnect (not a synthetic context) must cancel the
// compute the same way: the net/http server cancels r.Context() when
// the connection drops.
func TestClientDisconnectCancelsCompute(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, stop := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", strings.NewReader(slowSweepBody))
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	stop()
	if err := <-errCh; err == nil {
		t.Fatal("canceled client request returned no error")
	}
	// The handler notices within one checkpoint; poll the counter
	// rather than racing it.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never counted the disconnected client's cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	http.DefaultClient.CloseIdleConnections()
}

func TestDeadlineExpiryIs503Deadline(t *testing.T) {
	// The closed estimator is already the cheapest, so degradation
	// cannot save a budget that is too small even for it: the sweep
	// starts, the deadline fires mid-run, 503 reason "deadline".
	s := newTestServer(t, Config{Workers: 1, RequestTimeout: 15 * time.Millisecond})
	body := `{"node":"250nm","nets":50000,"seed":3,"rise_s":5e-11,"samples":3}`
	rec := post(s.Handler(), "/v1/sweep", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"reason":"deadline"`) {
		t.Errorf("body missing deadline reason: %s", rec.Body)
	}
	if st := s.Stats(); st.Deadline != 1 {
		t.Errorf("Stats.Deadline = %d, want 1", st.Deadline)
	}
}

func TestSweepDegradesUnderDeadline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, RequestTimeout: 300 * time.Millisecond})
	for round := 0; round < 2; round++ {
		rec := post(s.Handler(), "/v1/sweep", slowSweepBody)
		if rec.Code != 200 {
			t.Fatalf("round %d: status %d: %s", round, rec.Code, rec.Body)
		}
		out := rec.Body.String()
		if !strings.Contains(out, `"degraded":true`) || strings.Contains(out, `"estimator":"simulated"`) {
			t.Fatalf("round %d: response not degraded off the simulated estimator: %.200s", round, out)
		}
		if !strings.Contains(out, `"degrade_reason":"estimator simulated needs`) {
			t.Errorf("round %d: degrade_reason missing budget arithmetic: %.300s", round, out)
		}
		// Degraded responses are never cached: the retry recomputes.
		if got := rec.Header().Get("X-Cache"); got != "miss" {
			t.Errorf("round %d: degraded response X-Cache = %q, want miss", round, got)
		}
	}
	if st := s.Stats(); st.Degraded != 2 {
		t.Errorf("Stats.Degraded = %d, want 2", st.Degraded)
	}
}

func TestTreeDegradesUnderDeadline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, RequestTimeout: 40 * time.Millisecond})
	rec := post(s.Handler(), "/v1/tree", tree64Body("mna"))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	out := rec.Body.String()
	if !strings.Contains(out, `"degraded":true`) || strings.Contains(out, `"engine":"mna"`) {
		t.Fatalf("tree response not degraded off the MNA engine: %.200s", out)
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("degraded tree response X-Cache = %q, want miss", got)
	}
	// The same request without a deadline answers with the full engine
	// and is cacheable.
	s2 := newTestServer(t, Config{Workers: 2})
	rec = post(s2.Handler(), "/v1/tree", tree64Body("mna"))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"engine":"mna"`) {
		t.Fatalf("undegraded request: status %d: %.200s", rec.Code, rec.Body)
	}
}

// A cache entry whose body no longer matches its stored checksum must
// be counted, reported as a miss, and recomputed — never served.
func TestPoisonedCacheEntryRecomputed(t *testing.T) {
	s := newTestServer(t, Config{})
	first := post(s.Handler(), "/v1/delay", delayBody)
	if first.Code != 200 {
		t.Fatalf("status %d", first.Code)
	}
	key, err := parseDelayRequest(strings.NewReader(delayBody))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.cache.Get(key)
	if !ok {
		t.Fatal("response was not cached")
	}
	poisoned := append([]byte(nil), e.body...)
	poisoned[len(poisoned)/2] ^= 0x40
	s.cache.Put(key, cacheEntry{body: poisoned, sum: e.sum})

	second := post(s.Handler(), "/v1/delay", delayBody)
	if second.Code != 200 {
		t.Fatalf("status %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("poisoned entry served as a %q", got)
	}
	if second.Body.String() != first.Body.String() {
		t.Error("recomputed body differs from the original")
	}
	if st := s.Stats(); st.CachePoisoned != 1 {
		t.Errorf("Stats.CachePoisoned = %d, want 1", st.CachePoisoned)
	}
	// The recompute overwrote the poisoned entry: next hit is clean.
	if third := post(s.Handler(), "/v1/delay", delayBody); third.Header().Get("X-Cache") != "hit" {
		t.Error("cache not repaired after poisoned recompute")
	}
}

func TestAdaptiveRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	// Prime the latency EWMA with one real batch.
	if rec := post(s.Handler(), "/v1/delay", delayBody); rec.Code != 200 {
		t.Fatalf("prime: status %d", rec.Code)
	}
	s.sem <- struct{}{}
	rec := post(s.Handler(), "/v1/delay", delayBody)
	<-s.sem
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Fatal("429 without Retry-After")
	}
	// The hint is computed, not hardcoded: it must respect the clamp
	// at both ends when the batcher state is pushed there.
	s.batch.batchNanos.Store(int64(2 * time.Minute))
	if got := s.retryAfterSecs(); got != 30 {
		t.Errorf("retryAfterSecs with 2min batches = %d, want clamp 30", got)
	}
	s.batch.batchNanos.Store(int64(time.Microsecond))
	if got := s.retryAfterSecs(); got != 1 {
		t.Errorf("retryAfterSecs with 1µs batches = %d, want floor 1", got)
	}
}

// Close cancels every in-flight request's context: a long sweep
// returns 503 promptly instead of holding workers through shutdown.
func TestCloseCancelsInFlight(t *testing.T) {
	s, _ := New(Config{Workers: 2})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(slowSweepBody))
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()
	time.Sleep(50 * time.Millisecond)
	t0 := time.Now()
	s.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight sweep did not return after Close")
	}
	if lat := time.Since(t0); lat > 500*time.Millisecond {
		t.Errorf("in-flight sweep released %v after Close", lat)
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503: %s", rec.Code, rec.Body)
	}
}

// waitStableGoroutines polls until the goroutine count returns to (or
// near) base, failing with a stack dump after a deadline — the
// hand-rolled goleak assertion shared with internal/pool's tests.
func waitStableGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Mixed traffic — including mid-flight cancellations — must leave no
// goroutines behind once the server is closed.
func TestNoGoroutineLeakAfterMixedLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	s, _ := New(Config{Workers: 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"line":{"rt":%d,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":250,"cl":1e-13}}`, 400+i)
			post(s.Handler(), "/v1/delay", body)
		}(i)
	}
	// Two sweeps canceled mid-flight.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, stop := context.WithCancel(context.Background())
			go func() { time.Sleep(30 * time.Millisecond); stop() }()
			postCtx(ctx, s.Handler(), "/v1/sweep", slowSweepBody)
			stop()
		}()
	}
	wg.Wait()
	s.Close()
	waitStableGoroutines(t, base)
}
