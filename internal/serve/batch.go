package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rlckit/internal/pool"
)

// errClosed is returned by batcher.do once the server is shutting down.
var errClosed = errors.New("serve: server closed")

// task is one unit of single-net compute waiting to be coalesced.
type task struct {
	fn   func()
	done chan struct{}
}

// batcher coalesces concurrent single-net requests into batches that
// run on the shared internal/pool worker pool, instead of letting every
// HTTP connection goroutine compute independently. Under load this
// bounds compute parallelism to the configured worker count (the
// net/http goroutines just park on their task's done channel), and it
// amortizes scheduling: one pool.Run dispatch per batch rather than per
// request.
//
// With window == 0 the dispatcher drains whatever is already queued and
// runs it immediately — zero added latency for a lone request, natural
// batching under concurrency (while a batch computes, new arrivals
// accumulate in the channel). A positive window instead holds the first
// request up to that long to let a batch form, trading tail latency for
// larger batches; it is a tuning flag on cmd/rlckitd, not the default.
type batcher struct {
	tasks    chan *task
	quit     chan struct{}
	wg       sync.WaitGroup
	workers  int
	maxBatch int
	window   time.Duration

	batches atomic.Uint64 // pool dispatches
	batched atomic.Uint64 // tasks across all dispatches
}

func newBatcher(workers, maxBatch int, window time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 64
	}
	b := &batcher{
		tasks:    make(chan *task, maxBatch),
		quit:     make(chan struct{}),
		workers:  workers,
		maxBatch: maxBatch,
		window:   window,
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// do schedules fn onto the batching pool and blocks until it has run.
// It returns errClosed (without any guarantee about fn) once the
// batcher is shut down.
func (b *batcher) do(fn func()) error {
	t := &task{fn: fn, done: make(chan struct{})}
	select {
	case b.tasks <- t:
	case <-b.quit:
		return errClosed
	}
	select {
	case <-t.done:
		return nil
	case <-b.quit:
		return errClosed
	}
}

// close stops the dispatcher. Queued tasks that never ran are released
// via the quit channel their submitters also select on.
func (b *batcher) close() {
	close(b.quit)
	b.wg.Wait()
}

func (b *batcher) loop() {
	defer b.wg.Done()
	for {
		var first *task
		select {
		case first = <-b.tasks:
		case <-b.quit:
			return
		}
		batch := append(make([]*task, 0, b.maxBatch), first)
		if b.window > 0 {
			timer := time.NewTimer(b.window)
		windowed:
			for len(batch) < b.maxBatch {
				select {
				case t := <-b.tasks:
					batch = append(batch, t)
				case <-timer.C:
					break windowed
				case <-b.quit:
					break windowed
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < b.maxBatch {
				select {
				case t := <-b.tasks:
					batch = append(batch, t)
				default:
					break drain
				}
			}
		}
		b.batches.Add(1)
		b.batched.Add(uint64(len(batch)))
		// The pool bounds compute parallelism; results land in each
		// task's own captured state, so batch composition is invisible
		// in the responses.
		_ = pool.Run(b.workers, len(batch), func() struct{} { return struct{}{} },
			func(_ struct{}, i int) error {
				defer close(batch[i].done)
				batch[i].fn()
				return nil
			})
		select {
		case <-b.quit:
			return
		default:
		}
	}
}
