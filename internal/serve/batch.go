package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rlckit/internal/cancel"
	"rlckit/internal/pool"
)

// errClosed is returned by batcher.do once the server is shutting down.
var errClosed = errors.New("serve: server closed")

// task is one unit of single-net compute waiting to be coalesced.
type task struct {
	fn   func()
	done chan struct{}
	// canceled marks a task whose submitter's context fired after the
	// task was enqueued: the dispatcher skips it if it has not started.
	canceled atomic.Bool
}

// batcher coalesces concurrent single-net requests into batches that
// run on the shared internal/pool worker pool, instead of letting every
// HTTP connection goroutine compute independently. Under load this
// bounds compute parallelism to the configured worker count (the
// net/http goroutines just park on their task's done channel), and it
// amortizes scheduling: one pool.Run dispatch per batch rather than per
// request.
//
// With window == 0 the dispatcher drains whatever is already queued and
// runs it immediately — zero added latency for a lone request, natural
// batching under concurrency (while a batch computes, new arrivals
// accumulate in the channel). A positive window instead holds the first
// request up to that long to let a batch form, trading tail latency for
// larger batches; it is a tuning flag on cmd/rlckitd, not the default.
//
// Cancellation: do takes the request context. A context that fires
// before the task is enqueued aborts immediately; one that fires while
// the task is queued or running marks the task canceled — an unstarted
// task is skipped by the dispatcher, a running one is expected to
// return at its engine's next context checkpoint — and do then still
// waits for the done signal, so fn's captured result variables are
// never written after do has returned.
type batcher struct {
	tasks    chan *task
	quit     chan struct{}
	wg       sync.WaitGroup
	workers  int
	maxBatch int
	window   time.Duration

	batches atomic.Uint64 // pool dispatches
	batched atomic.Uint64 // tasks across all dispatches
	skipped atomic.Uint64 // canceled tasks skipped before starting
	// batchNanos is a single-writer EWMA (α = ¼) of the wall time of one
	// pool dispatch, feeding the adaptive Retry-After hint.
	batchNanos atomic.Int64
}

func newBatcher(workers, maxBatch int, window time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 64
	}
	b := &batcher{
		tasks:    make(chan *task, maxBatch),
		quit:     make(chan struct{}),
		workers:  workers,
		maxBatch: maxBatch,
		window:   window,
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// do schedules fn onto the batching pool and blocks until it has run,
// been skipped, or the batcher has shut down. It returns errClosed once
// the batcher is shut down (without any guarantee about fn), and the
// typed cancel sentinel once ctx — which may be nil — has fired and the
// task has fully retired.
func (b *batcher) do(ctx context.Context, fn func()) error {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	t := &task{fn: fn, done: make(chan struct{})}
	select {
	case b.tasks <- t:
	case <-b.quit:
		return errClosed
	case <-ctxDone:
		return cancel.Check(ctx)
	}
	select {
	case <-t.done:
		return nil
	case <-b.quit:
		return errClosed
	case <-ctxDone:
		t.canceled.Store(true)
		// The task may be mid-run with fn writing into variables the
		// caller owns: wait for done (the engine's own context
		// checkpoints bound how long a running fn keeps going) instead
		// of returning into a data race.
		select {
		case <-t.done:
		case <-b.quit:
			return errClosed
		}
		return cancel.Check(ctx)
	}
}

// queueDepth reports how many tasks are waiting for a dispatcher slot.
func (b *batcher) queueDepth() int { return len(b.tasks) }

// meanBatchNanos reports the EWMA wall time of one pool dispatch (zero
// until the first batch completes).
func (b *batcher) meanBatchNanos() int64 { return b.batchNanos.Load() }

// close stops the dispatcher. Queued tasks that never ran are released
// via the quit channel their submitters also select on.
func (b *batcher) close() {
	close(b.quit)
	b.wg.Wait()
}

func (b *batcher) loop() {
	defer b.wg.Done()
	for {
		var first *task
		select {
		case first = <-b.tasks:
		case <-b.quit:
			return
		}
		batch := append(make([]*task, 0, b.maxBatch), first)
		if b.window > 0 {
			timer := time.NewTimer(b.window)
		windowed:
			for len(batch) < b.maxBatch {
				select {
				case t := <-b.tasks:
					batch = append(batch, t)
				case <-timer.C:
					break windowed
				case <-b.quit:
					break windowed
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < b.maxBatch {
				select {
				case t := <-b.tasks:
					batch = append(batch, t)
				default:
					break drain
				}
			}
		}
		b.batches.Add(1)
		b.batched.Add(uint64(len(batch)))
		// The pool bounds compute parallelism; results land in each
		// task's own captured state, so batch composition is invisible
		// in the responses.
		start := time.Now()
		_ = pool.Run(b.workers, len(batch), func() struct{} { return struct{}{} },
			func(_ struct{}, i int) error {
				t := batch[i]
				defer close(t.done)
				if t.canceled.Load() {
					b.skipped.Add(1)
					return nil
				}
				t.fn()
				return nil
			})
		// Single-writer EWMA: only this loop stores, so the
		// read-modify-write needs no CAS.
		dur := time.Since(start).Nanoseconds()
		old := b.batchNanos.Load()
		if old == 0 {
			b.batchNanos.Store(dur)
		} else {
			b.batchNanos.Store(old + (dur-old)/4)
		}
		select {
		case <-b.quit:
			return
		default:
		}
	}
}
