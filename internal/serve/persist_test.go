package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// This file tests the crash-safe persistence layer (persist.go): the
// cacheKey codec, warm-start byte-identity, session journal replay,
// journal compaction, and the corruption policy (discarded and
// counted, never served). The kill-mid-write crash harness that SIGKILLs
// a real rlckitd child lives in internal/chaos.

// storeConfig is the base config for persistence tests: a store
// directory, no periodic loop (snapshots are taken explicitly or on
// Close), and no admission variance.
func storeConfig(dir string) Config {
	return Config{StoreDir: dir, SnapshotInterval: -1}
}

// parseKeys runs every decoder over the shared request seeds and
// collects the canonical keys they accept — a cheap way to cover every
// kind and every populated field combination with real values.
func parseKeys(t *testing.T) []cacheKey {
	t.Helper()
	var keys []cacheKey
	for _, s := range requestSeeds {
		if k, err := parseDelayRequest(strings.NewReader(s)); err == nil {
			keys = append(keys, k)
		}
		if k, err := parseScreenRequest(strings.NewReader(s)); err == nil {
			keys = append(keys, k)
		}
		if k, err := parseRepeatersRequest(strings.NewReader(s)); err == nil {
			keys = append(keys, k)
		}
		if _, k, _, err := parseSweepRequest(strings.NewReader(s)); err == nil {
			keys = append(keys, k)
		}
		if _, _, k, err := parseTreeRequest(strings.NewReader(s)); err == nil {
			keys = append(keys, k)
		}
	}
	if len(keys) < 5 {
		t.Fatalf("only %d keys parsed from the seeds", len(keys))
	}
	return keys
}

// TestCacheKeyCodecRoundTrip: every canonical key the decoders accept
// must survive encode→decode exactly (the comparable struct is the
// cache identity — one changed bit is a different request).
func TestCacheKeyCodecRoundTrip(t *testing.T) {
	for i, k := range parseKeys(t) {
		enc := encodeCacheKey(&k)
		got, ok := decodeCacheKey(enc)
		if !ok {
			t.Fatalf("key %d: decode rejected its own encoding", i)
		}
		if got != k {
			t.Fatalf("key %d: round trip drifted:\n  in:  %+v\n  out: %+v", i, k, got)
		}
		// Trailing garbage must be rejected, not silently absorbed.
		if _, ok := decodeCacheKey(append(append([]byte(nil), enc...), 0)); ok {
			t.Fatalf("key %d: trailing byte accepted", i)
		}
		// Truncations must be rejected (never a panic).
		for cut := 0; cut < len(enc); cut += 7 {
			if _, ok := decodeCacheKey(enc[:cut]); ok {
				t.Fatalf("key %d: truncation to %d bytes accepted", i, cut)
			}
		}
	}
}

// postOK posts and requires a 200.
func postOK(t *testing.T, s *Server, path, body string) *string {
	t.Helper()
	rec := post(s.Handler(), path, body)
	if rec.Code != 200 {
		t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body)
	}
	out := rec.Body.String()
	return &out
}

// TestWarmStartServesIdenticalBytes: entries snapshotted by one server
// must come back in the next as cache hits with byte-identical bodies,
// counted as warm hits and recovered records.
func TestWarmStartServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()

	a := newTestServer(t, storeConfig(dir))
	cold1 := *postOK(t, a, "/v1/delay", delayBody)
	cold2 := *postOK(t, a, "/v1/tree", treeBody)
	a.Close() // final snapshot

	b := newTestServer(t, storeConfig(dir))
	if st := b.Stats(); st.StoreRecovered < 2 {
		t.Fatalf("store_recovered = %d after restart, want >= 2", st.StoreRecovered)
	}
	rec := post(b.Handler(), "/v1/delay", delayBody)
	if rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("warm /v1/delay missed the recovered cache")
	}
	if rec.Body.String() != cold1 {
		t.Fatalf("warm /v1/delay bytes differ from cold:\nwarm: %scold: %s", rec.Body.String(), cold1)
	}
	if warm2 := *postOK(t, b, "/v1/tree", treeBody); warm2 != cold2 {
		t.Fatalf("warm /v1/tree bytes differ from cold")
	}
	if st := b.Stats(); st.WarmHits < 2 {
		t.Fatalf("warm_hits = %d, want >= 2", st.WarmHits)
	}
}

// TestWarmStartAtLeast10xFaster: the acceptance floor for the store —
// a previously-cached expensive net must answer at least 10× faster
// warm than its cold compute.
func TestWarmStartAtLeast10xFaster(t *testing.T) {
	// A ~100-node balanced tree under the exact MNA engine: a few
	// milliseconds cold, microseconds from the cache.
	var b strings.Builder
	b.WriteString(`{"tree":{"root_c":5e-15,"branches":[`)
	n := 100
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"parent":%d,"r":20,"l":5e-10,"c":4e-14}`, (i-1)/2)
	}
	b.WriteString(`],"sinks":[`)
	first := true
	for i := n/2 + 1; i <= n; i++ {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `{"node":%d,"cl":2e-14}`, i)
	}
	b.WriteString(`]},"drive":{"rtr":80},"engine":"mna"}`)
	body := b.String()

	dir := t.TempDir()
	a := newTestServer(t, storeConfig(dir))
	cold := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		// Cold each round: a fresh key via a one-ulp drive change would
		// change the physics, so instead time the first (miss) request
		// only once per fresh server.
		s := newTestServer(t, Config{CacheEntries: -1})
		start := time.Now()
		postOK(t, s, "/v1/tree", body)
		if d := time.Since(start); d < cold {
			cold = d
		}
	}
	postOK(t, a, "/v1/tree", body)
	a.Close()

	w := newTestServer(t, storeConfig(dir))
	warm := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		start := time.Now()
		rec := post(w.Handler(), "/v1/tree", body)
		if d := time.Since(start); d < warm {
			warm = d
		}
		if rec.Header().Get("X-Cache") != "hit" {
			t.Fatalf("round %d: warm request missed the recovered cache", i)
		}
	}
	if warm*10 > cold {
		t.Fatalf("warm start not >=10x faster: cold=%v warm=%v", cold, warm)
	}
	t.Logf("cold=%v warm=%v (%.0fx)", cold, warm, float64(cold)/float64(warm))
}

// TestSessionJournalRecovery: sessions must survive a restart by
// journal replay — the recovered session keeps its ID, and continuing
// it yields bytes identical to the same edit sequence on a server
// that never restarted.
func TestSessionJournalRecovery(t *testing.T) {
	batch2 := `{"edits":[{"op":"driver","rtr":65}]}`

	// Reference: open + batch1 + batch2 with no restart, no store.
	r := newTestServer(t, Config{})
	refOpen := openSession(t, r, treeBody)
	editSession(t, r, refOpen.SessionID, sessionEditBatch)
	want := editSession(t, r, refOpen.SessionID, batch2)

	dir := t.TempDir()
	a := newTestServer(t, storeConfig(dir))
	open := openSession(t, a, treeBody)
	if open.SessionID != refOpen.SessionID {
		t.Fatalf("session IDs diverge before restart: %s vs %s", open.SessionID, refOpen.SessionID)
	}
	editSession(t, a, open.SessionID, sessionEditBatch)
	a.Close()

	b := newTestServer(t, storeConfig(dir))
	if n := b.sessionCount(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	got := editSession(t, b, open.SessionID, batch2)
	if got.Gen != want.Gen {
		t.Fatalf("recovered gen %d, want %d", got.Gen, want.Gen)
	}
	if string(got.Result) != string(want.Result) {
		t.Fatalf("recovered session continuation differs:\nrecovered: %s\nreference: %s", got.Result, want.Result)
	}
	// New sessions must not collide with recovered IDs.
	next := openSession(t, b, treeBody)
	if next.SessionID == open.SessionID {
		t.Fatalf("new session reused recovered ID %s", next.SessionID)
	}
}

// TestSessionCloseJournaledAndCompacted: an explicitly closed session
// must stay closed across a restart, both via the journaled close
// record and via compaction (which rewrites the journal to live
// sessions only).
func TestSessionCloseJournaledAndCompacted(t *testing.T) {
	for _, compact := range []bool{false, true} {
		t.Run(fmt.Sprintf("compact=%v", compact), func(t *testing.T) {
			dir := t.TempDir()
			a := newTestServer(t, storeConfig(dir))
			keep := openSession(t, a, treeBody)
			drop := openSession(t, a, treeBody)
			editSession(t, a, keep.SessionID, sessionEditBatch)
			if rec := do(a.Handler(), "DELETE", "/v1/session/"+drop.SessionID, ""); rec.Code != 200 {
				t.Fatalf("delete: status %d", rec.Code)
			}
			if compact {
				if err := a.snapshotNow(); err != nil {
					t.Fatal(err)
				}
			}
			a.Close()

			b := newTestServer(t, storeConfig(dir))
			if n := b.sessionCount(); n != 1 {
				t.Fatalf("recovered %d sessions, want 1", n)
			}
			if rec := do(b.Handler(), "POST", "/v1/session/"+drop.SessionID+"/edit", sessionEditBatch); rec.Code != 404 {
				t.Fatalf("closed session answered %d after restart, want 404", rec.Code)
			}
			if rec := do(b.Handler(), "POST", "/v1/session/"+keep.SessionID+"/edit", sessionEditBatch); rec.Code != 200 {
				t.Fatalf("live session answered %d after restart: %s", rec.Code, rec.Body)
			}
		})
	}
}

// TestCorruptSnapshotDiscardedNeverServed: a flipped byte in a
// snapshotted body must be discarded at recovery (counted), and the
// next request recomputed — byte-identical to the original cold
// answer, served as a miss.
func TestCorruptSnapshotDiscardedNeverServed(t *testing.T) {
	dir := t.TempDir()
	a := newTestServer(t, storeConfig(dir))
	cold := *postOK(t, a, "/v1/delay", delayBody)
	a.Close()

	path := filepath.Join(dir, "snapshot.dat")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte well past the header, inside the single record's
	// value bytes.
	raw[len(raw)-8] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, storeConfig(dir))
	if st := b.Stats(); st.StoreDiscardedCorrupt == 0 {
		t.Fatalf("store_discarded_corrupt = 0 after byte flip")
	}
	rec := post(b.Handler(), "/v1/delay", delayBody)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("corrupt entry served as a hit")
	}
	if rec.Body.String() != cold {
		t.Fatalf("recomputed answer differs from the original cold answer")
	}
	if st := b.Stats(); st.WarmHits != 0 {
		t.Fatalf("warm_hits = %d for a discarded entry", st.WarmHits)
	}
}

// TestPencilsPersistAcrossRestart: a certified reduced-model pencil
// built before the restart must be reused after it — the warm server's
// first reduced analysis counts a pencil hit and no build, and its
// response is byte-identical.
func TestPencilsPersistAcrossRestart(t *testing.T) {
	body := treeBodyWithEngine("reduced")
	dir := t.TempDir()
	a := newTestServer(t, storeConfig(dir))
	cold := *postOK(t, a, "/v1/tree", body)
	stA := a.Stats()
	if stA.PencilBuilds == 0 {
		// The reduced engine fell back to exact (no pencil in play);
		// nothing to persist.
		t.Skip("reduced engine fell back; pencil path not exercised by this tree")
	}
	a.Close()

	b := newTestServer(t, storeConfig(dir))
	// Disable the warm response cache path by asking through a fresh
	// request that misses: same body is cached, so delete the entry by
	// using a server with caching off instead.
	bNoCache := newTestServer(t, Config{StoreDir: dir, SnapshotInterval: -1, CacheEntries: -1})
	warm := *postOK(t, bNoCache, "/v1/tree", body)
	if warm != cold {
		t.Fatalf("warm reduced analysis differs from cold:\nwarm: %scold: %s", warm, cold)
	}
	st := bNoCache.Stats()
	if st.PencilHits == 0 {
		t.Fatalf("warm reduced analysis did not hit the pencil store (hits=%d builds=%d)", st.PencilHits, st.PencilBuilds)
	}
	if st.PencilBuilds != 0 {
		t.Fatalf("warm reduced analysis rebuilt the pencil (builds=%d)", st.PencilBuilds)
	}
	_ = b
}

// TestSnapshotLoopRuns: with a tiny interval the background loop must
// persist entries without an explicit snapshot or Close.
func TestSnapshotLoopRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, SnapshotInterval: 5 * time.Millisecond}
	a := newTestServer(t, cfg)
	postOK(t, a, "/v1/delay", delayBody)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if fi, err := os.Stat(filepath.Join(dir, "snapshot.dat")); err == nil && fi.Size() > 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot loop never wrote a snapshot")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEditBatchCapRejected: a batch over maxSessionEdits must be a
// typed 400 before any edit is applied.
func TestEditBatchCapRejected(t *testing.T) {
	s := newTestServer(t, Config{})
	open := openSession(t, s, treeBody)
	var b strings.Builder
	b.WriteString(`{"edits":[`)
	for i := 0; i <= maxSessionEdits; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"op":"driver","rtr":80}`)
	}
	b.WriteString(`]}`)
	rec := do(s.Handler(), "POST", "/v1/session/"+open.SessionID+"/edit", b.String())
	if rec.Code != 400 {
		t.Fatalf("oversized batch: status %d, want 400", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "limit") {
		t.Fatalf("oversized batch error not typed: %s", rec.Body)
	}
	// Nothing was applied.
	edit := editSession(t, s, open.SessionID, `{"edits":[]}`)
	if edit.Gen != 0 {
		t.Fatalf("gen = %d after rejected batch, want 0", edit.Gen)
	}
}
