package serve

import (
	"encoding/json"
	"testing"
)

// TestDelayMethodReduced: the "reduced" estimator answers with
// certification metadata and counts a MOR hit; a net whose reduction
// cannot be certified still gets a 200 via the exact fallback, counted
// as such and flagged in the body.
func TestDelayMethodReduced(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheEntries: -1})

	body := `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13},"method":"reduced"}`
	rec := post(s.Handler(), "/v1/delay", body)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp DelayResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Method != "reduced" || resp.MORQ <= 0 || resp.MORN <= resp.MORQ || resp.MORFallback {
		t.Fatalf("unexpected reduced response: %+v", resp)
	}
	if resp.DelayS <= 0 {
		t.Fatalf("bad delay %g", resp.DelayS)
	}
	// Cross-check against the exact engine: the certified model must be
	// within 1% here.
	exact := post(s.Handler(), "/v1/delay",
		`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13},"method":"exact"}`)
	var eresp DelayResponse
	if err := json.Unmarshal(exact.Body.Bytes(), &eresp); err != nil {
		t.Fatal(err)
	}
	if e := 100 * abs(resp.DelayS-eresp.DelayS) / eresp.DelayS; e > 1 {
		t.Errorf("reduced delay %.3f%% off the exact engine", e)
	}

	// A strongly underdamped electrically-long net: certification is
	// expected to fail and the exact engine must answer.
	hard := `{"line":{"rt":50,"lt":5e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":20,"cl":1e-14},"method":"reduced"}`
	rec = post(s.Handler(), "/v1/delay", hard)
	if rec.Code != 200 {
		t.Fatalf("hard net: status %d: %s", rec.Code, rec.Body)
	}
	var hresp DelayResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hresp); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if hresp.MORFallback {
		if hresp.Method != "exact" {
			t.Errorf("fallback response should be method exact: %+v", hresp)
		}
		if st.MORFallbacks == 0 {
			t.Error("fallback not counted")
		}
	}
	if st.MORHits == 0 {
		t.Errorf("MOR hit not counted: %+v", st)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
