package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"rlckit"
)

// Wire types for the /v1/* endpoints. Every physical quantity crosses
// the wire in base SI units (ohms, henries, farads, meters, seconds) as
// JSON numbers; the engineering-notation sugar of the CLIs stays in the
// CLIs. Decoding is strict — unknown fields are rejected — so a typoed
// field name fails loudly instead of silently analyzing the wrong net.

// LineSpec describes a uniform RLC line by total impedances, matching
// the net spec rows cmd/netsweep reads.
type LineSpec struct {
	// Rt, Lt, Ct are the total line resistance (Ω), inductance (H) and
	// capacitance (F); Length is the line length in meters.
	Rt     float64 `json:"rt"`
	Lt     float64 `json:"lt"`
	Ct     float64 `json:"ct"`
	Length float64 `json:"length"`
}

// DriveSpec is the paper's gate model: driver resistance, far-end load,
// optional step amplitude (defaults to 1 V).
type DriveSpec struct {
	Rtr float64 `json:"rtr"`
	CL  float64 `json:"cl"`
	V   float64 `json:"v,omitempty"`
}

// line converts to the per-unit-length representation. The length is
// checked here because FromTotals divides by it: a zero or negative
// length would otherwise surface as a confusing ±Inf in the per-meter
// validation errors.
func (l LineSpec) line() (rlckit.Line, error) {
	if !(l.Length > 0) || math.IsInf(l.Length, 0) {
		return rlckit.Line{}, fmt.Errorf("line.length must be positive and finite, got %g", l.Length)
	}
	ln := rlckit.LineFromTotals(l.Rt, l.Lt, l.Ct, l.Length)
	return ln, ln.Validate()
}

func (d DriveSpec) drive() rlckit.Drive {
	return rlckit.Drive{Rtr: d.Rtr, CL: d.CL, V: d.V}
}

// DelayRequest asks for the 50% propagation delay of one driven net.
type DelayRequest struct {
	Line  LineSpec  `json:"line"`
	Drive DriveSpec `json:"drive"`
	// Method selects the estimator: "auto" (default — Eq. 9 inside its
	// validated accuracy domain, exact transmission-line engine
	// outside), "eq9", "exact", or "reduced" (Krylov reduced-order
	// transient with certification metadata in the response; falls
	// back to "exact" when the model cannot be certified).
	Method string `json:"method,omitempty"`
}

// DelayResponse reports the RLC delay alongside the RC-only answer a
// classic timing flow would give, plus the dimensionless parameters.
type DelayResponse struct {
	DelayS   float64 `json:"delay_s"`
	Method   string  `json:"method"` // estimator that produced delay_s
	DelayRCS float64 `json:"delay_rc_s"`
	RCErrPct float64 `json:"rc_err_pct"`
	RT       float64 `json:"rt"`
	CT       float64 `json:"ct"`
	Zeta     float64 `json:"zeta"`
	OmegaN   float64 `json:"omega_n"`
	// Reduced-order accuracy metadata, present only for method
	// "reduced": the model order, the full order it replaced, and the
	// validated transfer-function error (percent of the response
	// peak). MORFallback marks a "reduced" request that the exact
	// engine answered because certification failed.
	MORQ        int     `json:"mor_q,omitempty"`
	MORN        int     `json:"mor_n,omitempty"`
	MORErrPct   float64 `json:"mor_err_pct,omitempty"`
	MORFallback bool    `json:"mor_fallback,omitempty"`
}

// ScreenRequest asks whether a net needs inductance-aware analysis for
// a given input rise time.
type ScreenRequest struct {
	Line  LineSpec  `json:"line"`
	Drive DriveSpec `json:"drive"`
	RiseS float64   `json:"rise_s"`
}

// ScreenResponse is the screening verdict (see internal/screen).
type ScreenResponse struct {
	NeedsRLC    bool    `json:"needs_rlc"`
	InWindow    bool    `json:"in_window"`
	Underdamped bool    `json:"underdamped"`
	LMinM       float64 `json:"l_min_m"`
	LMaxM       float64 `json:"l_max_m"`
	Zeta        float64 `json:"zeta"`
}

// BufferSpec characterizes the minimum repeater of a technology.
type BufferSpec struct {
	R0   float64 `json:"r0"`
	C0   float64 `json:"c0"`
	Amin float64 `json:"amin,omitempty"`
	Vdd  float64 `json:"vdd,omitempty"`
}

// RepeatersRequest asks for a repeater insertion plan. The buffer comes
// either from an explicit BufferSpec or from a built-in technology node
// name; exactly one must be given.
type RepeatersRequest struct {
	Line   LineSpec    `json:"line"`
	Buffer *BufferSpec `json:"buffer,omitempty"`
	Node   string      `json:"node,omitempty"`
	// Model is "rlc" (default — the paper's Eqs. 14/15) or "rc"
	// (Bakoglu, the baseline the paper costs out).
	Model string `json:"model,omitempty"`
}

// RepeatersResponse is a complete insertion design (repeater.Plan).
type RepeatersResponse struct {
	Model         string  `json:"model"`
	H             float64 `json:"h"`
	K             float64 `json:"k"`
	KInt          int     `json:"k_int"`
	HForKInt      float64 `json:"h_for_k_int"`
	TLR           float64 `json:"tlr"`
	TotalDelayS   float64 `json:"total_delay_s"`
	TotalDelayInt float64 `json:"total_delay_int_s"`
	Area          float64 `json:"area"`
	AreaInt       float64 `json:"area_int"`
	SwitchEnergyJ float64 `json:"switch_energy_j"`
}

// SweepRequest runs a seeded Monte Carlo population sweep server-side
// and returns only the aggregate statistics (per-sample data would be
// megabytes; use cmd/netsweep for that).
type SweepRequest struct {
	// Node names the technology the random population is drawn at.
	Node string `json:"node"`
	// Nets is the population size; Seed makes the population and all
	// Monte Carlo draws reproducible.
	Nets int   `json:"nets"`
	Seed int64 `json:"seed"`
	// RiseS is the screening rise time in seconds.
	RiseS float64 `json:"rise_s"`
	// Corners names the corners to sweep ("tt", "ff", "ss"); empty
	// means all three.
	Corners []string `json:"corners,omitempty"`
	// Samples is the Monte Carlo draws per (net, corner); 0 means 1.
	Samples int `json:"samples,omitempty"`
	// Sigma and DriveSigma are the log-normal variation sigmas on the
	// wire parasitics and the driver resistance.
	Sigma      float64 `json:"sigma,omitempty"`
	DriveSigma float64 `json:"drive_sigma,omitempty"`
	// Repeaters additionally runs repeater mis-sizing analysis with the
	// node's buffer.
	Repeaters bool `json:"repeaters,omitempty"`
	// Estimator selects the per-sample delay engine: "closed" (default),
	// "smart", "simulated", or "reduced". Under a request deadline the
	// server may downgrade an expensive estimator to a cheaper one
	// rather than time out; the response reports the estimator that
	// actually ran and whether it was degraded.
	Estimator string `json:"estimator,omitempty"`
}

// SummaryJSON mirrors report.Summary on the wire.
type SummaryJSON struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	P5     float64 `json:"p5"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// ScreenStatsJSON mirrors screen.Stats on the wire.
type ScreenStatsJSON struct {
	Total       int     `json:"total"`
	NeedsRLC    int     `json:"needs_rlc"`
	InWindow    int     `json:"in_window"`
	Underdamped int     `json:"underdamped"`
	FracRLC     float64 `json:"frac_rlc"`
}

// SweepCornerJSON is one corner's aggregate slice.
type SweepCornerJSON struct {
	Name   string          `json:"name"`
	Screen ScreenStatsJSON `json:"screen"`
	Delay  SummaryJSON     `json:"delay_s"`
	RCErr  SummaryJSON     `json:"rc_err_pct"`
}

// SweepResponse is the population statistics of a completed sweep.
type SweepResponse struct {
	Nets    int      `json:"nets"`
	Corners []string `json:"corners"`
	Draws   int      `json:"draws"`
	Samples int      `json:"samples"`
	// Estimator is the per-sample delay engine that actually ran;
	// Degraded marks a response the server downgraded from the
	// requested estimator to meet the request deadline, with the
	// decision spelled out in DegradeReason. Degraded responses are
	// never cached.
	Estimator     string            `json:"estimator"`
	Degraded      bool              `json:"degraded,omitempty"`
	DegradeReason string            `json:"degrade_reason,omitempty"`
	Screen        ScreenStatsJSON   `json:"screen"`
	Delay         SummaryJSON       `json:"delay_s"`
	DelayRC       SummaryJSON       `json:"delay_rc_s"`
	RCErr         SummaryJSON       `json:"rc_err_pct"`
	AbsRCErr      SummaryJSON       `json:"abs_rc_err_pct"`
	FracErrOver10 float64           `json:"frac_err_over_10"`
	FracErrOver20 float64           `json:"frac_err_over_20"`
	RepKRatio     *SummaryJSON      `json:"rep_k_ratio,omitempty"`
	RepDelayInc   *SummaryJSON      `json:"rep_delay_inc_pct,omitempty"`
	PerCorner     []SweepCornerJSON `json:"per_corner"`
}

// ErrorResponse is the body of every non-2xx JSON response. Reason and
// RetryAfterS are populated on 503s: Reason distinguishes a canceled
// request ("canceled"), an expired compute deadline ("deadline") and a
// shutting-down server ("shutdown"), and RetryAfterS mirrors the
// adaptive Retry-After header so JSON-only clients can back off
// without header plumbing.
type ErrorResponse struct {
	Error       string `json:"error"`
	Reason      string `json:"reason,omitempty"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// Request-size and sweep-size guards. The decoder enforces these before
// any compute is scheduled, so a hostile request can neither allocate a
// huge population nor occupy the pool for minutes.
const (
	// maxBodyBytes bounds a /v1/* request body.
	maxBodyBytes = 1 << 20
	// maxSweepNets and maxSweepSamples bound one sweep request's
	// population dimensions; maxSweepTotal bounds the product
	// nets × corners × draws.
	maxSweepNets    = 50000
	maxSweepSamples = 64
	maxSweepTotal   = 500000
)

// delay methods, in canonical (cache key) form.
const (
	methodAuto uint8 = iota
	methodEq9
	methodExact
	methodReduced
)

func parseMethod(s string) (uint8, error) {
	switch s {
	case "", "auto":
		return methodAuto, nil
	case "eq9":
		return methodEq9, nil
	case "exact":
		return methodExact, nil
	case "reduced":
		return methodReduced, nil
	default:
		return 0, fmt.Errorf("unknown method %q (have auto, eq9, exact, reduced)", s)
	}
}

// sweep estimators, in canonical (cache key) form; they reuse the
// cacheKey.method slot (a sweep has no delay method).
const (
	sweepEstClosed uint8 = iota
	sweepEstSmart
	sweepEstSimulated
	sweepEstReduced
)

func parseEstimator(s string) (uint8, error) {
	switch s {
	case "", "closed":
		return sweepEstClosed, nil
	case "smart":
		return sweepEstSmart, nil
	case "simulated":
		return sweepEstSimulated, nil
	case "reduced":
		return sweepEstReduced, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q (have closed, smart, simulated, reduced)", s)
	}
}

// sweepEstimator maps the canonical estimator byte to the engine enum.
func sweepEstimator(m uint8) rlckit.SweepEstimator {
	switch m {
	case sweepEstSmart:
		return rlckit.SweepEstimatorSmart
	case sweepEstSimulated:
		return rlckit.SweepEstimatorSimulated
	case sweepEstReduced:
		return rlckit.SweepEstimatorReduced
	default:
		return rlckit.SweepEstimatorClosed
	}
}

// endpoint kinds, for the shared cache's key space and the per-endpoint
// request counters (the session kinds never enter the cache — what-if
// sessions are stateful and bypass it).
const (
	kindDelay uint8 = iota
	kindScreen
	kindRepeaters
	kindSweep
	kindTree
	kindSession
	kindSessionEdit
)

// cacheKey is the canonical identity of a request: the exact analyzed
// values of (Line, Drive, config), not the request bytes, so two
// requests that differ only in JSON formatting share an entry. All
// fields are comparable; the cache hashes the whole struct.
type cacheKey struct {
	kind    uint8
	method  uint8
	line    rlckit.Line
	drive   rlckit.Drive
	rise    float64
	buffer  rlckit.Buffer
	node    string
	nets    int
	seed    int64
	samples int
	sigma   float64
	drvSig  float64
	corners string
	repeat  bool
	// tree is the canonical exact-bits encoding of a /v1/tree request's
	// topology and element values (canonicalTree): trees are
	// variable-length, so they enter the comparable key as a string.
	tree string
}

// decodeStrict decodes one JSON object from r into v, rejecting unknown
// fields and trailing garbage.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second Decode must see EOF: "{}{}" is not one request.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

// parseDelayRequest decodes and validates a /v1/delay body into its
// canonical cache key, which carries everything the handler computes
// from.
func parseDelayRequest(r io.Reader) (cacheKey, error) {
	var req DelayRequest
	if err := decodeStrict(r, &req); err != nil {
		return cacheKey{}, err
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		return cacheKey{}, err
	}
	ln, err := req.Line.line()
	if err != nil {
		return cacheKey{}, err
	}
	drv := req.Drive.drive()
	if err := drv.Validate(); err != nil {
		return cacheKey{}, err
	}
	return cacheKey{kind: kindDelay, method: m, line: ln, drive: drv}, nil
}

// parseScreenRequest decodes and validates a /v1/screen body into its
// canonical cache key.
func parseScreenRequest(r io.Reader) (cacheKey, error) {
	var req ScreenRequest
	if err := decodeStrict(r, &req); err != nil {
		return cacheKey{}, err
	}
	ln, err := req.Line.line()
	if err != nil {
		return cacheKey{}, err
	}
	drv := req.Drive.drive()
	if err := drv.Validate(); err != nil {
		return cacheKey{}, err
	}
	if req.RiseS <= 0 {
		return cacheKey{}, fmt.Errorf("rise_s must be positive, got %g", req.RiseS)
	}
	return cacheKey{kind: kindScreen, line: ln, drive: drv, rise: req.RiseS}, nil
}

// parseRepeatersRequest decodes and validates a /v1/repeaters body
// into its canonical cache key (the buffer is resolved from the node
// when one is named).
func parseRepeatersRequest(r io.Reader) (cacheKey, error) {
	var req RepeatersRequest
	if err := decodeStrict(r, &req); err != nil {
		return cacheKey{}, err
	}
	ln, err := req.Line.line()
	if err != nil {
		return cacheKey{}, err
	}
	var m uint8
	switch req.Model {
	case "", "rlc":
		m = 0
	case "rc":
		m = 1
	default:
		return cacheKey{}, fmt.Errorf("unknown model %q (have rlc, rc)", req.Model)
	}
	key := cacheKey{kind: kindRepeaters, method: m, line: ln}
	switch {
	case req.Buffer != nil && req.Node != "":
		return cacheKey{}, fmt.Errorf("give either buffer or node, not both")
	case req.Buffer != nil:
		key.buffer = rlckit.Buffer{R0: req.Buffer.R0, C0: req.Buffer.C0, Amin: req.Buffer.Amin, Vdd: req.Buffer.Vdd}
		if err := key.buffer.Validate(); err != nil {
			return cacheKey{}, err
		}
	case req.Node != "":
		node, err := rlckit.Technology(req.Node)
		if err != nil {
			return cacheKey{}, err
		}
		key.node = req.Node
		key.buffer = node.Buffer()
	default:
		return cacheKey{}, fmt.Errorf("missing buffer or node")
	}
	return key, nil
}

// canonicalCorners resolves corner names to a sorted, deduplicated,
// comma-joined canonical string and the matching corner set.
func canonicalCorners(names []string) (string, []rlckit.SweepCorner, error) {
	known := map[string]rlckit.SweepCorner{}
	for _, c := range rlckit.DefaultCorners() {
		known[c.Name] = c
	}
	if len(names) == 0 {
		names = []string{"tt", "ff", "ss"}
	}
	seen := map[string]bool{}
	var canon []string
	for _, n := range names {
		n = strings.TrimSpace(n)
		if _, ok := known[n]; !ok {
			return "", nil, fmt.Errorf("unknown corner %q (have tt, ff, ss)", n)
		}
		if !seen[n] {
			seen[n] = true
			canon = append(canon, n)
		}
	}
	sort.Strings(canon)
	corners := make([]rlckit.SweepCorner, len(canon))
	for i, n := range canon {
		corners[i] = known[n]
	}
	return strings.Join(canon, ","), corners, nil
}

// parseSweepRequest decodes and validates a /v1/sweep body, enforcing
// the population-size guards.
func parseSweepRequest(r io.Reader) (SweepRequest, cacheKey, []rlckit.SweepCorner, error) {
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		return req, cacheKey{}, nil, err
	}
	if req.Node == "" {
		return req, cacheKey{}, nil, fmt.Errorf("missing node")
	}
	if _, err := rlckit.Technology(req.Node); err != nil {
		return req, cacheKey{}, nil, err
	}
	if req.Nets < 1 || req.Nets > maxSweepNets {
		return req, cacheKey{}, nil, fmt.Errorf("nets must be in [1, %d], got %d", maxSweepNets, req.Nets)
	}
	if req.Samples < 0 || req.Samples > maxSweepSamples {
		return req, cacheKey{}, nil, fmt.Errorf("samples must be in [0, %d], got %d", maxSweepSamples, req.Samples)
	}
	if req.RiseS <= 0 {
		return req, cacheKey{}, nil, fmt.Errorf("rise_s must be positive, got %g", req.RiseS)
	}
	if req.Sigma < 0 || req.Sigma > 2 || req.DriveSigma < 0 || req.DriveSigma > 2 {
		return req, cacheKey{}, nil, fmt.Errorf("sigmas must be in [0, 2], got %g and %g", req.Sigma, req.DriveSigma)
	}
	est, err := parseEstimator(req.Estimator)
	if err != nil {
		return req, cacheKey{}, nil, err
	}
	canon, corners, err := canonicalCorners(req.Corners)
	if err != nil {
		return req, cacheKey{}, nil, err
	}
	draws := req.Samples
	if draws < 1 {
		draws = 1
	}
	if total := req.Nets * len(corners) * draws; total > maxSweepTotal {
		return req, cacheKey{}, nil, fmt.Errorf("nets × corners × samples = %d exceeds the %d-sample limit", total, maxSweepTotal)
	}
	key := cacheKey{
		kind: kindSweep, method: est, node: req.Node, nets: req.Nets, seed: req.Seed,
		samples: draws, rise: req.RiseS, sigma: req.Sigma, drvSig: req.DriveSigma,
		corners: canon, repeat: req.Repeaters,
	}
	return req, key, corners, nil
}

// parseSessionEditRequest decodes and validates a /v1/session/{id}/edit
// body: strict JSON, and the batch size capped at maxSessionEdits so a
// hostile body can neither balloon the journal nor occupy the session
// lock for an unbounded apply-and-rollback walk. The edits themselves
// are validated downstream by Session.Apply (the batch is atomic: on
// the first invalid edit nothing is applied).
func parseSessionEditRequest(r io.Reader) (SessionEditRequest, error) {
	var req SessionEditRequest
	if err := decodeStrict(r, &req); err != nil {
		return req, err
	}
	if len(req.Edits) > maxSessionEdits {
		return req, fmt.Errorf("edit batch has %d edits, limit %d", len(req.Edits), maxSessionEdits)
	}
	return req, nil
}

func summaryJSON(s rlckit.SweepSummary) SummaryJSON {
	return SummaryJSON{
		N: s.N, Min: s.Min, Max: s.Max, Mean: s.Mean, StdDev: s.StdDev,
		P5: s.P5, P25: s.P25, Median: s.Median, P75: s.P75, P95: s.P95, P99: s.P99,
	}
}
