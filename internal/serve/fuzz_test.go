package serve

import (
	"strings"
	"testing"
)

// requestSeeds feed all six request decoders: the golden-test bodies
// plus malformed shapes (truncation, unknown fields, huge numbers,
// wrong types, trailing objects) and session edit batches.
var requestSeeds = []string{
	`{"tree":{"root_c":5e-15,"branches":[{"parent":0,"r":20,"l":5e-10,"c":4e-14},{"parent":1,"r":15,"l":4e-10,"c":3e-14}],"sinks":[{"node":2,"cl":2e-14}]},"drive":{"rtr":80}}`,
	`{"tree":{"branches":[{"parent":9,"r":-1,"l":1e400,"c":null}],"sinks":[{"node":0,"cl":0},{"node":0,"cl":0}]},"drive":{"rtr":80},"engine":"warp"}`,
	`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13}}`,
	`{"line":{"rt":100,"lt":1e-8,"ct":1e-12,"length":0.002},"drive":{"rtr":500,"cl":1e-13},"method":"exact"}`,
	`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13},"method":"reduced"}`,
	`{"line":{"rt":1e3,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13},"method":"reducedX"}`,
	`{"line":{"rt":100,"lt":1e-8,"ct":1e-12,"length":0.002},"drive":{},"rise_s":5e-11}`,
	`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"node":"250nm","model":"rc"}`,
	`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"buffer":{"r0":250,"c0":5e-15}}`,
	`{"node":"250nm","nets":40,"seed":1,"rise_s":5e-11,"samples":2,"sigma":0.1,"repeaters":true}`,
	`{"node":"130nm","nets":999999999,"rise_s":1e-300,"corners":["tt","tt","zz"]}`,
	`{"line":{"rt":1e400,"lt":-1,"ct":"nope","length":null}}`,
	`{"line":{}}{"line":{}}`,
	`{`,
	``,
	`[1,2,3]`,
	`{"bogus":true}`,
	`{"edits":[{"op":"branch","node":2,"r":18,"l":3.5e-10},{"op":"driver","rtr":70}]}`,
	`{"edits":[{"op":"load","node":4,"cl":4e-14}],"engine":"mna"}`,
	`{"edits":[{"op":"teleport"}],"engine":"warp","extra":1}`,
}

// FuzzServeRequest asserts that none of the /v1/* request decoders
// panic on arbitrary bytes, and that whatever they accept is
// idempotent: re-parsing the same bytes yields the same canonical
// cache key (decoding is a pure function of the body).
func FuzzServeRequest(f *testing.F) {
	for _, s := range requestSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if k1, err := parseDelayRequest(strings.NewReader(s)); err == nil {
			k2, err2 := parseDelayRequest(strings.NewReader(s))
			if err2 != nil || k1 != k2 {
				t.Errorf("delay decode not idempotent: %v / %+v vs %+v", err2, k1, k2)
			}
		}
		if k1, err := parseScreenRequest(strings.NewReader(s)); err == nil {
			k2, _ := parseScreenRequest(strings.NewReader(s))
			if k1 != k2 {
				t.Errorf("screen decode not idempotent")
			}
		}
		if k1, err := parseRepeatersRequest(strings.NewReader(s)); err == nil {
			k2, _ := parseRepeatersRequest(strings.NewReader(s))
			if k1 != k2 {
				t.Errorf("repeaters decode not idempotent")
			}
		}
		if _, k1, _, err := parseSweepRequest(strings.NewReader(s)); err == nil {
			_, k2, _, _ := parseSweepRequest(strings.NewReader(s))
			if k1 != k2 {
				t.Errorf("sweep decode not idempotent")
			}
			if k1.nets > maxSweepNets || k1.samples > maxSweepSamples ||
				k1.nets*k1.samples > maxSweepTotal {
				t.Errorf("sweep guard let %+v through", k1)
			}
		}
		if r1, err := parseSessionEditRequest(strings.NewReader(s)); err == nil {
			r2, err2 := parseSessionEditRequest(strings.NewReader(s))
			if err2 != nil || len(r1.Edits) != len(r2.Edits) || r1.Engine != r2.Engine {
				t.Errorf("session edit decode not idempotent: %v", err2)
			}
			if len(r1.Edits) > maxSessionEdits {
				t.Errorf("edit batch guard let %d edits through", len(r1.Edits))
			}
		}
		if tr, _, k1, err := parseTreeRequest(strings.NewReader(s)); err == nil {
			_, _, k2, err2 := parseTreeRequest(strings.NewReader(s))
			if err2 != nil || k1 != k2 {
				t.Errorf("tree decode not idempotent: %v", err2)
			}
			if tr.Len() > maxTreeNodes {
				t.Errorf("tree guard let %d nodes through", tr.Len())
			}
		}
	})
}
