package serve

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// Deadline-aware graceful degradation: when a request arrives with a
// compute budget (a client deadline or the server's -request-timeout)
// that is too small for the estimator it asked for, the server answers
// with a cheaper estimator instead of burning the whole budget and
// returning a 503. The downgrade chains preserve the semantics of the
// answer (a delay distribution, a skew table) and only lower its
// fidelity, always in the documented accuracy order:
//
//	sweep:  simulated → reduced → closed;  smart → closed
//	tree:   mna → reduced → closed
//
// A degraded response says so — degraded:true plus a degrade_reason
// spelling out the budget arithmetic — and is never cached, so a later
// retry with a roomier budget recomputes at full fidelity.

// Per-sample cost estimates, calibrated against this package's and the
// engines' benchmarks (BenchmarkSweep10k, BenchmarkTreeDelay,
// sweep/bench_test.go) on the CI baseline and rounded up: the point is
// a safe go/no-go decision, not profiling accuracy, so each constant
// overshoots its measured mean by ~2×.
const (
	costSweepClosed    = 4 * time.Microsecond
	costSweepSmart     = 60 * time.Microsecond
	costSweepReduced   = 300 * time.Microsecond
	costSweepSimulated = 1200 * time.Microsecond

	// Tree engines cost per node: the shared MNA transient factors and
	// sweeps a banded system sized by the node count, the reduced engine
	// pays a per-tree Arnoldi build plus a small per-node transient, the
	// closed form is two moment traversals.
	costTreeMNAPerNode     = 2 * time.Millisecond
	costTreeReducedBuild   = 80 * time.Millisecond
	costTreeReducedPerNode = 300 * time.Microsecond
	costTreeClosedPerNode  = 3 * time.Microsecond
)

// budgetSlack keeps degradation decisions honest about non-compute
// overhead (queueing, marshaling, GC): an estimator is admitted only if
// its estimate fits in this fraction of the remaining budget.
const budgetSlack = 0.7

// remainingBudget reports the compute budget ctx still has, and whether
// it has a deadline at all.
func remainingBudget(ctx context.Context) (time.Duration, bool) {
	if ctx == nil {
		return 0, false
	}
	d, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(d), true
}

// divideByWorkers scales a serial cost estimate by the pool width the
// request will actually run at.
func divideByWorkers(total time.Duration, workers int) time.Duration {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return total / time.Duration(workers)
}

// sweepSampleCost returns the per-sample cost estimate of a sweep
// estimator (canonical byte form).
func sweepSampleCost(est uint8) time.Duration {
	switch est {
	case sweepEstSmart:
		return costSweepSmart
	case sweepEstSimulated:
		return costSweepSimulated
	case sweepEstReduced:
		return costSweepReduced
	default:
		return costSweepClosed
	}
}

// sweepDowngrade is the next-cheaper estimator in the chain, or the
// input itself when there is nothing cheaper.
func sweepDowngrade(est uint8) uint8 {
	switch est {
	case sweepEstSimulated:
		return sweepEstReduced
	case sweepEstReduced, sweepEstSmart:
		return sweepEstClosed
	default:
		return sweepEstClosed
	}
}

func estimatorName(est uint8) string {
	switch est {
	case sweepEstSmart:
		return "smart"
	case sweepEstSimulated:
		return "simulated"
	case sweepEstReduced:
		return "reduced"
	default:
		return "closed"
	}
}

// degradeSweep picks the estimator a sweep of `samples` total samples
// should run with under ctx's budget. It returns the chosen canonical
// estimator and, when that differs from the request, the reason string
// for the response metadata.
func degradeSweep(ctx context.Context, requested uint8, samples, workers int) (est uint8, reason string) {
	budget, ok := remainingBudget(ctx)
	if !ok {
		return requested, ""
	}
	est = requested
	for {
		cost := divideByWorkers(time.Duration(samples)*sweepSampleCost(est), workers)
		if float64(cost) <= budgetSlack*float64(budget) || est == sweepEstClosed {
			break
		}
		est = sweepDowngrade(est)
	}
	if est == requested {
		return est, ""
	}
	cost := divideByWorkers(time.Duration(samples)*sweepSampleCost(requested), workers)
	return est, fmt.Sprintf("estimator %s needs ~%s for %d samples but the deadline leaves %s; degraded to %s",
		estimatorName(requested), cost.Round(time.Millisecond), samples, budget.Round(time.Millisecond), estimatorName(est))
}

// treeEngineCost estimates one tree analysis with the given canonical
// engine on a tree of `nodes` nodes.
func treeEngineCost(engine uint8, nodes int) time.Duration {
	n := time.Duration(nodes)
	switch engine {
	case treeEngineMNA:
		return n * costTreeMNAPerNode
	case treeEngineReduced:
		return costTreeReducedBuild + n*costTreeReducedPerNode
	default:
		return n * costTreeClosedPerNode
	}
}

// treeDowngrade is the next-cheaper tree engine in the chain.
func treeDowngrade(engine uint8) uint8 {
	if engine == treeEngineMNA {
		return treeEngineReduced
	}
	return treeEngineClosed
}

func treeEngineName(engine uint8) string {
	switch engine {
	case treeEngineMNA:
		return "mna"
	case treeEngineReduced:
		return "reduced"
	default:
		return "closed"
	}
}

// degradeTree picks the engine a tree analysis of `nodes` nodes should
// run with under ctx's budget, mirroring degradeSweep.
func degradeTree(ctx context.Context, requested uint8, nodes int) (engine uint8, reason string) {
	budget, ok := remainingBudget(ctx)
	if !ok {
		return requested, ""
	}
	engine = requested
	for {
		if float64(treeEngineCost(engine, nodes)) <= budgetSlack*float64(budget) || engine == treeEngineClosed {
			break
		}
		engine = treeDowngrade(engine)
	}
	if engine == requested {
		return engine, ""
	}
	return engine, fmt.Sprintf("engine %s needs ~%s for %d nodes but the deadline leaves %s; degraded to %s",
		treeEngineName(requested), treeEngineCost(requested, nodes).Round(time.Millisecond),
		nodes, budget.Round(time.Millisecond), treeEngineName(engine))
}
