package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// This file tests the what-if session endpoints. The load-bearing
// contract: a session edit's embedded result is byte-identical to a
// cold POST /v1/tree of the edited net — sessions bypass the response
// cache and the batcher without forking the response encoding.

// do drives one request of any method through the handler chain.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// sessionEditBatch is the edit script shared by the byte-identity
// tests, and editedTreeBody the cold /v1/tree request describing the
// same net after those edits (same float literals, so the decoded
// values are bit-identical).
const sessionEditBatch = `{"edits":[
  {"op":"branch","node":2,"r":18,"l":3.5e-10},
  {"op":"load","node":4,"cl":4e-14},
  {"op":"driver","rtr":70}
]}`

func editedTreeBody(engine string) string {
	body := `{
  "tree": {
    "root_c": 5e-15,
    "branches": [
      {"parent": 0, "r": 20, "l": 5e-10, "c": 4e-14},
      {"parent": 1, "r": 18, "l": 3.5e-10, "c": 3e-14},
      {"parent": 1, "r": 40, "l": 1e-9, "c": 6e-14},
      {"parent": 3, "r": 40, "l": 1e-9, "c": 6e-14}
    ],
    "sinks": [{"node": 2, "cl": 2e-14}, {"node": 4, "cl": 4e-14}]
  },
  "drive": {"rtr": 70}`
	if engine != "" {
		body += fmt.Sprintf(`, "engine": %q`, engine)
	}
	return body + "}"
}

func openSession(t *testing.T, s *Server, body string) SessionOpenResponse {
	t.Helper()
	rec := do(s.Handler(), "POST", "/v1/session", body)
	if rec.Code != 200 {
		t.Fatalf("open: status %d: %s", rec.Code, rec.Body)
	}
	var resp SessionOpenResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("open: %v", err)
	}
	return resp
}

func editSession(t *testing.T, s *Server, id, body string) SessionEditResponse {
	t.Helper()
	rec := do(s.Handler(), "POST", "/v1/session/"+id+"/edit", body)
	if rec.Code != 200 {
		t.Fatalf("edit %s: status %d: %s", id, rec.Code, rec.Body)
	}
	var resp SessionEditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("edit %s: %v", id, err)
	}
	return resp
}

// coldTreeBytes posts body to /v1/tree on a fresh server and returns
// the response bytes without the trailing newline — the embedded
// session result shape.
func coldTreeBytes(t *testing.T, body string) string {
	t.Helper()
	s := newTestServer(t, Config{CacheEntries: -1})
	rec := post(s.Handler(), "/v1/tree", body)
	if rec.Code != 200 {
		t.Fatalf("cold tree: status %d: %s", rec.Code, rec.Body)
	}
	return strings.TrimSuffix(rec.Body.String(), "\n")
}

// TestSessionEditMatchesColdTree: for the closed and MNA engines, the
// session's initial result must be byte-identical to a cold /v1/tree
// of the opened net, and the post-edit result byte-identical to a cold
// /v1/tree of the edited net.
func TestSessionEditMatchesColdTree(t *testing.T) {
	for _, engine := range []string{"closed", "mna"} {
		t.Run(engine, func(t *testing.T) {
			s := newTestServer(t, Config{})
			open := openSession(t, s, treeBodyWithEngine(engine))
			if open.Nodes != 5 || open.Gen != 0 {
				t.Fatalf("open: nodes=%d gen=%d", open.Nodes, open.Gen)
			}
			if want := coldTreeBytes(t, treeBodyWithEngine(engine)); string(open.Result) != want {
				t.Errorf("open result differs from cold /v1/tree:\nsession: %s\ncold:    %s", open.Result, want)
			}
			edit := editSession(t, s, open.SessionID, sessionEditBatch)
			if edit.Gen != 1 {
				t.Errorf("edit gen = %d, want 1", edit.Gen)
			}
			if want := coldTreeBytes(t, editedTreeBody(engine)); string(edit.Result) != want {
				t.Errorf("edited result differs from cold /v1/tree of the edited net:\nsession: %s\ncold:    %s", edit.Result, want)
			}
		})
	}
}

// TestSessionReducedEditConsistent: the reduced engine answers through
// the basis frozen at open (not bit-identity with a cold reduced
// build), but must stay within the certified tolerance of a cold MNA
// analysis of the edited net — or report an explicit exact fallback,
// which IS byte-identical to cold MNA.
func TestSessionReducedEditConsistent(t *testing.T) {
	s := newTestServer(t, Config{})
	open := openSession(t, s, treeBodyWithEngine("reduced"))
	edit := editSession(t, s, open.SessionID, sessionEditBatch)
	var got TreeResponse
	if err := json.Unmarshal(edit.Result, &got); err != nil {
		t.Fatal(err)
	}
	coldMNA := coldTreeBytes(t, editedTreeBody("mna"))
	if got.MORFallback {
		if string(edit.Result) != coldMNA {
			t.Errorf("reduced fallback result not byte-identical to cold MNA:\nsession: %s\ncold:    %s", edit.Result, coldMNA)
		}
		return
	}
	var mna TreeResponse
	if err := json.Unmarshal([]byte(coldMNA), &mna); err != nil {
		t.Fatal(err)
	}
	for i := range mna.Sinks {
		m, r := mna.Sinks[i].DelayS, got.Sinks[i].DelayS
		if rel := (m - r) / m; rel > 0.01 || rel < -0.01 {
			t.Errorf("sink %d: session reduced %g vs cold mna %g", mna.Sinks[i].Node, r, m)
		}
	}
}

// TestSessionReplayDeterminism: the same open + edit script must
// produce byte-identical responses at every worker count.
func TestSessionReplayDeterminism(t *testing.T) {
	edits := []string{
		`{"edits":[{"op":"branch","node":1,"r":22,"l":4.5e-10}]}`,
		`{"edits":[{"op":"load","node":2,"cl":2.5e-14},{"op":"driver","rtr":90}]}`,
		sessionEditBatch,
	}
	var ref []string
	for _, workers := range []int{1, 2, 8} {
		s := newTestServer(t, Config{Workers: workers})
		open := openSession(t, s, treeBodyWithEngine("mna"))
		got := []string{string(open.Result)}
		for _, e := range edits {
			got = append(got, string(editSession(t, s, open.SessionID, e).Result))
		}
		if ref == nil {
			ref = got
		} else {
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d: response %d differs", workers, i)
				}
			}
		}
	}
}

// TestSessionLifecycle: IDs are a deterministic counter, deletes work
// and are not counted as evictions, unknown IDs 404.
func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	a := openSession(t, s, treeBody)
	b := openSession(t, s, treeBody)
	if a.SessionID != "s1" || b.SessionID != "s2" {
		t.Fatalf("session IDs %q, %q, want s1, s2", a.SessionID, b.SessionID)
	}
	editSession(t, s, a.SessionID, sessionEditBatch)
	st := s.Stats()
	if st.SessionsOpen != 2 || st.SessionsOpened != 2 || st.SessionEdits != 3 {
		t.Errorf("stats open=%d opened=%d edits=%d, want 2, 2, 3", st.SessionsOpen, st.SessionsOpened, st.SessionEdits)
	}
	if rec := do(s.Handler(), "DELETE", "/v1/session/"+a.SessionID, ""); rec.Code != 200 {
		t.Fatalf("delete: status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(s.Handler(), "POST", "/v1/session/"+a.SessionID+"/edit", sessionEditBatch); rec.Code != 404 {
		t.Errorf("edit after delete: status %d, want 404", rec.Code)
	}
	if rec := do(s.Handler(), "DELETE", "/v1/session/"+a.SessionID, ""); rec.Code != 404 {
		t.Errorf("double delete: status %d, want 404", rec.Code)
	}
	if rec := do(s.Handler(), "POST", "/v1/session/nope/edit", sessionEditBatch); rec.Code != 404 {
		t.Errorf("unknown id: status %d, want 404", rec.Code)
	}
	st = s.Stats()
	if st.SessionsOpen != 1 {
		t.Errorf("SessionsOpen after delete = %d, want 1", st.SessionsOpen)
	}
	if st.SessionsEvicted != 0 {
		t.Errorf("explicit delete counted as eviction (SessionsEvicted = %d)", st.SessionsEvicted)
	}
}

// TestSessionTTLEviction: idle sessions expire after SessionTTL and
// count as evictions.
func TestSessionTTLEviction(t *testing.T) {
	s := newTestServer(t, Config{SessionTTL: 30 * time.Millisecond})
	open := openSession(t, s, treeBody)
	time.Sleep(80 * time.Millisecond)
	if rec := do(s.Handler(), "POST", "/v1/session/"+open.SessionID+"/edit", sessionEditBatch); rec.Code != 404 {
		t.Fatalf("edit on expired session: status %d, want 404: %s", rec.Code, rec.Body)
	}
	st := s.Stats()
	if st.SessionsOpen != 0 || st.SessionsEvicted != 1 {
		t.Errorf("stats open=%d evicted=%d, want 0, 1", st.SessionsOpen, st.SessionsEvicted)
	}
}

// TestSessionCapacityEviction: opening past MaxSessions evicts the
// least-recently-used session.
func TestSessionCapacityEviction(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 2})
	a := openSession(t, s, treeBody)
	b := openSession(t, s, treeBody)
	// Touch a so b is the LRU.
	editSession(t, s, a.SessionID, sessionEditBatch)
	c := openSession(t, s, treeBody)
	if rec := do(s.Handler(), "POST", "/v1/session/"+b.SessionID+"/edit", sessionEditBatch); rec.Code != 404 {
		t.Errorf("LRU session %s survived capacity eviction (status %d)", b.SessionID, rec.Code)
	}
	for _, id := range []string{a.SessionID, c.SessionID} {
		if rec := do(s.Handler(), "POST", "/v1/session/"+id+"/edit", sessionEditBatch); rec.Code != 200 {
			t.Errorf("session %s: status %d: %s", id, rec.Code, rec.Body)
		}
	}
	st := s.Stats()
	if st.SessionsOpen != 2 || st.SessionsEvicted != 1 {
		t.Errorf("stats open=%d evicted=%d, want 2, 1", st.SessionsOpen, st.SessionsEvicted)
	}
}

// TestSessionEditAtomic: a batch with an invalid edit is rolled back
// completely — the next good edit behaves as if the poison batch never
// happened.
func TestSessionEditAtomic(t *testing.T) {
	s := newTestServer(t, Config{})
	open := openSession(t, s, treeBody)
	poison := `{"edits":[{"op":"driver","rtr":70},{"op":"branch","node":99,"r":1,"l":0}]}`
	rec := do(s.Handler(), "POST", "/v1/session/"+open.SessionID+"/edit", poison)
	if rec.Code != 400 {
		t.Fatalf("poison batch: status %d, want 400: %s", rec.Code, rec.Body)
	}
	edit := editSession(t, s, open.SessionID, sessionEditBatch)
	if edit.Gen != 1 {
		t.Errorf("gen after rolled-back batch = %d, want 1", edit.Gen)
	}
	if want := coldTreeBytes(t, editedTreeBody("")); string(edit.Result) != want {
		t.Errorf("result after rollback differs from cold /v1/tree (poison batch left residue):\nsession: %s\ncold:    %s", edit.Result, want)
	}
}

func TestSessionRequestErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	open := openSession(t, s, treeBody)
	editPath := "/v1/session/" + open.SessionID + "/edit"
	cases := []struct{ name, path, body string }{
		{"bad open body", "/v1/session", `{"tree":{"branches":[],"sinks":[]},"drive":{"rtr":50}}`},
		{"bad edit op", editPath, `{"edits":[{"op":"teleport","node":1}]}`},
		{"bad edit engine", editPath, `{"edits":[{"op":"driver","rtr":70}],"engine":"warp"}`},
		{"unknown field", editPath, `{"edits":[],"bogus":1}`},
		{"negative r", editPath, `{"edits":[{"op":"branch","node":1,"r":-1,"l":1e-10}]}`},
		{"load on non-sink", editPath, `{"edits":[{"op":"load","node":1,"cl":1e-15}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if rec := do(s.Handler(), "POST", c.path, c.body); rec.Code != 400 {
				t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body)
			}
		})
	}
	// Oversized batch.
	var b strings.Builder
	b.WriteString(`{"edits":[`)
	for i := 0; i <= maxSessionEdits; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"op":"driver","rtr":70}`)
	}
	b.WriteString(`]}`)
	if rec := do(s.Handler(), "POST", editPath, b.String()); rec.Code != 400 {
		t.Errorf("oversized batch: status %d, want 400", rec.Code)
	}
	// The session survives all of the above.
	editSession(t, s, open.SessionID, sessionEditBatch)
}

// TestSessionCancel: a canceled request context is a 503 with
// cancellation metadata, and the session remains usable.
func TestSessionCancel(t *testing.T) {
	s := newTestServer(t, Config{})
	open := openSession(t, s, treeBodyWithEngine("mna"))
	ctx, stop := context.WithCancel(context.Background())
	stop()
	rec := postCtx(ctx, s.Handler(), "/v1/session/"+open.SessionID+"/edit", sessionEditBatch)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"reason":"canceled"`) {
		t.Errorf("503 body missing canceled reason: %s", rec.Body)
	}
	// Note the edits were applied before the canceled read — the retry
	// convention is an empty batch.
	retry := editSession(t, s, open.SessionID, `{"edits":[]}`)
	if want := coldTreeBytes(t, editedTreeBody("mna")); string(retry.Result) != want {
		t.Errorf("post-cancel result differs from cold /v1/tree")
	}
}

// TestSessionDegradesUnderDeadline: a session read under a deadline too
// tight for the requested engine degrades to a cheaper one, exactly
// like /v1/tree.
func TestSessionDegradesUnderDeadline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, RequestTimeout: 40 * time.Millisecond})
	open := openSession(t, s, tree64Body("mna"))
	var res TreeResponse
	if err := json.Unmarshal(open.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Engine == "mna" {
		t.Fatalf("open result not degraded off the MNA engine: degraded=%v engine=%q", res.Degraded, res.Engine)
	}
	edit := editSession(t, s, open.SessionID, `{"edits":[{"op":"driver","rtr":45}]}`)
	if err := json.Unmarshal(edit.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Engine == "mna" {
		t.Errorf("edit result not degraded off the MNA engine: degraded=%v engine=%q", res.Degraded, res.Engine)
	}
}

// TestSessionBypassesCache: session traffic must never populate or
// read the response cache.
func TestSessionBypassesCache(t *testing.T) {
	s := newTestServer(t, Config{})
	open := openSession(t, s, treeBody)
	editSession(t, s, open.SessionID, sessionEditBatch)
	if st := s.Stats(); st.Cache.Hits != 0 || st.Cache.Len != 0 {
		t.Errorf("session traffic touched the response cache: hits=%d entries=%d", st.Cache.Hits, st.Cache.Len)
	}
	// A cold /v1/tree of the same net still misses (sessions stored
	// nothing under the tree key).
	if rec := post(s.Handler(), "/v1/tree", treeBody); rec.Header().Get("X-Cache") != "miss" {
		t.Error("session open pre-populated the /v1/tree cache")
	}
}

// TestSessionsClosedOnServerClose: Close evicts nothing but closes
// every live session; subsequent edits answer 503 shutdown (admission
// is closed before the registry is consulted).
func TestSessionsClosedOnServerClose(t *testing.T) {
	s, _ := New(Config{})
	open := openSession(t, s, treeBody)
	s.Close()
	rec := do(s.Handler(), "POST", "/v1/session/"+open.SessionID+"/edit", sessionEditBatch)
	if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusNotFound {
		t.Fatalf("edit after Close: status %d, want 503 or 404: %s", rec.Code, rec.Body)
	}
	if n := s.sessionCount(); n != 0 {
		t.Errorf("sessionCount after Close = %d, want 0", n)
	}
}
