package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const delayBody = `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13}}`

func TestDelayEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(s.Handler(), "/v1/delay", delayBody)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	out := rec.Body.String()
	for _, want := range []string{`"delay_s":`, `"method":"eq9"`, `"delay_rc_s":`, `"zeta":2.25`} {
		if !strings.Contains(out, want) {
			t.Errorf("response missing %s:\n%s", want, out)
		}
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
}

func TestDelayCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	first := post(s.Handler(), "/v1/delay", delayBody)
	// Same canonical request, different JSON formatting.
	reformatted := `{ "drive": {"cl":5e-13, "rtr":500},
	  "line": {"rt":1e3, "lt":0.0000001, "ct":1e-12, "length":1e-2} }`
	second := post(s.Handler(), "/v1/delay", reformatted)
	if second.Header().Get("X-Cache") != "hit" {
		t.Fatal("reformatted identical request missed the cache")
	}
	if first.Body.String() != second.Body.String() {
		t.Error("cache hit returned different bytes than the original response")
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit 1 miss", st.Cache)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: -1})
	post(s.Handler(), "/v1/delay", delayBody)
	rec := post(s.Handler(), "/v1/delay", delayBody)
	if rec.Header().Get("X-Cache") != "miss" {
		t.Error("disabled cache still produced a hit")
	}
}

func TestValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		path, body, wantErr string
	}{
		{"/v1/delay", `{`, "unexpected EOF"},
		{"/v1/delay", `{"bogus":1}`, "unknown field"},
		{"/v1/delay", delayBody + `{"again":true}`, "trailing data"},
		{"/v1/delay", `{"line":{"rt":1000,"lt":0,"ct":1e-12,"length":0.01},"drive":{}}`, "L must be positive"},
		{"/v1/delay", `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":-5}}`, "Rtr must be"},
		{"/v1/delay", strings.Replace(delayBody, `}}`, `},"method":"wumpus"}`, 1), "unknown method"},
		{"/v1/screen", `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{},"rise_s":0}`, "rise_s must be positive"},
		{"/v1/repeaters", `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01}}`, "missing buffer or node"},
		{"/v1/repeaters", `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"node":"250nm","buffer":{"r0":1,"c0":1}}`, "not both"},
		{"/v1/repeaters", `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"node":"9nm"}`, "unknown"},
		{"/v1/repeaters", `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"node":"250nm","model":"lc"}`, "unknown model"},
		{"/v1/sweep", `{"nets":10,"seed":1,"rise_s":5e-11}`, "missing node"},
		{"/v1/sweep", `{"node":"250nm","nets":0,"rise_s":5e-11}`, "nets must be"},
		{"/v1/sweep", `{"node":"250nm","nets":999999,"rise_s":5e-11}`, "nets must be"},
		{"/v1/sweep", `{"node":"250nm","nets":50000,"samples":64,"rise_s":5e-11}`, "exceeds"},
		{"/v1/sweep", `{"node":"250nm","nets":10,"rise_s":5e-11,"corners":["zz"]}`, "unknown corner"},
		{"/v1/sweep", `{"node":"250nm","nets":10,"rise_s":5e-11,"sigma":3}`, "sigmas must be"},
	}
	for _, c := range cases {
		rec := post(s.Handler(), c.path, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s %q: status %d, want 400", c.path, c.body, rec.Code)
			continue
		}
		if !strings.Contains(rec.Body.String(), c.wantErr) {
			t.Errorf("%s %q: error %q missing %q", c.path, c.body, rec.Body.String(), c.wantErr)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("GET", "/v1/delay", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/delay status = %d, want 405", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// TestBackpressure fills the admission semaphore directly and checks
// the next request is shed with 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2})
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	rec := post(s.Handler(), "/v1/delay", delayBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	<-s.sem
	<-s.sem
	if rec := post(s.Handler(), "/v1/delay", delayBody); rec.Code != 200 {
		t.Fatalf("after release: status %d, want 200", rec.Code)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}

// TestResponsesIdenticalAcrossWorkers is the serving determinism
// contract: the same request set, fired concurrently at servers with
// different worker counts, batch windows and cache settings, produces
// byte-identical bodies.
func TestResponsesIdenticalAcrossWorkers(t *testing.T) {
	type reqSpec struct{ path, body string }
	var reqs []reqSpec
	for i := 0; i < 8; i++ {
		line := fmt.Sprintf(`{"rt":%d,"lt":1e-7,"ct":1e-12,"length":0.01}`, 500+100*i)
		reqs = append(reqs,
			reqSpec{"/v1/delay", `{"line":` + line + `,"drive":{"rtr":250,"cl":1e-13}}`},
			reqSpec{"/v1/screen", `{"line":` + line + `,"drive":{"rtr":250,"cl":1e-13},"rise_s":5e-11}`},
			reqSpec{"/v1/repeaters", `{"line":` + line + `,"node":"250nm"}`},
		)
	}
	reqs = append(reqs, reqSpec{"/v1/sweep",
		`{"node":"250nm","nets":50,"seed":7,"rise_s":5e-11,"samples":2,"sigma":0.1,"drive_sigma":0.1,"repeaters":true}`})

	collect := func(cfg Config) []string {
		s := newTestServer(t, cfg)
		out := make([]string, len(reqs))
		var wg sync.WaitGroup
		for i, r := range reqs {
			wg.Add(1)
			go func(i int, r reqSpec) {
				defer wg.Done()
				rec := post(s.Handler(), r.path, r.body)
				if rec.Code != 200 {
					t.Errorf("%s: status %d: %s", r.path, rec.Code, rec.Body)
				}
				out[i] = rec.Body.String()
			}(i, r)
		}
		wg.Wait()
		return out
	}

	ref := collect(Config{Workers: 1, CacheEntries: -1})
	for _, cfg := range []Config{
		{Workers: 8},
		{Workers: 3, MaxBatch: 2},
		{Workers: 8, BatchWindow: 200 * time.Microsecond},
	} {
		got := collect(cfg)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("cfg %+v: response %d (%s) differs\n got: %s\nwant: %s",
					cfg, i, reqs[i].path, got[i], ref[i])
			}
		}
	}
}

// TestBatchingCoalesces drives many concurrent requests through a
// 1-worker server and checks the batcher actually grouped them.
func TestBatchingCoalesces(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheEntries: -1, BatchWindow: 500 * time.Microsecond})
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"line":{"rt":%d,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":250,"cl":1e-13}}`, 400+i)
			if rec := post(s.Handler(), "/v1/delay", body); rec.Code != 200 {
				t.Errorf("status %d", rec.Code)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Batched != n {
		t.Fatalf("Batched = %d, want %d", st.Batched, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Fatalf("Batches = %d out of range (0, %d]", st.Batches, n)
	}
	t.Logf("batches=%d mean batch size=%.1f", st.Batches, float64(st.Batched)/float64(st.Batches))
}

func TestBatcherClose(t *testing.T) {
	b := newBatcher(2, 8, 0)
	ran := false
	if err := b.do(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("do before close: err=%v ran=%v", err, ran)
	}
	b.close()
	if err := b.do(context.Background(), func() {}); err != errClosed {
		t.Fatalf("do after close: err=%v, want errClosed", err)
	}
}

// A compute panic is a server fault: recovered into errPanic, mapped
// to 500 by failCompute — never a daemon crash, never a 400 blaming
// the request.
func TestComputePanicIs500(t *testing.T) {
	s := newTestServer(t, Config{})
	err := s.compute(context.Background(), func() error { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "internal error: boom") {
		t.Fatalf("compute panic -> %v", err)
	}
	rec := httptest.NewRecorder()
	s.failCompute(rec, err)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic error mapped to %d, want 500", rec.Code)
	}
}

func TestStatsRequestCounts(t *testing.T) {
	s := newTestServer(t, Config{})
	post(s.Handler(), "/v1/delay", delayBody)
	post(s.Handler(), "/v1/delay", delayBody)
	post(s.Handler(), "/v1/screen", `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{},"rise_s":5e-11}`)
	st := s.Stats()
	if st.Requests["delay"] != 2 || st.Requests["screen"] != 1 {
		t.Errorf("Requests = %v", st.Requests)
	}
}
