package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"rlckit"
	"rlckit/internal/faultinject"
	"rlckit/internal/session"
)

// This file is the what-if session surface: open a tree once, stream
// value edits, read updated per-sink delays after each.
//
//	POST   /v1/session            → open; returns session_id + initial result
//	POST   /v1/session/{id}/edit  → apply an edit batch, return the new result
//	DELETE /v1/session/{id}       → close
//
// Sessions are stateful, so they sit outside the two single-shot
// serving mechanisms: the response cache (an edited net's identity is
// the whole edit history — the embedded results instead stay
// byte-identical to a cold /v1/tree of the edited net, by sharing
// treeResponse) and the micro-batcher (a session edit is already
// sublinear; coalescing would add cross-request ordering that the
// worker-count determinism tests forbid). Admission control and the
// compute context (client disconnect, request timeout, server close)
// apply as everywhere else, and deadline-aware degradation picks the
// result engine with the same degradeTree arithmetic as /v1/tree —
// conservative for a session, since an edit re-analysis is far cheaper
// than the cold analysis the estimates were calibrated on.
//
// Idle sessions are evicted after Config.SessionTTL, and the registry
// is bounded by Config.MaxSessions (opening past it evicts the
// least-recently-used session). Session IDs are a process-local
// counter: deterministic for a serial open sequence at any worker
// count.

// SessionOpenResponse answers POST /v1/session.
type SessionOpenResponse struct {
	SessionID string `json:"session_id"`
	Nodes     int    `json:"nodes"`
	// Gen is the session's edit generation (0 at open; one per applied
	// edit batch).
	Gen uint64 `json:"gen"`
	// Result is the initial analysis, in exactly the /v1/tree response
	// shape.
	Result json.RawMessage `json:"result"`
}

// SessionEditRequest is one edit batch. The batch is atomic: on an
// invalid edit nothing is applied. Engine optionally overrides the
// session's default result engine for this read.
type SessionEditRequest struct {
	Edits  []rlckit.SessionEdit `json:"edits"`
	Engine string               `json:"engine,omitempty"`
}

// SessionEditResponse answers POST /v1/session/{id}/edit.
type SessionEditResponse struct {
	SessionID string          `json:"session_id"`
	Gen       uint64          `json:"gen"`
	Result    json.RawMessage `json:"result"`
}

// SessionCloseResponse answers DELETE /v1/session/{id}.
type SessionCloseResponse struct {
	SessionID string `json:"session_id"`
	Closed    bool   `json:"closed"`
}

// maxSessionEdits bounds one edit batch.
const maxSessionEdits = 4096

// liveSession is one registry entry. seq is the numeric part of the
// session ID (compaction orders the rewritten journal by it) and body
// the original open request bytes — the journal's replay recipe is
// "re-parse body, re-apply History()".
type liveSession struct {
	sess   *rlckit.Session
	nodes  int
	engine uint8 // default result engine, from the open request
	seq    uint64
	body   json.RawMessage
	last   time.Time
}

func (s *Server) sessionTTL() time.Duration {
	if s.cfg.SessionTTL == 0 {
		return DefaultSessionTTL
	}
	return s.cfg.SessionTTL
}

func (s *Server) maxSessions() int {
	if s.cfg.MaxSessions <= 0 {
		return DefaultMaxSessions
	}
	return s.cfg.MaxSessions
}

// sweepSessionsLocked evicts sessions idle past the TTL, returning the
// evicted IDs so the caller can journal their close records after
// releasing sessMu (persistMu is never taken under sessMu). Caller
// holds sessMu.
func (s *Server) sweepSessionsLocked(now time.Time) []string {
	ttl := s.sessionTTL()
	if ttl < 0 {
		return nil
	}
	var evicted []string
	for id, ls := range s.sessions {
		if now.Sub(ls.last) > ttl {
			ls.sess.Close()
			delete(s.sessions, id)
			s.sessEvicted.Add(1)
			evicted = append(evicted, id)
		}
	}
	return evicted
}

// registerSession stores an opened session, evicting the
// least-recently-used entry if the registry is full. It returns the
// new ID plus any evicted IDs for the caller to journal.
func (s *Server) registerSession(sess *rlckit.Session, nodes int, engine uint8, body json.RawMessage) (string, []string) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	now := time.Now()
	evicted := s.sweepSessionsLocked(now)
	for len(s.sessions) >= s.maxSessions() {
		oldID, oldest := "", now
		for id, ls := range s.sessions {
			if !ls.last.After(oldest) || oldID == "" {
				oldID, oldest = id, ls.last
			}
		}
		s.sessions[oldID].sess.Close()
		delete(s.sessions, oldID)
		s.sessEvicted.Add(1)
		evicted = append(evicted, oldID)
	}
	s.sessSeq++
	id := fmt.Sprintf("s%d", s.sessSeq)
	s.sessions[id] = &liveSession{
		sess: sess, nodes: nodes, engine: engine,
		seq: s.sessSeq, body: body, last: now,
	}
	s.sessOpened.Add(1)
	return id, evicted
}

// lookupSession returns the live session for id (touching its idle
// clock), or nil if unknown or expired, plus any IDs the TTL sweep
// evicted on the way.
func (s *Server) lookupSession(id string) (*liveSession, []string) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	now := time.Now()
	evicted := s.sweepSessionsLocked(now)
	ls := s.sessions[id]
	if ls != nil {
		ls.last = now
	}
	return ls, evicted
}

// dropSession removes id from the registry (an explicit close, not an
// eviction), reporting whether it was present.
func (s *Server) dropSession(id string) bool {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	ls := s.sessions[id]
	if ls == nil {
		return false
	}
	ls.sess.Close()
	delete(s.sessions, id)
	return true
}

func (s *Server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// closeSessions closes every live session (server shutdown).
func (s *Server) closeSessions() {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for id, ls := range s.sessions {
		ls.sess.Close()
		delete(s.sessions, id)
	}
}

// computeSession runs a session compute inline (no batcher) with the
// same panic containment as the batched paths.
func (s *Server) computeSession(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errPanic, r)
		}
	}()
	faultinject.Panic(faultinject.SiteSession)
	return fn()
}

// sessionResult reads the session's delay table with the given
// canonical engine and renders it through the shared /v1/tree response
// path, returning the marshaled body.
func (s *Server) sessionResult(ctx context.Context, sess *rlckit.Session, engine uint8, reason string) (json.RawMessage, error) {
	var res *rlckit.TreeResult
	err := s.computeSession(func() error {
		var ferr error
		res, ferr = sess.Result(ctx, treeEngineOf(engine))
		return ferr
	})
	if err != nil {
		return nil, err
	}
	resp, err := s.treeResponse(res, reason)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	// The body is read whole before parsing: the journal persists the
	// original bytes, and replaying them through this same decoder
	// rebuilds the identical session (the decoder is a pure function of
	// the body — FuzzServeRequest asserts it).
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	t, drv, key, err := parseTreeRequest(bytes.NewReader(body))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := rlckit.OpenSession(t, drv, rlckit.TreeConfig{Pencils: s.pencils})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, release := s.computeCtx(r)
	defer release()
	engine, reason := degradeTree(ctx, key.method, t.Len())
	raw, err := s.sessionResult(ctx, sess, engine, reason)
	if err != nil {
		s.failCompute(w, err)
		return
	}
	id, evicted := s.registerSession(sess, t.Len(), key.method, body)
	s.journalCloses(evicted)
	s.journalAppend(journalRecord{Op: "open", ID: id, Body: body})
	s.finishSession(w, SessionOpenResponse{SessionID: id, Nodes: t.Len(), Gen: 0, Result: raw})
}

func (s *Server) handleSessionEdit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ls, evicted := s.lookupSession(id)
	s.journalCloses(evicted)
	if ls == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", id))
		return
	}
	req, err := parseSessionEditRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	engine := ls.engine
	if req.Engine != "" {
		if engine, err = parseTreeEngine(req.Engine); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := s.applyAndJournal(id, ls, req.Edits); err != nil {
		if errors.Is(err, session.ErrClosed) {
			// Evicted between lookup and apply.
			s.writeError(w, http.StatusNotFound, fmt.Errorf("session %q expired", id))
			return
		}
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.sessionEdits.Add(uint64(len(req.Edits)))
	ctx, release := s.computeCtx(r)
	defer release()
	eng, reason := degradeTree(ctx, engine, ls.nodes)
	raw, err := s.sessionResult(ctx, ls.sess, eng, reason)
	if err != nil {
		if errors.Is(err, session.ErrClosed) {
			s.writeError(w, http.StatusNotFound, fmt.Errorf("session %q expired", id))
			return
		}
		s.failCompute(w, err)
		return
	}
	s.finishSession(w, SessionEditResponse{SessionID: id, Gen: ls.sess.Stats().Gen, Result: raw})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.dropSession(id) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", id))
		return
	}
	s.journalAppend(journalRecord{Op: "close", ID: id})
	s.finishSession(w, SessionCloseResponse{SessionID: id, Closed: true})
}

// finishSession marshals and sends a session envelope (never cached).
func (s *Server) finishSession(w http.ResponseWriter, resp any) {
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
