package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestSessionEvictionRacesEdits hammers a tiny session registry — a
// 1 ms idle TTL and a capacity of four — with concurrent opens, edit
// streams and deletes. The contract under that storm: an edit on a
// session the sweeper or the LRU cap evicted mid-request answers a
// clean 404, and a surviving edit answers a complete, well-formed 200
// whose embedded result parses — never a torn response, never a 5xx.
// Run under -race this also proves the registry's lock discipline
// (sessMu vs the per-session lock vs persistMu) has no data races.
func TestSessionEvictionRacesEdits(t *testing.T) {
	s := newTestServer(t, Config{
		SessionTTL:  time.Millisecond,
		MaxSessions: 4,
		MaxInFlight: -1,
		StoreDir:    t.TempDir(), // journal the churn too: persistMu joins the race
	})
	const (
		openers = 4
		editors = 8
		rounds  = 40
	)
	var wg, producers sync.WaitGroup
	ids := make(chan string, openers*rounds)

	for g := 0; g < openers; g++ {
		wg.Add(1)
		producers.Add(1)
		go func() {
			defer wg.Done()
			defer producers.Done()
			for i := 0; i < rounds; i++ {
				rec := do(s.Handler(), "POST", "/v1/session", treeBody)
				switch rec.Code {
				case http.StatusOK:
					var resp SessionOpenResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("torn open response: %v: %s", err, rec.Body)
						return
					}
					ids <- resp.SessionID
				default:
					t.Errorf("open: status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}()
	}
	for g := 0; g < editors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("s%d", 1+(g*rounds+i)%(openers*rounds))
				var rec = do(s.Handler(), "POST", "/v1/session/"+id+"/edit", sessionEditBatch)
				switch rec.Code {
				case http.StatusOK:
					var resp SessionEditResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("torn edit response: %v: %s", err, rec.Body)
						return
					}
					if resp.SessionID != id || len(resp.Result) == 0 {
						t.Errorf("edit answered for %q with id %q, result %d bytes", id, resp.SessionID, len(resp.Result))
						return
					}
				case http.StatusNotFound:
					// Evicted (TTL or LRU) or not yet opened: the clean miss.
				default:
					t.Errorf("edit: status %d: %s", rec.Code, rec.Body)
					return
				}
				if i%8 == 0 {
					// Let the TTL lapse so the sweeper actually fires mid-storm.
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	// A deleter races explicit closes against the sweeper; ids closes
	// once the openers finish, so the range drains and exits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := range ids {
			rec := do(s.Handler(), "DELETE", "/v1/session/"+id, "")
			if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
				t.Errorf("delete: status %d: %s", rec.Code, rec.Body)
				return
			}
		}
	}()
	go func() { producers.Wait(); close(ids) }()
	wg.Wait()
}
