package serve

import (
	"testing"

	"rlckit/internal/golden"
)

// TestGoldenEndpoints locks the exact response bytes of every /v1/*
// endpoint for fixed requests — the wire format is a contract, and
// every float in it is a deterministic function of the request.
// Refresh with `go test ./internal/serve -update`.
func TestGoldenEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"delay_eq9.json", "/v1/delay",
			`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13}}`},
		{"delay_exact.json", "/v1/delay",
			`{"line":{"rt":100,"lt":1e-8,"ct":1e-12,"length":0.002},"drive":{"rtr":500,"cl":1e-13}}`},
		{"delay_method_eq9.json", "/v1/delay",
			`{"line":{"rt":100,"lt":1e-8,"ct":1e-12,"length":0.002},"drive":{"rtr":500,"cl":1e-13},"method":"eq9"}`},
		{"screen.json", "/v1/screen",
			`{"line":{"rt":100,"lt":1e-8,"ct":1e-12,"length":0.002},"drive":{"rtr":500,"cl":1e-13},"rise_s":5e-11}`},
		{"repeaters_node.json", "/v1/repeaters",
			`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"node":"250nm"}`},
		{"repeaters_rc.json", "/v1/repeaters",
			`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"buffer":{"r0":250,"c0":5e-15},"model":"rc"}`},
		{"sweep.json", "/v1/sweep",
			`{"node":"250nm","nets":40,"seed":1,"rise_s":5e-11,"samples":2,"sigma":0.1,"drive_sigma":0.1,"repeaters":true}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(s.Handler(), c.path, c.body)
			if rec.Code != 200 {
				t.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
			golden.Assert(t, c.name, rec.Body.Bytes())
		})
	}
}
