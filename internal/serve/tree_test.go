package serve

import (
	"encoding/json"
	"testing"

	"rlckit/internal/golden"
)

// treeBody is a small asymmetric two-sink tree used across the tree
// endpoint tests.
const treeBody = `{
  "tree": {
    "root_c": 5e-15,
    "branches": [
      {"parent": 0, "r": 20, "l": 5e-10, "c": 4e-14},
      {"parent": 1, "r": 15, "l": 4e-10, "c": 3e-14},
      {"parent": 1, "r": 40, "l": 1e-9, "c": 6e-14},
      {"parent": 3, "r": 40, "l": 1e-9, "c": 6e-14}
    ],
    "sinks": [{"node": 2, "cl": 2e-14}, {"node": 4, "cl": 3.5e-14}]
  },
  "drive": {"rtr": 80}
}`

func treeBodyWithEngine(engine string) string {
	var req map[string]any
	if err := json.Unmarshal([]byte(treeBody), &req); err != nil {
		panic(err)
	}
	req["engine"] = engine
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestGoldenTree locks the exact response bytes of /v1/tree per
// engine. Refresh with `go test ./internal/serve -update`.
func TestGoldenTree(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct{ name, body string }{
		{"tree_closed.json", treeBody},
		{"tree_mna.json", treeBodyWithEngine("mna")},
		{"tree_reduced.json", treeBodyWithEngine("reduced")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(s.Handler(), "/v1/tree", c.body)
			if rec.Code != 200 {
				t.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
			golden.Assert(t, c.name, rec.Body.Bytes())
		})
	}
}

// TestTreeCacheHitEquivalence: a repeated request must hit the cache
// and return byte-identical body, and a reformatted (but physically
// identical) body must share the same cache entry.
func TestTreeCacheHitEquivalence(t *testing.T) {
	s := newTestServer(t, Config{})
	first := post(s.Handler(), "/v1/tree", treeBody)
	if first.Code != 200 || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first: code %d cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	second := post(s.Handler(), "/v1/tree", treeBody)
	if second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request missed the cache")
	}
	if second.Body.String() != first.Body.String() {
		t.Fatal("cache hit returned different bytes")
	}
	// Same physics, different JSON formatting: whitespace collapsed via
	// decode/encode round trip.
	var req map[string]any
	if err := json.Unmarshal([]byte(treeBody), &req); err != nil {
		t.Fatal(err)
	}
	compact, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	third := post(s.Handler(), "/v1/tree", string(compact))
	if third.Header().Get("X-Cache") != "hit" {
		t.Fatal("reformatted request missed the cache")
	}
	if third.Body.String() != first.Body.String() {
		t.Fatal("reformatted request returned different bytes")
	}
}

// TestTreeWorkerInvariance: tree responses must be byte-identical at
// every worker count.
func TestTreeWorkerInvariance(t *testing.T) {
	var ref string
	for _, workers := range []int{1, 2, 8} {
		s := newTestServer(t, Config{Workers: workers, CacheEntries: -1})
		rec := post(s.Handler(), "/v1/tree", treeBodyWithEngine("mna"))
		if rec.Code != 200 {
			t.Fatalf("workers=%d: status %d: %s", workers, rec.Code, rec.Body)
		}
		if ref == "" {
			ref = rec.Body.String()
		} else if rec.Body.String() != ref {
			t.Fatalf("workers=%d: response differs", workers)
		}
	}
}

// TestTreeReducedConsistency: the reduced engine's response must agree
// with the MNA engine's per-sink delays within 1% (or report an
// explicit fallback).
func TestTreeReducedConsistency(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: -1})
	var mna, red TreeResponse
	rec := post(s.Handler(), "/v1/tree", treeBodyWithEngine("mna"))
	if err := json.Unmarshal(rec.Body.Bytes(), &mna); err != nil {
		t.Fatal(err)
	}
	rec = post(s.Handler(), "/v1/tree", treeBodyWithEngine("reduced"))
	if err := json.Unmarshal(rec.Body.Bytes(), &red); err != nil {
		t.Fatal(err)
	}
	if red.MORFallback {
		t.Skip("reduction fell back (still a valid response)")
	}
	if red.MORQ <= 0 || red.MORN <= red.MORQ {
		t.Errorf("implausible MOR metadata: q=%d n=%d", red.MORQ, red.MORN)
	}
	for i := range mna.Sinks {
		m, r := mna.Sinks[i].DelayS, red.Sinks[i].DelayS
		if rel := (m - r) / m; rel > 0.01 || rel < -0.01 {
			t.Errorf("sink %d: reduced %g vs mna %g", mna.Sinks[i].Node, r, m)
		}
	}
}

func TestTreeRequestErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct{ name, body string }{
		{"no sinks", `{"tree":{"branches":[{"parent":0,"r":1,"l":0,"c":1e-15}],"sinks":[]},"drive":{"rtr":50}}`},
		{"bad parent", `{"tree":{"branches":[{"parent":7,"r":1,"l":0,"c":1e-15}],"sinks":[{"node":1,"cl":0}]},"drive":{"rtr":50}}`},
		{"negative r", `{"tree":{"branches":[{"parent":0,"r":-1,"l":0,"c":1e-15}],"sinks":[{"node":1,"cl":0}]},"drive":{"rtr":50}}`},
		{"zero impedance", `{"tree":{"branches":[{"parent":0,"r":0,"l":0,"c":1e-15}],"sinks":[{"node":1,"cl":0}]},"drive":{"rtr":50}}`},
		{"bad engine", `{"tree":{"branches":[{"parent":0,"r":1,"l":0,"c":1e-15}],"sinks":[{"node":1,"cl":0}]},"drive":{"rtr":50},"engine":"warp"}`},
		{"negative rtr", `{"tree":{"branches":[{"parent":0,"r":1,"l":0,"c":1e-15}],"sinks":[{"node":1,"cl":0}]},"drive":{"rtr":-5}}`},
		{"unknown field", `{"tree":{"branches":[{"parent":0,"r":1,"l":0,"c":1e-15}],"sinks":[{"node":1,"cl":0}]},"drive":{"rtr":50},"bogus":1}`},
		// Decodes fine (finite, non-negative) but the moment products
		// overflow: must be a 400 rejection, never a 500 from an Inf
		// reaching json.Marshal.
		{"overflowing values", `{"tree":{"branches":[{"parent":0,"r":1e308,"l":0,"c":1e308}],"sinks":[{"node":1,"cl":0}]},"drive":{"rtr":1},"engine":"closed"}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(s.Handler(), "/v1/tree", c.body)
			if rec.Code != 400 {
				t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body)
			}
		})
	}
}
