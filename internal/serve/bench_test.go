package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// The benchmark net sits outside Eq. 9's validated accuracy domain, so
// the default "auto" method pays the exact transmission-line engine on
// a miss (~0.5 ms) — exactly the class of request a cache earns its
// keep on. Hot and Cold run the identical handler path; the only
// difference is whether the canonical key is already cached.

func benchBody(i int) string {
	// Perturb the length in the 15th digit: every i is a distinct
	// canonical key, but all stay outside the Eq. 9 domain.
	return fmt.Sprintf(
		`{"line":{"rt":100,"lt":1e-8,"ct":1e-12,"length":%.15g},"drive":{"rtr":500,"cl":1e-13}}`,
		0.002+float64(i)*1e-9)
}

func benchServe(b *testing.B, s *Server, path string, bodies []string) {
	b.Helper()
	h := s.Handler()
	b.ReportAllocs()
	i := 0
	for b.Loop() {
		body := bodies[i%len(bodies)]
		i++
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkServeDelayHot measures the cached hot path: the same
// request repeated, served from the response cache after the first
// computation.
func BenchmarkServeDelayHot(b *testing.B) {
	s, _ := New(Config{})
	defer s.Close()
	bodies := []string{benchBody(0)}
	// Prime the cache before the timed loop (b.Loop resets the timer on
	// its first call) so every timed iteration is a hit.
	rec := post(s.Handler(), "/v1/delay", bodies[0])
	if rec.Code != 200 {
		b.Fatalf("prime failed: %d", rec.Code)
	}
	benchServe(b, s, "/v1/delay", bodies)
	if misses := s.Stats().Cache.Misses; misses > 1 {
		b.Fatalf("hot benchmark missed the cache %d times", misses)
	}
}

// BenchmarkServeDelayCold measures the uncached path: every request is
// a distinct canonical key, and the key population (4× the cache) keeps
// the LRU from ever serving a hit, so each iteration pays the full
// exact-engine analysis.
func BenchmarkServeDelayCold(b *testing.B) {
	s, _ := New(Config{CacheEntries: 1024})
	defer s.Close()
	bodies := make([]string, 4096)
	for i := range bodies {
		bodies[i] = benchBody(i)
	}
	benchServe(b, s, "/v1/delay", bodies)
	if hits := s.Stats().Cache.Hits; hits > 0 {
		b.Fatalf("cold benchmark hit the cache %d times", hits)
	}
}

// BenchmarkServeDelayColdEq9 is the cold path for an in-domain net:
// closed-form Eq. 9 compute plus JSON round trip — the floor a cache
// hit competes with on easy requests.
func BenchmarkServeDelayColdEq9(b *testing.B) {
	s, _ := New(Config{CacheEntries: 1024})
	defer s.Close()
	bodies := make([]string, 4096)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(
			`{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":%.15g},"drive":{"rtr":500,"cl":5e-13}}`,
			0.01+float64(i)*1e-9)
	}
	benchServe(b, s, "/v1/delay", bodies)
}

// BenchmarkServeSweep measures a server-side population sweep request:
// 200 nets × 3 corners × 2 draws, a fresh seed every iteration (never
// cached).
func BenchmarkServeSweep(b *testing.B) {
	s, _ := New(Config{})
	defer s.Close()
	h := s.Handler()
	b.ReportAllocs()
	seed := 0
	for b.Loop() {
		seed++
		body := fmt.Sprintf(
			`{"node":"250nm","nets":200,"seed":%d,"rise_s":5e-11,"samples":2,"sigma":0.1,"drive_sigma":0.1}`, seed)
		req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
