package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"rlckit"
)

// This file is the /v1/tree endpoint: per-sink delay and skew analysis
// of a multi-sink RLC tree over the wire. Trees are variable-length,
// so the canonical cache key carries an exact-bits string encoding of
// the request's physics (canonicalTree) rather than the raw JSON —
// two bodies that differ only in formatting share a cache entry.

// TreeBranchSpec is one tree branch: the node it hangs under and its
// series resistance (Ω), inductance (H) and node capacitance (F).
// Branch i of the request creates node i+1 (the root is node 0).
type TreeBranchSpec struct {
	Parent int     `json:"parent"`
	R      float64 `json:"r"`
	L      float64 `json:"l"`
	C      float64 `json:"c"`
}

// TreeSinkSpec marks a node as a sink with load capacitance CL.
type TreeSinkSpec struct {
	Node int     `json:"node"`
	CL   float64 `json:"cl"`
}

// TreeSpec describes a multi-sink RLC tree.
type TreeSpec struct {
	// RootC is the root node's capacitance to ground (F).
	RootC float64 `json:"root_c"`
	// Branches list the non-root nodes in construction order.
	Branches []TreeBranchSpec `json:"branches"`
	// Sinks mark the receiver pins.
	Sinks []TreeSinkSpec `json:"sinks"`
}

// TreeDriveSpec is the gate driving the tree root.
type TreeDriveSpec struct {
	Rtr float64 `json:"rtr"`
	V   float64 `json:"v,omitempty"`
}

// TreeRequest asks for the per-sink delay table and skew of a tree.
type TreeRequest struct {
	Tree  TreeSpec      `json:"tree"`
	Drive TreeDriveSpec `json:"drive"`
	// Engine selects the estimator: "closed" (default — the moment /
	// two-pole closed form), "mna" (one shared transient, every sink
	// probed), or "reduced" (multi-output Krylov reduced model; falls
	// back to "mna" when certification fails).
	Engine string `json:"engine,omitempty"`
}

// TreeSinkJSON is one sink row of the response.
type TreeSinkJSON struct {
	Node     int     `json:"node"`
	DelayS   float64 `json:"delay_s"`
	DelayRCS float64 `json:"delay_rc_s"`
	Zeta     float64 `json:"zeta"`
	OmegaN   float64 `json:"omega_n"`
	InDomain bool    `json:"in_domain"`
}

// TreeResponse is the per-sink delay table and skew statistics.
type TreeResponse struct {
	Engine      string         `json:"engine"` // estimator that produced delay_s
	Sinks       []TreeSinkJSON `json:"sinks"`
	MinDelayS   float64        `json:"min_delay_s"`
	MaxDelayS   float64        `json:"max_delay_s"`
	MaxSkewS    float64        `json:"max_skew_s"`
	MaxSkewRCS  float64        `json:"max_skew_rc_s"`
	SkewErrPct  float64        `json:"skew_err_pct"`
	MORQ        int            `json:"mor_q,omitempty"`
	MORN        int            `json:"mor_n,omitempty"`
	MORErrPct   float64        `json:"mor_err_pct,omitempty"`
	MORFallback bool           `json:"mor_fallback,omitempty"`
	// Degraded marks a response the server answered with a cheaper
	// engine than requested to meet the request deadline (the Engine
	// field reports the engine that actually ran); DegradeReason spells
	// out the budget arithmetic. Degraded responses are never cached.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
}

// maxTreeNodes bounds one /v1/tree request's node count — enforced by
// the decoder before any compute is scheduled.
const maxTreeNodes = 4096

// tree engines, in canonical (cache key) form.
const (
	treeEngineClosed uint8 = iota
	treeEngineMNA
	treeEngineReduced
)

func isFinite(v float64) bool {
	return !math.IsInf(v, 0) && !math.IsNaN(v)
}

func parseTreeEngine(s string) (uint8, error) {
	switch s {
	case "", "closed":
		return treeEngineClosed, nil
	case "mna":
		return treeEngineMNA, nil
	case "reduced":
		return treeEngineReduced, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (have closed, mna, reduced)", s)
	}
}

// canonicalTree renders the exact physics of a validated tree request
// as a compact string for the comparable cache key: every float is
// encoded with exact hex bits, so two requests collide only when they
// describe bit-identical trees.
func canonicalTree(req *TreeRequest) string {
	var b strings.Builder
	hx := func(v float64) {
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	hx(req.Tree.RootC)
	for _, br := range req.Tree.Branches {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(br.Parent))
		b.WriteByte(',')
		hx(br.R)
		b.WriteByte(',')
		hx(br.L)
		b.WriteByte(',')
		hx(br.C)
	}
	b.WriteByte('|')
	for _, s := range req.Tree.Sinks {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(s.Node))
		b.WriteByte(',')
		hx(s.CL)
	}
	return b.String()
}

// parseTreeRequest decodes and validates a /v1/tree body, building the
// tree (construction is the validation) and the canonical cache key.
func parseTreeRequest(r io.Reader) (*rlckit.RLCTree, rlckit.TreeDrive, cacheKey, error) {
	var req TreeRequest
	var drv rlckit.TreeDrive
	if err := decodeStrict(r, &req); err != nil {
		return nil, drv, cacheKey{}, err
	}
	eng, err := parseTreeEngine(req.Engine)
	if err != nil {
		return nil, drv, cacheKey{}, err
	}
	if len(req.Tree.Branches)+1 > maxTreeNodes {
		return nil, drv, cacheKey{}, fmt.Errorf("tree has %d nodes, limit %d", len(req.Tree.Branches)+1, maxTreeNodes)
	}
	if len(req.Tree.Sinks) == 0 {
		return nil, drv, cacheKey{}, fmt.Errorf("tree has no sinks")
	}
	t, err := rlckit.NewTree(req.Tree.RootC)
	if err != nil {
		return nil, drv, cacheKey{}, err
	}
	for i, br := range req.Tree.Branches {
		if _, err := t.Add(br.Parent, br.R, br.L, br.C); err != nil {
			return nil, drv, cacheKey{}, fmt.Errorf("branch %d: %w", i, err)
		}
	}
	for i, s := range req.Tree.Sinks {
		if err := t.MarkSink(s.Node, s.CL); err != nil {
			return nil, drv, cacheKey{}, fmt.Errorf("sink %d: %w", i, err)
		}
	}
	drv = rlckit.TreeDrive{Rtr: req.Drive.Rtr, V: req.Drive.V}
	if err := drv.Validate(); err != nil {
		return nil, drv, cacheKey{}, err
	}
	key := cacheKey{
		kind:   kindTree,
		method: eng,
		drive:  rlckit.Drive{Rtr: drv.Rtr, V: drv.V},
		tree:   canonicalTree(&req),
	}
	return t, drv, key, nil
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	t, drv, key, err := parseTreeRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ctx, release := s.computeCtx(r)
	defer release()
	// Deadline-aware degradation: pick the engine the remaining budget
	// can afford (the requested one when it fits).
	engine, reason := degradeTree(ctx, key.method, t.Len())
	respond(s, w, ctx, key, func() (TreeResponse, bool, error) {
		cfg := rlckit.TreeConfig{Ctx: ctx, Engine: treeEngineOf(engine), Pencils: s.pencils}
		res, err := rlckit.AnalyzeTree(t, drv, cfg)
		if err != nil {
			return TreeResponse{}, true, err
		}
		resp, err := s.treeResponse(res, reason)
		if err != nil {
			return TreeResponse{}, true, err
		}
		return resp, reason == "", nil
	})
}

// treeEngineOf maps a canonical engine byte to the facade engine.
func treeEngineOf(engine uint8) rlckit.TreeEngine {
	switch engine {
	case treeEngineMNA:
		return rlckit.TreeEngineMNA
	case treeEngineReduced:
		return rlckit.TreeEngineReduced
	default:
		return rlckit.TreeEngineClosed
	}
}

// treeResponse renders a tree analysis as the wire response — the one
// code path shared by /v1/tree and the what-if session endpoints, so a
// session edit's embedded result is byte-identical to a cold /v1/tree
// of the same net whenever the underlying tables are. It also owns the
// degradation/MOR counters.
func (s *Server) treeResponse(res *rlckit.TreeResult, reason string) (TreeResponse, error) {
	// Extreme-but-decodable element values can overflow the moment
	// products into ±Inf/NaN delays; JSON cannot carry those, so
	// reject the request instead of letting json.Marshal turn it
	// into a 500.
	for _, sk := range res.Sinks {
		if !isFinite(sk.Delay) || !isFinite(sk.DelayRC) {
			return TreeResponse{}, fmt.Errorf("tree analysis is numerically degenerate (sink %d delay overflows); rescale the element values", sk.Node)
		}
	}
	resp := TreeResponse{
		Engine:     res.Engine.String(),
		MinDelayS:  res.MinDelay,
		MaxDelayS:  res.MaxDelay,
		MaxSkewS:   res.MaxSkew,
		MaxSkewRCS: res.MaxSkewRC,
		SkewErrPct: res.SkewErrPct,
	}
	if reason != "" {
		resp.Degraded = true
		resp.DegradeReason = reason
		s.degraded.Add(1)
	}
	if res.Fallback {
		// Exact-fallback contract: certification failure selects the
		// shared-transient engine, it does not fail the request.
		resp.Engine = rlckit.TreeEngineMNA.String()
		resp.MORFallback = true
		s.morFallbacks.Add(1)
	} else if res.Reduced {
		resp.MORQ, resp.MORN, resp.MORErrPct = res.MORInfo.Q, res.MORInfo.N, res.MORInfo.EstErrPct
		s.morHits.Add(1)
	}
	for _, sk := range res.Sinks {
		row := TreeSinkJSON{
			Node: sk.Node, DelayS: sk.Delay, DelayRCS: sk.DelayRC,
			Zeta: sk.Zeta, OmegaN: sk.OmegaN, InDomain: sk.InDomain,
		}
		// A collapsed fit reports ζ, ωn = +Inf (or NaN), which JSON
		// cannot carry; such sinks are out of domain and ship zeros.
		if !isFinite(row.Zeta) || !isFinite(row.OmegaN) {
			row.Zeta, row.OmegaN = 0, 0
		}
		resp.Sinks = append(resp.Sinks, row)
	}
	return resp, nil
}
