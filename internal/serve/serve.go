// Package serve is rlckit's HTTP serving layer: JSON endpoints that
// answer the paper's design-time questions over a wire.
//
//	POST /v1/delay      → 50% propagation delay (RLC vs RC-only)
//	POST /v1/screen     → does inductance matter for this net?
//	POST /v1/repeaters  → optimum repeater insertion plan
//	POST /v1/sweep      → seeded Monte Carlo population statistics
//	POST /v1/tree       → per-sink delay and skew of a multi-sink tree
//
// Three serving mechanisms sit between the HTTP handlers and the
// analysis facade:
//
//   - A sharded LRU cache (internal/cache) keyed by the canonical
//     values of (Line, Drive, config) stores fully rendered response
//     bodies, so a repeated question skips both compute and JSON
//     encoding. The /v1/delay hot path is two orders of magnitude
//     faster than a cold exact-engine analysis (BenchmarkServeDelayHot
//     vs BenchmarkServeDelayCold). Every stored body carries a
//     checksum, verified on each hit: a corrupted entry is counted
//     (Stats.CachePoisoned) and recomputed, never served.
//   - A micro-batcher (batch.go) coalesces concurrent single-net
//     requests onto the shared internal/pool worker pool, bounding
//     compute parallelism at the configured worker count instead of
//     goroutine-per-request.
//   - An in-flight admission limit sheds excess load with 429 before
//     any work is queued. The Retry-After hint on 429s and 503s is
//     adaptive: batcher queue depth times the observed mean batch
//     latency, not a constant.
//
// Robustness: every request runs under a context — the client's
// (r.Context(), so a disconnected client cancels its own compute),
// capped by Config.RequestTimeout, and linked to the server lifetime
// (Close cancels everything in flight). The engines check that context
// at amortized checkpoints and return typed sentinels that map to 503
// with machine-readable metadata ("reason":"canceled"/"deadline").
// Requests whose deadline cannot fit the estimator they asked for are
// gracefully degraded to a cheaper estimator instead (degrade.go).
//
// Responses are pure functions of the request body (sweeps are seeded),
// so they are byte-identical across worker counts, cache states and
// batch compositions — the determinism tests enforce this. Degraded
// responses are flagged and never cached.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rlckit"
	"rlckit/internal/cache"
	"rlckit/internal/cancel"
	"rlckit/internal/faultinject"
	"rlckit/internal/store"
)

// Config tunes a Server. The zero value serves with defaults.
type Config struct {
	// Workers bounds the compute pool for batched single-net requests
	// and server-side sweeps; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries bounds the response cache; 0 means DefaultCacheEntries,
	// negative disables caching.
	CacheEntries int
	// MaxInFlight bounds concurrently admitted requests; excess get 429.
	// 0 means DefaultMaxInFlight, negative means unlimited.
	MaxInFlight int
	// MaxBatch bounds one coalesced batch (default 64).
	MaxBatch int
	// BatchWindow holds the first request of a batch up to this long to
	// let the batch fill. 0 (the default) drains opportunistically with
	// no added latency.
	BatchWindow time.Duration
	// RequestTimeout caps each request's compute budget; 0 means no
	// server-imposed cap (the client's own context still applies). A
	// request that exceeds it gets 503 with reason "deadline" — unless
	// graceful degradation found a cheaper estimator that fits.
	RequestTimeout time.Duration
	// SessionTTL evicts what-if sessions idle longer than this
	// (default DefaultSessionTTL; negative disables idle eviction).
	SessionTTL time.Duration
	// MaxSessions bounds concurrently open what-if sessions (default
	// DefaultMaxSessions); opening past the bound evicts the
	// least-recently-used session.
	MaxSessions int
	// StoreDir, when non-empty, enables crash-safe persistence
	// (internal/store) rooted at that directory: the response cache and
	// certified reduced-model pencils are snapshotted there periodically
	// and reloaded on the next New — before the caller opens a listener
	// — and every session open/edit/close is journaled so live what-if
	// sessions are rebuilt by replay. Empty disables persistence.
	StoreDir string
	// SnapshotInterval is the period of the background snapshot loop
	// (default DefaultSnapshotInterval; negative disables the loop —
	// a snapshot is still taken on Close). Ignored without StoreDir.
	SnapshotInterval time.Duration
	// JournalSync fsyncs the session journal on every append. Off, the
	// journal still survives a process crash (the page cache persists);
	// only a machine crash can lose the tail. Ignored without StoreDir.
	JournalSync bool
}

// Serving defaults.
const (
	DefaultCacheEntries     = 4096
	DefaultMaxInFlight      = 256
	DefaultSessionTTL       = 5 * time.Minute
	DefaultMaxSessions      = 64
	DefaultSnapshotInterval = 30 * time.Second
)

// Stats is a point-in-time snapshot of the server's counters, exported
// by cmd/rlckitd through expvar.
type Stats struct {
	// Requests counts admitted requests per endpoint.
	Requests map[string]uint64 `json:"requests"`
	// Rejected counts 429 admission rejections; Errors counts non-2xx
	// responses other than 429 and cancellation 503s.
	Rejected uint64 `json:"rejected"`
	Errors   uint64 `json:"errors"`
	// Canceled and Deadline count requests abandoned by their client
	// and requests that ran out of compute budget; both map to 503.
	Canceled uint64 `json:"canceled"`
	Deadline uint64 `json:"deadline"`
	// Degraded counts responses served with a cheaper estimator than
	// requested to meet a deadline (see degrade.go).
	Degraded uint64 `json:"degraded"`
	// CachePoisoned counts cache hits whose body failed its integrity
	// checksum and were recomputed instead of served.
	CachePoisoned uint64 `json:"cache_poisoned"`
	// Batches and Batched count pool dispatches and the tasks they
	// carried; Batched/Batches is the mean coalesced batch size.
	// BatchSkipped counts tasks whose request was canceled before the
	// dispatcher started them.
	Batches      uint64 `json:"batches"`
	Batched      uint64 `json:"batched"`
	BatchSkipped uint64 `json:"batch_skipped"`
	// MORHits and MORFallbacks count method:"reduced" computations
	// answered by a certified reduced-order model vs by the exact
	// engine after a failed certification (cache hits touch neither).
	MORHits      uint64 `json:"mor_hits"`
	MORFallbacks uint64 `json:"mor_fallbacks"`
	// SessionsOpen is the current number of what-if sessions;
	// SessionsOpened counts opens, SessionsEvicted TTL/capacity
	// evictions (explicit DELETEs are not evictions), and SessionEdits
	// individual edits applied across all sessions.
	SessionsOpen    int    `json:"sessions_open"`
	SessionsOpened  uint64 `json:"sessions_opened"`
	SessionsEvicted uint64 `json:"sessions_evicted"`
	SessionEdits    uint64 `json:"session_edits"`
	// WarmHits counts cache hits served from entries recovered off disk
	// (never recomputed this process); StoreRecovered counts records —
	// cache entries, pencils, session journal records — successfully
	// restored at boot; StoreDiscardedCorrupt counts records the store
	// or the serving layer refused to restore (CRC failures, torn
	// frames, stale versions, undecodable keys). A discarded record is
	// recomputed on demand, never served.
	WarmHits              uint64 `json:"warm_hits"`
	StoreRecovered        uint64 `json:"store_recovered"`
	StoreDiscardedCorrupt uint64 `json:"store_discarded_corrupt"`
	// PencilHits and PencilBuilds count reduced-model pencil store
	// lookups that hit vs fresh Arnoldi builds (a hit skips the build
	// entirely; a fingerprint mismatch degrades to a build).
	PencilHits   uint64 `json:"pencil_hits"`
	PencilBuilds uint64 `json:"pencil_builds"`
	// Cache is the response cache's hit/miss/eviction snapshot.
	Cache cache.Stats `json:"cache"`
}

var endpointNames = [...]string{kindDelay: "delay", kindScreen: "screen", kindRepeaters: "repeaters", kindSweep: "sweep", kindTree: "tree", kindSession: "session", kindSessionEdit: "session_edit"}

// cacheEntry is a stored response body plus its integrity checksum,
// computed at store time and re-verified on every hit. warm marks an
// entry recovered from the on-disk store rather than computed by this
// process (the body bytes are identical either way — the warm-start
// tests assert it).
type cacheEntry struct {
	body []byte
	sum  uint64
	warm bool
}

// cacheHashSeed keys the body checksums; per-process is enough (the
// cache never outlives the process).
var cacheHashSeed = maphash.MakeSeed()

// errPanic marks a compute panic converted to an error: a server-side
// fault (500), unlike the request-physics rejections that map to 400.
var errPanic = errors.New("internal error")

// Server owns the serving state: cache, batcher, admission tokens and
// the HTTP mux. Create with New, release with Close.
type Server struct {
	cfg       Config
	cache     *cache.Cache[cacheKey, cacheEntry]
	batch     *batcher
	sem       chan struct{}
	mux       *http.ServeMux
	baseCtx   context.Context
	baseStop  context.CancelFunc
	closeOnce sync.Once

	requests     [len(endpointNames)]atomic.Uint64
	rejected     atomic.Uint64
	errors       atomic.Uint64
	canceled     atomic.Uint64
	deadlines    atomic.Uint64
	degraded     atomic.Uint64
	poisoned     atomic.Uint64
	morHits      atomic.Uint64
	morFallbacks atomic.Uint64

	// Persistence (persist.go). store is nil without Config.StoreDir;
	// pencils is always live (in-memory reduced-model reuse works with
	// or without a disk behind it). persistMu serializes every journal
	// write and the snapshot/compaction cycle; it is never acquired
	// while holding sessMu.
	store          *store.Store
	pencils        *pencilStore
	persistMu      sync.Mutex
	snapStop       chan struct{}
	snapDone       chan struct{}
	warmHits       atomic.Uint64
	storeRecovered atomic.Uint64
	storeDiscarded atomic.Uint64

	// What-if session registry (session.go).
	sessMu       sync.Mutex
	sessions     map[string]*liveSession
	sessSeq      uint64
	sessOpened   atomic.Uint64
	sessEvicted  atomic.Uint64
	sessionEdits atomic.Uint64
}

// New builds a Server from cfg. With Config.StoreDir set it also opens
// the crash-safe store, recovers the previous process's cache entries,
// pencils and live sessions — all before returning, so by the time the
// caller opens a listener every warm answer is already servable — and
// starts the periodic snapshot loop. Recovery never fails the boot:
// corrupt or stale records are counted and dropped (a truly unusable
// store directory is the one error returned).
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg, pencils: newPencilStore()}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	if cfg.CacheEntries >= 0 {
		n := cfg.CacheEntries
		if n == 0 {
			n = DefaultCacheEntries
		}
		s.cache = cache.New[cacheKey, cacheEntry](n)
	}
	inflight := cfg.MaxInFlight
	if inflight == 0 {
		inflight = DefaultMaxInFlight
	}
	if inflight > 0 {
		s.sem = make(chan struct{}, inflight)
	}
	s.batch = newBatcher(cfg.Workers, cfg.MaxBatch, cfg.BatchWindow)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/delay", s.endpoint(kindDelay, s.handleDelay))
	s.mux.HandleFunc("POST /v1/screen", s.endpoint(kindScreen, s.handleScreen))
	s.mux.HandleFunc("POST /v1/repeaters", s.endpoint(kindRepeaters, s.handleRepeaters))
	s.mux.HandleFunc("POST /v1/sweep", s.endpoint(kindSweep, s.handleSweep))
	s.mux.HandleFunc("POST /v1/tree", s.endpoint(kindTree, s.handleTree))
	s.sessions = make(map[string]*liveSession)
	s.mux.HandleFunc("POST /v1/session", s.endpoint(kindSession, s.handleSessionOpen))
	s.mux.HandleFunc("POST /v1/session/{id}/edit", s.endpoint(kindSessionEdit, s.handleSessionEdit))
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.endpoint(kindSession, s.handleSessionDelete))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"version\":%q}\n", rlckit.Version)
	})
	if cfg.StoreDir != "" {
		if err := s.openStore(); err != nil {
			s.batch.close()
			s.baseStop()
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the server's compute: every in-flight request's context
// is canceled (engines return at their next checkpoint, handlers
// answer 503) and the batcher shuts down. Close returns without
// waiting for the HTTP connections themselves — that is the
// http.Server's shutdown to drive. Close is idempotent: a daemon's
// deferred cleanup may race its shutdown path's explicit call.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.baseStop()
		s.batch.close()
		if s.store != nil {
			// Stop the snapshot loop, then take a final snapshot while the
			// sessions are still live so a graceful restart recovers them.
			close(s.snapStop)
			<-s.snapDone
			_ = s.snapshotNow()
		}
		s.closeSessions()
		if s.store != nil {
			_ = s.store.Close()
		}
	})
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:      make(map[string]uint64, len(endpointNames)),
		Rejected:      s.rejected.Load(),
		Errors:        s.errors.Load(),
		Canceled:      s.canceled.Load(),
		Deadline:      s.deadlines.Load(),
		Degraded:      s.degraded.Load(),
		CachePoisoned: s.poisoned.Load(),
		Batches:       s.batch.batches.Load(),
		Batched:       s.batch.batched.Load(),
		BatchSkipped:  s.batch.skipped.Load(),
		MORHits:       s.morHits.Load(),
		MORFallbacks:  s.morFallbacks.Load(),
	}
	st.SessionsOpen = s.sessionCount()
	st.SessionsOpened = s.sessOpened.Load()
	st.SessionsEvicted = s.sessEvicted.Load()
	st.SessionEdits = s.sessionEdits.Load()
	st.WarmHits = s.warmHits.Load()
	st.StoreRecovered = s.storeRecovered.Load()
	st.StoreDiscardedCorrupt = s.storeDiscarded.Load()
	if s.store != nil {
		sst := s.store.Stats()
		st.StoreDiscardedCorrupt += uint64(sst.Corrupt + sst.Stale)
	}
	st.PencilHits = s.pencils.hits.Load()
	st.PencilBuilds = s.pencils.builds.Load()
	for k, name := range endpointNames {
		st.Requests[name] = s.requests[k].Load()
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	return st
}

// retryAfterSecs is the adaptive Retry-After hint: how long until the
// batcher's current queue has likely drained, from the queue depth and
// the observed mean batch latency, clamped to [1, 30] seconds.
func (s *Server) retryAfterSecs() int {
	ew := s.batch.meanBatchNanos()
	if ew <= 0 {
		return 1
	}
	batches := s.batch.queueDepth()/s.batch.maxBatch + 1
	secs := int(math.Ceil(float64(batches) * float64(ew) / 1e9))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// endpoint wraps a handler with admission control and request
// counting.
func (s *Server) endpoint(kind uint8, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.rejected.Add(1)
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
				s.writeError(w, http.StatusTooManyRequests, fmt.Errorf("server at max in-flight requests"))
				return
			}
		}
		s.requests[kind].Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		h(w, r)
	}
}

// computeCtx derives the compute context for a cache miss: the
// client's context capped by RequestTimeout and linked to the server
// lifetime, so a disconnected client, an expired budget or a server
// Close all cancel the same context the engines poll. It is built only
// on the miss path — a cache hit never pays for the context plumbing,
// and the RequestTimeout budget covers compute, not request parsing.
// The release func must be called when the handler is done.
func (s *Server) computeCtx(r *http.Request) (context.Context, func()) {
	ctx := r.Context()
	var stop context.CancelFunc
	if s.cfg.RequestTimeout > 0 {
		ctx, stop = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	} else {
		ctx, stop = context.WithCancel(ctx)
	}
	unlink := context.AfterFunc(s.baseCtx, stop)
	return ctx, func() { unlink(); stop() }
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status != http.StatusTooManyRequests {
		s.errors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(ErrorResponse{Error: err.Error()})
	w.Write(append(body, '\n'))
}

// writeUnavailable writes a 503 with machine-readable metadata: the
// reason ("canceled", "deadline", "shutdown") and the adaptive retry
// hint, in both the header and the body.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error, reason string) {
	retry := s.retryAfterSecs()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	body, _ := json.Marshal(ErrorResponse{Error: err.Error(), Reason: reason, RetryAfterS: retry})
	w.Write(append(body, '\n'))
}

// failCompute maps a compute error to its HTTP response: batcher
// shutdown and cancellation to 503 (with metadata and counters),
// panics and injected faults to 500, everything else — rejections of
// the request's physics — to 400.
func (s *Server) failCompute(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errClosed):
		s.writeUnavailable(w, err, "shutdown")
	case errors.Is(err, errPanic), faultinject.IsFault(err):
		s.writeError(w, http.StatusInternalServerError, err)
	case cancel.Is(err):
		reason := "canceled"
		if errors.Is(err, cancel.ErrDeadline) {
			reason = "deadline"
			s.deadlines.Add(1)
		} else {
			s.canceled.Add(1)
		}
		s.writeUnavailable(w, err, reason)
	default:
		s.writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

// cached looks up key, returning (body, true) on a hit whose body
// passes its integrity checksum. A checksum mismatch — memory
// corruption, or the faultinject cache site in the chaos tests — is
// counted and reported as a miss, so a poisoned entry is recomputed
// and overwritten, never served.
func (s *Server) cached(key cacheKey) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	e, ok := s.cache.Get(key)
	if !ok {
		return nil, false
	}
	if maphash.Bytes(cacheHashSeed, e.body) != e.sum {
		s.poisoned.Add(1)
		return nil, false
	}
	if e.warm {
		s.warmHits.Add(1)
	}
	return e.body, true
}

func (s *Server) cachePut(key cacheKey, body []byte) {
	if s.cache == nil {
		return
	}
	sum := maphash.Bytes(cacheHashSeed, body)
	if faultinject.Active && faultinject.Corrupt(faultinject.SiteCache) {
		// Store a bit-flipped copy against the honest checksum: the next
		// hit must detect and recompute.
		poisoned := append([]byte(nil), body...)
		poisoned[len(poisoned)/2] ^= 0x40
		body = poisoned
	}
	s.cache.Put(key, cacheEntry{body: body, sum: sum})
}

// compute runs fn on the micro-batching pool under ctx, converting
// fn's panics into errPanic so a bad corner of the math never kills
// the daemon.
func (s *Server) compute(ctx context.Context, fn func() error) error {
	var err error
	berr := s.batch.do(ctx, func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: %v", errPanic, r)
			}
		}()
		faultinject.Panic(faultinject.SiteBatch)
		err = fn()
	})
	if berr != nil {
		return berr
	}
	return err
}

// finish is the shared tail of every miss path: marshal the response
// value, cache the body under its canonical key (unless the response
// is degraded — store=false), send it.
func (s *Server) finish(w http.ResponseWriter, key cacheKey, resp any, store bool) {
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	if store {
		s.cachePut(key, body)
	}
	s.writeJSON(w, body, false)
}

// respond handles the single-net miss path: run fn on the batch pool
// under the request context to produce a response value, then finish.
// fn's second return reports whether the response is cacheable (a
// degraded response is not).
func respond[T any](s *Server, w http.ResponseWriter, ctx context.Context, key cacheKey, fn func() (T, bool, error)) {
	var resp T
	store := true
	err := s.compute(ctx, func() error {
		var ferr error
		resp, store, ferr = fn()
		return ferr
	})
	if err != nil {
		s.failCompute(w, err)
		return
	}
	s.finish(w, key, resp, store)
}

func (s *Server) handleDelay(w http.ResponseWriter, r *http.Request) {
	key, err := parseDelayRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ctx, release := s.computeCtx(r)
	defer release()
	ln, drv := key.line, key.drive
	respond(s, w, ctx, key, func() (DelayResponse, bool, error) {
		var resp DelayResponse
		p, err := rlckit.Analyze(ln, drv)
		if err != nil {
			return resp, true, err
		}
		resp.RT, resp.CT, resp.Zeta, resp.OmegaN = p.RT, p.CT, p.Zeta, p.OmegaN
		switch key.method {
		case methodEq9:
			resp.DelayS, err = rlckit.Delay(ln, drv)
			resp.Method = "eq9"
		case methodExact:
			resp.DelayS, err = rlckit.DelaySimulated(ln, drv)
			resp.Method = "exact"
		case methodReduced:
			var info rlckit.MORInfo
			resp.DelayS, info, err = rlckit.DelayReducedCtx(ctx, ln, drv)
			if err == nil {
				resp.Method = "reduced"
				resp.MORQ, resp.MORN, resp.MORErrPct = info.Q, info.N, info.EstErrPct
				s.morHits.Add(1)
			} else if cancel.Is(err) || faultinject.IsFault(err) {
				// A canceled build is not a certification failure: do not
				// burn the remaining budget on the exact engine. Injected
				// faults propagate too (500, retried by the client) so the
				// retry's answer is byte-identical to a fault-free one.
				return resp, true, err
			} else {
				// Exact-fallback contract: certification failure is an
				// engine-selection event, not a request error.
				resp.DelayS, err = rlckit.DelaySimulated(ln, drv)
				resp.Method = "exact"
				resp.MORFallback = true
				s.morFallbacks.Add(1)
			}
		default:
			var eq9 bool
			resp.DelayS, eq9, err = rlckit.DelayAuto(ln, drv)
			resp.Method = "exact"
			if eq9 {
				resp.Method = "eq9"
			}
		}
		if err != nil {
			return resp, true, err
		}
		resp.DelayRCS = rlckit.DelayRCOnly(ln, drv)
		resp.RCErrPct = 100 * (resp.DelayRCS - resp.DelayS) / resp.DelayS
		return resp, true, nil
	})
}

func (s *Server) handleScreen(w http.ResponseWriter, r *http.Request) {
	key, err := parseScreenRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ctx, release := s.computeCtx(r)
	defer release()
	ln, drv, rise := key.line, key.drive, key.rise
	respond(s, w, ctx, key, func() (ScreenResponse, bool, error) {
		res, err := rlckit.NeedsInductance(ln, drv, rise)
		if err != nil {
			return ScreenResponse{}, true, err
		}
		return ScreenResponse{
			NeedsRLC: res.NeedsRLC, InWindow: res.InWindow, Underdamped: res.Underdamped,
			LMinM: res.LMin, LMaxM: res.LMax, Zeta: res.Zeta,
		}, true, nil
	})
}

func (s *Server) handleRepeaters(w http.ResponseWriter, r *http.Request) {
	key, err := parseRepeatersRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ctx, release := s.computeCtx(r)
	defer release()
	ln, buf := key.line, key.buffer
	rc := key.method == 1
	respond(s, w, ctx, key, func() (RepeatersResponse, bool, error) {
		var plan rlckit.RepeaterPlan
		var err error
		model := "rlc"
		if rc {
			plan, err = rlckit.DesignRepeatersRC(ln, buf)
			model = "rc"
		} else {
			plan, err = rlckit.DesignRepeaters(ln, buf)
		}
		if err != nil {
			return RepeatersResponse{}, true, err
		}
		return RepeatersResponse{
			Model: model, H: plan.H, K: plan.K, KInt: plan.KInt, HForKInt: plan.HForKInt,
			TLR: plan.TLR, TotalDelayS: plan.TotalDelay, TotalDelayInt: plan.TotalDelayInt,
			Area: plan.Area, AreaInt: plan.AreaInt, SwitchEnergyJ: plan.SwitchEnergy,
		}, true, nil
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, key, corners, err := parseSweepRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ctx, release := s.computeCtx(r)
	defer release()
	// Deadline-aware degradation: pick the estimator the remaining
	// budget can afford (the requested one when it fits).
	totalSamples := req.Nets * len(corners) * key.samples
	est, reason := degradeSweep(ctx, key.method, totalSamples, s.cfg.Workers)
	// Sweeps parallelize internally on the same bounded pool size; they
	// skip the single-net batcher but still hold an admission token.
	resp, err := s.runSweep(ctx, req, est, corners)
	if err != nil {
		s.failCompute(w, err)
		return
	}
	if reason != "" {
		resp.Degraded = true
		resp.DegradeReason = reason
		s.degraded.Add(1)
	}
	s.finish(w, key, resp, reason == "")
}

func (s *Server) runSweep(ctx context.Context, req SweepRequest, est uint8, corners []rlckit.SweepCorner) (SweepResponse, error) {
	var resp SweepResponse
	node, err := rlckit.Technology(req.Node)
	if err != nil {
		return resp, err
	}
	nets, err := rlckit.RandomNets(req.Seed, node, req.Nets)
	if err != nil {
		return resp, err
	}
	cfg := rlckit.SweepConfig{
		RiseTime: req.RiseS,
		Corners:  corners,
		MC: rlckit.SweepMonteCarlo{
			Samples: req.Samples, Seed: req.Seed,
			RSigma: req.Sigma, LSigma: req.Sigma, CSigma: req.Sigma,
			DriveSigma: req.DriveSigma,
		},
		Workers:   s.cfg.Workers,
		Estimator: sweepEstimator(est),
		Ctx:       ctx,
	}
	if req.Repeaters {
		b := node.Buffer()
		cfg.Buffer = &b
	}
	res, err := rlckit.SweepDelays(nets, cfg)
	if err != nil {
		return resp, err
	}
	resp = SweepResponse{
		Nets:  len(res.NetNames),
		Draws: res.Draws, Samples: len(res.Samples),
		Estimator: estimatorName(est),
		Screen:    screenStatsJSON(res.Screen),
		Delay:     summaryJSON(res.Delay), DelayRC: summaryJSON(res.DelayRC),
		RCErr: summaryJSON(res.RCErr), AbsRCErr: summaryJSON(res.AbsRCErr),
		FracErrOver10: res.FracErrOver10, FracErrOver20: res.FracErrOver20,
	}
	for _, c := range res.Corners {
		resp.Corners = append(resp.Corners, c.Name)
	}
	if res.RepKRatio.N > 0 {
		kr, di := summaryJSON(res.RepKRatio), summaryJSON(res.RepDelayInc)
		resp.RepKRatio, resp.RepDelayInc = &kr, &di
	}
	for _, cs := range res.PerCorner {
		resp.PerCorner = append(resp.PerCorner, SweepCornerJSON{
			Name:   cs.Corner.Name,
			Screen: screenStatsJSON(cs.Screen),
			Delay:  summaryJSON(cs.Delay),
			RCErr:  summaryJSON(cs.RCErr),
		})
	}
	return resp, nil
}

func screenStatsJSON(st rlckit.ScreenStats) ScreenStatsJSON {
	return ScreenStatsJSON{
		Total: st.Total, NeedsRLC: st.NeedsRLC, InWindow: st.InWindow,
		Underdamped: st.Underdamped, FracRLC: st.FractionRLC(),
	}
}
