// Package serve is rlckit's HTTP serving layer: JSON endpoints that
// answer the paper's design-time questions over a wire.
//
//	POST /v1/delay      → 50% propagation delay (RLC vs RC-only)
//	POST /v1/screen     → does inductance matter for this net?
//	POST /v1/repeaters  → optimum repeater insertion plan
//	POST /v1/sweep      → seeded Monte Carlo population statistics
//	POST /v1/tree       → per-sink delay and skew of a multi-sink tree
//
// Three serving mechanisms sit between the HTTP handlers and the
// analysis facade:
//
//   - A sharded LRU cache (internal/cache) keyed by the canonical
//     values of (Line, Drive, config) stores fully rendered response
//     bodies, so a repeated question skips both compute and JSON
//     encoding. The /v1/delay hot path is two orders of magnitude
//     faster than a cold exact-engine analysis (BenchmarkServeDelayHot
//     vs BenchmarkServeDelayCold).
//   - A micro-batcher (batch.go) coalesces concurrent single-net
//     requests onto the shared internal/pool worker pool, bounding
//     compute parallelism at the configured worker count instead of
//     goroutine-per-request.
//   - An in-flight admission limit sheds excess load with 429 before
//     any work is queued.
//
// Responses are pure functions of the request body (sweeps are seeded),
// so they are byte-identical across worker counts, cache states and
// batch compositions — the determinism tests enforce this.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"rlckit"
	"rlckit/internal/cache"
)

// Config tunes a Server. The zero value serves with defaults.
type Config struct {
	// Workers bounds the compute pool for batched single-net requests
	// and server-side sweeps; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries bounds the response cache; 0 means DefaultCacheEntries,
	// negative disables caching.
	CacheEntries int
	// MaxInFlight bounds concurrently admitted requests; excess get 429.
	// 0 means DefaultMaxInFlight, negative means unlimited.
	MaxInFlight int
	// MaxBatch bounds one coalesced batch (default 64).
	MaxBatch int
	// BatchWindow holds the first request of a batch up to this long to
	// let the batch fill. 0 (the default) drains opportunistically with
	// no added latency.
	BatchWindow time.Duration
}

// Serving defaults.
const (
	DefaultCacheEntries = 4096
	DefaultMaxInFlight  = 256
)

// Stats is a point-in-time snapshot of the server's counters, exported
// by cmd/rlckitd through expvar.
type Stats struct {
	// Requests counts admitted requests per endpoint.
	Requests map[string]uint64 `json:"requests"`
	// Rejected counts 429 admission rejections; Errors counts non-2xx
	// responses other than 429.
	Rejected uint64 `json:"rejected"`
	Errors   uint64 `json:"errors"`
	// Batches and Batched count pool dispatches and the tasks they
	// carried; Batched/Batches is the mean coalesced batch size.
	Batches uint64 `json:"batches"`
	Batched uint64 `json:"batched"`
	// MORHits and MORFallbacks count method:"reduced" computations
	// answered by a certified reduced-order model vs by the exact
	// engine after a failed certification (cache hits touch neither).
	MORHits      uint64 `json:"mor_hits"`
	MORFallbacks uint64 `json:"mor_fallbacks"`
	// Cache is the response cache's hit/miss/eviction snapshot.
	Cache cache.Stats `json:"cache"`
}

var endpointNames = [...]string{kindDelay: "delay", kindScreen: "screen", kindRepeaters: "repeaters", kindSweep: "sweep", kindTree: "tree"}

// Server owns the serving state: cache, batcher, admission tokens and
// the HTTP mux. Create with New, release with Close.
type Server struct {
	cfg          Config
	cache        *cache.Cache[cacheKey, []byte]
	batch        *batcher
	sem          chan struct{}
	mux          *http.ServeMux
	requests     [len(endpointNames)]atomic.Uint64
	rejected     atomic.Uint64
	errors       atomic.Uint64
	morHits      atomic.Uint64
	morFallbacks atomic.Uint64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg}
	if cfg.CacheEntries >= 0 {
		n := cfg.CacheEntries
		if n == 0 {
			n = DefaultCacheEntries
		}
		s.cache = cache.New[cacheKey, []byte](n)
	}
	inflight := cfg.MaxInFlight
	if inflight == 0 {
		inflight = DefaultMaxInFlight
	}
	if inflight > 0 {
		s.sem = make(chan struct{}, inflight)
	}
	s.batch = newBatcher(cfg.Workers, cfg.MaxBatch, cfg.BatchWindow)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/delay", s.endpoint(kindDelay, s.handleDelay))
	s.mux.HandleFunc("POST /v1/screen", s.endpoint(kindScreen, s.handleScreen))
	s.mux.HandleFunc("POST /v1/repeaters", s.endpoint(kindRepeaters, s.handleRepeaters))
	s.mux.HandleFunc("POST /v1/sweep", s.endpoint(kindSweep, s.handleSweep))
	s.mux.HandleFunc("POST /v1/tree", s.endpoint(kindTree, s.handleTree))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"version\":%q}\n", rlckit.Version)
	})
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the batcher; in-flight batched requests get 503.
func (s *Server) Close() { s.batch.close() }

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:     make(map[string]uint64, len(endpointNames)),
		Rejected:     s.rejected.Load(),
		Errors:       s.errors.Load(),
		Batches:      s.batch.batches.Load(),
		Batched:      s.batch.batched.Load(),
		MORHits:      s.morHits.Load(),
		MORFallbacks: s.morFallbacks.Load(),
	}
	for k, name := range endpointNames {
		st.Requests[name] = s.requests[k].Load()
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	return st
}

// endpoint wraps a handler with admission control and request counting.
func (s *Server) endpoint(kind uint8, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusTooManyRequests, fmt.Errorf("server at max in-flight requests"))
				return
			}
		}
		s.requests[kind].Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		h(w, r)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status != http.StatusTooManyRequests {
		s.errors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(ErrorResponse{Error: err.Error()})
	w.Write(append(body, '\n'))
}

func (s *Server) writeJSON(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

// cached looks up key, returning (body, true) on a hit.
func (s *Server) cached(key cacheKey) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.Get(key)
}

func (s *Server) store(key cacheKey, body []byte) {
	if s.cache != nil {
		s.cache.Put(key, body)
	}
}

// compute runs fn on the micro-batching pool, converting fn's panics
// into errors so a bad corner of the math never kills the daemon.
func (s *Server) compute(fn func() error) error {
	var err error
	berr := s.batch.do(func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("internal error: %v", r)
			}
		}()
		err = fn()
	})
	if berr != nil {
		return berr
	}
	return err
}

// finish is the shared tail of every miss path: marshal the response
// value, cache the body under its canonical key, send it.
func (s *Server) finish(w http.ResponseWriter, key cacheKey, resp any) {
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	s.store(key, body)
	s.writeJSON(w, body, false)
}

// respond handles the single-net miss path: run fn on the batch pool
// to produce a response value, then finish. Compute errors map to 400
// (they are rejections of the request's physics, not server faults),
// batcher shutdown to 503.
func respond[T any](s *Server, w http.ResponseWriter, key cacheKey, fn func() (T, error)) {
	var resp T
	err := s.compute(func() error {
		var ferr error
		resp, ferr = fn()
		return ferr
	})
	switch {
	case err == errClosed:
		s.writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		s.writeError(w, http.StatusBadRequest, err)
	default:
		s.finish(w, key, resp)
	}
}

func (s *Server) handleDelay(w http.ResponseWriter, r *http.Request) {
	key, err := parseDelayRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ln, drv := key.line, key.drive
	respond(s, w, key, func() (DelayResponse, error) {
		var resp DelayResponse
		p, err := rlckit.Analyze(ln, drv)
		if err != nil {
			return resp, err
		}
		resp.RT, resp.CT, resp.Zeta, resp.OmegaN = p.RT, p.CT, p.Zeta, p.OmegaN
		switch key.method {
		case methodEq9:
			resp.DelayS, err = rlckit.Delay(ln, drv)
			resp.Method = "eq9"
		case methodExact:
			resp.DelayS, err = rlckit.DelaySimulated(ln, drv)
			resp.Method = "exact"
		case methodReduced:
			var info rlckit.MORInfo
			resp.DelayS, info, err = rlckit.DelayReduced(ln, drv)
			if err == nil {
				resp.Method = "reduced"
				resp.MORQ, resp.MORN, resp.MORErrPct = info.Q, info.N, info.EstErrPct
				s.morHits.Add(1)
			} else {
				// Exact-fallback contract: certification failure is an
				// engine-selection event, not a request error.
				resp.DelayS, err = rlckit.DelaySimulated(ln, drv)
				resp.Method = "exact"
				resp.MORFallback = true
				s.morFallbacks.Add(1)
			}
		default:
			var eq9 bool
			resp.DelayS, eq9, err = rlckit.DelayAuto(ln, drv)
			resp.Method = "exact"
			if eq9 {
				resp.Method = "eq9"
			}
		}
		if err != nil {
			return resp, err
		}
		resp.DelayRCS = rlckit.DelayRCOnly(ln, drv)
		resp.RCErrPct = 100 * (resp.DelayRCS - resp.DelayS) / resp.DelayS
		return resp, nil
	})
}

func (s *Server) handleScreen(w http.ResponseWriter, r *http.Request) {
	key, err := parseScreenRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ln, drv, rise := key.line, key.drive, key.rise
	respond(s, w, key, func() (ScreenResponse, error) {
		res, err := rlckit.NeedsInductance(ln, drv, rise)
		if err != nil {
			return ScreenResponse{}, err
		}
		return ScreenResponse{
			NeedsRLC: res.NeedsRLC, InWindow: res.InWindow, Underdamped: res.Underdamped,
			LMinM: res.LMin, LMaxM: res.LMax, Zeta: res.Zeta,
		}, nil
	})
}

func (s *Server) handleRepeaters(w http.ResponseWriter, r *http.Request) {
	key, err := parseRepeatersRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	ln, buf := key.line, key.buffer
	rc := key.method == 1
	respond(s, w, key, func() (RepeatersResponse, error) {
		var plan rlckit.RepeaterPlan
		var err error
		model := "rlc"
		if rc {
			plan, err = rlckit.DesignRepeatersRC(ln, buf)
			model = "rc"
		} else {
			plan, err = rlckit.DesignRepeaters(ln, buf)
		}
		if err != nil {
			return RepeatersResponse{}, err
		}
		return RepeatersResponse{
			Model: model, H: plan.H, K: plan.K, KInt: plan.KInt, HForKInt: plan.HForKInt,
			TLR: plan.TLR, TotalDelayS: plan.TotalDelay, TotalDelayInt: plan.TotalDelayInt,
			Area: plan.Area, AreaInt: plan.AreaInt, SwitchEnergyJ: plan.SwitchEnergy,
		}, nil
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, key, corners, err := parseSweepRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cached(key); ok {
		s.writeJSON(w, body, true)
		return
	}
	// Sweeps parallelize internally on the same bounded pool size; they
	// skip the single-net batcher but still hold an admission token.
	resp, err := s.runSweep(req, corners)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.finish(w, key, resp)
}

func (s *Server) runSweep(req SweepRequest, corners []rlckit.SweepCorner) (SweepResponse, error) {
	var resp SweepResponse
	node, err := rlckit.Technology(req.Node)
	if err != nil {
		return resp, err
	}
	nets, err := rlckit.RandomNets(req.Seed, node, req.Nets)
	if err != nil {
		return resp, err
	}
	cfg := rlckit.SweepConfig{
		RiseTime: req.RiseS,
		Corners:  corners,
		MC: rlckit.SweepMonteCarlo{
			Samples: req.Samples, Seed: req.Seed,
			RSigma: req.Sigma, LSigma: req.Sigma, CSigma: req.Sigma,
			DriveSigma: req.DriveSigma,
		},
		Workers: s.cfg.Workers,
	}
	if req.Repeaters {
		b := node.Buffer()
		cfg.Buffer = &b
	}
	res, err := rlckit.SweepDelays(nets, cfg)
	if err != nil {
		return resp, err
	}
	resp = SweepResponse{
		Nets:  len(res.NetNames),
		Draws: res.Draws, Samples: len(res.Samples),
		Screen: screenStatsJSON(res.Screen),
		Delay:  summaryJSON(res.Delay), DelayRC: summaryJSON(res.DelayRC),
		RCErr: summaryJSON(res.RCErr), AbsRCErr: summaryJSON(res.AbsRCErr),
		FracErrOver10: res.FracErrOver10, FracErrOver20: res.FracErrOver20,
	}
	for _, c := range res.Corners {
		resp.Corners = append(resp.Corners, c.Name)
	}
	if res.RepKRatio.N > 0 {
		kr, di := summaryJSON(res.RepKRatio), summaryJSON(res.RepDelayInc)
		resp.RepKRatio, resp.RepDelayInc = &kr, &di
	}
	for _, cs := range res.PerCorner {
		resp.PerCorner = append(resp.PerCorner, SweepCornerJSON{
			Name:   cs.Corner.Name,
			Screen: screenStatsJSON(cs.Screen),
			Delay:  summaryJSON(cs.Delay),
			RCErr:  summaryJSON(cs.RCErr),
		})
	}
	return resp, nil
}

func screenStatsJSON(st rlckit.ScreenStats) ScreenStatsJSON {
	return ScreenStatsJSON{
		Total: st.Total, NeedsRLC: st.NeedsRLC, InWindow: st.InWindow,
		Underdamped: st.Underdamped, FracRLC: st.FractionRLC(),
	}
}
