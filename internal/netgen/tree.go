package netgen

import (
	"fmt"
	"math"
	"math/rand"

	"rlckit/internal/pool"
	"rlckit/internal/rlctree"
	"rlckit/internal/tech"
)

// TreeNet is one driven multi-sink tree instance — the unit of a tree
// sweep population.
type TreeNet struct {
	Name  string
	Tree  *rlctree.Tree
	Drive rlctree.Drive
}

// TreeKind selects a RandomTree topology family.
type TreeKind int

// Tree topology families.
const (
	// TreeBalanced is a balanced binary tree: every root-to-leaf path
	// has the same depth, with per-branch parameter variation providing
	// the skew.
	TreeBalanced TreeKind = iota
	// TreeUnbalanced attaches each new branch to a uniformly random
	// existing node — routed fanout nets with very different path
	// lengths to each sink.
	TreeUnbalanced
	// TreeClockH is an H-tree clock distribution: recursive H levels
	// with halving segment lengths, 4^levels leaves.
	TreeClockH
)

func (k TreeKind) String() string {
	switch k {
	case TreeBalanced:
		return "balanced"
	case TreeUnbalanced:
		return "unbalanced"
	case TreeClockH:
		return "clock-h"
	default:
		return fmt.Sprintf("TreeKind(%d)", int(k))
	}
}

// ParseTreeKind resolves a topology family name ("balanced",
// "unbalanced", "clock-h").
func ParseTreeKind(s string) (TreeKind, error) {
	switch s {
	case "balanced":
		return TreeBalanced, nil
	case "unbalanced":
		return TreeUnbalanced, nil
	case "clock-h":
		return TreeClockH, nil
	default:
		return 0, fmt.Errorf("netgen: unknown tree kind %q (have balanced, unbalanced, clock-h)", s)
	}
}

// treeWire derives per-meter branch parasitics at a node, with a mild
// random geometry perturbation shared by the whole tree (one net is
// routed on one layer).
func treeWire(rng *rand.Rand, node tech.Node) (rm, lm, cm float64) {
	w := node.GlobalWire
	w.Width *= 2 * lognorm(rng, 0.4) // clock/fanout nets route wide
	w.Thickness *= lognorm(rng, 0.2)
	return w.RPerMeter(), w.LPerMeter(), w.CPerMeter()
}

// addBranch appends one wire segment of the given length under parent.
func addBranch(t *rlctree.Tree, parent int, rm, lm, cm, length float64) (int, error) {
	return t.Add(parent, rm*length, lm*length, cm*length)
}

// RandomTree draws a random multi-sink driven tree of the requested
// topology family with the given number of sinks (minimum 2; clock-H
// rounds up to the next power of 4). Branch lengths are 0.3–1.5 mm
// segments, sink loads 2–20× the node's minimum gate input, and the
// driver is a strong 30–80× buffer. The same rng state reproduces the
// same net.
func RandomTree(rng *rand.Rand, node tech.Node, kind TreeKind, sinks int) (TreeNet, error) {
	if sinks < 2 {
		return TreeNet{}, fmt.Errorf("netgen: tree needs at least 2 sinks, got %d", sinks)
	}
	rm, lm, cm := treeWire(rng, node)
	segLen := func() float64 { return (0.3 + 1.2*rng.Float64()) * 1e-3 }
	sinkLoad := func() float64 { return (2 + 18*rng.Float64()) * node.C0 }
	t, err := rlctree.New(0)
	if err != nil {
		return TreeNet{}, err
	}
	var leaves []int
	switch kind {
	case TreeBalanced:
		// Levels so that 2^depth >= sinks; the full 2^depth tree is
		// built and the first `sinks` leaves become receivers — surplus
		// leaves stay as unloaded capacitive stubs (spare taps), which
		// keeps every marked sink at identical depth.
		depth := 1
		for 1<<depth < sinks {
			depth++
		}
		frontier := []int{0}
		for lvl := 0; lvl < depth; lvl++ {
			var next []int
			for _, p := range frontier {
				for b := 0; b < 2; b++ {
					id, err := addBranch(t, p, rm, lm, cm, segLen())
					if err != nil {
						return TreeNet{}, err
					}
					next = append(next, id)
				}
			}
			frontier = next
		}
		leaves = frontier[:sinks]
	case TreeUnbalanced:
		// Grow sink count leaves by random attachment: each step picks a
		// uniformly random non-sink node and extends a 1–3 segment stem
		// ending in a leaf. Routes never continue past a sink — a
		// receiver pin terminates its branch, which is also what keeps
		// every sink moment-analyzable (a sink shielded from a large
		// downstream subtree has a response no low-order moment model
		// can see; see rlctree's accuracy-domain notes).
		attach := []int{0}
		for len(leaves) < sinks {
			p := attach[rng.Intn(len(attach))]
			hops := 1 + rng.Intn(3)
			for h := 0; h < hops; h++ {
				id, err := addBranch(t, p, rm, lm, cm, segLen())
				if err != nil {
					return TreeNet{}, err
				}
				p = id
				if h < hops-1 {
					attach = append(attach, id)
				}
			}
			leaves = append(leaves, p)
		}
	case TreeClockH:
		levels := 1
		for 1<<(2*levels) < sinks {
			levels++
		}
		// Each H level: a trunk into the level, then four half-length
		// arms; segment lengths halve per level (an H-tree's geometric
		// taper), with small per-branch variation.
		base := segLen() * math.Pow(2, float64(levels-1))
		frontier := []int{0}
		for lvl := 0; lvl < levels; lvl++ {
			length := base / math.Pow(2, float64(lvl))
			var next []int
			for _, p := range frontier {
				trunk, err := addBranch(t, p, rm, lm, cm, length*lognorm(rng, 0.05))
				if err != nil {
					return TreeNet{}, err
				}
				for b := 0; b < 4; b++ {
					id, err := addBranch(t, trunk, rm, lm, cm, length/2*lognorm(rng, 0.05))
					if err != nil {
						return TreeNet{}, err
					}
					next = append(next, id)
				}
			}
			frontier = next
		}
		leaves = frontier
	default:
		return TreeNet{}, fmt.Errorf("netgen: unknown tree kind %v", kind)
	}
	for _, leaf := range leaves {
		if err := t.MarkSink(leaf, sinkLoad()); err != nil {
			return TreeNet{}, err
		}
	}
	h := 30 + 50*rng.Float64()
	drv := rlctree.Drive{Rtr: node.R0 / h, V: node.Vdd}
	return TreeNet{
		Name:  fmt.Sprintf("tree-%s-%s-%dsinks", kind, node.Name, len(leaves)),
		Tree:  t,
		Drive: drv,
	}, nil
}

// RandomTreeBatch draws n reproducible random trees. Like RandomBatch,
// tree i is a pure function of (seed, i): generation runs in parallel
// on the shared worker pool and is byte-identical at every worker
// count.
func RandomTreeBatch(seed int64, node tech.Node, kind TreeKind, sinks, n int) ([]TreeNet, error) {
	out := make([]TreeNet, n)
	err := pool.Run(0, n, pool.NewSeededRand, func(sc *pool.SeededRand, i int) error {
		sc.Seed(pool.Seed(seed, int64(i)))
		tn, err := RandomTree(sc.Rand, node, kind, sinks)
		if err != nil {
			return err
		}
		tn.Name = fmt.Sprintf("%s-%d", tn.Name, i)
		out[i] = tn
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
