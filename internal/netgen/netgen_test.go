package netgen

import (
	"math/rand"
	"testing"

	"rlckit/internal/core"
	"rlckit/internal/tech"
)

func TestRandomBatchReproducible(t *testing.T) {
	a, err := RandomBatch(42, tech.Default(), 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomBatch(42, tech.Default(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Line != b[i].Line || a[i].Drive != b[i].Drive {
			t.Fatalf("net %d differs between identical seeds", i)
		}
	}
	c, err := RandomBatch(43, tech.Default(), 10)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Line == c[i].Line {
			same++
		}
	}
	if same == 10 {
		t.Error("different seeds produced identical batches")
	}
}

func TestRandomNetsAreAnalyzable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n, err := RandomNet(rng, tech.Default())
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Line.Validate(); err != nil {
			t.Fatalf("net %d line: %v", i, err)
		}
		p, err := core.Analyze(n.Line, n.Drive)
		if err != nil {
			t.Fatalf("net %d analyze: %v", i, err)
		}
		if p.Zeta <= 0 || p.OmegaN <= 0 {
			t.Fatalf("net %d: ζ=%g ωn=%g", i, p.Zeta, p.OmegaN)
		}
	}
}

func TestScenarios(t *testing.T) {
	node := tech.Default()
	cs, err := ClockSpine(node, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := GlobalBus(node, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The clock spine is wider, hence less resistive per meter.
	if cs.Line.R >= gb.Line.R {
		t.Errorf("clock spine R/m %g not below bus %g", cs.Line.R, gb.Line.R)
	}
	// The clock spine must be the more inductance-significant net:
	// smaller ζ for the same length.
	pc, err := core.Analyze(cs.Line, cs.Drive)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.Analyze(gb.Line, gb.Drive)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Zeta >= pb.Zeta {
		t.Errorf("clock ζ=%g not below bus ζ=%g", pc.Zeta, pb.Zeta)
	}
	if cs.Name == "" || gb.Name == "" {
		t.Error("unnamed scenario nets")
	}
}

func TestTable1Cell(t *testing.T) {
	n := Table1Cell(1000, 500, 0.5, 1e-7)
	rt, lt, ct := n.Line.Totals()
	if rt != 1000 || lt != 1e-7 || ct != 1e-12 {
		t.Errorf("totals %g %g %g", rt, lt, ct)
	}
	if n.Drive.Rtr != 500 || n.Drive.CL != 0.5e-12 {
		t.Errorf("drive %+v", n.Drive)
	}
}

func TestLengthSweep(t *testing.T) {
	w := tech.Default().GlobalWire
	nets, err := LengthSweep(w, tech.Default().Gate(20, 10), 1e-3, 2e-2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 7 {
		t.Fatalf("%d nets", len(nets))
	}
	for i := 1; i < len(nets); i++ {
		if nets[i].Line.Length <= nets[i-1].Line.Length {
			t.Error("lengths not increasing")
		}
	}
	if nets[0].Line.Length != 1e-3 {
		t.Errorf("first length %g", nets[0].Line.Length)
	}
	last := nets[len(nets)-1].Line.Length
	if last < 1.99e-2 || last > 2.01e-2 {
		t.Errorf("last length %g", last)
	}
	if _, err := LengthSweep(w, tech.Default().Gate(20, 10), 0, 1, 5); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := LengthSweep(w, tech.Default().Gate(20, 10), 1e-3, 2e-2, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestTLRSweep(t *testing.T) {
	nets := TLRSweep(1e-12, []float64{0, 1, 5})
	if len(nets) != 3 {
		t.Fatalf("%d nets", len(nets))
	}
	// Check the middle net's T_{L/R} reconstruction.
	rt, lt, _ := nets[1].Line.Totals()
	if got := (lt / rt) / 1e-12; got < 0.99 || got > 1.01 {
		t.Errorf("TLR = %g, want 1", got)
	}
	// T=0 entry must still be a valid line.
	if err := nets[0].Line.Validate(); err != nil {
		t.Error(err)
	}
}
