// Package netgen generates interconnect workloads for benchmarks and
// stress tests: random driven nets with realistic parameter ranges,
// parameter sweeps pinned to the paper's experiments, and named scenario
// nets (clock spine, global bus) motivated by the paper's introduction
// ("wide wires are frequently encountered in clock distribution
// networks and in upper metal layers").
package netgen

import (
	"fmt"
	"math"
	"math/rand"

	"rlckit/internal/pool"
	"rlckit/internal/tech"
	"rlckit/internal/tline"
)

// Net is one driven interconnect instance.
type Net struct {
	Name  string
	Line  tline.Line
	Drive tline.Drive
}

// RandomNet draws a random physically plausible driven net: wire
// geometry scaled around the node's global wire, length 1–20 mm, driver
// 5–50× minimum, load 1–20× minimum. The same seed reproduces the same
// net.
func RandomNet(rng *rand.Rand, node tech.Node) (Net, error) {
	w := node.GlobalWire
	w.Width *= lognorm(rng, 0.6)
	w.Thickness *= lognorm(rng, 0.3)
	w.Height *= lognorm(rng, 0.3)
	length := (1 + 19*rng.Float64()) * 1e-3
	ln, err := w.Line(length)
	if err != nil {
		return Net{}, err
	}
	h := 5 + 45*rng.Float64()
	hl := 1 + 19*rng.Float64()
	return Net{
		Name:  fmt.Sprintf("rand-%s-%.1fmm", node.Name, length*1e3),
		Line:  ln,
		Drive: node.Gate(h, hl),
	}, nil
}

// lognorm returns a log-normal factor with the given σ of log, clamped
// to [1/4, 4] to keep geometries manufacturable.
func lognorm(rng *rand.Rand, sigma float64) float64 {
	f := math.Exp(rng.NormFloat64() * sigma)
	if f < 0.25 {
		f = 0.25
	}
	if f > 4 {
		f = 4
	}
	return f
}

// RandomBatch draws n reproducible random nets. Generation runs in
// parallel on the shared worker pool: net i is drawn from its own RNG
// seeded by pool.Seed(seed, i), so the batch is byte-identical for the
// same seed at every worker count and GOMAXPROCS setting (and net i of
// a batch of 10k equals net i of a batch of 100).
func RandomBatch(seed int64, node tech.Node, n int) ([]Net, error) {
	out := make([]Net, n)
	err := pool.Run(0, n, pool.NewSeededRand, func(sc *pool.SeededRand, i int) error {
		sc.Seed(pool.Seed(seed, int64(i)))
		net, err := RandomNet(sc.Rand, node)
		if err != nil {
			return err
		}
		out[i] = net
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ClockSpine returns a wide, low-resistance clock distribution wire —
// the paper's canonical significant-inductance net.
func ClockSpine(node tech.Node, length float64) (Net, error) {
	w := node.GlobalWire
	w.Width *= 6
	w.Thickness *= 1.5
	ln, err := w.Line(length)
	if err != nil {
		return Net{}, err
	}
	return Net{
		Name:  fmt.Sprintf("clock-spine-%s-%.0fmm", node.Name, length*1e3),
		Line:  ln,
		Drive: node.Gate(60, 30),
	}, nil
}

// GlobalBus returns a minimum-pitch upper-layer bus bit of the given
// length — resistive, RC-leaning.
func GlobalBus(node tech.Node, length float64) (Net, error) {
	ln, err := node.GlobalWire.Line(length)
	if err != nil {
		return Net{}, err
	}
	return Net{
		Name:  fmt.Sprintf("global-bus-%s-%.0fmm", node.Name, length*1e3),
		Line:  ln,
		Drive: node.Gate(20, 10),
	}, nil
}

// Table1Cell reproduces the paper's Table 1 parameterization: Ct = 1 pF
// over 10 mm, CL = cT pF, and (Rt, Rtr) chosen by rt/rtr directly.
func Table1Cell(rt, rtr, cT, lt float64) Net {
	return Net{
		Name:  fmt.Sprintf("table1-rt%.0f-ct%.1f-lt%.0e", rt, cT, lt),
		Line:  tline.FromTotals(rt, lt, 1e-12, 0.01),
		Drive: tline.Drive{Rtr: rtr, CL: cT * 1e-12},
	}
}

// LengthSweep returns copies of the wire at geometrically spaced lengths
// in [lo, hi].
func LengthSweep(w tech.Wire, d tline.Drive, lo, hi float64, n int) ([]Net, error) {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("netgen: bad sweep (lo=%g hi=%g n=%d)", lo, hi, n)
	}
	out := make([]Net, 0, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	l := lo
	for i := 0; i < n; i++ {
		ln, err := w.Line(l)
		if err != nil {
			return nil, err
		}
		out = append(out, Net{Name: fmt.Sprintf("len-%.2fmm", l*1e3), Line: ln, Drive: d})
		l *= ratio
	}
	return out, nil
}

// TLRSweep returns nets with fixed Rt = 1 kΩ, Ct = 1 pF over 10 mm and
// Lt chosen so T_{L/R} takes each requested value against R0·C0.
func TLRSweep(r0c0 float64, tlrs []float64) []Net {
	out := make([]Net, 0, len(tlrs))
	for _, t := range tlrs {
		rt := 1000.0
		lt := t * r0c0 * rt
		if lt <= 0 {
			lt = 1e-15
		}
		out = append(out, Net{
			Name: fmt.Sprintf("tlr-%.2g", t),
			Line: tline.FromTotals(rt, lt, 1e-12, 0.01),
		})
	}
	return out
}
