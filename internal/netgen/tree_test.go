package netgen

import (
	"math/rand"
	"reflect"
	"testing"

	"rlckit/internal/tech"
)

func TestRandomTreeKinds(t *testing.T) {
	node := tech.Default()
	for _, kind := range []TreeKind{TreeBalanced, TreeUnbalanced, TreeClockH} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			tn, err := RandomTree(rng, node, kind, 6)
			if err != nil {
				t.Fatal(err)
			}
			sinks := tn.Tree.Sinks()
			switch kind {
			case TreeClockH:
				// Rounds up to the next power of 4 leaves.
				if len(sinks) != 16 {
					t.Errorf("clock-h with 6 requested sinks built %d", len(sinks))
				}
			case TreeBalanced, TreeUnbalanced:
				if len(sinks) != 6 {
					t.Errorf("%v built %d sinks, want 6", kind, len(sinks))
				}
			}
			if tn.Drive.Rtr <= 0 || tn.Drive.V <= 0 {
				t.Errorf("implausible drive %+v", tn.Drive)
			}
			// Sinks terminate their branches: no sink may have children
			// (a receiver pin ends the route).
			kids := make(map[int]int)
			for i := 1; i < tn.Tree.Len(); i++ {
				p, err := tn.Tree.Parent(i)
				if err != nil {
					t.Fatal(err)
				}
				kids[p]++
			}
			for _, s := range sinks {
				if kids[s] != 0 {
					t.Errorf("%v: sink %d has %d children", kind, s, kids[s])
				}
			}
			// Every sink carries a load.
			for _, s := range sinks {
				load, err := tn.Tree.SinkLoad(s)
				if err != nil {
					t.Fatal(err)
				}
				if load <= 0 {
					t.Errorf("sink %d has no load", s)
				}
			}
		})
	}
}

func TestRandomTreeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomTree(rng, tech.Default(), TreeBalanced, 1); err == nil {
		t.Error("1 sink must error")
	}
	if _, err := RandomTree(rng, tech.Default(), TreeKind(99), 4); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := ParseTreeKind("star"); err == nil {
		t.Error("unknown kind name must error")
	}
	for _, name := range []string{"balanced", "unbalanced", "clock-h"} {
		k, err := ParseTreeKind(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Errorf("round trip %q -> %v", name, k)
		}
	}
}

// TestRandomTreeBatchDeterministic: tree i is a pure function of
// (seed, i), independent of batch size and worker scheduling.
func TestRandomTreeBatchDeterministic(t *testing.T) {
	node := tech.Default()
	big, err := RandomTreeBatch(9, node, TreeUnbalanced, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	small, err := RandomTreeBatch(9, node, TreeUnbalanced, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		if !reflect.DeepEqual(big[i], small[i]) {
			t.Fatalf("tree %d differs between batch sizes", i)
		}
	}
	again, err := RandomTreeBatch(9, node, TreeUnbalanced, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(big, again) {
		t.Fatal("batch not reproducible for the same seed")
	}
}
