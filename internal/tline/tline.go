// Package tline models distributed RLC interconnect lines: the physical
// object at the center of the paper.
//
// A Line is described by per-unit-length resistance, inductance and
// capacitance plus a length (Fig. 1 of the paper). The package offers
// three views of the same line, used to cross-validate one another:
//
//  1. Lumped N-segment ladder circuits (for the internal/mna transient
//     simulator), in Γ, T, or Π segment styles.
//  2. The exact transmission-line transfer function Vout/Vin(s) of
//     Eq. (1)-(2), evaluated at complex frequencies for numerical
//     Laplace inversion (internal/laplace).
//  3. Rational (polynomial) transfer functions of the lumped ladders via
//     two-port ABCD polynomial composition, solved exactly by pole/
//     residue decomposition (internal/ratfun).
package tline

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"rlckit/internal/circuit"
	"rlckit/internal/numeric"
)

// Line is a uniform distributed RLC interconnect.
type Line struct {
	// R, L, C are per-unit-length resistance (Ω/m), inductance (H/m)
	// and capacitance (F/m).
	R, L, C float64
	// Length is the line length in meters.
	Length float64
}

// Validate checks the line parameters are physical. R may be zero (the
// paper's lossless LC limit) but L and C must be positive, as must Length.
func (ln Line) Validate() error {
	if ln.R < 0 || math.IsNaN(ln.R) || math.IsInf(ln.R, 0) {
		return fmt.Errorf("tline: R must be finite and non-negative, got %g", ln.R)
	}
	if ln.L <= 0 || math.IsNaN(ln.L) || math.IsInf(ln.L, 0) {
		return fmt.Errorf("tline: L must be positive, got %g", ln.L)
	}
	if ln.C <= 0 || math.IsNaN(ln.C) || math.IsInf(ln.C, 0) {
		return fmt.Errorf("tline: C must be positive, got %g", ln.C)
	}
	if ln.Length <= 0 || math.IsNaN(ln.Length) || math.IsInf(ln.Length, 0) {
		return fmt.Errorf("tline: Length must be positive, got %g", ln.Length)
	}
	return nil
}

// Totals returns the total line impedances Rt = R·l, Lt = L·l, Ct = C·l.
func (ln Line) Totals() (rt, lt, ct float64) {
	return ln.R * ln.Length, ln.L * ln.Length, ln.C * ln.Length
}

// FromTotals builds a Line of the given length from total impedances.
func FromTotals(rt, lt, ct, length float64) Line {
	return Line{R: rt / length, L: lt / length, C: ct / length, Length: length}
}

// Z0Lossless returns the lossless characteristic impedance sqrt(L/C).
func (ln Line) Z0Lossless() float64 { return math.Sqrt(ln.L / ln.C) }

// TimeOfFlight returns l·sqrt(LC), the paper's R→0 propagation delay.
func (ln Line) TimeOfFlight() float64 {
	return ln.Length * math.Sqrt(ln.L*ln.C)
}

// Drive is the paper's gate model around the line (Fig. 1): a step source
// behind resistance Rtr driving the line, loaded by capacitance CL.
type Drive struct {
	// Rtr is the driver's equivalent output resistance in ohms.
	Rtr float64
	// CL is the far-end load capacitance in farads.
	CL float64
	// V is the step amplitude in volts (defaults to 1 if zero).
	V float64
}

// Validate checks the drive. Rtr and CL may be zero (the paper's
// "unloaded line" special case) but not negative.
func (d Drive) Validate() error {
	if d.Rtr < 0 || math.IsNaN(d.Rtr) || math.IsInf(d.Rtr, 0) {
		return fmt.Errorf("tline: Rtr must be finite and non-negative, got %g", d.Rtr)
	}
	if d.CL < 0 || math.IsNaN(d.CL) || math.IsInf(d.CL, 0) {
		return fmt.Errorf("tline: CL must be finite and non-negative, got %g", d.CL)
	}
	return nil
}

// Amplitude returns the effective step amplitude (1 V default).
func (d Drive) Amplitude() float64 {
	if d.V == 0 {
		return 1
	}
	return d.V
}

// SegmentStyle selects the lumped approximation of one line segment.
type SegmentStyle int

// Segment styles.
const (
	// Gamma: series R,L then shunt C (the textbook ladder).
	Gamma SegmentStyle = iota
	// Tee: half the series impedance, shunt C, half the series impedance.
	Tee
	// Pi: half the shunt C, full series impedance, half the shunt C.
	Pi
)

func (s SegmentStyle) String() string {
	switch s {
	case Gamma:
		return "gamma"
	case Tee:
		return "tee"
	case Pi:
		return "pi"
	default:
		return fmt.Sprintf("SegmentStyle(%d)", int(s))
	}
}

// Ladder is a lumped approximation of a driven line, ready to simulate.
type Ladder struct {
	Ckt *circuit.Circuit
	// In is the node at the driver output (near end of the line);
	// Out is the far end where CL sits.
	In, Out int
	// Segments and Style record how the ladder was built.
	Segments int
	Style    SegmentStyle
}

// BuildLadder constructs an N-segment lumped ladder for the driven line.
// The source is an ideal step of d.Amplitude() volts delayed by delay
// (use a positive delay so the simulation starts from rest; the response
// is shifted by exactly delay).
//
// A zero d.Rtr is replaced by a negligible series resistance (the MNA
// formulation needs the source separated from the first reactive node;
// 1e-6 Ω is ~9 orders below any line resistance of interest). A zero
// d.CL simply omits the load capacitor.
func BuildLadder(ln Line, d Drive, n int, style SegmentStyle, delay float64) (*Ladder, error) {
	if err := ln.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("tline: ladder needs n >= 1 segments, got %d", n)
	}
	if delay < 0 {
		return nil, fmt.Errorf("tline: negative source delay %g", delay)
	}
	rt, lt, ct := ln.Totals()
	rSeg, lSeg, cSeg := rt/float64(n), lt/float64(n), ct/float64(n)

	ckt := circuit.New()
	src := ckt.Node()
	if err := ckt.AddV("vin", src, circuit.Ground,
		circuit.Step{Amplitude: d.Amplitude(), Delay: delay}); err != nil {
		return nil, err
	}
	in := ckt.Node()
	rtr := d.Rtr
	if rtr == 0 {
		rtr = 1e-6
	}
	if err := ckt.AddR("rtr", src, in, rtr); err != nil {
		return nil, err
	}

	addSeries := func(name string, from int, r, l float64) (int, error) {
		// r may be zero (lossless line): skip the resistor node.
		cur := from
		if r > 0 {
			mid := ckt.Node()
			if err := ckt.AddR(name+".r", cur, mid, r); err != nil {
				return 0, err
			}
			cur = mid
		}
		next := ckt.Node()
		if err := ckt.AddL(name+".l", cur, next, l); err != nil {
			return 0, err
		}
		return next, nil
	}
	addShunt := func(name string, at int, c float64) error {
		if c <= 0 {
			return nil
		}
		return ckt.AddC(name+".c", at, circuit.Ground, c)
	}

	node := in
	var err error
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("seg%d", i)
		switch style {
		case Gamma:
			node, err = addSeries(name, node, rSeg, lSeg)
			if err != nil {
				return nil, err
			}
			if err = addShunt(name, node, cSeg); err != nil {
				return nil, err
			}
		case Tee:
			node, err = addSeries(name+".a", node, rSeg/2, lSeg/2)
			if err != nil {
				return nil, err
			}
			if err = addShunt(name, node, cSeg); err != nil {
				return nil, err
			}
			node, err = addSeries(name+".b", node, rSeg/2, lSeg/2)
			if err != nil {
				return nil, err
			}
		case Pi:
			if err = addShunt(name+".a", node, cSeg/2); err != nil {
				return nil, err
			}
			node, err = addSeries(name, node, rSeg, lSeg)
			if err != nil {
				return nil, err
			}
			if err = addShunt(name+".b", node, cSeg/2); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("tline: unknown segment style %v", style)
		}
	}
	if d.CL > 0 {
		if err := ckt.AddC("cload", node, circuit.Ground, d.CL); err != nil {
			return nil, err
		}
	}
	return &Ladder{Ckt: ckt, In: in, Out: node, Segments: n, Style: style}, nil
}

// ExactTF returns the exact transmission-line transfer function
// Vout(s)/Vs(s) of the driven line (Eq. (1) in ABCD form):
//
//	H(s) = 1 / (cosh(γl) + Z0·sinh(γl)·YL + Rtr·(sinh(γl)/Z0 + cosh(γl)·YL))
//
// with γl = sqrt((Rt + s·Lt)·s·Ct), Z0 = sqrt((Rt + s·Lt)/(s·Ct)) and
// YL = s·CL. The combination is even in γ, so the sqrt branch choice is
// immaterial and H is single-valued.
func ExactTF(ln Line, d Drive) (func(s complex128) complex128, error) {
	if err := ln.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	rt, lt, ct := ln.Totals()
	rtr, cl := d.Rtr, d.CL
	return func(s complex128) complex128 {
		zs := complex(rt, 0) + s*complex(lt, 0) // total series impedance
		ys := s * complex(ct, 0)                // total shunt admittance
		gl := cmplx.Sqrt(zs * ys)               // γ·l
		// Z0·sinh and sinh/Z0 computed stably via sinh(γl)/γl which is
		// analytic (even) in γl:
		//   Z0·sinh(γl)   = zs · sinhc(γl)
		//   sinh(γl)/Z0   = ys · sinhc(γl)
		// where sinhc(x) = sinh(x)/x.
		sc := sinhc(gl)
		ch := cmplx.Cosh(gl)
		yl := s * complex(cl, 0)
		den := ch + zs*sc*yl + complex(rtr, 0)*(ys*sc+ch*yl)
		return 1 / den
	}, nil
}

// sinhc returns sinh(x)/x, using the series for small |x|.
func sinhc(x complex128) complex128 {
	if cmplx.Abs(x) < 1e-4 {
		x2 := x * x
		return 1 + x2/6 + x2*x2/120
	}
	return cmplx.Sinh(x) / x
}

// LadderTF returns the rational transfer function num(s′)/den(s′) of the
// N-segment ladder (same topology BuildLadder simulates) in the
// normalized frequency variable s′ = s·t0. Pass t0 = 1/ωn (Eq. (3)) to
// keep coefficients O(1); t0 must be positive.
//
// For these ladders the numerator is the constant 1 and den(0) = 1
// (unit DC gain), so the result is fully described by den, but both are
// returned for a conventional rational-function interface.
func LadderTF(ln Line, d Drive, n int, style SegmentStyle, t0 float64) (num, den numeric.Poly, err error) {
	if err := ln.Validate(); err != nil {
		return numeric.Poly{}, numeric.Poly{}, err
	}
	if err := d.Validate(); err != nil {
		return numeric.Poly{}, numeric.Poly{}, err
	}
	if n < 1 {
		return numeric.Poly{}, numeric.Poly{}, fmt.Errorf("tline: LadderTF needs n >= 1, got %d", n)
	}
	if t0 <= 0 || math.IsNaN(t0) || math.IsInf(t0, 0) {
		return numeric.Poly{}, numeric.Poly{}, errors.New("tline: LadderTF needs positive normalization time t0")
	}
	rt, lt, ct := ln.Totals()
	nf := float64(n)
	// Per-segment impedances in normalized s′: s = s′/t0.
	zSeg := numeric.NewPoly(rt/nf, lt/nf/t0) // R + sL
	ySeg := numeric.NewPoly(0, ct/nf/t0)     // sC
	yLoad := numeric.NewPoly(0, d.CL/t0)     // s·CL
	zSrc := numeric.NewPoly(d.Rtr)           // Rtr

	// ABCD as polynomial 2×2: start with identity, multiply per element.
	a := numeric.NewPoly(1)
	b := numeric.NewPoly(0)
	c := numeric.NewPoly(0)
	dd := numeric.NewPoly(1)
	mulSeries := func(z numeric.Poly) {
		// [A B; C D] · [1 z; 0 1]
		b = a.Mul(z).Add(b)
		dd = c.Mul(z).Add(dd)
	}
	mulShunt := func(y numeric.Poly) {
		// [A B; C D] · [1 0; y 1]
		a = a.Add(b.Mul(y))
		c = c.Add(dd.Mul(y))
	}
	mulSeries(zSrc)
	half := func(p numeric.Poly) numeric.Poly { return p.Scale(0.5) }
	for i := 0; i < n; i++ {
		switch style {
		case Gamma:
			mulSeries(zSeg)
			mulShunt(ySeg)
		case Tee:
			mulSeries(half(zSeg))
			mulShunt(ySeg)
			mulSeries(half(zSeg))
		case Pi:
			mulShunt(half(ySeg))
			mulSeries(zSeg)
			mulShunt(half(ySeg))
		default:
			return numeric.Poly{}, numeric.Poly{}, fmt.Errorf("tline: unknown segment style %v", style)
		}
	}
	// Vs = A·Vout + B·Iout with Iout = YL·Vout → H = 1/(A + B·YL).
	den = a.Add(b.Mul(yLoad))
	return numeric.NewPoly(1), den, nil
}

// Attenuation returns the DC attenuation factor of the matched line,
// e^{−(Rt/2)·sqrt(Ct/Lt)} — the paper's measure of how lossy the line is
// relative to its inductive behavior (small exponent = LC-like).
func (ln Line) Attenuation() float64 {
	rt, lt, ct := ln.Totals()
	return math.Exp(-rt / 2 * math.Sqrt(ct/lt))
}

// CoupledPair is two parallel driven lines with capacitive and
// inductive coupling — the aggressor/victim configuration used for
// crosstalk analysis, the natural next question once on-chip inductance
// matters (the follow-on literature to this paper).
type CoupledPair struct {
	Ckt *circuit.Circuit
	// AggressorIn/Out and VictimIn/Out are the near/far-end nodes.
	AggressorIn, AggressorOut int
	VictimIn, VictimOut       int
	Segments                  int
}

// BuildCoupledLadders constructs two identical N-segment Gamma ladders
// of the line, with coupling capacitance cc (farads per meter) between
// corresponding nodes and magnetic coupling coefficient kL between
// corresponding segment inductors. The aggressor is driven by a step
// (delayed by delay); the victim's driver holds its near end quiet
// through the same Rtr. Both far ends carry CL.
func BuildCoupledLadders(ln Line, d Drive, n int, cc, kL, delay float64) (*CoupledPair, error) {
	if err := ln.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("tline: coupled ladders need n >= 1, got %d", n)
	}
	if cc < 0 || math.IsNaN(cc) {
		return nil, fmt.Errorf("tline: coupling capacitance must be >= 0, got %g", cc)
	}
	if kL < 0 || kL >= 1 || math.IsNaN(kL) {
		return nil, fmt.Errorf("tline: magnetic coupling must be in [0, 1), got %g", kL)
	}
	if delay < 0 {
		return nil, fmt.Errorf("tline: negative source delay %g", delay)
	}
	rt, lt, ct := ln.Totals()
	nf := float64(n)
	rSeg, lSeg, cSeg := rt/nf, lt/nf, ct/nf
	ccSeg := cc * ln.Length / nf
	rtr := d.Rtr
	if rtr == 0 {
		rtr = 1e-6
	}

	ckt := circuit.New()
	src := ckt.Node()
	if err := ckt.AddV("vin", src, circuit.Ground,
		circuit.Step{Amplitude: d.Amplitude(), Delay: delay}); err != nil {
		return nil, err
	}
	aIn := ckt.Node()
	vIn := ckt.Node()
	if err := ckt.AddR("rtr.a", src, aIn, rtr); err != nil {
		return nil, err
	}
	// The victim's gate holds its input low: Rtr to ground.
	if err := ckt.AddR("rtr.v", vIn, circuit.Ground, rtr); err != nil {
		return nil, err
	}
	addSeg := func(tag string, from int, i int) (int, string, error) {
		cur := from
		if rSeg > 0 {
			mid := ckt.Node()
			if err := ckt.AddR(fmt.Sprintf("%s%d.r", tag, i), cur, mid, rSeg); err != nil {
				return 0, "", err
			}
			cur = mid
		}
		next := ckt.Node()
		lName := fmt.Sprintf("%s%d.l", tag, i)
		if err := ckt.AddL(lName, cur, next, lSeg); err != nil {
			return 0, "", err
		}
		if err := ckt.AddC(fmt.Sprintf("%s%d.c", tag, i), next, circuit.Ground, cSeg); err != nil {
			return 0, "", err
		}
		return next, lName, nil
	}
	aNode, vNode := aIn, vIn
	for i := 0; i < n; i++ {
		var aL, vL string
		var err error
		if aNode, aL, err = addSeg("a", aNode, i); err != nil {
			return nil, err
		}
		if vNode, vL, err = addSeg("v", vNode, i); err != nil {
			return nil, err
		}
		if ccSeg > 0 {
			if err := ckt.AddC(fmt.Sprintf("cc%d", i), aNode, vNode, ccSeg); err != nil {
				return nil, err
			}
		}
		if kL > 0 {
			if err := ckt.AddK(fmt.Sprintf("k%d", i), aL, vL, kL); err != nil {
				return nil, err
			}
		}
	}
	if d.CL > 0 {
		if err := ckt.AddC("cl.a", aNode, circuit.Ground, d.CL); err != nil {
			return nil, err
		}
		if err := ckt.AddC("cl.v", vNode, circuit.Ground, d.CL); err != nil {
			return nil, err
		}
	}
	return &CoupledPair{
		Ckt:         ckt,
		AggressorIn: aIn, AggressorOut: aNode,
		VictimIn: vIn, VictimOut: vNode,
		Segments: n,
	}, nil
}
