package tline

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"rlckit/internal/circuit"
	"rlckit/internal/mna"
	"rlckit/internal/numeric"
)

// table1Line builds a line with the paper's Table 1 shape: Ct = 1 pF and
// chosen Rt, Lt over 10 mm.
func table1Line(rt, lt float64) Line {
	return FromTotals(rt, lt, 1e-12, 0.01)
}

func TestValidate(t *testing.T) {
	good := Line{R: 10, L: 1e-7, C: 1e-10, Length: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	lossless := Line{R: 0, L: 1e-7, C: 1e-10, Length: 0.01}
	if err := lossless.Validate(); err != nil {
		t.Errorf("lossless line rejected: %v", err)
	}
	bad := []Line{
		{R: -1, L: 1e-7, C: 1e-10, Length: 1},
		{R: 1, L: 0, C: 1e-10, Length: 1},
		{R: 1, L: 1e-7, C: 0, Length: 1},
		{R: 1, L: 1e-7, C: 1e-10, Length: 0},
		{R: math.NaN(), L: 1e-7, C: 1e-10, Length: 1},
	}
	for i, ln := range bad {
		if err := ln.Validate(); err == nil {
			t.Errorf("bad line %d accepted", i)
		}
	}
	if err := (Drive{Rtr: -1}).Validate(); err == nil {
		t.Error("negative Rtr accepted")
	}
	if err := (Drive{CL: math.Inf(1)}).Validate(); err == nil {
		t.Error("infinite CL accepted")
	}
	if err := (Drive{}).Validate(); err != nil {
		t.Errorf("zero drive rejected: %v", err)
	}
}

func TestTotalsRoundTrip(t *testing.T) {
	ln := FromTotals(1000, 1e-7, 1e-12, 0.01)
	rt, lt, ct := ln.Totals()
	if !close3(rt, 1000) || !close3(lt, 1e-7) || !close3(ct, 1e-12) {
		t.Errorf("totals: %g %g %g", rt, lt, ct)
	}
}

func close3(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Abs(b) }

func TestDerivedQuantities(t *testing.T) {
	ln := Line{R: 0, L: 4e-7, C: 1e-10, Length: 0.02}
	if z := ln.Z0Lossless(); !close3(z, math.Sqrt(4e-7/1e-10)) {
		t.Errorf("Z0 = %g", z)
	}
	want := 0.02 * math.Sqrt(4e-7*1e-10)
	if tof := ln.TimeOfFlight(); !close3(tof, want) {
		t.Errorf("TimeOfFlight = %g, want %g", tof, want)
	}
	// Attenuation: e^{−(Rt/2)√(Ct/Lt)}.
	ln2 := table1Line(1000, 1e-7)
	rt, lt, ct := ln2.Totals()
	if a := ln2.Attenuation(); !close3(a, math.Exp(-rt/2*math.Sqrt(ct/lt))) {
		t.Errorf("Attenuation = %g", a)
	}
}

func TestDriveAmplitude(t *testing.T) {
	if (Drive{}).Amplitude() != 1 {
		t.Error("default amplitude")
	}
	if (Drive{V: 2.5}).Amplitude() != 2.5 {
		t.Error("explicit amplitude")
	}
}

func TestBuildLadderStructure(t *testing.T) {
	ln := table1Line(1000, 1e-7)
	d := Drive{Rtr: 500, CL: 5e-13}
	for _, style := range []SegmentStyle{Gamma, Tee, Pi} {
		lad, err := BuildLadder(ln, d, 10, style, 1e-12)
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if err := lad.Ckt.Validate(); err != nil {
			t.Fatalf("%v: invalid circuit: %v", style, err)
		}
		st := lad.Ckt.Stats()
		if st.V != 1 {
			t.Errorf("%v: %d sources", style, st.V)
		}
		// Total R must equal Rtr + Rt, total C must equal Ct + CL,
		// total L must equal Lt — conservation across styles.
		rt, lt, ct := ln.Totals()
		if got := lad.Ckt.TotalOfKind(circuit.KindResistor); !close3(got, rt+d.Rtr) {
			t.Errorf("%v: total R = %g, want %g", style, got, rt+d.Rtr)
		}
		if got := lad.Ckt.TotalOfKind(circuit.KindInductor); !close3(got, lt) {
			t.Errorf("%v: total L = %g, want %g", style, got, lt)
		}
		if got := lad.Ckt.TotalOfKind(circuit.KindCapacitor); !close3(got, ct+d.CL) {
			t.Errorf("%v: total C = %g, want %g", style, got, ct+d.CL)
		}
		if lad.Segments != 10 || lad.Style != style {
			t.Errorf("%v: metadata %+v", style, lad)
		}
	}
}

func TestBuildLadderErrors(t *testing.T) {
	ln := table1Line(1000, 1e-7)
	if _, err := BuildLadder(ln, Drive{}, 0, Pi, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BuildLadder(ln, Drive{}, 5, Pi, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := BuildLadder(Line{}, Drive{}, 5, Pi, 0); err == nil {
		t.Error("invalid line accepted")
	}
	if _, err := BuildLadder(ln, Drive{Rtr: -1}, 5, Pi, 0); err == nil {
		t.Error("invalid drive accepted")
	}
	if _, err := BuildLadder(ln, Drive{}, 5, SegmentStyle(9), 0); err == nil {
		t.Error("unknown style accepted")
	}
}

func TestBuildLadderLosslessAndUnloaded(t *testing.T) {
	ln := Line{R: 0, L: 1e-7 / 0.01, C: 1e-12 / 0.01, Length: 0.01}
	lad, err := BuildLadder(ln, Drive{}, 8, Gamma, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := lad.Ckt.Stats()
	if st.L != 8 || st.C != 8 {
		t.Errorf("lossless ladder stats %+v", st)
	}
	// Only the driver's placeholder resistance should exist.
	if st.R != 1 {
		t.Errorf("lossless ladder has %d resistors", st.R)
	}
}

func TestSegmentStyleString(t *testing.T) {
	if Gamma.String() != "gamma" || Tee.String() != "tee" || Pi.String() != "pi" {
		t.Error("style strings")
	}
	if SegmentStyle(7).String() == "" {
		t.Error("unknown style")
	}
}

func TestExactTFDCGainIsUnity(t *testing.T) {
	f, err := ExactTF(table1Line(1000, 1e-7), Drive{Rtr: 500, CL: 5e-13})
	if err != nil {
		t.Fatal(err)
	}
	// As s → 0 along the real axis the gain must approach 1 (the line is
	// a through-path at DC).
	for _, s := range []float64{1, 100, 1e4} {
		g := f(complex(s, 0))
		if math.Abs(real(g)-1) > 1e-3 || math.Abs(imag(g)) > 1e-3 {
			t.Errorf("H(%g) = %v, want ≈1", s, g)
		}
	}
}

func TestExactTFMatchesLumpedAtLowFrequency(t *testing.T) {
	// At frequencies well below the line resonance, a 40-segment Pi
	// ladder's rational TF must match the exact hyperbolic TF closely.
	ln := table1Line(1000, 1e-7)
	d := Drive{Rtr: 500, CL: 5e-13}
	exact, err := ExactTF(ln, d)
	if err != nil {
		t.Fatal(err)
	}
	_, lt, ct := ln.Totals()
	t0 := math.Sqrt(lt * (ct + d.CL))
	num, den, err := LadderTF(ln, d, 40, Pi, t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range []complex128{
		complex(0.1, 0), complex(0.5, 0.5), complex(0, 1), complex(1, 2),
	} {
		s := sn / complex(t0, 0)
		he := exact(s)
		hl := num.EvalC(sn) / den.EvalC(sn)
		if cmplx.Abs(he-hl) > 2e-3*(cmplx.Abs(he)+1e-3) {
			t.Errorf("s′=%v: exact %v vs ladder %v", sn, he, hl)
		}
	}
}

func TestLadderTFBasics(t *testing.T) {
	ln := table1Line(1000, 1e-7)
	d := Drive{Rtr: 500, CL: 5e-13}
	_, lt, ct := ln.Totals()
	t0 := math.Sqrt(lt * (ct + d.CL))
	num, den, err := LadderTF(ln, d, 6, Gamma, t0)
	if err != nil {
		t.Fatal(err)
	}
	if num.Degree() != 0 || num.Eval(0) != 1 {
		t.Errorf("numerator %v", num)
	}
	if den.Eval(0) != 1 {
		t.Errorf("den(0) = %g, want 1 (unit DC gain)", den.Eval(0))
	}
	// Degree = number of independent reactive states: 6 L + 6 C, with CL
	// merging into the last segment's shunt capacitor (same node pair).
	if den.Degree() != 12 {
		t.Errorf("den degree = %d, want 12", den.Degree())
	}
	// Error cases.
	if _, _, err := LadderTF(ln, d, 0, Gamma, t0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := LadderTF(ln, d, 3, Gamma, 0); err == nil {
		t.Error("t0=0 accepted")
	}
	if _, _, err := LadderTF(Line{}, d, 3, Gamma, t0); err == nil {
		t.Error("bad line accepted")
	}
	if _, _, err := LadderTF(ln, Drive{CL: -1}, 3, Gamma, t0); err == nil {
		t.Error("bad drive accepted")
	}
	if _, _, err := LadderTF(ln, d, 3, SegmentStyle(9), t0); err == nil {
		t.Error("unknown style accepted")
	}
}

func TestLadderTFStylesAgreeAtDC(t *testing.T) {
	ln := table1Line(500, 1e-8)
	d := Drive{Rtr: 100, CL: 1e-13}
	_, lt, ct := ln.Totals()
	t0 := math.Sqrt(lt * (ct + d.CL))
	for _, style := range []SegmentStyle{Gamma, Tee, Pi} {
		_, den, err := LadderTF(ln, d, 12, style, t0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(den.Eval(0)-1) > 1e-12 {
			t.Errorf("%v: den(0) = %g", style, den.Eval(0))
		}
	}
}

func TestLadderTFStable(t *testing.T) {
	// Every pole of a passive RLC ladder must lie in the left half-plane.
	ln := table1Line(1000, 1e-6)
	d := Drive{Rtr: 500, CL: 5e-13}
	_, lt, ct := ln.Totals()
	t0 := math.Sqrt(lt * (ct + d.CL))
	_, den, err := LadderTF(ln, d, 10, Pi, t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range den.Roots() {
		if real(p) > 1e-7*(cmplx.Abs(p)+1) {
			t.Errorf("unstable pole %v", p)
		}
	}
}

func TestFromTotalsProperty(t *testing.T) {
	f := func(r, l, c, length float64) bool {
		r = math.Abs(math.Mod(r, 1e4))
		l = math.Abs(math.Mod(l, 1e-5)) + 1e-12
		c = math.Abs(math.Mod(c, 1e-9)) + 1e-16
		length = math.Abs(math.Mod(length, 0.1)) + 1e-4
		ln := FromTotals(r, l, c, length)
		rt, lt, ct := ln.Totals()
		return close3(rt, r) && close3(lt, l) && close3(ct, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNumericImportUsed(t *testing.T) {
	// Sanity: the normalized ladder polynomial has O(1) coefficients.
	ln := table1Line(1000, 1e-7)
	d := Drive{Rtr: 500, CL: 5e-13}
	_, lt, ct := ln.Totals()
	t0 := math.Sqrt(lt * (ct + d.CL))
	_, den, err := LadderTF(ln, d, 8, Pi, t0)
	if err != nil {
		t.Fatal(err)
	}
	if m := numeric.VecNormInf(den.Coef); m > 1e6 || m < 1e-6 {
		t.Errorf("normalized coefficients badly scaled: max |c| = %g", m)
	}
}

func TestCoupledLaddersCrosstalk(t *testing.T) {
	// Aggressor switching next to a quiet victim: coupling must inject
	// measurable noise, more coupling → more noise, zero coupling → none.
	ln := table1Line(300, 2e-8)
	d := Drive{Rtr: 50, CL: 5e-14}
	tof := ln.TimeOfFlight()
	peakNoise := func(cc, kl float64) float64 {
		cp, err := BuildCoupledLadders(ln, d, 40, cc, kl, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if err := cp.Ckt.Validate(); err != nil {
			t.Fatal(err)
		}
		res, err := mna.Simulate(cp.Ckt, mna.Options{
			Dt: tof / 600, TEnd: 20 * tof, Probes: []int{cp.VictimOut, cp.AggressorOut},
		})
		if err != nil {
			t.Fatal(err)
		}
		v, err := res.V(cp.VictimOut)
		if err != nil {
			t.Fatal(err)
		}
		peak := 0.0
		for _, x := range v {
			if a := math.Abs(x); a > peak {
				peak = a
			}
		}
		// Sanity: the aggressor still switches to ~1.
		a, _ := res.V(cp.AggressorOut)
		if f := a[len(a)-1]; math.Abs(f-1) > 0.05 {
			t.Fatalf("aggressor final %g", f)
		}
		return peak
	}
	quiet := peakNoise(0, 0)
	capOnly := peakNoise(3e-11, 0) // ~30 pF/m coupling
	indOnly := peakNoise(0, 0.4)
	both := peakNoise(3e-11, 0.4)
	if quiet > 1e-6 {
		t.Errorf("uncoupled victim noise %g", quiet)
	}
	if capOnly < 0.01 {
		t.Errorf("capacitive crosstalk only %.4g V", capOnly)
	}
	if indOnly < 0.01 {
		t.Errorf("inductive crosstalk only %.4g V", indOnly)
	}
	// Classic coupled-line result: capacitive and inductive far-end
	// crosstalk have opposite polarity (FEXT ∝ Cc/C − M/L), so combining
	// them partially cancels — the combined noise must be below the sum
	// and here below the capacitive-only noise.
	if both >= capOnly {
		t.Errorf("magnetic coupling did not cancel capacitive FEXT: %.4g vs %.4g", both, capOnly)
	}
	if both > 1 || indOnly > 1 {
		t.Errorf("victim noise exceeds aggressor swing: %.4g / %.4g", both, indOnly)
	}
}

func TestBuildCoupledLaddersValidation(t *testing.T) {
	ln := table1Line(300, 2e-8)
	d := Drive{Rtr: 50}
	if _, err := BuildCoupledLadders(Line{}, d, 4, 0, 0, 0); err == nil {
		t.Error("bad line accepted")
	}
	if _, err := BuildCoupledLadders(ln, Drive{Rtr: -1}, 4, 0, 0, 0); err == nil {
		t.Error("bad drive accepted")
	}
	if _, err := BuildCoupledLadders(ln, d, 0, 0, 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BuildCoupledLadders(ln, d, 4, -1, 0, 0); err == nil {
		t.Error("negative cc accepted")
	}
	if _, err := BuildCoupledLadders(ln, d, 4, 0, 1.0, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := BuildCoupledLadders(ln, d, 4, 0, 0, -1); err == nil {
		t.Error("negative delay accepted")
	}
	cp, err := BuildCoupledLadders(ln, d, 4, 1e-11, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Segments != 4 || cp.AggressorOut == cp.VictimOut {
		t.Errorf("pair metadata %+v", cp)
	}
}
