//go:build faultinject

package store

import (
	"errors"
	"fmt"
	"testing"

	"rlckit/internal/faultinject"
)

// These tests drive the store's rate-based failpoints (write error,
// short write, fsync error). The crash sites are exercised end-to-end
// against a real rlckitd child by internal/chaos's crash harness.

func TestJournalShortWriteRollsBack(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.Append([]byte("good")); err != nil {
		t.Fatalf("Append: %v", err)
	}

	faultinject.Configure(faultinject.Config{
		Rates: map[string]float64{faultinject.SiteStoreShort: 1},
	})
	if err := s.Append([]byte("torn-by-full-disk")); err == nil {
		t.Fatal("short write reported success")
	}
	faultinject.Reset()

	// The torn frame was rolled back: the journal is clean and appends
	// continue from the last good frame.
	if err := s.Append([]byte("after")); err != nil {
		t.Fatalf("Append after rollback: %v", err)
	}
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"good", "after"}) {
		t.Fatalf("replay = %q, want torn frame absent", got)
	}
}

func TestJournalWriteErrorInjected(t *testing.T) {
	defer faultinject.Reset()
	s, err := Open(t.TempDir(), Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	faultinject.Configure(faultinject.Config{
		Rates: map[string]float64{faultinject.SiteStoreWrite: 1},
	})
	err = s.Append([]byte("doomed"))
	if !faultinject.IsFault(err) {
		t.Fatalf("Append = %v, want injected fault", err)
	}
	faultinject.Reset()
	if got := replayAll(t, s); len(got) != 0 {
		t.Fatalf("failed append left frames: %q", got)
	}
}

func TestJournalSyncErrorKeepsFrames(t *testing.T) {
	defer faultinject.Reset()
	s, err := Open(t.TempDir(), Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.Append([]byte("frame")); err != nil {
		t.Fatalf("Append: %v", err)
	}

	faultinject.Configure(faultinject.Config{
		Rates: map[string]float64{faultinject.SiteStoreSync: 1},
	})
	if err := s.Sync(); !faultinject.IsFault(err) {
		t.Fatalf("Sync = %v, want injected fault", err)
	}
	faultinject.Reset()
	// Durability degraded, correctness preserved: the frame is intact.
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"frame"}) {
		t.Fatalf("replay = %q", got)
	}
}

func TestSnapshotShortWriteKeepsPrevious(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	writeSnapshot(t, s, []rec{{1, "k", "v"}})

	faultinject.Configure(faultinject.Config{
		Rates: map[string]float64{faultinject.SiteStoreShort: 1},
	})
	w, err := s.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if err := w.Add(1, []byte("new"), []byte("new")); err == nil {
		t.Fatal("short snapshot write reported success")
	}
	faultinject.Reset()

	if got := loadAll(t, s); len(got) != 1 || got[0].key != "k" {
		t.Fatalf("loaded %+v, want the previous snapshot intact", got)
	}
}

func TestSnapshotCommitSyncErrorKeepsPrevious(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	writeSnapshot(t, s, []rec{{1, "k", "v"}})

	w, err := s.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if err := w.Add(1, []byte("new"), []byte("new")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	faultinject.Configure(faultinject.Config{
		Rates: map[string]float64{faultinject.SiteStoreSync: 1},
	})
	err = w.Commit()
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrFault) {
		t.Fatalf("Commit = %v, want injected fault", err)
	}
	if got := loadAll(t, s); len(got) != 1 || got[0].key != "k" {
		t.Fatalf("loaded %+v, want the previous snapshot intact", got)
	}
}

func TestRewriteWriteErrorKeepsOldJournal(t *testing.T) {
	defer faultinject.Reset()
	s, err := Open(t.TempDir(), Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for _, p := range []string{"a", "b", "c"} {
		if err := s.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	faultinject.Configure(faultinject.Config{
		Rates: map[string]float64{faultinject.SiteStoreWrite: 1},
	})
	err = s.RewriteJournal([][]byte{[]byte("compact")})
	faultinject.Reset()
	if !faultinject.IsFault(err) {
		t.Fatalf("RewriteJournal = %v, want injected fault", err)
	}
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("replay = %q, want old journal untouched", got)
	}
}
