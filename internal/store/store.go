package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

const (
	snapshotMagic = "RLKSNP1\n"
	journalMagic  = "RLKJRN1\n"

	// formatVersion is the store's own on-disk layout version, distinct
	// from the caller's schema version in Options.
	formatVersion = 1

	// headerLen = 8-byte magic + u32 format version + u32 caller version.
	headerLen = 16

	snapshotName = "snapshot.dat"
	journalName  = "journal.dat"

	// Sanity caps: a length field beyond these is treated as corruption
	// rather than an allocation request.
	maxKeyLen   = 1 << 20 // 1 MiB
	maxValLen   = 1 << 24 // 16 MiB
	maxFrameLen = 1 << 24 // 16 MiB
)

var le = binary.LittleEndian

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("store: closed")

// Options configures a Store.
type Options struct {
	// Version is the caller's schema version. A snapshot or journal
	// written under a different version is discarded wholesale as stale
	// (counted in Stats.Stale) instead of being misread.
	Version uint32
	// Sync fsyncs the journal after every append. Off, appends reach
	// the OS page cache immediately (surviving process death) and disk
	// at the caller's explicit Sync/snapshot cadence (surviving power
	// loss only from that point).
	Sync bool
}

// Stats counts what load and replay saw. Recovered is records and
// frames proven intact; Corrupt is records, frames, or torn tails
// discarded on CRC/structure failure; Stale is whole files dropped for
// a version mismatch.
type Stats struct {
	Recovered int
	Corrupt   int
	Stale     int
}

// Store is a snapshot file plus an append-only journal rooted at one
// directory. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	journal *os.File
	joff    int64 // file offset just past the last good frame
	stats   Stats
	closed  bool
}

// Open opens (creating if needed) the store rooted at dir. Leftover
// temp files from a crashed writer are removed, and the journal is
// scanned so that any torn tail is truncated back to the last good
// frame before the first append. The error, if any, reflects dir being
// missing and uncreatable, unwritable, or not a directory.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.removeTemps(); err != nil {
		return nil, err
	}
	if err := s.openJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir reports the directory the store was opened at.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the load/replay counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close syncs and closes the journal. The Store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.journal == nil {
		return nil
	}
	err := s.journal.Sync()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.journal = nil
	return err
}

// removeTemps deletes temp files abandoned by a crash mid-snapshot or
// mid-compaction; they were never installed, so they carry no state.
func (s *Store) removeTemps() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	return nil
}

// header renders the 16-byte file header for the given magic.
func (s *Store) header(magic string) []byte {
	h := make([]byte, headerLen)
	copy(h, magic)
	le.PutUint32(h[8:], formatVersion)
	le.PutUint32(h[12:], s.opts.Version)
	return h
}

// checkHeader classifies a header read from disk: ok, stale (right
// layout, wrong caller version), or corrupt.
func (s *Store) checkHeader(h []byte, magic string) (ok, stale bool) {
	if len(h) < headerLen || string(h[:8]) != magic || le.Uint32(h[8:]) != formatVersion {
		return false, false
	}
	if le.Uint32(h[12:]) != s.opts.Version {
		return false, true
	}
	return true, false
}

// syncDir fsyncs the store directory so a just-renamed file's
// directory entry is durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
