// Package store is rlckitd's crash-safe on-disk persistence layer.
//
// It has two halves, both designed so that a kill -9 (or power cut) at
// any byte boundary leaves the daemon able to restart and never serve
// a corrupt result:
//
//   - A snapshot store: a single checksummed, versioned file holding
//     namespaced key/value records (serve uses it for response-cache
//     entries and certified MOR pencils). Snapshots are written to a
//     temp file, fsynced, and atomically renamed into place, so the
//     previous snapshot survives any crash mid-write. Every record
//     carries a CRC32; corrupt or torn records are discarded with a
//     counter on load, never returned to the caller.
//
//   - An append-only journal: length-prefixed, CRC-framed payloads
//     (serve logs session opens and applied edit batches). Open scans
//     the journal, truncates any torn tail back to the last good
//     frame, and replays the clean prefix. RewriteJournal compacts it
//     with the same temp-file + rename discipline.
//
// Both files start with a magic string, the store's own format
// version, and a caller-supplied schema version; a mismatch in either
// discards the whole file as stale rather than misinterpreting old
// bytes. The store never repairs data — it only detects, counts, and
// drops what it cannot prove intact, because a wrong answer from a
// warm start is strictly worse than a cold compute.
//
// Under the faultinject build tag the writers carry failpoints for
// injected write errors, short (torn) writes, and fsync failures, plus
// crash sites that SIGKILL the process mid-write; internal/chaos's
// crash harness drives a real rlckitd child through each of them.
package store
