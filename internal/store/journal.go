package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"rlckit/internal/faultinject"
)

// A journal frame is [len u32][payload][crc u32], crc32-IEEE over the
// payload. Appends go through a tracked offset: a failed or short
// append truncates the file back to the last good frame immediately,
// and a crash mid-append is healed by the torn-tail scan on the next
// Open. Frames after the first bad one are unreachable by construction,
// which is exactly the prefix-durability a write-ahead log promises.

// openJournal opens or creates the journal, validates its header,
// scans its frames, and truncates any torn tail so joff points just
// past the last provably-intact frame.
func (s *Store) openJournal() error {
	path := filepath.Join(s.dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.journal = f

	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	reset := false
	if size == 0 {
		reset = true
	} else {
		hdr := make([]byte, headerLen)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			s.stats.Corrupt++
			reset = true
		} else if ok, stale := s.checkHeader(hdr, journalMagic); !ok {
			if stale {
				s.stats.Stale++
			} else {
				s.stats.Corrupt++
			}
			reset = true
		}
	}
	if reset {
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.WriteAt(s.header(journalMagic), 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.joff = headerLen
		return nil
	}

	good := s.scanJournal(f, size)
	if good < size {
		// Torn tail from a crash mid-append: roll back to the last good
		// frame so new appends continue a clean prefix.
		s.stats.Corrupt++
		if err := f.Truncate(good); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.joff = good
	return nil
}

// scanJournal walks frames from the header to the first bad one,
// returning the offset just past the last good frame.
func (s *Store) scanJournal(f *os.File, size int64) int64 {
	r := bufio.NewReaderSize(io.NewSectionReader(f, headerLen, size-headerLen), 1<<16)
	good := int64(headerLen)
	var pre [4]byte
	for {
		if _, err := io.ReadFull(r, pre[:]); err != nil {
			return good
		}
		n := le.Uint32(pre[:])
		if n > maxFrameLen {
			return good
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return good
		}
		if crc32.ChecksumIEEE(body[:n]) != le.Uint32(body[n:]) {
			return good
		}
		good += int64(4 + len(body))
	}
}

// Append writes one frame to the journal. Under Options.Sync it is
// fsynced before returning; otherwise it is durable against process
// death immediately and against power loss at the next sync. A failed
// append leaves the journal exactly as it was.
func (s *Store) Append(payload []byte) error {
	if len(payload) > maxFrameLen {
		return fmt.Errorf("store: journal frame too large (%d bytes)", len(payload))
	}
	frame := make([]byte, 0, 4+len(payload)+4)
	frame = le.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = le.AppendUint32(frame, crc32.ChecksumIEEE(payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := faultinject.Inject(faultinject.SiteStoreWrite); err != nil {
		return err
	}
	if faultinject.Active && faultinject.Crashpoint(faultinject.SiteCrashJournal) {
		// Power cut mid-frame: leave a torn prefix on disk and die. The
		// next Open must truncate it away.
		s.journal.WriteAt(frame[:len(frame)/2], s.joff)
		faultinject.KillSelf()
	}
	n := len(frame)
	if faultinject.Active && faultinject.Corrupt(faultinject.SiteStoreShort) {
		n = len(frame) / 2
	}
	if _, err := s.journal.WriteAt(frame[:n], s.joff); err != nil || n < len(frame) {
		// Torn append: roll the file back to the last good frame so the
		// journal never carries an unreadable middle.
		s.journal.Truncate(s.joff)
		if err == nil {
			err = fmt.Errorf("store: short journal write (%d of %d bytes)", n, len(frame))
		}
		return err
	}
	s.joff += int64(len(frame))
	if s.opts.Sync {
		return s.syncJournalLocked()
	}
	return nil
}

// Sync forces the journal to disk; use it as the periodic durability
// point when Options.Sync is off. An fsync failure degrades durability
// only — every acknowledged frame is still intact in the page cache.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncJournalLocked()
}

func (s *Store) syncJournalLocked() error {
	if err := faultinject.Inject(faultinject.SiteStoreSync); err != nil {
		return err
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// ReplayJournal streams every intact frame, in append order, to fn.
// Open already truncated any torn tail, but frames are re-verified and
// replay stops at the first bad one regardless. fn returning an error
// aborts the replay.
func (s *Store) ReplayJournal(fn func(payload []byte) error) error {
	s.mu.Lock()
	f, end := s.journal, s.joff
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}

	r := bufio.NewReaderSize(io.NewSectionReader(f, headerLen, end-headerLen), 1<<16)
	var pre [4]byte
	for {
		if _, err := io.ReadFull(r, pre[:]); err != nil {
			return nil
		}
		n := le.Uint32(pre[:])
		if n > maxFrameLen {
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(r, body); err != nil {
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil
		}
		if crc32.ChecksumIEEE(body[:n]) != le.Uint32(body[n:]) {
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil
		}
		s.count(func(st *Stats) { st.Recovered++ })
		if err := fn(body[:n]); err != nil {
			return err
		}
	}
}

// RewriteJournal atomically replaces the journal's contents with the
// given payloads (compaction): a fresh file is written, fsynced, and
// renamed over the old one, so a crash at any point leaves either the
// old journal or the new one — never a mix.
func (s *Store) RewriteJournal(payloads [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}

	f, err := os.CreateTemp(s.dir, "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(s.header(journalMagic)); err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	off := int64(headerLen)
	for i, p := range payloads {
		if len(p) > maxFrameLen {
			return fail(fmt.Errorf("store: journal frame too large (%d bytes)", len(p)))
		}
		if err := faultinject.Inject(faultinject.SiteStoreWrite); err != nil {
			return fail(err)
		}
		if faultinject.Active && i == len(payloads)/2 &&
			faultinject.Crashpoint(faultinject.SiteCrashRewrite) {
			// Die mid-compaction: the half-written temp file must be
			// swept on restart and the old journal recovered intact.
			w.Flush()
			faultinject.KillSelf()
		}
		frame := make([]byte, 0, 4+len(p)+4)
		frame = le.AppendUint32(frame, uint32(len(p)))
		frame = append(frame, p...)
		frame = le.AppendUint32(frame, crc32.ChecksumIEEE(p))
		if _, err := w.Write(frame); err != nil {
			return fail(fmt.Errorf("store: %w", err))
		}
		off += int64(len(frame))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	if err := faultinject.Inject(faultinject.SiteStoreSync); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(f.Name(), filepath.Join(s.dir, journalName)); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// Swap the open handle to the installed file.
	nf, err := os.OpenFile(filepath.Join(s.dir, journalName), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.journal.Close()
	s.journal = nf
	s.joff = off
	return nil
}
