package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	ns       uint8
	key, val string
}

func writeSnapshot(t *testing.T, s *Store, recs []rec) {
	t.Helper()
	w, err := s.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	for _, r := range recs {
		if err := w.Add(r.ns, []byte(r.key), []byte(r.val)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func loadAll(t *testing.T, s *Store) []rec {
	t.Helper()
	var got []rec
	if err := s.LoadSnapshot(func(ns uint8, key, val []byte) {
		got = append(got, rec{ns, string(key), string(val)})
	}); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	return got
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	recs := []rec{
		{1, "keyA", "value-a"},
		{1, "keyB", ""},
		{2, "", "pencil-bytes\x00\xff"},
		{2, "big", string(bytes.Repeat([]byte{0xaa}, 100_000))},
	}
	writeSnapshot(t, s, recs)

	got := loadAll(t, s)
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec{got[i].ns, got[i].key, got[i].val[:min(8, len(got[i].val))]}, recs[i])
		}
	}
	st := s.Stats()
	if st.Recovered != len(recs) || st.Corrupt != 0 || st.Stale != 0 {
		t.Fatalf("stats = %+v, want Recovered=%d", st, len(recs))
	}

	// Overwriting with a second snapshot fully replaces the first.
	writeSnapshot(t, s, recs[:1])
	if got := loadAll(t, s); len(got) != 1 || got[0] != recs[0] {
		t.Fatalf("after overwrite loaded %+v, want just %+v", got, recs[0])
	}
}

func TestSnapshotMissingIsEmpty(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if got := loadAll(t, s); len(got) != 0 {
		t.Fatalf("loaded %d records from missing snapshot", len(got))
	}
}

func TestSnapshotAbortKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	writeSnapshot(t, s, []rec{{1, "k", "v"}})
	w, err := s.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if err := w.Add(1, []byte("other"), []byte("other")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	w.Abort()

	if got := loadAll(t, s); len(got) != 1 || got[0].key != "k" {
		t.Fatalf("after abort loaded %+v, want the original snapshot", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("abort left temp file %s", e.Name())
		}
	}
}

func TestSnapshotCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := []rec{{1, "aaaa", "first"}, {1, "bbbb", "second"}, {1, "cccc", "third"}}
	writeSnapshot(t, s, recs)
	s.Close()

	// Flip one byte inside the second record's value. Record layout:
	// [ns][klen u32][vlen u32][key][val][crc], so record i of key/val
	// length 4/k starts after header + i*(1+4+4+4+len(val)+4).
	path := filepath.Join(dir, snapshotName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := headerLen + (1 + 4 + 4 + 4 + len("first") + 4) + (1 + 4 + 4 + 4) // first byte of "second"
	raw[off] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	got := loadAll(t, s)
	if len(got) != 2 || got[0].key != "aaaa" || got[1].key != "cccc" {
		t.Fatalf("loaded %+v, want records 1 and 3 only", got)
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Recovered != 2 {
		t.Fatalf("stats = %+v, want Corrupt=1 Recovered=2", st)
	}
}

func TestSnapshotInsaneLengthStopsLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeSnapshot(t, s, []rec{{1, "good", "good"}, {1, "bad", "bad"}})
	s.Close()

	// Blow up the second record's vlen field: framing is untrustworthy
	// from there on, so the load must keep record 1 and stop.
	path := filepath.Join(dir, snapshotName)
	raw, _ := os.ReadFile(path)
	off := headerLen + (1 + 4 + 4 + 4 + 4 + 4) + 1 + 4
	binary.LittleEndian.PutUint32(raw[off:], 1<<30)
	os.WriteFile(path, raw, 0o644)

	s, err = Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	got := loadAll(t, s)
	if len(got) != 1 || got[0].key != "good" {
		t.Fatalf("loaded %+v, want just the first record", got)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
}

func TestSnapshotStaleVersionDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeSnapshot(t, s, []rec{{1, "k", "v"}})
	s.Close()

	s, err = Open(dir, Options{Version: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if got := loadAll(t, s); len(got) != 0 {
		t.Fatalf("stale snapshot surfaced records: %+v", got)
	}
	// One stale file from the snapshot, one from the journal header.
	if st := s.Stats(); st.Stale != 2 {
		t.Fatalf("stats = %+v, want Stale=2", st)
	}
}

func replayAll(t *testing.T, s *Store) []string {
	t.Helper()
	var got []string
	if err := s.ReplayJournal(func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatalf("ReplayJournal: %v", err)
	}
	return got
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1, Sync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := []string{"open s1", "", "edit s1 batch1", "edit s1 batch2"}
	for _, p := range want {
		if err := s.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay in same process = %q, want %q", got, want)
	}
	s.Close()

	s, err = Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay after reopen = %q, want %q", got, want)
	}
	if err := s.Append([]byte("post-reopen")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if got := replayAll(t, s); got[len(got)-1] != "post-reopen" {
		t.Fatalf("appended frame missing from replay: %q", got)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, p := range []string{"one", "two"} {
		if err := s.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: a frame header promising 64 bytes
	// with only a few bytes of payload behind it.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := binary.LittleEndian.AppendUint32(nil, 64)
	torn = append(torn, "part"...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	s, err = Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"one", "two"}) {
		t.Fatalf("replay = %q, want the two intact frames", got)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Recovered != 2 {
		t.Fatalf("stats = %+v, want Corrupt=1 Recovered=2", st)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// New appends land on the clean prefix.
	if err := s.Append([]byte("three")); err != nil {
		t.Fatalf("Append after truncate: %v", err)
	}
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"one", "two", "three"}) {
		t.Fatalf("replay after repair+append = %q", got)
	}
}

func TestJournalCorruptFrameCutsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, p := range []string{"aaaa", "bbbb", "cccc"} {
		if err := s.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	// Bit-flip inside the second frame's payload: everything from that
	// frame on is untrusted (a WAL's prefix property).
	path := filepath.Join(dir, journalName)
	raw, _ := os.ReadFile(path)
	raw[headerLen+(4+4+4)+4] ^= 1
	os.WriteFile(path, raw, 0o644)

	s, err = Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"aaaa"}) {
		t.Fatalf("replay = %q, want only the frame before the corruption", got)
	}
}

func TestJournalStaleVersionReset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Append([]byte("old-schema")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()

	s, err = Open(dir, Options{Version: 9})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if got := replayAll(t, s); len(got) != 0 {
		t.Fatalf("stale journal replayed frames: %q", got)
	}
	if st := s.Stats(); st.Stale != 1 {
		t.Fatalf("stats = %+v, want Stale=1", st)
	}
	if err := s.Append([]byte("new-schema")); err != nil {
		t.Fatalf("Append after reset: %v", err)
	}
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"new-schema"}) {
		t.Fatalf("replay = %q", got)
	}
}

func TestRewriteJournalCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append([]byte(fmt.Sprintf("frame%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.RewriteJournal([][]byte{[]byte("kept1"), []byte("kept2")}); err != nil {
		t.Fatalf("RewriteJournal: %v", err)
	}
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"kept1", "kept2"}) {
		t.Fatalf("replay after rewrite = %q", got)
	}
	if err := s.Append([]byte("after")); err != nil {
		t.Fatalf("Append after rewrite: %v", err)
	}
	s.Close()

	s, err = Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if got := replayAll(t, s); fmt.Sprint(got) != fmt.Sprint([]string{"kept1", "kept2", "after"}) {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestOpenRemovesLeftoverTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"snapshot-123.tmp", "journal-456.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("crashed"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover temp %s survived Open", e.Name())
		}
	}
}

func TestOpenUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; permission bits are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := Open(filepath.Join(dir, "store"), Options{}); err == nil {
		t.Fatal("Open of unwritable dir succeeded")
	}
}

func TestClosedStoreRejectsUse(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Version: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := s.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append on closed store = %v, want ErrClosed", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed store = %v, want ErrClosed", err)
	}
	if _, err := s.BeginSnapshot(); err != ErrClosed {
		t.Fatalf("BeginSnapshot on closed store = %v, want ErrClosed", err)
	}
}
