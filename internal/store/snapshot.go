package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"rlckit/internal/faultinject"
)

// A snapshot record is [ns u8][klen u32][vlen u32][key][val][crc u32],
// crc32-IEEE over everything before it. The file is only ever replaced
// atomically, so a record can be torn only by bit rot or a crashed
// pre-rename temp file (which Open removes) — but LoadSnapshot still
// verifies every record and skips what it cannot prove intact.

// SnapshotWriter accumulates one snapshot in a temp file; Commit
// atomically installs it, Abort discards it. Exactly one of the two
// must be called. A SnapshotWriter is not safe for concurrent use.
type SnapshotWriter struct {
	s    *Store
	f    *os.File
	w    *bufio.Writer
	path string
	done bool
}

// BeginSnapshot starts a new snapshot. The previous snapshot, if any,
// stays installed and untouched until Commit's rename.
func (s *Store) BeginSnapshot() (*SnapshotWriter, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	f, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(s.header(snapshotMagic)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("store: %w", err)
	}
	return &SnapshotWriter{s: s, f: f, w: w, path: f.Name()}, nil
}

// Add appends one record. On error the snapshot is already aborted and
// the writer must not be used further.
func (w *SnapshotWriter) Add(ns uint8, key, val []byte) error {
	if w.done {
		return ErrClosed
	}
	if len(key) > maxKeyLen || len(val) > maxValLen {
		w.Abort()
		return fmt.Errorf("store: snapshot record too large (key %d, val %d bytes)", len(key), len(val))
	}
	rec := make([]byte, 0, 1+4+4+len(key)+len(val)+4)
	rec = append(rec, ns)
	rec = le.AppendUint32(rec, uint32(len(key)))
	rec = le.AppendUint32(rec, uint32(len(val)))
	rec = append(rec, key...)
	rec = append(rec, val...)
	rec = le.AppendUint32(rec, crc32.ChecksumIEEE(rec))

	if err := faultinject.Inject(faultinject.SiteStoreWrite); err != nil {
		w.Abort()
		return err
	}
	if faultinject.Active && faultinject.Crashpoint(faultinject.SiteCrashSnapshot) {
		// Power cut mid-record: flush a torn prefix into the temp file,
		// then die. The installed snapshot must survive untouched.
		w.w.Write(rec[:len(rec)/2])
		w.w.Flush()
		faultinject.KillSelf()
	}
	n := len(rec)
	if faultinject.Active && faultinject.Corrupt(faultinject.SiteStoreShort) {
		n = len(rec) / 2
	}
	if _, err := w.w.Write(rec[:n]); err != nil || n < len(rec) {
		w.Abort()
		if err == nil {
			err = fmt.Errorf("store: short snapshot write (%d of %d bytes)", n, len(rec))
		}
		return err
	}
	return nil
}

// Commit flushes, fsyncs, and atomically renames the snapshot into
// place, then fsyncs the directory entry.
func (w *SnapshotWriter) Commit() error {
	if w.done {
		return ErrClosed
	}
	w.done = true
	if err := w.w.Flush(); err != nil {
		w.discard()
		return fmt.Errorf("store: %w", err)
	}
	if err := faultinject.Inject(faultinject.SiteStoreSync); err != nil {
		w.discard()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.discard()
		return fmt.Errorf("store: %w", err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.path)
		return fmt.Errorf("store: %w", err)
	}
	if faultinject.Active && faultinject.Crashpoint(faultinject.SiteCrashRename) {
		// Die with the temp file complete but never installed: the old
		// snapshot must still be the one recovered from.
		faultinject.KillSelf()
	}
	if err := os.Rename(w.path, filepath.Join(w.s.dir, snapshotName)); err != nil {
		os.Remove(w.path)
		return fmt.Errorf("store: %w", err)
	}
	return w.s.syncDir()
}

// Abort discards the in-progress snapshot, leaving the previous one
// installed.
func (w *SnapshotWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.discard()
}

func (w *SnapshotWriter) discard() {
	w.f.Close()
	os.Remove(w.path)
}

// LoadSnapshot streams every intact record of the installed snapshot
// to fn. A missing snapshot is not an error. A stale or unrecognizable
// file is dropped wholesale; a record that fails its CRC is skipped
// (both counted in Stats), and a record whose structure cannot be
// trusted ends the load — nothing corrupt is ever surfaced.
func (s *Store) LoadSnapshot(fn func(ns uint8, key, val []byte)) error {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		s.count(func(st *Stats) { st.Corrupt++ })
		return nil
	}
	ok, stale := s.checkHeader(hdr, snapshotMagic)
	if !ok {
		s.count(func(st *Stats) {
			if stale {
				st.Stale++
			} else {
				st.Corrupt++
			}
		})
		return nil
	}

	pre := make([]byte, 1+4+4)
	for {
		if _, err := io.ReadFull(r, pre[:1]); err == io.EOF {
			return nil
		} else if err != nil {
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil
		}
		if _, err := io.ReadFull(r, pre[1:]); err != nil {
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil
		}
		klen, vlen := le.Uint32(pre[1:]), le.Uint32(pre[5:])
		if klen > maxKeyLen || vlen > maxValLen {
			// The length fields themselves are suspect; the rest of the
			// file cannot be framed reliably.
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil
		}
		body := make([]byte, klen+vlen+4)
		if _, err := io.ReadFull(r, body); err != nil {
			s.count(func(st *Stats) { st.Corrupt++ })
			return nil
		}
		sum := crc32.ChecksumIEEE(pre)
		sum = crc32.Update(sum, crc32.IEEETable, body[:klen+vlen])
		if sum != le.Uint32(body[klen+vlen:]) {
			// The lengths framed a full record, so the stream stays in
			// sync: skip just this record.
			s.count(func(st *Stats) { st.Corrupt++ })
			continue
		}
		s.count(func(st *Stats) { st.Recovered++ })
		fn(pre[0], body[:klen], body[klen:klen+vlen])
	}
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
