// Package screen decides which nets need inductance-aware (RLC) timing
// analysis and which are safely RC — implementing the figure-of-merit
// criteria the paper cites from Ismail, Friedman & Neves ("Figures of
// Merit to Characterize the Importance of On-Chip Inductance", DAC'98,
// reference [8]).
//
// A line of length l with per-unit-length R, L, C exhibits significant
// inductive behaviour when
//
//	tr/(2·sqrt(LC))  <  l  <  2/R·sqrt(L/C)
//
// The lower bound says the input rise time tr must be comparable to or
// faster than the round-trip time of flight (otherwise the wave nature
// is invisible); the upper bound says the line must not be so long that
// resistive attenuation dissipates the wave (the RC regime). The damping
// factor ζ of the driven line provides a complementary check: ζ ≲ 1
// implies overshoot and ringing no RC model can produce.
package screen

import (
	"fmt"
	"math"

	"rlckit/internal/core"
	"rlckit/internal/pool"
	"rlckit/internal/tline"
)

// Result is the screening verdict for one net.
type Result struct {
	// LMin and LMax are the bounds of the inductance-significant length
	// window in meters (LMin from the rise time, LMax from attenuation).
	LMin, LMax float64
	// InWindow reports l ∈ (LMin, LMax).
	InWindow bool
	// Zeta is the driven-line damping factor; Underdamped flags ζ < 1.
	Zeta        float64
	Underdamped bool
	// NeedsRLC is the overall verdict: the length window criterion, or
	// an underdamped driven response.
	NeedsRLC bool
}

// Check screens a driven line with the given input rise time (seconds).
func Check(ln tline.Line, d tline.Drive, riseTime float64) (Result, error) {
	if err := ln.Validate(); err != nil {
		return Result{}, err
	}
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if riseTime <= 0 || math.IsNaN(riseTime) || math.IsInf(riseTime, 0) {
		return Result{}, fmt.Errorf("screen: rise time must be positive, got %g", riseTime)
	}
	var res Result
	res.LMin = riseTime / (2 * math.Sqrt(ln.L*ln.C))
	if ln.R > 0 {
		res.LMax = 2 / ln.R * math.Sqrt(ln.L/ln.C)
	} else {
		res.LMax = math.Inf(1)
	}
	res.InWindow = ln.Length > res.LMin && ln.Length < res.LMax
	p, err := core.Analyze(ln, d)
	if err != nil {
		return Result{}, err
	}
	res.Zeta = p.Zeta
	res.Underdamped = p.Zeta < 1
	res.NeedsRLC = res.InWindow || res.Underdamped
	return res, nil
}

// WindowForWire returns just the (LMin, LMax) length window of a wire's
// per-unit-length parameters for a given rise time, without a driver.
func WindowForWire(perMeterR, perMeterL, perMeterC, riseTime float64) (lMin, lMax float64, err error) {
	if perMeterL <= 0 || perMeterC <= 0 {
		return 0, 0, fmt.Errorf("screen: need positive L and C per meter (got %g, %g)", perMeterL, perMeterC)
	}
	if riseTime <= 0 {
		return 0, 0, fmt.Errorf("screen: rise time must be positive, got %g", riseTime)
	}
	lMin = riseTime / (2 * math.Sqrt(perMeterL*perMeterC))
	if perMeterR > 0 {
		lMax = 2 / perMeterR * math.Sqrt(perMeterL/perMeterC)
	} else {
		lMax = math.Inf(1)
	}
	return lMin, lMax, nil
}

// Stats summarizes screening over a batch of nets.
type Stats struct {
	Total, NeedsRLC, InWindow, Underdamped int
}

// FractionRLC returns the fraction of nets needing RLC analysis.
func (s Stats) FractionRLC() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.NeedsRLC) / float64(s.Total)
}

// Batch screens many driven lines with a common rise time. The nets are
// checked in parallel on the shared worker pool (internal/pool); the
// verdicts land in per-net slots and are folded in index order, so the
// statistics are identical for every GOMAXPROCS setting.
func Batch(lines []tline.Line, drives []tline.Drive, riseTime float64) (Stats, error) {
	res, err := BatchResults(lines, drives, riseTime)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for i := range res {
		st.Total++
		if res[i].NeedsRLC {
			st.NeedsRLC++
		}
		if res[i].InWindow {
			st.InWindow++
		}
		if res[i].Underdamped {
			st.Underdamped++
		}
	}
	return st, nil
}

// BatchResults screens many driven lines in parallel and returns the
// per-net verdicts in input order.
func BatchResults(lines []tline.Line, drives []tline.Drive, riseTime float64) ([]Result, error) {
	if len(lines) != len(drives) {
		return nil, fmt.Errorf("screen: %d lines vs %d drives", len(lines), len(drives))
	}
	out := make([]Result, len(lines))
	err := pool.Run(0, len(lines), func() struct{} { return struct{}{} },
		func(_ struct{}, i int) error {
			r, err := Check(lines[i], drives[i], riseTime)
			if err != nil {
				return fmt.Errorf("screen: net %d: %w", i, err)
			}
			out[i] = r
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}
