package screen

import (
	"math"
	"testing"

	"rlckit/internal/netgen"
	"rlckit/internal/tech"
	"rlckit/internal/tline"
)

// wideWire is a low-loss clock-style conductor: inductance should matter
// at cm lengths with fast edges.
var wideWire = tline.Line{R: 4e3, L: 3e-7, C: 1.5e-10, Length: 0.01}

// thinWire is a minimum-pitch resistive signal wire: RC territory.
var thinWire = tline.Line{R: 2e5, L: 6e-7, C: 1.5e-10, Length: 0.01}

func TestWideFastLineNeedsRLC(t *testing.T) {
	d := tline.Drive{Rtr: 20, CL: 1e-14}
	r, err := Check(wideWire, d, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !r.NeedsRLC || !r.InWindow {
		t.Errorf("wide fast line screened RC-adequate: %+v", r)
	}
}

func TestResistiveLineIsRCAdequate(t *testing.T) {
	d := tline.Drive{Rtr: 500, CL: 1e-13}
	r, err := Check(thinWire, d, 100e-12)
	if err != nil {
		t.Fatal(err)
	}
	if r.InWindow {
		t.Errorf("thin resistive wire in inductance window: %+v", r)
	}
	if r.NeedsRLC {
		t.Errorf("thin resistive wire flagged RLC: ζ=%.2f", r.Zeta)
	}
}

func TestSlowEdgeSuppressesInductance(t *testing.T) {
	// Same wide wire, but a very slow input edge: the window's lower
	// bound moves past the line length.
	d := tline.Drive{Rtr: 200, CL: 1e-13}
	fast, err := Check(wideWire, d, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Check(wideWire, d, 10e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.InWindow {
		t.Error("fast edge should be in window")
	}
	if slow.InWindow {
		t.Error("slow edge should fall out of the window")
	}
	if slow.LMin <= fast.LMin {
		t.Error("LMin must grow with rise time")
	}
}

func TestWindowBoundsFormula(t *testing.T) {
	lMin, lMax, err := WindowForWire(4e3, 3e-7, 1.5e-10, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := 20e-12 / (2 * math.Sqrt(3e-7*1.5e-10))
	wantMax := 2.0 / 4e3 * math.Sqrt(3e-7/1.5e-10)
	if math.Abs(lMin-wantMin) > 1e-12*wantMin {
		t.Errorf("LMin %g want %g", lMin, wantMin)
	}
	if math.Abs(lMax-wantMax) > 1e-12*wantMax {
		t.Errorf("LMax %g want %g", lMax, wantMax)
	}
	// Lossless wire: infinite upper bound.
	_, lMaxInf, err := WindowForWire(0, 3e-7, 1.5e-10, 20e-12)
	if err != nil || !math.IsInf(lMaxInf, 1) {
		t.Errorf("lossless LMax %g, %v", lMaxInf, err)
	}
}

func TestCheckValidation(t *testing.T) {
	d := tline.Drive{}
	if _, err := Check(tline.Line{}, d, 1e-12); err == nil {
		t.Error("bad line accepted")
	}
	if _, err := Check(wideWire, tline.Drive{Rtr: -1}, 1e-12); err == nil {
		t.Error("bad drive accepted")
	}
	if _, err := Check(wideWire, d, 0); err == nil {
		t.Error("zero rise time accepted")
	}
	if _, _, err := WindowForWire(1, 0, 1, 1e-12); err == nil {
		t.Error("zero L accepted")
	}
	if _, _, err := WindowForWire(1, 1e-7, 1e-10, -1); err == nil {
		t.Error("negative tr accepted")
	}
}

func TestBatchAndStats(t *testing.T) {
	node := tech.Default()
	nets, err := netgen.RandomBatch(19, node, 60)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]tline.Line, len(nets))
	drives := make([]tline.Drive, len(nets))
	for i, n := range nets {
		lines[i] = n.Line
		drives[i] = n.Drive
	}
	st, err := Batch(lines, drives, 50e-12)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 60 {
		t.Errorf("total %d", st.Total)
	}
	if st.NeedsRLC < st.InWindow || st.NeedsRLC < st.Underdamped {
		t.Errorf("inconsistent counts %+v", st)
	}
	if f := st.FractionRLC(); f < 0 || f > 1 {
		t.Errorf("fraction %g", f)
	}
	if (Stats{}).FractionRLC() != 0 {
		t.Error("empty fraction")
	}
	if _, err := Batch(lines[:2], drives[:1], 1e-12); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFasterEdgesFlagMoreNets(t *testing.T) {
	// Scaling story: the same net population with faster edges must not
	// reduce the RLC-needed fraction.
	node := tech.Default()
	nets, err := netgen.RandomBatch(7, node, 80)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]tline.Line, len(nets))
	drives := make([]tline.Drive, len(nets))
	for i, n := range nets {
		lines[i] = n.Line
		drives[i] = n.Drive
	}
	slow, err := Batch(lines, drives, 200e-12)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Batch(lines, drives, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NeedsRLC < slow.NeedsRLC {
		t.Errorf("faster edges flagged fewer nets: %d vs %d", fast.NeedsRLC, slow.NeedsRLC)
	}
}
