package cache

import (
	"testing"
)

func TestRangeVisitsEverything(t *testing.T) {
	c := New[int, string](640)
	want := map[int]string{}
	for i := 0; i < 40; i++ {
		c.Put(i, string(rune('a'+i%26)))
		want[i] = string(rune('a' + i%26))
	}
	got := map[int]string{}
	c.Range(func(k int, v string) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %q, want %q", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	c := New[int, int](64)
	for i := 0; i < 32; i++ {
		c.Put(i, i)
	}
	n := 0
	c.Range(func(int, int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d entries after early stop, want 5", n)
	}
}

func TestRangeDoesNotTouchRecencyOrStats(t *testing.T) {
	c := New[int, int](shardCount) // one entry per shard
	c.Put(1, 1)
	c.Put(2, 2)
	before := c.Stats()
	c.Range(func(int, int) bool { return true })
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("Range moved counters: %+v -> %+v", before, after)
	}
}
