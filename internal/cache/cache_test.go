package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New[string, int](32)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Put did not refresh: got %d, want 2", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 2 hits, 1 miss", st)
	}
	if st.Len != 1 {
		t.Fatalf("Len = %d, want 1", st.Len)
	}
}

// TestEvictionOrder pins LRU semantics on a single shard: the
// least-recently-*used* entry goes first, and Get refreshes recency.
func TestEvictionOrder(t *testing.T) {
	var s shard[string, int]
	s.init(2)
	put := func(k string, v int) {
		if e, ok := s.items[k]; ok {
			e.val = v
			s.unlink(e)
			s.pushFront(e)
			return
		}
		if len(s.items) >= s.capacity {
			victim := s.sentinel.prev
			s.unlink(victim)
			delete(s.items, victim.key)
		}
		e := &entry[string, int]{key: k, val: v}
		s.items[k] = e
		s.pushFront(e)
	}
	get := func(k string) bool {
		e, ok := s.items[k]
		if ok {
			s.unlink(e)
			s.pushFront(e)
		}
		return ok
	}

	put("a", 1)
	put("b", 2)
	get("a") // a is now more recent than b
	put("c", 3)
	if get("b") {
		t.Error("b should have been evicted (least recently used)")
	}
	if !get("a") || !get("c") {
		t.Error("a and c should survive")
	}
}

// TestCapacityBound fills far past capacity and checks the bound holds
// and evictions are counted.
func TestCapacityBound(t *testing.T) {
	const capacity = 64
	c := New[int, int](capacity)
	const n = 10 * capacity
	for i := 0; i < n; i++ {
		c.Put(i, i)
	}
	if got := c.Len(); got > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", got, capacity)
	}
	st := c.Stats()
	if int(st.Evictions)+st.Len != n {
		t.Fatalf("evictions(%d) + len(%d) != inserts(%d)", st.Evictions, st.Len, n)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 100; i++ {
		c.Put(i, i)
	}
	if c.Len() < 1 {
		t.Fatal("tiny cache caches nothing")
	}
	if c.Len() > shardCount {
		t.Fatalf("Len = %d, want <= %d", c.Len(), shardCount)
	}
}

// TestConcurrent hammers the cache from many goroutines (run under
// -race by the CI race job): values must never cross keys, the
// capacity bound must hold, and the counters must balance exactly.
func TestConcurrent(t *testing.T) {
	const (
		workers  = 8
		rounds   = 2000
		keyspace = 300
		capacity = 128
	)
	c := New[int, int](capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (w*31 + i*17) % keyspace
				if v, ok := c.Get(k); ok && v != k*7 {
					t.Errorf("Get(%d) = %d, want %d (cross-key aliasing)", k, v, k*7)
					return
				}
				c.Put(k, k*7)
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*rounds {
		t.Errorf("hits(%d)+misses(%d) != gets(%d)", st.Hits, st.Misses, workers*rounds)
	}
	if st.Len > capacity {
		t.Errorf("Len = %d exceeds capacity %d", st.Len, capacity)
	}
	if st.Hits == 0 {
		t.Error("no hits at all over a keyspace ~2x capacity — LRU reuse broken")
	}
}

// TestStructKeys uses a float-bearing struct key — the serving layer's
// actual key shape — and checks that near-identical keys stay distinct.
func TestStructKeys(t *testing.T) {
	type key struct {
		R, L, C, Length float64
		Method          string
	}
	c := New[key, string](64)
	a := key{R: 25e3, L: 5e-7, C: 1e-10, Length: 0.01, Method: "auto"}
	b := a
	b.Length = 0.010000000000001
	c.Put(a, "A")
	c.Put(b, "B")
	if v, ok := c.Get(a); !ok || v != "A" {
		t.Fatalf("Get(a) = %q, %v; want A", v, ok)
	}
	if v, ok := c.Get(b); !ok || v != "B" {
		t.Fatalf("Get(b) = %q, %v; want B", v, ok)
	}
}

func BenchmarkGetHit(b *testing.B) {
	type key struct {
		R, L, C, Length, Rtr, CL float64
		Method                   uint8
	}
	c := New[key, []byte](1024)
	k := key{R: 25e3, L: 5e-7, C: 1e-10, Length: 0.01, Rtr: 250, CL: 1e-13}
	c.Put(k, []byte(`{"delay":1.23e-10}`))
	b.ReportAllocs()
	for b.Loop() {
		if _, ok := c.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPutChurn(b *testing.B) {
	c := New[int, int](1024)
	b.ReportAllocs()
	i := 0
	for b.Loop() {
		c.Put(i, i)
		i++
	}
}

func ExampleCache() {
	c := New[string, int](128)
	c.Put("net1/delay", 42)
	if v, ok := c.Get("net1/delay"); ok {
		fmt.Println(v)
	}
	// Output: 42
}
