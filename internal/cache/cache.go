// Package cache is rlckit's serving-layer result cache: a sharded LRU
// keyed by canonical request values. The serving layer (internal/serve)
// stores fully rendered response bodies under a comparable key struct
// built from the request's (Line, Drive, config) triple, so a repeated
// analysis question costs one map lookup instead of a delay computation.
//
// Design notes:
//
//   - Keys are comparable structs, not pre-hashed integers: the shard
//     index and map bucket both derive from hash/maphash.Comparable, but
//     the map stores the full key, so two requests whose canonical
//     values differ can never alias — a 64-bit digest alone could.
//   - The cache is sharded to keep lock hold times short under
//     concurrent serving traffic; each shard is an independent mutex +
//     map + intrusive doubly-linked LRU list, and capacity is divided
//     evenly across shards.
//   - Hit/miss/eviction counters are lock-free atomics, cheap enough to
//     leave on in production and exported by cmd/rlckitd via expvar.
package cache

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// shardCount is the fixed shard fan-out. 16 shards keep contention
// negligible for the worker counts the serving layer runs (the pool is
// bounded by GOMAXPROCS) while wasting at most 15 entries of rounding.
const shardCount = 16

// Stats is a point-in-time snapshot of cache effectiveness counters.
// The JSON names match the serving layer's snake_case wire format
// (cmd/rlckitd exports Stats through expvar).
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// displaced by Put on a full shard.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Len is the current number of cached entries; Capacity the
	// configured bound.
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
}

// entry is one cached key/value pair, threaded on its shard's LRU list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// shard is one lock domain: a map for lookup plus a doubly-linked list
// in recency order (head = most recent, tail = eviction victim). The
// list uses a sentinel node so link/unlink needs no nil branches.
type shard[K comparable, V any] struct {
	mu       sync.Mutex
	items    map[K]*entry[K, V]
	sentinel entry[K, V] // sentinel.next = MRU, sentinel.prev = LRU
	capacity int
}

func (s *shard[K, V]) init(capacity int) {
	s.items = make(map[K]*entry[K, V], capacity)
	s.sentinel.next = &s.sentinel
	s.sentinel.prev = &s.sentinel
	s.capacity = capacity
}

func (s *shard[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = &s.sentinel
	e.next = s.sentinel.next
	e.next.prev = e
	s.sentinel.next = e
}

// Cache is a sharded LRU from comparable keys to values. The zero value
// is not usable; construct with New.
type Cache[K comparable, V any] struct {
	shards   [shardCount]shard[K, V]
	seed     maphash.Seed
	capacity int
	hits     atomic.Uint64
	misses   atomic.Uint64
	evicted  atomic.Uint64
}

// New returns a cache holding at most capacity entries (minimum
// shardCount: every shard holds at least one entry so small caches
// still cache).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < shardCount {
		capacity = shardCount
	}
	c := &Cache[K, V]{seed: maphash.MakeSeed(), capacity: capacity}
	per := capacity / shardCount
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

func (c *Cache[K, V]) shardFor(k K) *shard[K, V] {
	return &c.shards[maphash.Comparable(c.seed, k)%shardCount]
}

// Get returns the cached value for k, marking it most-recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	s.unlink(e)
	s.pushFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts or refreshes k's value, evicting the shard's
// least-recently-used entry when the shard is full.
func (c *Cache[K, V]) Put(k K, v V) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		e.val = v
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		return
	}
	evicted := false
	if len(s.items) >= s.capacity {
		victim := s.sentinel.prev
		s.unlink(victim)
		delete(s.items, victim.key)
		evicted = true
	}
	e := &entry[K, V]{key: k, val: v}
	s.items[k] = e
	s.pushFront(e)
	s.mu.Unlock()
	if evicted {
		c.evicted.Add(1)
	}
}

// Range calls fn for every cached entry, shard by shard in
// most-to-least-recently-used order within each shard, stopping early
// when fn returns false. Each shard's entries are copied out under its
// lock in one batch, so fn itself runs without holding any cache lock
// (it may Get/Put) and a Range under concurrent traffic sees each
// shard at one instant. Range does not touch recency or the hit/miss
// counters — the serving layer's periodic snapshots must observe the
// cache, not reorder it.
func (c *Cache[K, V]) Range(fn func(k K, v V) bool) {
	type pair struct {
		k K
		v V
	}
	var buf []pair
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		buf = buf[:0]
		for e := s.sentinel.next; e != &s.sentinel; e = e.next {
			buf = append(buf, pair{e.key, e.val})
		}
		s.mu.Unlock()
		for _, p := range buf {
			if !fn(p.k, p.v) {
				return
			}
		}
	}
}

// Len returns the total number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the effectiveness counters. The counters are
// independently atomic, so a snapshot taken under concurrent traffic is
// approximate but each counter is exact.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
		Len:       c.Len(),
		Capacity:  c.capacity,
	}
}
