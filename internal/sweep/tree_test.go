package sweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"rlckit/internal/netgen"
	"rlckit/internal/tech"
)

func treePopulation(t *testing.T, n int) []netgen.TreeNet {
	t.Helper()
	trees, err := netgen.RandomTreeBatch(7, tech.Default(), netgen.TreeClockH, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	return trees
}

func TestRunTreesBasic(t *testing.T) {
	trees := treePopulation(t, 12)
	res, err := RunTrees(trees, Config{
		Corners: DefaultCorners(),
		MC:      MonteCarlo{Samples: 3, Seed: 11, RSigma: 0.08, CSigma: 0.08, DriveSigma: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 12 * 3 * 3
	if len(res.Samples) != want {
		t.Fatalf("got %d samples, want %d", len(res.Samples), want)
	}
	if res.MaxSkew.N != want || res.MaxSkew.Min < 0 {
		t.Errorf("bad skew summary: %+v", res.MaxSkew)
	}
	if res.MaxDelay.Min <= 0 {
		t.Errorf("critical delay must be positive, got %g", res.MaxDelay.Min)
	}
	for i := range res.Samples {
		s := &res.Samples[i]
		if s.MaxDelay < s.MinDelay || s.MaxSkew != s.MaxDelay-s.MinDelay {
			t.Fatalf("sample %d: inconsistent delays %+v", i, s)
		}
		if s.Sinks != 4 {
			t.Fatalf("sample %d: %d sinks, want 4", i, s.Sinks)
		}
	}
	var buf bytes.Buffer
	if err := res.RenderSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty summary")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty CSV")
	}
}

// TestRunTreesDeterministic: a tree sweep must be byte-identical at
// every worker count.
func TestRunTreesDeterministic(t *testing.T) {
	trees := treePopulation(t, 8)
	cfg := Config{
		Corners: DefaultCorners(),
		MC:      MonteCarlo{Samples: 2, Seed: 3, RSigma: 0.1, LSigma: 0.05, CSigma: 0.1, DriveSigma: 0.1},
	}
	var ref []byte
	for _, workers := range []int{1, 3, 8} {
		cfg.Workers = workers
		res, err := RunTrees(trees, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatalf("results differ at %d workers", workers)
		}
	}
}

// TestRunTreesSmartFallsBack: the smart estimator must re-run
// out-of-domain samples on the exact engine.
func TestRunTreesSmartFallsBack(t *testing.T) {
	trees, err := netgen.RandomTreeBatch(5, tech.Default(), netgen.TreeUnbalanced, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTrees(trees, Config{Estimator: EstimatorSmart, MC: MonteCarlo{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for i := range res.Samples {
		if res.Samples[i].UsedExact {
			exact++
		}
	}
	if exact == 0 {
		t.Error("smart estimator never fell back on an unbalanced population")
	}
}

func TestRunTreesErrors(t *testing.T) {
	if _, err := RunTrees(nil, Config{}); err == nil {
		t.Error("empty population must error")
	}
	trees := treePopulation(t, 2)
	if _, err := RunTrees(trees, Config{Corners: []Corner{{Name: "bad"}}}); err == nil {
		t.Error("invalid corner must error")
	}
	if _, err := RunTrees(trees, Config{MC: MonteCarlo{RSigma: -1}}); err == nil {
		t.Error("invalid MC must error")
	}
}
