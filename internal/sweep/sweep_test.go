package sweep

import (
	"math"
	"strings"
	"testing"

	"rlckit/internal/netgen"
	"rlckit/internal/repeater"
	"rlckit/internal/tech"
)

func testNets(t testing.TB, n int) []netgen.Net {
	t.Helper()
	nets, err := netgen.RandomBatch(2026, tech.Default(), n)
	if err != nil {
		t.Fatal(err)
	}
	return nets
}

func testConfig() Config {
	return Config{
		RiseTime: 50e-12,
		Corners:  DefaultCorners(),
		MC: MonteCarlo{
			Samples: 3, Seed: 7,
			RSigma: 0.1, LSigma: 0.05, CSigma: 0.08, DriveSigma: 0.12,
		},
	}
}

func TestRunShapeAndOrdering(t *testing.T) {
	nets := testNets(t, 40)
	cfg := testConfig()
	res, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 40 * 3 * 3
	if len(res.Samples) != want {
		t.Fatalf("%d samples, want %d", len(res.Samples), want)
	}
	if res.Screen.Total != want {
		t.Errorf("screen total %d", res.Screen.Total)
	}
	// Net-major ordering: index = (net*corners + corner)*draws + draw.
	for i, s := range res.Samples {
		wantIdx := (s.Net*3+s.Corner)*3 + s.Draw
		if i != wantIdx {
			t.Fatalf("sample %d carries indices (%d,%d,%d)", i, s.Net, s.Corner, s.Draw)
		}
	}
	if len(res.NetNames) != 40 || res.NetNames[0] == "" {
		t.Errorf("net names %v...", res.NetNames[:1])
	}
}

func TestSamplesAreAnalyzed(t *testing.T) {
	nets := testNets(t, 30)
	res, err := Run(nets, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Samples {
		if s.DelayRLC <= 0 || math.IsNaN(s.DelayRLC) {
			t.Fatalf("sample %d: RLC delay %g", i, s.DelayRLC)
		}
		if s.DelayRC <= 0 || math.IsNaN(s.DelayRC) {
			t.Fatalf("sample %d: RC delay %g", i, s.DelayRC)
		}
		if s.Zeta <= 0 {
			t.Fatalf("sample %d: ζ=%g", i, s.Zeta)
		}
		if s.Line.R <= 0 || s.Line.L <= 0 || s.Line.C <= 0 {
			t.Fatalf("sample %d: unphysical perturbed line %+v", i, s.Line)
		}
	}
	if res.Delay.N == 0 || res.RCErr.N == 0 {
		t.Error("empty aggregate summaries")
	}
	if res.AbsRCErr.Min < 0 {
		t.Errorf("|err| min %g", res.AbsRCErr.Min)
	}
	if res.FracErrOver20 > res.FracErrOver10 {
		t.Errorf("exceedance fractions inverted: %g > %g", res.FracErrOver20, res.FracErrOver10)
	}
}

func TestCornersShiftTheDistribution(t *testing.T) {
	nets := testNets(t, 60)
	cfg := Config{RiseTime: 50e-12, Corners: DefaultCorners(), MC: MonteCarlo{Seed: 1}}
	res, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tt, ss CornerStats
	for _, cs := range res.PerCorner {
		switch cs.Corner.Name {
		case "tt":
			tt = cs
		case "ss":
			ss = cs
		}
	}
	// The slow corner (more R and C, weaker drivers) must be slower in
	// the median.
	if ss.Delay.Median <= tt.Delay.Median {
		t.Errorf("ss median delay %g not above tt %g", ss.Delay.Median, tt.Delay.Median)
	}
}

func TestRepeaterStats(t *testing.T) {
	nets := testNets(t, 20)
	cfg := testConfig()
	b := tech.Default().Buffer()
	cfg.Buffer = &b
	res, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepKRatio.N == 0 {
		t.Fatal("no repeater statistics")
	}
	// RC-only design always calls for at least as many repeaters
	// (k' factor <= 1), so every ratio is >= 1.
	if res.RepKRatio.Min < 1 {
		t.Errorf("k_RC/k_RLC min %g < 1", res.RepKRatio.Min)
	}
	if res.RepDelayInc.Min < 0 {
		t.Errorf("negative delay increase %g", res.RepDelayInc.Min)
	}
	for _, s := range res.Samples {
		if s.RepKRLC <= 0 || s.RepKRC <= 0 {
			t.Fatalf("sample missing repeater plan: %+v", s)
		}
	}
}

func TestExactModeFallsBackOutsideDomain(t *testing.T) {
	// A small population in Exact mode: delays must stay positive and
	// the UsedExact flag must appear for at least the out-of-domain nets
	// of this seed (seed 2026 population has RT > 1 nets).
	nets := testNets(t, 8)
	cfg := Config{RiseTime: 50e-12, MC: MonteCarlo{Seed: 3}, Exact: true}
	res, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Samples {
		if s.DelayRLC <= 0 {
			t.Fatalf("sample %d: exact delay %g", i, s.DelayRLC)
		}
	}
}

func TestRunValidation(t *testing.T) {
	nets := testNets(t, 3)
	if _, err := Run(nil, testConfig()); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := Run(nets, Config{RiseTime: 0}); err == nil {
		t.Error("zero rise time accepted")
	}
	if _, err := Run(nets, Config{RiseTime: 1e-12, Corners: []Corner{{Name: "bad"}}}); err == nil {
		t.Error("zero-scale corner accepted")
	}
	if _, err := Run(nets, Config{RiseTime: 1e-12, MC: MonteCarlo{RSigma: -1}}); err == nil {
		t.Error("negative sigma accepted")
	}
	bad := repeater.Buffer{}
	if _, err := Run(nets, Config{RiseTime: 1e-12, Buffer: &bad}); err == nil {
		t.Error("invalid buffer accepted")
	}
}

func TestSummaryAndCSVRendering(t *testing.T) {
	nets := testNets(t, 15)
	cfg := testConfig()
	b := tech.Default().Buffer()
	cfg.Buffer = &b
	res, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.RenderSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Population screening", "needsRLC",
		"Delay and RC-model error distributions",
		"RC-only timing error exceedance",
		"RC error (%) by corner",
		"Repeater insertion", "histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(res.Samples) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(res.Samples))
	}
	if !strings.HasPrefix(lines[0], "net_idx,net,corner,draw,") {
		t.Errorf("CSV header %q", lines[0])
	}
	if cols := strings.Count(lines[0], ","); strings.Count(lines[1], ",") != cols {
		t.Error("CSV row/header column mismatch")
	}
}

func TestCSVFieldQuoting(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"a,b":        "\"a,b\"",
		"x\"y":       "\"x\"\"y\"",
		"line\nfeed": "\"line\nfeed\"",
	}
	for in, want := range cases {
		if got := csvField(in); got != want {
			t.Errorf("csvField(%q) = %q, want %q", in, got, want)
		}
	}
}
