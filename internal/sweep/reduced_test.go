package sweep

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"rlckit/internal/netgen"
	"rlckit/internal/tech"
)

func reducedTestPopulation(t testing.TB, n int) []netgen.Net {
	t.Helper()
	node, err := tech.Lookup("250nm")
	if err != nil {
		t.Fatal(err)
	}
	nets, err := netgen.RandomBatch(7, node, n)
	if err != nil {
		t.Fatal(err)
	}
	return nets
}

func reducedTestConfig() Config {
	return Config{
		RiseTime:  5e-11,
		Corners:   DefaultCorners(),
		MC:        MonteCarlo{Samples: 2, Seed: 1, RSigma: 0.1, CSigma: 0.1, DriveSigma: 0.1},
		Estimator: EstimatorReduced,
	}
}

// TestReducedSweepAccuracyVsSimulated: the reduced estimator must track
// per-sample exact-engine delays across the whole population — tightly
// on average, bounded in the tail — and account for every sample as
// either reduced or fallback.
func TestReducedSweepAccuracyVsSimulated(t *testing.T) {
	nets := reducedTestPopulation(t, 25)
	cfg := reducedTestConfig()
	red, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Estimator = EstimatorSimulated
	sim, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := red.ReducedSamples + red.ReducedFallbacks; got != len(red.Samples) {
		t.Errorf("sample accounting: %d reduced + %d fallbacks != %d samples",
			red.ReducedSamples, red.ReducedFallbacks, len(red.Samples))
	}
	if red.ReducedSamples < len(red.Samples)/2 {
		t.Errorf("reduced engine answered only %d of %d samples", red.ReducedSamples, len(red.Samples))
	}
	mean, worst := 0.0, 0.0
	for i := range sim.Samples {
		e := math.Abs(red.Samples[i].DelayRLC-sim.Samples[i].DelayRLC) / sim.Samples[i].DelayRLC * 100
		mean += e
		if e > worst {
			worst = e
		}
	}
	mean /= float64(len(sim.Samples))
	t.Logf("%d samples: mean err %.3f%%, worst %.2f%%, %d reduced / %d fallbacks",
		len(sim.Samples), mean, worst, red.ReducedSamples, red.ReducedFallbacks)
	if mean > 1 {
		t.Errorf("mean reduced-vs-simulated delay error %.3f%% > 1%%", mean)
	}
	if worst > 5 {
		t.Errorf("worst reduced-vs-simulated delay error %.2f%% > 5%%", worst)
	}
}

// TestReducedSweepDeterministicAcrossWorkers: the reduced estimator
// must keep the sweep's byte-identical determinism contract at any
// worker count.
func TestReducedSweepDeterministicAcrossWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	nets := reducedTestPopulation(t, 8)
	var results []*Result
	for _, workers := range []int{1, 3, 8} {
		cfg := reducedTestConfig()
		cfg.Workers = workers
		res, err := Run(nets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0].Samples, results[i].Samples) {
			t.Fatalf("samples differ between worker counts 1 and %d", []int{1, 3, 8}[i])
		}
		if !reflect.DeepEqual(results[0].Delay, results[i].Delay) ||
			results[0].ReducedSamples != results[i].ReducedSamples {
			t.Fatalf("aggregates differ between worker counts")
		}
	}
}

// TestEstimatorResolution: the legacy Exact flag maps to Smart, and the
// labels are stable (they appear in logs and docs).
func TestEstimatorResolution(t *testing.T) {
	c := Config{Exact: true}
	if c.estimator() != EstimatorSmart {
		t.Errorf("legacy Exact flag resolved to %v", c.estimator())
	}
	c = Config{Exact: true, Estimator: EstimatorReduced}
	if c.estimator() != EstimatorReduced {
		t.Errorf("explicit estimator overridden by legacy flag: %v", c.estimator())
	}
	for e, want := range map[Estimator]string{
		EstimatorClosed:    "closed",
		EstimatorSmart:     "smart",
		EstimatorSimulated: "simulated",
		EstimatorReduced:   "reduced",
		Estimator(9):       "Estimator(9)",
	} {
		if got := e.String(); got != want {
			t.Errorf("Estimator(%d).String() = %q, want %q", int(e), got, want)
		}
	}
}
