package sweep

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rlckit/internal/netgen"
	"rlckit/internal/report"
	"rlckit/internal/screen"
)

// CornerStats aggregates one corner's slice of the sweep.
type CornerStats struct {
	Corner Corner
	// Screen tallies the screening verdicts for the corner's samples.
	Screen screen.Stats
	// Delay summarizes the RLC delay in seconds; RCErr the signed
	// RC-vs-RLC error percentage.
	Delay, RCErr report.Summary
}

// Result is a completed sweep: the raw per-sample records (net-major
// order) plus the population statistics computed from them. All
// aggregates are computed from the index-ordered sample slice, so they
// are identical for every worker count.
type Result struct {
	// NetNames records the population (index-aligned with Sample.Net).
	NetNames []string
	// Corners and Draws record the sweep dimensions.
	Corners []Corner
	Draws   int
	// Samples holds every (net, corner, draw) record.
	Samples []Sample
	// Screen tallies screening verdicts over all samples.
	Screen screen.Stats
	// Delay and DelayRC summarize the RLC and RC-only delays (seconds).
	Delay, DelayRC report.Summary
	// RCErr and AbsRCErr summarize the signed and absolute RC-vs-RLC
	// error percentage — the paper's headline population statistic.
	RCErr, AbsRCErr report.Summary
	// FracErrOver10, FracErrOver20 are the fractions of samples whose
	// |RC error| exceeds 10% and 20%.
	FracErrOver10, FracErrOver20 float64
	// RepKRatio and RepDelayInc summarize repeater mis-sizing
	// (kRC/kRLC) and the Eq. 17 delay increase percentage; populated
	// only when the sweep ran with a Buffer.
	RepKRatio, RepDelayInc report.Summary
	// ReducedSamples and ReducedFallbacks count, under
	// EstimatorReduced, the samples answered by the frozen-basis
	// reduced model and those that fell back to the exact engine.
	ReducedSamples, ReducedFallbacks int
	// PerCorner breaks the population statistics out by corner.
	PerCorner []CornerStats
}

func aggregate(nets []netgen.Net, corners []Corner, draws int, samples []Sample, cfg *Config) *Result {
	res := &Result{
		NetNames: make([]string, len(nets)),
		Corners:  corners,
		Draws:    draws,
		Samples:  samples,
	}
	for i, n := range nets {
		res.NetNames[i] = n.Name
	}
	n := len(samples)
	delays := make([]float64, n)
	delaysRC := make([]float64, n)
	errs := make([]float64, n)
	absErrs := make([]float64, n)
	res.PerCorner = make([]CornerStats, len(corners))
	perCorner := n / len(corners)
	cornerDelays := make([][]float64, len(corners))
	cornerErrs := make([][]float64, len(corners))
	for ci := range corners {
		res.PerCorner[ci].Corner = corners[ci]
		cornerDelays[ci] = make([]float64, 0, perCorner)
		cornerErrs[ci] = make([]float64, 0, perCorner)
	}
	for i := range samples {
		s := &samples[i]
		delays[i] = s.DelayRLC
		delaysRC[i] = s.DelayRC
		errs[i] = s.RCErrPct
		absErrs[i] = math.Abs(s.RCErrPct)
		if s.Reduced {
			res.ReducedSamples++
		} else if cfg.estimator() == EstimatorReduced {
			res.ReducedFallbacks++
		}
		tallyScreen(&res.Screen, s)
		tallyScreen(&res.PerCorner[s.Corner].Screen, s)
		cornerDelays[s.Corner] = append(cornerDelays[s.Corner], s.DelayRLC)
		cornerErrs[s.Corner] = append(cornerErrs[s.Corner], s.RCErrPct)
	}
	for ci := range corners {
		res.PerCorner[ci].Delay = report.Summarize(cornerDelays[ci])
		res.PerCorner[ci].RCErr = report.Summarize(cornerErrs[ci])
	}
	res.Delay = report.Summarize(delays)
	res.DelayRC = report.Summarize(delaysRC)
	res.RCErr = report.Summarize(errs)
	res.AbsRCErr = report.Summarize(absErrs)
	res.FracErrOver10 = report.FractionAbove(absErrs, 10)
	res.FracErrOver20 = report.FractionAbove(absErrs, 20)

	if cfg.Buffer != nil {
		ratios := make([]float64, 0, n)
		incs := make([]float64, 0, n)
		for i := range samples {
			s := &samples[i]
			if s.RepKRLC > 0 {
				ratios = append(ratios, s.RepKRC/s.RepKRLC)
				incs = append(incs, s.RepDelayIncPct)
			}
		}
		res.RepKRatio = report.Summarize(ratios)
		res.RepDelayInc = report.Summarize(incs)
	}

	return res
}

func tallyScreen(st *screen.Stats, s *Sample) {
	st.Total++
	if s.NeedsRLC {
		st.NeedsRLC++
	}
	if s.InWindow {
		st.InWindow++
	}
	if s.Underdamped {
		st.Underdamped++
	}
}

// SummaryTables renders the population statistics as report tables —
// the Table-1-style artifact cmd/netsweep prints.
func (r *Result) SummaryTables() []*report.Table {
	var tables []*report.Table

	pop := report.NewTable(
		fmt.Sprintf("Population screening (%d nets × %d corners × %d draws = %d samples)",
			len(r.NetNames), len(r.Corners), r.Draws, len(r.Samples)),
		"corner", "samples", "needsRLC", "frac", "inWindow", "underdamped")
	for _, cs := range r.PerCorner {
		pop.AddRow(cs.Corner.Name, cs.Screen.Total, cs.Screen.NeedsRLC,
			cs.Screen.FractionRLC(), cs.Screen.InWindow, cs.Screen.Underdamped)
	}
	pop.AddRow("all", r.Screen.Total, r.Screen.NeedsRLC,
		r.Screen.FractionRLC(), r.Screen.InWindow, r.Screen.Underdamped)
	tables = append(tables, pop)

	dist := report.NewTable("Delay and RC-model error distributions",
		report.SummaryHeaders("metric")...)
	report.AddSummaryRow(dist, "delay RLC (s)", r.Delay)
	report.AddSummaryRow(dist, "delay RC (s)", r.DelayRC)
	report.AddSummaryRow(dist, "RC err (%)", r.RCErr)
	report.AddSummaryRow(dist, "|RC err| (%)", r.AbsRCErr)
	tables = append(tables, dist)

	frac := report.NewTable("RC-only timing error exceedance",
		"threshold", "fraction of samples")
	frac.AddRow("|err| > 10%", r.FracErrOver10)
	frac.AddRow("|err| > 20%", r.FracErrOver20)
	tables = append(tables, frac)

	byCorner := report.NewTable("RC error (%) by corner", report.SummaryHeaders("corner")...)
	for _, cs := range r.PerCorner {
		report.AddSummaryRow(byCorner, cs.Corner.Name, cs.RCErr)
	}
	tables = append(tables, byCorner)

	if r.RepKRatio.N > 0 {
		rep := report.NewTable("Repeater insertion: RC-only design cost",
			report.SummaryHeaders("metric")...)
		report.AddSummaryRow(rep, "k_RC/k_RLC", r.RepKRatio)
		report.AddSummaryRow(rep, "delay incr (%)", r.RepDelayInc)
		tables = append(tables, rep)
	}
	return tables
}

// RenderSummary writes every summary table (and an RC-error histogram)
// to w.
func (r *Result) RenderSummary(w io.Writer) error {
	for _, t := range r.SummaryTables() {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	errsPct := make([]float64, len(r.Samples))
	for i := range r.Samples {
		errsPct[i] = r.Samples[i].RCErrPct
	}
	h := report.AutoHistogram(errsPct, 20)
	return h.Render("RC-vs-RLC delay error histogram (%)", 50, w)
}

// WriteCSV streams every sample as one CSV row. net_idx is the unique
// net identifier (netgen.RandomNet names collide heavily — group on the
// index, not the name); name fields are quoted when they contain CSV
// metacharacters.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"net_idx,net,corner,draw,length_m,r_per_m,l_per_m,c_per_m,rtr,cl,"+
			"rt,ct,zeta,delay_rlc_s,delay_rc_s,rc_err_pct,"+
			"needs_rlc,in_window,underdamped,tlr,k_rlc,k_rc,rep_delay_inc_pct\n"); err != nil {
		return err
	}
	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	for i := range r.Samples {
		s := &r.Samples[i]
		_, err := fmt.Fprintf(w,
			"%d,%s,%s,%d,%.6e,%.6e,%.6e,%.6e,%.6e,%.6e,%.4f,%.4f,%.4f,%.6e,%.6e,%.3f,%d,%d,%d,%.4f,%.3f,%.3f,%.3f\n",
			s.Net, csvField(r.NetNames[s.Net]), csvField(r.Corners[s.Corner].Name), s.Draw,
			s.Line.Length, s.Line.R, s.Line.L, s.Line.C, s.Drive.Rtr, s.Drive.CL,
			s.RT, s.CT, s.Zeta, s.DelayRLC, s.DelayRC, s.RCErrPct,
			b01(s.NeedsRLC), b01(s.InWindow), b01(s.Underdamped),
			s.TLR, s.RepKRLC, s.RepKRC, s.RepDelayIncPct)
		if err != nil {
			return err
		}
	}
	return nil
}

// csvField quotes a caller-controlled string when it contains CSV
// metacharacters, matching report.Table.WriteCSV's convention.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}
