package sweep

import (
	"fmt"
	"testing"

	"rlckit/internal/netgen"
	"rlckit/internal/tech"
)

// BenchmarkSweep10k is the acceptance benchmark: a 10k-net × 3-corner
// Monte Carlo sweep. The workers=N sub-benchmarks expose the parallel
// scaling; aggregate statistics are identical across them (enforced by
// determinism_test.go).
func BenchmarkSweep10k(b *testing.B) {
	nets, err := netgen.RandomBatch(1, tech.Default(), 10000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		RiseTime: 50e-12,
		Corners:  DefaultCorners(),
		MC: MonteCarlo{
			Samples: 1, Seed: 7,
			RSigma: 0.1, LSigma: 0.05, CSigma: 0.08, DriveSigma: 0.12,
		},
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg.Workers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(nets, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepWithRepeaters adds the per-sample repeater closed forms.
func BenchmarkSweepWithRepeaters(b *testing.B) {
	nets, err := netgen.RandomBatch(1, tech.Default(), 2000)
	if err != nil {
		b.Fatal(err)
	}
	buf := tech.Default().Buffer()
	cfg := Config{
		RiseTime: 50e-12,
		Corners:  DefaultCorners(),
		MC:       MonteCarlo{Samples: 2, Seed: 7, RSigma: 0.1},
		Buffer:   &buf,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(nets, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSimulated vs BenchmarkSweepReduced price the two
// simulation-grade estimators on a Monte Carlo-heavy population (many
// draws per net — the regime the frozen-basis reuse is built for: one
// certified reduction per net, every draw recombined through it in
// O(q²)).
func benchmarkSimGradeSweep(b *testing.B, est Estimator) {
	node, err := tech.Lookup("250nm")
	if err != nil {
		b.Fatal(err)
	}
	nets, err := netgen.RandomBatch(11, node, 6)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		RiseTime:  5e-11,
		MC:        MonteCarlo{Samples: 48, Seed: 3, RSigma: 0.08, CSigma: 0.08, DriveSigma: 0.08},
		Estimator: est,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(nets, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if est == EstimatorReduced && i == 0 {
			b.ReportMetric(float64(res.ReducedFallbacks), "fallbacks")
		}
	}
}

func BenchmarkSweepSimulated(b *testing.B) { benchmarkSimGradeSweep(b, EstimatorSimulated) }
func BenchmarkSweepReduced(b *testing.B)   { benchmarkSimGradeSweep(b, EstimatorReduced) }

// BenchmarkTreeSweep is the tree population mode's gated benchmark:
// 200 16-sink H-trees × 3 corners × 2 Monte Carlo draws through the
// closed-form engine on the shared pool.
func BenchmarkTreeSweep(b *testing.B) {
	trees, err := netgen.RandomTreeBatch(1, tech.Default(), netgen.TreeClockH, 16, 200)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Corners: DefaultCorners(),
		MC: MonteCarlo{
			Samples: 2, Seed: 7,
			RSigma: 0.1, LSigma: 0.05, CSigma: 0.08, DriveSigma: 0.12,
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrees(trees, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
