package sweep

import (
	"fmt"
	"io"
	"math/rand"

	"rlckit/internal/cancel"
	"rlckit/internal/netgen"
	"rlckit/internal/pool"
	"rlckit/internal/report"
	"rlckit/internal/rlctree"
)

// This file is the sweep engine's tree population mode: RunTrees
// carries multi-sink RLC trees (internal/rlctree) through the same
// nets × corners × Monte Carlo machinery the line sweep runs on — the
// same worker pool, the same per-index seed derivation, the same
// determinism contract — and aggregates per-sink delay and skew
// statistics instead of point-to-point delays.

// TreeSample is the analysis of one (tree, corner, draw) triple.
type TreeSample struct {
	// Tree, Corner and Draw index into the RunTrees inputs.
	Tree, Corner, Draw int
	// Sinks and InDomain count the tree's sinks and how many of them
	// sit inside the closed form's validated accuracy domain.
	Sinks, InDomain int
	// MinDelay/MaxDelay bound the per-sink delays (s); MaxSkew is
	// their difference and MaxSkewRC the RC-only counterfactual skew.
	MinDelay, MaxDelay, MaxSkew, MaxSkewRC float64
	// SkewErrPct is the signed skew error of ignoring inductance:
	// 100·(MaxSkewRC − MaxSkew)/MaxSkew.
	SkewErrPct float64
	// Reduced marks samples answered by the multi-output reduced
	// engine; UsedExact marks samples answered by the shared MNA
	// transient (the simulated estimator or a fallback).
	Reduced, UsedExact bool
}

// TreeResult is a completed tree sweep: per-sample records plus the
// population statistics computed from them, byte-identical at every
// worker count.
type TreeResult struct {
	// TreeNames records the population (index-aligned with
	// TreeSample.Tree).
	TreeNames []string
	// Corners and Draws record the sweep dimensions.
	Corners []Corner
	Draws   int
	// Samples holds every (tree, corner, draw) record.
	Samples []TreeSample
	// MaxDelay, MaxSkew and SkewErr summarize the per-sample critical
	// delay (s), sink-to-sink skew (s), and RC-only skew error (%).
	MaxDelay, MaxSkew, SkewErr report.Summary
	// InDomainFrac is the fraction of analyzed sinks inside the closed
	// form's accuracy domain.
	InDomainFrac float64
	// ReducedSamples and ReducedFallbacks count, under
	// EstimatorReduced, the samples answered by the reduced model and
	// those that fell back to the exact transient.
	ReducedSamples, ReducedFallbacks int
	// PerCorner breaks delay and skew statistics out by corner.
	PerCorner []TreeCornerStats
}

// TreeCornerStats aggregates one corner's slice of a tree sweep.
type TreeCornerStats struct {
	Corner            Corner
	MaxDelay, MaxSkew report.Summary
}

// treeEngine resolves a sweep estimator to a per-sample tree engine.
// Smart is resolved per sample (closed when every sink is in-domain,
// MNA otherwise), so it maps to the closed engine here.
func treeEngine(e Estimator) (rlctree.Engine, error) {
	switch e {
	case EstimatorClosed, EstimatorSmart:
		return rlctree.EngineClosed, nil
	case EstimatorSimulated:
		return rlctree.EngineMNA, nil
	case EstimatorReduced:
		return rlctree.EngineReduced, nil
	default:
		return 0, fmt.Errorf("sweep: unknown estimator %v", e)
	}
}

// RunTrees sweeps a tree population through every corner and Monte
// Carlo draw. Samples are ordered tree-major: index =
// (tree·len(corners) + corner)·draws + draw. Config.RiseTime is not
// used (trees carry no screening step); corners, MC, Workers and
// Estimator behave as in Run. Under EstimatorSmart a sample whose
// sinks are not all in-domain is re-run on the shared MNA transient.
func RunTrees(trees []netgen.TreeNet, cfg Config) (*TreeResult, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("sweep: empty tree population")
	}
	corners := cfg.Corners
	if len(corners) == 0 {
		corners = []Corner{Nominal()}
	}
	for _, c := range corners {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.MC.validate(); err != nil {
		return nil, err
	}
	est := cfg.estimator()
	engine, err := treeEngine(est)
	if err != nil {
		return nil, err
	}
	draws := cfg.MC.draws()
	perTree := len(corners) * draws
	samples := make([]TreeSample, len(trees)*perTree)
	stride := ctxStride(est)
	err = pool.RunCtx(cfg.Ctx, cfg.Workers, len(trees), pool.NewSeededRand, func(sc *pool.SeededRand, i int) error {
		base := i * perTree
		tick := 0
		for ci, c := range corners {
			for d := 0; d < draws; d++ {
				if tick%stride == 0 {
					if cerr := cancel.Check(cfg.Ctx); cerr != nil {
						return cerr
					}
				}
				tick++
				sc.Seed(pool.Seed(cfg.MC.Seed, int64(i), int64(ci), int64(d)))
				out := &samples[base+ci*draws+d]
				out.Tree, out.Corner, out.Draw = i, ci, d
				if err := evalTreeSample(trees[i], c, &cfg, est, engine, sc.Rand, out); err != nil {
					if cancel.Is(err) {
						return err
					}
					return fmt.Errorf("sweep: tree %d (%s) corner %s draw %d: %w",
						i, trees[i].Name, c.Name, d, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return aggregateTrees(trees, corners, draws, samples, est), nil
}

// evalTreeSample analyzes one perturbed tree instance. The RNG draw
// order (R, L, C, Rtr) matches evalSample's determinism contract.
func evalTreeSample(tn netgen.TreeNet, c Corner, cfg *Config, est Estimator, engine rlctree.Engine, rng *rand.Rand, out *TreeSample) error {
	sr := c.RScale * lognormal(rng, cfg.MC.RSigma)
	sl := c.LScale * lognormal(rng, cfg.MC.LSigma)
	sc := c.CScale * lognormal(rng, cfg.MC.CSigma)
	sd := c.DriveScale * lognormal(rng, cfg.MC.DriveSigma)
	t, err := tn.Tree.Scale(sr, sl, sc)
	if err != nil {
		return err
	}
	drv := tn.Drive
	drv.Rtr *= sd
	res, err := rlctree.Analyze(t, drv, rlctree.Config{Engine: engine, Ctx: cfg.Ctx})
	if err != nil {
		return err
	}
	if est == EstimatorSmart && !allInDomain(res) {
		if res, err = rlctree.Analyze(t, drv, rlctree.Config{Engine: rlctree.EngineMNA, Ctx: cfg.Ctx}); err != nil {
			return err
		}
		out.UsedExact = true
	}
	out.Sinks = len(res.Sinks)
	for k := range res.Sinks {
		if res.Sinks[k].InDomain {
			out.InDomain++
		}
	}
	out.MinDelay, out.MaxDelay = res.MinDelay, res.MaxDelay
	out.MaxSkew, out.MaxSkewRC = res.MaxSkew, res.MaxSkewRC
	out.SkewErrPct = res.SkewErrPct
	out.Reduced = res.Reduced
	if engine == rlctree.EngineMNA || res.Fallback {
		out.UsedExact = true
	}
	return nil
}

func allInDomain(res *rlctree.Result) bool {
	for k := range res.Sinks {
		if !res.Sinks[k].InDomain {
			return false
		}
	}
	return true
}

func aggregateTrees(trees []netgen.TreeNet, corners []Corner, draws int, samples []TreeSample, est Estimator) *TreeResult {
	res := &TreeResult{
		TreeNames: make([]string, len(trees)),
		Corners:   corners,
		Draws:     draws,
		Samples:   samples,
	}
	for i, tn := range trees {
		res.TreeNames[i] = tn.Name
	}
	n := len(samples)
	delays := make([]float64, n)
	skews := make([]float64, n)
	skewErrs := make([]float64, n)
	sinksTot, inTot := 0, 0
	cornerDelays := make([][]float64, len(corners))
	cornerSkews := make([][]float64, len(corners))
	for ci := range corners {
		cornerDelays[ci] = make([]float64, 0, n/len(corners))
		cornerSkews[ci] = make([]float64, 0, n/len(corners))
	}
	for i := range samples {
		s := &samples[i]
		delays[i] = s.MaxDelay
		skews[i] = s.MaxSkew
		skewErrs[i] = s.SkewErrPct
		sinksTot += s.Sinks
		inTot += s.InDomain
		if s.Reduced {
			res.ReducedSamples++
		} else if est == EstimatorReduced {
			res.ReducedFallbacks++
		}
		cornerDelays[s.Corner] = append(cornerDelays[s.Corner], s.MaxDelay)
		cornerSkews[s.Corner] = append(cornerSkews[s.Corner], s.MaxSkew)
	}
	res.MaxDelay = report.Summarize(delays)
	res.MaxSkew = report.Summarize(skews)
	res.SkewErr = report.Summarize(skewErrs)
	if sinksTot > 0 {
		res.InDomainFrac = float64(inTot) / float64(sinksTot)
	}
	res.PerCorner = make([]TreeCornerStats, len(corners))
	for ci := range corners {
		res.PerCorner[ci] = TreeCornerStats{
			Corner:   corners[ci],
			MaxDelay: report.Summarize(cornerDelays[ci]),
			MaxSkew:  report.Summarize(cornerSkews[ci]),
		}
	}
	return res
}

// SummaryTables renders the tree population statistics as report
// tables — the skew-population artifact cmd/treeskew prints.
func (r *TreeResult) SummaryTables() []*report.Table {
	var tables []*report.Table
	dist := report.NewTable(
		fmt.Sprintf("Tree population (%d trees × %d corners × %d draws = %d samples)",
			len(r.TreeNames), len(r.Corners), r.Draws, len(r.Samples)),
		report.SummaryHeaders("metric")...)
	report.AddSummaryRow(dist, "critical delay (s)", r.MaxDelay)
	report.AddSummaryRow(dist, "max skew (s)", r.MaxSkew)
	report.AddSummaryRow(dist, "RC skew err (%)", r.SkewErr)
	tables = append(tables, dist)

	byCorner := report.NewTable("Max skew (s) by corner", report.SummaryHeaders("corner")...)
	for _, cs := range r.PerCorner {
		report.AddSummaryRow(byCorner, cs.Corner.Name, cs.MaxSkew)
	}
	tables = append(tables, byCorner)
	return tables
}

// RenderSummary writes the summary tables plus the engine accounting
// line to w.
func (r *TreeResult) RenderSummary(w io.Writer) error {
	for _, t := range r.SummaryTables() {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "in-domain sinks: %.1f%%; reduced samples: %d (fallbacks: %d)\n",
		100*r.InDomainFrac, r.ReducedSamples, r.ReducedFallbacks)
	return err
}

// WriteCSV streams every tree sample as one CSV row.
func (r *TreeResult) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"tree_idx,tree,corner,draw,sinks,in_domain,min_delay_s,max_delay_s,max_skew_s,max_skew_rc_s,skew_err_pct,reduced,used_exact\n"); err != nil {
		return err
	}
	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	for i := range r.Samples {
		s := &r.Samples[i]
		_, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d,%.6e,%.6e,%.6e,%.6e,%.3f,%d,%d\n",
			s.Tree, csvField(r.TreeNames[s.Tree]), csvField(r.Corners[s.Corner].Name), s.Draw,
			s.Sinks, s.InDomain, s.MinDelay, s.MaxDelay, s.MaxSkew, s.MaxSkewRC, s.SkewErrPct,
			b01(s.Reduced), b01(s.UsedExact))
		if err != nil {
			return err
		}
	}
	return nil
}
