package sweep

import (
	"fmt"
	"runtime"
	"testing"

	"rlckit/internal/netgen"
	"rlckit/internal/tech"
)

// fingerprint renders every sample field to text; byte-for-byte equality
// of fingerprints is the determinism contract.
func fingerprint(r *Result) string {
	return fmt.Sprintf("%+v|%+v|%+v|%+v|%+v|%+v|%v|%v",
		r.Samples, r.Screen, r.Delay, r.DelayRC, r.RCErr, r.AbsRCErr,
		r.FracErrOver10, r.FracErrOver20)
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	nets := testNets(t, 50)
	cfg := testConfig()
	cfg.Workers = 1
	ref, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)
	for _, w := range []int{2, 4, 16} {
		cfg.Workers = w
		got, err := Run(nets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got) != want {
			t.Fatalf("workers=%d produced different results", w)
		}
	}
}

func TestSweepDeterministicAcrossGOMAXPROCS(t *testing.T) {
	nets := testNets(t, 40)
	cfg := testConfig()
	cfg.Workers = 0 // track GOMAXPROCS
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	a, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	b, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("GOMAXPROCS changed sweep results")
	}
}

func TestSweepSeedChangesResults(t *testing.T) {
	nets := testNets(t, 20)
	cfg := testConfig()
	a, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MC.Seed++
	b, err := Run(nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) == fingerprint(b) {
		t.Fatal("different seeds produced identical sweeps")
	}
}

func TestRandomBatchDeterministicAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	node := tech.Default()
	runtime.GOMAXPROCS(1)
	a, err := netgen.RandomBatch(99, node, 300)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	b, err := netgen.RandomBatch(99, node, 300)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("GOMAXPROCS changed RandomBatch output")
	}
	// Prefix stability: net i is a function of (seed, i), not of n.
	c, err := netgen.RandomBatch(99, node, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a[:10]) != fmt.Sprintf("%+v", c) {
		t.Fatal("batch prefix depends on batch size")
	}
}
