// Package sweep is rlckit's chip-scale batch analysis engine: it runs
// delay, screening and repeater analysis over a population of nets ×
// technology corners × Monte Carlo process-variation samples on a
// bounded worker pool, and aggregates the results into the population
// statistics the paper argues from (RC-vs-RLC delay error percentiles,
// inductance-significance fractions, repeater mis-sizing).
//
// The paper's headline claim is statistical — across a population of
// nets, ignoring inductance mis-predicts delay and mis-sizes repeaters
// by double-digit percentages — so the unit of work here is the
// population, not the net. A Run over 10k nets × 3 corners costs tens of
// milliseconds and scales nearly linearly with workers (see
// BenchmarkSweep10k).
//
// Determinism: every sample's perturbation is drawn from an RNG seeded
// by pool.Seed(seed, net, corner, draw), and results land in per-index
// slots, so a Run's output — including every aggregate statistic — is
// byte-identical for every worker count and GOMAXPROCS setting. The
// tests in determinism_test.go enforce this.
package sweep

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"rlckit/internal/cancel"
	"rlckit/internal/core"
	"rlckit/internal/elmore"
	"rlckit/internal/faultinject"
	"rlckit/internal/netgen"
	"rlckit/internal/pool"
	"rlckit/internal/refeng"
	"rlckit/internal/repeater"
	"rlckit/internal/screen"
	"rlckit/internal/tline"
)

// Corner is a technology corner: named multiplicative shifts of the
// wire parasitics and the driver resistance. The nominal corner is all
// ones.
type Corner struct {
	Name string
	// RScale, LScale, CScale multiply the line's per-unit-length R, L, C.
	RScale, LScale, CScale float64
	// DriveScale multiplies the driver output resistance Rtr (a strong
	// process corner has DriveScale < 1).
	DriveScale float64
}

// Nominal returns the typical-typical corner (all scale factors 1).
func Nominal() Corner {
	return Corner{Name: "tt", RScale: 1, LScale: 1, CScale: 1, DriveScale: 1}
}

// DefaultCorners returns the standard three-corner set: typical (tt),
// fast (ff: thicker metal, stronger drivers, less capacitance) and slow
// (ss: thinner metal, weaker drivers, more capacitance). The shifts are
// representative magnitudes, not foundry data.
func DefaultCorners() []Corner {
	return []Corner{
		Nominal(),
		{Name: "ff", RScale: 0.85, LScale: 1, CScale: 0.92, DriveScale: 0.80},
		{Name: "ss", RScale: 1.15, LScale: 1, CScale: 1.08, DriveScale: 1.25},
	}
}

func (c Corner) validate() error {
	if c.RScale <= 0 || c.LScale <= 0 || c.CScale <= 0 || c.DriveScale <= 0 {
		return fmt.Errorf("sweep: corner %q needs positive scale factors (%g, %g, %g, %g)",
			c.Name, c.RScale, c.LScale, c.CScale, c.DriveScale)
	}
	return nil
}

// MonteCarlo configures per-sample process-variation perturbation:
// independent log-normal factors on the per-unit-length parasitics and
// the driver strength. All sigmas are σ of the underlying normal; zero
// sigma means that parameter is not varied.
type MonteCarlo struct {
	// Samples is the number of variation draws per (net, corner). 0 or 1
	// means a single draw; with all sigmas zero that draw is nominal.
	Samples int
	// Seed is the reproducibility seed for the whole sweep.
	Seed int64
	// RSigma, LSigma, CSigma are log-normal sigmas on per-unit-length
	// R, L, C.
	RSigma, LSigma, CSigma float64
	// DriveSigma is the log-normal sigma on the driver resistance Rtr.
	DriveSigma float64
}

func (mc MonteCarlo) draws() int {
	if mc.Samples < 1 {
		return 1
	}
	return mc.Samples
}

func (mc MonteCarlo) validate() error {
	for _, s := range []float64{mc.RSigma, mc.LSigma, mc.CSigma, mc.DriveSigma} {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("sweep: Monte Carlo sigmas must be finite and non-negative, got %g", s)
		}
	}
	return nil
}

// Estimator selects how each sample's inductance-aware delay is
// computed.
type Estimator int

// Estimators, cheapest first.
const (
	// EstimatorClosed is the paper's closed-form Eq. 9 (default).
	EstimatorClosed Estimator = iota
	// EstimatorSmart is refeng.DelaySmart: Eq. 9 inside its validated
	// accuracy domain, the exact transmission-line engine outside.
	EstimatorSmart
	// EstimatorSimulated runs the exact transmission-line engine for
	// every sample — simulation-grade delays, ~½ ms per sample.
	EstimatorSimulated
	// EstimatorReduced reduces each net's nominal ladder once to a
	// Krylov reduced-order model (internal/mor) and evaluates every
	// corner and Monte Carlo draw of that net by reprojecting the
	// perturbed matrices through the frozen basis — simulation-grade
	// delays at several times EstimatorSimulated's throughput. Nets
	// whose reduction cannot be certified (and samples whose reduced
	// response fails) fall back to the exact engine; Result counts both.
	EstimatorReduced
)

func (e Estimator) String() string {
	switch e {
	case EstimatorClosed:
		return "closed"
	case EstimatorSmart:
		return "smart"
	case EstimatorSimulated:
		return "simulated"
	case EstimatorReduced:
		return "reduced"
	default:
		return fmt.Sprintf("Estimator(%d)", int(e))
	}
}

// Config tunes a sweep Run.
type Config struct {
	// RiseTime is the input rise time used for inductance screening
	// (required, positive).
	RiseTime float64
	// Corners lists the technology corners to sweep; nil means nominal
	// only.
	Corners []Corner
	// MC configures Monte Carlo perturbation.
	MC MonteCarlo
	// Workers bounds the pool; <= 0 means GOMAXPROCS.
	Workers int
	// Buffer, when non-nil, additionally runs repeater-insertion analysis
	// per sample (RLC closed forms vs RC-only Bakoglu) with this
	// technology buffer.
	Buffer *repeater.Buffer
	// Estimator selects the per-sample delay engine (default
	// EstimatorClosed; see Estimator).
	Estimator Estimator
	// Exact is the legacy switch for EstimatorSmart; it applies only
	// when Estimator is EstimatorClosed.
	Exact bool
	// Ctx, when non-nil, cancels the sweep at amortized checkpoints:
	// between pool tasks, and inside each task per sample (every sample
	// for the simulation estimators, every 64 samples for the ~1 µs
	// closed form). Run/RunTrees then return the typed
	// cancel.ErrCanceled/ErrDeadline bare — never wrapped in per-sample
	// position context — so callers can classify them with cancel.Is.
	Ctx context.Context
}

// ctxStride returns the per-sample cancellation check stride for an
// estimator: the simulation engines cost 0.1–1 ms per sample so every
// sample checks, while the closed form at ~1 µs per sample amortizes
// the check over 64 samples to stay invisible in BenchmarkSweep10k.
func ctxStride(e Estimator) int {
	if e == EstimatorClosed {
		return 64
	}
	return 1
}

// estimator resolves the configured estimator with the legacy flag.
func (c *Config) estimator() Estimator {
	if c.Estimator == EstimatorClosed && c.Exact {
		return EstimatorSmart
	}
	return c.Estimator
}

// sweepReducedConfig is the reduced-order engine tuning for sweep
// populations: a coarser ladder and transient than the reference
// engine, sized so one sample costs ~150 µs while tracking the exact
// engine to ~0.2% mean over populations (the determinism and accuracy
// tests pin this down). Run fills in the anchor set from the actual
// corners.
var sweepReducedConfig = refeng.ReducedConfig{
	Segments:      48,
	StepsPerScale: 400,
	MaxOrder:      40,
	ValTol:        4e-3,
}

// reducedAnchors derives the per-net anchor instances for
// EstimatorReduced from the sweep's own perturbation family: each
// non-nominal corner is an anchor (so corner-nominal samples are
// moment-matched, not interpolated), plus a uniform ± Monte Carlo bulk
// envelope. The returned spread bounds the evaluation envelope
// (covering corner × 3σ tail draws).
func reducedAnchors(corners []Corner, mc MonteCarlo) ([][4]float64, float64) {
	maxS := math.Max(math.Max(mc.RSigma, mc.LSigma), math.Max(mc.CSigma, mc.DriveSigma))
	var anchors [][4]float64
	ext := 1.0
	for _, c := range corners {
		t := [4]float64{c.RScale, c.LScale, c.CScale, c.DriveScale}
		if t != [4]float64{1, 1, 1, 1} {
			anchors = append(anchors, t)
		}
		for _, v := range t {
			ext = math.Max(ext, math.Max(v, 1/v))
		}
	}
	if m := math.Exp(1.5 * maxS); m > 1.02 {
		anchors = append(anchors, [4]float64{m, m, m, m}, [4]float64{1 / m, 1 / m, 1 / m, 1 / m})
	}
	spread := ext * math.Exp(2.5*maxS)
	if spread < 1.2 {
		spread = 1.2
	}
	return anchors, spread
}

// Sample is the analysis of one (net, corner, draw) triple.
type Sample struct {
	// Net, Corner and Draw index into the Run inputs.
	Net, Corner, Draw int
	// Line and Drive are the perturbed instance actually analyzed.
	Line  tline.Line
	Drive tline.Drive
	// RT, CT, Zeta are the paper's dimensionless parameters.
	RT, CT, Zeta float64
	// DelayRLC is the inductance-aware 50% delay; DelayRC is the
	// RC-only (Sakurai) delay a classic timing flow would report.
	DelayRLC, DelayRC float64
	// RCErrPct is 100·(DelayRC − DelayRLC)/DelayRLC: the signed error of
	// ignoring inductance.
	RCErrPct float64
	// NeedsRLC, InWindow, Underdamped are the screening verdicts.
	NeedsRLC, InWindow, Underdamped bool
	// UsedExact reports that the exact engine produced DelayRLC (smart,
	// simulated, or a reduced-engine fallback).
	UsedExact bool
	// Reduced reports that the frozen-basis reduced-order engine
	// produced DelayRLC (EstimatorReduced only).
	Reduced bool
	// TLR, RepKRLC, RepKRC, RepDelayIncPct are repeater-insertion
	// results, populated only when Config.Buffer is set: the inductance
	// figure of merit, the RLC- and RC-optimal section counts, and the
	// Eq. 17 delay increase from using the RC design.
	TLR, RepKRLC, RepKRC, RepDelayIncPct float64
}

// Run sweeps the net population through every corner and Monte Carlo
// draw. Samples are ordered net-major: index = (net·len(corners) +
// corner)·draws + draw.
func Run(nets []netgen.Net, cfg Config) (*Result, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("sweep: empty net population")
	}
	if cfg.RiseTime <= 0 || math.IsNaN(cfg.RiseTime) || math.IsInf(cfg.RiseTime, 0) {
		return nil, fmt.Errorf("sweep: rise time must be positive, got %g", cfg.RiseTime)
	}
	corners := cfg.Corners
	if len(corners) == 0 {
		corners = []Corner{Nominal()}
	}
	for _, c := range corners {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.MC.validate(); err != nil {
		return nil, err
	}
	if cfg.Buffer != nil {
		if err := cfg.Buffer.Validate(); err != nil {
			return nil, err
		}
	}
	draws := cfg.MC.draws()
	perNet := len(corners) * draws
	samples := make([]Sample, len(nets)*perNet)

	// One task per net: draws×corners of closed-form analysis amortize
	// the pool's per-task atomic claim, and every sample still derives
	// its RNG from its own (net, corner, draw) seed, so the task
	// granularity is invisible in the output.
	est := cfg.estimator()
	rcfg := sweepReducedConfig
	if est == EstimatorReduced {
		rcfg.Anchors, rcfg.AnchorSpread = reducedAnchors(corners, cfg.MC)
		rcfg.Ctx = cfg.Ctx
	}
	stride := ctxStride(est)
	err := pool.RunCtx(cfg.Ctx, cfg.Workers, len(nets), pool.NewSeededRand, func(sc *pool.SeededRand, i int) error {
		// The reduced estimator builds one certified basis per net from
		// the nominal instance, anchored at the sweep's own corners and
		// Monte Carlo envelope; every corner and draw of the net then
		// recombines the frozen per-class pencil. A net whose reduction
		// fails certification falls back to the exact engine for all of
		// its samples — unless the build died because the sweep itself
		// was canceled, which must propagate, not fall back.
		var rl *refeng.ReducedLadder
		if est == EstimatorReduced {
			if l, err := refeng.NewReducedLadder(nets[i].Line, nets[i].Drive, rcfg); err == nil {
				rl = l
			} else if cancel.Is(err) || faultinject.IsFault(err) {
				return err
			}
		}
		base := i * perNet
		tick := 0
		for ci, c := range corners {
			for d := 0; d < draws; d++ {
				if tick%stride == 0 {
					if cerr := cancel.Check(cfg.Ctx); cerr != nil {
						return cerr
					}
				}
				tick++
				sc.Seed(pool.Seed(cfg.MC.Seed, int64(i), int64(ci), int64(d)))
				out := &samples[base+ci*draws+d]
				out.Net, out.Corner, out.Draw = i, ci, d
				if err := evalSample(nets[i], c, &cfg, est, rl, sc.Rand, out); err != nil {
					if cancel.Is(err) {
						return err
					}
					return fmt.Errorf("sweep: net %d (%s) corner %s draw %d: %w",
						i, nets[i].Name, c.Name, d, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return aggregate(nets, corners, draws, samples, &cfg), nil
}

// lognormal returns exp(σ·N(0,1)). It always consumes exactly one
// normal variate — even for σ = 0 — so the per-sample RNG stream layout
// is independent of which sigmas are enabled.
func lognormal(rng *rand.Rand, sigma float64) float64 {
	n := rng.NormFloat64()
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma * n)
}

// evalSample analyzes one perturbed instance. The RNG draw order (R, L,
// C, Rtr) is part of the determinism contract.
func evalSample(net netgen.Net, c Corner, cfg *Config, est Estimator, rl *refeng.ReducedLadder, rng *rand.Rand, out *Sample) error {
	ln := net.Line
	ln.R *= c.RScale * lognormal(rng, cfg.MC.RSigma)
	ln.L *= c.LScale * lognormal(rng, cfg.MC.LSigma)
	ln.C *= c.CScale * lognormal(rng, cfg.MC.CSigma)
	drv := net.Drive
	drv.Rtr *= c.DriveScale * lognormal(rng, cfg.MC.DriveSigma)
	out.Line, out.Drive = ln, drv

	scr, err := screen.Check(ln, drv, cfg.RiseTime)
	if err != nil {
		return err
	}
	out.NeedsRLC, out.InWindow, out.Underdamped = scr.NeedsRLC, scr.InWindow, scr.Underdamped

	p, err := core.Analyze(ln, drv)
	if err != nil {
		return err
	}
	out.RT, out.CT, out.Zeta = p.RT, p.CT, p.Zeta

	switch est {
	case EstimatorSmart:
		v, m, err := refeng.DelaySmart(ln, drv)
		if err != nil {
			return err
		}
		out.DelayRLC = v
		out.UsedExact = m == refeng.MethodExact
	case EstimatorSimulated:
		v, err := refeng.DelayExactTF(ln, drv, 0)
		if err != nil {
			return err
		}
		out.DelayRLC = v
		out.UsedExact = true
	case EstimatorReduced:
		done := false
		if rl != nil {
			if v, err := rl.Delay(ln, drv); err == nil {
				out.DelayRLC = v
				out.Reduced = true
				done = true
			} else if cancel.Is(err) || faultinject.IsFault(err) {
				return err
			}
		}
		if !done {
			v, err := refeng.DelayExactTF(ln, drv, 0)
			if err != nil {
				return err
			}
			out.DelayRLC = v
			out.UsedExact = true
		}
	default:
		out.DelayRLC = core.ScaledDelay(p.Zeta) / p.OmegaN
	}
	rt, _, ct := ln.Totals()
	out.DelayRC = elmore.Sakurai50(rt, ct, drv.Rtr, drv.CL)
	out.RCErrPct = 100 * (out.DelayRC - out.DelayRLC) / out.DelayRLC

	if cfg.Buffer != nil {
		b := *cfg.Buffer
		tlr, err := repeater.TLR(ln, b)
		if err != nil {
			return err
		}
		out.TLR = tlr
		if rt > 0 {
			_, kRC, err := repeater.BakogluHK(ln, b)
			if err != nil {
				return err
			}
			_, kRLC, err := repeater.ClosedFormHK(ln, b)
			if err != nil {
				return err
			}
			out.RepKRC, out.RepKRLC = kRC, kRLC
			out.RepDelayIncPct = repeater.DelayIncreaseApprox(tlr)
		}
	}
	return nil
}
