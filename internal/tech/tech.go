// Package tech provides technology parameter models: per-unit-length
// wire impedances from geometry, and per-node device parameters
// (minimum-buffer R0, C0), replacing the proprietary 0.25 µm impedance
// data the paper takes from Deutsch et al. [7].
//
// Only ratios enter the paper's theory (RT, CT, ζ, T_{L/R}); the tables
// here are built from standard microstrip/parallel-plate approximations
// and published-range constants so that realistic global wires land in
// the same T_{L/R} ≈ 0–10 range the paper sweeps, with T_{L/R} ≈ 5
// reachable at 0.25 µm exactly as the paper states.
package tech

import (
	"fmt"
	"math"
	"sort"

	"rlckit/internal/repeater"
	"rlckit/internal/tline"
)

// Physical constants.
const (
	// Mu0 is the vacuum permeability in H/m.
	Mu0 = 4 * math.Pi * 1e-7
	// Eps0 is the vacuum permittivity in F/m.
	Eps0 = 8.8541878128e-12
	// RhoCu and RhoAl are copper and aluminum resistivities in Ω·m.
	RhoCu = 1.72e-8
	RhoAl = 2.82e-8
)

// Wire is a rectangular on-chip wire above a ground plane.
type Wire struct {
	// Width and Thickness are the conductor cross-section in meters.
	Width, Thickness float64
	// Height is the dielectric height above the return plane in meters.
	Height float64
	// Rho is the metal resistivity in Ω·m (RhoCu, RhoAl, ...).
	Rho float64
	// EpsR is the relative permittivity of the dielectric.
	EpsR float64
}

// Validate checks wire geometry.
func (w Wire) Validate() error {
	if w.Width <= 0 || w.Thickness <= 0 || w.Height <= 0 {
		return fmt.Errorf("tech: wire dimensions must be positive (%g, %g, %g)", w.Width, w.Thickness, w.Height)
	}
	if w.Rho <= 0 {
		return fmt.Errorf("tech: resistivity must be positive, got %g", w.Rho)
	}
	if w.EpsR < 1 {
		return fmt.Errorf("tech: relative permittivity must be >= 1, got %g", w.EpsR)
	}
	return nil
}

// RPerMeter returns the DC resistance per meter: ρ/(w·t).
func (w Wire) RPerMeter() float64 {
	return w.Rho / (w.Width * w.Thickness)
}

// CPerMeter returns the capacitance per meter using the parallel-plate
// term plus a fringing correction (Sakurai–Tamaru-style constant):
// C ≈ ε(1.15·w/h + 2.80·(t/h)^0.222).
func (w Wire) CPerMeter() float64 {
	eps := Eps0 * w.EpsR
	return eps * (1.15*w.Width/w.Height + 2.80*math.Pow(w.Thickness/w.Height, 0.222))
}

// LPerMeter returns the loop inductance per meter of the microstrip
// approximation L ≈ (µ0/2π)·ln(8h/w + w/(4h)), floored at a
// quasi-TEM-consistent minimum so that L·C ≥ µ0·ε0·εr (signals cannot
// travel faster than light in the dielectric).
func (w Wire) LPerMeter() float64 {
	l := Mu0 / (2 * math.Pi) * math.Log(8*w.Height/w.Width+w.Width/(4*w.Height))
	if lMin := Mu0 * Eps0 * w.EpsR / w.CPerMeter(); l < lMin {
		l = lMin
	}
	return l
}

// Line builds a tline.Line of the given length from the wire geometry.
func (w Wire) Line(length float64) (tline.Line, error) {
	if err := w.Validate(); err != nil {
		return tline.Line{}, err
	}
	ln := tline.Line{R: w.RPerMeter(), L: w.LPerMeter(), C: w.CPerMeter(), Length: length}
	return ln, ln.Validate()
}

// Node is a technology node's device and default-wire parameters.
type Node struct {
	// Name is the node label, e.g. "250nm".
	Name string
	// Feature is the drawn feature size in meters.
	Feature float64
	// R0, C0 are the minimum-size buffer output resistance and input
	// capacitance.
	R0, C0 float64
	// Vdd is the nominal supply.
	Vdd float64
	// GlobalWire is a representative global-layer wire geometry.
	GlobalWire Wire
}

// Buffer returns the node's minimum repeater for the repeater package.
func (n Node) Buffer() repeater.Buffer {
	return repeater.Buffer{R0: n.R0, C0: n.C0, Amin: 1, Vdd: n.Vdd}
}

// Gate returns a driver/load model with a buffer h times minimum driving
// a line, loaded by an identical gate of size hLoad.
func (n Node) Gate(h, hLoad float64) tline.Drive {
	return tline.Drive{Rtr: n.R0 / h, CL: hLoad * n.C0, V: n.Vdd}
}

// Nodes is the built-in technology table, ordered by decreasing feature
// size. R0·C0 shrinks with scaling, which is precisely the trend that
// makes T_{L/R} grow and inductance matter more (the paper's Section IV
// conclusion).
var nodes = []Node{
	{
		Name: "500nm", Feature: 500e-9, R0: 6000, C0: 4.0e-15, Vdd: 3.3,
		GlobalWire: Wire{Width: 1.2e-6, Thickness: 0.9e-6, Height: 1.5e-6, Rho: RhoAl, EpsR: 3.9},
	},
	{
		Name: "350nm", Feature: 350e-9, R0: 4500, C0: 3.0e-15, Vdd: 2.5,
		GlobalWire: Wire{Width: 1.0e-6, Thickness: 0.8e-6, Height: 1.3e-6, Rho: RhoAl, EpsR: 3.9},
	},
	{
		Name: "250nm", Feature: 250e-9, R0: 3000, C0: 2.0e-15, Vdd: 1.8,
		GlobalWire: Wire{Width: 0.8e-6, Thickness: 0.7e-6, Height: 1.1e-6, Rho: RhoCu, EpsR: 3.9},
	},
	{
		Name: "180nm", Feature: 180e-9, R0: 2300, C0: 1.4e-15, Vdd: 1.5,
		GlobalWire: Wire{Width: 0.7e-6, Thickness: 0.65e-6, Height: 1.0e-6, Rho: RhoCu, EpsR: 3.6},
	},
	{
		Name: "130nm", Feature: 130e-9, R0: 1700, C0: 1.0e-15, Vdd: 1.2,
		GlobalWire: Wire{Width: 0.6e-6, Thickness: 0.6e-6, Height: 0.9e-6, Rho: RhoCu, EpsR: 3.3},
	},
}

// Lookup returns the named technology node.
func Lookup(name string) (Node, error) {
	for _, n := range nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("tech: unknown node %q (have %v)", name, Names())
}

// Names lists available node names in table order.
func Names() []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// All returns the technology table ordered by decreasing feature size.
func All() []Node {
	out := append([]Node(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Feature > out[j].Feature })
	return out
}

// Default returns the paper's reference 0.25 µm node.
func Default() Node {
	n, err := Lookup("250nm")
	if err != nil {
		panic("tech: built-in 250nm node missing")
	}
	return n
}
