package tech

import (
	"math"
	"testing"

	"rlckit/internal/repeater"
	"rlckit/internal/tline"
)

func TestWireValidate(t *testing.T) {
	good := Default().GlobalWire
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Wire{
		{Width: 0, Thickness: 1e-6, Height: 1e-6, Rho: RhoCu, EpsR: 3.9},
		{Width: 1e-6, Thickness: 1e-6, Height: 1e-6, Rho: 0, EpsR: 3.9},
		{Width: 1e-6, Thickness: 1e-6, Height: 1e-6, Rho: RhoCu, EpsR: 0.5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad wire %d accepted", i)
		}
	}
}

func TestWireRPerMeter(t *testing.T) {
	w := Wire{Width: 1e-6, Thickness: 1e-6, Height: 1e-6, Rho: RhoCu, EpsR: 3.9}
	want := RhoCu / 1e-12
	if math.Abs(w.RPerMeter()-want) > 1e-9*want {
		t.Errorf("R/m = %g, want %g", w.RPerMeter(), want)
	}
}

func TestWirePlausibleRanges(t *testing.T) {
	// Every built-in global wire must land in textbook on-chip ranges:
	// R: 10 Ω/mm .. 1 MΩ/m, C: 50–500 pF/m, L: 100 nH/m – 3 µH/m.
	for _, n := range All() {
		w := n.GlobalWire
		r, l, c := w.RPerMeter(), w.LPerMeter(), w.CPerMeter()
		if r < 1e3 || r > 1e6 {
			t.Errorf("%s: R/m = %g out of range", n.Name, r)
		}
		if c < 5e-11 || c > 5e-10 {
			t.Errorf("%s: C/m = %g out of range", n.Name, c)
		}
		if l < 1e-7 || l > 3e-6 {
			t.Errorf("%s: L/m = %g out of range", n.Name, l)
		}
	}
}

func TestSpeedOfLightBound(t *testing.T) {
	// 1/sqrt(LC) must not exceed c/sqrt(εr): the quasi-TEM floor.
	for _, n := range All() {
		w := n.GlobalWire
		v := 1 / math.Sqrt(w.LPerMeter()*w.CPerMeter())
		cLight := 1 / math.Sqrt(Mu0*Eps0*w.EpsR)
		if v > cLight*1.0001 {
			t.Errorf("%s: wave velocity %g exceeds medium light speed %g", n.Name, v, cLight)
		}
	}
}

func TestWireLine(t *testing.T) {
	w := Default().GlobalWire
	ln, err := w.Line(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Validate(); err != nil {
		t.Fatal(err)
	}
	rt, lt, ct := ln.Totals()
	if rt <= 0 || lt <= 0 || ct <= 0 {
		t.Errorf("totals %g %g %g", rt, lt, ct)
	}
	if _, err := (Wire{}).Line(0.01); err == nil {
		t.Error("invalid wire accepted")
	}
}

func TestLookupAndNames(t *testing.T) {
	if _, err := Lookup("250nm"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("9000nm"); err == nil {
		t.Error("unknown node accepted")
	}
	names := Names()
	if len(names) != 5 {
		t.Errorf("names: %v", names)
	}
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].Feature >= all[i-1].Feature {
			t.Error("All() not ordered by decreasing feature")
		}
	}
}

func TestScalingTrendR0C0(t *testing.T) {
	// The gate time constant R0·C0 must shrink monotonically with
	// scaling — the driver of the paper's "inductance will matter more"
	// conclusion.
	all := All()
	for i := 1; i < len(all); i++ {
		prev := all[i-1].R0 * all[i-1].C0
		cur := all[i].R0 * all[i].C0
		if cur >= prev {
			t.Errorf("R0C0 did not shrink from %s to %s (%g → %g)",
				all[i-1].Name, all[i].Name, prev, cur)
		}
	}
}

func TestTLRGrowsWithScaling(t *testing.T) {
	// Same global wire analyzed across nodes: T_{L/R} must grow as the
	// technology scales (paper Section IV).
	wire := Default().GlobalWire
	prev := -1.0
	for _, n := range All() {
		ln, err := wire.Line(0.01)
		if err != nil {
			t.Fatal(err)
		}
		tlr, err := repeater.TLR(ln, n.Buffer())
		if err != nil {
			t.Fatal(err)
		}
		if tlr <= prev {
			t.Errorf("T_{L/R} did not grow at %s: %g after %g", n.Name, tlr, prev)
		}
		prev = tlr
	}
}

func TestPaperTLRReachableAt250nm(t *testing.T) {
	// Paper: "TL/R = 5 is common for a current 0.25 µm technology."
	// A wide/low-R clock-style global wire at 250nm must be able to
	// reach T_{L/R} ≈ 5.
	n := Default()
	wide := n.GlobalWire
	wide.Width *= 4 // wide clock spine
	ln, err := wide.Line(0.01)
	if err != nil {
		t.Fatal(err)
	}
	tlr, err := repeater.TLR(ln, n.Buffer())
	if err != nil {
		t.Fatal(err)
	}
	if tlr < 3 || tlr > 40 {
		t.Errorf("wide-wire T_{L/R} at 250nm = %g, expected O(5)", tlr)
	}
}

func TestGateDrive(t *testing.T) {
	n := Default()
	d := n.Gate(10, 10)
	if d.Rtr != n.R0/10 || d.CL != 10*n.C0 || d.V != n.Vdd {
		t.Errorf("Gate drive %+v", d)
	}
	var zero tline.Drive
	if d == zero {
		t.Error("zero drive")
	}
}

func TestBufferFromNode(t *testing.T) {
	b := Default().Buffer()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Vdd != Default().Vdd {
		t.Error("Vdd not propagated")
	}
}

func TestWireLineScalesLinearly(t *testing.T) {
	// Property: totals scale linearly with length for any built-in wire.
	for _, n := range All() {
		w := n.GlobalWire
		a, err := w.Line(0.005)
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.Line(0.015)
		if err != nil {
			t.Fatal(err)
		}
		ra, la, ca := a.Totals()
		rb, lb, cb := b.Totals()
		if math.Abs(rb-3*ra) > 1e-9*rb || math.Abs(lb-3*la) > 1e-9*lb || math.Abs(cb-3*ca) > 1e-9*cb {
			t.Errorf("%s: totals not linear in length", n.Name)
		}
	}
}

func TestDefaultIs250nm(t *testing.T) {
	if Default().Name != "250nm" {
		t.Errorf("default node %s", Default().Name)
	}
}
