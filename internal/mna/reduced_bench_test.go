package mna

import (
	"testing"
	"time"
)

// The AC acceptance configuration: a ~2000-unknown ladder of the
// Table-1 moderate line, swept at 200 log-spaced points across three
// decades. BenchmarkACExact2000 is the full band engine on it;
// BenchmarkACReduced is the reduce-once/evaluate-everywhere fast path
// (model built once in setup, every iteration evaluates the whole
// sweep); BenchmarkMORBuild prices the one-time reduction.
func acBenchFreqs(b *testing.B) []float64 {
	b.Helper()
	freqs, err := LogSpace(1e7, 1e10, 200)
	if err != nil {
		b.Fatal(err)
	}
	return freqs
}

func BenchmarkACReduced(b *testing.B) {
	lad := benchLadder(b, 660)
	freqs := acBenchFreqs(b)
	red, err := Reduce(lad.Ckt, []int{lad.Out}, ReduceOptions{Freqs: probeGrid(freqs)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(red.Info().Q), "q")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := red.AC(freqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkACExact2000(b *testing.B) {
	lad := benchLadder(b, 660)
	freqs := acBenchFreqs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AC(lad.Ckt, freqs, []int{lad.Out}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMORBuild(b *testing.B) {
	lad := benchLadder(b, 660)
	freqs := acBenchFreqs(b)
	pg := probeGrid(freqs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reduce(lad.Ckt, []int{lad.Out}, ReduceOptions{Freqs: pg}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestACReducedSpeedupAtLeast10x asserts the tentpole's performance
// acceptance: on the 2000-unknown / 200-point sweep, evaluating the
// reduced model must be at least 10× faster than the exact band
// engine (the measured margin is ~25× on one core; the one-time build
// is priced separately by BenchmarkMORBuild and amortizes across
// sweeps, timesteps and Monte Carlo samples — that is the
// reduce-once/evaluate-everywhere contract). The companion accuracy
// acceptance (≤1% reduced-vs-exact delay) lives in
// refeng.TestDelayReducedWithinOnePercent.
func TestACReducedSpeedupAtLeast10x(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	lad := benchLadder(t, 660)
	freqs, _ := LogSpace(1e7, 1e10, 200)
	red, err := Reduce(lad.Ckt, []int{lad.Out}, ReduceOptions{Freqs: probeGrid(freqs)})
	if err != nil {
		t.Fatal(err)
	}
	// Warm both paths once, then take the best of three runs each so a
	// noisy scheduler tick cannot fail the gate spuriously.
	if _, err := red.AC(freqs); err != nil {
		t.Fatal(err)
	}
	if _, err := AC(lad.Ckt, freqs, []int{lad.Out}); err != nil {
		t.Fatal(err)
	}
	best := func(f func()) time.Duration {
		b := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}
	reduced := best(func() {
		if _, err := red.AC(freqs); err != nil {
			t.Fatal(err)
		}
	})
	exact := best(func() {
		if _, err := AC(lad.Ckt, freqs, []int{lad.Out}); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(exact) / float64(reduced)
	t.Logf("exact sweep %v, reduced sweep %v: %.1f× (q=%d, n=%d)",
		exact, reduced, ratio, red.Info().Q, red.Info().N)
	if ratio < 10 {
		t.Errorf("reduced AC sweep only %.1f× faster than exact; the acceptance bar is 10×", ratio)
	}
}
