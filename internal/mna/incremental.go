package mna

import (
	"errors"
	"fmt"
	"math"
)

// This file is the incremental (what-if) face of the reduced-order
// engine: after Reduce, StartElementScaling snapshots the build-time
// value-set and lets a caller re-target single elements by a scalar —
// the reduced pencil is maintained by per-element block deltas in
// O(q²) per edit, with no re-assembly and nothing proportional to the
// full order n. CertifyCurrent re-runs the exact probe solves against
// the current pencil when the caller's certified envelope no longer
// covers the edited values.

// elemScaling is the incremental state StartElementScaling installs.
type elemScaling struct {
	egIdx, ecIdx [][]int   // per-element entry indices into gt/ct
	sG, sC       []float64 // current per-element scale vs build values
	gvCur, cvCur []float64 // current passive-form values (build·scale)
	blkG, blkC   [][]float64
	pg, pc       []float64 // current reduced pencil accumulators
}

// StartElementScaling enables ScaleElement: it indexes the build-time
// triplet entries by producing element, snapshots the build values as
// the current value-set, and seeds the running pencil from the model's
// current (nominal) reduced matrices. Call it once, directly after
// Reduce, before any Reproject/SetClassWeights.
func (r *Reduced) StartElementScaling() error {
	if r.scaling != nil {
		return errors.New("mna: StartElementScaling called twice")
	}
	nElems := 0
	for _, e := range r.sys.ge {
		if e+1 > nElems {
			nElems = e + 1
		}
	}
	for _, e := range r.sys.ce {
		if e+1 > nElems {
			nElems = e + 1
		}
	}
	s := &elemScaling{
		egIdx: make([][]int, nElems),
		ecIdx: make([][]int, nElems),
		sG:    make([]float64, nElems),
		sC:    make([]float64, nElems),
		blkG:  make([][]float64, nElems),
		blkC:  make([][]float64, nElems),
	}
	for k, e := range r.sys.ge {
		s.egIdx[e] = append(s.egIdx[e], k)
	}
	for k, e := range r.sys.ce {
		s.ecIdx[e] = append(s.ecIdx[e], k)
	}
	for i := range s.sG {
		s.sG[i], s.sC[i] = 1, 1
	}
	s.gvCur = append([]float64(nil), r.gt.V...)
	s.cvCur = append([]float64(nil), r.ct.V...)
	q := r.model.Q()
	s.pg = append([]float64(nil), r.model.Gr.Data[:q*q]...)
	s.pc = append([]float64(nil), r.model.Cr.Data[:q*q]...)
	r.scaling = s
	return nil
}

// ScaleElement re-targets one element at scale (sG, sC) of its build
// value: every G entry the element stamped is set to sG·build and every
// C entry to sC·build (for the linear element set each element's
// entries scale uniformly — a resistor's stamps by R₀/R, a capacitor's
// by C/C₀, an inductor's C entry by L/L₀ while its ±1 topology stamps
// keep sG = 1). The reduced pencil is updated by the element's
// congruence block scaled by the delta — O(q²) — and the block itself
// is projected lazily on the element's first edit. The new pencil
// takes effect at the next CommitPencil.
func (r *Reduced) ScaleElement(elem int, sG, sC float64) error {
	s := r.scaling
	if s == nil {
		return errors.New("mna: ScaleElement before StartElementScaling")
	}
	if elem < 0 || elem >= len(s.sG) {
		return fmt.Errorf("mna: element %d out of range [0, %d)", elem, len(s.sG))
	}
	if !isFiniteVal(sG) || !isFiniteVal(sC) {
		return fmt.Errorf("mna: element %d scale (%g, %g) is not finite", elem, sG, sC)
	}
	q := r.model.Q()
	if d := sG - s.sG[elem]; d != 0 {
		if s.blkG[elem] == nil {
			blk := make([]float64, q*q)
			if err := r.model.ProjectEntrySpan(s.egIdx[elem], r.gt.V, false, blk); err != nil {
				return err
			}
			s.blkG[elem] = blk
		}
		for i, v := range s.blkG[elem] {
			s.pg[i] += d * v
		}
		for _, k := range s.egIdx[elem] {
			s.gvCur[k] = r.gt.V[k] * sG
		}
		s.sG[elem] = sG
	}
	if d := sC - s.sC[elem]; d != 0 {
		if s.blkC[elem] == nil {
			blk := make([]float64, q*q)
			if err := r.model.ProjectEntrySpan(s.ecIdx[elem], r.ct.V, true, blk); err != nil {
				return err
			}
			s.blkC[elem] = blk
		}
		for i, v := range s.blkC[elem] {
			s.pc[i] += d * v
		}
		for _, k := range s.ecIdx[elem] {
			s.cvCur[k] = r.ct.V[k] * sC
		}
		s.sC[elem] = sC
	}
	return nil
}

// CommitPencil installs the accumulated element-scaled pencil as the
// model's current reduced matrices (O(q²) copy plus the fast-eval
// refresh). Call it after a batch of ScaleElement edits, before the
// next Simulate/AC.
func (r *Reduced) CommitPencil() error {
	if r.scaling == nil {
		return errors.New("mna: CommitPencil before StartElementScaling")
	}
	return r.model.UsePencil(r.scaling.pg, r.scaling.pc)
}

// CertifyCurrent grades the committed pencil against exact full-order
// solves of the current element-scaled value-set at the given
// frequencies (Hz), returning the worst transfer-function error in
// percent of the exact response peak — Reduce's validation metric,
// re-run on demand. One complex band factorization per frequency.
func (r *Reduced) CertifyCurrent(freqs []float64) (float64, error) {
	if r.scaling == nil {
		return 0, errors.New("mna: CertifyCurrent before StartElementScaling")
	}
	omegas := make([]float64, len(freqs))
	for i, f := range freqs {
		omegas[i] = 2 * math.Pi * f
	}
	return r.model.Certify(r.scaling.gvCur, r.scaling.cvCur, r.sys.kl, r.sys.ku, omegas)
}

func isFiniteVal(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
