package mna

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rlckit/internal/circuit"
	"rlckit/internal/mor"
	"rlckit/internal/tline"
)

// maxRelTFErr returns the worst |a−b| over the peak |b| across two
// phasor sweeps — the same scale-free metric mor validates with.
func maxRelTFErr(a, b []complex128) float64 {
	peak := 0.0
	for _, v := range b {
		if m := math.Hypot(real(v), imag(v)); m > peak {
			peak = m
		}
	}
	worst := 0.0
	for i := range a {
		d := a[i] - b[i]
		if m := math.Hypot(real(d), imag(d)); m > worst {
			worst = m
		}
	}
	return worst / peak
}

// benchLadder builds the physically-scaled ladder the AC benchmarks
// and acceptance tests use: the Table-1 moderate line cut into
// segments (~3 unknowns per segment).
func benchLadder(t testing.TB, segs int) *tline.Ladder {
	t.Helper()
	ln := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	d := tline.Drive{Rtr: 500, CL: 5e-13}
	lad, err := tline.BuildLadder(ln, d, segs, tline.Pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lad
}

func TestReducedACMatchesExactOnLadder(t *testing.T) {
	lad := benchLadder(t, 200)
	freqs, err := LogSpace(1e7, 1e10, 40)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(lad.Ckt, []int{lad.Out}, ReduceOptions{Freqs: probeGrid(freqs)})
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	info := red.Info()
	if !info.Validated {
		t.Fatal("model not validated")
	}
	t.Logf("q=%d of n=%d, validated err %.4g%%", info.Q, info.N, info.EstErrPct)
	exact, err := AC(lad.Ckt, freqs, []int{lad.Out})
	if err != nil {
		t.Fatal(err)
	}
	got, err := red.AC(freqs)
	if err != nil {
		t.Fatal(err)
	}
	he, _ := exact.H(lad.Out)
	hr, _ := got.H(lad.Out)
	if e := maxRelTFErr(hr, he); e > 1e-2 {
		t.Errorf("reduced transfer function off by %.3g of peak", e)
	}
}

func TestACReducedMatchesACOnBigLadder(t *testing.T) {
	lad := benchLadder(t, 300)
	freqs, _ := LogSpace(1e7, 1e10, 30)
	res, stats, err := ACReduced(lad.Ckt, freqs, []int{lad.Out})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Reduced {
		t.Fatal("expected the reduced fast path on a 900-unknown ladder")
	}
	if stats.Info.Q >= stats.Info.N/4 {
		t.Errorf("no real reduction: q=%d of n=%d", stats.Info.Q, stats.Info.N)
	}
	exact, err := AC(lad.Ckt, freqs, []int{lad.Out})
	if err != nil {
		t.Fatal(err)
	}
	he, _ := exact.H(lad.Out)
	hr, _ := res.H(lad.Out)
	if e := maxRelTFErr(hr, he); e > 1e-2 {
		t.Errorf("ACReduced off by %.3g of peak", e)
	}
	// Input frequency order must be preserved like AC's.
	for i, f := range freqs {
		if res.Freq[i] != f {
			t.Fatalf("Freq[%d] = %g, want %g", i, res.Freq[i], f)
		}
	}
}

// TestACReducedFallsBackOnHardNet feeds ACReduced a strongly resonant
// electrically-long ladder whose reduction cannot be certified at the
// default order; the exact-fallback contract requires a bit-identical
// exact answer, not a degraded reduced one.
func TestACReducedFallsBackOnHardNet(t *testing.T) {
	ckt, out := buildTestLadder(200) // 10Ω/1nH/10fF per segment: many in-band resonances
	freqs, _ := LogSpace(1e7, 1e10, 24)
	res, stats, err := ACReduced(ckt, freqs, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reduced {
		// If certification someday succeeds here that is fine too — but
		// then it must actually be accurate.
		exact, _ := AC(ckt, freqs, []int{out})
		he, _ := exact.H(out)
		hr, _ := res.H(out)
		if e := maxRelTFErr(hr, he); e > 1e-2 {
			t.Fatalf("reduced path certified but inaccurate: %.3g", e)
		}
		return
	}
	exact, err := AC(ckt, freqs, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	he, _ := exact.H(out)
	hr, _ := res.H(out)
	for i := range he {
		if he[i] != hr[i] {
			t.Fatalf("fallback result differs from AC at %g Hz", freqs[i])
		}
	}
}

// TestACReducedSmallCircuitIdentical: below the size thresholds the
// exact engine answers, bit-identical to AC.
func TestACReducedSmallCircuitIdentical(t *testing.T) {
	ckt, out := buildTestLadder(6)
	freqs, _ := LogSpace(1e7, 1e10, 20)
	res, stats, err := ACReduced(ckt, freqs, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reduced {
		t.Fatal("small circuit should use the exact engine")
	}
	exact, _ := AC(ckt, freqs, []int{out})
	he, _ := exact.H(out)
	hr, _ := res.H(out)
	for i := range he {
		if he[i] != hr[i] {
			t.Fatal("small-circuit result not identical to AC")
		}
	}
}

// Property test: across random RLC ladders, trees, and coupled nets,
// any model that certifies must reproduce the exact AC transfer
// function within its validation tolerance; failing to certify is the
// documented fallback path, but it must not be the norm.
func TestReducedTransferFunctionPropertyRandomNets(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	built, failed := 0, 0
	run := func(label string, c *circuitWithOut) {
		freqs, _ := LogSpace(1e6, 5e9, 16)
		red, err := Reduce(c.ckt, []int{c.out}, ReduceOptions{Freqs: probeGrid(freqs), MaxOrder: 48})
		if err != nil {
			if errors.Is(err, mor.ErrNoConverge) {
				failed++
				return
			}
			t.Fatalf("%s: %v", label, err)
		}
		built++
		exact, err := AC(c.ckt, freqs, []int{c.out})
		if err != nil {
			t.Fatalf("%s: exact AC: %v", label, err)
		}
		got, err := red.AC(freqs)
		if err != nil {
			t.Fatalf("%s: reduced AC: %v", label, err)
		}
		he, _ := exact.H(c.out)
		hr, _ := got.H(c.out)
		if e := maxRelTFErr(hr, he); e > 1.5e-2 {
			t.Errorf("%s: certified model off by %.3g of peak (validated %.3g%%)",
				label, e, red.Info().EstErrPct)
		}
	}
	for rep := 0; rep < 6; rep++ {
		run(fmt.Sprintf("ladder[%d]", rep), randomLadderCkt(rng))
		run(fmt.Sprintf("tree[%d]", rep), randomTreeCkt(rng))
		run(fmt.Sprintf("mutual[%d]", rep), randomMutualCkt(rng))
	}
	t.Logf("certified %d models, %d fell back", built, failed)
	if built < failed {
		t.Errorf("reduction failed on most nets (%d built vs %d failed)", built, failed)
	}
}

// TestReducedSimulateMatchesFullTransient: the reduced transient must
// track the full engine's probed waveform on the same ladder.
func TestReducedSimulateMatchesFullTransient(t *testing.T) {
	lad := benchLadder(t, 120)
	freqs, _ := LogSpace(1e6, 2e10, 12)
	red, err := Reduce(lad.Ckt, []int{lad.Out}, ReduceOptions{Freqs: probeGrid(freqs)})
	if err != nil {
		t.Fatal(err)
	}
	dt := 2e-12
	opts := Options{Dt: dt, TEnd: 4000 * dt, Probes: []int{lad.Out}}
	full, err := Simulate(lad.Ckt, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := red.Simulate(opts)
	if err != nil {
		t.Fatal(err)
	}
	yf, _ := full.V(lad.Out)
	yr, _ := got.V(lad.Out)
	if len(yf) != len(yr) {
		t.Fatalf("sample count %d vs %d", len(yr), len(yf))
	}
	worst := 0.0
	for i := range yf {
		if d := math.Abs(yf[i] - yr[i]); d > worst {
			worst = d
		}
	}
	// Compare against the 1 V step amplitude.
	if worst > 0.02 {
		t.Errorf("reduced waveform deviates by %.3g V from the full transient", worst)
	}
}

// --- random net generators for the property tests ---

type circuitWithOut struct {
	ckt *circuit.Circuit
	out int
}

// randomLadderCkt draws a physically-plausible driven RLC line and
// lumps it; damping spans over- to moderately underdamped.
func randomLadderCkt(rng *rand.Rand) *circuitWithOut {
	ln := tline.FromTotals(
		randVal(rng, 200, 5e3),     // Rt
		randVal(rng, 1e-8, 2e-7),   // Lt
		randVal(rng, 3e-13, 3e-12), // Ct
		0.01)
	d := tline.Drive{Rtr: randVal(rng, 50, 2e3), CL: randVal(rng, 5e-14, 1e-12)}
	lad, err := tline.BuildLadder(ln, d, 40+rng.Intn(80), tline.Pi, 0)
	if err != nil {
		panic(err)
	}
	return &circuitWithOut{ckt: lad.Ckt, out: lad.Out}
}

// randomTreeCkt grows a random RC(+L) tree driven at the root; the
// output is the last leaf.
func randomTreeCkt(rng *rand.Rand) *circuitWithOut {
	ckt := circuit.New()
	root := ckt.Node()
	must(ckt.AddV("vin", root, circuit.Ground, circuit.Step{Amplitude: 1, Delay: 1e-12}))
	drv := ckt.Node()
	must(ckt.AddR("rdrv", root, drv, randVal(rng, 100, 1e3)))
	nodes := []int{drv}
	last := drv
	for i := 0; i < 12+rng.Intn(20); i++ {
		parent := nodes[rng.Intn(len(nodes))]
		n := ckt.Node()
		name := fmt.Sprintf("e%d", i)
		if rng.Intn(4) == 0 {
			mid := ckt.Node()
			must(ckt.AddR(name+"r", parent, mid, randVal(rng, 50, 500)))
			must(ckt.AddL(name+"l", mid, n, randVal(rng, 1e-10, 2e-9)))
		} else {
			must(ckt.AddR(name, parent, n, randVal(rng, 50, 800)))
		}
		must(ckt.AddC(name+"c", n, circuit.Ground, randVal(rng, 1e-14, 3e-13)))
		nodes = append(nodes, n)
		last = n
	}
	return &circuitWithOut{ckt: ckt, out: last}
}

// randomMutualCkt is a moderate RLC ladder with adjacent and
// long-range inductive coupling.
func randomMutualCkt(rng *rand.Rand) *circuitWithOut {
	ckt := circuit.New()
	in := ckt.Node()
	must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1}))
	drv := ckt.Node()
	must(ckt.AddR("rtr", in, drv, randVal(rng, 200, 1e3)))
	prev := drv
	segs := 10 + rng.Intn(15)
	out := drv
	for i := 0; i < segs; i++ {
		mid := ckt.Node()
		n := ckt.Node()
		must(ckt.AddR(fmt.Sprintf("r%d", i), prev, mid, randVal(rng, 20, 200)))
		must(ckt.AddL(fmt.Sprintf("l%d", i), mid, n, randVal(rng, 2e-10, 2e-9)))
		must(ckt.AddC(fmt.Sprintf("c%d", i), n, circuit.Ground, randVal(rng, 2e-14, 2e-13)))
		prev, out = n, n
	}
	must(ckt.AddK("k01", "l0", "l1", 0.1+0.4*rng.Float64()))
	must(ckt.AddK("kfar", "l0", fmt.Sprintf("l%d", segs-1), 0.1))
	return &circuitWithOut{ckt: ckt, out: out}
}

// TestReducedClassProjectionAPI: per-class pencil recombination must
// equal a generic reprojection of the same scaled circuit, and the
// accessors must behave.
func TestReducedClassProjectionAPI(t *testing.T) {
	lad := benchLadder(t, 40)
	freqs, _ := LogSpace(1e7, 5e9, 12)
	red, err := Reduce(lad.Ckt, []int{lad.Out}, ReduceOptions{Freqs: probeGrid(freqs)})
	if err != nil {
		t.Fatal(err)
	}
	if red.Model() == nil {
		t.Fatal("nil model")
	}
	if k, err := red.OutputIndex(lad.Out); err != nil || k != 0 {
		t.Fatalf("OutputIndex = %d, %v", k, err)
	}
	if _, err := red.OutputIndex(99999); err == nil {
		t.Fatal("unknown probe accepted")
	}
	// Two classes: capacitors and everything else; scale caps ×1.2.
	els := lad.Ckt.Elements()
	classOf := func(e int) int {
		if els[e].Kind == circuit.KindCapacitor {
			return 1
		}
		return 0
	}
	if err := red.SetClassWeights([]float64{1, 1}, []float64{1, 1.2}); err == nil {
		t.Fatal("SetClassWeights before ProjectClasses accepted")
	}
	if err := red.ProjectClasses(2, classOf); err != nil {
		t.Fatal(err)
	}
	if err := red.SetClassWeights([]float64{1}, []float64{1}); err == nil {
		t.Fatal("short weight vector accepted")
	}
	if err := red.SetClassWeights([]float64{1, 1}, []float64{1, 1.2}); err != nil {
		t.Fatal(err)
	}
	grClass := append([]float64(nil), red.model.Gr.Data...)
	crClass := append([]float64(nil), red.model.Cr.Data...)

	ln2 := tline.FromTotals(1000, 1e-7, 1.2e-12, 0.01)
	d2 := tline.Drive{Rtr: 500, CL: 1.2 * 5e-13}
	lad2, _ := tline.BuildLadder(ln2, d2, 40, tline.Pi, 0)
	if err := red.Reproject(lad2.Ckt); err != nil {
		t.Fatal(err)
	}
	for i := range grClass {
		if math.Abs(grClass[i]-red.model.Gr.Data[i]) > 1e-10*(1+math.Abs(grClass[i])) ||
			math.Abs(crClass[i]-red.model.Cr.Data[i]) > 1e-10*(1+math.Abs(crClass[i])) {
			t.Fatal("class-combined pencil differs from reprojection")
		}
	}
	// Topology mismatch is refused.
	lad3, _ := tline.BuildLadder(ln2, d2, 41, tline.Pi, 0)
	if err := red.Reproject(lad3.Ckt); err == nil {
		t.Fatal("different topology accepted")
	}
}
