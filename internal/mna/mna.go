// Package mna is rlckit's dynamic circuit simulator — the stand-in for
// the proprietary AS/X simulator the paper validates against.
//
// It assembles lumped linear circuits (internal/circuit) into the
// Modified Nodal Analysis form
//
//	C·dx/dt + G·x = b(t)
//
// where x stacks the non-ground node voltages and one branch current per
// inductor and per voltage source. Transient analysis integrates this DAE
// with the trapezoidal rule (default; A-stable, second order, the classic
// SPICE choice) or backward Euler (first order, strongly damping — useful
// as a cross-check and for taming startup transients).
//
// Unknowns are reordered with reverse Cuthill–McKee so that ladder-style
// interconnect circuits factor as narrow band matrices; a 1000-segment
// RLC line steps in O(n) per timestep rather than O(n²).
package mna

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rlckit/internal/circuit"
	"rlckit/internal/numeric"
	"rlckit/internal/waveform"
)

// Method selects the integration rule.
type Method int

// Integration methods.
const (
	Trapezoidal Method = iota
	BackwardEuler
)

func (m Method) String() string {
	switch m {
	case Trapezoidal:
		return "trapezoidal"
	case BackwardEuler:
		return "backward-euler"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a transient run.
type Options struct {
	// Method is the integration rule (default Trapezoidal).
	Method Method
	// Dt is the fixed time step; required, must be positive.
	Dt float64
	// TEnd is the end time; required, must exceed Dt.
	TEnd float64
	// Probes lists node IDs whose voltages are recorded every step.
	Probes []int
}

// Result holds a transient analysis record.
type Result struct {
	Time  []float64
	probe map[int][]float64
	// Final is the full final state vector (node voltages then branch
	// currents) in original (pre-permutation) order.
	Final []float64
}

// V returns the recorded voltage samples for a probed node.
func (r *Result) V(node int) ([]float64, error) {
	s, ok := r.probe[node]
	if !ok {
		return nil, fmt.Errorf("mna: node %d was not probed", node)
	}
	return s, nil
}

// Waveform returns the recorded voltage at a probed node as a waveform.
func (r *Result) Waveform(node int) (*waveform.W, error) {
	y, err := r.V(node)
	if err != nil {
		return nil, err
	}
	return waveform.New(r.Time, y)
}

// system is the assembled MNA description prior to integration.
type system struct {
	n       int // total unknowns
	nv      int // node-voltage unknowns (circuit nodes minus ground)
	g, c    *numeric.Matrix
	sources []srcEntry // contributions to b(t)
	perm    []int      // perm[orig] = new index, after RCM
	inv     []int      // inv[new] = orig
	kl, ku  int
}

type srcEntry struct {
	row int // row in b (original ordering)
	src circuit.Source
	sgn float64
}

// assemble builds G, C and the source table from the circuit.
func assemble(ckt *circuit.Circuit) (*system, error) {
	if err := ckt.Validate(); err != nil {
		return nil, err
	}
	nv := ckt.Nodes() - 1 // exclude ground
	nbr := 0
	for _, e := range ckt.Elements() {
		if e.Kind == circuit.KindInductor || e.Kind == circuit.KindVSource {
			nbr++
		}
	}
	n := nv + nbr
	s := &system{n: n, nv: nv, g: numeric.NewMatrix(n, n), c: numeric.NewMatrix(n, n)}
	// Node v index: node i (1-based) → i-1. Ground contributes nothing.
	vi := func(node int) int { return node - 1 }
	br := nv
	// branchOf[elementIndex] = branch unknown index (inductors only).
	branchOf := make(map[int]int)
	for ei, e := range ckt.Elements() {
		_ = ei
		a, b := e.A, e.B
		switch e.Kind {
		case circuit.KindResistor:
			gg := 1 / e.Value
			stamp2(s.g, vi(a), vi(b), gg, a, b)
		case circuit.KindCapacitor:
			stamp2(s.c, vi(a), vi(b), e.Value, a, b)
		case circuit.KindInductor:
			j := br
			br++
			branchOf[ei] = j
			// KCL: current j leaves a, enters b.
			if a != circuit.Ground {
				s.g.Add(vi(a), j, 1)
			}
			if b != circuit.Ground {
				s.g.Add(vi(b), j, -1)
			}
			// Branch: v_a − v_b − L·dj/dt = 0.
			if a != circuit.Ground {
				s.g.Add(j, vi(a), 1)
			}
			if b != circuit.Ground {
				s.g.Add(j, vi(b), -1)
			}
			s.c.Add(j, j, -e.Value)
		case circuit.KindVSource:
			j := br
			br++
			if a != circuit.Ground {
				s.g.Add(vi(a), j, 1)
			}
			if b != circuit.Ground {
				s.g.Add(vi(b), j, -1)
			}
			if a != circuit.Ground {
				s.g.Add(j, vi(a), 1)
			}
			if b != circuit.Ground {
				s.g.Add(j, vi(b), -1)
			}
			s.sources = append(s.sources, srcEntry{row: j, src: e.Src, sgn: 1})
		case circuit.KindISource:
			// Current flows from b into a: KCL source terms.
			if a != circuit.Ground {
				s.sources = append(s.sources, srcEntry{row: vi(a), src: e.Src, sgn: 1})
			}
			if b != circuit.Ground {
				s.sources = append(s.sources, srcEntry{row: vi(b), src: e.Src, sgn: -1})
			}
		}
	}
	// Mutual inductances couple the branch equations:
	// row j1 gains −M·dj2/dt and row j2 gains −M·dj1/dt, matching the
	// −L self terms' sign convention.
	for _, m := range ckt.Mutuals() {
		j1, ok1 := branchOf[m.L1]
		j2, ok2 := branchOf[m.L2]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("mna: coupling %q references non-inductor elements", m.Name)
		}
		s.c.Add(j1, j2, -m.M)
		s.c.Add(j2, j1, -m.M)
	}
	s.computeOrdering()
	return s, nil
}

// stamp2 applies the standard two-terminal conductance/capacitance stamp.
// ia, ib are unknown indices (or negative via ground check using raw node
// numbers a, b).
func stamp2(m *numeric.Matrix, ia, ib int, v float64, a, b int) {
	if a != circuit.Ground {
		m.Add(ia, ia, v)
	}
	if b != circuit.Ground {
		m.Add(ib, ib, v)
	}
	if a != circuit.Ground && b != circuit.Ground {
		m.Add(ia, ib, -v)
		m.Add(ib, ia, -v)
	}
}

// computeOrdering runs reverse Cuthill–McKee on the structure of |G|+|C|
// to minimize bandwidth, then records the band widths.
func (s *system) computeOrdering() {
	n := s.n
	adj := make([][]int, n)
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && (s.g.At(i, j) != 0 || s.c.At(i, j) != 0 ||
				s.g.At(j, i) != 0 || s.c.At(j, i) != 0) {
				adj[i] = append(adj[i], j)
			}
		}
		deg[i] = len(adj[i])
	}
	for i := range adj {
		sort.Slice(adj[i], func(a, b int) bool { return deg[adj[i][a]] < deg[adj[i][b]] })
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		// Start from the unvisited node of minimum degree.
		start, best := -1, math.MaxInt
		for i := 0; i < n; i++ {
			if !visited[i] && deg[i] < best {
				start, best = i, deg[i]
			}
		}
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	s.inv = order // inv[new] = orig
	s.perm = make([]int, n)
	for newIdx, orig := range order {
		s.perm[orig] = newIdx
	}
	// Bandwidths in the permuted ordering.
	kl, ku := 0, 0
	for i := 0; i < n; i++ {
		for _, j := range adj[i] {
			pi, pj := s.perm[i], s.perm[j]
			if d := pi - pj; d > kl {
				kl = d
			}
			if d := pj - pi; d > ku {
				ku = d
			}
		}
	}
	s.kl, s.ku = kl, ku
}

// permuted returns band copies of G and C in the RCM ordering.
func (s *system) permuted() (gb, cb *numeric.BandMatrix) {
	kl, ku := s.kl, s.ku
	if kl >= s.n {
		kl = s.n - 1
	}
	if ku >= s.n {
		ku = s.n - 1
	}
	gb = numeric.NewBandMatrix(s.n, kl, ku)
	cb = numeric.NewBandMatrix(s.n, kl, ku)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			if v := s.g.At(i, j); v != 0 {
				gb.Add(s.perm[i], s.perm[j], v)
			}
			if v := s.c.At(i, j); v != 0 {
				cb.Add(s.perm[i], s.perm[j], v)
			}
		}
	}
	return gb, cb
}

// bvec fills b(t) in permuted ordering.
func (s *system) bvec(t float64, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, e := range s.sources {
		dst[s.perm[e.row]] += e.sgn * e.src.V(t)
	}
}

// Simulate runs a fixed-step transient analysis.
func Simulate(ckt *circuit.Circuit, opts Options) (*Result, error) {
	if opts.Dt <= 0 {
		return nil, errors.New("mna: Options.Dt must be positive")
	}
	if opts.TEnd <= opts.Dt {
		return nil, fmt.Errorf("mna: TEnd (%g) must exceed Dt (%g)", opts.TEnd, opts.Dt)
	}
	sys, err := assemble(ckt)
	if err != nil {
		return nil, err
	}
	for _, p := range opts.Probes {
		if p <= 0 || p >= ckt.Nodes() {
			return nil, fmt.Errorf("mna: probe node %d out of range (ground cannot be probed)", p)
		}
	}
	gb, cb := sys.permuted()
	h := opts.Dt
	steps := int(math.Ceil(opts.TEnd / h))
	n := sys.n

	// Left matrix A and right matrix Bm per method:
	//   trapezoidal: A = C/h + G/2,  rhs = (C/h − G/2)x + (b_n + b_{n+1})/2
	//   BE:          A = C/h + G,    rhs = (C/h)x + b_{n+1}
	A := numeric.NewBandMatrix(n, gb.KL, gb.KU)
	Bm := numeric.NewBandMatrix(n, gb.KL, gb.KU)
	for i := 0; i < n; i++ {
		lo := i - gb.KL
		if lo < 0 {
			lo = 0
		}
		hi := i + gb.KU
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			g := gb.At(i, j)
			c := cb.At(i, j)
			switch opts.Method {
			case BackwardEuler:
				A.Set(i, j, c/h+g)
				Bm.Set(i, j, c/h)
			default:
				A.Set(i, j, c/h+g/2)
				Bm.Set(i, j, c/h-g/2)
			}
		}
	}
	lu, err := numeric.FactorBandLU(A)
	if err != nil {
		return nil, fmt.Errorf("mna: transient matrix is singular (dt=%g): %w", h, err)
	}

	// Initial condition: DC operating point at t=0 when G is nonsingular;
	// otherwise start from rest.
	x := make([]float64, n)
	b0 := make([]float64, n)
	sys.bvec(0, b0)
	if guLU, err := numeric.FactorBandLU(gb); err == nil {
		x = guLU.Solve(b0)
	}

	res := &Result{
		Time:  make([]float64, 0, steps+1),
		probe: make(map[int][]float64, len(opts.Probes)),
	}
	for _, p := range opts.Probes {
		res.probe[p] = make([]float64, 0, steps+1)
	}
	record := func(t float64) {
		res.Time = append(res.Time, t)
		for _, p := range opts.Probes {
			res.probe[p] = append(res.probe[p], x[sys.perm[p-1]])
		}
	}
	record(0)

	bn := make([]float64, n)
	bn1 := make([]float64, n)
	rhs := make([]float64, n)
	sys.bvec(0, bn)
	t := 0.0
	for s := 0; s < steps; s++ {
		t1 := t + h
		sys.bvec(t1, bn1)
		bmx := Bm.MulVec(x)
		switch opts.Method {
		case BackwardEuler:
			for i := range rhs {
				rhs[i] = bmx[i] + bn1[i]
			}
		default:
			for i := range rhs {
				rhs[i] = bmx[i] + (bn[i]+bn1[i])/2
			}
		}
		x = lu.Solve(rhs)
		copy(bn, bn1)
		t = t1
		record(t)
	}

	// Final state in original ordering.
	res.Final = make([]float64, n)
	for newIdx, orig := range sys.inv {
		res.Final[orig] = x[newIdx]
	}
	return res, nil
}

// Bandwidth reports the (kl, ku) band widths the RCM ordering achieves
// for the circuit — an observability hook for the ladder benchmarks.
func Bandwidth(ckt *circuit.Circuit) (kl, ku int, err error) {
	sys, err := assemble(ckt)
	if err != nil {
		return 0, 0, err
	}
	return sys.kl, sys.ku, nil
}
