// Package mna is rlckit's dynamic circuit simulator — the stand-in for
// the proprietary AS/X simulator the paper validates against.
//
// It assembles lumped linear circuits (internal/circuit) into the
// Modified Nodal Analysis form
//
//	C·dx/dt + G·x = b(t)
//
// where x stacks the non-ground node voltages and one branch current per
// inductor and per voltage source. Transient analysis integrates this DAE
// with the trapezoidal rule (default; A-stable, second order, the classic
// SPICE choice) or backward Euler (first order, strongly damping — useful
// as a cross-check and for taming startup transients).
//
// Unknowns are reordered with reverse Cuthill–McKee so that ladder-style
// interconnect circuits factor as narrow band matrices; a 1000-segment
// RLC line steps in O(n) per timestep rather than O(n²).
//
// Complexity contract: the whole pipeline is linear in circuit size.
// Assembly stamps the circuit into sparse triplets, the RCM ordering
// runs on adjacency lists, and the band matrices are stamped directly
// from the triplets — O(nnz) time and O(n·band) memory, with no n×n
// intermediate ever materialized. The transient step loop reuses all
// scratch (numeric.MulVecTo / BandLU.SolveInPlace) and performs zero
// heap allocations per timestep, and AC sweeps solve frequency points
// in parallel across a bounded worker pool.
package mna

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rlckit/internal/cancel"
	"rlckit/internal/circuit"
	"rlckit/internal/numeric"
	"rlckit/internal/waveform"
)

// Method selects the integration rule.
type Method int

// Integration methods.
const (
	Trapezoidal Method = iota
	BackwardEuler
)

func (m Method) String() string {
	switch m {
	case Trapezoidal:
		return "trapezoidal"
	case BackwardEuler:
		return "backward-euler"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a transient run.
type Options struct {
	// Method is the integration rule (default Trapezoidal).
	Method Method
	// Dt is the fixed time step; required, must be positive.
	Dt float64
	// TEnd is the end time; required, must exceed Dt.
	TEnd float64
	// Probes lists node IDs whose voltages are recorded every step.
	Probes []int
	// Ctx, when non-nil, cancels the transient: Simulate checks it
	// every ctxStride timesteps and returns cancel.ErrCanceled /
	// ErrDeadline once it is done.
	Ctx context.Context
}

// ctxStride is the transient cancellation checkpoint interval: one
// context check per 64-step chunk (tens of microseconds of compute on
// the tree-sized systems) keeps checkpoint overhead unmeasurable while
// bounding cancellation latency well below a millisecond of work.
const ctxStride = 64

// Result holds a transient analysis record.
type Result struct {
	Time  []float64
	probe map[int][]float64
	// Final is the full final state vector (node voltages then branch
	// currents) in original (pre-permutation) order.
	Final []float64
}

// V returns the recorded voltage samples for a probed node.
func (r *Result) V(node int) ([]float64, error) {
	s, ok := r.probe[node]
	if !ok {
		return nil, fmt.Errorf("mna: node %d was not probed", node)
	}
	return s, nil
}

// Waveform returns the recorded voltage at a probed node as a waveform.
func (r *Result) Waveform(node int) (*waveform.W, error) {
	y, err := r.V(node)
	if err != nil {
		return nil, err
	}
	return waveform.New(r.Time, y)
}

// system is the assembled MNA description prior to integration. G and C
// are kept as sparse triplets — O(nnz) storage — and stamped straight
// into band matrices on demand.
type system struct {
	n      int // total unknowns
	nv     int // node-voltage unknowns (circuit nodes minus ground)
	gt, ct *numeric.Triplets
	// ge, ce record the element index that produced each triplet entry
	// (mutual couplings map to their first inductor) — the provenance
	// the reduced-order class projection groups by.
	ge, ce  []int
	sources []srcEntry // contributions to b(t)
	perm    []int      // perm[orig] = new index, after RCM
	inv     []int      // inv[new] = orig
	kl, ku  int
}

type srcEntry struct {
	row int // row in b (original ordering)
	src circuit.Source
	sgn float64
}

// assemble builds G, C and the source table from the circuit and
// computes the band (RCM) ordering.
func assemble(ckt *circuit.Circuit) (*system, error) {
	s, err := assembleCore(ckt)
	if err != nil {
		return nil, err
	}
	s.computeOrdering()
	return s, nil
}

// assembleCore stamps G, C and the source table without computing an
// ordering — re-assemblies of an unchanged topology (Monte Carlo
// perturbations evaluated through a frozen reduced-order basis) borrow
// the reference system's ordering instead of re-running RCM.
func assembleCore(ckt *circuit.Circuit) (*system, error) {
	if err := ckt.Validate(); err != nil {
		return nil, err
	}
	nv := ckt.Nodes() - 1 // exclude ground
	nbr := 0
	for _, e := range ckt.Elements() {
		if e.Kind == circuit.KindInductor || e.Kind == circuit.KindVSource {
			nbr++
		}
	}
	n := nv + nbr
	s := &system{n: n, nv: nv, gt: numeric.NewTriplets(n), ct: numeric.NewTriplets(n)}
	// Node v index: node i (1-based) → i-1. Ground contributes nothing.
	vi := func(node int) int { return node - 1 }
	br := nv
	// branchOf[elementIndex] = branch unknown index (inductors only).
	branchOf := make(map[int]int)
	for ei, e := range ckt.Elements() {
		g0, c0 := s.gt.NNZ(), s.ct.NNZ()
		a, b := e.A, e.B
		switch e.Kind {
		case circuit.KindResistor:
			gg := 1 / e.Value
			stamp2(s.gt, vi(a), vi(b), gg, a, b)
		case circuit.KindCapacitor:
			stamp2(s.ct, vi(a), vi(b), e.Value, a, b)
		case circuit.KindInductor:
			j := br
			br++
			branchOf[ei] = j
			// KCL: current j leaves a, enters b.
			if a != circuit.Ground {
				s.gt.Add(vi(a), j, 1)
			}
			if b != circuit.Ground {
				s.gt.Add(vi(b), j, -1)
			}
			// Branch: v_a − v_b − L·dj/dt = 0.
			if a != circuit.Ground {
				s.gt.Add(j, vi(a), 1)
			}
			if b != circuit.Ground {
				s.gt.Add(j, vi(b), -1)
			}
			s.ct.Add(j, j, -e.Value)
		case circuit.KindVSource:
			j := br
			br++
			if a != circuit.Ground {
				s.gt.Add(vi(a), j, 1)
			}
			if b != circuit.Ground {
				s.gt.Add(vi(b), j, -1)
			}
			if a != circuit.Ground {
				s.gt.Add(j, vi(a), 1)
			}
			if b != circuit.Ground {
				s.gt.Add(j, vi(b), -1)
			}
			s.sources = append(s.sources, srcEntry{row: j, src: e.Src, sgn: 1})
		case circuit.KindISource:
			// Current flows from b into a: KCL source terms.
			if a != circuit.Ground {
				s.sources = append(s.sources, srcEntry{row: vi(a), src: e.Src, sgn: 1})
			}
			if b != circuit.Ground {
				s.sources = append(s.sources, srcEntry{row: vi(b), src: e.Src, sgn: -1})
			}
		}
		for k := g0; k < s.gt.NNZ(); k++ {
			s.ge = append(s.ge, ei)
		}
		for k := c0; k < s.ct.NNZ(); k++ {
			s.ce = append(s.ce, ei)
		}
	}
	// Mutual inductances couple the branch equations:
	// row j1 gains −M·dj2/dt and row j2 gains −M·dj1/dt, matching the
	// −L self terms' sign convention.
	for _, m := range ckt.Mutuals() {
		j1, ok1 := branchOf[m.L1]
		j2, ok2 := branchOf[m.L2]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("mna: coupling %q references non-inductor elements", m.Name)
		}
		c0 := s.ct.NNZ()
		s.ct.Add(j1, j2, -m.M)
		s.ct.Add(j2, j1, -m.M)
		for k := c0; k < s.ct.NNZ(); k++ {
			s.ce = append(s.ce, m.L1)
		}
	}
	return s, nil
}

// stamp2 applies the standard two-terminal conductance/capacitance stamp.
// ia, ib are unknown indices (or negative via ground check using raw node
// numbers a, b).
func stamp2(m *numeric.Triplets, ia, ib int, v float64, a, b int) {
	if a != circuit.Ground {
		m.Add(ia, ia, v)
	}
	if b != circuit.Ground {
		m.Add(ib, ib, v)
	}
	if a != circuit.Ground && b != circuit.Ground {
		m.Add(ia, ib, -v)
		m.Add(ib, ia, -v)
	}
}

// computeOrdering runs reverse Cuthill–McKee on the structure of |G|+|C|
// to minimize bandwidth, then records the band widths. The adjacency
// lists, the ordering, and the band widths are all derived from the
// triplets in O(nnz) — no dense scan anywhere.
func (s *system) computeOrdering() {
	adj := numeric.Adjacency(s.n, s.gt, s.ct)
	s.inv = numeric.RCM(adj) // inv[new] = orig
	s.perm = make([]int, s.n)
	for newIdx, orig := range s.inv {
		s.perm[orig] = newIdx
	}
	s.kl, s.ku = numeric.PermutedBandwidth(s.perm, s.gt, s.ct)
}

// passiveTriplets returns copies of G and C with every branch-equation
// row (rows nv…n-1: inductor and voltage-source constraints) negated —
// the PRIMA passive form C = diag(node caps, +L), G + Gᵀ ⪰ 0 that the
// model-order reduction projects (reduced.go). Solutions are identical
// to the original convention's; only the row scaling differs.
func (s *system) passiveTriplets() (gt, ct *numeric.Triplets) {
	flip := func(t *numeric.Triplets) *numeric.Triplets {
		out := &numeric.Triplets{
			N: t.N,
			I: t.I, J: t.J, // structure is shared read-only
			V: append([]float64(nil), t.V...),
		}
		for k, i := range t.I {
			if i >= s.nv {
				out.V[k] = -out.V[k]
			}
		}
		return out
	}
	return flip(s.gt), flip(s.ct)
}

// permuted returns band copies of G and C in the RCM ordering, stamped
// directly from the triplets in O(nnz).
func (s *system) permuted() (gb, cb *numeric.BandMatrix) {
	gb = numeric.NewBandMatrix(s.n, s.kl, s.ku)
	cb = numeric.NewBandMatrix(s.n, s.kl, s.ku)
	s.gt.AddScaledToBand(gb, s.perm, 1)
	s.ct.AddScaledToBand(cb, s.perm, 1)
	return gb, cb
}

// bvec fills b(t) in permuted ordering.
func (s *system) bvec(t float64, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, e := range s.sources {
		dst[s.perm[e.row]] += e.sgn * e.src.V(t)
	}
}

// Simulate runs a fixed-step transient analysis.
func Simulate(ckt *circuit.Circuit, opts Options) (*Result, error) {
	sys, err := assemble(ckt)
	if err != nil {
		return nil, err
	}
	return simulateSys(sys, ckt.Nodes(), opts)
}

// simulateSys is Simulate on an already-assembled system: the shared
// core of the cold path (assemble = stamp + RCM) and the frozen path
// (Frozen.Restamp = stamp only, borrowing a previous ordering). Both
// run the identical step loop on the identical permutation, so for the
// same circuit values they produce bit-identical results.
func simulateSys(sys *system, nNodes int, opts Options) (*Result, error) {
	if opts.Dt <= 0 {
		return nil, errors.New("mna: Options.Dt must be positive")
	}
	if opts.TEnd <= opts.Dt {
		return nil, fmt.Errorf("mna: TEnd (%g) must exceed Dt (%g)", opts.TEnd, opts.Dt)
	}
	for _, p := range opts.Probes {
		if p <= 0 || p >= nNodes {
			return nil, fmt.Errorf("mna: probe node %d out of range (ground cannot be probed)", p)
		}
	}
	h := opts.Dt
	steps := int(math.Ceil(opts.TEnd / h))
	n := sys.n
	be := opts.Method == BackwardEuler

	// Left matrix A per method, stamped directly from the sparse triplets
	// in O(nnz):
	//   trapezoidal: A = C/h + G/2,  rhs = (C/h − G/2)x + (b_n + b_{n+1})/2
	//   BE:          A = C/h + G,    rhs = (C/h)x + b_{n+1}
	// The right matrix (C/h − G/2 resp. C/h) is never materialized: with
	// Bm = 2C/h − A (trapezoidal) the step right-hand side is built from
	// C alone — mostly diagonal in MNA, with off-diagonal entries only
	// from floating capacitors and mutual inductances — and the previous
	// step's right-hand side (= A·x).
	A := numeric.NewBandMatrix(n, sys.kl, sys.ku)
	sys.ct.AddScaledToBand(A, sys.perm, 1/h)
	if be {
		sys.gt.AddScaledToBand(A, sys.perm, 1)
	} else {
		sys.gt.AddScaledToBand(A, sys.perm, 0.5)
	}
	lu, err := numeric.FactorBandLU(A)
	if err != nil {
		return nil, fmt.Errorf("mna: transient matrix is singular (dt=%g): %w", h, err)
	}
	// Permuted C split into its diagonal and off-diagonal entries, scaled
	// by 2/h (trapezoidal) or 1/h (BE).
	cScale := 2 / h
	if be {
		cScale = 1 / h
	}
	cdiag := make([]float64, n)
	type cOff struct {
		i, j int
		v    float64
	}
	var coff []cOff
	for k, i := range sys.ct.I {
		pi, pj := sys.perm[i], sys.perm[sys.ct.J[k]]
		v := sys.ct.V[k] * cScale
		if pi == pj {
			cdiag[pi] += v
		} else {
			coff = append(coff, cOff{pi, pj, v})
		}
	}

	// Initial condition: DC operating point at t=0 when G is nonsingular;
	// otherwise start from rest.
	x := make([]float64, n)
	b0 := make([]float64, n)
	sys.bvec(0, b0)
	gb := numeric.NewBandMatrix(n, sys.kl, sys.ku)
	sys.gt.AddScaledToBand(gb, sys.perm, 1)
	if guLU, err := numeric.FactorBandLU(gb); err == nil {
		guLU.SolveTo(x, b0)
	}

	res := &Result{
		Time:  make([]float64, 0, steps+1),
		probe: make(map[int][]float64, len(opts.Probes)),
	}
	// Probe state is resolved up front (permuted index → sample slice) so
	// the recording done every timestep touches no maps and, with the
	// slices preallocated to full capacity, allocates nothing.
	probeAt := make([]int, len(opts.Probes))
	probeBuf := make([][]float64, len(opts.Probes))
	for k, p := range opts.Probes {
		probeAt[k] = sys.perm[p-1]
		probeBuf[k] = make([]float64, 0, steps+1)
	}
	record := func(t float64) {
		res.Time = append(res.Time, t)
		for k, pi := range probeAt {
			probeBuf[k] = append(probeBuf[k], x[pi])
		}
	}
	record(0)

	// Steady-state step loop: every vector is reused, the solve writes
	// over the state in place, and the source contributions touch only
	// the source rows — O(#sources), not O(n) — so each timestep performs
	// zero heap allocations. For the trapezoidal rule the right-hand side
	// is rebuilt as 2(C/h)·x − rhs_prev + b̄, where rhs_prev (= A·x up to
	// the solve's residual) is the vector the previous step solved with;
	// for BE it is simply (C/h)·x + b.
	rhs := make([]float64, n)
	rhsPrev := make([]float64, n)
	srcRow := make([]int, len(sys.sources))
	vPrev := make([]float64, len(sys.sources))
	for k, e := range sys.sources {
		srcRow[k] = sys.perm[e.row]
		vPrev[k] = e.src.V(0)
	}
	if !be {
		A.MulVecTo(rhsPrev, x)
	}
	t := 0.0
	for s := 0; s < steps; s++ {
		if s%ctxStride == 0 {
			if cerr := cancel.Check(opts.Ctx); cerr != nil {
				return nil, cerr
			}
		}
		t1 := t + h
		if be {
			for i, c := range cdiag {
				rhs[i] = c * x[i]
			}
		} else {
			for i, c := range cdiag {
				rhs[i] = math.FMA(c, x[i], -rhsPrev[i])
			}
		}
		for _, e := range coff {
			rhs[e.i] += e.v * x[e.j]
		}
		if be {
			for k, e := range sys.sources {
				rhs[srcRow[k]] += e.sgn * e.src.V(t1)
			}
		} else {
			for k, e := range sys.sources {
				v1 := e.src.V(t1)
				rhs[srcRow[k]] += e.sgn * (vPrev[k] + v1) / 2
				vPrev[k] = v1
			}
		}
		lu.SolveTo(x, rhs)
		rhs, rhsPrev = rhsPrev, rhs
		t = t1
		record(t)
	}
	for k, p := range opts.Probes {
		res.probe[p] = probeBuf[k]
	}

	// Final state in original ordering.
	res.Final = make([]float64, n)
	for newIdx, orig := range sys.inv {
		res.Final[orig] = x[newIdx]
	}
	return res, nil
}

// Bandwidth reports the (kl, ku) band widths the RCM ordering achieves
// for the circuit — an observability hook for the ladder benchmarks.
func Bandwidth(ckt *circuit.Circuit) (kl, ku int, err error) {
	sys, err := assemble(ckt)
	if err != nil {
		return 0, 0, err
	}
	return sys.kl, sys.ku, nil
}
