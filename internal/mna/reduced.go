package mna

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"rlckit/internal/cancel"
	"rlckit/internal/circuit"
	"rlckit/internal/mor"
	"rlckit/internal/numeric"
)

// This file is the MNA-side face of the Krylov model-order reduction
// engine (internal/mor): Reduce compresses an assembled circuit into a
// reusable q×q model, Reduced.AC and Reduced.Simulate evaluate it, and
// ACReduced is the drop-in fast path for AC — reduce once, evaluate
// every frequency point against the tiny model, fall back to the exact
// band engine whenever the reduction cannot certify itself.

// ReduceOptions tunes Reduce. Freqs is required: the probe/validation
// grid (Hz, ascending, positive) over which the reduced model must
// reproduce the exact transfer function.
type ReduceOptions struct {
	// Freqs are the probe/validation frequencies in Hz.
	Freqs []float64
	// MaxOrder caps the reduced order (default 32).
	MaxOrder int
	// Tol and ValTol are the convergence and validation tolerances
	// (defaults 5e-4 and 5e-3; see mor.Options).
	Tol, ValTol float64
	// SkipValidate skips the exact-solve certification.
	SkipValidate bool
	// Anchors are same-topology instances of the circuit (typically
	// process-corner extremes) whose Krylov chains join the basis, so
	// that any instance inside the bracketed parameter range can later
	// be evaluated through the frozen basis (Reproject /
	// SetClassWeights) without losing accuracy. Each anchor is also
	// exactly validated.
	Anchors []*circuit.Circuit
	// Ctx, when non-nil, cancels the build between Arnoldi growth
	// rounds (see mor.Options.Ctx).
	Ctx context.Context
	// Pencil, when non-nil, is a serialized certified model from a
	// previous identical Reduce (mor.EncodeModel bytes, e.g. out of the
	// warm-start store). It is used instead of running the Arnoldi
	// build only when its embedded fingerprint matches the system and
	// options assembled here — a stale or mis-keyed pencil silently
	// falls through to a fresh build, never a wrong model.
	Pencil []byte
	// OnBuild, when non-nil, receives the serialized model after a
	// successful fresh build (not after a Pencil reuse), so callers can
	// persist it for the next identical Reduce.
	OnBuild func(pencil []byte)
}

// Reduced is a circuit compressed to a reduced-order model, plus the
// bookkeeping to drive it with the circuit's sources and read its
// probed nodes.
type Reduced struct {
	sys    *system
	model  *mor.Model
	probes []int // node IDs, in output order
	// gt, ct are the build-time passive-form triplets (class splitting
	// reads their values and the provenance arrays in sys).
	gt, ct *numeric.Triplets
	// Per-class congruence blocks (ProjectClasses) and the combine
	// scratch (SetClassWeights).
	gBlocks, cBlocks []*numeric.Matrix
	combG, combC     []float64
	// scaling is the per-element incremental state (incremental.go).
	scaling *elemScaling
}

// Reduce assembles the circuit and builds a moment-matching reduced
// model observing the given probe nodes. Any certification failure
// surfaces as an error (wrapping mor.ErrNoConverge when the cause is
// accuracy); callers fall back to the exact engine.
func Reduce(ckt *circuit.Circuit, probes []int, opt ReduceOptions) (*Reduced, error) {
	if len(probes) == 0 {
		return nil, errors.New("mna: Reduce needs at least one probe node")
	}
	sys, err := assemble(ckt)
	if err != nil {
		return nil, err
	}
	outputs := make([]int, len(probes))
	for i, p := range probes {
		if p <= 0 || p >= ckt.Nodes() {
			return nil, fmt.Errorf("mna: probe node %d out of range (ground cannot be probed)", p)
		}
		outputs[i] = sys.perm[p-1]
	}
	if len(sys.sources) == 0 {
		return nil, errors.New("mna: Reduce needs at least one source")
	}
	// The reduction runs on the PRIMA passive form: every branch
	// equation row (inductors and voltage sources, rows nv…n-1) is
	// negated, making C = diag(node caps, +L) symmetric PSD and
	// G + Gᵀ PSD. Row scaling leaves every solution — and therefore the
	// transfer function — untouched, but the congruence projection of
	// the passive form is provably stable and passive, where projecting
	// the raw −L convention produces unstable spurious modes that wreck
	// the reduced transient.
	gt, ct := sys.passiveTriplets()
	inputs := make([]mor.InputCol, len(sys.sources))
	for i, e := range sys.sources {
		sgn := e.sgn
		if e.row >= sys.nv {
			sgn = -sgn
		}
		inputs[i] = mor.InputCol{Rows: []int{sys.perm[e.row]}, Vals: []float64{sgn}}
	}
	var anchors []mor.AnchorValues
	for i, ackt := range opt.Anchors {
		asys, err := assembleCore(ackt)
		if err != nil {
			return nil, fmt.Errorf("mna: anchor %d: %w", i, err)
		}
		if asys.n != sys.n || asys.gt.NNZ() != sys.gt.NNZ() || asys.ct.NNZ() != sys.ct.NNZ() {
			return nil, fmt.Errorf("mna: anchor %d is not the same topology", i)
		}
		asys.nv = sys.nv // passiveTriplets flips by row range
		agt, act := asys.passiveTriplets()
		anchors = append(anchors, mor.AnchorValues{G: agt.V, C: act.V})
	}
	omegas := make([]float64, len(opt.Freqs))
	for i, f := range opt.Freqs {
		omegas[i] = 2 * math.Pi * f
	}
	morSys := &mor.System{
		N: sys.n, KL: sys.kl, KU: sys.ku, Perm: sys.perm,
		G: gt, C: ct,
		Inputs: inputs, Outputs: outputs,
		Anchors: anchors,
	}
	morOpts := mor.Options{
		Omegas: omegas, MaxOrder: opt.MaxOrder,
		Tol: opt.Tol, ValTol: opt.ValTol, SkipValidate: opt.SkipValidate,
		Ctx: opt.Ctx,
	}
	// Pencil fast path: a persisted model whose fingerprint matches this
	// exact system+options stands in for the Arnoldi build. Any mismatch
	// or decode failure falls through to building fresh.
	var (
		model *mor.Model
		fp    uint64
		fpOK  bool
		err2  error
	)
	if opt.Pencil != nil || opt.OnBuild != nil {
		if v, ferr := mor.Fingerprint(morSys, morOpts); ferr == nil {
			fp, fpOK = v, true
		}
	}
	if fpOK && opt.Pencil != nil {
		if m, derr := mor.DecodeModel(opt.Pencil, fp); derr == nil {
			model = m
		}
	}
	if model == nil {
		model, err2 = mor.Build(morSys, morOpts)
		if err2 != nil {
			return nil, err2
		}
		if fpOK && opt.OnBuild != nil {
			opt.OnBuild(mor.EncodeModel(model, fp))
		}
	}
	return &Reduced{
		sys: sys, model: model, probes: append([]int(nil), probes...),
		gt: gt, ct: ct,
	}, nil
}

// Model exposes the underlying reduced-order model for callers that
// drive the transient directly (refeng's delay extraction).
func (r *Reduced) Model() *mor.Model { return r.model }

// OutputIndex maps a reduce-time probe node to its model output index.
func (r *Reduced) OutputIndex(node int) (int, error) {
	for k, p := range r.probes {
		if p == node {
			return k, nil
		}
	}
	return 0, fmt.Errorf("mna: node %d was not probed at Reduce time", node)
}

// ProjectClasses precomputes per-class congruence blocks: classOf maps
// an element index (circuit.Elements order; mutual couplings map to
// their first inductor) to a class in [0, nClasses). Because the
// congruence projection is linear in the matrix values, a scalar
// class-scaled instance of the circuit then recombines its reduced
// pencil from these blocks in O(nClasses·q²) via SetClassWeights —
// with no re-assembly, no reprojection, nothing proportional to the
// full order n.
func (r *Reduced) ProjectClasses(nClasses int, classOf func(elem int) int) error {
	if nClasses < 1 {
		return errors.New("mna: ProjectClasses needs at least one class")
	}
	q := r.model.Q()
	r.gBlocks = make([]*numeric.Matrix, nClasses)
	r.cBlocks = make([]*numeric.Matrix, nClasses)
	mask := make([]float64, len(r.gt.V))
	split := func(vals []float64, prov []int, onC bool, dst []*numeric.Matrix) error {
		for c := 0; c < nClasses; c++ {
			mask := mask[:len(vals)]
			any := false
			for k := range vals {
				if classOf(prov[k]) == c {
					mask[k] = vals[k]
					any = true
				} else {
					mask[k] = 0
				}
			}
			dst[c] = numeric.NewMatrix(q, q)
			if !any {
				continue
			}
			if err := r.model.ProjectValues(mask, onC, dst[c]); err != nil {
				return err
			}
		}
		return nil
	}
	if cap(mask) < len(r.ct.V) {
		mask = make([]float64, len(r.ct.V))
	}
	if err := split(r.gt.V, r.sys.ge, false, r.gBlocks); err != nil {
		return err
	}
	if err := split(r.ct.V, r.sys.ce, true, r.cBlocks); err != nil {
		return err
	}
	r.combG = make([]float64, q*q)
	r.combC = make([]float64, q*q)
	return nil
}

// SetClassWeights installs the reduced pencil for a class-scaled
// instance: G̃ = Σ wG[c]·G̃_c, C̃ = Σ wC[c]·C̃_c over the ProjectClasses
// blocks. O(nClasses·q²); the next NewTransient / AC evaluation sees
// the combined pencil.
func (r *Reduced) SetClassWeights(wG, wC []float64) error {
	if r.gBlocks == nil {
		return errors.New("mna: SetClassWeights before ProjectClasses")
	}
	if len(wG) != len(r.gBlocks) || len(wC) != len(r.cBlocks) {
		return fmt.Errorf("mna: SetClassWeights needs %d weights", len(r.gBlocks))
	}
	for i := range r.combG {
		r.combG[i] = 0
		r.combC[i] = 0
	}
	for c, w := range wG {
		if w == 0 {
			continue
		}
		for i, v := range r.gBlocks[c].Data {
			r.combG[i] += w * v
		}
	}
	for c, w := range wC {
		if w == 0 {
			continue
		}
		for i, v := range r.cBlocks[c].Data {
			r.combC[i] += w * v
		}
	}
	return r.model.UsePencil(r.combG, r.combC)
}

// Info returns the model's accuracy metadata.
func (r *Reduced) Info() mor.Info { return r.model.Info }

// Reproject recomputes the reduced matrices through the frozen basis
// from a same-topology circuit (identical structure, perturbed values)
// — the Monte Carlo fast path. The probes and sources must be laid out
// exactly as in the reduce-time circuit.
func (r *Reduced) Reproject(ckt *circuit.Circuit) error {
	// Same topology ⇒ same structure ⇒ the frozen ordering still
	// applies; skip the RCM recomputation.
	sys, err := assembleCore(ckt)
	if err != nil {
		return err
	}
	if sys.n != r.sys.n || len(sys.sources) != len(r.sys.sources) {
		return fmt.Errorf("mna: reprojection topology mismatch (%d vs %d unknowns)", sys.n, r.sys.n)
	}
	sys.perm, sys.inv, sys.kl, sys.ku = r.sys.perm, r.sys.inv, r.sys.kl, r.sys.ku
	gt, ct := sys.passiveTriplets()
	if err := r.model.Reproject(gt, ct); err != nil {
		return err
	}
	r.sys = sys // transient inputs now come from the perturbed sources
	return nil
}

// AC evaluates the reduced transfer function at the given frequencies
// (Hz, any order, unit phasors on every source) for the reduce-time
// probe nodes. Each point costs one q×q complex factorization —
// microseconds — instead of a full band factorization.
func (r *Reduced) AC(freqs []float64) (*ACResult, error) {
	if len(freqs) == 0 {
		return nil, errors.New("mna: AC needs at least one frequency")
	}
	for _, f := range freqs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("mna: bad frequency %g", f)
		}
	}
	eval := r.model.NewACEval()
	row := make([]complex128, len(r.probes))
	cols := make([][]complex128, len(r.probes))
	for pi := range cols {
		cols[pi] = make([]complex128, len(freqs))
	}
	for k, f := range freqs {
		if err := r.model.EvalAC(eval, 2*math.Pi*f, row); err != nil {
			return nil, fmt.Errorf("mna: reduced AC at %g Hz: %w", f, err)
		}
		for pi := range cols {
			cols[pi][k] = row[pi]
		}
	}
	res := &ACResult{
		Freq:  append([]float64(nil), freqs...),
		probe: make(map[int][]complex128, len(r.probes)),
	}
	for pi, p := range r.probes {
		res.probe[p] = cols[pi]
	}
	return res, nil
}

// Simulate runs a fixed-step transient of the reduced model with the
// circuit's sources, mirroring Simulate's contract for the reduce-time
// probes. Only the trapezoidal rule is supported. Each timestep costs
// O(q²) dense work and no heap allocations.
func (r *Reduced) Simulate(opts Options) (*Result, error) {
	if opts.Method != Trapezoidal {
		return nil, errors.New("mna: reduced transient supports the trapezoidal rule only")
	}
	if opts.Dt <= 0 {
		return nil, errors.New("mna: Options.Dt must be positive")
	}
	if opts.TEnd <= opts.Dt {
		return nil, fmt.Errorf("mna: TEnd (%g) must exceed Dt (%g)", opts.TEnd, opts.Dt)
	}
	outAt := make([]int, len(opts.Probes))
	for i, p := range opts.Probes {
		k := -1
		for j, rp := range r.probes {
			if rp == p {
				k = j
				break
			}
		}
		if k < 0 {
			return nil, fmt.Errorf("mna: node %d was not probed at Reduce time", p)
		}
		outAt[i] = k
	}
	h := opts.Dt
	steps := int(math.Ceil(opts.TEnd / h))
	tr, err := r.model.NewTransient(h)
	if err != nil {
		return nil, err
	}
	u := make([]float64, len(r.sys.sources))
	srcAt := func(t float64) {
		for i, e := range r.sys.sources {
			u[i] = e.src.V(t)
		}
	}
	srcAt(0)
	tr.Start(u)
	res := &Result{
		Time:  make([]float64, 0, steps+1),
		probe: make(map[int][]float64, len(opts.Probes)),
	}
	buf := make([][]float64, len(opts.Probes))
	for i := range buf {
		buf[i] = make([]float64, 0, steps+1)
	}
	record := func(t float64) {
		res.Time = append(res.Time, t)
		for i, k := range outAt {
			buf[i] = append(buf[i], tr.Output(k))
		}
	}
	record(0)
	t := 0.0
	for s := 0; s < steps; s++ {
		if s%ctxStride == 0 {
			if cerr := cancel.Check(opts.Ctx); cerr != nil {
				return nil, cerr
			}
		}
		t += h
		srcAt(t)
		tr.Step(u)
		record(t)
	}
	for i, p := range opts.Probes {
		res.probe[p] = buf[i]
	}
	return res, nil
}

// ACReduced thresholds: below these sizes the exact engine wins and
// ACReduced does not attempt a reduction.
const (
	acReduceMinUnknowns = 64
	acReduceMinFreqs    = 12
)

// ACStats reports which engine answered an ACReduced call.
type ACStats struct {
	// Reduced is true when the reduced model produced the result;
	// false means the exact band engine ran (fallback or small case).
	Reduced bool
	// Info is the model's accuracy metadata when Reduced is true.
	Info mor.Info
}

// ACReduced is the reduce-once/evaluate-everywhere AC fast path: build
// an adaptively-sized reduced model validated on the requested grid,
// then evaluate every frequency against it. Small systems, short
// sweeps, and any model that fails certification fall back to the
// exact AC engine — the result is then bit-identical to AC's.
func ACReduced(ckt *circuit.Circuit, freqs []float64, probes []int) (*ACResult, ACStats, error) {
	if len(freqs) >= acReduceMinFreqs && ckt.Nodes()-1 >= acReduceMinUnknowns {
		if probe := probeGrid(freqs); probe != nil {
			if red, err := Reduce(ckt, probes, ReduceOptions{Freqs: probe}); err == nil {
				if res, err := red.AC(freqs); err == nil {
					return res, ACStats{Reduced: true, Info: red.Info()}, nil
				}
			}
		}
	}
	res, err := AC(ckt, freqs, probes)
	return res, ACStats{}, err
}

// probeGrid picks up to 7 log-spread positive frequencies from the
// requested sweep as the build's probe/validation grid, or nil when
// the sweep has too few distinct positive points to certify against.
func probeGrid(freqs []float64) []float64 {
	pos := make([]float64, 0, len(freqs))
	for _, f := range freqs {
		if f > 0 && !math.IsInf(f, 0) && !math.IsNaN(f) {
			pos = append(pos, f)
		}
	}
	sort.Float64s(pos)
	uniq := pos[:0]
	for i, f := range pos {
		if i == 0 || f != uniq[len(uniq)-1] {
			uniq = append(uniq, f)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	const want = 7
	if len(uniq) <= want {
		return append([]float64(nil), uniq...)
	}
	grid := make([]float64, 0, want)
	for i := 0; i < want; i++ {
		grid = append(grid, uniq[i*(len(uniq)-1)/(want-1)])
	}
	return grid
}
