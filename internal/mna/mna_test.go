package mna

import (
	"math"
	"testing"

	"rlckit/internal/circuit"
	"rlckit/internal/waveform"
)

// buildRC returns a series RC (vin —R— out —C— gnd) driven by an ideal
// step delayed by delay. The delay lets the t=0 DC operating point start
// the line at rest; the response is the ideal-step response shifted by
// exactly delay.
func buildRC(r, c, delay float64) (*circuit.Circuit, int) {
	ckt := circuit.New()
	in := ckt.Node()
	out := ckt.Node()
	must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1, Delay: delay}))
	must(ckt.AddR("r", in, out, r))
	must(ckt.AddC("c", out, circuit.Ground, c))
	return ckt, out
}

// buildSeriesRLC returns a delayed-step-driven series RLC with output
// across C.
func buildSeriesRLC(r, l, c, delay float64) (*circuit.Circuit, int) {
	ckt := circuit.New()
	in := ckt.Node()
	mid := ckt.Node()
	out := ckt.Node()
	must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1, Delay: delay}))
	must(ckt.AddR("r", in, mid, r))
	must(ckt.AddL("l", mid, out, l))
	must(ckt.AddC("c", out, circuit.Ground, c))
	return ckt, out
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func TestRCStepMatchesAnalytic(t *testing.T) {
	r, c := 1000.0, 1e-12 // τ = 1 ns
	tau := r * c
	dt := tau / 200
	// Trapezoidal integration treats the ideal jump as a one-step ramp,
	// i.e. an effective step at delay − dt/2.
	delay := tau/40 - dt/2
	ckt, out := buildRC(r, c, tau/40)
	res, err := Simulate(ckt, Options{Dt: dt, TEnd: 8 * tau, Probes: []int{out}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5 * tau, tau, 2 * tau, 5 * tau} {
		want := 1 - math.Exp(-tt/tau)
		if got := w.At(tt + delay); math.Abs(got-want) > 2e-4 {
			t.Errorf("v(%g) = %g, want %g", tt, got, want)
		}
	}
	d, err := w.Delay50(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := tau * math.Ln2; math.Abs(d-delay-want) > 1e-3*want {
		t.Errorf("delay50 = %g, want %g", d-delay, want)
	}
}

func TestSeriesRLCUnderdampedMatchesAnalytic(t *testing.T) {
	r, l, c := 20.0, 1e-9, 1e-12
	wn := 1 / math.Sqrt(l*c)
	zeta := r / 2 * math.Sqrt(c/l) // 0.316
	wd := wn * math.Sqrt(1-zeta*zeta)
	analytic := func(tt float64) float64 {
		e := math.Exp(-zeta * wn * tt)
		return 1 - e*(math.Cos(wd*tt)+zeta/math.Sqrt(1-zeta*zeta)*math.Sin(wd*tt))
	}
	period := 2 * math.Pi / wn
	delay := period / 50
	ckt, out := buildSeriesRLC(r, l, c, delay)
	res, err := Simulate(ckt, Options{Dt: period / 2000, TEnd: 12 * period, Probes: []int{out}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Waveform(out)
	for _, tt := range []float64{0.3 * period, period, 3 * period, 8 * period} {
		want := analytic(tt)
		if got := w.At(tt + delay); math.Abs(got-want) > 5e-3 {
			t.Errorf("v(%g) = %g, want %g", tt, got, want)
		}
	}
	// Overshoot should match e^{−πζ/√(1−ζ²)}.
	wantOS := math.Exp(-math.Pi * zeta / math.Sqrt(1-zeta*zeta))
	if got := w.Overshoot(1); math.Abs(got-wantOS) > 5e-3 {
		t.Errorf("overshoot = %g, want %g", got, wantOS)
	}
}

func TestSeriesRLCOverdamped(t *testing.T) {
	// ζ = 5: no overshoot, settles to 1.
	l, c := 1e-9, 1e-12
	r := 2 * 5 * math.Sqrt(l/c)
	tau := r * c * 1.5
	ckt, out := buildSeriesRLC(r, l, c, tau/20)
	res, err := Simulate(ckt, Options{Dt: tau / 400, TEnd: 30 * tau, Probes: []int{out}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Waveform(out)
	if os := w.Overshoot(1); os > 1e-6 {
		t.Errorf("overdamped overshoot = %g", os)
	}
	if f := w.Final(); math.Abs(f-1) > 1e-3 {
		t.Errorf("final = %g", f)
	}
}

func TestBackwardEulerConvergesToTrapezoidal(t *testing.T) {
	r, c := 1000.0, 1e-12
	tau := r * c
	ckt, out := buildRC(r, c, tau/50)
	rtz, err := Simulate(ckt, Options{Dt: tau / 400, TEnd: 6 * tau, Probes: []int{out}})
	if err != nil {
		t.Fatal(err)
	}
	rbe, err := Simulate(ckt, Options{Method: BackwardEuler, Dt: tau / 4000, TEnd: 6 * tau, Probes: []int{out}})
	if err != nil {
		t.Fatal(err)
	}
	wt, _ := rtz.Waveform(out)
	wb, _ := rbe.Waveform(out)
	if d := waveform.MaxAbsDiff(wt, wb); d > 2e-3 {
		t.Errorf("methods disagree by %g", d)
	}
}

func TestDCOperatingPointDivider(t *testing.T) {
	// DC source into R-R divider: output must start at the divided value.
	ckt := circuit.New()
	in := ckt.Node()
	out := ckt.Node()
	must(ckt.AddV("v", in, circuit.Ground, circuit.DC(2)))
	must(ckt.AddR("r1", in, out, 1000))
	must(ckt.AddR("r2", out, circuit.Ground, 3000))
	res, err := Simulate(ckt, Options{Dt: 1e-12, TEnd: 1e-10, Probes: []int{out}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.V(out)
	for _, s := range []int{0, len(v) / 2, len(v) - 1} {
		if math.Abs(v[s]-1.5) > 1e-9 {
			t.Errorf("divider sample %d = %g, want 1.5", s, v[s])
		}
	}
}

func TestSourcePolarity(t *testing.T) {
	// Source with negative terminal at the circuit node drives −1 V.
	ckt := circuit.New()
	n := ckt.Node()
	must(ckt.AddV("v", circuit.Ground, n, circuit.DC(1)))
	must(ckt.AddR("r", n, circuit.Ground, 100))
	res, err := Simulate(ckt, Options{Dt: 1e-12, TEnd: 1e-10, Probes: []int{n}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.V(n)
	if math.Abs(v[len(v)-1]+1) > 1e-9 {
		t.Errorf("got %g, want -1", v[len(v)-1])
	}
}

func TestOptionsValidation(t *testing.T) {
	ckt, out := buildRC(1000, 1e-12, 1e-13)
	if _, err := Simulate(ckt, Options{Dt: 0, TEnd: 1}); err == nil {
		t.Error("Dt=0 accepted")
	}
	if _, err := Simulate(ckt, Options{Dt: 1, TEnd: 0.5}); err == nil {
		t.Error("TEnd<Dt accepted")
	}
	if _, err := Simulate(ckt, Options{Dt: 1e-12, TEnd: 1e-10, Probes: []int{99}}); err == nil {
		t.Error("bad probe accepted")
	}
	if _, err := Simulate(ckt, Options{Dt: 1e-12, TEnd: 1e-10, Probes: []int{0}}); err == nil {
		t.Error("ground probe accepted")
	}
	res, err := Simulate(ckt, Options{Dt: 1e-12, TEnd: 1e-10, Probes: []int{out}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.V(out + 55); err == nil {
		t.Error("unprobed node read accepted")
	}
	if _, err := res.Waveform(out + 55); err == nil {
		t.Error("unprobed waveform accepted")
	}
}

func TestInvalidCircuitRejected(t *testing.T) {
	ckt := circuit.New()
	_ = ckt.Node()
	if _, err := Simulate(ckt, Options{Dt: 1e-12, TEnd: 1e-9}); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestBandwidthLadderIsNarrow(t *testing.T) {
	// A 50-segment RLC ladder must have bandwidth much smaller than n.
	ckt := circuit.New()
	in := ckt.Node()
	must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1}))
	prev := in
	for i := 0; i < 50; i++ {
		mid := ckt.Node()
		n := ckt.Node()
		must(ckt.AddR("r", prev, mid, 1))
		must(ckt.AddL("l", mid, n, 1e-9))
		must(ckt.AddC("c", n, circuit.Ground, 1e-15))
		prev = n
	}
	kl, ku, err := Bandwidth(ckt)
	if err != nil {
		t.Fatal(err)
	}
	if kl > 6 || ku > 6 {
		t.Errorf("RCM bandwidth too wide: kl=%d ku=%d", kl, ku)
	}
}

func TestMethodString(t *testing.T) {
	if Trapezoidal.String() != "trapezoidal" || BackwardEuler.String() != "backward-euler" {
		t.Error("method strings")
	}
	if Method(9).String() == "" {
		t.Error("unknown method string")
	}
}

func TestEnergyConservationLC(t *testing.T) {
	// Lossless LC ring driven by a step through a tiny resistor: with
	// trapezoidal integration the oscillation amplitude must not grow.
	ckt := circuit.New()
	in := ckt.Node()
	out := ckt.Node()
	l, c := 1e-9, 1e-12
	must(ckt.AddV("vin", in, circuit.Ground,
		circuit.Step{Amplitude: 1, Delay: math.Sqrt(l * c)}))
	must(ckt.AddR("r", in, out, 1e-3)) // nearly lossless
	mid := ckt.Node()
	must(ckt.AddL("l", out, mid, l))
	must(ckt.AddC("c", mid, circuit.Ground, c))
	period := 2 * math.Pi * math.Sqrt(l*c)
	res, err := Simulate(ckt, Options{Dt: period / 500, TEnd: 50 * period, Probes: []int{mid}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.V(mid)
	// Peak in the first 10 periods vs peak in the last 10: must not grow.
	n := len(v)
	peak := func(seg []float64) float64 {
		m := 0.0
		for _, x := range seg {
			if a := math.Abs(x - 1); a > m {
				m = a
			}
		}
		return m
	}
	early := peak(v[:n/5])
	late := peak(v[4*n/5:])
	if late > early*1.01 {
		t.Errorf("oscillation grows: early %g late %g", early, late)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	// 1 mA DC into 1 kΩ to ground: node voltage = 1 V.
	ckt := circuit.New()
	n := ckt.Node()
	must(ckt.AddI("i1", n, circuit.Ground, circuit.DC(1e-3)))
	must(ckt.AddR("r1", n, circuit.Ground, 1000))
	res, err := Simulate(ckt, Options{Dt: 1e-12, TEnd: 1e-10, Probes: []int{n}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.V(n)
	if math.Abs(v[len(v)-1]-1) > 1e-9 {
		t.Errorf("V = %g, want 1", v[len(v)-1])
	}
	// Reversed terminals: −1 V.
	ckt2 := circuit.New()
	m := ckt2.Node()
	must(ckt2.AddI("i1", circuit.Ground, m, circuit.DC(1e-3)))
	must(ckt2.AddR("r1", m, circuit.Ground, 1000))
	res2, err := Simulate(ckt2, Options{Dt: 1e-12, TEnd: 1e-10, Probes: []int{m}})
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := res2.V(m)
	if math.Abs(v2[len(v2)-1]+1) > 1e-9 {
		t.Errorf("V = %g, want -1", v2[len(v2)-1])
	}
}

func TestCurrentStepIntoRC(t *testing.T) {
	// Current step I into parallel RC: v(t) = I·R·(1 − e^{−t/RC}).
	r, c := 2000.0, 1e-12
	tau := r * c
	ckt := circuit.New()
	n := ckt.Node()
	must(ckt.AddI("i1", n, circuit.Ground, circuit.Step{Amplitude: 5e-4, Delay: tau / 50}))
	must(ckt.AddR("r1", n, circuit.Ground, r))
	must(ckt.AddC("c1", n, circuit.Ground, c))
	dt := tau / 400
	res, err := Simulate(ckt, Options{Dt: dt, TEnd: 10 * tau, Probes: []int{n}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Waveform(n)
	eff := tau/50 - dt/2
	for _, tt := range []float64{tau, 3 * tau, 8 * tau} {
		want := 1 * (1 - math.Exp(-tt/tau))
		if got := w.At(tt + eff); math.Abs(got-want) > 2e-3 {
			t.Errorf("v(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestACWithCurrentSource(t *testing.T) {
	// Unit AC current into parallel RC: |Z| at the pole = R/√2.
	r, c := 1000.0, 1e-12
	ckt := circuit.New()
	n := ckt.Node()
	must(ckt.AddI("i1", n, circuit.Ground, circuit.DC(1)))
	must(ckt.AddR("r1", n, circuit.Ground, r))
	must(ckt.AddC("c1", n, circuit.Ground, c))
	fPole := 1 / (2 * math.Pi * r * c)
	res, err := AC(ckt, []float64{fPole / 1000, fPole}, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := res.H(n)
	if math.Abs(real(h[0])-r) > 0.01*r {
		t.Errorf("low-f impedance %v, want %g", h[0], r)
	}
	if m := math.Hypot(real(h[1]), imag(h[1])); math.Abs(m-r/math.Sqrt2) > 0.01*r {
		t.Errorf("pole impedance %g, want %g", m, r/math.Sqrt2)
	}
}

func TestMutualInductanceModeSplitting(t *testing.T) {
	// Two identical LC tanks coupled by k: the even/odd modes resonate at
	// ω± = 1/sqrt((L ± M)·C). Drive one tank; its response contains both
	// modes. Check via AC analysis that the transfer peaks near both
	// split frequencies rather than the uncoupled 1/sqrt(LC).
	l, c, k := 1e-9, 1e-12, 0.3
	m := k * l
	build := func() (*circuit.Circuit, int, int) {
		ckt := circuit.New()
		in := ckt.Node()
		a := ckt.Node()
		b := ckt.Node()
		must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1, Delay: 1e-12}))
		// Weak (high-impedance) drive so both tanks oscillate freely and
		// the coupled system shows its split even/odd modes.
		must(ckt.AddR("rs", in, a, 2e3))
		must(ckt.AddL("l1", a, circuit.Ground, l))
		must(ckt.AddC("c1", a, circuit.Ground, c))
		must(ckt.AddL("l2", b, circuit.Ground, l))
		must(ckt.AddC("c2", b, circuit.Ground, c))
		must(ckt.AddR("rl", b, circuit.Ground, 1e5)) // keep b grounded at DC
		must(ckt.AddK("k12", "l1", "l2", k))
		return ckt, a, b
	}
	ckt, _, b := build()
	fPlus := 1 / (2 * math.Pi * math.Sqrt((l+m)*c))  // even mode
	fMinus := 1 / (2 * math.Pi * math.Sqrt((l-m)*c)) // odd mode
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*c))
	res, err := AC(ckt, []float64{fPlus, f0, fMinus}, []int{b})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := res.H(b)
	magAt := func(i int) float64 { return math.Hypot(real(h[i]), imag(h[i])) }
	// The victim transfer must be much larger at the split modes than at
	// the uncoupled resonance (which is now off-resonance for both modes).
	if magAt(0) < 3*magAt(1) || magAt(2) < 3*magAt(1) {
		t.Errorf("mode splitting not visible: |H| = %.3g, %.3g, %.3g at f+, f0, f-",
			magAt(0), magAt(1), magAt(2))
	}
}

func TestMutualInductanceEnergyCoupling(t *testing.T) {
	// Transient: with k > 0 the victim tank acquires energy; with the
	// coupling absent it stays quiet.
	l, c := 1e-9, 1e-12
	build := func(k float64) (*circuit.Circuit, int) {
		ckt := circuit.New()
		in := ckt.Node()
		a := ckt.Node()
		b := ckt.Node()
		must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1, Delay: 1e-12}))
		must(ckt.AddR("rs", in, a, 30))
		must(ckt.AddL("l1", a, circuit.Ground, l))
		must(ckt.AddC("c1", a, circuit.Ground, c))
		must(ckt.AddL("l2", b, circuit.Ground, l))
		must(ckt.AddC("c2", b, circuit.Ground, c))
		must(ckt.AddR("rl", b, circuit.Ground, 1e5))
		if k > 0 {
			must(ckt.AddK("k12", "l1", "l2", k))
		}
		return ckt, b
	}
	period := 2 * math.Pi * math.Sqrt(l*c)
	run := func(k float64) float64 {
		ckt, b := build(k)
		res, err := Simulate(ckt, Options{Dt: period / 400, TEnd: 20 * period, Probes: []int{b}})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.V(b)
		peak := 0.0
		for _, x := range v {
			if a := math.Abs(x); a > peak {
				peak = a
			}
		}
		return peak
	}
	coupled := run(0.3)
	uncoupled := run(0)
	if coupled < 0.05 {
		t.Errorf("coupled victim peak %.4g, expected visible coupling", coupled)
	}
	if uncoupled > coupled/10 {
		t.Errorf("uncoupled victim peak %.4g vs coupled %.4g", uncoupled, coupled)
	}
}

func TestAddKValidation(t *testing.T) {
	ckt := circuit.New()
	a := ckt.Node()
	b := ckt.Node()
	must(ckt.AddV("v", a, circuit.Ground, circuit.DC(1)))
	must(ckt.AddL("l1", a, b, 1e-9))
	must(ckt.AddL("l2", b, circuit.Ground, 1e-9))
	if err := ckt.AddK("k", "l1", "l2", 1.0); err == nil {
		t.Error("k=1 accepted")
	}
	if err := ckt.AddK("k", "l1", "l2", -0.1); err == nil {
		t.Error("negative k accepted")
	}
	if err := ckt.AddK("k", "l1", "zz", 0.5); err == nil {
		t.Error("unknown inductor accepted")
	}
	if err := ckt.AddK("k", "l1", "l1", 0.5); err == nil {
		t.Error("self-coupling accepted")
	}
	if err := ckt.AddK("k", "l1", "l2", 0.5); err != nil {
		t.Fatal(err)
	}
	if len(ckt.Mutuals()) != 1 {
		t.Error("mutual not recorded")
	}
	want := 0.5 * 1e-9
	if m := ckt.Mutuals()[0].M; math.Abs(m-want) > 1e-15 {
		t.Errorf("M = %g, want %g", m, want)
	}
}
