package mna

import (
	"fmt"

	"rlckit/internal/circuit"
)

// Frozen is an assembled system whose RCM ordering is pinned: Restamp
// re-stamps new element values (and sources) of a same-topology circuit
// into the frozen ordering — O(nnz) with no RCM and no bandwidth
// recomputation — and Simulate runs the ordinary transient on it.
//
// This is the exact engine's incremental what-if path: the ordering is
// purely structural (RCM reads only the sparsity pattern), so for a
// value-only edit the frozen ordering is the one a cold assemble would
// recompute, and Frozen.Simulate is bit-identical to mna.Simulate on
// the edited circuit. A structural edit (an element appearing or
// vanishing) changes the pattern; Restamp rejects it and the caller
// re-freezes.
type Frozen struct {
	sys    *system
	nNodes int
}

// Freeze assembles the circuit and pins its ordering.
func Freeze(ckt *circuit.Circuit) (*Frozen, error) {
	sys, err := assemble(ckt)
	if err != nil {
		return nil, err
	}
	return &Frozen{sys: sys, nNodes: ckt.Nodes()}, nil
}

// Restamp re-assembles values and sources from a same-topology circuit
// under the frozen ordering. The circuit must stamp the exact sparsity
// structure of the freeze-time circuit (same unknown count, same
// triplet counts, same source count) — element values and source
// waveforms are free to differ.
func (f *Frozen) Restamp(ckt *circuit.Circuit) error {
	sys, err := assembleCore(ckt)
	if err != nil {
		return err
	}
	if sys.n != f.sys.n || sys.nv != f.sys.nv ||
		sys.gt.NNZ() != f.sys.gt.NNZ() || sys.ct.NNZ() != f.sys.ct.NNZ() ||
		len(sys.sources) != len(f.sys.sources) || ckt.Nodes() != f.nNodes {
		return fmt.Errorf("mna: Restamp topology mismatch (%d vs %d unknowns, %d/%d vs %d/%d entries)",
			sys.n, f.sys.n, sys.gt.NNZ(), sys.ct.NNZ(), f.sys.gt.NNZ(), f.sys.ct.NNZ())
	}
	sys.perm, sys.inv, sys.kl, sys.ku = f.sys.perm, f.sys.inv, f.sys.kl, f.sys.ku
	f.sys = sys
	return nil
}

// Simulate runs a fixed-step transient on the frozen system, with
// Simulate's exact semantics.
func (f *Frozen) Simulate(opts Options) (*Result, error) {
	return simulateSys(f.sys, f.nNodes, opts)
}

// N returns the unknown count of the frozen system.
func (f *Frozen) N() int { return f.sys.n }
