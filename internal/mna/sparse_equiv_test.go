package mna

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"rlckit/internal/circuit"
)

// denseRef stamps G and C into dense matrices by the textbook MNA rules,
// written independently of the sparse assembly path so the two can be
// cross-checked. Branch unknowns are allocated in element order after
// the node voltages, matching assemble's convention.
func denseRef(ckt *circuit.Circuit) (g, c [][]float64, n int) {
	nv := ckt.Nodes() - 1
	nbr := 0
	for _, e := range ckt.Elements() {
		if e.Kind == circuit.KindInductor || e.Kind == circuit.KindVSource {
			nbr++
		}
	}
	n = nv + nbr
	g = make([][]float64, n)
	c = make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
		c[i] = make([]float64, n)
	}
	br := nv
	branch := map[int]int{}
	for ei, e := range ckt.Elements() {
		a, b := e.A, e.B
		ia, ib := a-1, b-1
		switch e.Kind {
		case circuit.KindResistor, circuit.KindCapacitor:
			m, v := g, 1/e.Value
			if e.Kind == circuit.KindCapacitor {
				m, v = c, e.Value
			}
			if a != circuit.Ground {
				m[ia][ia] += v
			}
			if b != circuit.Ground {
				m[ib][ib] += v
			}
			if a != circuit.Ground && b != circuit.Ground {
				m[ia][ib] -= v
				m[ib][ia] -= v
			}
		case circuit.KindInductor, circuit.KindVSource:
			j := br
			br++
			branch[ei] = j
			if a != circuit.Ground {
				g[ia][j] += 1
				g[j][ia] += 1
			}
			if b != circuit.Ground {
				g[ib][j] -= 1
				g[j][ib] -= 1
			}
			if e.Kind == circuit.KindInductor {
				c[j][j] -= e.Value
			}
		}
	}
	for _, m := range ckt.Mutuals() {
		j1, j2 := branch[m.L1], branch[m.L2]
		c[j1][j2] -= m.M
		c[j2][j1] -= m.M
	}
	return g, c, n
}

// checkSparseMatchesDense asserts that the sparse assembly + RCM path
// produces exactly the dense reference stamps and the tightest band.
func checkSparseMatchesDense(t *testing.T, ckt *circuit.Circuit, label string) {
	t.Helper()
	sys, err := assemble(ckt)
	if err != nil {
		t.Fatalf("%s: assemble: %v", label, err)
	}
	g, c, n := denseRef(ckt)
	if n != sys.n {
		t.Fatalf("%s: n = %d, dense reference says %d", label, sys.n, n)
	}
	// Band widths must be exactly those of the dense structure under the
	// same permutation.
	kl, ku := 0, 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g[i][j] != 0 || c[i][j] != 0 {
				if d := sys.perm[i] - sys.perm[j]; d > kl {
					kl = d
				} else if -d > ku {
					ku = -d
				}
			}
		}
	}
	if kl != sys.kl || ku != sys.ku {
		t.Errorf("%s: band (%d,%d), dense structure needs (%d,%d)", label, sys.kl, sys.ku, kl, ku)
	}
	gb, cb := sys.permuted()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pg := gb.At(sys.perm[i], sys.perm[j])
			pc := cb.At(sys.perm[i], sys.perm[j])
			if math.Abs(pg-g[i][j]) > 1e-12*(1+math.Abs(g[i][j])) {
				t.Fatalf("%s: G[%d][%d] = %g, dense %g", label, i, j, pg, g[i][j])
			}
			if math.Abs(pc-c[i][j]) > 1e-12*(1+math.Abs(c[i][j])) {
				t.Fatalf("%s: C[%d][%d] = %g, dense %g", label, i, j, pc, c[i][j])
			}
		}
	}
}

func randVal(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, rng.Float64())
}

func TestSparseAssemblyMatchesDenseOnLadders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for rep := 0; rep < 8; rep++ {
		ckt := circuit.New()
		in := ckt.Node()
		must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1}))
		prev := in
		segs := 1 + rng.Intn(30)
		for i := 0; i < segs; i++ {
			mid := ckt.Node()
			n := ckt.Node()
			must(ckt.AddR(fmt.Sprintf("r%d", i), prev, mid, randVal(rng, 0.1, 1e3)))
			must(ckt.AddL(fmt.Sprintf("l%d", i), mid, n, randVal(rng, 1e-12, 1e-6)))
			must(ckt.AddC(fmt.Sprintf("c%d", i), n, circuit.Ground, randVal(rng, 1e-16, 1e-9)))
			prev = n
		}
		checkSparseMatchesDense(t, ckt, fmt.Sprintf("ladder[%d segs]", segs))
	}
}

func TestSparseAssemblyMatchesDenseOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for rep := 0; rep < 8; rep++ {
		ckt := circuit.New()
		root := ckt.Node()
		must(ckt.AddV("vin", root, circuit.Ground, circuit.DC(1)))
		nodes := []int{root}
		extra := 2 + rng.Intn(25)
		for i := 0; i < extra; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			n := ckt.Node()
			name := fmt.Sprintf("e%d", i)
			switch rng.Intn(3) {
			case 0:
				must(ckt.AddR(name, parent, n, randVal(rng, 1, 1e4)))
			case 1:
				must(ckt.AddL(name, parent, n, randVal(rng, 1e-12, 1e-6)))
			default:
				must(ckt.AddC(name, parent, n, randVal(rng, 1e-15, 1e-9)))
			}
			nodes = append(nodes, n)
			// Sprinkle grounding elements so the tree stays physical.
			if rng.Intn(3) == 0 {
				must(ckt.AddC(name+"g", n, circuit.Ground, randVal(rng, 1e-15, 1e-9)))
			}
		}
		checkSparseMatchesDense(t, ckt, fmt.Sprintf("tree[%d nodes]", len(nodes)))
	}
}

func TestSparseAssemblyMatchesDenseOnDisconnectedComponents(t *testing.T) {
	// Several chains that share only the ground node: the unknown graph
	// is disconnected, exercising multi-component RCM.
	rng := rand.New(rand.NewSource(23))
	ckt := circuit.New()
	for comp := 0; comp < 4; comp++ {
		in := ckt.Node()
		must(ckt.AddV(fmt.Sprintf("v%d", comp), in, circuit.Ground, circuit.DC(float64(comp))))
		prev := in
		for i := 0; i < 1+rng.Intn(6); i++ {
			n := ckt.Node()
			must(ckt.AddR(fmt.Sprintf("r%d_%d", comp, i), prev, n, randVal(rng, 1, 1e4)))
			must(ckt.AddC(fmt.Sprintf("c%d_%d", comp, i), n, circuit.Ground, randVal(rng, 1e-15, 1e-9)))
			prev = n
		}
	}
	checkSparseMatchesDense(t, ckt, "disconnected")
}

func TestSparseAssemblyMatchesDenseWithMutualInductance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for rep := 0; rep < 4; rep++ {
		ckt := circuit.New()
		in := ckt.Node()
		must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1}))
		prev := in
		segs := 3 + rng.Intn(10)
		for i := 0; i < segs; i++ {
			mid := ckt.Node()
			n := ckt.Node()
			must(ckt.AddR(fmt.Sprintf("r%d", i), prev, mid, randVal(rng, 1, 1e3)))
			must(ckt.AddL(fmt.Sprintf("l%d", i), mid, n, randVal(rng, 1e-10, 1e-7)))
			must(ckt.AddC(fmt.Sprintf("c%d", i), n, circuit.Ground, randVal(rng, 1e-15, 1e-10)))
			prev = n
		}
		// Couple adjacent inductors and one long-range pair (the latter
		// widens the band, stressing PermutedBandwidth).
		must(ckt.AddK("k01", "l0", "l1", 0.2+0.5*rng.Float64()))
		must(ckt.AddK("kfar", "l0", fmt.Sprintf("l%d", segs-1), 0.1))
		checkSparseMatchesDense(t, ckt, fmt.Sprintf("mutual[%d segs]", segs))
	}
}

func buildTestLadder(segs int) (*circuit.Circuit, int) {
	ckt := circuit.New()
	in := ckt.Node()
	must(ckt.AddV("vin", in, circuit.Ground, circuit.Step{Amplitude: 1, Delay: 1e-12}))
	prev := in
	out := in
	for i := 0; i < segs; i++ {
		mid := ckt.Node()
		n := ckt.Node()
		must(ckt.AddR(fmt.Sprintf("r%d", i), prev, mid, 10))
		must(ckt.AddL(fmt.Sprintf("l%d", i), mid, n, 1e-9))
		must(ckt.AddC(fmt.Sprintf("c%d", i), n, circuit.Ground, 1e-14))
		prev, out = n, n
	}
	return ckt, out
}

func TestACParallelMatchesSerialAndPreservesOrder(t *testing.T) {
	// Run with several workers even on small machines so the pool and the
	// result ordering are genuinely exercised.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ckt, out := buildTestLadder(25)
	// Deliberately non-monotonic frequency order.
	freqs := []float64{1e9, 1e6, 5e9, 2e7, 0, 3e8, 1e10, 4e4, 7e8, 6e5, 2e9, 5e3, 9e9}
	res, err := AC(ckt, freqs, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Freq) != len(freqs) {
		t.Fatalf("got %d frequencies, want %d", len(res.Freq), len(freqs))
	}
	for i, f := range freqs {
		if res.Freq[i] != f {
			t.Fatalf("Freq[%d] = %g, want %g (input order must be preserved)", i, res.Freq[i], f)
		}
	}
	h, err := res.H(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		single, err := AC(ckt, []float64{f}, []int{out})
		if err != nil {
			t.Fatal(err)
		}
		hs, _ := single.H(out)
		if d := h[i] - hs[0]; math.Hypot(real(d), imag(d)) > 1e-12*(1+math.Hypot(real(hs[0]), imag(hs[0]))) {
			t.Errorf("phasor at %g Hz: sweep %v vs solo %v", f, h[i], hs[0])
		}
	}
}

func TestSimulateStepLoopAllocationFree(t *testing.T) {
	ckt, out := buildTestLadder(40)
	dt := 1e-13
	measure := func(steps int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Simulate(ckt, Options{
				Dt:     dt,
				TEnd:   float64(steps) * dt,
				Probes: []int{out},
			}); err != nil {
				panic(err)
			}
		})
	}
	a300 := measure(300)
	a600 := measure(600)
	// Equal totals at different step counts means the steady-state loop
	// allocates nothing per timestep (all allocations are per-call setup).
	if a600 > a300 {
		t.Errorf("step loop allocates: %.1f allocs for 300 steps vs %.1f for 600", a300, a600)
	}
}
