package mna

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rlckit/internal/circuit"
	"rlckit/internal/numeric"
	"rlckit/internal/pool"
)

// ACResult holds a frequency sweep: for each probed node, the complex
// voltage phasor at every frequency, with every voltage source replaced
// by a unit AC phasor (1∠0). With a single source the probe phasor is
// therefore the transfer function H(jω) from that source to the node.
type ACResult struct {
	Freq  []float64 // Hz
	probe map[int][]complex128
}

// H returns the phasor sweep for a probed node.
func (r *ACResult) H(node int) ([]complex128, error) {
	s, ok := r.probe[node]
	if !ok {
		return nil, fmt.Errorf("mna: node %d was not probed", node)
	}
	return s, nil
}

// MagDB returns the magnitude sweep in decibels for a probed node.
func (r *ACResult) MagDB(node int) ([]float64, error) {
	h, err := r.H(node)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(h))
	for i, v := range h {
		m := math.Hypot(real(v), imag(v))
		if m == 0 {
			out[i] = math.Inf(-1)
		} else {
			out[i] = 20 * math.Log10(m)
		}
	}
	return out, nil
}

// AC performs small-signal frequency-domain analysis at the given
// frequencies (Hz), solving (G + jωC)·x = b with unit source phasors.
// The system is solved in the reverse-Cuthill–McKee ordering with a
// banded complex LU, so ladder-shaped circuits cost O(n·band²) per
// frequency point. Each frequency's matrix is assembled straight from
// the sparse triplets in O(nnz), and the points are solved in parallel
// by the module's shared bounded worker pool (internal/pool; one complex
// band matrix plus factorization scratch per worker); results are
// returned in input frequency order regardless of worker scheduling.
func AC(ckt *circuit.Circuit, freqs []float64, probes []int) (*ACResult, error) {
	return ACCtx(nil, ckt, freqs, probes)
}

// ACCtx is AC with a cancellation checkpoint between frequency points:
// once ctx is done, remaining points are skipped and the typed
// cancel.ErrCanceled/ErrDeadline is returned.
func ACCtx(ctx context.Context, ckt *circuit.Circuit, freqs []float64, probes []int) (*ACResult, error) {
	if len(freqs) == 0 {
		return nil, errors.New("mna: AC needs at least one frequency")
	}
	for _, f := range freqs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("mna: bad frequency %g", f)
		}
	}
	sys, err := assemble(ckt)
	if err != nil {
		return nil, err
	}
	for _, p := range probes {
		if p <= 0 || p >= ckt.Nodes() {
			return nil, fmt.Errorf("mna: probe node %d out of range (ground cannot be probed)", p)
		}
	}
	n := sys.n
	// Unit-phasor right-hand side in the RCM (permuted) ordering, shared
	// read-only by all workers.
	b := make([]complex128, n)
	for _, e := range sys.sources {
		b[sys.perm[e.row]] += complex(e.sgn, 0)
	}
	// The symbolic assembly — permutation lookups, band indexing,
	// duplicate-coordinate compaction — is hoisted out of the frequency
	// loop: one plan, shared read-only by every worker, turns each
	// point's G + jωC assembly into a single pass of stores.
	asm := numeric.NewCBandAssembler(n, sys.kl, sys.ku, sys.perm, sys.gt, sys.ct)
	phasors := make([][]complex128, len(freqs)) // [freq index][probe index]
	type scratch struct {
		a  *numeric.CBandMatrix
		lu numeric.CBandLU
		x  []complex128
	}
	err = pool.RunCtx(ctx, 0, len(freqs), func() *scratch {
		return &scratch{a: numeric.NewCBandMatrix(n, sys.kl, sys.ku), x: make([]complex128, n)}
	}, func(sc *scratch, k int) error {
		f := freqs[k]
		asm.Assemble(sc.a, 2*math.Pi*f)
		if err := numeric.FactorCBandLUInto(&sc.lu, sc.a); err != nil {
			return fmt.Errorf("mna: AC solve at %g Hz: %w", f, err)
		}
		sc.lu.SolveTo(sc.x, b)
		row := make([]complex128, len(probes))
		for pi, p := range probes {
			row[pi] = sc.x[sys.perm[p-1]]
		}
		phasors[k] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &ACResult{
		Freq:  append([]float64(nil), freqs...),
		probe: make(map[int][]complex128, len(probes)),
	}
	for pi, p := range probes {
		col := make([]complex128, len(freqs))
		for k := range phasors {
			col[k] = phasors[k][pi]
		}
		res.probe[p] = col
	}
	return res, nil
}

// LogSpace returns n logarithmically spaced frequencies in [f0, f1] —
// the usual AC sweep grid.
func LogSpace(f0, f1 float64, n int) ([]float64, error) {
	if f0 <= 0 || f1 <= f0 || n < 2 {
		return nil, fmt.Errorf("mna: bad log sweep (%g, %g, %d)", f0, f1, n)
	}
	out := make([]float64, n)
	ratio := math.Pow(f1/f0, 1/float64(n-1))
	f := f0
	for i := range out {
		out[i] = f
		f *= ratio
	}
	return out, nil
}
