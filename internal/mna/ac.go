package mna

import (
	"errors"
	"fmt"
	"math"

	"rlckit/internal/circuit"
	"rlckit/internal/numeric"
)

// ACResult holds a frequency sweep: for each probed node, the complex
// voltage phasor at every frequency, with every voltage source replaced
// by a unit AC phasor (1∠0). With a single source the probe phasor is
// therefore the transfer function H(jω) from that source to the node.
type ACResult struct {
	Freq  []float64 // Hz
	probe map[int][]complex128
}

// H returns the phasor sweep for a probed node.
func (r *ACResult) H(node int) ([]complex128, error) {
	s, ok := r.probe[node]
	if !ok {
		return nil, fmt.Errorf("mna: node %d was not probed", node)
	}
	return s, nil
}

// MagDB returns the magnitude sweep in decibels for a probed node.
func (r *ACResult) MagDB(node int) ([]float64, error) {
	h, err := r.H(node)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(h))
	for i, v := range h {
		m := math.Hypot(real(v), imag(v))
		if m == 0 {
			out[i] = math.Inf(-1)
		} else {
			out[i] = 20 * math.Log10(m)
		}
	}
	return out, nil
}

// AC performs small-signal frequency-domain analysis at the given
// frequencies (Hz), solving (G + jωC)·x = b with unit source phasors.
// The system is solved in the reverse-Cuthill–McKee ordering with a
// banded complex LU, so ladder-shaped circuits cost O(n·band²) per
// frequency point.
func AC(ckt *circuit.Circuit, freqs []float64, probes []int) (*ACResult, error) {
	if len(freqs) == 0 {
		return nil, errors.New("mna: AC needs at least one frequency")
	}
	for _, f := range freqs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("mna: bad frequency %g", f)
		}
	}
	sys, err := assemble(ckt)
	if err != nil {
		return nil, err
	}
	for _, p := range probes {
		if p <= 0 || p >= ckt.Nodes() {
			return nil, fmt.Errorf("mna: probe node %d out of range (ground cannot be probed)", p)
		}
	}
	n := sys.n
	res := &ACResult{
		Freq:  append([]float64(nil), freqs...),
		probe: make(map[int][]complex128, len(probes)),
	}
	for _, p := range probes {
		res.probe[p] = make([]complex128, 0, len(freqs))
	}
	// Unit-phasor right-hand side in the RCM (permuted) ordering.
	b := make([]complex128, n)
	for _, e := range sys.sources {
		b[sys.perm[e.row]] += complex(e.sgn, 0)
	}
	gb, cb := sys.permuted()
	kl, ku := gb.KL, gb.KU
	a := numeric.NewCBandMatrix(n, kl, ku)
	for _, f := range freqs {
		w := 2 * math.Pi * f
		a.Zero()
		for i := 0; i < n; i++ {
			lo := i - kl
			if lo < 0 {
				lo = 0
			}
			hi := i + ku
			if hi >= n {
				hi = n - 1
			}
			for j := lo; j <= hi; j++ {
				g := gb.At(i, j)
				c := cb.At(i, j)
				if g != 0 || c != 0 {
					a.Set(i, j, complex(g, w*c))
				}
			}
		}
		lu, err := numeric.FactorCBandLU(a)
		if err != nil {
			return nil, fmt.Errorf("mna: AC solve at %g Hz: %w", f, err)
		}
		x := lu.Solve(b)
		for _, p := range probes {
			res.probe[p] = append(res.probe[p], x[sys.perm[p-1]])
		}
	}
	return res, nil
}

// LogSpace returns n logarithmically spaced frequencies in [f0, f1] —
// the usual AC sweep grid.
func LogSpace(f0, f1 float64, n int) ([]float64, error) {
	if f0 <= 0 || f1 <= f0 || n < 2 {
		return nil, fmt.Errorf("mna: bad log sweep (%g, %g, %d)", f0, f1, n)
	}
	out := make([]float64, n)
	ratio := math.Pow(f1/f0, 1/float64(n-1))
	f := f0
	for i := range out {
		out[i] = f
		f *= ratio
	}
	return out, nil
}
