package mna

import (
	"math"
	"math/cmplx"
	"testing"

	"rlckit/internal/circuit"
	"rlckit/internal/tline"
)

func TestACRCLowpass(t *testing.T) {
	// H(jω) = 1/(1 + jωRC): check magnitude and phase at the pole.
	r, c := 1000.0, 1e-12
	ckt, out := buildRC(r, c, 0)
	fPole := 1 / (2 * math.Pi * r * c)
	res, err := AC(ckt, []float64{fPole / 100, fPole, fPole * 100}, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.H(out)
	if err != nil {
		t.Fatal(err)
	}
	if m := cmplx.Abs(h[0]); math.Abs(m-1) > 1e-4 {
		t.Errorf("low-frequency gain %v", h[0])
	}
	if m := cmplx.Abs(h[1]); math.Abs(m-1/math.Sqrt2) > 1e-3 {
		t.Errorf("pole magnitude %g, want 0.707", m)
	}
	if ph := cmplx.Phase(h[1]); math.Abs(ph+math.Pi/4) > 1e-3 {
		t.Errorf("pole phase %g, want -45°", ph)
	}
	if m := cmplx.Abs(h[2]); m > 0.02 {
		t.Errorf("high-frequency gain %g", m)
	}
	db, err := res.MagDB(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(db[1]+3.0103) > 0.02 {
		t.Errorf("pole gain %g dB, want -3", db[1])
	}
}

func TestACSeriesRLCResonance(t *testing.T) {
	// At resonance the LC voltage across C peaks near Q = (1/R)·sqrt(L/C).
	r, l, c := 10.0, 1e-9, 1e-12
	ckt, out := buildSeriesRLC(r, l, c, 0)
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*c))
	res, err := AC(ckt, []float64{f0}, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := res.H(out)
	q := math.Sqrt(l/c) / r
	if m := cmplx.Abs(h[0]); math.Abs(m-q) > 0.02*q {
		t.Errorf("resonant gain %g, want Q=%g", m, q)
	}
}

func TestACLadderMatchesExactTF(t *testing.T) {
	// The AC sweep of a fine lumped ladder must match the exact
	// hyperbolic transfer function of the distributed line.
	ln := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	d := tline.Drive{Rtr: 500, CL: 5e-13}
	lad, err := tline.BuildLadder(ln, d, 80, tline.Pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := tline.ExactTF(ln, d)
	if err != nil {
		t.Fatal(err)
	}
	_, lt, ct := ln.Totals()
	fn := 1 / (2 * math.Pi * math.Sqrt(lt*(ct+d.CL))) // natural frequency
	freqs := []float64{fn / 100, fn / 10, fn / 3, fn}
	res, err := AC(lad.Ckt, freqs, []int{lad.Out})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := res.H(lad.Out)
	for i, f := range freqs {
		want := exact(complex(0, 2*math.Pi*f))
		if cmplx.Abs(h[i]-want) > 0.01*(cmplx.Abs(want)+0.01) {
			t.Errorf("f=%g: ladder %v vs exact %v", f, h[i], want)
		}
	}
}

func TestACValidation(t *testing.T) {
	ckt, out := buildRC(1000, 1e-12, 0)
	if _, err := AC(ckt, nil, []int{out}); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := AC(ckt, []float64{-1}, []int{out}); err == nil {
		t.Error("negative frequency accepted")
	}
	if _, err := AC(ckt, []float64{1e9}, []int{99}); err == nil {
		t.Error("bad probe accepted")
	}
	res, err := AC(ckt, []float64{1e9}, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.H(out + 7); err == nil {
		t.Error("unprobed read accepted")
	}
	if _, err := res.MagDB(out + 7); err == nil {
		t.Error("unprobed MagDB accepted")
	}
	bad := circuit.New()
	_ = bad.Node()
	if _, err := AC(bad, []float64{1e9}, nil); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestLogSpace(t *testing.T) {
	fs, err := LogSpace(1, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(fs[i]-want[i]) > 1e-9*want[i] {
			t.Errorf("fs[%d] = %g", i, fs[i])
		}
	}
	if _, err := LogSpace(0, 10, 3); err == nil {
		t.Error("f0=0 accepted")
	}
	if _, err := LogSpace(10, 1, 3); err == nil {
		t.Error("reversed accepted")
	}
	if _, err := LogSpace(1, 10, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestACDCLimitMatchesTransientFinal(t *testing.T) {
	// ω → 0 AC gain equals the settled transient value for a unit step.
	ckt := circuit.New()
	in := ckt.Node()
	out := ckt.Node()
	must(ckt.AddV("v", in, circuit.Ground, circuit.Step{Amplitude: 1, Delay: 1e-12}))
	must(ckt.AddR("r1", in, out, 1000))
	must(ckt.AddR("r2", out, circuit.Ground, 3000))
	res, err := AC(ckt, []float64{1}, []int{out}) // ~DC
	if err != nil {
		t.Fatal(err)
	}
	h, _ := res.H(out)
	if math.Abs(real(h[0])-0.75) > 1e-6 || math.Abs(imag(h[0])) > 1e-6 {
		t.Errorf("DC gain %v, want 0.75", h[0])
	}
}
