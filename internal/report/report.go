// Package report renders experiment results: fixed-width ASCII tables
// (the paper's tables), CSV export, and ASCII line plots (the paper's
// figures) — all plain text so every artifact regenerates in a terminal
// with no plotting dependencies.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is a named (x, y) sequence for plotting.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders one or more series as an ASCII scatter/line chart of the
// given character dimensions. Each series uses its own marker rune.
type Plot struct {
	Title, XLabel, YLabel string
	Width, Height         int
	series                []Series
}

// NewPlot creates a plot; width/height are clamped to sensible minimums.
func NewPlot(title string, width, height int) *Plot {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	return &Plot{Title: title, Width: width, Height: height}
}

// Add appends a series; X and Y must be the same length.
func (p *Plot) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q length mismatch (%d vs %d)", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("report: series %q empty", s.Name)
	}
	p.series = append(p.series, s)
	return nil
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%'}

// Render writes the chart to w.
func (p *Plot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("report: plot %q has no series", p.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			if v := s.X[i]; !math.IsNaN(v) {
				xmin, xmax = math.Min(xmin, v), math.Max(xmax, v)
			}
			if v := s.Y[i]; !math.IsNaN(v) {
				ymin, ymax = math.Min(ymin, v), math.Max(ymax, v)
			}
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, p.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Width))
	}
	for si, s := range p.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(p.Width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(p.Height-1))
			row := p.Height - 1 - cy
			if row >= 0 && row < p.Height && cx >= 0 && cx < p.Width {
				grid[row][cx] = m
			}
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	fmt.Fprintf(&b, "%-12s %.4g\n", p.YLabel, ymax)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s\n", string(row))
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", p.Width))
	fmt.Fprintf(&b, "   %-.4g%*s%.4g  (%s)\n", xmin, p.Width-18, "", xmax, p.XLabel)
	fmt.Fprintf(&b, "%-12s %.4g\n", "", ymin)
	for si, s := range p.series {
		fmt.Fprintf(&b, "   %c %s\n", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
