package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary is an order-statistics description of a one-dimensional
// sample: extremes, moments and the percentiles that population tables
// quote. It is the aggregation currency of the sweep engine — summaries
// are computed from index-ordered value slices, so they are
// byte-identical regardless of how many workers produced the values.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, StdDev  float64
	P1, P5, P25   float64
	Median        float64
	P75, P95, P99 float64
}

// Summarize computes a Summary of values. NaNs are dropped (they would
// poison every statistic); an empty or all-NaN input returns a zero
// Summary with N == 0. The input slice is not modified.
func Summarize(values []float64) Summary {
	clean := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	var s Summary
	s.N = len(clean)
	if s.N == 0 {
		return s
	}
	sort.Float64s(clean)
	s.Min, s.Max = clean[0], clean[s.N-1]
	sum := 0.0
	for _, v := range clean {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, v := range clean {
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	s.P1 = Quantile(clean, 0.01)
	s.P5 = Quantile(clean, 0.05)
	s.P25 = Quantile(clean, 0.25)
	s.Median = Quantile(clean, 0.50)
	s.P75 = Quantile(clean, 0.75)
	s.P95 = Quantile(clean, 0.95)
	s.P99 = Quantile(clean, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice by linear interpolation between order statistics (the "type 7"
// estimator most statistics packages default to). Out-of-range q is
// clamped to the extremes (−Inf included). It panics on an empty slice
// or a NaN q — a NaN would otherwise slip past both range guards and
// turn into a garbage slice index; callers summarizing possibly-empty
// data should use Summarize.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("report: Quantile of empty slice")
	}
	if math.IsNaN(q) {
		panic("report: Quantile with NaN q")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionAbove returns the fraction of values strictly above the
// threshold, ignoring NaNs. An empty input returns 0.
func FractionAbove(values []float64, threshold float64) float64 {
	n, above := 0, 0
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		n++
		if v > threshold {
			above++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(above) / float64(n)
}

// AddSummaryRow appends a labelled distribution row to a table whose
// headers are (label, n, mean, min, p5, median, p95, p99, max) — the
// standard population-statistics row shape used by the sweep reports.
func AddSummaryRow(t *Table, label string, s Summary) {
	t.AddRow(label, s.N, s.Mean, s.Min, s.P5, s.Median, s.P95, s.P99, s.Max)
}

// SummaryHeaders returns the column headers matching AddSummaryRow.
func SummaryHeaders(label string) []string {
	return []string{label, "n", "mean", "min", "p5", "median", "p95", "p99", "max"}
}

// Histogram is a fixed-bin histogram over [Lo, Hi) with explicit
// underflow/overflow tallies, rendered as an ASCII bar chart.
type Histogram struct {
	Lo, Hi      float64
	Counts      []int
	Under, Over int
}

// NewHistogram builds a histogram of values with the given bin count
// over [lo, hi). NaNs are ignored. bins is clamped to at least 1; lo/hi
// are swapped if reversed, and a degenerate range is widened so every
// finite value lands somewhere.
func NewHistogram(values []float64, lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi == lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// AutoHistogram builds a histogram spanning the finite range of values.
// The upper edge is nudged up so the maximum value lands in the last
// bin rather than in the half-open range's overflow.
func AutoHistogram(values []float64, bins int) *Histogram {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo > hi { // no finite values
		lo, hi = 0, 1
	}
	return NewHistogram(values, lo, math.Nextafter(hi, math.Inf(1)), bins)
}

// Add tallies one value.
func (h *Histogram) Add(v float64) {
	switch {
	case math.IsNaN(v):
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard the v ≈ Hi rounding edge
			i = len(h.Counts) - 1
		}
		h.Counts[i] += 1
	}
}

// Total returns the number of tallied values including under/overflow.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Render writes the histogram as labelled ASCII bars of at most width
// characters.
func (h *Histogram) Render(title string, width int, w io.Writer) error {
	if width < 10 {
		width = 10
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "%14s  %6d\n", fmt.Sprintf("< %.4g", h.Lo), h.Under)
	}
	step := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%14s  %6d  %s\n", fmt.Sprintf("%.4g", h.Lo+float64(i)*step), c, bar)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%14s  %6d\n", fmt.Sprintf(">= %.4g", h.Hi), h.Over)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
