package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X", "name", "value", "err")
	tb.AddRow("case-a", 1234.5, "3.3%")
	tb.AddRow("case-b", 7.0, "0.1%")
	tb.AddRow("tiny", 1e-12, "ok")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table X", "name", "case-a", "1234", "1e-12", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 3 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + sep + 3 rows
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", 1.5)
	tb.AddRow(`has"quote`, 2)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestPlotRender(t *testing.T) {
	p := NewPlot("delay vs ζ", 40, 10)
	if err := p.Add(Series{Name: "model", X: []float64{0, 1, 2}, Y: []float64{1, 2.5, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Series{Name: "sim", X: []float64{0, 1, 2}, Y: []float64{1.1, 2.4, 4.1}}); err != nil {
		t.Fatal(err)
	}
	p.XLabel, p.YLabel = "zeta", "t'pd"
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"delay vs ζ", "model", "sim", "*", "o", "zeta"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotErrors(t *testing.T) {
	p := NewPlot("x", 0, 0) // clamped dims
	if err := p.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{}}); err == nil {
		t.Error("mismatched series accepted")
	}
	if err := p.Add(Series{Name: "empty"}); err == nil {
		t.Error("empty series accepted")
	}
	var b strings.Builder
	if err := p.Render(&b); err == nil {
		t.Error("empty plot rendered")
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	p := NewPlot("const", 30, 8)
	if err := p.Add(Series{Name: "c", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("marker missing on degenerate plot")
	}
}

func TestPlotSkipsNaN(t *testing.T) {
	p := NewPlot("nan", 30, 8)
	if err := p.Add(Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, mathNaN(), 3}}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("valid points missing")
	}
}

func mathNaN() float64 {
	var z float64
	return z / z
}

func TestTableEmptyRender(t *testing.T) {
	tb := NewTable("empty", "a")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 0 {
		t.Error("rows")
	}
}
