package report

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("%+v", s)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Errorf("mean %g median %g", s.Mean, s.Median)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev %g", s.StdDev)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles %g %g", s.P25, s.P75)
	}
	// Input must be untouched.
	in := []float64{3, 1, 2}
	_ = Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize reordered its input")
	}
}

func TestSummarizeNaNAndEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty N=%d", s.N)
	}
	nan := math.NaN()
	if s := Summarize([]float64{nan, nan}); s.N != 0 {
		t.Errorf("all-NaN N=%d", s.N)
	}
	s := Summarize([]float64{nan, 2, 1})
	if s.N != 2 || s.Min != 1 || s.Max != 2 {
		t.Errorf("%+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10, 20, 30}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 30}, {0.5, 15}, {0.25, 7.5}, {1.5, 30}, {-1, 0},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Quantile did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestFractionAbove(t *testing.T) {
	vals := []float64{1, 5, 10, 20, math.NaN()}
	if f := FractionAbove(vals, 9); f != 0.5 {
		t.Errorf("FractionAbove = %g", f)
	}
	if f := FractionAbove(nil, 0); f != 0 {
		t.Errorf("empty = %g", f)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-5, 0, 1, 2.5, 9.99, 10, 42, math.NaN()}, 0, 10, 4)
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	wantCounts := []int{2, 1, 0, 1} // 0,1 in [0,2.5); 2.5 in [2.5,5); 9.99 in [7.5,10)
	for i, c := range wantCounts {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d (%v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("total %d", h.Total())
	}
	var b strings.Builder
	if err := h.Render("title", 40, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"title", "< 0", ">= 10", "###"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAutoHistogram(t *testing.T) {
	h := AutoHistogram([]float64{1, 2, 3, math.Inf(1)}, 4)
	if h.Lo != 1 || h.Hi < 3 {
		t.Errorf("range [%g, %g)", h.Lo, h.Hi)
	}
	if h.Over != 1 { // the +Inf; the finite max must land in the last bin
		t.Errorf("over=%d", h.Over)
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("max value not in last bin: %v", h.Counts)
	}
	// No finite values: still a usable range.
	h = AutoHistogram(nil, 3)
	if h.Lo >= h.Hi {
		t.Errorf("degenerate range [%g, %g)", h.Lo, h.Hi)
	}
}

func TestSummaryTableHelpers(t *testing.T) {
	tb := NewTable("t", SummaryHeaders("metric")...)
	AddSummaryRow(tb, "x", Summarize([]float64{1, 2, 3}))
	if tb.Rows() != 1 {
		t.Fatalf("%d rows", tb.Rows())
	}
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "median") {
		t.Errorf("missing header:\n%s", b.String())
	}
}

// TestQuantileRejectsNaNQ: a NaN q slips past both range guards
// (every comparison with NaN is false) and used to become a garbage
// slice index; it must be a loud precondition panic instead. The ±Inf
// extremes stay clamped like any out-of-range q.
func TestQuantileRejectsNaNQ(t *testing.T) {
	sorted := []float64{1, 2, 3}
	if got := Quantile(sorted, math.Inf(-1)); got != 1 {
		t.Errorf("Quantile(-Inf) = %g, want 1", got)
	}
	if got := Quantile(sorted, math.Inf(1)); got != 3 {
		t.Errorf("Quantile(+Inf) = %g, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile(NaN) did not panic")
		}
	}()
	Quantile(sorted, math.NaN())
}
