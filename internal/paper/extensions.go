package paper

import (
	"fmt"
	"math"

	"rlckit/internal/core"
	"rlckit/internal/netgen"
	"rlckit/internal/numeric"
	"rlckit/internal/ratfun"
	"rlckit/internal/report"
	"rlckit/internal/screen"
	"rlckit/internal/tech"
	"rlckit/internal/tline"
)

// RiseTimePoint is one sample of experiment E11: the 50% delay of the
// driven line under a finite input rise time, relative to the ideal-step
// delay the paper assumes ("a fast rising signal that can be
// approximated by a step signal").
type RiseTimePoint struct {
	// RiseOverStep is tr / t_pd(step).
	RiseOverStep float64
	// DelayRatio is t_pd(tr) / t_pd(step), measuring from the input's
	// own 50% point (tr/2).
	DelayRatio float64
}

// RiseTimeSensitivity quantifies when the paper's step-input assumption
// holds (E11): it drives the canonical Table-1 line with saturating
// ramps of increasing rise time and reports the delay inflation.
func RiseTimeSensitivity(ratios []float64) ([]RiseTimePoint, *report.Table, error) {
	if ratios == nil {
		ratios = []float64{0.05, 0.25, 0.5, 1, 2, 4}
	}
	ln := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	d := tline.Drive{Rtr: 500, CL: 5e-13}
	p, err := core.Analyze(ln, d)
	if err != nil {
		return nil, nil, err
	}
	t0 := 1 / p.OmegaN
	num, den, err := tline.LadderTF(ln, d, 24, tline.Pi, t0)
	if err != nil {
		return nil, nil, err
	}
	h, err := ratfun.New(num, den)
	if err != nil {
		return nil, nil, err
	}
	step, err := h.StepResponse()
	if err != nil {
		return nil, nil, err
	}
	// Normalized step delay of the ladder model.
	cross := func(f func(float64) float64, lo, hi float64) (float64, error) {
		const scan = 1200
		prev := lo
		for i := 1; i <= scan; i++ {
			tn := lo + (hi-lo)*float64(i)/scan
			if f(tn) >= 0.5 {
				return numeric.Bisect(func(u float64) float64 { return f(u) - 0.5 }, prev, tn, hi*1e-12)
			}
			prev = tn
		}
		return 0, fmt.Errorf("paper: no 0.5 crossing in [%g, %g]", lo, hi)
	}
	rt, lt, ct := ln.Totals()
	horizonN := (4*(rt+d.Rtr)*(ct+d.CL) + 8*math.Sqrt(lt*(ct+d.CL))) / t0
	stepDelayN, err := cross(step, 1e-9, horizonN)
	if err != nil {
		return nil, nil, err
	}
	tb := report.NewTable("E11 — validity of the step-input assumption (Table-1 canonical line)",
		"tr / tpd(step)", "tpd(tr) / tpd(step)")
	var out []RiseTimePoint
	for _, ratio := range ratios {
		if ratio <= 0 {
			return nil, nil, fmt.Errorf("paper: rise ratio must be positive, got %g", ratio)
		}
		trN := ratio * stepDelayN
		ramp, err := h.RampResponse(trN)
		if err != nil {
			return nil, nil, err
		}
		c, err := cross(ramp, 1e-9, horizonN+2*trN)
		if err != nil {
			return nil, nil, err
		}
		pt := RiseTimePoint{
			RiseOverStep: ratio,
			DelayRatio:   (c - trN/2) / stepDelayN,
		}
		out = append(out, pt)
		tb.AddRow(pt.RiseOverStep, pt.DelayRatio)
	}
	return out, tb, nil
}

// ScreenCensusPoint is one technology node of experiment E12: what
// fraction of a realistic net population needs RLC analysis.
type ScreenCensusPoint struct {
	Node        string
	RiseTimePs  float64
	FractionRLC float64
	Stats       screen.Stats
}

// ScreenCensus screens a reproducible random net population at every
// technology node (E12). Edge rates track the node's gate speed
// (tr = 8·R0·C0), so the fraction of inductance-significant nets grows
// as technology scales — the paper's conclusion, measured on a
// population instead of a single wire.
func ScreenCensus(seed int64, netsPerNode int) ([]ScreenCensusPoint, *report.Table, error) {
	if netsPerNode <= 0 {
		netsPerNode = 150
	}
	tb := report.NewTable("E12 — fraction of random nets needing RLC analysis, by node",
		"node", "rise(ps)", "nets", "in window", "underdamped", "needs RLC", "fraction")
	var out []ScreenCensusPoint
	for _, node := range tech.All() {
		nets, err := netgen.RandomBatch(seed, node, netsPerNode)
		if err != nil {
			return nil, nil, err
		}
		lines := make([]tline.Line, len(nets))
		drives := make([]tline.Drive, len(nets))
		for i, n := range nets {
			lines[i] = n.Line
			drives[i] = n.Drive
		}
		tr := 8 * node.R0 * node.C0
		st, err := screen.Batch(lines, drives, tr)
		if err != nil {
			return nil, nil, fmt.Errorf("paper: census at %s: %w", node.Name, err)
		}
		pt := ScreenCensusPoint{
			Node: node.Name, RiseTimePs: tr * 1e12,
			FractionRLC: st.FractionRLC(), Stats: st,
		}
		out = append(out, pt)
		tb.AddRow(pt.Node, pt.RiseTimePs, st.Total, st.InWindow, st.Underdamped,
			st.NeedsRLC, math.Round(pt.FractionRLC*1000)/10)
	}
	return out, tb, nil
}
