package paper

import (
	"fmt"

	"rlckit/internal/netgen"
	"rlckit/internal/repeater"
	"rlckit/internal/report"
	"rlckit/internal/tech"
)

// ScalingPoint is one technology node of the Section IV trend
// (experiment E9): the same physical clock wire re-evaluated with each
// node's drivers.
type ScalingPoint struct {
	Node string
	// R0C0Ps is the node's gate time constant in picoseconds.
	R0C0Ps float64
	TLR    float64
	// DelayIncPct is Eq. 16 (exact engine); AreaIncPct Eq. 18.
	DelayIncPct, AreaIncPct float64
}

// ScalingTrend regenerates the paper's conclusion that the error of the
// RC model grows as gate parasitics shrink: a fixed 10 mm clock spine
// (250nm geometry) driven by the buffers of successive nodes.
func ScalingTrend() ([]ScalingPoint, *report.Table, error) {
	spine, err := netgen.ClockSpine(tech.Default(), 0.01)
	if err != nil {
		return nil, nil, err
	}
	tb := report.NewTable("E9 — scaling trend: shrinking R0·C0 raises T_{L/R} and the RC model's cost",
		"node", "R0C0(ps)", "T_{L/R}", "delay inc Eq.16 (%)", "area inc Eq.18 (%)")
	var out []ScalingPoint
	for _, n := range tech.All() {
		b := n.Buffer()
		tlr, err := repeater.TLR(spine.Line, b)
		if err != nil {
			return nil, nil, fmt.Errorf("paper: scaling at %s: %w", n.Name, err)
		}
		di, err := repeater.DelayIncrease(spine.Line, b)
		if err != nil {
			return nil, nil, fmt.Errorf("paper: scaling delay increase at %s: %w", n.Name, err)
		}
		p := ScalingPoint{
			Node:        n.Name,
			R0C0Ps:      n.R0 * n.C0 * 1e12,
			TLR:         tlr,
			DelayIncPct: di,
			AreaIncPct:  repeater.AreaIncrease(tlr),
		}
		out = append(out, p)
		tb.AddRow(p.Node, p.R0C0Ps, p.TLR, p.DelayIncPct, p.AreaIncPct)
	}
	return out, tb, nil
}
