package paper

import (
	"math"
	"strings"
	"testing"
)

func TestTable1ReproducesHeadlineClaim(t *testing.T) {
	cells, tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 36 || tb.Rows() != 36 {
		t.Fatalf("%d cells, %d rows", len(cells), tb.Rows())
	}
	s := Stats(cells)
	// Headline: Eq. 9 within 5% of dynamic simulation. Our measurement:
	// ≥ 34/36 cells within 5%, worst-case below 8%, mean ~2%.
	if s.CellsWithin5Pct < 31 {
		t.Errorf("only %d/36 cells within 5%%", s.CellsWithin5Pct)
	}
	if s.MaxErrPct > 8 {
		t.Errorf("worst cell error %.2f%% (expected < 8%%)", s.MaxErrPct)
	}
	if s.MeanErrPct > 3 {
		t.Errorf("mean error %.2f%% (expected ~2%%)", s.MeanErrPct)
	}
	// Transcription check: our Eq. 9 values must match the printed ones
	// under the decoded (Rt, Rtr) convention. A handful of printed cells
	// carry OCR/typesetting noise of a few percent; the worst observed
	// mismatch is ~6%, with most cells under 1%.
	if s.MaxModelDecodeErrPct > 7 {
		t.Errorf("decode mismatch %.2f%% vs printed Eq. 9 column", s.MaxModelDecodeErrPct)
	}
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestFig2DelayIsPrimarilyFunctionOfZeta(t *testing.T) {
	pts, plot, err := Fig2([]float64{0.4, 0.8, 1.2, 1.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("%d points", len(pts))
	}
	// The paper's central observation: at equal ζ, the families'
	// simulated t′pd spread is modest in the RT, CT ∈ [0, 1] regime and
	// Eq. 9 tracks the RT = CT ∈ {0, 1} families within ~12% pointwise
	// (the fit trades the families off against each other; the mean
	// error stays well below that).
	var meanErr float64
	var inDomain int
	for _, p := range pts {
		if p.RTCT <= 1 {
			if math.Abs(p.ErrPctVsEq9) > 12 {
				t.Errorf("family %g ζ=%.2f: Eq. 9 off by %.1f%%", p.RTCT, p.Zeta, p.ErrPctVsEq9)
			}
			meanErr += math.Abs(p.ErrPctVsEq9)
			inDomain++
		}
		if p.TpdScaled <= 0 {
			t.Errorf("non-positive scaled delay at %+v", p)
		}
	}
	if meanErr/float64(inDomain) > 6 {
		t.Errorf("mean in-domain Fig. 2 error %.1f%%", meanErr/float64(inDomain))
	}
	var b strings.Builder
	if err := plot.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Eq. 9") {
		t.Error("plot missing model curve")
	}
}

func TestFig4ClosedFormTracksEq9Anchors(t *testing.T) {
	pts, plot, err := Fig4([]float64{0.5, 2, 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.HpClosed <= 0 || p.HpClosed > 1 || p.KpClosed <= 0 || p.KpClosed > 1 {
			t.Errorf("factors out of (0,1]: %+v", p)
		}
		if p.HpEq9 <= 0 || p.KpEq9 <= 0 {
			t.Errorf("Eq.9 optimum degenerate: %+v", p)
		}
	}
	// Factors decrease with T.
	if !(pts[0].HpClosed > pts[1].HpClosed && pts[1].HpClosed > pts[2].HpClosed) {
		t.Error("h' not decreasing")
	}
	var b strings.Builder
	if err := plot.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestIncreasesAnchors(t *testing.T) {
	pts, tb, err := Increases([]float64{3, 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || tb.Rows() != 2 {
		t.Fatal("row count")
	}
	// Eq. 18 paper anchors are exact.
	if math.Abs(pts[0].AreaPct-154) > 1 {
		t.Errorf("area(3) = %.1f", pts[0].AreaPct)
	}
	if math.Abs(pts[1].AreaPct-435) > 2 {
		t.Errorf("area(5) = %.1f", pts[1].AreaPct)
	}
	// Eq. 17 fit anchors.
	if math.Abs(pts[0].DelayApproxPct-10) > 2 || math.Abs(pts[1].DelayApproxPct-20) > 2 {
		t.Errorf("Eq.17 fit off: %+v", pts)
	}
	// Exact-engine Eq. 16 positive at moderate T.
	if pts[0].DelayEq16Pct < 1 {
		t.Errorf("delay increase at T=3 = %.2f%%", pts[0].DelayEq16Pct)
	}
	if pts[0].PaperDelayPct != 10 || pts[1].PaperDelayPct != 20 {
		t.Error("paper anchors not attached")
	}
	// Energy increase positive and large at T=5.
	if pts[1].EnergyPct < 10 {
		t.Errorf("energy increase at T=5 = %.1f%%", pts[1].EnergyPct)
	}
}

func TestLengthScalingTransition(t *testing.T) {
	pts, tb, err := LengthScaling(2e-3, 6e-2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 || tb.Rows() != 10 {
		t.Fatal("row count")
	}
	// ζ grows with length; the local exponent transitions from near-
	// linear (inductive, short) toward near-quadratic (resistive, long).
	first := pts[1].LocalExponent
	last := pts[len(pts)-1].LocalExponent
	if first > 1.35 {
		t.Errorf("short-line exponent %.2f, want ≈1 (LC regime)", first)
	}
	if last < 1.5 {
		t.Errorf("long-line exponent %.2f, want →2 (RC regime)", last)
	}
	if pts[0].Zeta >= pts[len(pts)-1].Zeta {
		t.Error("ζ did not grow with length")
	}
	// Eq. 9 tracks simulation over the whole sweep (the RT≈CT≈0 family
	// deviates most mid-transition; see Fig. 2).
	for _, p := range pts {
		if e := math.Abs(p.Eq9Ps-p.SimPs) / p.SimPs; e > 0.13 {
			t.Errorf("l=%.3g: Eq.9 off by %.1f%%", p.Length, e*100)
		}
	}
}

func TestScalingTrendMonotone(t *testing.T) {
	pts, tb, err := ScalingTrend()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || tb.Rows() != 5 {
		t.Fatal("row count")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TLR <= pts[i-1].TLR {
			t.Errorf("TLR not growing: %s %.2f after %s %.2f",
				pts[i].Node, pts[i].TLR, pts[i-1].Node, pts[i-1].TLR)
		}
		if pts[i].AreaIncPct <= pts[i-1].AreaIncPct {
			t.Errorf("area increase not growing at %s", pts[i].Node)
		}
	}
}

func TestOptimalitySmallGapAtModerateT(t *testing.T) {
	gaps, tb, err := Optimality([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 2 || tb.Rows() != 2 {
		t.Fatal("row count")
	}
	for _, g := range gaps {
		if g.TrueGapPct > 5 || g.TrueGapPct < -0.5 {
			t.Errorf("T=%g: true-engine gap %.2f%%", g.TLR, g.TrueGapPct)
		}
	}
}

func TestRefitRecoversPaperConstants(t *testing.T) {
	res, tb, err := Refit()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Error("table rows")
	}
	// The refit against our own simulator must land near the paper's
	// published constants (measured: A≈3.0, B≈1.35, C≈1.48).
	if math.Abs(res.Fitted.A-2.9) > 0.45 {
		t.Errorf("A = %.3f, paper 2.9", res.Fitted.A)
	}
	if math.Abs(res.Fitted.B-1.35) > 0.12 {
		t.Errorf("B = %.3f, paper 1.35", res.Fitted.B)
	}
	if math.Abs(res.Fitted.C-1.48) > 0.05 {
		t.Errorf("C = %.3f, paper 1.48", res.Fitted.C)
	}
	// The refit cannot be worse than the published constants on its own
	// fitting data.
	if res.FitRMSPct > res.PaperRMSPct+1e-9 {
		t.Errorf("refit rms %.3f%% worse than paper %.3f%%", res.FitRMSPct, res.PaperRMSPct)
	}
	if res.Samples < 30 {
		t.Errorf("only %d samples", res.Samples)
	}
}

func TestRiseTimeSensitivity(t *testing.T) {
	pts, tb, err := RiseTimeSensitivity(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 || tb.Rows() != 6 {
		t.Fatal("row count")
	}
	// Fast edges (tr ≲ 0.5·tpd): step assumption good to a few percent.
	if r := pts[0].DelayRatio; math.Abs(r-1) > 0.03 {
		t.Errorf("tr=0.05·tpd: ratio %.3f, want ≈1", r)
	}
	if r := pts[2].DelayRatio; math.Abs(r-1) > 0.12 {
		t.Errorf("tr=0.5·tpd: ratio %.3f, want ≈1±0.12", r)
	}
	// Delay inflation grows with rise time and is substantial at 4×.
	for i := 1; i < len(pts); i++ {
		if pts[i].DelayRatio < pts[i-1].DelayRatio-0.02 {
			t.Errorf("delay ratio fell at %g", pts[i].RiseOverStep)
		}
	}
	if last := pts[len(pts)-1].DelayRatio; last < 1.15 {
		t.Errorf("tr=4·tpd: ratio %.3f, expected visible inflation", last)
	}
}

func TestScreenCensusGrowsWithScaling(t *testing.T) {
	pts, tb, err := ScreenCensus(21, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || tb.Rows() != 5 {
		t.Fatal("row count")
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.FractionRLC <= first.FractionRLC {
		t.Errorf("RLC fraction did not grow: %s %.2f → %s %.2f",
			first.Node, first.FractionRLC, last.Node, last.FractionRLC)
	}
	for _, p := range pts {
		if p.Stats.Total != 120 {
			t.Errorf("%s: total %d", p.Node, p.Stats.Total)
		}
	}
}
