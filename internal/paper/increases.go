package paper

import (
	"rlckit/internal/netgen"
	"rlckit/internal/repeater"
	"rlckit/internal/report"
)

// IncreasePoint is one T_{L/R} sample of the Eq. 16-18 cost-of-ignoring-
// inductance curves.
type IncreasePoint struct {
	TLR float64
	// DelayEq16Pct is Eq. 16 with the exact engine: RC design vs the
	// paper's closed-form RLC design.
	DelayEq16Pct float64
	// DelayVsOptPct is RC design vs the exact-engine optimum.
	DelayVsOptPct float64
	// DelayApproxPct is the paper's Eq. 17 closed-form fit.
	DelayApproxPct float64
	// AreaPct is Eq. 18; EnergyPct the switching-energy counterpart.
	AreaPct, EnergyPct float64
	// PaperDelayPct is the paper's stated anchor (0 when none given).
	PaperDelayPct float64
}

// paperDelayAnchors are the %delay increases the paper states.
var paperDelayAnchors = map[float64]float64{3: 10, 5: 20, 10: 30}

// Increases regenerates the Eq. 16-18 curves (experiments E5/E6) over
// the given T_{L/R} values (nil for the default sweep). vsOptimum also
// runs the exact-engine optimizer per point (slower).
func Increases(tlrs []float64, vsOptimum bool) ([]IncreasePoint, *report.Table, error) {
	if tlrs == nil {
		tlrs = []float64{0.5, 1, 2, 3, 5, 7, 10}
	}
	tb := report.NewTable("E5/E6 — cost of designing repeaters with an RC model",
		"T_{L/R}", "delay inc Eq.16 (%)", "delay inc vs optimum (%)",
		"Eq.17 fit (%)", "area inc Eq.18 (%)", "energy inc (%)", "paper (%)")
	var out []IncreasePoint
	for _, t := range tlrs {
		net := netgen.TLRSweep(paperBuffer.R0*paperBuffer.C0, []float64{t})[0]
		p := IncreasePoint{
			TLR:            t,
			DelayApproxPct: repeater.DelayIncreaseApprox(t),
			AreaPct:        repeater.AreaIncrease(t),
			PaperDelayPct:  paperDelayAnchors[t],
		}
		var err error
		if p.DelayEq16Pct, err = repeater.DelayIncrease(net.Line, paperBuffer); err != nil {
			return nil, nil, err
		}
		if p.EnergyPct, err = repeater.EnergyIncrease(net.Line, paperBuffer); err != nil {
			return nil, nil, err
		}
		if vsOptimum {
			if p.DelayVsOptPct, err = repeater.DelayIncreaseVsOptimum(net.Line, paperBuffer); err != nil {
				return nil, nil, err
			}
		}
		out = append(out, p)
		tb.AddRow(t, p.DelayEq16Pct, p.DelayVsOptPct, p.DelayApproxPct,
			p.AreaPct, p.EnergyPct, p.PaperDelayPct)
	}
	return out, tb, nil
}
