package paper

import (
	"fmt"
	"math"

	"rlckit/internal/core"
	"rlckit/internal/report"
	"rlckit/internal/tline"
)

// Fig2Point is one simulated point of Figure 2: the scaled 50% delay
// t′pd = t_pd·ωn at a given ζ for a given (RT, CT) family.
type Fig2Point struct {
	RTCT        float64 // RT = CT value of the family
	Zeta        float64
	TpdScaled   float64 // simulated
	Eq9Scaled   float64 // model curve value at the same ζ
	ErrPctVsEq9 float64
}

// fig2Line builds a driven line with the requested (RT = CT = v, ζ):
// Rt = 1 kΩ and Ct = 1 pF over 10 mm are fixed; Rtr = v·Rt, CL = v·Ct,
// and Lt is solved from Eq. 6.
func fig2Line(v, zeta float64) (tline.Line, tline.Drive, error) {
	const (
		rt = 1000.0
		ct = 1e-12
	)
	f := v + v + v*v + 0.5
	// ζ = (Rt/2)·sqrt(Ct/Lt)·f/sqrt(1+v)  ⇒  Lt = Ct·(Rt·f/(2ζ·sqrt(1+v)))².
	root := rt * f / (2 * zeta * math.Sqrt(1+v))
	lt := ct * root * root
	ln := tline.FromTotals(rt, lt, ct, 0.01)
	d := tline.Drive{Rtr: v * rt, CL: v * ct}
	return ln, d, ln.Validate()
}

// Fig2 regenerates Figure 2 (experiment E2): simulated t′pd versus ζ
// for RT = CT ∈ {0, 1, 5}, against the Eq. 9 curve. zetas selects the
// sample points (nil for the default sweep).
func Fig2(zetas []float64) ([]Fig2Point, *report.Plot, error) {
	if zetas == nil {
		zetas = linSpace(0.2, 2.4, 12)
	}
	families := []float64{0, 1, 5}
	var pts []Fig2Point
	plot := report.NewPlot("Fig. 2 — scaled 50% delay t'pd vs ζ", 64, 18)
	plot.XLabel, plot.YLabel = "zeta", "t'pd"
	for _, v := range families {
		xs := make([]float64, 0, len(zetas))
		ys := make([]float64, 0, len(zetas))
		for _, z := range zetas {
			ln, d, err := fig2Line(v, z)
			if err != nil {
				return nil, nil, fmt.Errorf("paper: fig2 line (v=%g ζ=%g): %w", v, z, err)
			}
			sim, err := simulate(ln, d)
			if err != nil {
				return nil, nil, fmt.Errorf("paper: fig2 sim (v=%g ζ=%g): %w", v, z, err)
			}
			p, err := core.Analyze(ln, d)
			if err != nil {
				return nil, nil, err
			}
			scaled := sim * p.OmegaN
			eq9 := core.ScaledDelay(p.Zeta)
			pts = append(pts, Fig2Point{
				RTCT: v, Zeta: p.Zeta, TpdScaled: scaled, Eq9Scaled: eq9,
				ErrPctVsEq9: pct(eq9, scaled),
			})
			xs = append(xs, p.Zeta)
			ys = append(ys, scaled)
		}
		if err := plot.Add(report.Series{Name: fmt.Sprintf("sim RT=CT=%g", v), X: xs, Y: ys}); err != nil {
			return nil, nil, err
		}
	}
	// Eq. 9 curve, densely sampled.
	cx := linSpace(zetas[0], zetas[len(zetas)-1], 48)
	cy := make([]float64, len(cx))
	for i, z := range cx {
		cy[i] = core.ScaledDelay(z)
	}
	if err := plot.Add(report.Series{Name: "Eq. 9", X: cx, Y: cy}); err != nil {
		return nil, nil, err
	}
	return pts, plot, nil
}
