package paper

import (
	"fmt"

	"rlckit/internal/core"
	"rlckit/internal/netgen"
	"rlckit/internal/report"
)

// Table1Cell is one cell of the paper's Table 1, with both our values
// and the paper's printed values.
type Table1Cell struct {
	RT, CT, Lt float64
	// Rt, Rtr are the decoded absolute impedances of the cell.
	Rt, Rtr float64
	// ModelPs is our Eq. 9 value; SimPs our dynamic-simulation value.
	ModelPs, SimPs float64
	// ErrPct is |model − sim|/sim in percent.
	ErrPct float64
	// PaperModelPs and PaperSimPs are the printed Eq. 9 and AS/X values.
	PaperModelPs, PaperSimPs float64
	Zeta                     float64
}

// paperTable1 holds the printed values: [rt group][lt row][ct col] =
// {eq9, asx}. Row groups RT ∈ {0.1, 0.5, 1.0}; rows Lt ∈ {1e-5..1e-8};
// columns CT ∈ {0.1, 0.5, 1.0}.
var paperTable1 = [3][4][3][2]float64{
	{ // RT = 0.1
		{{3389, 3287}, {3893, 3782}, {4469, 4344}},
		{{1062, 1071}, {1277, 1328}, {1553, 1627}},
		{{532, 552}, {848, 881}, {1248, 1269}},
		{{508, 496}, {850, 883}, {1239, 1261}},
	},
	{ // RT = 0.5
		{{3397, 3304}, {4086, 3940}, {4504, 4518}},
		{{1145, 1108}, {1489, 1509}, {1946, 2030}},
		{{854, 861}, {1297, 1300}, {1812, 1830}},
		{{841, 850}, {1277, 1283}, {1811, 1825}},
	},
	{ // RT = 1.0
		{{3397, 3291}, {3897, 3773}, {4496, 4383}},
		{{1070, 1076}, {1323, 1345}, {1712, 1702}},
		{{634, 609}, {930, 910}, {1297, 1281}},
		{{630, 622}, {936, 913}, {1294, 1271}},
	},
}

// table1Impedances returns the decoded (Rt, Rtr) for a row group. The
// caption says Rtr = 500 Ω throughout, but only the RT = 0.5 and 1.0
// groups' printed Eq. 9 values are consistent with that; the RT = 0.1
// group matches Rt = 1 kΩ with Rtr = 100 Ω (see EXPERIMENTS.md). We use
// the decode that reproduces the printed numbers.
func table1Impedances(rtGroup float64) (rt, rtr float64) {
	switch rtGroup {
	case 0.1:
		return 1000, 100
	case 0.5:
		return 1000, 500
	default: // 1.0
		return 500, 500
	}
}

// Table1 regenerates the paper's Table 1 (experiment E1). It returns
// the cells and a rendered table.
func Table1() ([]Table1Cell, *report.Table, error) {
	rts := []float64{0.1, 0.5, 1.0}
	cts := []float64{0.1, 0.5, 1.0}
	lts := []float64{1e-5, 1e-6, 1e-7, 1e-8}
	var cells []Table1Cell
	tb := report.NewTable(
		"Table 1 — Eq. 9 vs dynamic simulation (Ct = 1 pF, 10 mm line); paper values alongside",
		"RT", "CT", "Lt(H)", "zeta", "eq9(ps)", "sim(ps)", "err%", "paper eq9", "paper ASX")
	for gi, rT := range rts {
		rt, rtr := table1Impedances(rT)
		for li, lt := range lts {
			for ci, cT := range cts {
				net := netgen.Table1Cell(rt, rtr, cT, lt)
				model, err := core.Delay(net.Line, net.Drive)
				if err != nil {
					return nil, nil, fmt.Errorf("paper: table1 model (RT=%g CT=%g Lt=%g): %w", rT, cT, lt, err)
				}
				sim, err := simulate(net.Line, net.Drive)
				if err != nil {
					return nil, nil, fmt.Errorf("paper: table1 sim (RT=%g CT=%g Lt=%g): %w", rT, cT, lt, err)
				}
				p, err := core.Analyze(net.Line, net.Drive)
				if err != nil {
					return nil, nil, err
				}
				e := pct(model, sim)
				if e < 0 {
					e = -e
				}
				cell := Table1Cell{
					RT: rT, CT: cT, Lt: lt, Rt: rt, Rtr: rtr,
					ModelPs: model * 1e12, SimPs: sim * 1e12, ErrPct: e,
					PaperModelPs: paperTable1[gi][li][ci][0],
					PaperSimPs:   paperTable1[gi][li][ci][1],
					Zeta:         p.Zeta,
				}
				cells = append(cells, cell)
				tb.AddRow(rT, cT, fmt.Sprintf("%.0e", lt), cell.Zeta,
					cell.ModelPs, cell.SimPs, cell.ErrPct,
					cell.PaperModelPs, cell.PaperSimPs)
			}
		}
	}
	return cells, tb, nil
}

// Table1Stats summarizes the model-vs-simulation error over the grid.
type Table1Stats struct {
	MaxErrPct, MeanErrPct float64
	CellsWithin5Pct       int
	Cells                 int
	// MaxModelDecodeErrPct is the worst |our eq9 − printed eq9| mismatch,
	// certifying the ζ/Eq. 9 transcription against the paper itself.
	MaxModelDecodeErrPct float64
}

// Stats computes summary statistics from Table1 cells.
func Stats(cells []Table1Cell) Table1Stats {
	var s Table1Stats
	s.Cells = len(cells)
	for _, c := range cells {
		if c.ErrPct > s.MaxErrPct {
			s.MaxErrPct = c.ErrPct
		}
		s.MeanErrPct += c.ErrPct
		if c.ErrPct <= 5 {
			s.CellsWithin5Pct++
		}
		d := pct(c.ModelPs, c.PaperModelPs)
		if d < 0 {
			d = -d
		}
		if d > s.MaxModelDecodeErrPct {
			s.MaxModelDecodeErrPct = d
		}
	}
	if s.Cells > 0 {
		s.MeanErrPct /= float64(s.Cells)
	}
	return s
}
