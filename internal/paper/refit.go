package paper

import (
	"fmt"

	"rlckit/internal/core"
	"rlckit/internal/report"
)

// RefitResult is experiment E10: the paper's own curve-fitting step,
// redone against our simulator.
type RefitResult struct {
	// Fitted are the constants recovered from our simulation data;
	// the paper's are (2.9, 1.35, 1.48).
	Fitted core.FitCoefficients
	// FitRMSPct/FitMaxPct: the refit curve's error on the sample set.
	FitRMSPct, FitMaxPct float64
	// PaperRMSPct/PaperMaxPct: the published constants' error on the
	// same samples.
	PaperRMSPct, PaperMaxPct float64
	Samples                  int
}

// Refit regenerates the Eq. 9 constants from scratch (E10): it sweeps
// ζ across the paper's fitting domain (RT, CT ∈ [0, 1]), measures the
// scaled delay with the exact line engine, and fits t′ = e^(−Aζ^B)+Cζ.
func Refit() (RefitResult, *report.Table, error) {
	// Families inside the accuracy domain plus high-ζ anchors to pin C.
	families := []float64{0, 0.3, 0.7, 1.0}
	zetas := append(linSpace(0.25, 2.5, 8), 4, 6, 9)
	var samples []core.FitSample
	for _, v := range families {
		for _, z := range zetas {
			ln, d, err := fig2Line(v, z)
			if err != nil {
				return RefitResult{}, nil, err
			}
			sim, err := simulate(ln, d)
			if err != nil {
				return RefitResult{}, nil, fmt.Errorf("paper: refit sim (v=%g ζ=%g): %w", v, z, err)
			}
			p, err := core.Analyze(ln, d)
			if err != nil {
				return RefitResult{}, nil, err
			}
			samples = append(samples, core.FitSample{Zeta: p.Zeta, TpdScaled: sim * p.OmegaN})
		}
	}
	fit, err := core.FitDelayModel(samples)
	if err != nil {
		return RefitResult{}, nil, err
	}
	res := RefitResult{
		Fitted:    fit.Coeff,
		FitRMSPct: fit.RMSPct, FitMaxPct: fit.MaxPct,
		Samples: len(samples),
	}
	res.PaperRMSPct, res.PaperMaxPct = core.ErrorVsSamples(core.PaperCoefficients, samples)
	tb := report.NewTable("E10 — re-deriving the Eq. 9 constants from our simulator",
		"constants", "A", "B", "C", "rms err %", "max err %")
	tb.AddRow("paper (2.9, 1.35, 1.48)", core.PaperCoefficients.A, core.PaperCoefficients.B,
		core.PaperCoefficients.C, res.PaperRMSPct, res.PaperMaxPct)
	tb.AddRow("refit", res.Fitted.A, res.Fitted.B, res.Fitted.C, res.FitRMSPct, res.FitMaxPct)
	return res, tb, nil
}
