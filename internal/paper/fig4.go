package paper

import (
	"fmt"

	"rlckit/internal/netgen"
	"rlckit/internal/repeater"
	"rlckit/internal/report"
)

// paperBuffer is the repeater experiments' minimum buffer: R0·C0 = 1 ps,
// the scale at which the paper's T_{L/R} = 0..10 sweep maps onto
// realistic global wires (Rt = 1 kΩ, Ct = 1 pF, 10 mm).
var paperBuffer = repeater.Buffer{R0: 1000, C0: 1e-15, Amin: 1, Vdd: 1.8}

// Fig4Point is one T_{L/R} sample of Figure 4: the closed-form error
// factors h′, k′ against numerically optimized ratios.
type Fig4Point struct {
	TLR float64
	// HpClosed, KpClosed are Eq. 14/15's factors.
	HpClosed, KpClosed float64
	// HpEq9, KpEq9 are from minimizing the paper's Eq. 9-based objective.
	HpEq9, KpEq9 float64
	// HpTrue, KpTrue are from minimizing the exact-engine objective
	// (zero when the true optimization is skipped).
	HpTrue, KpTrue float64
}

// Fig4 regenerates Figure 4 (experiments E3/E4): h′(T) and k′(T) from
// the closed forms versus numerical optimization. tlrs selects sample
// points (nil for the default sweep). includeTrue additionally runs the
// exact-engine optimizer (slower; the scientifically decisive one).
func Fig4(tlrs []float64, includeTrue bool) ([]Fig4Point, *report.Plot, error) {
	if tlrs == nil {
		tlrs = []float64{0.25, 0.5, 1, 2, 3, 5, 7, 10}
	}
	var pts []Fig4Point
	plot := report.NewPlot("Fig. 4 — repeater error factors h'(T), k'(T)", 64, 18)
	plot.XLabel, plot.YLabel = "T_{L/R}", "factor"
	var hx, hy, kx, ky, htx, hty, ktx, kty []float64
	for _, t := range tlrs {
		net := netgen.TLRSweep(paperBuffer.R0*paperBuffer.C0, []float64{t})[0]
		hB, kB, err := repeater.BakogluHK(net.Line, paperBuffer)
		if err != nil {
			return nil, nil, fmt.Errorf("paper: fig4 Bakoglu at T=%g: %w", t, err)
		}
		hp, kp := repeater.ErrorFactors(t)
		pt := Fig4Point{TLR: t, HpClosed: hp, KpClosed: kp}
		hEq9, kEq9, _, err := repeater.OptimizeEq9(net.Line, paperBuffer)
		if err != nil {
			return nil, nil, fmt.Errorf("paper: fig4 Eq.9 optimum at T=%g: %w", t, err)
		}
		pt.HpEq9, pt.KpEq9 = hEq9/hB, kEq9/kB
		if includeTrue {
			hT, kT, _, err := repeater.OptimizeTrue(net.Line, paperBuffer)
			if err != nil {
				return nil, nil, fmt.Errorf("paper: fig4 true optimum at T=%g: %w", t, err)
			}
			pt.HpTrue, pt.KpTrue = hT/hB, kT/kB
			htx, hty = append(htx, t), append(hty, pt.HpTrue)
			ktx, kty = append(ktx, t), append(kty, pt.KpTrue)
		}
		pts = append(pts, pt)
		hx, hy = append(hx, t), append(hy, hp)
		kx, ky = append(kx, t), append(ky, kp)
	}
	if err := plot.Add(report.Series{Name: "h' closed form (Eq. 14)", X: hx, Y: hy}); err != nil {
		return nil, nil, err
	}
	if err := plot.Add(report.Series{Name: "k' closed form (Eq. 15)", X: kx, Y: ky}); err != nil {
		return nil, nil, err
	}
	if includeTrue {
		if err := plot.Add(report.Series{Name: "h' true optimum", X: htx, Y: hty}); err != nil {
			return nil, nil, err
		}
		if err := plot.Add(report.Series{Name: "k' true optimum", X: ktx, Y: kty}); err != nil {
			return nil, nil, err
		}
	}
	return pts, plot, nil
}

// OptimalityGap quantifies the Section III claim that the closed forms
// are near-optimal (experiment E8): the total-delay penalty of the
// closed-form plan versus the optimizer, under both objectives.
type OptimalityGap struct {
	TLR float64
	// Eq9GapPct: closed form vs the Eq. 9-objective optimum.
	Eq9GapPct float64
	// TrueGapPct: closed form vs the exact-engine optimum.
	TrueGapPct float64
}

// Optimality computes the E8 gaps over the given T_{L/R} values.
func Optimality(tlrs []float64) ([]OptimalityGap, *report.Table, error) {
	if tlrs == nil {
		tlrs = []float64{0.5, 1, 2, 3, 5}
	}
	tb := report.NewTable("E8 — closed-form repeater plan vs numerical optimum",
		"T_{L/R}", "gap vs Eq.9 objective (%)", "gap vs exact engine (%)")
	var out []OptimalityGap
	for _, t := range tlrs {
		net := netgen.TLRSweep(paperBuffer.R0*paperBuffer.C0, []float64{t})[0]
		h, k, err := repeater.ClosedFormHK(net.Line, paperBuffer)
		if err != nil {
			return nil, nil, err
		}
		dEq9, err := repeater.TotalDelay(net.Line, paperBuffer, h, k)
		if err != nil {
			return nil, nil, err
		}
		_, _, oEq9, err := repeater.OptimizeEq9(net.Line, paperBuffer)
		if err != nil {
			return nil, nil, err
		}
		dTrue, err := repeater.TrueTotalDelay(net.Line, paperBuffer, h, k)
		if err != nil {
			return nil, nil, err
		}
		_, _, oTrue, err := repeater.OptimizeTrue(net.Line, paperBuffer)
		if err != nil {
			return nil, nil, err
		}
		g := OptimalityGap{TLR: t, Eq9GapPct: pct(dEq9, oEq9), TrueGapPct: pct(dTrue, oTrue)}
		out = append(out, g)
		tb.AddRow(t, g.Eq9GapPct, g.TrueGapPct)
	}
	return out, tb, nil
}
