// Package paper regenerates every table and figure of the paper's
// evaluation from rlckit's own engines. It is the single source of truth
// used by cmd/paperfigs, the root benchmark suite, and the integration
// tests; EXPERIMENTS.md records its output against the paper's printed
// values.
//
// Experiment index (ids match DESIGN.md):
//
//	E1  Table 1    — Eq. 9 vs dynamic simulation over the 36-cell grid
//	E2  Figure 2   — scaled delay t′pd vs ζ for (RT, CT) ∈ {0, 1, 5}
//	E3  Figure 4a  — repeater size error factor h′(T)
//	E4  Figure 4b  — repeater count error factor k′(T)
//	E5  Eq. 16/17  — %delay increase of RC-designed repeaters
//	E6  Eq. 18     — %area increase of RC-designed repeaters
//	E7  Section II — delay vs length: quadratic → linear transition
//	E8  Section III— closed-form repeater optimality gap
//	E9  Section IV — technology scaling trend of the RC-model error
package paper

import (
	"math"

	"rlckit/internal/refeng"
	"rlckit/internal/tline"
)

// simulate is the reference "dynamic circuit simulation" used to grade
// the closed forms: the exact transmission-line transfer function
// inverted numerically. refeng's tests certify it against the MNA
// transient engine and the pole/residue engine to <1%.
func simulate(ln tline.Line, d tline.Drive) (float64, error) {
	return refeng.DelayExactTF(ln, d, 0)
}

// pct returns the signed percentage difference of a vs ref.
func pct(a, ref float64) float64 { return 100 * (a - ref) / ref }

// geomSpace returns n geometrically spaced points in [lo, hi].
func geomSpace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// linSpace returns n linearly spaced points in [lo, hi].
func linSpace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
