package paper

import (
	"fmt"
	"math"

	"rlckit/internal/core"
	"rlckit/internal/elmore"
	"rlckit/internal/report"
	"rlckit/internal/tline"
)

// LengthPoint is one sample of the delay-versus-length experiment (E7).
type LengthPoint struct {
	Length float64
	// SimPs, Eq9Ps, SakuraiPs are the simulated, Eq. 9, and RC-only
	// delays in picoseconds.
	SimPs, Eq9Ps, SakuraiPs float64
	// LocalExponent is the secant log-log slope d(ln t)/d(ln l) between
	// this point and the previous one (0 for the first point).
	LocalExponent float64
	Zeta          float64
}

// LengthScaling regenerates the Section II claim (experiment E7): the
// delay of a low-resistance wire transitions from the RC regime's
// quadratic length dependence toward the LC regime's linear dependence
// as inductance takes over (short lines here are inductance-dominated;
// long lines accumulate resistance and become RC-quadratic).
//
// The wire is a wide clock-style conductor (R = 10 kΩ/m, L = 400 nH/m,
// C = 120 pF/m — a 0.25 µm-class global wire) driven hard (Rtr = 5 Ω,
// CL = 20 fF) so RT and CT stay inside Eq. 9's accuracy domain across
// the whole sweep; lengths sweep lo..hi meters over n points.
func LengthScaling(lo, hi float64, n int) ([]LengthPoint, *report.Table, error) {
	if n < 3 {
		n = 12
	}
	if lo <= 0 {
		lo = 2e-3
	}
	if hi <= lo {
		hi = 8e-2
	}
	wire := tline.Line{R: 1e4, L: 4e-7, C: 1.2e-10, Length: 1}
	d := tline.Drive{Rtr: 5, CL: 2e-14}
	tb := report.NewTable("E7 — delay vs length: quadratic (RC) → linear (LC) transition",
		"length(mm)", "zeta", "sim(ps)", "Eq.9(ps)", "Sakurai RC(ps)", "d ln t/d ln l")
	var out []LengthPoint
	for i, l := range geomSpace(lo, hi, n) {
		ln := wire
		ln.Length = l
		rt, _, ct := ln.Totals()
		sim, err := simulate(ln, d)
		if err != nil {
			return nil, nil, fmt.Errorf("paper: length sweep at %g m: %w", l, err)
		}
		model, err := core.Delay(ln, d)
		if err != nil {
			return nil, nil, err
		}
		p, err := core.Analyze(ln, d)
		if err != nil {
			return nil, nil, err
		}
		pt := LengthPoint{
			Length: l,
			SimPs:  sim * 1e12, Eq9Ps: model * 1e12,
			SakuraiPs: elmore.Sakurai50(rt, ct, d.Rtr, d.CL) * 1e12,
			Zeta:      p.Zeta,
		}
		if i > 0 {
			prev := out[i-1]
			pt.LocalExponent = math.Log(pt.SimPs/prev.SimPs) / math.Log(l/prev.Length)
		}
		out = append(out, pt)
		tb.AddRow(l*1e3, pt.Zeta, pt.SimPs, pt.Eq9Ps, pt.SakuraiPs, pt.LocalExponent)
	}
	return out, tb, nil
}
