package netlist

import (
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus: the decks the cmd/netsim tests and
// golden files exercise, plus directive/source edge shapes.
var fuzzSeeds = []string{
	// The cmd/netsim test deck.
	"Vin in 0 STEP 1 10p\nR1 in out 1k\nC1 out 0 1p\n.tran 5p 8n\n.ac 1e6 1e10 5\n.probe out\n",
	// An RLC ladder with every element kind and a current source.
	"* ladder\nVin in 0 PULSE 1 10p 5p 1n 5p 2n\nR1 in a 500\nL1 a b 10n\nC1 b 0 1p\nI1 b 0 SIN 1m 1e9 0 0\n.tran 1p 4n\n.probe a b\n",
	// DC + comments + gnd alias + engineering notation.
	"// comment\nV1 x gnd DC 3.3\nR1 x gnd 2.2k\n.tran 1n 1u\n.probe x\n",
	// AC-only deck.
	"Vs n1 0 SIN 1 1e9\nR1 n1 n2 50\nC2 n2 0 2p\n.ac 1k 1G 11\n.probe n2\n",
	// Error-shaped inputs that must return (not panic).
	"R1 a b\n",
	"V1 a b WUMPUS 1\n",
	".tran 0 0\n",
	".ac 1 2 1e18\n",
	".probe nowhere\n",
	"L1 x x 1n\n.tran 1p 1n\n.probe x\n",
	"Xfrob a b 12\n",
	"R1 a b 1e400\n.tran 1p 1n\n.probe a\n",
}

// FuzzParse asserts the deck parser never panics, and that any accepted
// deck round-trips: re-parsing the same text yields the same node,
// element and probe counts (parsing is a pure function of the text).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := Parse(strings.NewReader(s))
		if err != nil {
			return // rejected: fine, as long as we didn't panic
		}
		if d.Ckt == nil {
			t.Fatal("accepted deck with nil circuit")
		}
		// Structural sanity of the accepted deck.
		if d.Dt == 0 && len(d.ACFreqs) == 0 {
			t.Fatal("accepted deck with neither .tran nor .ac")
		}
		if len(d.Probes) == 0 {
			t.Fatal("accepted deck with no probes")
		}
		nodes := d.Ckt.Nodes()
		for name, id := range d.Names {
			if id < 0 || id >= nodes {
				t.Fatalf("node %q has out-of-range id %d (nodes=%d)", name, id, nodes)
			}
		}
		for _, p := range d.Probes {
			if p <= 0 || p >= nodes {
				t.Fatalf("probe id %d out of range (nodes=%d)", p, nodes)
			}
		}
		// Round trip: same text, same structure.
		d2, err := Parse(strings.NewReader(s))
		if err != nil {
			t.Fatalf("accepted deck rejected on re-parse: %v", err)
		}
		if d2.Ckt.Nodes() != nodes {
			t.Fatalf("node count changed on re-parse: %d vs %d", nodes, d2.Ckt.Nodes())
		}
		if len(d2.Ckt.Elements()) != len(d.Ckt.Elements()) {
			t.Fatalf("element count changed on re-parse: %d vs %d",
				len(d.Ckt.Elements()), len(d2.Ckt.Elements()))
		}
		if len(d2.Probes) != len(d.Probes) {
			t.Fatalf("probe count changed on re-parse: %d vs %d", len(d.Probes), len(d2.Probes))
		}
		if len(d2.ACFreqs) != len(d.ACFreqs) {
			t.Fatalf("AC grid changed on re-parse: %d vs %d", len(d.ACFreqs), len(d2.ACFreqs))
		}
	})
}

func TestACPointCountGuard(t *testing.T) {
	for _, bad := range []string{
		"V1 a 0 DC 1\n.ac 1 2 1e18\n.probe a\n",
		"V1 a 0 DC 1\n.ac 1 2 2.5\n.probe a\n",
		"V1 a 0 DC 1\n.ac 1 2 1\n.probe a\n",
		"V1 a 0 DC 1\n.ac 1 2 -4\n.probe a\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	ok := "V1 a 0 DC 1\n.ac 1 1e6 7\n.probe a\n"
	d, err := Parse(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ACFreqs) != 7 {
		t.Errorf("%d AC points", len(d.ACFreqs))
	}
}
