package netlist

import (
	"math"
	"strings"
	"testing"

	"rlckit/internal/mna"
)

const rcDeck = `
* simple RC lowpass
Vin in 0 STEP 1 10p
R1 in out 1k
C1 out 0 1p
.tran 5p 8n
.probe out
`

func TestParseAndSimulateRC(t *testing.T) {
	d, err := Parse(strings.NewReader(rcDeck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Dt != 5e-12 || d.TEnd != 8e-9 {
		t.Errorf("tran %g %g", d.Dt, d.TEnd)
	}
	if len(d.Probes) != 1 {
		t.Fatalf("probes %v", d.Probes)
	}
	res, err := mna.Simulate(d.Ckt, mna.Options{Dt: d.Dt, TEnd: d.TEnd, Probes: d.Probes})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(d.Probes[0])
	if err != nil {
		t.Fatal(err)
	}
	delay, err := w.Delay50(1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-9*math.Ln2 + 10e-12 - 2.5e-12 // τln2 + delay − dt/2 smear
	if math.Abs(delay-want) > 5e-12 {
		t.Errorf("delay %g, want %g", delay, want)
	}
	if d.NodeName(d.Probes[0]) != "out" {
		t.Errorf("node name %q", d.NodeName(d.Probes[0]))
	}
}

func TestParseRLCWithAllSources(t *testing.T) {
	deck := `
* all source kinds
Vdc a 0 DC 1
Vstep b 0 STEP 1 1n 10p
Vpulse c 0 PULSE 1 0 10p 1n 10p 4n
Vsin d 0 SIN 0.5 1e9 0 0.5
Ra a 0 1k
Rb b 0 1k
Rc c 0 1k
Rd d 0 1k
L1 a e 1n
Ce e 0 10f
.tran 1p 10n
.probe a b c d e
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	st := d.Ckt.Stats()
	if st.V != 4 || st.R != 4 || st.L != 1 || st.C != 1 {
		t.Errorf("stats %+v", st)
	}
	if len(d.Probes) != 5 {
		t.Errorf("probes %v", d.Probes)
	}
}

func TestParseComments(t *testing.T) {
	deck := `
* star comment
// slash comment

V1 in 0 DC 1
R1 in 0 1k
.tran 1p 1n
.probe in
`
	if _, err := Parse(strings.NewReader(deck)); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, deck string }{
		{"no tran", "V1 a 0 DC 1\nR1 a 0 1k\n.probe a\n"},
		{"no probe", "V1 a 0 DC 1\nR1 a 0 1k\n.tran 1p 1n\n"},
		{"bad element", "Q1 a 0 5\n.tran 1p 1n\n.probe a\n"},
		{"bad value", "R1 a 0 abc\n"},
		{"short R", "R1 a 0\n"},
		{"bad tran", ".tran 1p\n"},
		{"tran order", "V1 a 0 DC 1\nR1 a 0 1k\n.tran 1n 1p\n.probe a\n"},
		{"probe unknown", "V1 a 0 DC 1\nR1 a 0 1k\n.tran 1p 1n\n.probe zz\n"},
		{"probe ground", "V1 a 0 DC 1\nR1 a 0 1k\n.tran 1p 1n\n.probe 0\n"},
		{"bad directive", ".wave 1\n"},
		{"short source", "V1 a 0 DC\n"},
		{"bad source kind", "V1 a 0 RAMP 1\nR1 a 0 1\n.tran 1p 1n\n.probe a\n"},
		{"short pulse", "V1 a 0 PULSE 1 0\nR1 a 0 1\n.tran 1p 1n\n.probe a\n"},
		{"short sin", "V1 a 0 SIN 1\nR1 a 0 1\n.tran 1p 1n\n.probe a\n"},
		{"invalid circuit", "V1 a 0 DC 1\nR1 a a 1k\n.tran 1p 1n\n.probe a\n"},
		{"floating node", "V1 a 0 DC 1\nR1 a 0 1k\nRf x y 1k\n.tran 1p 1n\n.probe a\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.deck)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGroundAliases(t *testing.T) {
	deck := "V1 a gnd DC 1\nR1 a 0 1k\n.tran 1p 1n\n.probe a\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Ckt.Nodes() != 2 { // ground + a
		t.Errorf("nodes %d", d.Ckt.Nodes())
	}
}

func TestCurrentSourceDeck(t *testing.T) {
	deck := `
* current source driving parallel RC
I1 out 0 STEP 1m 10p
R1 out 0 1k
C1 out 0 1p
.tran 2p 8n
.probe out
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mna.Simulate(d.Ckt, mna.Options{Dt: d.Dt, TEnd: d.TEnd, Probes: d.Probes})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(d.Probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if f := w.Final(); math.Abs(f-1) > 1e-3 {
		t.Errorf("final %g, want 1 V", f)
	}
}
