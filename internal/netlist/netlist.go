// Package netlist parses a small SPICE-like circuit deck format for the
// netsim command-line tool:
//
//   - comment
//     R<name> <nodeA> <nodeB> <value>      resistor (ohms)
//     C<name> <nodeA> <nodeB> <value>      capacitor (farads)
//     L<name> <nodeA> <nodeB> <value>      inductor (henries)
//     V<name> <node+> <node-> DC <v>       constant source
//     V<name> <node+> <node-> STEP <v> [delay] [rise]
//     V<name> <node+> <node-> PULSE <v> <delay> <rise> <width> <fall> [period]
//     V<name> <node+> <node-> SIN <ampl> <freq> [phase] [offset]
//     I<name> <node+> <node-> <same source kinds as V, current in amperes>
//     .tran <dt> <tend>                    transient analysis directive
//     .ac <f0> <f1> <npoints>              log-spaced AC sweep (optional)
//     .probe <node> [node...]              nodes to record
//
// Node "0" (or "gnd") is ground; other node names are arbitrary
// identifiers. Values accept engineering notation ("1k", "2.2p", "10n").
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"rlckit/internal/circuit"
	"rlckit/internal/mna"
	"rlckit/internal/units"
)

// mnaLogSpace aliases the simulator's sweep helper so deck parsing and
// analysis agree on grid semantics.
var mnaLogSpace = mna.LogSpace

// Deck is a parsed netlist plus its analysis directives.
type Deck struct {
	Ckt    *circuit.Circuit
	Probes []int
	Dt     float64
	TEnd   float64
	// ACFreqs is the optional log-spaced AC sweep (empty when the deck
	// has no .ac directive).
	ACFreqs []float64
	// Names maps node names to circuit node IDs.
	Names map[string]int
}

// Parse reads a deck from r.
func Parse(r io.Reader) (*Deck, error) {
	d := &Deck{
		Ckt:   circuit.New(),
		Names: map[string]int{"0": circuit.Ground, "gnd": circuit.Ground},
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, "//") {
			continue
		}
		if err := d.parseLine(line); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %w", err)
	}
	if (d.Dt == 0 || d.TEnd == 0) && len(d.ACFreqs) == 0 {
		return nil, fmt.Errorf("netlist: missing .tran or .ac directive")
	}
	if len(d.Probes) == 0 {
		return nil, fmt.Errorf("netlist: missing .probe directive")
	}
	if err := d.Ckt.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Deck) node(name string) int {
	key := strings.ToLower(name)
	if id, ok := d.Names[key]; ok {
		return id
	}
	id := d.Ckt.Node()
	d.Names[key] = id
	return id
}

func (d *Deck) parseLine(line string) error {
	fields := strings.Fields(line)
	head := fields[0]
	switch {
	case strings.HasPrefix(head, "."):
		return d.parseDirective(fields)
	case len(head) >= 2 || len(head) == 1:
		kind := strings.ToUpper(head[:1])
		switch kind {
		case "R", "C", "L":
			if len(fields) != 4 {
				return fmt.Errorf("%s element needs 4 fields, got %d", kind, len(fields))
			}
			v, err := units.Parse(fields[3])
			if err != nil {
				return err
			}
			a, b := d.node(fields[1]), d.node(fields[2])
			switch kind {
			case "R":
				return d.Ckt.AddR(head, a, b, v)
			case "C":
				return d.Ckt.AddC(head, a, b, v)
			default:
				return d.Ckt.AddL(head, a, b, v)
			}
		case "V", "I":
			return d.parseSource(head, fields, kind == "I")
		}
	}
	return fmt.Errorf("unrecognized element %q", head)
}

func (d *Deck) parseSource(name string, fields []string, isCurrent bool) error {
	if len(fields) < 5 {
		return fmt.Errorf("source needs at least 5 fields, got %d", len(fields))
	}
	a, b := d.node(fields[1]), d.node(fields[2])
	kind := strings.ToUpper(fields[3])
	args := make([]float64, 0, len(fields)-4)
	for _, f := range fields[4:] {
		v, err := units.Parse(f)
		if err != nil {
			return err
		}
		args = append(args, v)
	}
	var src circuit.Source
	switch kind {
	case "DC":
		src = circuit.DC(args[0])
	case "STEP":
		s := circuit.Step{Amplitude: args[0]}
		if len(args) > 1 {
			s.Delay = args[1]
		}
		if len(args) > 2 {
			s.Rise = args[2]
		}
		src = s
	case "PULSE":
		if len(args) < 5 {
			return fmt.Errorf("PULSE needs 5-6 values, got %d", len(args))
		}
		p := circuit.Pulse{
			Amplitude: args[0], Delay: args[1], Rise: args[2],
			Width: args[3], Fall: args[4],
		}
		if len(args) > 5 {
			p.Period = args[5]
		}
		src = p
	case "SIN":
		if len(args) < 2 {
			return fmt.Errorf("SIN needs 2-4 values, got %d", len(args))
		}
		s := circuit.Sine{Amplitude: args[0], Freq: args[1]}
		if len(args) > 2 {
			s.Phase = args[2]
		}
		if len(args) > 3 {
			s.Offset = args[3]
		}
		src = s
	default:
		return fmt.Errorf("unknown source kind %q", kind)
	}
	if isCurrent {
		return d.Ckt.AddI(name, a, b, src)
	}
	return d.Ckt.AddV(name, a, b, src)
}

func (d *Deck) parseDirective(fields []string) error {
	switch strings.ToLower(fields[0]) {
	case ".tran":
		if len(fields) != 3 {
			return fmt.Errorf(".tran needs <dt> <tend>")
		}
		dt, err := units.Parse(fields[1])
		if err != nil {
			return err
		}
		tend, err := units.Parse(fields[2])
		if err != nil {
			return err
		}
		if dt <= 0 || tend <= dt {
			return fmt.Errorf(".tran needs 0 < dt < tend (got %g, %g)", dt, tend)
		}
		d.Dt, d.TEnd = dt, tend
		return nil
	case ".ac":
		if len(fields) != 4 {
			return fmt.Errorf(".ac needs <f0> <f1> <npoints>")
		}
		f0, err := units.Parse(fields[1])
		if err != nil {
			return err
		}
		f1, err := units.Parse(fields[2])
		if err != nil {
			return err
		}
		np, err := units.Parse(fields[3])
		if err != nil {
			return err
		}
		// Guard the slice allocation: a huge or non-integral point count
		// must be a parse error, not an out-of-memory crash (found by
		// FuzzParse).
		const maxACPoints = 1 << 20
		if np != math.Trunc(np) || np < 2 || np > maxACPoints {
			return fmt.Errorf(".ac npoints must be an integer in [2, %d], got %g", maxACPoints, np)
		}
		freqs, err := mnaLogSpace(f0, f1, int(np))
		if err != nil {
			return err
		}
		d.ACFreqs = freqs
		return nil
	case ".probe":
		if len(fields) < 2 {
			return fmt.Errorf(".probe needs at least one node")
		}
		for _, n := range fields[1:] {
			key := strings.ToLower(n)
			id, ok := d.Names[key]
			if !ok {
				return fmt.Errorf(".probe references unknown node %q (declare elements first)", n)
			}
			if id == circuit.Ground {
				return fmt.Errorf("cannot probe ground")
			}
			d.Probes = append(d.Probes, id)
		}
		return nil
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

// NodeName returns the name of a circuit node ID (for output headers).
func (d *Deck) NodeName(id int) string {
	for name, nid := range d.Names {
		if nid == id && name != "gnd" {
			return name
		}
	}
	return fmt.Sprintf("n%d", id)
}
