package core

import (
	"math"
	"testing"
	"testing/quick"

	"rlckit/internal/tline"
)

func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }

// paperCase builds the decoded Table 1 configurations: Ct = 1 pF over
// 10 mm; rt and rtr as decoded from the printed Eq. 9 values.
func paperCase(rt, rtr, cT, lt float64) (tline.Line, tline.Drive) {
	return tline.FromTotals(rt, lt, 1e-12, 0.01), tline.Drive{Rtr: rtr, CL: cT * 1e-12}
}

func TestZetaMatchesPrintedTable1Values(t *testing.T) {
	// Cells of the paper's Table 1 whose (Rt, Rtr) decode was confirmed:
	// the printed Eq. 9 values pin our ζ transcription to within ~1%.
	cases := []struct {
		rt, rtr, cT, lt float64
		paperPs         float64
	}{
		{1000, 100, 0.1, 1e-6, 1062},
		{1000, 500, 0.5, 1e-6, 1489},
		{1000, 500, 0.5, 1e-7, 1297},
		{500, 500, 1.0, 1e-7, 1297},
		{500, 500, 0.1, 1e-6, 1070},
		{500, 500, 0.1, 1e-8, 630},
		{1000, 100, 0.5, 1e-7, 848},
	}
	for _, c := range cases {
		ln, d := paperCase(c.rt, c.rtr, c.cT, c.lt)
		got, err := Delay(ln, d)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(got, c.paperPs*1e-12); e > 0.012 {
			t.Errorf("Rt=%g Rtr=%g CT=%g Lt=%g: Eq.9 = %.1f ps, paper %.0f ps (%.2f%%)",
				c.rt, c.rtr, c.cT, c.lt, got*1e12, c.paperPs, e*100)
		}
	}
}

func TestRCLimit(t *testing.T) {
	// As L→0, Eq. 9 must approach 0.74·Rt·Ct·(RT+CT+RT·CT+0.5); with
	// RT=CT=0 that is 0.37·Rt·Ct (Sakurai's distributed RC delay).
	rt, ct := 1000.0, 1e-12
	want := 0.37 * rt * ct
	got, err := DelayTotals(rt, 1e-14, ct, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, want) > 1e-3 {
		t.Errorf("L→0 delay = %g, want %g", got, want)
	}
	if rc := RCLimitDelay(rt, ct, 0, 0); relErr(rc, want) > 1e-12 {
		t.Errorf("RCLimitDelay = %g, want %g", rc, want)
	}
	// Loaded case: general formula.
	rtr, cl := 500.0, 5e-13
	wantLoaded := 0.74 * rt * ct * (0.5 + 0.5 + 0.25 + 0.5)
	if rc := RCLimitDelay(rt, ct, rtr, cl); relErr(rc, wantLoaded) > 1e-12 {
		t.Errorf("loaded RCLimitDelay = %g, want %g", rc, wantLoaded)
	}
	if RCLimitDelay(0, ct, 0, 0) != 0 || RCLimitDelay(rt, 0, 0, 0) != 0 {
		t.Error("degenerate RCLimitDelay should be 0")
	}
}

func TestLCLimit(t *testing.T) {
	// As R→0 (unloaded), Eq. 9 must approach sqrt(Lt·Ct) = l·sqrt(LC).
	lt, ct := 1e-7, 1e-12
	want := math.Sqrt(lt * ct)
	got, err := DelayTotals(1e-6, lt, ct, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, want) > 1e-3 {
		t.Errorf("R→0 delay = %g, want %g", got, want)
	}
	if lc := LCLimitDelay(lt, ct, 0); relErr(lc, want) > 1e-12 {
		t.Errorf("LCLimitDelay = %g", lc)
	}
	if LCLimitDelay(0, ct, 0) != 0 || LCLimitDelay(lt, 0, 0) != 0 {
		t.Error("degenerate LCLimitDelay should be 0")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(tline.Line{}, tline.Drive{}); err == nil {
		t.Error("bad line accepted")
	}
	ln := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	if _, err := Analyze(ln, tline.Drive{Rtr: -1}); err == nil {
		t.Error("bad drive accepted")
	}
	if _, err := AnalyzeTotals(-1, 1e-7, 1e-12, 0, 0); err == nil {
		t.Error("negative rt accepted")
	}
	if _, err := AnalyzeTotals(0, 1e-7, 1e-12, 500, 0); err == nil {
		t.Error("rt=0 with rtr>0 accepted (RT undefined)")
	}
	if _, err := AnalyzeTotals(0, 1e-7, 1e-12, 0, 1e-13); err != nil {
		t.Errorf("lossless unloaded-driver line rejected: %v", err)
	}
}

func TestParamsValues(t *testing.T) {
	// Worked example: Rt=1000, Lt=1e-6, Ct=1pF, Rtr=500, CL=0.5pF.
	p, err := AnalyzeTotals(1000, 1e-6, 1e-12, 500, 5e-13)
	if err != nil {
		t.Fatal(err)
	}
	if p.RT != 0.5 || p.CT != 0.5 {
		t.Errorf("RT=%g CT=%g", p.RT, p.CT)
	}
	wantWn := 1 / math.Sqrt(1e-6*1.5e-12)
	if relErr(p.OmegaN, wantWn) > 1e-12 {
		t.Errorf("ωn = %g, want %g", p.OmegaN, wantWn)
	}
	// ζ = (1000/2)·sqrt(1e-12/1e-6)·1.75/sqrt(1.5).
	wantZeta := 500 * 1e-3 * 1.75 / math.Sqrt(1.5)
	if relErr(p.Zeta, wantZeta) > 1e-12 {
		t.Errorf("ζ = %g, want %g", p.Zeta, wantZeta)
	}
}

func TestZetaFromMomentsEquivalence(t *testing.T) {
	// Property: ζ from Eq. 6 equals b1·ωn/2 from the moment expansion.
	f := func(rt, lt, ct, rtr, cl float64) bool {
		rt = math.Abs(math.Mod(rt, 1e4)) + 1
		lt = math.Abs(math.Mod(lt, 1e-5)) + 1e-10
		ct = math.Abs(math.Mod(ct, 1e-11)) + 1e-14
		rtr = math.Abs(math.Mod(rtr, 1e3))
		cl = math.Abs(math.Mod(cl, 1e-12))
		p, err := AnalyzeTotals(rt, lt, ct, rtr, cl)
		if err != nil {
			return false
		}
		zm := ZetaFromMoments(rt, lt, ct, rtr, cl)
		return relErr(p.Zeta, zm) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScaledDelayShape(t *testing.T) {
	// ζ→0: t′pd → 1 (pure LC flight time in scaled units).
	if relErr(ScaledDelay(0), 1) > 1e-12 {
		t.Errorf("t'(0) = %g", ScaledDelay(0))
	}
	// Large ζ: linear 1.48ζ asymptote.
	if relErr(ScaledDelay(10), 14.8) > 1e-6 {
		t.Errorf("t'(10) = %g", ScaledDelay(10))
	}
	// The curve must be continuous and bounded on (0, 3].
	prev := ScaledDelay(0.001)
	for z := 0.01; z <= 3; z += 0.01 {
		v := ScaledDelay(z)
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("t'(%g) = %g", z, v)
		}
		if math.Abs(v-prev) > 0.05 {
			t.Fatalf("discontinuity near ζ=%g", z)
		}
		prev = v
	}
}

func TestClassify(t *testing.T) {
	if (Params{Zeta: 0.5}).Classify() != Underdamped {
		t.Error("0.5 should be underdamped")
	}
	if (Params{Zeta: 1.0}).Classify() != Critical {
		t.Error("1.0 should be critical")
	}
	if (Params{Zeta: 2}).Classify() != Overdamped {
		t.Error("2 should be overdamped")
	}
	for _, c := range []DampingClass{Underdamped, Critical, Overdamped, DampingClass(9)} {
		if c.String() == "" {
			t.Error("empty class string")
		}
	}
}

func TestInAccuracyDomain(t *testing.T) {
	if !(Params{RT: 0.5, CT: 0.5}).InAccuracyDomain() {
		t.Error("(0.5, 0.5) should be in domain")
	}
	if (Params{RT: 5, CT: 0.5}).InAccuracyDomain() {
		t.Error("(5, 0.5) should be outside")
	}
	if (Params{RT: 0.5, CT: -0.1}).InAccuracyDomain() {
		t.Error("negative CT should be outside")
	}
}

func TestMomentsKnown(t *testing.T) {
	// Unloaded, undriven line: b1 = RtCt/2, b2 = LtCt/2 + Rt²Ct²/24.
	b1, b2 := Moments(1000, 1e-7, 1e-12, 0, 0)
	if relErr(b1, 0.5e-9) > 1e-12 {
		t.Errorf("b1 = %g", b1)
	}
	want2 := 1e-7*1e-12/2 + 1e6*1e-24/24
	if relErr(b2, want2) > 1e-12 {
		t.Errorf("b2 = %g, want %g", b2, want2)
	}
}

func TestTwoPoleTF(t *testing.T) {
	ln := tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
	d := tline.Drive{Rtr: 500, CL: 5e-13}
	p, _ := Analyze(ln, d)
	num, den, err := TwoPoleTF(ln, d, 1/p.OmegaN)
	if err != nil {
		t.Fatal(err)
	}
	if num.Degree() != 0 || den.Degree() != 2 {
		t.Fatalf("degrees %d/%d", num.Degree(), den.Degree())
	}
	// S′ coefficient must be 2ζ (that's the definition of ζ).
	if relErr(den.Coef[1], 2*p.Zeta) > 1e-12 {
		t.Errorf("S′ coefficient %g, want 2ζ = %g", den.Coef[1], 2*p.Zeta)
	}
	if _, _, err := TwoPoleTF(ln, d, 0); err == nil {
		t.Error("t0=0 accepted")
	}
	if _, _, err := TwoPoleTF(tline.Line{}, d, 1); err == nil {
		t.Error("bad line accepted")
	}
	if _, _, err := TwoPoleTF(ln, tline.Drive{CL: -1}, 1); err == nil {
		t.Error("bad drive accepted")
	}
}

func TestLengthForZeta(t *testing.T) {
	per := tline.Line{R: 100e3, L: 1e-5, C: 1e-10, Length: 1} // per-meter values
	d := tline.Drive{Rtr: 500, CL: 1e-13}
	l, err := LengthForZeta(per, d, 5.0, 1e-4, 1)
	if err != nil {
		t.Fatal(err)
	}
	check := per
	check.Length = l
	p, _ := Analyze(check, d)
	if relErr(p.Zeta, 5.0) > 1e-6 {
		t.Errorf("ζ(l=%g) = %g, want 5", l, p.Zeta)
	}
	if _, err := LengthForZeta(per, d, -1, 1e-4, 1); err == nil {
		t.Error("negative ζ accepted")
	}
}

func TestDelayMonotoneInRt(t *testing.T) {
	// Property: delay must not decrease when line resistance increases
	// (all else fixed) — physical sanity of the closed form.
	f := func(seed float64) bool {
		base := math.Abs(math.Mod(seed, 900)) + 100
		d1, err1 := DelayTotals(base, 1e-7, 1e-12, 500, 5e-13)
		d2, err2 := DelayTotals(base*1.5, 1e-7, 1e-12, 500, 5e-13)
		return err1 == nil && err2 == nil && d2 >= d1*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
