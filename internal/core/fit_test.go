package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestPaperCoefficientsMatchScaledDelay(t *testing.T) {
	// FitCoefficients with the paper's constants must agree with
	// ScaledDelay everywhere.
	for z := 0.0; z <= 12; z += 0.173 {
		if relErr(PaperCoefficients.Scaled(z)+1e-300, ScaledDelay(z)+1e-300) > 1e-12 {
			t.Fatalf("mismatch at ζ=%g", z)
		}
	}
}

func TestFitRecoversKnownCoefficients(t *testing.T) {
	// Synthetic samples from a known member of the family (with slight
	// perturbation from the paper's constants) must be recovered.
	truth := FitCoefficients{A: 2.6, B: 1.28, C: 1.55}
	rng := rand.New(rand.NewSource(11))
	var samples []FitSample
	for z := 0.2; z <= 9; z *= 1.33 {
		noise := 1 + 0.001*rng.NormFloat64()
		samples = append(samples, FitSample{Zeta: z, TpdScaled: truth.Scaled(z) * noise})
	}
	res, err := FitDelayModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coeff.A-truth.A) > 0.1 ||
		math.Abs(res.Coeff.B-truth.B) > 0.05 ||
		math.Abs(res.Coeff.C-truth.C) > 0.02 {
		t.Errorf("recovered %+v, want %+v", res.Coeff, truth)
	}
	if res.RMSPct > 0.5 {
		t.Errorf("rms %.3f%%", res.RMSPct)
	}
	if res.MaxPct < res.RMSPct {
		t.Error("max below rms")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := FitDelayModel(nil); err == nil {
		t.Error("empty samples accepted")
	}
	bad := []FitSample{{0.5, 1}, {0.5, 1}, {0.5, 1}, {0.5, 1}, {0.5, 1}, {-1, 1}}
	if _, err := FitDelayModel(bad); err == nil {
		t.Error("negative ζ accepted")
	}
	// Narrow ζ span: asymptote unidentifiable.
	narrow := make([]FitSample, 8)
	for i := range narrow {
		z := 1.0 + 0.01*float64(i)
		narrow[i] = FitSample{Zeta: z, TpdScaled: ScaledDelay(z)}
	}
	if _, err := FitDelayModel(narrow); err == nil {
		t.Error("narrow span accepted")
	}
}

func TestFitCoefficientsValid(t *testing.T) {
	if !PaperCoefficients.Valid() {
		t.Error("paper constants invalid")
	}
	if (FitCoefficients{A: -1, B: 1, C: 1}).Valid() {
		t.Error("negative A accepted")
	}
	if (FitCoefficients{A: 1, B: math.NaN(), C: 1}).Valid() {
		t.Error("NaN accepted")
	}
}

func TestScaledClampsNegativeZeta(t *testing.T) {
	c := PaperCoefficients
	if c.Scaled(-1) != c.Scaled(0) {
		t.Error("negative ζ should clamp to 0")
	}
}

func TestErrorVsSamples(t *testing.T) {
	samples := []FitSample{{1, ScaledDelay(1)}, {2, ScaledDelay(2)}}
	rms, maxp := ErrorVsSamples(PaperCoefficients, samples)
	if rms > 1e-10 || maxp > 1e-10 {
		t.Errorf("self-error rms=%g max=%g", rms, maxp)
	}
	off := FitCoefficients{A: 2.9, B: 1.35, C: 1.48 * 1.1}
	rms2, _ := ErrorVsSamples(off, samples)
	if rms2 < 1 {
		t.Errorf("perturbed constants error %.3f%% too small", rms2)
	}
}
