// Package core implements the paper's primary contribution: the closed
// form propagation-delay model for a CMOS gate driving a distributed RLC
// line (Ismail & Friedman, DAC 1999, Section II).
//
// The model collapses the five impedances {Rt, Lt, Ct, Rtr, CL} into
// three dimensionless parameters
//
//	RT = Rtr/Rt,   CT = CL/Ct                        (Eq. 5)
//	ωn = 1/sqrt(Lt·(Ct+CL))                          (Eq. 3)
//	ζ  = (Rt/2)·sqrt(Ct/Lt) ·
//	     (RT + CT + RT·CT + 0.5)/sqrt(1+CT)          (Eq. 6)
//
// and models the 50% delay as
//
//	t_pd = (e^(−2.9·ζ^1.35) + 1.48·ζ) / ωn           (Eq. 9)
//
// ζ here is the exact coefficient of S′ in the time-scaled transfer
// function (t′ = ωn·t), obtained by series expansion of the hyperbolic
// line equations — the construction the paper describes. The OCR of the
// paper is ambiguous about the (1+CT) normalization; this form is the
// one that (a) follows from the expansion, (b) reproduces the paper's
// stated limits exactly (0.37·Rt·Ct for L→0 and l·sqrt(LC) for R→0),
// and (c) matches the paper's printed Table 1 values of Eq. 9 to <1%.
//
// The package also exposes the two-pole (second-order) transfer-function
// approximation whose S¹ coefficient defines ζ (Eq. 7), the exact
// S² coefficient included, for ablation against the full model.
package core

import (
	"fmt"
	"math"

	"rlckit/internal/numeric"
	"rlckit/internal/tline"
)

// Params are the canonical dimensionless parameters of a driven line.
type Params struct {
	// RT and CT are the gate-to-line impedance ratios (Eq. 5).
	RT, CT float64
	// Zeta is the damping factor ζ (Eq. 6).
	Zeta float64
	// OmegaN is the natural frequency ωn in rad/s (Eq. 3).
	OmegaN float64
	// TLR is the inductance figure of merit T_{L/R} = (Lt/Rt)/(R0·C0)
	// used by repeater insertion (Eq. 13). It is populated only by
	// AnalyzeWithBuffer; plain Analyze leaves it zero.
	TLR float64
}

// Analyze computes the dimensionless parameters of a driven line.
func Analyze(ln tline.Line, d tline.Drive) (Params, error) {
	if err := ln.Validate(); err != nil {
		return Params{}, err
	}
	if err := d.Validate(); err != nil {
		return Params{}, err
	}
	rt, lt, ct := ln.Totals()
	return analyzeTotals(rt, lt, ct, d.Rtr, d.CL)
}

func analyzeTotals(rt, lt, ct, rtr, cl float64) (Params, error) {
	if rt < 0 || lt <= 0 || ct <= 0 {
		return Params{}, fmt.Errorf("core: need rt >= 0, lt > 0, ct > 0 (got %g, %g, %g)", rt, lt, ct)
	}
	var p Params
	if rt > 0 {
		p.RT = rtr / rt
	} else if rtr > 0 {
		return Params{}, fmt.Errorf("core: RT undefined for rt = 0 with rtr = %g; model the driver resistance inside the line or use rt > 0", rtr)
	}
	p.CT = cl / ct
	p.OmegaN = 1 / math.Sqrt(lt*(ct+cl))
	f := p.RT + p.CT + p.RT*p.CT + 0.5
	p.Zeta = rt / 2 * math.Sqrt(ct/lt) * f / math.Sqrt(1+p.CT)
	return p, nil
}

// AnalyzeTotals is Analyze for callers holding total impedances directly
// (Rt, Lt, Ct in Ω, H, F) rather than a tline.Line.
func AnalyzeTotals(rt, lt, ct, rtr, cl float64) (Params, error) {
	return analyzeTotals(rt, lt, ct, rtr, cl)
}

// ScaledDelay returns the dimensionless 50% delay t′pd of Eq. 9:
// t′pd = e^(−2.9·ζ^1.35) + 1.48·ζ.
func ScaledDelay(zeta float64) float64 {
	return math.Exp(-2.9*math.Pow(zeta, 1.35)) + 1.48*zeta
}

// Delay returns the Eq. 9 closed-form 50% propagation delay in seconds
// for a gate driving a distributed RLC line.
func Delay(ln tline.Line, d tline.Drive) (float64, error) {
	p, err := Analyze(ln, d)
	if err != nil {
		return 0, err
	}
	return ScaledDelay(p.Zeta) / p.OmegaN, nil
}

// DelayTotals is Delay on total impedances.
func DelayTotals(rt, lt, ct, rtr, cl float64) (float64, error) {
	p, err := analyzeTotals(rt, lt, ct, rtr, cl)
	if err != nil {
		return 0, err
	}
	return ScaledDelay(p.Zeta) / p.OmegaN, nil
}

// RCLimitDelay returns the L→0 limit of Eq. 9:
//
//	t_pd → 1.48·ζ/ωn = 0.74·Rt·Ct·(RT + CT + RT·CT + 0.5)
//
// (the sqrt(1+CT) factors cancel exactly). For RT = CT = 0 this is the
// classic 0.37·R·C·l² distributed-RC delay of Sakurai and Bakoglu that
// the paper cites as its sanity limit.
func RCLimitDelay(rt, ct, rtr, cl float64) float64 {
	if rt <= 0 || ct <= 0 {
		return 0
	}
	rT := rtr / rt
	cT := cl / ct
	return 0.74 * rt * ct * (rT + cT + rT*cT + 0.5)
}

// LCLimitDelay returns the R→0 limit of Eq. 9 for the unloaded line:
// the time of flight l·sqrt(LC) = sqrt(Lt·(Ct+CL)).
func LCLimitDelay(lt, ct, cl float64) float64 {
	if lt <= 0 || ct+cl <= 0 {
		return 0
	}
	return math.Sqrt(lt * (ct + cl))
}

// DampingClass labels the response regime by ζ.
type DampingClass int

// Damping regimes of the line response.
const (
	Underdamped DampingClass = iota // ζ < 1: overshoot and ringing
	Critical                        // ζ ≈ 1
	Overdamped                      // ζ > 1: monotone RC-like rise
)

func (c DampingClass) String() string {
	switch c {
	case Underdamped:
		return "underdamped"
	case Critical:
		return "critical"
	case Overdamped:
		return "overdamped"
	default:
		return fmt.Sprintf("DampingClass(%d)", int(c))
	}
}

// Classify returns the damping regime with a ±2% critical band.
func (p Params) Classify() DampingClass {
	switch {
	case p.Zeta < 0.98:
		return Underdamped
	case p.Zeta > 1.02:
		return Overdamped
	default:
		return Critical
	}
}

// InAccuracyDomain reports whether (RT, CT) lie in the region where the
// paper states Eq. 9 is within 5% of dynamic simulation: the curve fit
// minimizes error for RT, CT in [0, 1] — "most important for global
// interconnect ... in current deep submicrometer technologies".
//
// Measured caveat (see EXPERIMENTS.md): even inside this domain, lines
// with RT ≈ 1, CT ≪ 1 and ζ slightly below 1 can show 20-25% error.
// There the step response plateaus near V/2 between wave reflections,
// so the 50% crossing is ill-conditioned and no smooth ζ-only formula
// can track it; Eq. 9's 5% band holds away from that plateau regime
// (the paper's own Table 1 samples it only at ζ = 1.28, its worst
// printed cell). Use DelayPlateauRisk to detect it.
func (p Params) InAccuracyDomain() bool {
	return p.RT >= 0 && p.RT <= 1 && p.CT >= 0 && p.CT <= 1
}

// DelayPlateauRisk reports whether the configuration sits in the
// measured reflection-plateau regime where 50% delays are
// ill-conditioned and Eq. 9 errors can exceed 20%: near-critical
// damping with a matched-order driver and a light load. The RT bound
// was measured at 0.5 by population testing (see the property test in
// api_property_test.go): random nets at RT ≈ 0.52-0.54, CT ≪ 1, ζ ≈ 1
// still show 6-7% Eq. 9 error, so the guard starts at the RT = 0.5
// boundary of the fitted domain's midpoint rather than 0.55.
func (p Params) DelayPlateauRisk() bool {
	return p.Zeta > 0.55 && p.Zeta < 1.35 && p.RT > 0.5 && p.CT < 0.3
}

// TwoPoleTF returns the second-order approximation of the line transfer
// function (the expansion behind Eq. 7),
//
//	H₂(s) = 1 / (1 + b1·s + b2·s²)
//
// with the exact first and second denominator moments
//
//	b1 = Rt·Ct·(0.5 + RT + CT + RT·CT)
//	b2 = Lt·Ct·(0.5 + CT) + Rt²·Ct²·(1/24 + CT/6 + RT/6 + RT·CT/2)
//
// expressed in the normalized variable s′ = s·t0 (pass t0 = 1/ωn for the
// paper's scaling; t0 must be positive). The S′ coefficient of this
// polynomial divided by... — precisely, ζ = b1·ωn/2, which is how Eq. 6
// arises.
func TwoPoleTF(ln tline.Line, d tline.Drive, t0 float64) (num, den numeric.Poly, err error) {
	if err := ln.Validate(); err != nil {
		return numeric.Poly{}, numeric.Poly{}, err
	}
	if err := d.Validate(); err != nil {
		return numeric.Poly{}, numeric.Poly{}, err
	}
	if t0 <= 0 || math.IsNaN(t0) || math.IsInf(t0, 0) {
		return numeric.Poly{}, numeric.Poly{}, fmt.Errorf("core: TwoPoleTF needs positive t0, got %g", t0)
	}
	rt, lt, ct := ln.Totals()
	b1, b2 := Moments(rt, lt, ct, d.Rtr, d.CL)
	return numeric.NewPoly(1), numeric.NewPoly(1, b1/t0, b2/(t0*t0)), nil
}

// Moments returns the exact first and second denominator moments (b1,
// b2) of the driven-line transfer function 1/(1 + b1 s + b2 s² + ...).
// b1 is also the Elmore delay of the driven line.
func Moments(rt, lt, ct, rtr, cl float64) (b1, b2 float64) {
	b1 = rt*ct/2 + rt*cl + rtr*ct + rtr*cl
	b2 = lt*ct/2 + lt*cl +
		rt*rt*ct*ct/24 + rt*rt*ct*cl/6 + rtr*rt*ct*ct/6 + rtr*rt*ct*cl/2
	return b1, b2
}

// ZetaFromMoments recovers ζ from the moment form: ζ = b1·ωn/2. It is
// algebraically identical to Params.Zeta and exists for tests and for
// readers tracing Eq. 6 back to the expansion.
func ZetaFromMoments(rt, lt, ct, rtr, cl float64) float64 {
	b1, _ := Moments(rt, lt, ct, rtr, cl)
	return b1 / (2 * math.Sqrt(lt*(ct+cl)))
}

// LengthForZeta returns a line length at which the driven line reaches
// the given ζ, holding per-unit-length parameters and the gate fixed.
// ζ → ∞ both as l → 0 with CL > 0 (the driver RC dominates) and as
// l → ∞ (resistance dominates), so callers must supply a bracket
// [lo, hi] whose endpoints straddle the target; it errors otherwise.
func LengthForZeta(perUnit tline.Line, d tline.Drive, zeta, lo, hi float64) (float64, error) {
	if zeta <= 0 {
		return 0, fmt.Errorf("core: target ζ must be positive, got %g", zeta)
	}
	f := func(length float64) float64 {
		ln := perUnit
		ln.Length = length
		p, err := Analyze(ln, d)
		if err != nil {
			return math.NaN()
		}
		return p.Zeta - zeta
	}
	return numeric.Brent(f, lo, hi, 0)
}
