package core

import (
	"errors"
	"fmt"
	"math"

	"rlckit/internal/numeric"
)

// FitCoefficients parameterize the Eq. 9 family
//
//	t′pd(ζ) = e^(−A·ζ^B) + C·ζ
//
// The paper's published fit is (A, B, C) = (2.9, 1.35, 1.48). The Fit
// machinery below re-derives these constants from simulation data — the
// "curve fitting method" step of the paper's Section II — so the model
// is reproduced end to end rather than transcribed.
type FitCoefficients struct {
	A, B, C float64
}

// PaperCoefficients are the published Eq. 9 constants.
var PaperCoefficients = FitCoefficients{A: 2.9, B: 1.35, C: 1.48}

// Scaled evaluates the parameterized scaled delay at ζ.
func (f FitCoefficients) Scaled(zeta float64) float64 {
	if zeta < 0 {
		zeta = 0
	}
	return math.Exp(-f.A*math.Pow(zeta, f.B)) + f.C*zeta
}

// Valid reports whether the coefficients define a physically sensible
// curve: positive constants with t′(0) = 1.
func (f FitCoefficients) Valid() bool {
	return f.A > 0 && f.B > 0 && f.C > 0 &&
		!math.IsNaN(f.A+f.B+f.C) && !math.IsInf(f.A+f.B+f.C, 0)
}

// FitSample is one (ζ, simulated scaled delay) observation.
type FitSample struct {
	Zeta, TpdScaled float64
}

// FitResult carries the refit outcome.
type FitResult struct {
	Coeff FitCoefficients
	// RMSPct is the root-mean-square relative error of the fitted curve
	// over the samples, in percent; MaxPct the worst sample.
	RMSPct, MaxPct float64
}

// FitDelayModel fits the Eq. 9 family to simulation samples by
// Nelder–Mead minimization of the summed squared relative error,
// seeded at the paper's constants. At least 6 samples are required,
// and they should span both the low-ζ (inductive) and high-ζ
// (resistive) regimes for C to be identifiable.
func FitDelayModel(samples []FitSample) (FitResult, error) {
	if len(samples) < 6 {
		return FitResult{}, fmt.Errorf("core: fit needs >= 6 samples, got %d", len(samples))
	}
	var zLo, zHi = math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		if s.Zeta <= 0 || s.TpdScaled <= 0 {
			return FitResult{}, fmt.Errorf("core: non-positive sample (ζ=%g, t′=%g)", s.Zeta, s.TpdScaled)
		}
		zLo = math.Min(zLo, s.Zeta)
		zHi = math.Max(zHi, s.Zeta)
	}
	if zHi < 4*zLo {
		return FitResult{}, errors.New("core: samples span too little of the ζ axis to identify the asymptote")
	}
	obj := func(x []float64) float64 {
		c := FitCoefficients{A: math.Exp(x[0]), B: math.Exp(x[1]), C: math.Exp(x[2])}
		s := 0.0
		for _, sm := range samples {
			r := (c.Scaled(sm.Zeta) - sm.TpdScaled) / sm.TpdScaled
			s += r * r
		}
		return s
	}
	seed := []float64{
		math.Log(PaperCoefficients.A),
		math.Log(PaperCoefficients.B),
		math.Log(PaperCoefficients.C),
	}
	x, _ := numeric.NelderMead(obj, seed, 0.25, 1e-14, 6000)
	res := FitResult{Coeff: FitCoefficients{
		A: math.Exp(x[0]), B: math.Exp(x[1]), C: math.Exp(x[2]),
	}}
	if !res.Coeff.Valid() {
		return FitResult{}, errors.New("core: fit diverged to non-physical coefficients")
	}
	sum := 0.0
	for _, sm := range samples {
		r := math.Abs(res.Coeff.Scaled(sm.Zeta)-sm.TpdScaled) / sm.TpdScaled
		sum += r * r
		if p := 100 * r; p > res.MaxPct {
			res.MaxPct = p
		}
	}
	res.RMSPct = 100 * math.Sqrt(sum/float64(len(samples)))
	return res, nil
}

// ErrorVsSamples evaluates an arbitrary coefficient set against samples,
// returning (rms%, max%): used to compare a refit against the published
// constants on identical data.
func ErrorVsSamples(c FitCoefficients, samples []FitSample) (rmsPct, maxPct float64) {
	sum := 0.0
	for _, sm := range samples {
		r := math.Abs(c.Scaled(sm.Zeta)-sm.TpdScaled) / sm.TpdScaled
		sum += r * r
		if p := 100 * r; p > maxPct {
			maxPct = p
		}
	}
	return 100 * math.Sqrt(sum/float64(len(samples))), maxPct
}
