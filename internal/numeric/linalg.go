// Package numeric is rlckit's from-scratch numerical substrate: dense and
// banded linear algebra, scalar root finding, polynomial arithmetic and
// root finding, 1-D and simplex minimization, quadrature, interpolation,
// least-squares fitting, and ODE integration.
//
// Everything is written against the Go standard library only. The routines
// favor robustness on the moderately sized, well-conditioned problems that
// arise in interconnect analysis (matrices up to a few thousand unknowns,
// polynomials up to degree ~100) over asymptotic performance.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("numeric: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j); the natural operation for
// MNA stamping.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m·x. It panics if dimensions mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("numeric: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// ErrSingular reports a numerically singular matrix during factorization.
var ErrSingular = errors.New("numeric: singular matrix")

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U with unit-diagonal L stored below the diagonal of LU.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of the square matrix a.
// a is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("numeric: FactorLU needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: find max |lu[i][k]| for i >= k.
		p, maxv := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("numeric: LU.Solve dimension mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense solves A·x = b for a single right-hand side.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// BandMatrix is a square banded matrix with kl sub-diagonals and ku
// super-diagonals, stored in the LAPACK-style band layout augmented with
// kl extra rows for pivoting fill-in. Interconnect ladders produce
// tridiagonal-ish MNA systems; the band solver keeps large segment counts
// cheap.
type BandMatrix struct {
	N, KL, KU int
	// data[(kl+ku+kl) rows][n cols]: element (i,j) with
	// max(0,j-ku-kl? ) — we use storage row index = ku+kl+i-j.
	data []float64
	ld   int // leading dimension = 2*kl+ku+1
}

// NewBandMatrix returns a zero n×n band matrix with bandwidths kl, ku.
func NewBandMatrix(n, kl, ku int) *BandMatrix {
	if n <= 0 || kl < 0 || ku < 0 || kl >= n || ku >= n {
		panic(fmt.Sprintf("numeric: invalid band dims n=%d kl=%d ku=%d", n, kl, ku))
	}
	ld := 2*kl + ku + 1
	return &BandMatrix{N: n, KL: kl, KU: ku, ld: ld, data: make([]float64, ld*n)}
}

func (b *BandMatrix) idx(i, j int) int {
	// Stored at row (ku+kl + i - j), column j.
	return (b.KU+b.KL+i-j)*b.N + j
}

// InBand reports whether (i,j) lies within the declared bandwidth.
func (b *BandMatrix) InBand(i, j int) bool {
	return i >= 0 && j >= 0 && i < b.N && j < b.N && j-i <= b.KU && i-j <= b.KL
}

// At returns element (i,j); elements outside the band are zero.
func (b *BandMatrix) At(i, j int) float64 {
	if !b.InBand(i, j) {
		return 0
	}
	return b.data[b.idx(i, j)]
}

// Set assigns element (i,j); it panics outside the band.
func (b *BandMatrix) Set(i, j int, v float64) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: band element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] = v
}

// Add accumulates v into element (i,j); it panics outside the band.
func (b *BandMatrix) Add(i, j int, v float64) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: band element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] += v
}

// Zero resets all stored elements.
func (b *BandMatrix) Zero() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// Clone returns a deep copy.
func (b *BandMatrix) Clone() *BandMatrix {
	c := NewBandMatrix(b.N, b.KL, b.KU)
	copy(c.data, b.data)
	return c
}

// Dense expands the band matrix to a dense Matrix (for tests and small n).
func (b *BandMatrix) Dense() *Matrix {
	m := NewMatrix(b.N, b.N)
	for i := 0; i < b.N; i++ {
		lo := i - b.KL
		if lo < 0 {
			lo = 0
		}
		hi := i + b.KU
		if hi >= b.N {
			hi = b.N - 1
		}
		for j := lo; j <= hi; j++ {
			m.Set(i, j, b.At(i, j))
		}
	}
	return m
}

// MulVec computes y = b·x.
func (b *BandMatrix) MulVec(x []float64) []float64 {
	if len(x) != b.N {
		panic("numeric: band MulVec dimension mismatch")
	}
	y := make([]float64, b.N)
	for i := 0; i < b.N; i++ {
		lo := i - b.KL
		if lo < 0 {
			lo = 0
		}
		hi := i + b.KU
		if hi >= b.N {
			hi = b.N - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += b.At(i, j) * x[j]
		}
		y[i] = s
	}
	return y
}

// BandLU is an LU factorization with partial pivoting of a BandMatrix.
type BandLU struct {
	n, kl, ku int
	ld        int
	data      []float64
	piv       []int
}

// FactorBandLU factors the band matrix; a is not modified.
func FactorBandLU(a *BandMatrix) (*BandLU, error) {
	n, kl, ku := a.N, a.KL, a.KU
	f := &BandLU{n: n, kl: kl, ku: ku, ld: a.ld, data: make([]float64, len(a.data)), piv: make([]int, n)}
	copy(f.data, a.data)
	at := func(i, j int) float64 { return f.data[(ku+kl+i-j)*n+j] }
	set := func(i, j int, v float64) { f.data[(ku+kl+i-j)*n+j] = v }
	for k := 0; k < n; k++ {
		// Pivot search within the kl sub-diagonals.
		p, maxv := k, math.Abs(at(k, k))
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			if v := math.Abs(at(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		f.piv[k] = p
		jMax := k + ku + kl // fill-in can extend ku+kl to the right
		if jMax >= n {
			jMax = n - 1
		}
		if p != k {
			for j := k; j <= jMax; j++ {
				vp, vk := 0.0, 0.0
				if p-j <= kl && j-p <= ku+kl {
					vp = at(p, j)
				}
				if k-j <= kl && j-k <= ku+kl {
					vk = at(k, j)
				}
				if p-j <= kl && j-p <= ku+kl {
					set(p, j, vk)
				}
				if k-j <= kl && j-k <= ku+kl {
					set(k, j, vp)
				}
			}
		}
		pivot := at(k, k)
		for i := k + 1; i <= iMax; i++ {
			m := at(i, k) / pivot
			set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j <= jMax; j++ {
				set(i, j, at(i, j)-m*at(k, j))
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b from the band factorization; b is not modified.
func (f *BandLU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("numeric: BandLU.Solve dimension mismatch")
	}
	n, kl, ku := f.n, f.kl, f.ku
	at := func(i, j int) float64 { return f.data[(ku+kl+i-j)*n+j] }
	x := make([]float64, n)
	copy(x, b)
	// Apply row interchanges and forward substitution.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[p], x[k] = x[k], x[p]
		}
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			x[i] -= at(i, k) * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		jMax := i + ku + kl
		if jMax >= n {
			jMax = n - 1
		}
		s := x[i]
		for j := i + 1; j <= jMax; j++ {
			s -= at(i, j) * x[j]
		}
		x[i] = s / at(i, i)
	}
	return x
}

// VecNormInf returns max_i |x[i]|.
func VecNormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: Dot dimension mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
