// Package numeric is rlckit's from-scratch numerical substrate: dense,
// banded, and sparse-triplet linear algebra, scalar root finding,
// polynomial arithmetic and root finding, 1-D and simplex minimization,
// quadrature, interpolation, least-squares fitting, and ODE integration.
//
// Everything is written against the Go standard library only. The hot
// paths — band LU factorization and solves, band matrix–vector products,
// and sparse assembly (sparse.go) — are engineered for asymptotic and
// constant-factor performance: band storage is row-major so inner loops
// stream contiguous memory, every kernel has an in-place variant
// (MulVecTo, FactorBandLUInto, SolveInPlace, SolveTo, and complex twins
// in cband.go) that performs zero heap allocations when scratch is
// reused, and assembly, reordering (RCM), and bandwidth computation all
// run in O(nnz). The remaining routines favor robustness on the
// moderately sized, well-conditioned problems that arise in interconnect
// analysis (polynomials up to degree ~100, small dense systems).
package numeric

import (
	"errors"
	"fmt"
	"math"

	"rlckit/internal/faultinject"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("numeric: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j); the natural operation for
// MNA stamping.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m·x. It panics if dimensions mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("numeric: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// ErrSingular reports a numerically singular matrix during factorization.
var ErrSingular = errors.New("numeric: singular matrix")

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U with unit-diagonal L stored below the diagonal of LU.
type LU struct {
	n       int
	lu      []float64
	piv     []int
	sign    int
	scratch []float64 // pivot-gather buffer for SolveTo
}

// FactorLU computes the LU factorization of the square matrix a.
// a is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := FactorLUInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("numeric: LU.Solve dimension mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// FactorLUInto factors a into f, reusing f's storage when its shape
// matches a previous factorization of the same dimension — repeated
// small dense factorizations (a reduced-order model's per-timestep
// matrices) then allocate nothing. a is not modified.
func FactorLUInto(f *LU, a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("numeric: FactorLUInto needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if f.n != n || len(f.lu) != n*n {
		f.lu = make([]float64, n*n)
		f.piv = make([]int, n)
		f.scratch = make([]float64, n)
	}
	f.n, f.sign = n, 1
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		p, maxv := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return nil
}

// SolveTo solves A·x = b into dst without allocating (after the first
// call); dst may alias b.
func (f *LU) SolveTo(dst, b []float64) {
	if len(b) != f.n || len(dst) != f.n {
		panic("numeric: LU.SolveTo dimension mismatch")
	}
	n := f.n
	if f.scratch == nil {
		f.scratch = make([]float64, n)
	}
	// Gather through the pivot permutation via scratch so dst may alias b.
	for i := 0; i < n; i++ {
		f.scratch[i] = b[f.piv[i]]
	}
	x := dst
	copy(x, f.scratch)
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu[i*n+i+1 : i*n+n]
		for j, v := range row {
			s -= v * x[i+1+j]
		}
		x[i] = s / f.lu[i*n+i]
	}
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense solves A·x = b for a single right-hand side.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// BandMatrix is a square banded matrix with kl sub-diagonals and ku
// super-diagonals, stored row-major with kl extra slots per row for
// pivoting fill-in: row i occupies data[i*ld : (i+1)*ld] and holds
// columns i−kl … i+ku+kl, so the factorization and solve inner loops
// stream contiguous memory. Interconnect ladders produce tridiagonal-ish
// MNA systems; the band solver keeps large segment counts cheap.
type BandMatrix struct {
	N, KL, KU int
	data      []float64
	ld        int // leading dimension = 2*kl+ku+1
}

// NewBandMatrix returns a zero n×n band matrix with bandwidths kl, ku.
func NewBandMatrix(n, kl, ku int) *BandMatrix {
	if n <= 0 || kl < 0 || ku < 0 || kl >= n || ku >= n {
		panic(fmt.Sprintf("numeric: invalid band dims n=%d kl=%d ku=%d", n, kl, ku))
	}
	ld := 2*kl + ku + 1
	return &BandMatrix{N: n, KL: kl, KU: ku, ld: ld, data: make([]float64, ld*n)}
}

func (b *BandMatrix) idx(i, j int) int {
	// Row-major band: row i, offset j-i+kl within the row.
	return i*b.ld + j - i + b.KL
}

// InBand reports whether (i,j) lies within the declared bandwidth.
func (b *BandMatrix) InBand(i, j int) bool {
	return i >= 0 && j >= 0 && i < b.N && j < b.N && j-i <= b.KU && i-j <= b.KL
}

// At returns element (i,j); elements outside the band are zero.
func (b *BandMatrix) At(i, j int) float64 {
	if !b.InBand(i, j) {
		return 0
	}
	return b.data[b.idx(i, j)]
}

// Set assigns element (i,j); it panics outside the band.
func (b *BandMatrix) Set(i, j int, v float64) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: band element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] = v
}

// Add accumulates v into element (i,j); it panics outside the band.
func (b *BandMatrix) Add(i, j int, v float64) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: band element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] += v
}

// Zero resets all stored elements.
func (b *BandMatrix) Zero() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// Clone returns a deep copy.
func (b *BandMatrix) Clone() *BandMatrix {
	c := NewBandMatrix(b.N, b.KL, b.KU)
	copy(c.data, b.data)
	return c
}

// Dense expands the band matrix to a dense Matrix (for tests and small n).
func (b *BandMatrix) Dense() *Matrix {
	m := NewMatrix(b.N, b.N)
	for i := 0; i < b.N; i++ {
		lo := i - b.KL
		if lo < 0 {
			lo = 0
		}
		hi := i + b.KU
		if hi >= b.N {
			hi = b.N - 1
		}
		for j := lo; j <= hi; j++ {
			m.Set(i, j, b.At(i, j))
		}
	}
	return m
}

// MulVec computes y = b·x.
func (b *BandMatrix) MulVec(x []float64) []float64 {
	y := make([]float64, b.N)
	b.MulVecTo(y, x)
	return y
}

// MulVecTo computes dst = b·x without allocating; dst must not alias x.
func (b *BandMatrix) MulVecTo(dst, x []float64) {
	if len(x) != b.N || len(dst) != b.N {
		panic("numeric: band MulVecTo dimension mismatch")
	}
	n, kl, ku, ld := b.N, b.KL, b.KU, b.ld
	data := b.data
	if kl == 1 && ku == 1 && n > 1 {
		// Tridiagonal fast path — the shape RCM produces for interconnect
		// ladders. Row i's three entries are contiguous at data[i*ld];
		// the x window slides in registers.
		xm, xc := x[0], x[1]
		dst[0] = math.FMA(data[1], xm, data[2]*xc)
		for i := 1; i < n-1; i++ {
			xp := x[i+1]
			d := data[i*ld : i*ld+3]
			dst[i] = math.FMA(d[0], xm, math.FMA(d[1], xc, d[2]*xp))
			xm, xc = xc, xp
		}
		dst[n-1] = math.FMA(data[(n-1)*ld], xm, data[(n-1)*ld+1]*xc)
		return
	}
	for i := 0; i < n; i++ {
		lo := i - kl
		if lo < 0 {
			lo = 0
		}
		hi := i + ku
		if hi >= n {
			hi = n - 1
		}
		base := i*(ld-1) + kl
		row := data[base+lo : base+hi+1]
		xs := x[lo : hi+1]
		xs = xs[:len(row)]
		s := 0.0
		for j, v := range row {
			s += v * xs[j]
		}
		dst[i] = s
	}
}

// BandLU is an LU factorization with partial pivoting of a BandMatrix.
type BandLU struct {
	n, kl, ku int
	ld        int
	ubw       int // actual U bandwidth: ku if no pivoting occurred, else ku+kl
	data      []float64
	invd      []float64 // reciprocals of the U diagonal
	piv       []int
}

// FactorBandLU factors the band matrix; a is not modified.
func FactorBandLU(a *BandMatrix) (*BandLU, error) {
	f := &BandLU{}
	if err := FactorBandLUInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorBandLUInto factors the band matrix into f, reusing f's storage
// when its shape matches a previous factorization of the same
// dimensions — repeated factorizations then allocate nothing. a is not
// modified.
func FactorBandLUInto(f *BandLU, a *BandMatrix) error {
	if faultinject.Active {
		if err := faultinject.Inject(faultinject.SiteFactor); err != nil {
			return err
		}
	}
	n, kl, ku := a.N, a.KL, a.KU
	if len(f.data) != len(a.data) || len(f.piv) != n {
		f.data = make([]float64, len(a.data))
		f.invd = make([]float64, n)
		f.piv = make([]int, n)
	}
	f.n, f.kl, f.ku, f.ld = n, kl, ku, a.ld
	copy(f.data, a.data)
	data, ld := f.data, f.ld
	// U's bandwidth only grows beyond ku when a row interchange actually
	// happens; tracking it keeps the elimination and back substitution
	// from scanning structurally zero fill slots.
	ubw := ku
	for k := 0; k < n; k++ {
		// Pivot search within the kl sub-diagonals of column k.
		p, maxv := k, math.Abs(data[k*ld+kl])
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			if v := math.Abs(data[i*(ld-1)+kl+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return ErrSingular
		}
		f.piv[k] = p
		if p != k {
			ubw = ku + kl
		}
		jMax := k + ubw
		if jMax >= n {
			jMax = n - 1
		}
		rowk := data[k*(ld-1)+kl:]
		if p != k {
			rowp := data[p*(ld-1)+kl:]
			for j := k; j <= jMax; j++ {
				rowp[j], rowk[j] = rowk[j], rowp[j]
			}
		}
		pivot := rowk[k]
		f.invd[k] = 1 / pivot
		for i := k + 1; i <= iMax; i++ {
			rowi := data[i*(ld-1)+kl:]
			m := rowi[k] / pivot
			rowi[k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j <= jMax; j++ {
				rowi[j] -= m * rowk[j]
			}
		}
	}
	f.ubw = ubw
	// Prescale U's off-diagonal entries by the diagonal reciprocals:
	// back substitution then reads x[i] = x[i]·invd[i] − Σ u'·x[j] with
	// the reciprocal multiply off the row-to-row dependency chain.
	for i := 0; i < n; i++ {
		jMax := i + ubw
		if jMax >= n {
			jMax = n - 1
		}
		inv := f.invd[i]
		row := data[i*(ld-1)+kl:]
		for j := i + 1; j <= jMax; j++ {
			row[j] *= inv
		}
	}
	return nil
}

// Solve solves A·x = b from the band factorization; b is not modified.
func (f *BandLU) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b into dst without allocating; dst may alias b.
func (f *BandLU) SolveTo(dst, b []float64) {
	if len(b) != f.n || len(dst) != f.n {
		panic("numeric: BandLU.SolveTo dimension mismatch")
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	f.SolveInPlace(dst)
}

// SolveInPlace solves A·x = b, overwriting the right-hand side x with
// the solution. It performs no heap allocations.
func (f *BandLU) SolveInPlace(x []float64) {
	if len(x) != f.n {
		panic("numeric: BandLU.SolveInPlace dimension mismatch")
	}
	n, kl, ld := f.n, f.kl, f.ld
	data, invd := f.data, f.invd
	// The row-to-row dependency chains dominate the solve's latency on
	// narrow bands, so the hot paths below keep each chain link to a
	// single fused multiply-add: U's off-diagonals are prescaled by the
	// diagonal reciprocals at factor time, the reciprocal multiply runs
	// off-chain, and math.FMA compiles to one 4-cycle instruction.
	if kl == 1 && f.ku == 1 && n > 2 {
		// Tridiagonal fast path: L is unit lower bidiagonal with (only
		// ever adjacent) row interchanges, U has one superdiagonal plus a
		// second one where pivoting filled in. The running value is
		// carried in a register so each chain link is exactly one FMA.
		piv := f.piv
		v := x[0]
		for k := 0; k+1 < n; k++ {
			w := x[k+1]
			l := data[(k+1)*ld]
			if piv[k] != k {
				x[k] = w
				v = math.FMA(-l, w, v)
			} else {
				v = math.FMA(-l, v, w)
			}
			x[k+1] = v
		}
		vp := x[n-1] * invd[n-1]
		x[n-1] = vp
		v = math.FMA(-data[(n-2)*ld+2], vp, x[n-2]*invd[n-2])
		x[n-2] = v
		if f.ubw == 1 {
			for i := n - 3; i >= 0; i-- {
				v = math.FMA(-data[i*ld+2], v, x[i]*invd[i])
				x[i] = v
			}
		} else {
			for i := n - 3; i >= 0; i-- {
				t := math.FMA(-data[i*ld+3], vp, x[i]*invd[i])
				nv := math.FMA(-data[i*ld+2], v, t)
				x[i] = nv
				vp, v = v, nv
			}
		}
		return
	}
	// Apply row interchanges and forward substitution with unit L.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[p], x[k] = x[k], x[p]
		}
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		xk := x[k]
		if xk == 0 {
			continue
		}
		off := (k+1)*(ld-1) + kl + k
		for i := k + 1; i <= iMax; i++ {
			x[i] = math.FMA(-data[off], xk, x[i])
			off += ld - 1
		}
	}
	// Back substitution with prescaled U (bandwidth f.ubw ≤ ku+kl).
	ubw := f.ubw
	for i := n - 1; i >= 0; i-- {
		jMax := i + ubw
		if jMax >= n {
			jMax = n - 1
		}
		base := i*(ld-1) + kl
		row := data[base+i+1 : base+jMax+1]
		xs := x[i+1 : jMax+1]
		xs = xs[:len(row)]
		s := x[i] * invd[i]
		for j, v := range row {
			s = math.FMA(-v, xs[j], s)
		}
		x[i] = s
	}
}

// VecNormInf returns max_i |x[i]|.
func VecNormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: Dot dimension mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
