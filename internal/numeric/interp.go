package numeric

import (
	"fmt"
	"sort"
)

// LinearInterp evaluates the piecewise-linear interpolant through
// (xs, ys) at x, clamping outside the data range. xs must be strictly
// increasing.
func LinearInterp(xs, ys []float64, x float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("numeric: LinearInterp bad data")
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	i := sort.SearchFloat64s(xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// InvLinearCrossing finds the first x where the piecewise-linear signal
// (xs, ys) crosses level going upward (ys[i] < level <= ys[i+1]) — the
// standard 50%-delay measurement on a rising output. It returns an error
// if no upward crossing exists.
func InvLinearCrossing(xs, ys []float64, level float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("numeric: crossing needs >=2 samples")
	}
	for i := 1; i < len(xs); i++ {
		if ys[i-1] < level && ys[i] >= level {
			t := (level - ys[i-1]) / (ys[i] - ys[i-1])
			return xs[i-1] + t*(xs[i]-xs[i-1]), nil
		}
		if ys[i-1] == level {
			return xs[i-1], nil
		}
	}
	return 0, fmt.Errorf("numeric: signal never crosses %g (range %g..%g)", level, ys[0], ys[len(ys)-1])
}

// Spline is a natural cubic spline through strictly increasing knots.
type Spline struct {
	xs, ys []float64
	m      []float64 // second derivatives at knots
}

// NewSpline builds a natural cubic spline; xs must be strictly increasing
// with len(xs) == len(ys) >= 2.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return nil, fmt.Errorf("numeric: spline needs matched data of length >=2")
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("numeric: spline knots must be strictly increasing (x[%d]=%g, x[%d]=%g)", i-1, xs[i-1], i, xs[i])
		}
	}
	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		m:  make([]float64, n),
	}
	if n == 2 {
		return s, nil // linear
	}
	// Thomas algorithm for the tridiagonal second-derivative system.
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		h0 := xs[i] - xs[i-1]
		h1 := xs[i+1] - xs[i]
		a[i] = h0
		b[i] = 2 * (h0 + h1)
		c[i] = h1
		d[i] = 6 * ((ys[i+1]-ys[i])/h1 - (ys[i]-ys[i-1])/h0)
	}
	for i := 1; i < n; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	s.m[n-1] = d[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		s.m[i] = (d[i] - c[i]*s.m[i+1]) / b[i]
	}
	return s, nil
}

// Eval evaluates the spline at x, extrapolating linearly outside the knots.
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	if n == 2 {
		return LinearInterp(s.xs, s.ys, x)
	}
	if x <= s.xs[0] {
		d := s.derivAt(0)
		return s.ys[0] + d*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		d := s.derivAt(n - 1)
		return s.ys[n-1] + d*(x-s.xs[n-1])
	}
	i := sort.SearchFloat64s(s.xs, x)
	if i == 0 {
		i = 1
	}
	x0, x1 := s.xs[i-1], s.xs[i]
	h := x1 - x0
	A := (x1 - x) / h
	B := (x - x0) / h
	return A*s.ys[i-1] + B*s.ys[i] +
		((A*A*A-A)*s.m[i-1]+(B*B*B-B)*s.m[i])*h*h/6
}

func (s *Spline) derivAt(i int) float64 {
	n := len(s.xs)
	if i == 0 {
		h := s.xs[1] - s.xs[0]
		return (s.ys[1]-s.ys[0])/h - h/6*(2*s.m[0]+s.m[1])
	}
	h := s.xs[n-1] - s.xs[n-2]
	return (s.ys[n-1]-s.ys[n-2])/h + h/6*(s.m[n-2]+2*s.m[n-1])
}
