package numeric

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Poly is a real polynomial stored by ascending power:
// p(x) = Coef[0] + Coef[1]·x + ... + Coef[n]·xⁿ.
// The zero value is the zero polynomial.
type Poly struct {
	Coef []float64
}

// NewPoly returns a polynomial with the given ascending coefficients,
// trimmed of trailing (near-)zero leading terms.
func NewPoly(coef ...float64) Poly {
	p := Poly{Coef: append([]float64(nil), coef...)}
	return p.trim()
}

func (p Poly) trim() Poly {
	n := len(p.Coef)
	for n > 1 && p.Coef[n-1] == 0 {
		n--
	}
	p.Coef = p.Coef[:n]
	return p
}

// Degree returns the polynomial degree; the zero polynomial has degree 0.
func (p Poly) Degree() int {
	if len(p.Coef) == 0 {
		return 0
	}
	return len(p.Coef) - 1
}

// IsZero reports whether p is identically zero.
func (p Poly) IsZero() bool {
	for _, c := range p.Coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// Eval evaluates p at real x by Horner's rule.
func (p Poly) Eval(x float64) float64 {
	s := 0.0
	for i := len(p.Coef) - 1; i >= 0; i-- {
		s = s*x + p.Coef[i]
	}
	return s
}

// EvalC evaluates p at complex z by Horner's rule.
func (p Poly) EvalC(z complex128) complex128 {
	s := complex(0, 0)
	for i := len(p.Coef) - 1; i >= 0; i-- {
		s = s*z + complex(p.Coef[i], 0)
	}
	return s
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p.Coef)
	if len(q.Coef) > n {
		n = len(q.Coef)
	}
	c := make([]float64, n)
	for i := range c {
		if i < len(p.Coef) {
			c[i] += p.Coef[i]
		}
		if i < len(q.Coef) {
			c[i] += q.Coef[i]
		}
	}
	return Poly{Coef: c}.trim()
}

// Scale returns k·p.
func (p Poly) Scale(k float64) Poly {
	c := make([]float64, len(p.Coef))
	for i, v := range p.Coef {
		c[i] = k * v
	}
	return Poly{Coef: c}.trim()
}

// Mul returns p·q by convolution.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return NewPoly(0)
	}
	c := make([]float64, len(p.Coef)+len(q.Coef)-1)
	for i, a := range p.Coef {
		if a == 0 {
			continue
		}
		for j, b := range q.Coef {
			c[i+j] += a * b
		}
	}
	return Poly{Coef: c}.trim()
}

// Derivative returns dp/dx.
func (p Poly) Derivative() Poly {
	if len(p.Coef) <= 1 {
		return NewPoly(0)
	}
	c := make([]float64, len(p.Coef)-1)
	for i := 1; i < len(p.Coef); i++ {
		c[i-1] = float64(i) * p.Coef[i]
	}
	return Poly{Coef: c}.trim()
}

// ShiftScaleArg returns q(x) = p(a·x), the polynomial with its argument
// scaled. Used to apply the paper's time-scaling t → t/ωn in the
// S-domain (S → ωn·S′).
func (p Poly) ShiftScaleArg(a float64) Poly {
	c := make([]float64, len(p.Coef))
	f := 1.0
	for i, v := range p.Coef {
		c[i] = v * f
		f *= a
	}
	return Poly{Coef: c}.trim()
}

// String renders the polynomial for diagnostics, lowest power first.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range p.Coef {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		first = false
		switch i {
		case 0:
			fmt.Fprintf(&b, "%g", c)
		case 1:
			fmt.Fprintf(&b, "%g*s", c)
		default:
			fmt.Fprintf(&b, "%g*s^%d", c, i)
		}
	}
	return b.String()
}

// Roots returns all complex roots of p using the Aberth–Ehrlich
// simultaneous iteration with Newton corrections. The leading coefficient
// must be nonzero (guaranteed by trim unless p is constant, which returns
// no roots).
func (p Poly) Roots() []complex128 {
	q := p.trim()
	n := q.Degree()
	if n < 1 {
		return nil
	}
	// Factor out roots at the origin (trailing zero coefficients).
	zeroRoots := 0
	coefAll := append([]float64(nil), q.Coef...)
	for zeroRoots < n && coefAll[zeroRoots] == 0 {
		zeroRoots++
	}
	coef := coefAll[zeroRoots:]
	n -= zeroRoots
	out := make([]complex128, 0, n+zeroRoots)
	for i := 0; i < zeroRoots; i++ {
		out = append(out, 0)
	}
	if n == 0 {
		return out
	}
	// Lead-normalize, then rescale the variable x = r·y with r chosen as
	// the geometric mean root magnitude (|c0/cn|)^(1/n). This keeps the
	// working coefficients bounded for polynomials whose roots span many
	// orders of magnitude (high-order ladder networks), where a naive
	// Cauchy-bound start circle overflows.
	lead := coef[n]
	work := make([]float64, n+1)
	for i := range work {
		work[i] = coef[i] / lead
	}
	r := math.Pow(math.Abs(work[0]), 1/float64(n))
	if r == 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		r = 1
	}
	scale := 1.0
	for i := range work {
		work[i] *= scale // multiply c_i by r^i
		scale *= r
	}
	// Re-normalize by the max coefficient for safety.
	maxc := 0.0
	for _, c := range work {
		if a := math.Abs(c); a > maxc {
			maxc = a
		}
	}
	if maxc > 0 {
		for i := range work {
			work[i] /= maxc
		}
	}
	z := make([]complex128, n)
	for k := range z {
		theta := 2*math.Pi*float64(k)/float64(n) + 0.3923
		z[k] = cmplx.Rect(math.Pow(1.8, 2*float64(k)/float64(n)-1), theta)
	}
	pc := Poly{Coef: work}
	dp := pc.Derivative()
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for k := range z {
			fz := pc.EvalC(z[k])
			dz := dp.EvalC(z[k])
			if fz == 0 {
				continue
			}
			var newton complex128
			if dz != 0 {
				newton = fz / dz
			} else {
				newton = complex(1e-8, 1e-8)
			}
			// Aberth correction: subtract repulsion from other roots.
			sum := complex(0, 0)
			for j := range z {
				if j != k {
					d := z[k] - z[j]
					if d == 0 {
						d = complex(1e-12, 1e-12)
					}
					sum += 1 / d
				}
			}
			denom := 1 - newton*sum
			if denom == 0 {
				denom = complex(1e-12, 0)
			}
			step := newton / denom
			z[k] -= step
			if s := cmplx.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		scale := 0.0
		for _, zz := range z {
			if a := cmplx.Abs(zz); a > scale {
				scale = a
			}
		}
		if maxStep <= 1e-14*(scale+1) {
			break
		}
	}
	// Polish with a few pure Newton steps, unscale, and snap near-real
	// roots: real polynomials have conjugate-symmetric root sets.
	for k := range z {
		for it := 0; it < 8; it++ {
			fz := pc.EvalC(z[k])
			dz := dp.EvalC(z[k])
			if dz == 0 || cmplx.Abs(fz) == 0 {
				break
			}
			z[k] -= fz / dz
		}
		z[k] *= complex(r, 0)
		if math.Abs(imag(z[k])) < 1e-9*(math.Abs(real(z[k]))+1e-30) {
			z[k] = complex(real(z[k]), 0)
		}
	}
	return append(out, z...)
}

// PolyFromRoots builds the monic real polynomial with the given complex
// roots; complex roots must come in conjugate pairs (imaginary residue is
// dropped after pairing).
func PolyFromRoots(roots []complex128) Poly {
	c := []complex128{1}
	for _, r := range roots {
		nc := make([]complex128, len(c)+1)
		for i, v := range c {
			nc[i] -= v * r
			nc[i+1] += v
		}
		c = nc
	}
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return Poly{Coef: out}.trim()
}
