package numeric

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestCLUKnownSystem(t *testing.T) {
	// (1+i)x + y = 3+i ; x − y = i  →  solve and verify residual.
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	b := []complex128{complex(3, 1), complex(0, 1)}
	x, err := SolveCDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x)
	for i := range r {
		if cmplx.Abs(r[i]-b[i]) > 1e-12 {
			t.Errorf("residual[%d] = %v", i, r[i]-b[i])
		}
	}
}

func TestCLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
			a.Add(i, i, complex(float64(2*n), 0))
		}
		xTrue := make([]complex128, n)
		for i := range xTrue {
			xTrue[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(xTrue)
		x, err := SolveCDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-xTrue[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] off by %g", trial, i, cmplx.Abs(x[i]-xTrue[i]))
			}
		}
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, complex(2, 0))
	a.Set(1, 1, complex(4, 0))
	if _, err := FactorCLU(a); err == nil {
		t.Error("singular matrix accepted")
	}
	r := NewCMatrix(2, 3)
	if _, err := FactorCLU(r); err == nil {
		t.Error("non-square accepted")
	}
}

func TestCMatrixOps(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Set(0, 0, complex(1, 2))
	m.Add(0, 0, complex(1, -1))
	if m.At(0, 0) != complex(2, 1) {
		t.Error("Set/Add/At")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Error("Zero")
	}
}
