package numeric

import (
	"fmt"
	"sort"
)

// CBandAssembler is the symbolic half of an AC sweep's per-frequency
// assembly of G + jωC into complex band storage. The permutation
// lookups, band-index arithmetic, and duplicate-coordinate summing are
// all done once at construction; Assemble then writes each structurally
// distinct entry with a single store per frequency point. Compared with
// re-stamping the triplets every point (two passes of perm lookups,
// bounds checks and read-modify-write adds, plus a full Zero of the
// band storage), the per-point cost drops to one linear pass over the
// compacted pattern.
//
// The assembler is tied to the band shape (n, kl, ku) it was planned
// for, not to a particular matrix: any CBandMatrix with the same shape
// can be the target, so per-worker scratch matrices in a parallel sweep
// share one plan. Assemble overwrites exactly the planned pattern —
// the target must be zero outside it (freshly allocated, or previously
// written only by this assembler).
type CBandAssembler struct {
	n, kl, ku, ld int
	off           []int     // flat offsets into CBandMatrix.data, strictly increasing
	g, c          []float64 // summed G and C values per offset
}

// NewCBandAssembler plans the assembly of perm-permuted gt + jω·ct into
// band storage of shape (n, kl, ku). Cost is O(nnz log nnz) once; the
// band must be wide enough for the permuted structure (see
// PermutedBandwidth). Either triplet set may be nil.
func NewCBandAssembler(n, kl, ku int, perm []int, gt, ct *Triplets) *CBandAssembler {
	ld := 2*kl + ku + 1
	a := &CBandAssembler{n: n, kl: kl, ku: ku, ld: ld}
	type entry struct {
		off  int
		g, c float64
	}
	var entries []entry
	collect := func(t *Triplets, isG bool) {
		if t == nil {
			return
		}
		for k, i := range t.I {
			pi, pj := perm[i], perm[t.J[k]]
			if pj-pi > ku || pi-pj > kl {
				panic(fmt.Sprintf("numeric: planned entry (%d,%d) outside kl=%d ku=%d", pi, pj, kl, ku))
			}
			e := entry{off: pi*ld + pj - pi + kl}
			if isG {
				e.g = t.V[k]
			} else {
				e.c = t.V[k]
			}
			entries = append(entries, e)
		}
	}
	collect(gt, true)
	collect(ct, false)
	sort.Slice(entries, func(x, y int) bool { return entries[x].off < entries[y].off })
	for _, e := range entries {
		if m := len(a.off) - 1; m >= 0 && a.off[m] == e.off {
			a.g[m] += e.g
			a.c[m] += e.c
			continue
		}
		a.off = append(a.off, e.off)
		a.g = append(a.g, e.g)
		a.c = append(a.c, e.c)
	}
	return a
}

// NNZ returns the number of structurally distinct entries in the plan.
func (a *CBandAssembler) NNZ() int { return len(a.off) }

// Assemble writes G + jω·C over the planned pattern of b. b must have
// the shape the plan was built for and be zero outside the pattern; no
// Zero() is needed between calls because every planned entry is
// overwritten.
func (a *CBandAssembler) Assemble(b *CBandMatrix, omega float64) {
	if b.N != a.n || b.KL != a.kl || b.KU != a.ku {
		panic(fmt.Sprintf("numeric: CBandAssembler planned for (%d,%d,%d), target is (%d,%d,%d)",
			a.n, a.kl, a.ku, b.N, b.KL, b.KU))
	}
	data := b.data
	for k, off := range a.off {
		data[off] = complex(a.g[k], omega*a.c[k])
	}
}
