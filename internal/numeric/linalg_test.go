package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b))+tol
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	b := []float64{8, -11, -3}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 8)
	a.Set(1, 0, 4)
	a.Set(1, 1, 6)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -14, 1e-12) {
		t.Errorf("det = %g, want -14", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := FactorLU(a); err == nil {
		t.Error("expected singular error")
	}
}

func TestLUNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := FactorLU(a); err == nil {
		t.Error("expected error on non-square matrix")
	}
}

func TestLURandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance for conditioning
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-9) {
				t.Fatalf("n=%d x[%d]=%g want %g", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestMatrixOps(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Add(0, 0, 2)
	if m.At(0, 0) != 3 {
		t.Error("Set/Add/At")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Error("Clone aliases storage")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Error("Zero")
	}
}

func TestBandMatrixAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(40)
		kl := rng.Intn(3)
		ku := rng.Intn(3)
		if kl >= n {
			kl = n - 1
		}
		if ku >= n {
			ku = n - 1
		}
		bm := NewBandMatrix(n, kl, ku)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if bm.InBand(i, j) {
					bm.Set(i, j, rng.NormFloat64())
				}
			}
			bm.Add(i, i, float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := bm.MulVec(xTrue)
		// Band solve.
		f, err := FactorBandLU(bm)
		if err != nil {
			t.Fatalf("band factor n=%d kl=%d ku=%d: %v", n, kl, ku, err)
		}
		x := f.Solve(b)
		// Dense reference.
		xd, err := SolveDense(bm.Dense(), b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEq(x[i], xd[i], 1e-8) || !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d]=%g dense=%g true=%g", trial, i, x[i], xd[i], xTrue[i])
			}
		}
	}
}

func TestBandMatrixTridiagonalLarge(t *testing.T) {
	// -u'' discretization: classic tridiagonal [−1 2 −1] system.
	n := 2000
	bm := NewBandMatrix(n, 1, 1)
	for i := 0; i < n; i++ {
		bm.Set(i, i, 2)
		if i > 0 {
			bm.Set(i, i-1, -1)
		}
		if i < n-1 {
			bm.Set(i, i+1, -1)
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	f, err := FactorBandLU(bm)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b)
	// Residual check.
	r := bm.MulVec(x)
	for i := range r {
		if math.Abs(r[i]-1) > 1e-7 {
			t.Fatalf("residual at %d: %g", i, r[i]-1)
		}
	}
}

func TestBandOutOfBandPanics(t *testing.T) {
	bm := NewBandMatrix(5, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("Set outside band did not panic")
		}
	}()
	bm.Set(0, 4, 1)
}

func TestBandClone(t *testing.T) {
	bm := NewBandMatrix(4, 1, 1)
	bm.Set(1, 1, 5)
	c := bm.Clone()
	c.Set(1, 1, 7)
	if bm.At(1, 1) != 5 {
		t.Error("band Clone aliases storage")
	}
	bm.Zero()
	if bm.At(1, 1) != 0 {
		t.Error("band Zero")
	}
}

func TestVecHelpers(t *testing.T) {
	if VecNormInf([]float64{1, -3, 2}) != 3 {
		t.Error("VecNormInf")
	}
	if !almostEq(VecNorm2([]float64{3, 4}), 5, 1e-15) {
		t.Error("VecNorm2")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot")
	}
}

func TestLUSolvePropertyRoundTrip(t *testing.T) {
	// Property: for random well-conditioned A and x, Solve(A, A·x) ≈ x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64()-0.5)
			}
			a.Add(i, i, 5)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		got, err := SolveDense(a, a.MulVec(x))
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
