package numeric

import (
	"fmt"
)

// CMatrix is a dense row-major complex matrix, used by AC (frequency-
// domain) circuit analysis.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zero Rows×Cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("numeric: invalid cmatrix dims %dx%d", rows, cols))
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets all elements.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m·x.
func (m *CMatrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic("numeric: CMatrix.MulVec dimension mismatch")
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// CLU is an LU factorization with partial pivoting of a complex matrix.
type CLU struct {
	n       int
	lu      []complex128
	piv     []int
	scratch []complex128 // pivot-gather buffer for SolveTo
}

// FactorCLU computes the complex LU factorization of square a; a is not
// modified.
func FactorCLU(a *CMatrix) (*CLU, error) {
	f := &CLU{}
	if err := FactorCLUInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// Solve solves A·x = b; b is not modified.
func (f *CLU) Solve(b []complex128) []complex128 {
	if len(b) != f.n {
		panic("numeric: CLU.Solve dimension mismatch")
	}
	n := f.n
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// FactorCLUInto factors a into f, reusing f's storage when its shape
// matches a previous factorization of the same dimension — a reduced
// model's per-frequency q×q factorizations then allocate nothing.
// a is not modified.
func FactorCLUInto(f *CLU, a *CMatrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("numeric: FactorCLUInto needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if f.n != n || len(f.lu) != n*n {
		f.lu = make([]complex128, n*n)
		f.piv = make([]int, n)
		f.scratch = make([]complex128, n)
	}
	f.n = n
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// |re|+|im| pivot magnitude (LAPACK's CABS1): no square roots.
		p, maxv := k, cabs1(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cabs1(lu[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
		}
		// One reciprocal per pivot; multipliers by multiplication (software
		// complex division is far slower and would dominate small dense
		// factorizations done per frequency point).
		pinv := 1 / lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] * pinv
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return nil
}

// SolveTo solves A·x = b into dst without allocating (after the first
// call); dst may alias b.
func (f *CLU) SolveTo(dst, b []complex128) {
	if len(b) != f.n || len(dst) != f.n {
		panic("numeric: CLU.SolveTo dimension mismatch")
	}
	n := f.n
	if f.scratch == nil {
		f.scratch = make([]complex128, n)
	}
	for i := 0; i < n; i++ {
		f.scratch[i] = b[f.piv[i]]
	}
	x := dst
	copy(x, f.scratch)
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu[i*n+i+1 : i*n+n]
		for j, v := range row {
			s -= v * x[i+1+j]
		}
		x[i] = s / f.lu[i*n+i]
	}
}

// SolveCDense solves a complex system for one right-hand side.
func SolveCDense(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := FactorCLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
