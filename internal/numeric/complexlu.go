package numeric

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by AC (frequency-
// domain) circuit analysis.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zero Rows×Cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("numeric: invalid cmatrix dims %dx%d", rows, cols))
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets all elements.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m·x.
func (m *CMatrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic("numeric: CMatrix.MulVec dimension mismatch")
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// CLU is an LU factorization with partial pivoting of a complex matrix.
type CLU struct {
	n   int
	lu  []complex128
	piv []int
}

// FactorCLU computes the complex LU factorization of square a; a is not
// modified.
func FactorCLU(a *CMatrix) (*CLU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("numeric: FactorCLU needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &CLU{n: n, lu: make([]complex128, n*n), piv: make([]int, n)}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		p, maxv := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b; b is not modified.
func (f *CLU) Solve(b []complex128) []complex128 {
	if len(b) != f.n {
		panic("numeric: CLU.Solve dimension mismatch")
	}
	n := f.n
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// SolveCDense solves a complex system for one right-hand side.
func SolveCDense(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := FactorCLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
