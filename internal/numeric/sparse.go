package numeric

import (
	"fmt"
	"sort"
)

// Triplets is a coordinate-format (COO) accumulator for sparse matrix
// assembly: each Add records one (i, j, v) contribution, and repeated
// coordinates sum when the triplets are later stamped into a concrete
// matrix. It is the natural target for MNA stamping — assembling a
// circuit costs O(nnz) time and memory with no n×n storage ever
// materialized.
type Triplets struct {
	N    int // matrix dimension (n×n)
	I, J []int
	V    []float64
}

// NewTriplets returns an empty n×n triplet accumulator.
func NewTriplets(n int) *Triplets {
	if n <= 0 {
		panic(fmt.Sprintf("numeric: invalid triplet dim %d", n))
	}
	return &Triplets{N: n}
}

// Add records the contribution v at (i, j). Zero contributions are
// dropped: they carry neither value nor structure.
func (t *Triplets) Add(i, j int, v float64) {
	if i < 0 || i >= t.N || j < 0 || j >= t.N {
		panic(fmt.Sprintf("numeric: triplet index (%d,%d) outside %d×%d", i, j, t.N, t.N))
	}
	if v == 0 {
		return
	}
	t.I = append(t.I, i)
	t.J = append(t.J, j)
	t.V = append(t.V, v)
}

// NNZ returns the number of recorded contributions (an upper bound on
// the number of structurally distinct entries).
func (t *Triplets) NNZ() int { return len(t.I) }

// AddScaledToBand accumulates s·v at (perm[i], perm[j]) for every
// recorded triplet — the O(nnz) stamp of a permuted sparse matrix into
// band storage. The band must be wide enough for the permuted
// structure (see PermutedBandwidth).
func (t *Triplets) AddScaledToBand(b *BandMatrix, perm []int, s float64) {
	for k, i := range t.I {
		b.Add(perm[i], perm[t.J[k]], s*t.V[k])
	}
}

// AddScaledToCBand is AddScaledToBand for a complex band target; the
// complex scale lets real-valued structure assemble directly into
// G + jωC style matrices (s = 1 for G, s = jω for C).
func (t *Triplets) AddScaledToCBand(b *CBandMatrix, perm []int, s complex128) {
	for k, i := range t.I {
		b.Add(perm[i], perm[t.J[k]], s*complex(t.V[k], 0))
	}
}

// Adjacency builds the undirected adjacency structure of the union of
// the given triplet matrices: adj[i] lists the distinct off-diagonal
// neighbors of i in increasing index order. Cost is O(nnz log nnz).
func Adjacency(n int, ts ...*Triplets) [][]int {
	adj := make([][]int, n)
	for _, t := range ts {
		for k, i := range t.I {
			j := t.J[k]
			if i != j {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	for i := range adj {
		a := adj[i]
		sort.Ints(a)
		w := 0
		for r := range a {
			if r == 0 || a[r] != a[r-1] {
				a[w] = a[r]
				w++
			}
		}
		adj[i] = a[:w]
	}
	return adj
}

// RCM returns the reverse Cuthill–McKee ordering of the undirected
// graph adj as order[new] = orig. The ordering is deterministic:
// within a BFS level neighbors are visited in increasing (degree,
// index) order, and each connected component starts from its
// unvisited node of minimum (degree, index). Cost is O(n + nnz log n).
func RCM(adj [][]int) []int {
	n := len(adj)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}
	// Neighbor visit order: increasing (degree, index). The rows from
	// Adjacency are index-sorted, so a stable sort by degree preserves
	// the index tie-break.
	nbr := make([][]int, n)
	for i := range adj {
		nbr[i] = append([]int(nil), adj[i]...)
		row := nbr[i]
		sort.SliceStable(row, func(a, b int) bool { return deg[row[a]] < deg[row[b]] })
	}
	byDeg := make([]int, n)
	for i := range byDeg {
		byDeg[i] = i
	}
	sort.SliceStable(byDeg, func(a, b int) bool { return deg[byDeg[a]] < deg[byDeg[b]] })
	visited := make([]bool, n)
	order := make([]int, 0, n)
	next := 0
	for len(order) < n {
		for visited[byDeg[next]] {
			next++
		}
		start := byDeg[next]
		visited[start] = true
		head := len(order)
		order = append(order, start)
		// The tail of order doubles as the BFS queue.
		for head < len(order) {
			v := order[head]
			head++
			for _, w := range nbr[v] {
				if !visited[w] {
					visited[w] = true
					order = append(order, w)
				}
			}
		}
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// PermutedBandwidth returns the band widths (kl, ku) of the union of
// the given triplet matrices under the permutation perm[orig] = new,
// in O(nnz).
func PermutedBandwidth(perm []int, ts ...*Triplets) (kl, ku int) {
	for _, t := range ts {
		for k, i := range t.I {
			d := perm[i] - perm[t.J[k]]
			if d > kl {
				kl = d
			} else if -d > ku {
				ku = -d
			}
		}
	}
	return kl, ku
}
