package numeric

import (
	"fmt"
	"math"
)

// CBandMatrix is a square banded complex matrix with kl sub-diagonals
// and ku super-diagonals, stored row-major like BandMatrix (row i holds
// columns i−kl … i+ku+kl, the kl extra slots absorbing pivot fill-in).
// It exists so AC analysis of long interconnect ladders factors in
// O(n·band²) instead of O(n³) per frequency point.
type CBandMatrix struct {
	N, KL, KU int
	data      []complex128
	ld        int
}

// NewCBandMatrix returns a zero n×n complex band matrix.
func NewCBandMatrix(n, kl, ku int) *CBandMatrix {
	if n <= 0 || kl < 0 || ku < 0 || kl >= n || ku >= n {
		panic(fmt.Sprintf("numeric: invalid cband dims n=%d kl=%d ku=%d", n, kl, ku))
	}
	ld := 2*kl + ku + 1
	return &CBandMatrix{N: n, KL: kl, KU: ku, ld: ld, data: make([]complex128, ld*n)}
}

func (b *CBandMatrix) idx(i, j int) int { return i*b.ld + j - i + b.KL }

// InBand reports whether (i, j) lies within the declared bandwidth.
func (b *CBandMatrix) InBand(i, j int) bool {
	return i >= 0 && j >= 0 && i < b.N && j < b.N && j-i <= b.KU && i-j <= b.KL
}

// At returns element (i, j); outside the band it is zero.
func (b *CBandMatrix) At(i, j int) complex128 {
	if !b.InBand(i, j) {
		return 0
	}
	return b.data[b.idx(i, j)]
}

// Set assigns element (i, j); it panics outside the band.
func (b *CBandMatrix) Set(i, j int, v complex128) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: cband element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] = v
}

// Add accumulates v into element (i, j); it panics outside the band.
func (b *CBandMatrix) Add(i, j int, v complex128) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: cband element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] += v
}

// Zero resets all stored elements.
func (b *CBandMatrix) Zero() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// MulVec computes y = b·x.
func (b *CBandMatrix) MulVec(x []complex128) []complex128 {
	y := make([]complex128, b.N)
	b.MulVecTo(y, x)
	return y
}

// MulVecTo computes dst = b·x without allocating; dst must not alias x.
func (b *CBandMatrix) MulVecTo(dst, x []complex128) {
	if len(x) != b.N || len(dst) != b.N {
		panic("numeric: cband MulVecTo dimension mismatch")
	}
	n, kl, ku, ld := b.N, b.KL, b.KU, b.ld
	data := b.data
	if kl == 1 && ku == 1 && n > 1 {
		// Tridiagonal fast path; see BandMatrix.MulVecTo.
		dst[0] = data[1]*x[0] + data[2]*x[1]
		for i := 1; i < n-1; i++ {
			d := data[i*ld : i*ld+3]
			dst[i] = d[0]*x[i-1] + d[1]*x[i] + d[2]*x[i+1]
		}
		dst[n-1] = data[(n-1)*ld]*x[n-2] + data[(n-1)*ld+1]*x[n-1]
		return
	}
	for i := 0; i < n; i++ {
		lo := i - kl
		if lo < 0 {
			lo = 0
		}
		hi := i + ku
		if hi >= n {
			hi = n - 1
		}
		base := i*(ld-1) + kl
		row := data[base+lo : base+hi+1]
		xs := x[lo : hi+1]
		xs = xs[:len(row)]
		var s complex128
		for j, v := range row {
			s += v * xs[j]
		}
		dst[i] = s
	}
}

// CBandLU is a complex band LU factorization with partial pivoting.
type CBandLU struct {
	n, kl, ku int
	ld        int
	ubw       int // actual U bandwidth: ku if no pivoting occurred, else ku+kl
	data      []complex128
	invd      []complex128 // reciprocals of the U diagonal
	piv       []int
}

// cabs1 is the |re|+|im| pivot magnitude (LAPACK's CABS1): an exact
// factor-of-√2 equivalent of the modulus that needs no square root.
func cabs1(v complex128) float64 { return math.Abs(real(v)) + math.Abs(imag(v)) }

// FactorCBandLU factors the complex band matrix; a is not modified.
func FactorCBandLU(a *CBandMatrix) (*CBandLU, error) {
	f := &CBandLU{}
	if err := FactorCBandLUInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorCBandLUInto factors the complex band matrix into f, reusing f's
// storage when its shape matches a previous factorization of the same
// dimensions — repeated factorizations (an AC sweep's per-frequency
// solves) then allocate nothing. a is not modified.
func FactorCBandLUInto(f *CBandLU, a *CBandMatrix) error {
	n, kl, ku := a.N, a.KL, a.KU
	if len(f.data) != len(a.data) || len(f.piv) != n {
		f.data = make([]complex128, len(a.data))
		f.invd = make([]complex128, n)
		f.piv = make([]int, n)
	}
	f.n, f.kl, f.ku, f.ld = n, kl, ku, a.ld
	copy(f.data, a.data)
	data, ld := f.data, f.ld
	ubw := ku
	for k := 0; k < n; k++ {
		p, maxv := k, cabs1(data[k*ld+kl])
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			if v := cabs1(data[i*(ld-1)+kl+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return ErrSingular
		}
		f.piv[k] = p
		if p != k {
			ubw = ku + kl
		}
		jMax := k + ubw
		if jMax >= n {
			jMax = n - 1
		}
		rowk := data[k*(ld-1)+kl:]
		if p != k {
			rowp := data[p*(ld-1)+kl:]
			for j := k; j <= jMax; j++ {
				rowp[j], rowk[j] = rowk[j], rowp[j]
			}
		}
		// One reciprocal per pivot: the multipliers below are formed by
		// multiplication, because software complex128 division costs an
		// order of magnitude more than multiplication and would otherwise
		// dominate narrow-band factorizations.
		pinv := 1 / rowk[k]
		f.invd[k] = pinv
		for i := k + 1; i <= iMax; i++ {
			rowi := data[i*(ld-1)+kl:]
			m := rowi[k] * pinv
			rowi[k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j <= jMax; j++ {
				rowi[j] -= m * rowk[j]
			}
		}
	}
	f.ubw = ubw
	return nil
}

// Solve solves A·x = b from the factorization; b is not modified.
func (f *CBandLU) Solve(b []complex128) []complex128 {
	x := make([]complex128, f.n)
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b into dst without allocating; dst may alias b.
func (f *CBandLU) SolveTo(dst, b []complex128) {
	if len(b) != f.n || len(dst) != f.n {
		panic("numeric: CBandLU.SolveTo dimension mismatch")
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	f.SolveInPlace(dst)
}

// SolveInPlace solves A·x = b, overwriting the right-hand side x with
// the solution. It performs no heap allocations.
func (f *CBandLU) SolveInPlace(x []complex128) {
	if len(x) != f.n {
		panic("numeric: CBandLU.SolveInPlace dimension mismatch")
	}
	n, kl, ld := f.n, f.kl, f.ld
	data := f.data
	if kl == 1 && f.ku == 1 && f.ubw == 1 {
		// Pivot-free tridiagonal fast path; see BandLU.SolveInPlace.
		invd := f.invd
		for k := 0; k+1 < n; k++ {
			x[k+1] -= data[(k+1)*ld] * x[k]
		}
		x[n-1] *= invd[n-1]
		for i := n - 2; i >= 0; i-- {
			x[i] = (x[i] - data[i*ld+2]*x[i+1]) * invd[i]
		}
		return
	}
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[p], x[k] = x[k], x[p]
		}
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		xk := x[k]
		if xk == 0 {
			continue
		}
		off := (k+1)*(ld-1) + kl + k
		for i := k + 1; i <= iMax; i++ {
			x[i] -= data[off] * xk
			off += ld - 1
		}
	}
	ubw, invd := f.ubw, f.invd
	for i := n - 1; i >= 0; i-- {
		jMax := i + ubw
		if jMax >= n {
			jMax = n - 1
		}
		base := i*(ld-1) + kl
		row := data[base+i+1 : base+jMax+1]
		xs := x[i+1 : jMax+1]
		xs = xs[:len(row)]
		s := x[i]
		for j, v := range row {
			s -= v * xs[j]
		}
		x[i] = s * invd[i]
	}
}
