package numeric

import (
	"fmt"
	"math/cmplx"
)

// CBandMatrix is a square banded complex matrix with kl sub-diagonals
// and ku super-diagonals, stored like BandMatrix. It exists so AC
// analysis of long interconnect ladders factors in O(n·band²) instead
// of O(n³) per frequency point.
type CBandMatrix struct {
	N, KL, KU int
	data      []complex128
	ld        int
}

// NewCBandMatrix returns a zero n×n complex band matrix.
func NewCBandMatrix(n, kl, ku int) *CBandMatrix {
	if n <= 0 || kl < 0 || ku < 0 || kl >= n || ku >= n {
		panic(fmt.Sprintf("numeric: invalid cband dims n=%d kl=%d ku=%d", n, kl, ku))
	}
	ld := 2*kl + ku + 1
	return &CBandMatrix{N: n, KL: kl, KU: ku, ld: ld, data: make([]complex128, ld*n)}
}

func (b *CBandMatrix) idx(i, j int) int { return (b.KU+b.KL+i-j)*b.N + j }

// InBand reports whether (i, j) lies within the declared bandwidth.
func (b *CBandMatrix) InBand(i, j int) bool {
	return i >= 0 && j >= 0 && i < b.N && j < b.N && j-i <= b.KU && i-j <= b.KL
}

// At returns element (i, j); outside the band it is zero.
func (b *CBandMatrix) At(i, j int) complex128 {
	if !b.InBand(i, j) {
		return 0
	}
	return b.data[b.idx(i, j)]
}

// Set assigns element (i, j); it panics outside the band.
func (b *CBandMatrix) Set(i, j int, v complex128) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: cband element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] = v
}

// Add accumulates v into element (i, j); it panics outside the band.
func (b *CBandMatrix) Add(i, j int, v complex128) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("numeric: cband element (%d,%d) outside kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.data[b.idx(i, j)] += v
}

// Zero resets all stored elements.
func (b *CBandMatrix) Zero() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// MulVec computes y = b·x.
func (b *CBandMatrix) MulVec(x []complex128) []complex128 {
	if len(x) != b.N {
		panic("numeric: cband MulVec dimension mismatch")
	}
	y := make([]complex128, b.N)
	for i := 0; i < b.N; i++ {
		lo := i - b.KL
		if lo < 0 {
			lo = 0
		}
		hi := i + b.KU
		if hi >= b.N {
			hi = b.N - 1
		}
		var s complex128
		for j := lo; j <= hi; j++ {
			s += b.At(i, j) * x[j]
		}
		y[i] = s
	}
	return y
}

// CBandLU is a complex band LU factorization with partial pivoting.
type CBandLU struct {
	n, kl, ku int
	data      []complex128
	piv       []int
}

// FactorCBandLU factors the complex band matrix; a is not modified.
func FactorCBandLU(a *CBandMatrix) (*CBandLU, error) {
	n, kl, ku := a.N, a.KL, a.KU
	f := &CBandLU{n: n, kl: kl, ku: ku, data: make([]complex128, len(a.data)), piv: make([]int, n)}
	copy(f.data, a.data)
	at := func(i, j int) complex128 { return f.data[(ku+kl+i-j)*n+j] }
	set := func(i, j int, v complex128) { f.data[(ku+kl+i-j)*n+j] = v }
	for k := 0; k < n; k++ {
		p, maxv := k, cmplx.Abs(at(k, k))
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			if v := cmplx.Abs(at(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		f.piv[k] = p
		jMax := k + ku + kl
		if jMax >= n {
			jMax = n - 1
		}
		if p != k {
			for j := k; j <= jMax; j++ {
				vp, vk := at(p, j), at(k, j)
				set(p, j, vk)
				set(k, j, vp)
			}
		}
		pivot := at(k, k)
		for i := k + 1; i <= iMax; i++ {
			m := at(i, k) / pivot
			set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j <= jMax; j++ {
				set(i, j, at(i, j)-m*at(k, j))
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b from the factorization; b is not modified.
func (f *CBandLU) Solve(b []complex128) []complex128 {
	if len(b) != f.n {
		panic("numeric: CBandLU.Solve dimension mismatch")
	}
	n, kl, ku := f.n, f.kl, f.ku
	at := func(i, j int) complex128 { return f.data[(ku+kl+i-j)*n+j] }
	x := make([]complex128, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[p], x[k] = x[k], x[p]
		}
		iMax := k + kl
		if iMax >= n {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			x[i] -= at(i, k) * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		jMax := i + ku + kl
		if jMax >= n {
			jMax = n - 1
		}
		s := x[i]
		for j := i + 1; j <= jMax; j++ {
			s -= at(i, j) * x[j]
		}
		x[i] = s / at(i, i)
	}
	return x
}
