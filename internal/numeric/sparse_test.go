package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestTripletsBasics(t *testing.T) {
	tr := NewTriplets(4)
	tr.Add(0, 0, 2)
	tr.Add(0, 0, 3) // duplicate coordinates accumulate on stamp
	tr.Add(2, 3, -1)
	tr.Add(1, 2, 0) // zero contribution dropped
	if tr.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", tr.NNZ())
	}
	perm := []int{0, 1, 2, 3}
	kl, ku := PermutedBandwidth(perm, tr)
	if kl != 0 || ku != 1 {
		t.Fatalf("bandwidth (%d,%d), want (0,1)", kl, ku)
	}
	b := NewBandMatrix(4, kl, ku)
	tr.AddScaledToBand(b, perm, 2)
	if b.At(0, 0) != 10 || b.At(2, 3) != -2 {
		t.Fatalf("stamped values %g %g", b.At(0, 0), b.At(2, 3))
	}
	cb := NewCBandMatrix(4, kl, ku)
	tr.AddScaledToCBand(cb, perm, complex(0, 1))
	if cb.At(0, 0) != complex(0, 5) || cb.At(2, 3) != complex(0, -1) {
		t.Fatalf("complex stamped values %v %v", cb.At(0, 0), cb.At(2, 3))
	}
}

func TestTripletsPanics(t *testing.T) {
	tr := NewTriplets(2)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { tr.Add(2, 0, 1) })
	mustPanic(func() { tr.Add(0, -1, 1) })
	mustPanic(func() { NewTriplets(0) })
}

func TestAdjacencyDedupAndOrder(t *testing.T) {
	a := NewTriplets(5)
	a.Add(0, 1, 1)
	a.Add(1, 0, 1) // same undirected edge
	a.Add(0, 3, 2)
	a.Add(2, 2, 5) // diagonal: no edge
	b := NewTriplets(5)
	b.Add(0, 1, -1) // duplicate across matrices
	b.Add(4, 3, 1)
	adj := Adjacency(5, a, b)
	want := [][]int{{1, 3}, {0}, {}, {0, 4}, {3}}
	for i := range want {
		if len(adj[i]) != len(want[i]) {
			t.Fatalf("adj[%d] = %v, want %v", i, adj[i], want[i])
		}
		for k := range want[i] {
			if adj[i][k] != want[i][k] {
				t.Fatalf("adj[%d] = %v, want %v", i, adj[i], want[i])
			}
		}
	}
}

func TestRCMChainReversesToUnitBandwidth(t *testing.T) {
	// A path graph must order as a path: bandwidth 1 regardless of the
	// input labeling.
	n := 50
	tr := NewTriplets(n)
	labels := rand.New(rand.NewSource(7)).Perm(n)
	for i := 0; i+1 < n; i++ {
		tr.Add(labels[i], labels[i+1], 1)
		tr.Add(labels[i+1], labels[i], 1)
	}
	order := RCM(Adjacency(n, tr))
	perm := make([]int, n)
	for newIdx, orig := range order {
		perm[orig] = newIdx
	}
	kl, ku := PermutedBandwidth(perm, tr)
	if kl != 1 || ku != 1 {
		t.Fatalf("path graph RCM bandwidth (%d,%d), want (1,1)", kl, ku)
	}
}

func TestRCMDisconnectedCoversAllNodes(t *testing.T) {
	// Three components, one an isolated vertex.
	tr := NewTriplets(7)
	tr.Add(0, 1, 1)
	tr.Add(1, 2, 1)
	tr.Add(4, 5, 1)
	order := RCM(Adjacency(7, tr))
	if len(order) != 7 {
		t.Fatalf("order covers %d of 7 nodes", len(order))
	}
	seen := make([]bool, 7)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("node %d ordered twice", v)
		}
		seen[v] = true
	}
}

// randBand returns a random band matrix with the given shape; boost
// controls diagonal dominance (0 forces frequent pivoting).
func randBand(rng *rand.Rand, n, kl, ku int, boost float64) *BandMatrix {
	b := NewBandMatrix(n, kl, ku)
	for i := 0; i < n; i++ {
		for j := i - kl; j <= i+ku; j++ {
			if b.InBand(i, j) {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		b.Add(i, i, boost)
	}
	return b
}

func TestBandKernelsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		n, kl, ku int
		boost     float64
	}{
		{1, 0, 0, 1},
		{2, 1, 1, 0},
		{3, 1, 1, 0},
		{40, 1, 1, 0},  // tridiagonal, heavy pivoting
		{40, 1, 1, 10}, // tridiagonal, no pivoting
		{33, 2, 1, 0},
		{29, 1, 3, 0.5},
		{64, 3, 3, 0},
	} {
		for rep := 0; rep < 4; rep++ {
			b := randBand(rng, tc.n, tc.kl, tc.ku, tc.boost)
			x := make([]float64, tc.n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			// MulVecTo vs dense multiply.
			dense := b.Dense()
			wantY := dense.MulVec(x)
			gotY := make([]float64, tc.n)
			b.MulVecTo(gotY, x)
			for i := range wantY {
				if math.Abs(gotY[i]-wantY[i]) > 1e-12*(1+math.Abs(wantY[i])) {
					t.Fatalf("n=%d kl=%d ku=%d: MulVecTo[%d] = %g, want %g",
						tc.n, tc.kl, tc.ku, i, gotY[i], wantY[i])
				}
			}
			// Band solve vs dense solve, via all three entry points.
			want, err := SolveDense(dense, x)
			if err != nil {
				continue
			}
			f, err := FactorBandLU(b)
			if err != nil {
				t.Fatalf("band factor failed where dense succeeded: %v", err)
			}
			got := f.Solve(x)
			got2 := make([]float64, tc.n)
			f.SolveTo(got2, x)
			got3 := append([]float64(nil), x...)
			f.SolveInPlace(got3)
			scale := VecNormInf(want) + 1
			for i := range want {
				for _, g := range []float64{got[i], got2[i], got3[i]} {
					if math.Abs(g-want[i]) > 1e-9*scale {
						t.Fatalf("n=%d kl=%d ku=%d boost=%g: solve[%d] = %g, want %g",
							tc.n, tc.kl, tc.ku, tc.boost, i, g, want[i])
					}
				}
			}
		}
	}
}

func TestFactorBandLUIntoReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := randBand(rng, 200, 1, 1, 4)
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	var f BandLU
	if err := FactorBandLUInto(&f, b); err != nil {
		t.Fatal(err)
	}
	want := f.Solve(rhs)
	allocs := testing.AllocsPerRun(10, func() {
		if err := FactorBandLUInto(&f, b); err != nil {
			panic(err)
		}
		f.SolveInPlace(rhs)
		copy(rhs, want) // restore
	})
	if allocs != 0 {
		t.Errorf("refactor+solve allocates %v times, want 0", allocs)
	}
	// Factor a different shape into the same f: storage must adapt.
	b2 := randBand(rng, 64, 2, 2, 4)
	if err := FactorBandLUInto(&f, b2); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	for i := range x {
		x[i] = 1
	}
	y := b2.MulVec(x)
	got := f.Solve(y)
	for i := range got {
		if math.Abs(got[i]-1) > 1e-9 {
			t.Fatalf("reshaped factor wrong: x[%d] = %g", i, got[i])
		}
	}
}

func TestCBandInPlaceKernelsMatchSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct {
		n, kl, ku int
	}{{2, 1, 1}, {40, 1, 1}, {31, 2, 2}} {
		a := NewCBandMatrix(tc.n, tc.kl, tc.ku)
		for i := 0; i < tc.n; i++ {
			for j := i - tc.kl; j <= i+tc.ku; j++ {
				if a.InBand(i, j) {
					a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
				}
			}
		}
		b := make([]complex128, tc.n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		f, err := FactorCBandLU(a)
		if err != nil {
			t.Fatal(err)
		}
		want := f.Solve(b)
		var f2 CBandLU
		if err := FactorCBandLUInto(&f2, a); err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, tc.n)
		f2.SolveTo(got, b)
		// Residual check: A·x must reproduce b.
		ax := a.MulVec(want)
		for i := range b {
			if d := ax[i] - b[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("n=%d: residual %v at %d", tc.n, d, i)
			}
			if d := got[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("n=%d: SolveTo differs from Solve at %d by %v", tc.n, i, d)
			}
		}
	}
}
