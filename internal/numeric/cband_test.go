package numeric

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randCBand(rng *rand.Rand, n, kl, ku int) *CBandMatrix {
	bm := NewCBandMatrix(n, kl, ku)
	for i := 0; i < n; i++ {
		for j := i - kl; j <= i+ku; j++ {
			if bm.InBand(i, j) {
				bm.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
		bm.Add(i, i, complex(float64(2*n), 0))
	}
	return bm
}

func TestCBandAgainstDenseComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(30)
		kl := rng.Intn(3)
		ku := rng.Intn(3)
		if kl >= n {
			kl = n - 1
		}
		if ku >= n {
			ku = n - 1
		}
		bm := randCBand(rng, n, kl, ku)
		xTrue := make([]complex128, n)
		for i := range xTrue {
			xTrue[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := bm.MulVec(xTrue)
		f, err := FactorCBandLU(bm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := f.Solve(b)
		// Dense reference.
		dm := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dm.Set(i, j, bm.At(i, j))
			}
		}
		xd, err := SolveCDense(dm, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-xTrue[i]) > 1e-9 || cmplx.Abs(x[i]-xd[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] band %v dense %v true %v", trial, i, x[i], xd[i], xTrue[i])
			}
		}
	}
}

func TestCBandSingular(t *testing.T) {
	bm := NewCBandMatrix(3, 1, 1)
	bm.Set(0, 0, 1)
	bm.Set(1, 1, 1)
	// Row 2 left zero.
	if _, err := FactorCBandLU(bm); err == nil {
		t.Error("singular accepted")
	}
}

func TestCBandAccessors(t *testing.T) {
	bm := NewCBandMatrix(5, 1, 1)
	bm.Set(2, 2, complex(1, 1))
	bm.Add(2, 2, complex(0, 1))
	if bm.At(2, 2) != complex(1, 2) {
		t.Error("Set/Add/At")
	}
	if bm.At(0, 4) != 0 {
		t.Error("out-of-band read should be 0")
	}
	bm.Zero()
	if bm.At(2, 2) != 0 {
		t.Error("Zero")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-band Set did not panic")
		}
	}()
	bm.Set(0, 4, 1)
}

func TestCBandLargeTridiagonal(t *testing.T) {
	// jω-shifted discrete Laplacian: typical AC system shape.
	n := 1500
	bm := NewCBandMatrix(n, 1, 1)
	for i := 0; i < n; i++ {
		bm.Set(i, i, complex(2, 0.3))
		if i > 0 {
			bm.Set(i, i-1, complex(-1, 0))
		}
		if i < n-1 {
			bm.Set(i, i+1, complex(-1, 0))
		}
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = 1
	}
	f, err := FactorCBandLU(bm)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b)
	r := bm.MulVec(x)
	for i := range r {
		if cmplx.Abs(r[i]-1) > 1e-8 {
			t.Fatalf("residual at %d: %g", i, cmplx.Abs(r[i]-1))
		}
	}
}
