package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomTripletSystem builds random G/C triplets (with duplicate
// coordinates) plus a permutation, returning them with band widths.
func randomTripletSystem(rng *rand.Rand, n int) (gt, ct *Triplets, perm []int, kl, ku int) {
	gt, ct = NewTriplets(n), NewTriplets(n)
	for k := 0; k < 4*n; k++ {
		i := rng.Intn(n)
		j := i + rng.Intn(5) - 2
		if j < 0 || j >= n {
			j = i
		}
		gt.Add(i, j, rng.NormFloat64())
		ct.Add(i, j, rng.NormFloat64())
	}
	// Duplicate a few coordinates deliberately.
	for k := 0; k < n/2; k++ {
		i := rng.Intn(n)
		gt.Add(i, i, rng.NormFloat64())
		ct.Add(i, i, rng.NormFloat64())
	}
	perm = rng.Perm(n)
	kl, ku = PermutedBandwidth(perm, gt, ct)
	return
}

// TestCBandAssemblerMatchesTripletStamp: the planned single-pass
// assembly must reproduce the reference two-pass triplet stamp exactly,
// including after reuse at a different frequency (no Zero between
// calls) and against a different same-shape target matrix.
func TestCBandAssemblerMatchesTripletStamp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for rep := 0; rep < 10; rep++ {
		n := 4 + rng.Intn(40)
		gt, ct, perm, kl, ku := randomTripletSystem(rng, n)
		asm := NewCBandAssembler(n, kl, ku, perm, gt, ct)
		a := NewCBandMatrix(n, kl, ku)
		ref := NewCBandMatrix(n, kl, ku)
		for _, omega := range []float64{0, 1, 6.28e9, 1e-3} {
			asm.Assemble(a, omega)
			ref.Zero()
			gt.AddScaledToCBand(ref, perm, 1)
			ct.AddScaledToCBand(ref, perm, complex(0, omega))
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d := a.At(i, j) - ref.At(i, j); cmplx.Abs(d) > 1e-13*(1+cmplx.Abs(ref.At(i, j))) {
						t.Fatalf("rep %d ω=%g: (%d,%d) = %v, want %v", rep, omega, i, j, a.At(i, j), ref.At(i, j))
					}
				}
			}
		}
		if asm.NNZ() > gt.NNZ()+ct.NNZ() {
			t.Fatalf("plan has %d entries, more than the %d raw triplets", asm.NNZ(), gt.NNZ()+ct.NNZ())
		}
		// A second same-shape matrix can share the plan (per-worker
		// scratch in parallel sweeps).
		b := NewCBandMatrix(n, kl, ku)
		asm.Assemble(b, 2.5)
		asm.Assemble(a, 2.5)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a.At(i, j) != b.At(i, j) {
					t.Fatal("plan not target-independent")
				}
			}
		}
	}
}

// TestFactorLUIntoMatchesFactorLU: the scratch-reusing dense
// factorizations must agree with the allocating originals, for real
// and complex matrices, across repeated reuse.
func TestFactorLUIntoMatchesFactorLU(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var f LU
	var cf CLU
	for rep := 0; rep < 8; rep++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		ca := NewCMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			ca.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, 4)
			ca.Add(i, i, 4)
		}
		b := make([]float64, n)
		cb := make([]complex128, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			cb[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}

		ref, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Solve(b)
		if err := FactorLUInto(&f, a); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		f.SolveTo(got, b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("rep %d: real x[%d] = %g, want %g", rep, i, got[i], want[i])
			}
		}
		// Aliased solve.
		copy(got, b)
		f.SolveTo(got, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("rep %d: aliased real x[%d] = %g, want %g", rep, i, got[i], want[i])
			}
		}

		cref, err := FactorCLU(ca)
		if err != nil {
			t.Fatal(err)
		}
		cwant := cref.Solve(cb)
		if err := FactorCLUInto(&cf, ca); err != nil {
			t.Fatal(err)
		}
		cgot := make([]complex128, n)
		cf.SolveTo(cgot, cb)
		for i := range cwant {
			if cmplx.Abs(cgot[i]-cwant[i]) > 1e-10*(1+cmplx.Abs(cwant[i])) {
				t.Fatalf("rep %d: complex x[%d] = %v, want %v", rep, i, cgot[i], cwant[i])
			}
		}
	}
	// Singular matrices are reported, not mis-solved.
	z := NewMatrix(3, 3)
	if err := FactorLUInto(&f, z); err == nil {
		t.Error("singular real matrix accepted")
	}
	cz := NewCMatrix(2, 2)
	if err := FactorCLUInto(&cf, cz); err == nil {
		t.Error("singular complex matrix accepted")
	}
}
