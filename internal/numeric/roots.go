package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket reports that a root bracket could not be established.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrMaxIter reports iteration-limit exhaustion without convergence.
var ErrMaxIter = errors.New("numeric: iteration limit exceeded")

// Bisect finds a root of f in [a, b] by bisection to absolute x tolerance
// tol. f(a) and f(b) must have opposite signs (or one endpoint is a root).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if tol <= 0 {
		tol = 1e-12 * (math.Abs(a) + math.Abs(b) + 1)
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, ErrMaxIter
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must bracket a root.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if tol <= 0 {
		tol = 1e-14
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 300; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if math.Signbit(fb) != math.Signbit(fc) {
			// keep bracket [b, c]
		} else {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, ErrMaxIter
}

// Newton finds a root of f near x0 using derivative df, falling back to a
// secant step when df vanishes. It converges quadratically near simple roots.
func Newton(f, df func(float64) float64, x0, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-14
	}
	x := x0
	fx := f(x)
	for i := 0; i < 100; i++ {
		if math.Abs(fx) == 0 {
			return x, nil
		}
		d := df(x)
		var step float64
		if d != 0 && !math.IsNaN(d) && !math.IsInf(d, 0) {
			step = fx / d
		} else {
			h := 1e-7 * (math.Abs(x) + 1)
			d2 := (f(x+h) - fx) / h
			if d2 == 0 {
				return x, fmt.Errorf("numeric: Newton stalled at x=%g (zero derivative)", x)
			}
			step = fx / d2
		}
		xn := x - step
		if math.Abs(xn-x) <= tol*(math.Abs(xn)+1) {
			return xn, nil
		}
		x = xn
		fx = f(x)
	}
	return x, ErrMaxIter
}

// FindBracket expands outward from [a, b] geometrically until f changes
// sign, returning a bracketing interval. It fails after maxExpand doublings.
func FindBracket(f func(float64) float64, a, b float64, maxExpand int) (float64, float64, error) {
	if a == b {
		b = a + 1
	}
	if a > b {
		a, b = b, a
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxExpand; i++ {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		w := b - a
		if math.Abs(fa) < math.Abs(fb) {
			a -= w
			fa = f(a)
		} else {
			b += w
			fb = f(b)
		}
	}
	return 0, 0, ErrNoBracket
}
