package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, math.Sqrt2, 1e-10) {
		t.Errorf("got %g", x)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-12); err != nil || x != 0 {
		t.Errorf("endpoint a root: %g, %v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-12); err != nil || x != 0 {
		t.Errorf("endpoint b root: %g, %v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12); err == nil {
		t.Error("expected no-bracket error")
	}
}

func TestBrentTranscendental(t *testing.T) {
	// cos x = x near 0.739085...
	f := func(x float64) float64 { return math.Cos(x) - x }
	x, err := Brent(f, 0, 1, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 0.7390851332151607, 1e-12) {
		t.Errorf("got %.16g", x)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	f := func(seed float64) bool {
		c := math.Mod(math.Abs(seed), 9) + 0.5 // root location in (0.5, 9.5)
		g := func(x float64) float64 { return math.Expm1(x - c) }
		xb, err1 := Bisect(g, 0, 10, 1e-13)
		xr, err2 := Brent(g, 0, 10, 1e-13)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(xb, c, 1e-9) && almostEq(xr, c, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -3, 3, 0); err == nil {
		t.Error("expected no-bracket error")
	}
}

func TestNewton(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	x, err := Newton(f, df, 3, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 2, 1e-12) {
		t.Errorf("got %g", x)
	}
}

func TestNewtonSecantFallback(t *testing.T) {
	f := func(x float64) float64 { return x - 5 }
	df := func(x float64) float64 { return 0 } // force fallback
	x, err := Newton(f, df, 0, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 5, 1e-9) {
		t.Errorf("got %g", x)
	}
}

func TestFindBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := FindBracket(f, 0, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !(f(a) <= 0 && f(b) >= 0) {
		t.Errorf("not a bracket: [%g, %g]", a, b)
	}
	if _, _, err := FindBracket(func(x float64) float64 { return 1 }, 0, 1, 10); err == nil {
		t.Error("expected failure on sign-definite function")
	}
}

func TestFindBracketSwappedArgs(t *testing.T) {
	f := func(x float64) float64 { return x - 2 }
	a, b, err := FindBracket(f, 5, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a > b || f(a)*f(b) > 0 {
		t.Errorf("bad bracket [%g,%g]", a, b)
	}
}
