package numeric

import (
	"fmt"
	"math"
)

// PolyFit fits a least-squares polynomial of the given degree to the data
// (xs, ys) by solving the normal equations. Suitable for the low-degree
// curve fits used in the paper's model construction.
func PolyFit(xs, ys []float64, degree int) (Poly, error) {
	n := len(xs)
	if n != len(ys) {
		return Poly{}, fmt.Errorf("numeric: PolyFit length mismatch %d vs %d", n, len(ys))
	}
	if degree < 0 || n < degree+1 {
		return Poly{}, fmt.Errorf("numeric: PolyFit needs >= degree+1 points (n=%d, degree=%d)", n, degree)
	}
	m := degree + 1
	// Normal equations: (VᵀV) c = Vᵀ y with Vandermonde V.
	ata := NewMatrix(m, m)
	atb := make([]float64, m)
	pow := make([]float64, 2*m-1)
	for _, x := range xs {
		p := 1.0
		for k := range pow {
			pow[k] = p
			p *= x
		}
		_ = pow
		// accumulate
		p = 1.0
		xp := make([]float64, m)
		for k := 0; k < m; k++ {
			xp[k] = p
			p *= x
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				ata.Add(i, j, xp[i]*xp[j])
			}
		}
	}
	for idx, x := range xs {
		p := 1.0
		for k := 0; k < m; k++ {
			atb[k] += p * ys[idx]
			p *= x
		}
	}
	c, err := SolveDense(ata, atb)
	if err != nil {
		return Poly{}, fmt.Errorf("numeric: PolyFit normal equations: %w", err)
	}
	return NewPoly(c...), nil
}

// LinFit fits y ≈ a + b·x, returning (a, b).
func LinFit(xs, ys []float64) (a, b float64, err error) {
	p, err := PolyFit(xs, ys, 1)
	if err != nil {
		return 0, 0, err
	}
	a = p.Eval(0)
	b = 0
	if len(p.Coef) > 1 {
		b = p.Coef[1]
	}
	return a, b, nil
}

// PowerLawFit fits y ≈ k·x^p on positive data by linear regression in
// log-log space, returning (k, p). Points with non-positive x or y are
// rejected.
func PowerLawFit(xs, ys []float64) (k, p float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("numeric: PowerLawFit needs >=2 matched points")
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("numeric: PowerLawFit requires positive data (point %d: %g, %g)", i, xs[i], ys[i])
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	a, b, err := LinFit(lx, ly)
	if err != nil {
		return 0, 0, err
	}
	return math.Exp(a), b, nil
}

// RSquared returns the coefficient of determination of model values fs
// against observations ys.
func RSquared(ys, fs []float64) float64 {
	if len(ys) != len(fs) || len(ys) == 0 {
		panic("numeric: RSquared length mismatch")
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	ssTot, ssRes := 0.0, 0.0
	for i := range ys {
		ssTot += (ys[i] - mean) * (ys[i] - mean)
		ssRes += (ys[i] - fs[i]) * (ys[i] - fs[i])
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
