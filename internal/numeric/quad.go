package numeric

import "math"

// Integrate computes ∫f over [a,b] with adaptive Simpson quadrature to
// absolute tolerance tol. It recurses to a bounded depth, so it always
// terminates; pathological integrands degrade to best-effort accuracy.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return sign * adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// TrapzUniform integrates uniformly sampled values y with spacing h.
func TrapzUniform(y []float64, h float64) float64 {
	if len(y) < 2 {
		return 0
	}
	s := (y[0] + y[len(y)-1]) / 2
	for _, v := range y[1 : len(y)-1] {
		s += v
	}
	return s * h
}

// Trapz integrates samples (x[i], y[i]) with the trapezoid rule; x must be
// non-decreasing.
func Trapz(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("numeric: Trapz length mismatch")
	}
	s := 0.0
	for i := 1; i < len(x); i++ {
		s += (x[i] - x[i-1]) * (y[i] + y[i-1]) / 2
	}
	return s
}
