package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	p := NewPoly(1, 2, 3) // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Errorf("Eval(2) = %g", got)
	}
	if got := p.EvalC(complex(0, 1)); !almostEq(real(got), -2, 1e-15) || !almostEq(imag(got), 2, 1e-15) {
		t.Errorf("EvalC(i) = %v", got)
	}
}

func TestPolyArithmetic(t *testing.T) {
	p := NewPoly(1, 1)  // 1 + x
	q := NewPoly(-1, 1) // -1 + x
	prod := p.Mul(q)    // x² - 1
	if prod.Degree() != 2 || prod.Eval(3) != 8 {
		t.Errorf("Mul: %v", prod)
	}
	sum := p.Add(q) // 2x
	if sum.Degree() != 1 || sum.Eval(5) != 10 {
		t.Errorf("Add: %v", sum)
	}
	sc := p.Scale(3)
	if sc.Eval(1) != 6 {
		t.Errorf("Scale: %v", sc)
	}
	d := NewPoly(1, 2, 3).Derivative() // 2 + 6x
	if d.Eval(1) != 8 {
		t.Errorf("Derivative: %v", d)
	}
}

func TestPolyTrimAndZero(t *testing.T) {
	p := NewPoly(1, 0, 0)
	if p.Degree() != 0 {
		t.Errorf("trim failed: degree %d", p.Degree())
	}
	z := NewPoly(0)
	if !z.IsZero() || z.Degree() != 0 {
		t.Error("zero poly")
	}
	if !z.Mul(p).IsZero() {
		t.Error("0*p != 0")
	}
	if z.Derivative().Eval(3) != 0 {
		t.Error("d0/dx")
	}
}

func TestPolyShiftScaleArg(t *testing.T) {
	p := NewPoly(1, 2, 3) // 1 + 2x + 3x²
	q := p.ShiftScaleArg(2)
	for _, x := range []float64{-1, 0, 0.5, 2} {
		if !almostEq(q.Eval(x), p.Eval(2*x), 1e-13) {
			t.Fatalf("q(%g) != p(2*%g)", x, x)
		}
	}
}

func TestPolyString(t *testing.T) {
	s := NewPoly(1, 0, 2).String()
	if !strings.Contains(s, "s^2") || !strings.Contains(s, "1") {
		t.Errorf("String: %q", s)
	}
	if NewPoly(0).String() != "0" {
		t.Error("zero String")
	}
}

func TestRootsQuadratic(t *testing.T) {
	// (x-3)(x+5) = x² + 2x − 15
	p := NewPoly(-15, 2, 1)
	roots := p.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots", len(roots))
	}
	re := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(re)
	if !almostEq(re[0], -5, 1e-9) || !almostEq(re[1], 3, 1e-9) {
		t.Errorf("roots %v", roots)
	}
}

func TestRootsComplexPair(t *testing.T) {
	// x² + 1 → ±i
	roots := NewPoly(1, 0, 1).Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots", len(roots))
	}
	for _, r := range roots {
		if !almostEq(real(r), 0, 1e-9) || !almostEq(math.Abs(imag(r)), 1, 1e-9) {
			t.Errorf("root %v", r)
		}
	}
}

func TestRootsReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		deg := 1 + rng.Intn(8)
		roots := make([]complex128, 0, deg)
		for len(roots) < deg {
			if deg-len(roots) >= 2 && rng.Float64() < 0.5 {
				re := rng.NormFloat64() * 2
				im := math.Abs(rng.NormFloat64())*2 + 0.1
				roots = append(roots, complex(re, im), complex(re, -im))
			} else {
				roots = append(roots, complex(rng.NormFloat64()*3, 0))
			}
		}
		p := PolyFromRoots(roots)
		found := p.Roots()
		if len(found) != deg {
			t.Fatalf("trial %d: %d roots found, want %d", trial, len(found), deg)
		}
		// Each true root must be near some found root.
		for _, r := range roots {
			best := math.Inf(1)
			for _, f := range found {
				if d := cmplx.Abs(f - r); d < best {
					best = d
				}
			}
			if best > 1e-6*(cmplx.Abs(r)+1) {
				t.Fatalf("trial %d: root %v unmatched (best %g); poly %v", trial, r, best, p)
			}
		}
	}
}

func TestRootsHighDegreeLadderLike(t *testing.T) {
	// Characteristic polynomials of RC ladders have real negative,
	// closely spaced roots — a stress case for root finders.
	roots := make([]complex128, 12)
	for i := range roots {
		roots[i] = complex(-float64(i+1)*0.37, 0)
	}
	p := PolyFromRoots(roots)
	found := p.Roots()
	for _, r := range roots {
		best := math.Inf(1)
		for _, f := range found {
			if d := cmplx.Abs(f - r); d < best {
				best = d
			}
		}
		if best > 1e-4 {
			t.Fatalf("root %v unmatched, best dist %g", r, best)
		}
	}
}

func TestPolyFromRootsRealCoefficients(t *testing.T) {
	p := PolyFromRoots([]complex128{complex(-1, 2), complex(-1, -2)})
	// (x+1-2i)(x+1+2i) = x² + 2x + 5
	want := []float64{5, 2, 1}
	for i, w := range want {
		if !almostEq(p.Coef[i], w, 1e-12) {
			t.Errorf("coef[%d] = %g, want %g", i, p.Coef[i], w)
		}
	}
}

func TestRootsPropertyEvalNearZero(t *testing.T) {
	f := func(a, b, c float64) bool {
		a = math.Mod(math.Abs(a), 5) + 0.2
		b = math.Mod(b, 5)
		c = math.Mod(c, 5)
		p := NewPoly(c, b, a) // a x² + b x + c with a > 0
		for _, r := range p.Roots() {
			scale := math.Abs(a)*cmplx.Abs(r*r) + math.Abs(b)*cmplx.Abs(r) + math.Abs(c) + 1
			if cmplx.Abs(p.EvalC(r)) > 1e-7*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
