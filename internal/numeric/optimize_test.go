package numeric

import (
	"math"
	"testing"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	x := GoldenSection(f, 0, 10, 1e-10)
	if !almostEq(x, 3.7, 1e-7) {
		t.Errorf("got %g", x)
	}
}

func TestGoldenSectionSwappedInterval(t *testing.T) {
	f := func(x float64) float64 { return math.Cosh(x - 1) }
	x := GoldenSection(f, 5, -5, 1e-10)
	if !almostEq(x, 1, 1e-6) {
		t.Errorf("got %g", x)
	}
}

func TestMinimizeScalarExpandsDownhill(t *testing.T) {
	// Minimum at x = 40, far outside the initial [0, 1] interval.
	f := func(x float64) float64 { return (x - 40) * (x - 40) }
	x, fx := MinimizeScalar(f, 0, 1, 1e-9)
	if !almostEq(x, 40, 1e-5) || fx > 1e-8 {
		t.Errorf("got x=%g f=%g", x, fx)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fx := NelderMead(f, []float64{-1.2, 1}, 0.5, 1e-12, 10000)
	if !almostEq(x[0], 1, 1e-4) || !almostEq(x[1], 1, 1e-4) || fx > 1e-7 {
		t.Errorf("got %v f=%g", x, fx)
	}
}

func TestNelderMeadQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + (x[1]+3)*(x[1]+3) + 5
	}
	x, fx := NelderMead(f, []float64{0, 0}, 1, 1e-12, 5000)
	if !almostEq(x[0], 2, 1e-5) || !almostEq(x[1], -3, 1e-5) || !almostEq(fx, 5, 1e-9) {
		t.Errorf("got %v f=%g", x, fx)
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	x, fx := NelderMead(func(x []float64) float64 { return 7 }, nil, 1, 1e-9, 10)
	if x != nil || fx != 7 {
		t.Errorf("got %v %g", x, fx)
	}
}

func TestIntegrateKnown(t *testing.T) {
	got := Integrate(math.Sin, 0, math.Pi, 1e-12)
	if !almostEq(got, 2, 1e-9) {
		t.Errorf("∫sin = %g", got)
	}
	got = Integrate(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	if !almostEq(got, 1.0/3, 1e-10) {
		t.Errorf("∫x² = %g", got)
	}
}

func TestIntegrateReversedAndEmpty(t *testing.T) {
	if Integrate(math.Exp, 1, 1, 1e-9) != 0 {
		t.Error("empty interval")
	}
	a := Integrate(math.Exp, 0, 1, 1e-12)
	b := Integrate(math.Exp, 1, 0, 1e-12)
	if !almostEq(a, -b, 1e-12) {
		t.Errorf("reversal: %g vs %g", a, b)
	}
	if !almostEq(a, math.E-1, 1e-9) {
		t.Errorf("∫exp = %g", a)
	}
}

func TestTrapz(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	if got := Trapz(xs, ys); !almostEq(got, 4.5, 1e-14) {
		t.Errorf("Trapz = %g", got)
	}
	if got := TrapzUniform(ys, 1); !almostEq(got, 4.5, 1e-14) {
		t.Errorf("TrapzUniform = %g", got)
	}
	if TrapzUniform([]float64{5}, 1) != 0 {
		t.Error("single sample")
	}
}

func TestLinearInterpAndCrossing(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 20}
	if got := LinearInterp(xs, ys, 0.5); !almostEq(got, 5, 1e-14) {
		t.Errorf("interp %g", got)
	}
	if got := LinearInterp(xs, ys, -5); got != 0 {
		t.Errorf("clamp low %g", got)
	}
	if got := LinearInterp(xs, ys, 99); got != 20 {
		t.Errorf("clamp high %g", got)
	}
	x, err := InvLinearCrossing(xs, ys, 15)
	if err != nil || !almostEq(x, 1.5, 1e-14) {
		t.Errorf("crossing %g %v", x, err)
	}
	if _, err := InvLinearCrossing(xs, ys, 99); err == nil {
		t.Error("expected no-crossing error")
	}
}

func TestInvLinearCrossingExactSample(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 0.5, 1}
	x, err := InvLinearCrossing(xs, ys, 0.5)
	if err != nil || !almostEq(x, 1, 1e-14) {
		t.Errorf("got %g %v", x, err)
	}
}

func TestSplineReproducesCubic(t *testing.T) {
	// A natural spline won't exactly reproduce a cubic, but on dense knots
	// it must be close; on a parabola sampled densely it is very close.
	g := func(x float64) float64 { return 2 + 3*x - x*x }
	var xs, ys []float64
	for x := -2.0; x <= 2.0001; x += 0.1 {
		xs = append(xs, x)
		ys = append(ys, g(x))
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := -1.9; x < 1.9; x += 0.037 {
		if math.Abs(s.Eval(x)-g(x)) > 1e-3 {
			t.Fatalf("spline(%g) = %g, want %g", x, s.Eval(x), g(x))
		}
	}
}

func TestSplineTwoPointsIsLinear(t *testing.T) {
	s, err := NewSpline([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s.Eval(1), 2, 1e-14) {
		t.Errorf("got %g", s.Eval(1))
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := NewSpline([]float64{0}, []float64{1}); err == nil {
		t.Error("short data")
	}
	if _, err := NewSpline([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing knots")
	}
	if _, err := NewSpline([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch")
	}
}

func TestPolyFit(t *testing.T) {
	// Exact fit of a quadratic.
	var xs, ys []float64
	for x := -3.0; x <= 3; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, 1-2*x+0.5*x*x)
	}
	p, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0.5}
	for i, w := range want {
		if !almostEq(p.Coef[i], w, 1e-9) {
			t.Errorf("coef[%d] = %g want %g", i, p.Coef[i], w)
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Error("underdetermined")
	}
}

func TestLinFitAndPowerLaw(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // 1 + 2x
	a, b, err := LinFit(xs, ys)
	if err != nil || !almostEq(a, 1, 1e-9) || !almostEq(b, 2, 1e-9) {
		t.Errorf("LinFit a=%g b=%g err=%v", a, b, err)
	}
	// y = 4 x^1.7
	var px, py []float64
	for x := 0.5; x < 20; x *= 1.5 {
		px = append(px, x)
		py = append(py, 4*math.Pow(x, 1.7))
	}
	k, p, err := PowerLawFit(px, py)
	if err != nil || !almostEq(k, 4, 1e-9) || !almostEq(p, 1.7, 1e-9) {
		t.Errorf("PowerLawFit k=%g p=%g err=%v", k, p, err)
	}
	if _, _, err := PowerLawFit([]float64{-1, 1}, []float64{1, 1}); err == nil {
		t.Error("negative data accepted")
	}
	if _, _, err := PowerLawFit([]float64{1}, []float64{1}); err == nil {
		t.Error("short data accepted")
	}
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3}
	if RSquared(ys, ys) != 1 {
		t.Error("perfect fit should be 1")
	}
	if r := RSquared(ys, []float64{2, 2, 2}); r != 0 {
		t.Errorf("mean model should be 0, got %g", r)
	}
	if r := RSquared([]float64{5, 5}, []float64{5, 5}); r != 1 {
		t.Errorf("constant data perfect fit: %g", r)
	}
	if r := RSquared([]float64{5, 5}, []float64{4, 6}); r != 0 {
		t.Errorf("constant data misfit: %g", r)
	}
}

func TestRK4Exponential(t *testing.T) {
	// dy/dt = -y, y(0)=1 → e^{-t}.
	f := func(t float64, y, dst []float64) { dst[0] = -y[0] }
	y := RK4(f, []float64{1}, 0, 2, 2000)
	if !almostEq(y[0], math.Exp(-2), 1e-9) {
		t.Errorf("got %g", y[0])
	}
}

func TestRKF45Oscillator(t *testing.T) {
	// Harmonic oscillator: y'' = -y → (y, v). At t=2π returns to start.
	f := func(t float64, y, dst []float64) {
		dst[0] = y[1]
		dst[1] = -y[0]
	}
	calls := 0
	y, err := RKF45(f, []float64{1, 0}, 0, 2*math.Pi, 1e-11, func(r RKF45Result) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("observer never called")
	}
	if !almostEq(y[0], 1, 1e-6) || math.Abs(y[1]) > 1e-6 {
		t.Errorf("got %v", y)
	}
}

func TestRKF45ZeroSpan(t *testing.T) {
	f := func(t float64, y, dst []float64) { dst[0] = 1 }
	y, err := RKF45(f, []float64{3}, 1, 1, 1e-9, nil)
	if err != nil || y[0] != 3 {
		t.Errorf("got %v %v", y, err)
	}
}
