package numeric

import (
	"math"
	"sort"
)

// GoldenSection minimizes a unimodal function f on [a, b] to x tolerance
// tol, returning the minimizer. It is derivative-free and robust.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	if a > b {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10 * (math.Abs(a) + math.Abs(b) + 1)
	}
	const invPhi = 0.6180339887498949  // 1/φ
	const invPhi2 = 0.3819660112501051 // 1/φ²
	h := b - a
	if h <= tol {
		return (a + b) / 2
	}
	c := a + invPhi2*h
	d := a + invPhi*h
	fc, fd := f(c), f(d)
	n := int(math.Ceil(math.Log(tol/h) / math.Log(invPhi)))
	for i := 0; i < n; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			h *= invPhi
			c = a + invPhi2*h
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			h *= invPhi
			d = a + invPhi*h
			fd = f(d)
		}
	}
	if fc < fd {
		return (a + d) / 2
	}
	return (c + b) / 2
}

// MinimizeScalar brackets then golden-sections a minimum of f starting
// from the interval [lo, hi], expanding downhill if the minimum sits at an
// edge. It returns the minimizer and minimum value.
func MinimizeScalar(f func(float64) float64, lo, hi, tol float64) (xmin, fmin float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	// Expand while the edge is the best point (up to 60 doublings).
	for i := 0; i < 60; i++ {
		m := (lo + hi) / 2
		fl, fm, fh := f(lo), f(m), f(hi)
		if fm <= fl && fm <= fh {
			break
		}
		w := hi - lo
		if fl < fh {
			lo -= w
			if lo < 0 && hi > 0 {
				lo = math.SmallestNonzeroFloat64 // delay problems live on x>0
			}
		} else {
			hi += w
		}
	}
	x := GoldenSection(f, lo, hi, tol)
	return x, f(x)
}

// NelderMead minimizes f: Rⁿ → R starting from x0 with initial simplex
// scale step. It returns the best point found after maxIter iterations or
// simplex collapse below tol.
func NelderMead(f func([]float64) float64, x0 []float64, step, tol float64, maxIter int) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if step <= 0 {
		step = 0.1
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 2000
	}
	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			d := step * (math.Abs(x[i-1]) + 1)
			x[i-1] += d
		}
		simplex[i] = vertex{x: x, f: f(x)}
	}
	centroid := make([]float64, n)
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < maxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		// Convergence: simplex diameter and value spread.
		diam := 0.0
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(simplex[i].x[j] - simplex[0].x[j]); d > diam {
					diam = d
				}
			}
		}
		if diam < tol && math.Abs(simplex[n].f-simplex[0].f) < tol*(math.Abs(simplex[0].f)+1) {
			break
		}
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ { // exclude the worst
				s += simplex[i].x[j]
			}
			centroid[j] = s / float64(n)
		}
		worst := simplex[n]
		refl := make([]float64, n)
		for j := 0; j < n; j++ {
			refl[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := f(refl)
		switch {
		case fr < simplex[0].f:
			exp := make([]float64, n)
			for j := 0; j < n; j++ {
				exp[j] = centroid[j] + gamma*(refl[j]-centroid[j])
			}
			if fe := f(exp); fe < fr {
				simplex[n] = vertex{x: exp, f: fe}
			} else {
				simplex[n] = vertex{x: refl, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: refl, f: fr}
		default:
			con := make([]float64, n)
			for j := 0; j < n; j++ {
				con[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			if fc := f(con); fc < worst.f {
				simplex[n] = vertex{x: con, f: fc}
			} else {
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x, simplex[0].f
}
