package numeric

import (
	"fmt"
	"math"
)

// ODEFunc is the right-hand side of dy/dt = f(t, y). It writes the
// derivative into dst (len(dst) == len(y)) to avoid per-step allocation.
type ODEFunc func(t float64, y, dst []float64)

// RK4 integrates dy/dt = f from t0 to t1 with n fixed classical
// Runge-Kutta steps, returning the final state.
func RK4(f ODEFunc, y0 []float64, t0, t1 float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)
	h := (t1 - t0) / float64(n)
	t := t0
	for s := 0; s < n; s++ {
		f(t, y, k1)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k1[i]
		}
		f(t+h/2, tmp, k2)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k2[i]
		}
		f(t+h/2, tmp, k3)
		for i := range tmp {
			tmp[i] = y[i] + h*k3[i]
		}
		f(t+h, tmp, k4)
		for i := range y {
			y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += h
	}
	return y
}

// RKF45Result carries one accepted adaptive step's output.
type RKF45Result struct {
	T float64
	Y []float64
}

// RKF45 integrates dy/dt = f from t0 to t1 with the Runge–Kutta–Fehlberg
// 4(5) adaptive method, calling observe (if non-nil) after each accepted
// step. tol is a per-component absolute error target per step.
func RKF45(f ODEFunc, y0 []float64, t0, t1, tol float64, observe func(RKF45Result)) ([]float64, error) {
	if tol <= 0 {
		tol = 1e-9
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	t := t0
	h := (t1 - t0) / 100
	if h == 0 {
		return y, nil
	}
	hMin := (t1 - t0) * 1e-14
	k := make([][]float64, 6)
	for i := range k {
		k[i] = make([]float64, dim)
	}
	tmp := make([]float64, dim)
	y4 := make([]float64, dim)
	y5 := make([]float64, dim)
	// Fehlberg tableau.
	var (
		a = [6]float64{0, 1.0 / 4, 3.0 / 8, 12.0 / 13, 1, 1.0 / 2}
		b = [6][5]float64{
			{},
			{1.0 / 4},
			{3.0 / 32, 9.0 / 32},
			{1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197},
			{439.0 / 216, -8, 3680.0 / 513, -845.0 / 4104},
			{-8.0 / 27, 2, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40},
		}
		c4 = [6]float64{25.0 / 216, 0, 1408.0 / 2565, 2197.0 / 4104, -1.0 / 5, 0}
		c5 = [6]float64{16.0 / 135, 0, 6656.0 / 12825, 28561.0 / 56430, -9.0 / 50, 2.0 / 55}
	)
	for steps := 0; t < t1; steps++ {
		if steps > 20_000_000 {
			return y, fmt.Errorf("numeric: RKF45 exceeded step budget at t=%g", t)
		}
		if t+h > t1 {
			h = t1 - t
		}
		for s := 0; s < 6; s++ {
			copy(tmp, y)
			for j := 0; j < s; j++ {
				if b[s][j] != 0 {
					for i := range tmp {
						tmp[i] += h * b[s][j] * k[j][i]
					}
				}
			}
			f(t+a[s]*h, tmp, k[s])
		}
		errMax := 0.0
		for i := range y {
			s4, s5 := 0.0, 0.0
			for s := 0; s < 6; s++ {
				s4 += c4[s] * k[s][i]
				s5 += c5[s] * k[s][i]
			}
			y4[i] = y[i] + h*s4
			y5[i] = y[i] + h*s5
			if e := math.Abs(y5[i] - y4[i]); e > errMax {
				errMax = e
			}
		}
		if errMax <= tol || h <= hMin {
			t += h
			copy(y, y5)
			if observe != nil {
				observe(RKF45Result{T: t, Y: append([]float64(nil), y...)})
			}
		}
		// Step-size controller.
		if errMax == 0 {
			h *= 4
		} else {
			fac := 0.9 * math.Pow(tol/errMax, 0.2)
			if fac > 4 {
				fac = 4
			}
			if fac < 0.1 {
				fac = 0.1
			}
			h *= fac
			if h < hMin {
				h = hMin
			}
		}
	}
	return y, nil
}
