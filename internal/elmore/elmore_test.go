package elmore

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rlckit/internal/refeng"
	"rlckit/internal/tline"
)

func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }

func TestSingleRC(t *testing.T) {
	// One R, one C: Elmore = RC; 50% = ln2·RC exactly.
	tr, err := NewTree(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.Add(0, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tr.Delay(n)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(d, 1e-9) > 1e-12 {
		t.Errorf("ED = %g, want 1e-9", d)
	}
	d50, _ := tr.Delay50(n)
	if relErr(d50, math.Ln2*1e-9) > 1e-12 {
		t.Errorf("t50 = %g", d50)
	}
}

func TestTwoBranchTree(t *testing.T) {
	// Root —r1— a(c1), root —r2— b(c2): textbook hand computation.
	tr, _ := NewTree(100, 0)
	a, _ := tr.Add(0, 200, 1e-12)
	b, _ := tr.Add(0, 300, 2e-12)
	// Cdown(root)=3p, ED(a) = 100·3p + 200·1p = 5e-10.
	da, _ := tr.Delay(a)
	if relErr(da, 5e-10) > 1e-12 {
		t.Errorf("ED(a) = %g", da)
	}
	// ED(b) = 100·3p + 300·2p = 9e-10.
	db, _ := tr.Delay(b)
	if relErr(db, 9e-10) > 1e-12 {
		t.Errorf("ED(b) = %g", db)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewTree(-1, 0); err == nil {
		t.Error("negative driver accepted")
	}
	tr, _ := NewTree(1, 0)
	if _, err := tr.Add(5, 1, 1); err == nil {
		t.Error("bad parent accepted")
	}
	if _, err := tr.Add(0, -1, 1); err == nil {
		t.Error("negative r accepted")
	}
	if err := tr.AddCap(9, 1); err == nil {
		t.Error("bad node accepted")
	}
	if err := tr.AddCap(0, -1); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := tr.Delay(42); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := tr.Delay50(42); err == nil {
		t.Error("bad node accepted")
	}
	if _, _, err := LineTree(1000, 1e-12, 0, 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := LineTree(1000, -1, 0, 0, 5); err == nil {
		t.Error("bad ct accepted")
	}
}

func TestLineTreeConvergesToLineElmore(t *testing.T) {
	rt, ct, rtr, cl := 1000.0, 1e-12, 500.0, 5e-13
	want := LineElmore(rt, ct, rtr, cl)
	prevErr := math.Inf(1)
	for _, n := range []int{4, 16, 64, 256} {
		tr, far, err := LineTree(rt, ct, rtr, cl, n)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := tr.Delay(far)
		e := math.Abs(d - want)
		if e >= prevErr {
			t.Fatalf("n=%d: error %g did not shrink (prev %g)", n, e, prevErr)
		}
		prevErr = e
	}
	// The discrete ladder's Elmore delay is want − Rt·Ct/(2n) exactly.
	if prevErr > 1.05*1000*1e-12/(2*256) {
		t.Errorf("n=256 off by %g, want ≈ RtCt/2n = %g", prevErr, 1000*1e-12/(2*256.0))
	}
}

func TestLineElmoreMatchesMomentFormula(t *testing.T) {
	f := func(rt, ct, rtr, cl float64) bool {
		rt = math.Abs(math.Mod(rt, 1e4))
		ct = math.Abs(math.Mod(ct, 1e-11)) + 1e-15
		rtr = math.Abs(math.Mod(rtr, 1e3))
		cl = math.Abs(math.Mod(cl, 1e-12))
		want := rt*ct/2 + rt*cl + rtr*ct + rtr*cl
		return relErr(LineElmore(rt, ct, rtr, cl)+1e-300, want+1e-300) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSakuraiAgainstExactRCLine(t *testing.T) {
	// In the RC regime (negligible L), Sakurai's formula must be within
	// a few percent of the exact distributed-line delay.
	cases := []struct{ rt, ct, rtr, cl float64 }{
		{1000, 1e-12, 0, 0},
		{1000, 1e-12, 500, 5e-13},
		{2000, 2e-12, 250, 1e-12},
	}
	for _, c := range cases {
		ln := tline.FromTotals(c.rt, 1e-12*c.rt*c.ct*1e9, c.ct, 0.01) // tiny L
		d := tline.Drive{Rtr: c.rtr, CL: c.cl}
		exact, err := refeng.DelayExactTF(ln, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		sak := Sakurai50(c.rt, c.ct, c.rtr, c.cl)
		if relErr(sak, exact) > 0.05 {
			t.Errorf("case %+v: Sakurai %.4g vs exact %.4g (%.1f%%)",
				c, sak, exact, 100*relErr(sak, exact))
		}
	}
}

func TestElmoreUpperBoundsTrue50(t *testing.T) {
	// For RC lines the Elmore delay upper-bounds the true 50% delay
	// (Gupta et al.); sanity-check on a driven loaded line.
	rt, ct, rtr, cl := 1000.0, 1e-12, 500.0, 5e-13
	ln := tline.FromTotals(rt, 1e-16, ct, 0.01)
	exact, err := refeng.DelayExactTF(ln, tline.Drive{Rtr: rtr, CL: cl}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ed := LineElmore(rt, ct, rtr, cl); ed < exact {
		t.Errorf("Elmore %g below true 50%% delay %g", ed, exact)
	}
}

// TestValidationTable covers the unified validation of every Tree
// constructor and mutator, including the root-index-0 edge cases that
// previously produced inconsistent "node"/"parent" error text (and an
// AddCap that accepted NaN).
func TestValidationTable(t *testing.T) {
	newTree := func(t *testing.T) *Tree {
		t.Helper()
		tr, err := NewTree(100, 1e-15)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Add(0, 10, 1e-15); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cases := []struct {
		name    string
		run     func(tr *Tree) error
		wantErr string // substring; empty = must succeed
	}{
		{"NewTree negative r", func(*Tree) error { _, err := NewTree(-1, 0); return err }, "driver resistance"},
		{"NewTree NaN c", func(*Tree) error { _, err := NewTree(0, math.NaN()); return err }, "root capacitance"},
		{"NewTree Inf r", func(*Tree) error { _, err := NewTree(math.Inf(1), 0); return err }, "driver resistance"},
		{"Add to root", func(tr *Tree) error { _, err := tr.Add(0, 1, 1e-15); return err }, ""},
		{"Add negative parent", func(tr *Tree) error { _, err := tr.Add(-1, 1, 1e-15); return err }, "parent -1 out of range [0, 2)"},
		{"Add past end", func(tr *Tree) error { _, err := tr.Add(2, 1, 1e-15); return err }, "parent 2 out of range [0, 2)"},
		{"Add negative r", func(tr *Tree) error { _, err := tr.Add(0, -1, 1e-15); return err }, "branch resistance"},
		{"Add NaN c", func(tr *Tree) error { _, err := tr.Add(0, 1, math.NaN()); return err }, "node capacitance"},
		{"Add Inf r", func(tr *Tree) error { _, err := tr.Add(0, math.Inf(1), 0); return err }, "branch resistance"},
		{"AddCap at root", func(tr *Tree) error { return tr.AddCap(0, 1e-15) }, ""},
		{"AddCap negative node", func(tr *Tree) error { return tr.AddCap(-1, 1e-15) }, "node -1 out of range [0, 2)"},
		{"AddCap past end", func(tr *Tree) error { return tr.AddCap(2, 1e-15) }, "node 2 out of range [0, 2)"},
		{"AddCap negative", func(tr *Tree) error { return tr.AddCap(0, -1e-15) }, "load capacitance"},
		{"AddCap NaN", func(tr *Tree) error { return tr.AddCap(0, math.NaN()) }, "load capacitance"},
		{"AddCap Inf", func(tr *Tree) error { return tr.AddCap(0, math.Inf(1)) }, "load capacitance"},
		{"Delay at root", func(tr *Tree) error { _, err := tr.Delay(0); return err }, ""},
		{"Delay negative node", func(tr *Tree) error { _, err := tr.Delay(-1); return err }, "node -1 out of range [0, 2)"},
		{"Delay past end", func(tr *Tree) error { _, err := tr.Delay(2); return err }, "node 2 out of range [0, 2)"},
		{"Delay50 past end", func(tr *Tree) error { _, err := tr.Delay50(2); return err }, "node 2 out of range [0, 2)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(newTree(t))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
