// Package elmore implements the RC-only delay estimates that mainstream
// EDA flows use — the baseline the paper argues becomes inadequate as
// inductance grows.
//
// It provides a general RC-tree Elmore delay engine (first moment of the
// impulse response, Elmore 1948 [13]), the ln2-scaled 50% estimate, and
// Sakurai's closed-form 50% delay for a driven, loaded distributed RC
// line — the formula Eq. 9 collapses to when Lt → 0.
package elmore

import (
	"fmt"
	"math"
)

// Tree is an RC tree: node 0 is the root (driver node); every other
// node hangs off a parent through a resistance and carries a capacitance
// to ground. The driver resistance is modeled as the resistance into
// node 0's children or by giving node 0 itself a parent resistance via
// NewTreeWithDriver.
type Tree struct {
	parent []int
	r      []float64 // resistance from parent
	c      []float64 // capacitance to ground
	kids   [][]int
}

// checkValue validates a non-negative finite element value; what names
// the parameter in the error. Every constructor and mutator funnels
// through this (and checkNode below), so rejected values read the same
// everywhere — historically Add said "negative or NaN branch" while
// AddCap said "negative load" and silently accepted NaN.
func checkValue(what string, v float64) error {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("elmore: %s must be finite and non-negative, got %g", what, v)
	}
	return nil
}

// checkNode validates a node index; what is "parent" or "node" so the
// message names the argument, and the valid range (which always
// includes the root, index 0) is spelled out.
func (t *Tree) checkNode(what string, n int) error {
	if n < 0 || n >= len(t.parent) {
		return fmt.Errorf("elmore: %s %d out of range [0, %d)", what, n, len(t.parent))
	}
	return nil
}

// NewTree returns a tree with a single root node of capacitance cRoot
// fed through rDriver (the driver's output resistance).
func NewTree(rDriver, cRoot float64) (*Tree, error) {
	if err := checkValue("driver resistance", rDriver); err != nil {
		return nil, err
	}
	if err := checkValue("root capacitance", cRoot); err != nil {
		return nil, err
	}
	return &Tree{
		parent: []int{-1},
		r:      []float64{rDriver},
		c:      []float64{cRoot},
		kids:   [][]int{nil},
	}, nil
}

// Add appends a node under parent with branch resistance r and node
// capacitance c, returning its index.
func (t *Tree) Add(parent int, r, c float64) (int, error) {
	if err := t.checkNode("parent", parent); err != nil {
		return 0, err
	}
	if err := checkValue("branch resistance", r); err != nil {
		return 0, err
	}
	if err := checkValue("node capacitance", c); err != nil {
		return 0, err
	}
	id := len(t.parent)
	t.parent = append(t.parent, parent)
	t.r = append(t.r, r)
	t.c = append(t.c, c)
	t.kids = append(t.kids, nil)
	t.kids[parent] = append(t.kids[parent], id)
	return id, nil
}

// Len returns the node count.
func (t *Tree) Len() int { return len(t.parent) }

// AddCap adds extra capacitance (e.g. a receiver load) at a node.
func (t *Tree) AddCap(node int, c float64) error {
	if err := t.checkNode("node", node); err != nil {
		return err
	}
	if err := checkValue("load capacitance", c); err != nil {
		return err
	}
	t.c[node] += c
	return nil
}

// downstreamCap returns, for every node, the total capacitance at and
// below it.
func (t *Tree) downstreamCap() []float64 {
	n := len(t.parent)
	sum := append([]float64(nil), t.c...)
	// Children have larger indices than parents (construction order), so
	// one reverse sweep accumulates subtrees.
	for i := n - 1; i >= 1; i-- {
		sum[t.parent[i]] += sum[i]
	}
	return sum
}

// Delays returns the Elmore delay from the source to every node:
// ED(i) = Σ_{j on path root→i} r_j · Cdown(j).
func (t *Tree) Delays() []float64 {
	down := t.downstreamCap()
	out := make([]float64, len(t.parent))
	for i := range t.parent {
		if i == 0 {
			out[0] = t.r[0] * down[0]
			continue
		}
		out[i] = out[t.parent[i]] + t.r[i]*down[i]
	}
	return out
}

// Delay returns the Elmore delay to one node.
func (t *Tree) Delay(node int) (float64, error) {
	if err := t.checkNode("node", node); err != nil {
		return 0, err
	}
	return t.Delays()[node], nil
}

// Delay50 returns the common ln2-scaled 50% estimate 0.693·ED(node),
// exact for a single-pole response and conservative for RC trees.
func (t *Tree) Delay50(node int) (float64, error) {
	d, err := t.Delay(node)
	if err != nil {
		return 0, err
	}
	return math.Ln2 * d, nil
}

// LineTree builds the RC tree of a driven distributed line discretized
// into n segments, returning the tree and the far-end node index.
func LineTree(rt, ct, rtr, cl float64, n int) (*Tree, int, error) {
	if n < 1 {
		return nil, 0, fmt.Errorf("elmore: need n >= 1 segments, got %d", n)
	}
	if rt < 0 || ct <= 0 || rtr < 0 || cl < 0 {
		return nil, 0, fmt.Errorf("elmore: bad line (rt=%g ct=%g rtr=%g cl=%g)", rt, ct, rtr, cl)
	}
	tr, err := NewTree(rtr, 0)
	if err != nil {
		return nil, 0, err
	}
	node := 0
	for i := 0; i < n; i++ {
		node, err = tr.Add(node, rt/float64(n), ct/float64(n))
		if err != nil {
			return nil, 0, err
		}
	}
	if err := tr.AddCap(node, cl); err != nil {
		return nil, 0, err
	}
	return tr, node, nil
}

// LineElmore returns the exact (continuum) Elmore delay of the driven,
// loaded distributed RC line:
//
//	ED = Rt·Ct/2 + Rt·CL + Rtr·Ct + Rtr·CL
//
// which LineTree converges to as n → ∞, and which equals the first
// transfer-function moment b1 in internal/core.
func LineElmore(rt, ct, rtr, cl float64) float64 {
	return rt*ct/2 + rt*cl + rtr*ct + rtr*cl
}

// Sakurai50 returns Sakurai's closed-form 50% delay for a driven,
// loaded distributed RC line [3]:
//
//	t50 ≈ 0.377·Rt·Ct + 0.693·(Rtr·Ct + Rtr·CL + Rt·CL)
//
// This is the industry-standard RC formula the paper's Eq. 9 replaces;
// comparing it against RLC references quantifies the cost of ignoring
// inductance in timing analysis.
func Sakurai50(rt, ct, rtr, cl float64) float64 {
	return 0.377*rt*ct + 0.693*(rtr*ct+rtr*cl+rt*cl)
}
