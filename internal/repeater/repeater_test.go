package repeater

import (
	"math"
	"testing"

	"rlckit/internal/tline"
)

// testBuffer is a plausible deep-submicron minimum buffer: R0·C0 = 1 ps.
var testBuffer = Buffer{R0: 1000, C0: 1e-15}

// lineWithTLR builds a 1 cm, Ct = 1 pF, Rt = 1 kΩ line whose inductance
// is chosen to produce the requested T_{L/R} against testBuffer.
func lineWithTLR(tlr float64) tline.Line {
	rt := 1000.0
	lt := tlr * testBuffer.R0 * testBuffer.C0 * rt
	if lt == 0 {
		lt = 1e-15 // T≈0 but still a valid RLC line
	}
	return tline.FromTotals(rt, lt, 1e-12, 0.01)
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }

func TestBufferValidate(t *testing.T) {
	if err := testBuffer.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Buffer{
		{R0: 0, C0: 1e-15},
		{R0: 1000, C0: 0},
		{R0: math.NaN(), C0: 1e-15},
		{R0: 1000, C0: 1e-15, Amin: -1},
		{R0: 1000, C0: 1e-15, Vdd: -2},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad buffer %d accepted", i)
		}
	}
}

func TestTLR(t *testing.T) {
	ln := lineWithTLR(5)
	got, err := TLR(ln, testBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 5) > 1e-9 {
		t.Errorf("TLR = %g, want 5", got)
	}
	if _, err := TLR(tline.Line{}, testBuffer); err == nil {
		t.Error("bad line accepted")
	}
	if _, err := TLR(ln, Buffer{}); err == nil {
		t.Error("bad buffer accepted")
	}
	lossless := tline.FromTotals(0, 1e-8, 1e-12, 0.01)
	v, err := TLR(lossless, testBuffer)
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("lossless TLR = %g, %v (want +Inf)", v, err)
	}
}

func TestBakogluKnownValues(t *testing.T) {
	ln := lineWithTLR(0)
	h, k, err := BakogluHK(ln, testBuffer)
	if err != nil {
		t.Fatal(err)
	}
	// h = sqrt(R0·Ct/(Rt·C0)) = sqrt(1000·1e-12/(1000·1e-15)) = sqrt(1000).
	if relErr(h, math.Sqrt(1000)) > 1e-12 {
		t.Errorf("h = %g", h)
	}
	// k = sqrt(Rt·Ct/(2R0C0)) = sqrt(1e-9/2e-12) = sqrt(500).
	if relErr(k, math.Sqrt(500)) > 1e-12 {
		t.Errorf("k = %g", k)
	}
	if _, _, err := BakogluHK(tline.FromTotals(0, 1e-8, 1e-12, 0.01), testBuffer); err == nil {
		t.Error("lossless Bakoglu accepted")
	}
}

func TestErrorFactors(t *testing.T) {
	hp, kp := ErrorFactors(0)
	if hp != 1 || kp != 1 {
		t.Errorf("T=0 factors %g, %g", hp, kp)
	}
	hpNeg, kpNeg := ErrorFactors(-3)
	if hpNeg != 1 || kpNeg != 1 {
		t.Error("negative T should clamp to 0")
	}
	prevH, prevK := 1.0, 1.0
	for tlr := 0.5; tlr <= 10; tlr += 0.5 {
		hp, kp := ErrorFactors(tlr)
		if hp >= prevH || kp >= prevK {
			t.Fatalf("factors not decreasing at T=%g", tlr)
		}
		if hp <= 0 || kp <= 0 {
			t.Fatalf("factors must stay positive")
		}
		prevH, prevK = hp, kp
	}
}

func TestAreaIncreasePaperAnchors(t *testing.T) {
	// Paper: "%area increase for TL/R = 3 is 154% and for TL/R = 5 is
	// 435%" — our Eq. 18 transcription must hit these exactly.
	if got := AreaIncrease(3); math.Abs(got-154) > 1 {
		t.Errorf("AreaIncrease(3) = %.1f%%, want ≈154%%", got)
	}
	if got := AreaIncrease(5); math.Abs(got-435) > 2 {
		t.Errorf("AreaIncrease(5) = %.1f%%, want ≈435%%", got)
	}
	if AreaIncrease(0) != 0 {
		t.Error("AreaIncrease(0) should be 0")
	}
	if AreaIncrease(-1) != 0 {
		t.Error("negative T should clamp")
	}
}

func TestClosedFormReducesToBakoglu(t *testing.T) {
	ln := lineWithTLR(0)
	hRC, kRC, _ := BakogluHK(ln, testBuffer)
	h, k, err := ClosedFormHK(ln, testBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(h, hRC) > 1e-6 || relErr(k, kRC) > 1e-6 {
		t.Errorf("T→0: (%g, %g) vs Bakoglu (%g, %g)", h, k, hRC, kRC)
	}
}

func TestKoptDecreasesWithInductance(t *testing.T) {
	// Paper: "as inductance effects increase, the optimum number of
	// repeaters ... decreases."
	prev := math.Inf(1)
	for _, tlr := range []float64{0, 1, 2, 4, 8} {
		_, k, err := ClosedFormHK(lineWithTLR(tlr), testBuffer)
		if err != nil {
			t.Fatal(err)
		}
		if k >= prev {
			t.Fatalf("k_opt did not decrease at T=%g (%g >= %g)", tlr, k, prev)
		}
		prev = k
	}
}

func TestClosedFormOptimalAtZeroT(t *testing.T) {
	// At T ≈ 0 (vanishing inductance) the Eq. 9 objective reduces to the
	// RC expression whose analytic optimum is Bakoglu's solution — the
	// closed form must sit at the numerical optimum of that objective.
	ln := lineWithTLR(0)
	h, k, err := ClosedFormHK(ln, testBuffer)
	if err != nil {
		t.Fatal(err)
	}
	dClosed, err := TotalDelay(ln, testBuffer, h, k)
	if err != nil {
		t.Fatal(err)
	}
	_, _, dOpt, err := OptimizeEq9(ln, testBuffer)
	if err != nil {
		t.Fatal(err)
	}
	gap := (dClosed - dOpt) / dOpt
	if gap < -1e-9 || gap > 1e-3 {
		t.Errorf("T=0: closed form %.5g%% above Eq.9 optimum", gap*100)
	}
}

func TestClosedFormNearTrueOptimumModerateT(t *testing.T) {
	// Against the exact-engine optimum, the closed-form plan's delay
	// penalty stays small in the practically relevant T ≤ 3 regime
	// (measured: ≈0.6% at T=1, ≈2.7% at T=3).
	for _, tlr := range []float64{1, 3} {
		ln := lineWithTLR(tlr)
		h, k, err := ClosedFormHK(ln, testBuffer)
		if err != nil {
			t.Fatal(err)
		}
		dClosed, err := TrueTotalDelay(ln, testBuffer, h, k)
		if err != nil {
			t.Fatal(err)
		}
		_, _, dOpt, err := OptimizeTrue(ln, testBuffer)
		if err != nil {
			t.Fatal(err)
		}
		gap := (dClosed - dOpt) / dOpt
		if gap < -0.002 {
			t.Errorf("T=%g: closed form beat the true optimizer by %.3g%% — optimizer failed", tlr, -gap*100)
		}
		if gap > 0.05 {
			t.Errorf("T=%g: closed-form delay %.3g%% above true optimum (want ≤5%%)", tlr, gap*100)
		}
	}
}

func TestDelayIncreaseAnchors(t *testing.T) {
	// Paper anchors: 10%/20%/30% at T = 3/5/10. Measured with the exact
	// engine: RC-vs-closed-form (Eq. 16) gives ≈+5% at T=3 and ≈+3% at
	// T=5 (and inverts at large T where Eq. 15 over-shrinks k);
	// RC-vs-true-optimum preserves the paper's monotone shape at ≈60%
	// magnitude. Both are recorded in EXPERIMENTS.md; here we pin the
	// measured behaviour.
	got3, err := DelayIncrease(lineWithTLR(3), testBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if got3 < 2 || got3 > 10 {
		t.Errorf("DelayIncrease(T=3) = %.1f%%, expected ≈5%%", got3)
	}
	// The paper's closed-form Eq. 17 fit must hit the paper's anchors.
	anchors := []struct{ tlr, want float64 }{{3, 10}, {5, 20}, {10, 30}}
	for _, a := range anchors {
		if ap := DelayIncreaseApprox(a.tlr); math.Abs(ap-a.want) > 2 {
			t.Errorf("DelayIncreaseApprox(%g) = %.1f%%, want ≈%.0f%%", a.tlr, ap, a.want)
		}
	}
	if DelayIncreaseApprox(-1) != DelayIncreaseApprox(0) {
		t.Error("negative T should clamp")
	}
}

func TestDelayIncreaseVsOptimumMonotone(t *testing.T) {
	prev := -1.0
	for _, tlr := range []float64{1, 3, 5} {
		got, err := DelayIncreaseVsOptimum(lineWithTLR(tlr), testBuffer)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-0.5 { // small numerical slack
			t.Fatalf("increase vs optimum fell at T=%g: %.2f%% after %.2f%%", tlr, got, prev)
		}
		if got < -0.3 {
			t.Fatalf("RC design beat the true optimum at T=%g (%.3f%%)", tlr, got)
		}
		prev = got
	}
	if prev < 5 {
		t.Errorf("increase vs optimum at T=5 only %.1f%%, expected ≳10%%", prev)
	}
}

func TestDesignPlans(t *testing.T) {
	ln := lineWithTLR(5)
	for _, m := range []Model{RLC, RC} {
		p, err := Design(ln, testBuffer, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if p.H <= 0 || p.K <= 0 || p.KInt < 1 || p.HForKInt <= 0 {
			t.Errorf("%v: degenerate plan %+v", m, p)
		}
		if p.TotalDelay <= 0 || p.TotalDelayInt <= 0 {
			t.Errorf("%v: non-positive delays %+v", m, p)
		}
		if p.Area <= 0 || p.AreaInt <= 0 || p.SwitchEnergy <= 0 {
			t.Errorf("%v: non-positive costs %+v", m, p)
		}
		if math.Abs(p.TLR-5) > 1e-6 {
			t.Errorf("%v: TLR = %g", m, p.TLR)
		}
	}
	rc, _ := Design(ln, testBuffer, RC)
	rlc, _ := Design(ln, testBuffer, RLC)
	// Grade both plans with the exact engine: at T=5 the RLC-aware plan
	// must be at least as fast.
	dRC, err := TrueTotalDelay(ln, testBuffer, rc.H, rc.K)
	if err != nil {
		t.Fatal(err)
	}
	dRLC, err := TrueTotalDelay(ln, testBuffer, rlc.H, rlc.K)
	if err != nil {
		t.Fatal(err)
	}
	if dRC < dRLC {
		t.Error("RC-designed delay beat RLC-designed delay (true engine)")
	}
	if rc.Area < rlc.Area {
		t.Error("RC design should use more repeater area")
	}
	if rc.SwitchEnergy < rlc.SwitchEnergy {
		t.Error("RC design should burn more switching energy")
	}
	if _, err := Design(ln, testBuffer, Model(7)); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestModelString(t *testing.T) {
	if RLC.String() != "RLC" || RC.String() != "RC" || Model(7).String() == "" {
		t.Error("model strings")
	}
}

func TestSectionDelayValidation(t *testing.T) {
	ln := lineWithTLR(1)
	if _, err := SectionDelay(ln, testBuffer, 0, 3); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := SectionDelay(ln, testBuffer, 3, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TotalDelay(tline.Line{}, testBuffer, 1, 1); err == nil {
		t.Error("bad line accepted")
	}
	if _, err := TotalDelay(ln, Buffer{}, 1, 1); err == nil {
		t.Error("bad buffer accepted")
	}
}

func TestEnergyIncreasePositive(t *testing.T) {
	got, err := EnergyIncrease(lineWithTLR(5), testBuffer)
	if err != nil {
		t.Fatal(err)
	}
	// RC designs use several times more buffer capacitance at T=5; the
	// energy increase must be substantial and positive.
	if got < 10 {
		t.Errorf("EnergyIncrease(T=5) = %.1f%%, expected sizeable positive", got)
	}
}

func TestRepeatersHurtLCLines(t *testing.T) {
	// Paper: for an LC-dominated line the delay is linear in length, so
	// partitioning adds gate delay without reducing line delay — one
	// section must beat a multi-repeater plan under the exact engine.
	ln := tline.FromTotals(50, 2e-8, 1e-12, 0.01) // ζ(unloaded) ≈ 0.09
	h := 40.0
	d1, err := TrueTotalDelay(ln, testBuffer, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := TrueTotalDelay(ln, testBuffer, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d8 < d1 {
		t.Errorf("partitioning an LC line helped: k=8 gives %.4g < k=1 gives %.4g", d8, d1)
	}
}
