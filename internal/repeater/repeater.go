// Package repeater implements Section III of the paper: optimum repeater
// insertion in RLC interconnect.
//
// A line of total impedances (Rt, Lt, Ct) is divided into k equal
// sections, each driven by a buffer h times larger than a minimum-size
// buffer with output resistance R0 and input capacitance C0 (Fig. 3).
// Each section therefore sees a driver resistance R0/h, a load
// capacitance h·C0, and line impedances (Rt/k, Lt/k, Ct/k); the total
// delay is k times the Eq. 9 section delay.
//
// The paper's closed forms, reducing to Bakoglu's RC solution at
// T_{L/R} → 0:
//
//	T_{L/R} = (Lt/Rt)/(R0·C0)                                (Eq. 13)
//	h_opt = sqrt(R0·Ct/(Rt·C0)) / [1+0.16·T³]^0.24           (Eq. 14)
//	k_opt = sqrt(Rt·Ct/(2·R0·C0)) / [1+0.18·T³]^0.3          (Eq. 15)
//
// plus the cost of ignoring inductance:
//
//	%delay increase (RC-designed repeaters on an RLC line)   (Eq. 16/17)
//	%area increase  = 100·([1+0.18T³]^0.3·[1+0.16T³]^0.24−1) (Eq. 18)
package repeater

import (
	"errors"
	"fmt"
	"math"

	"rlckit/internal/core"
	"rlckit/internal/numeric"
	"rlckit/internal/refeng"
	"rlckit/internal/tline"
)

// Buffer characterizes the minimum-size repeater of a technology.
type Buffer struct {
	// R0 is the minimum-size buffer output resistance in ohms.
	R0 float64
	// C0 is the minimum-size buffer input capacitance in farads.
	C0 float64
	// Amin is the minimum buffer area (any consistent unit; defaults
	// to 1 so areas read as multiples of a minimum buffer).
	Amin float64
	// Vdd is the supply voltage for energy estimates (default 1 V).
	Vdd float64
}

// Validate checks buffer parameters.
func (b Buffer) Validate() error {
	if b.R0 <= 0 || math.IsNaN(b.R0) || math.IsInf(b.R0, 0) {
		return fmt.Errorf("repeater: R0 must be positive, got %g", b.R0)
	}
	if b.C0 <= 0 || math.IsNaN(b.C0) || math.IsInf(b.C0, 0) {
		return fmt.Errorf("repeater: C0 must be positive, got %g", b.C0)
	}
	if b.Amin < 0 || b.Vdd < 0 {
		return errors.New("repeater: Amin and Vdd must be non-negative")
	}
	return nil
}

func (b Buffer) amin() float64 {
	if b.Amin == 0 {
		return 1
	}
	return b.Amin
}

func (b Buffer) vdd() float64 {
	if b.Vdd == 0 {
		return 1
	}
	return b.Vdd
}

// TLR returns the inductance figure of merit T_{L/R} (Eq. 13).
func TLR(ln tline.Line, b Buffer) (float64, error) {
	if err := ln.Validate(); err != nil {
		return 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, err
	}
	rt, lt, _ := ln.Totals()
	if rt == 0 {
		return math.Inf(1), nil
	}
	return (lt / rt) / (b.R0 * b.C0), nil
}

// ErrorFactors returns the paper's inductance correction factors
// h′(T) = [1+0.16T³]^−0.24 and k′(T) = [1+0.18T³]^−0.3 (Fig. 4), both 1
// at T = 0 and decreasing in T.
func ErrorFactors(tlr float64) (hp, kp float64) {
	if tlr < 0 {
		tlr = 0
	}
	t3 := tlr * tlr * tlr
	hp = math.Pow(1+0.16*t3, -0.24)
	kp = math.Pow(1+0.18*t3, -0.3)
	return hp, kp
}

// BakogluHK returns the classic RC-optimal repeater size and count
// (Eq. 11): h = sqrt(R0·Ct/(Rt·C0)), k = sqrt(Rt·Ct/(2·R0·C0)).
func BakogluHK(ln tline.Line, b Buffer) (h, k float64, err error) {
	if err := ln.Validate(); err != nil {
		return 0, 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, 0, err
	}
	rt, _, ct := ln.Totals()
	if rt == 0 {
		return 0, 0, errors.New("repeater: Bakoglu solution undefined for a lossless line (Rt = 0)")
	}
	h = math.Sqrt(b.R0 * ct / (rt * b.C0))
	k = math.Sqrt(rt * ct / (2 * b.R0 * b.C0))
	return h, k, nil
}

// ClosedFormHK returns the paper's RLC-optimal repeater size and count
// (Eqs. 14 and 15).
func ClosedFormHK(ln tline.Line, b Buffer) (h, k float64, err error) {
	hRC, kRC, err := BakogluHK(ln, b)
	if err != nil {
		return 0, 0, err
	}
	t, err := TLR(ln, b)
	if err != nil {
		return 0, 0, err
	}
	hp, kp := ErrorFactors(t)
	return hRC * hp, kRC * kp, nil
}

// SectionDelay returns the Eq. 9 delay of one of k sections with
// repeaters of size h (Eq. 19/20 of the appendix).
func SectionDelay(ln tline.Line, b Buffer, h, k float64) (float64, error) {
	if h <= 0 || k <= 0 {
		return 0, fmt.Errorf("repeater: h and k must be positive (h=%g, k=%g)", h, k)
	}
	rt, lt, ct := ln.Totals()
	return core.DelayTotals(rt/k, lt/k, ct/k, b.R0/h, h*b.C0)
}

// TotalDelay returns the total repeater-system delay k·t_pd,section for
// an arbitrary (h, k).
func TotalDelay(ln tline.Line, b Buffer, h, k float64) (float64, error) {
	if err := ln.Validate(); err != nil {
		return 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, err
	}
	sec, err := SectionDelay(ln, b, h, k)
	if err != nil {
		return 0, err
	}
	return k * sec, nil
}

// OptimizeEq9 minimizes the Eq. 9-based total delay over continuous
// (h, k) > 0 by Nelder–Mead in log space, seeded at the closed-form
// solution — the optimization problem the paper's appendix poses.
//
// Reproduction note: because Eq. 9 depends on the section only through
// ζ, the k·(1/ωnsec) product makes section count nearly free as ζsec→0
// (each section costs only its time of flight), so for large T_{L/R}
// this objective is minimized at *larger* k than Eqs. 14/15 predict.
// The physically meaningful optimum — which penalizes each extra
// repeater's gate-charging time that Eq. 9's ζ-only fit washes out — is
// OptimizeTrue. See EXPERIMENTS.md (E3/E4) for the measured comparison.
func OptimizeEq9(ln tline.Line, b Buffer) (h, k, delay float64, err error) {
	h0, k0, err := ClosedFormHK(ln, b)
	if err != nil {
		return 0, 0, 0, err
	}
	if k0 < 1e-3 {
		k0 = 1e-3
	}
	obj := func(x []float64) float64 {
		hh, kk := math.Exp(x[0]), math.Exp(x[1])
		d, err2 := TotalDelay(ln, b, hh, kk)
		if err2 != nil {
			return math.Inf(1)
		}
		return d
	}
	x, fx := numeric.NelderMead(obj, []float64{math.Log(h0), math.Log(k0)}, 0.35, 1e-13, 4000)
	return math.Exp(x[0]), math.Exp(x[1]), fx, nil
}

// TrueTotalDelay evaluates the repeater system with the exact
// transmission-line engine instead of Eq. 9: k times the
// numerically-inverted exact section delay. It is the reference that
// grades both repeater design models.
func TrueTotalDelay(ln tline.Line, b Buffer, h, k float64) (float64, error) {
	if err := ln.Validate(); err != nil {
		return 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if h <= 0 || k <= 0 {
		return 0, fmt.Errorf("repeater: h and k must be positive (h=%g, k=%g)", h, k)
	}
	rt, lt, ct := ln.Totals()
	sec := tline.FromTotals(rt/k, lt/k, ct/k, ln.Length/k)
	d := tline.Drive{Rtr: b.R0 / h, CL: h * b.C0}
	v, err := refeng.DelayExactTF(sec, d, 0)
	if err != nil {
		return 0, err
	}
	return k * v, nil
}

// OptimizeTrue minimizes TrueTotalDelay over continuous (h, k) > 0,
// seeded at the closed-form solution. This is the physics-grounded
// optimum; the measured k′(T) = k_opt/k_opt(RC) curves it produces have
// the paper's qualitative shape (fewer repeaters as inductance grows)
// but decrease less steeply than Eq. 15 at large T_{L/R}.
func OptimizeTrue(ln tline.Line, b Buffer) (h, k, delay float64, err error) {
	h0, k0, err := ClosedFormHK(ln, b)
	if err != nil {
		return 0, 0, 0, err
	}
	if k0 < 0.5 {
		k0 = 0.5
	}
	obj := func(x []float64) float64 {
		d, err2 := TrueTotalDelay(ln, b, math.Exp(x[0]), math.Exp(x[1]))
		if err2 != nil {
			return math.Inf(1)
		}
		return d
	}
	x, fx := numeric.NelderMead(obj, []float64{math.Log(h0), math.Log(k0)}, 0.6, 1e-9, 400)
	return math.Exp(x[0]), math.Exp(x[1]), fx, nil
}

// Plan is a complete repeater insertion design.
type Plan struct {
	// H is the buffer size multiple; K the section count (continuous).
	H, K float64
	// KInt is K rounded to the best integer >= 1 with H re-optimized.
	KInt int
	// HForKInt is the re-optimized size for KInt sections.
	HForKInt float64
	// TLR is the line's inductance figure of merit.
	TLR float64
	// TotalDelay is the continuous-optimum total delay in seconds;
	// TotalDelayInt is the delay of the integer plan.
	TotalDelay, TotalDelayInt float64
	// Area is H·K·Amin (continuous); AreaInt uses the integer plan.
	Area, AreaInt float64
	// SwitchEnergy is the energy per output transition of the integer
	// plan: (Ct + CL_buffers)·Vdd² with CL_buffers = KInt·HForKInt·C0.
	SwitchEnergy float64
}

// Model selects which impedance model a Design call uses for (h, k).
type Model int

// Design models.
const (
	// RLC uses the paper's closed forms (Eqs. 14/15).
	RLC Model = iota
	// RC ignores inductance (Bakoglu, Eq. 11) — the baseline whose cost
	// Eqs. 16-18 quantify.
	RC
)

func (m Model) String() string {
	switch m {
	case RLC:
		return "RLC"
	case RC:
		return "RC"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Design produces a repeater plan for the line under the given model.
// Note the delay reported is always evaluated with the full RLC delay
// model (Eq. 9) — designing with RC and evaluating with RLC is exactly
// the paper's Eq. 16 scenario.
func Design(ln tline.Line, b Buffer, m Model) (Plan, error) {
	var h, k float64
	var err error
	switch m {
	case RLC:
		h, k, err = ClosedFormHK(ln, b)
	case RC:
		h, k, err = BakogluHK(ln, b)
	default:
		return Plan{}, fmt.Errorf("repeater: unknown model %v", m)
	}
	if err != nil {
		return Plan{}, err
	}
	t, err := TLR(ln, b)
	if err != nil {
		return Plan{}, err
	}
	p := Plan{H: h, K: k, TLR: t}
	if p.TotalDelay, err = TotalDelay(ln, b, h, k); err != nil {
		return Plan{}, err
	}
	p.Area = h * k * b.amin()

	// Integer plan: try floor and ceil of k (>= 1), re-optimize h for
	// each by golden section, keep the faster.
	best := math.Inf(1)
	for _, ki := range []int{int(math.Floor(k)), int(math.Ceil(k))} {
		if ki < 1 {
			ki = 1
		}
		hOpt := optimizeHForK(ln, b, float64(ki), h)
		d, err2 := TotalDelay(ln, b, hOpt, float64(ki))
		if err2 != nil {
			continue
		}
		if d < best {
			best = d
			p.KInt = ki
			p.HForKInt = hOpt
			p.TotalDelayInt = d
		}
	}
	if math.IsInf(best, 1) {
		return Plan{}, errors.New("repeater: no feasible integer plan")
	}
	p.AreaInt = float64(p.KInt) * p.HForKInt * b.amin()
	_, _, ct := ln.Totals()
	v := b.vdd()
	p.SwitchEnergy = (ct + float64(p.KInt)*p.HForKInt*b.C0) * v * v
	return p, nil
}

// optimizeHForK minimizes total delay over h at fixed k.
func optimizeHForK(ln tline.Line, b Buffer, k, hSeed float64) float64 {
	obj := func(lh float64) float64 {
		d, err := TotalDelay(ln, b, math.Exp(lh), k)
		if err != nil {
			return math.Inf(1)
		}
		return d
	}
	l0 := math.Log(hSeed)
	x, _ := numeric.MinimizeScalar(obj, l0-1.5, l0+1.5, 1e-10)
	return math.Exp(x)
}

// DelayIncrease computes Eq. 16 with the exact line engine: the
// percentage increase in total delay from designing the repeaters with
// the RC model (Eq. 11) instead of the RLC closed forms (Eqs. 14/15),
// with both systems evaluated by TrueTotalDelay.
func DelayIncrease(ln tline.Line, b Buffer) (float64, error) {
	hRC, kRC, err := BakogluHK(ln, b)
	if err != nil {
		return 0, err
	}
	hC, kC, err := ClosedFormHK(ln, b)
	if err != nil {
		return 0, err
	}
	dRC, err := TrueTotalDelay(ln, b, hRC, kRC)
	if err != nil {
		return 0, err
	}
	dRLC, err := TrueTotalDelay(ln, b, hC, kC)
	if err != nil {
		return 0, err
	}
	return 100 * (dRC - dRLC) / dRLC, nil
}

// DelayIncreaseVsOptimum is the sharper question behind Eq. 16: how much
// slower is the RC-designed (Bakoglu) repeater system than the *true*
// inductance-aware optimum, with both evaluated by the exact engine.
// This is monotone in T_{L/R} (measured ≈ +8% at T=3, +13% at T=5,
// +19% at T=10 for the canonical test line — same shape as the paper's
// 10/20/30%, at roughly 60% of the magnitude).
func DelayIncreaseVsOptimum(ln tline.Line, b Buffer) (float64, error) {
	hRC, kRC, err := BakogluHK(ln, b)
	if err != nil {
		return 0, err
	}
	dRC, err := TrueTotalDelay(ln, b, hRC, kRC)
	if err != nil {
		return 0, err
	}
	_, _, dOpt, err := OptimizeTrue(ln, b)
	if err != nil {
		return 0, err
	}
	return 100 * (dRC - dOpt) / dOpt, nil
}

// DelayIncreaseApprox is the closed-form fit of the Eq. 16 curve as a
// function of T_{L/R} alone (the paper's Eq. 17; the printed equation is
// OCR-damaged, so this fit was re-derived against the paper's stated
// anchor values ≈10% at T=3, ≈20% at T=5 and ≈30% at T=10):
//
//	%Increase(T) ≈ 30 / (1 + 0.5·e^(−T/4) + 23·e^(−0.8·T))
func DelayIncreaseApprox(tlr float64) float64 {
	if tlr < 0 {
		tlr = 0
	}
	return 30 / (1 + 0.5*math.Exp(-tlr/4) + 23*math.Exp(-0.8*tlr))
}

// AreaIncrease returns Eq. 18: the percentage extra repeater area an
// RC-model design uses relative to the RLC design,
// %AI = 100·{[1+0.18T³]^0.3 · [1+0.16T³]^0.24 − 1}.
func AreaIncrease(tlr float64) float64 {
	if tlr < 0 {
		tlr = 0
	}
	hp, kp := ErrorFactors(tlr)
	return 100 * (1/(hp*kp) - 1)
}

// EnergyIncrease returns the percentage extra switching energy of the
// RC-designed repeater system relative to the RLC design — the paper's
// qualitative power claim, quantified with the (Ct + k·h·C0)·Vdd² model.
func EnergyIncrease(ln tline.Line, b Buffer) (float64, error) {
	rcPlan, err := Design(ln, b, RC)
	if err != nil {
		return 0, err
	}
	rlcPlan, err := Design(ln, b, RLC)
	if err != nil {
		return 0, err
	}
	return 100 * (rcPlan.SwitchEnergy - rlcPlan.SwitchEnergy) / rlcPlan.SwitchEnergy, nil
}
