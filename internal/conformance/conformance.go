// Package conformance is rlckit's differential cross-engine test
// harness: seeded, generator-driven corpora of random driven lines AND
// multi-sink trees are pushed through every delay engine, and the
// engines are held to stated bounds against one another:
//
//   - closed form (moment/two-pole) within ClosedTolPct of the shared
//     MNA transient, for sinks inside the validated accuracy domain;
//   - the multi-output Krylov reduced engine within ReducedTolPct of
//     MNA (explicit certified-fallback samples are exempt — they ARE
//     the MNA answer — but are counted);
//   - the tree engine's first moment exactly equal (to rounding) to
//     internal/elmore's RC Elmore delay when inductance is removed.
//
// The harness runs a run-until-dry loop: seed batches are processed
// round by round until a full round produces no failures (or a round
// cap is hit), so a clean corpus terminates early while a regression
// keeps collecting distinct failing seeds. Every failure carries a
// one-seed repro command. Both `go test` (short mode in PRs) and the
// nightly conformance CI job drive this package; see conformance_test.go.
package conformance

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"rlckit/internal/elmore"
	"rlckit/internal/netgen"
	"rlckit/internal/pool"
	"rlckit/internal/rlctree"
	"rlckit/internal/session"
	"rlckit/internal/tech"
)

// Options tunes a conformance run. The zero value is usable: defaults
// give one short round.
type Options struct {
	// StartSeed is the first corpus seed; round r batch i uses seed
	// StartSeed + r·BatchSize + i.
	StartSeed int64
	// BatchSize is the number of seeds per round (default 6).
	BatchSize int
	// MaxRounds caps the run-until-dry loop (default 2).
	MaxRounds int
	// ClosedTolPct bounds the closed-form vs MNA per-sink error for
	// in-domain sinks, in percent (default 10).
	ClosedTolPct float64
	// ReducedTolPct bounds the reduced vs MNA per-sink error, in
	// percent (default 1).
	ReducedTolPct float64
	// MaxFailures stops the run once this many failures are collected
	// (default 20) — enough to see the shape of a regression without
	// minutes of noise.
	MaxFailures int
}

func (o Options) withDefaults() Options {
	if o.BatchSize == 0 {
		o.BatchSize = 6
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 2
	}
	if o.ClosedTolPct == 0 {
		o.ClosedTolPct = 10
	}
	if o.ReducedTolPct == 0 {
		o.ReducedTolPct = 1
	}
	if o.MaxFailures == 0 {
		o.MaxFailures = 20
	}
	return o
}

// Failure is one conformance violation with a single-seed repro.
type Failure struct {
	Seed   int64
	Detail string
}

func (f Failure) String() string {
	return fmt.Sprintf("seed %d: %s (repro: go test ./internal/conformance -run TestConformanceCorpus -conformance.seed %d)",
		f.Seed, f.Detail, f.Seed)
}

// Report summarizes a conformance run.
type Report struct {
	// Rounds and Seeds count the corpus actually processed.
	Rounds, Seeds int
	// Cases counts engine comparisons; InDomainSinks and Fallbacks
	// count the closed-form sinks actually held to the bound and the
	// reduced-engine certified fallbacks (exempt but tracked).
	Cases, InDomainSinks, Fallbacks int
	// Failures lists every violation, at most Options.MaxFailures.
	Failures []Failure
}

// Run executes the run-until-dry conformance loop.
func Run(opts Options) Report {
	opts = opts.withDefaults()
	var rep Report
	for round := 0; round < opts.MaxRounds; round++ {
		before := len(rep.Failures)
		for i := 0; i < opts.BatchSize; i++ {
			seed := opts.StartSeed + int64(round*opts.BatchSize+i)
			CheckSeed(seed, opts, &rep)
			rep.Seeds++
			if len(rep.Failures) >= opts.MaxFailures {
				rep.Rounds = round + 1
				return rep
			}
		}
		rep.Rounds = round + 1
		if len(rep.Failures) == before {
			// The round came up dry: the corpus is clean, stop exploring.
			return rep
		}
	}
	return rep
}

// CheckSeed runs every engine comparison for one corpus seed: a random
// tree (kind cycled by seed) and a random driven line discretized as a
// chain tree.
func CheckSeed(seed int64, opts Options, rep *Report) {
	opts = opts.withDefaults()
	node := tech.Default()
	kinds := []netgen.TreeKind{netgen.TreeBalanced, netgen.TreeUnbalanced, netgen.TreeClockH}

	rng := rand.New(pool.NewSource(pool.Seed(seed, 0)))
	tn, err := netgen.RandomTree(rng, node, kinds[int(seed)%len(kinds)], 3+rng.Intn(8))
	if err != nil {
		rep.fail(seed, opts, fmt.Sprintf("tree generation: %v", err))
		return
	}
	checkTree(seed, fmt.Sprintf("tree %s", tn.Name), tn.Tree, tn.Drive, opts, rep)

	lrng := rand.New(pool.NewSource(pool.Seed(seed, 1)))
	net, err := netgen.RandomNet(lrng, node)
	if err != nil {
		rep.fail(seed, opts, fmt.Sprintf("line generation: %v", err))
		return
	}
	lt, _, err := lineChain(net, 24)
	if err != nil {
		rep.fail(seed, opts, fmt.Sprintf("line chain %s: %v", net.Name, err))
		return
	}
	checkTree(seed, fmt.Sprintf("line %s", net.Name), lt, rlctree.Drive{Rtr: net.Drive.Rtr, V: net.Drive.V}, opts, rep)
}

// lineChain discretizes a driven line into an n-segment chain tree
// with the far-end load as its only sink.
func lineChain(net netgen.Net, n int) (*rlctree.Tree, int, error) {
	rt, ltot, ct := net.Line.Totals()
	t, err := rlctree.New(0)
	if err != nil {
		return nil, 0, err
	}
	node := 0
	for i := 0; i < n; i++ {
		node, err = t.Add(node, rt/float64(n), ltot/float64(n), ct/float64(n))
		if err != nil {
			return nil, 0, err
		}
	}
	if err := t.MarkSink(node, net.Drive.CL); err != nil {
		return nil, 0, err
	}
	return t, node, nil
}

// checkTree runs the three cross-engine comparisons on one driven tree.
func checkTree(seed int64, what string, t *rlctree.Tree, d rlctree.Drive, opts Options, rep *Report) {
	exact, err := rlctree.Analyze(t, d, rlctree.Config{Engine: rlctree.EngineMNA})
	if err != nil {
		rep.fail(seed, opts, fmt.Sprintf("%s: MNA engine: %v", what, err))
		return
	}

	// 1. Closed form vs MNA, in-domain sinks only.
	closed, err := rlctree.Analyze(t, d, rlctree.Config{Engine: rlctree.EngineClosed})
	if err != nil {
		rep.fail(seed, opts, fmt.Sprintf("%s: closed engine: %v", what, err))
		return
	}
	rep.Cases++
	for k := range closed.Sinks {
		s := &closed.Sinks[k]
		if !s.InDomain {
			continue
		}
		rep.InDomainSinks++
		e := exact.Sinks[k].Delay
		if rel := 100 * math.Abs(s.Delay-e) / e; rel > opts.ClosedTolPct {
			rep.fail(seed, opts, fmt.Sprintf("%s sink %d: closed %.4g vs MNA %.4g (%.2f%% > %.0f%%)",
				what, s.Node, s.Delay, e, rel, opts.ClosedTolPct))
		}
	}

	// 2. Reduced vs MNA. A certified fallback already answered with the
	// exact engine and is exempt by construction, but counted.
	red, err := rlctree.Analyze(t, d, rlctree.Config{Engine: rlctree.EngineReduced})
	if err != nil {
		rep.fail(seed, opts, fmt.Sprintf("%s: reduced engine: %v", what, err))
		return
	}
	rep.Cases++
	if red.Fallback {
		rep.Fallbacks++
	} else {
		for k := range red.Sinks {
			r, e := red.Sinks[k].Delay, exact.Sinks[k].Delay
			if rel := 100 * math.Abs(r-e) / e; rel > opts.ReducedTolPct {
				rep.fail(seed, opts, fmt.Sprintf("%s sink %d: reduced %.4g vs MNA %.4g (%.2f%% > %.1f%%)",
					what, red.Sinks[k].Node, r, e, rel, opts.ReducedTolPct))
			}
		}
	}

	// 3. RC-tree Elmore ≡ tree engine with L = 0.
	rep.Cases++
	if err := checkElmore(t, d); err != nil {
		rep.fail(seed, opts, fmt.Sprintf("%s: %v", what, err))
	}

	// 4. What-if edit sequence: a session's incremental re-analysis vs
	// from-scratch analysis of the identically-edited tree. Mutates t,
	// so this comparison must stay last.
	checkEditSequence(seed, what, t, d, opts, rep)
}

// checkEditSequence opens a what-if session over the tree (the session
// copies it), applies a seeded sequence of value-edit batches to both
// the session and the original tree, and holds every step's
// incremental result to the from-scratch answer: the closed and exact
// engines bit-identical (their fast paths replay the cold computation
// on frozen structure), the reduced engine within ReducedTolPct of
// exact — unless it fell back, in which case it IS the exact engine
// and must match it bit-identically.
func checkEditSequence(seed int64, what string, t *rlctree.Tree, d rlctree.Drive, opts Options, rep *Report) {
	sess, err := session.Open(t, d, rlctree.Config{})
	if err != nil {
		rep.fail(seed, opts, fmt.Sprintf("%s: open session: %v", what, err))
		return
	}
	defer sess.Close()
	rng := rand.New(pool.NewSource(pool.Seed(seed, 2)))
	cur := d
	const steps = 3
	for step := 1; step <= steps; step++ {
		batch, err := randomEditBatch(rng, t, &cur)
		if err != nil {
			rep.fail(seed, opts, fmt.Sprintf("%s step %d: building edits: %v", what, step, err))
			return
		}
		if err := sess.Apply(batch); err != nil {
			rep.fail(seed, opts, fmt.Sprintf("%s step %d: apply: %v", what, step, err))
			return
		}
		exact, err := rlctree.Analyze(t, cur, rlctree.Config{Engine: rlctree.EngineMNA})
		if err != nil {
			rep.fail(seed, opts, fmt.Sprintf("%s step %d: cold MNA: %v", what, step, err))
			return
		}
		ctx := context.Background()

		rep.Cases++
		for _, engine := range []rlctree.Engine{rlctree.EngineClosed, rlctree.EngineMNA} {
			sres, err := sess.Result(ctx, engine)
			if err != nil {
				rep.fail(seed, opts, fmt.Sprintf("%s step %d: session %v: %v", what, step, engine, err))
				return
			}
			cres := exact
			if engine == rlctree.EngineClosed {
				if cres, err = rlctree.Analyze(t, cur, rlctree.Config{Engine: engine}); err != nil {
					rep.fail(seed, opts, fmt.Sprintf("%s step %d: cold %v: %v", what, step, engine, err))
					return
				}
			}
			for k := range sres.Sinks {
				if s, c := sres.Sinks[k].Delay, cres.Sinks[k].Delay; s != c {
					rep.fail(seed, opts, fmt.Sprintf("%s step %d sink %d: session %v %.17g != cold %.17g — incremental path diverged",
						what, step, sres.Sinks[k].Node, engine, s, c))
				}
			}
		}

		rep.Cases++
		rres, err := sess.Result(ctx, rlctree.EngineReduced)
		if err != nil {
			rep.fail(seed, opts, fmt.Sprintf("%s step %d: session reduced: %v", what, step, err))
			return
		}
		for k := range rres.Sinks {
			r, e := rres.Sinks[k].Delay, exact.Sinks[k].Delay
			if rres.Fallback {
				if r != e {
					rep.fail(seed, opts, fmt.Sprintf("%s step %d sink %d: reduced fallback %.17g != exact %.17g",
						what, step, rres.Sinks[k].Node, r, e))
				}
				continue
			}
			if rel := 100 * math.Abs(r-e) / e; rel > opts.ReducedTolPct {
				rep.fail(seed, opts, fmt.Sprintf("%s step %d sink %d: session reduced %.4g vs exact %.4g (%.2f%% > %.1f%%)",
					what, step, rres.Sinks[k].Node, r, e, rel, opts.ReducedTolPct))
			}
		}
		if rres.Fallback {
			rep.Fallbacks++
		}
	}
}

// randomEditBatch draws 1–3 value edits (branch impedance scale, sink
// load scale, driver resistance scale), applies them to the mirror
// tree/drive, and returns the same edits in session form.
func randomEditBatch(rng *rand.Rand, t *rlctree.Tree, cur *rlctree.Drive) ([]session.Edit, error) {
	batch := make([]session.Edit, 0, 3)
	for k, n := 0, 1+rng.Intn(3); k < n; k++ {
		switch pick := rng.Intn(3); {
		case pick == 0 && t.Len() > 1:
			node := 1 + rng.Intn(t.Len()-1)
			r, l, _, err := t.Branch(node)
			if err != nil {
				return nil, err
			}
			f := 0.85 + 0.3*rng.Float64()
			if err := t.SetBranch(node, r*f, l*f); err != nil {
				return nil, err
			}
			batch = append(batch, session.Edit{Op: session.OpBranch, Node: node, R: r * f, L: l * f})
		case pick == 1 && len(t.Sinks()) > 0:
			sinks := t.Sinks()
			node := sinks[rng.Intn(len(sinks))]
			cl, err := t.SinkLoad(node)
			if err != nil {
				return nil, err
			}
			f := 0.7 + 0.6*rng.Float64()
			if err := t.SetLoad(node, cl*f); err != nil {
				return nil, err
			}
			batch = append(batch, session.Edit{Op: session.OpLoad, Node: node, CL: cl * f})
		default:
			f := 0.85 + 0.3*rng.Float64()
			cur.Rtr *= f
			batch = append(batch, session.Edit{Op: session.OpDriver, Rtr: cur.Rtr, V: cur.V})
		}
	}
	return batch, nil
}

// checkElmore rebuilds the tree without inductance in both the rlctree
// and elmore representations and requires their per-node Elmore delays
// to agree to rounding.
func checkElmore(t *rlctree.Tree, d rlctree.Drive) error {
	rootLoad, err := t.SinkLoad(0)
	if err != nil {
		return err
	}
	_, _, rootC, err := t.Branch(0)
	if err != nil {
		return err
	}
	rcTree, err := rlctree.New(rootC - rootLoad)
	if err != nil {
		return err
	}
	et, err := elmore.NewTree(d.Rtr, rootC-rootLoad)
	if err != nil {
		return err
	}
	for i := 1; i < t.Len(); i++ {
		p, err := t.Parent(i)
		if err != nil {
			return err
		}
		r, _, c, err := t.Branch(i)
		if err != nil {
			return err
		}
		load, err := t.SinkLoad(i)
		if err != nil {
			return err
		}
		if r == 0 {
			// A pure-inductance branch has no RC counterpart; the L = 0
			// equivalence is only defined for resistive trees.
			return nil
		}
		if _, err := rcTree.Add(p, r, 0, c-load); err != nil {
			return err
		}
		if _, err := et.Add(p, r, c-load); err != nil {
			return err
		}
	}
	for _, sink := range t.Sinks() {
		load, err := t.SinkLoad(sink)
		if err != nil {
			return err
		}
		if err := rcTree.MarkSink(sink, load); err != nil {
			return err
		}
		if err := et.AddCap(sink, load); err != nil {
			return err
		}
	}
	got, err := rcTree.ElmoreDelays(rlctree.Drive{Rtr: d.Rtr})
	if err != nil {
		return err
	}
	want := et.Delays()
	for i := range got {
		if want[i] == 0 {
			continue
		}
		if rel := math.Abs(got[i]-want[i]) / want[i]; rel > 1e-9 {
			return fmt.Errorf("Elmore mismatch at node %d: rlctree %g vs elmore %g (rel %g)", i, got[i], want[i], rel)
		}
	}
	return nil
}

func (r *Report) fail(seed int64, opts Options, detail string) {
	if len(r.Failures) < opts.MaxFailures {
		r.Failures = append(r.Failures, Failure{Seed: seed, Detail: detail})
	}
}
