package conformance

import (
	"flag"
	"os"
	"strconv"
	"strings"
	"testing"
)

// -conformance.seed reruns a single corpus seed — the repro hook every
// Failure message points at.
var seedFlag = flag.Int64("conformance.seed", -1, "re-check a single conformance corpus seed")

// corpusOptions resolves the run size: PRs run the short corpus, the
// nightly CI job sets CONFORMANCE_ROUNDS for the long one.
func corpusOptions(t *testing.T) Options {
	opts := Options{}
	if testing.Short() {
		opts.BatchSize = 4
		opts.MaxRounds = 1
		return opts
	}
	opts.BatchSize = 8
	opts.MaxRounds = 3
	if env := os.Getenv("CONFORMANCE_ROUNDS"); env != "" {
		rounds, err := strconv.Atoi(env)
		if err != nil || rounds < 1 {
			t.Fatalf("bad CONFORMANCE_ROUNDS=%q", env)
		}
		opts.MaxRounds = rounds
	}
	return opts
}

// TestConformanceCorpus is the differential cross-engine gate: random
// lines and trees through every engine, run until a full seed round
// comes up dry. With -conformance.seed N it re-checks exactly one
// seed.
func TestConformanceCorpus(t *testing.T) {
	if *seedFlag >= 0 {
		var rep Report
		CheckSeed(*seedFlag, Options{}, &rep)
		for _, f := range rep.Failures {
			t.Error(f.String())
		}
		t.Logf("seed %d: %d cases, %d in-domain sinks, %d fallbacks",
			*seedFlag, rep.Cases, rep.InDomainSinks, rep.Fallbacks)
		return
	}
	rep := Run(corpusOptions(t))
	for _, f := range rep.Failures {
		t.Error(f.String())
	}
	t.Logf("%d rounds, %d seeds, %d cases, %d in-domain sinks, %d reduced fallbacks",
		rep.Rounds, rep.Seeds, rep.Cases, rep.InDomainSinks, rep.Fallbacks)
	if rep.InDomainSinks == 0 {
		t.Error("corpus produced no in-domain sinks — the closed-form bound was never exercised")
	}
}

// TestRunStopsWhenDry: a clean corpus must stop after its first round.
func TestRunStopsWhenDry(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestConformanceCorpus in short mode")
	}
	rep := Run(Options{BatchSize: 2, MaxRounds: 5})
	if len(rep.Failures) == 0 && rep.Rounds != 1 {
		t.Errorf("clean corpus ran %d rounds, want 1 (run-until-dry)", rep.Rounds)
	}
}

// TestFailureReporting drives the harness with an impossible bound so
// the failure paths (collection, capping, repro rendering) are
// exercised without a real regression.
func TestFailureReporting(t *testing.T) {
	rep := Run(Options{BatchSize: 2, MaxRounds: 4, ClosedTolPct: 1e-9, MaxFailures: 3})
	if len(rep.Failures) != 3 {
		t.Fatalf("got %d failures, want the MaxFailures cap of 3", len(rep.Failures))
	}
	for _, f := range rep.Failures {
		s := f.String()
		if !strings.Contains(s, "-conformance.seed") || !strings.Contains(s, "repro") {
			t.Errorf("failure lacks a repro command: %s", s)
		}
	}
	if rep.Rounds < 1 || rep.Seeds < 1 {
		t.Errorf("implausible accounting: %+v", rep)
	}
}
