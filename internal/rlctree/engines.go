package rlctree

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"rlckit/internal/cancel"
	"rlckit/internal/circuit"
	"rlckit/internal/faultinject"
	"rlckit/internal/mna"
	"rlckit/internal/mor"
)

// Engine selects the per-sink delay engine.
type Engine int

// Engines, cheapest first.
const (
	// EngineClosed is the moment/two-pole closed form (default).
	EngineClosed Engine = iota
	// EngineMNA measures every sink from one shared MNA transient.
	EngineMNA
	// EngineReduced measures every sink from the transient of one
	// multi-output Krylov reduced model, falling back to EngineMNA when
	// the reduction cannot be certified.
	EngineReduced
)

func (e Engine) String() string {
	switch e {
	case EngineClosed:
		return "closed"
	case EngineMNA:
		return "mna"
	case EngineReduced:
		return "reduced"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Config tunes Analyze. The zero value analyzes with defaults.
type Config struct {
	// Engine selects the delay engine (default EngineClosed).
	Engine Engine
	// StepsPerScale divides the simulation horizon into steps for the
	// MNA and reduced transients (default 3000).
	StepsPerScale int
	// MaxOrder caps the reduced order (default 64 — a multi-sink tree
	// needs a few more vectors than a two-port ladder).
	MaxOrder int
	// ValTol is the reduced model's certification tolerance (default
	// 1e-3 of the response peak).
	ValTol float64
	// Ctx, when non-nil, cancels the simulation engines at their
	// amortized checkpoints (per timestep chunk for EngineMNA, per
	// Arnoldi round and timestep chunk for EngineReduced); Analyze then
	// returns cancel.ErrCanceled/ErrDeadline instead of a result. The
	// closed-form engine is microseconds of work and never checks.
	Ctx context.Context
	// AnchorSpread is the incremental engine's anchor bracketing
	// factor (default 2): NewIncremental builds the frozen reduced
	// basis with ×spread and ÷spread anchors, and edits whose
	// value ratios stay inside the certified envelope evaluate
	// without re-certification. Analyze ignores it.
	AnchorSpread float64
	// Pencils, when non-nil, persists certified reduced models across
	// analyses (and restarts, when backed by the warm-start store):
	// before building, EngineReduced asks the store for the pencil
	// keyed by the exact tree+drive+config bits, and after a fresh
	// certified build it offers the serialized model back. Reuse is
	// doubly guarded — the key is exact-bits, and the pencil's embedded
	// system fingerprint is revalidated in mna.Reduce — so a stale or
	// mis-keyed entry degrades to a rebuild, never a wrong delay.
	Pencils PencilStore
}

// PencilStore is the persistence hook for certified reduced models.
// Implementations must be safe for concurrent use; both methods are
// best-effort (a miss or a dropped put only costs a rebuild).
type PencilStore interface {
	GetPencil(key string) ([]byte, bool)
	PutPencil(key string, pencil []byte)
}

func (c Config) withDefaults() Config {
	if c.StepsPerScale == 0 {
		c.StepsPerScale = 3000
	}
	if c.MaxOrder == 0 {
		c.MaxOrder = 64
	}
	if c.ValTol == 0 {
		// Tighter than mor's 5e-3 default: the conformance suite holds
		// reduced per-sink delays to 1% of MNA, and a 0.5% certified
		// transfer-function error can already move a 50% crossing by
		// more than that on shallow-sloped tree responses.
		c.ValTol = 1e-3
	}
	if c.AnchorSpread == 0 {
		c.AnchorSpread = 2
	}
	return c
}

// SinkDelay is one sink's analysis: the engine delay, the RC-only
// counterfactual, and the closed-form parameters behind them.
type SinkDelay struct {
	// Node is the sink's tree node index.
	Node int
	// Delay is the 50% delay (s) from the configured engine.
	Delay float64
	// DelayClosed is the closed-form two-pole delay — equal to Delay
	// under EngineClosed, and the estimator being graded under the
	// simulation engines.
	DelayClosed float64
	// DelayRC is the closed-form delay of the same tree with every
	// inductance removed — what an RC-only timing flow would report.
	DelayRC float64
	// M1, M2, M3 are the sink's voltage moments (−M1 is the Elmore
	// delay).
	M1, M2, M3 float64
	// Zeta and OmegaN are the sink's two-pole parameters (Eq. 6/3
	// generalized to the tree); +Inf when the second moment collapses
	// to a single pole.
	Zeta, OmegaN float64
	// FitErr is the closed-form model's self-diagnosis: the relative
	// mismatch of the tree's fourth moment against the fitted model's
	// prediction (+Inf when the fit fell back). InDomain is the full
	// validated accuracy-domain verdict (fourth-moment consistency,
	// bounded zero strength, bounded damping, no shoulder risk — see
	// momentDelay); inside it the conformance suite holds the closed
	// form to 10% of the MNA reference, and outside it callers should
	// prefer a simulation engine.
	FitErr   float64
	InDomain bool
}

// InDomainMaxFitErr is the fourth-moment self-consistency bound of the
// closed-form engine's validated accuracy domain: the fitted
// two-pole-plus-zero model must reproduce the true m4 within this
// relative error, or the response has higher-order structure the
// moment map cannot see. The 4% bound was pinned by population scans
// against the MNA reference (see internal/conformance): at 0.04 every
// in-domain sink of the conformance corpus tracks MNA within 10%,
// while 0.10 already admits >10% outliers.
const InDomainMaxFitErr = 0.04

// Result is a completed tree analysis: the per-sink delay table and the
// skew statistics over it.
type Result struct {
	// Engine is the engine that produced the Delay column.
	Engine Engine
	// Sinks is the per-sink table in ascending node order.
	Sinks []SinkDelay
	// MinDelay and MaxDelay bound the Delay column; MaxSkew is their
	// difference — the sink-to-sink skew of the net.
	MinDelay, MaxDelay, MaxSkew float64
	// MaxSkewRC is the skew of the DelayRC column, and SkewErrPct is
	// 100·(MaxSkewRC − MaxSkew)/MaxSkew — the signed error an RC-only
	// flow makes on this net's skew. It reports 0 when the tree has a
	// single sink or negligible skew (< 0.1% of MaxDelay), where the
	// ratio would be numerical noise.
	MaxSkewRC, SkewErrPct float64
	// Reduced reports that a certified reduced-order model produced the
	// Delay column; Fallback that EngineReduced was requested but the
	// exact MNA engine answered. MORInfo carries the model's
	// certification metadata when Reduced is true.
	Reduced  bool
	Fallback bool
	MORInfo  mor.Info
}

// Analyze computes the per-sink delay table and skew of a driven tree.
func Analyze(t *Tree, d Drive, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	res := &Result{Engine: cfg.Engine, Sinks: closedTable(t, d)}
	switch cfg.Engine {
	case EngineClosed:
		for i := range res.Sinks {
			res.Sinks[i].Delay = res.Sinks[i].DelayClosed
		}
	case EngineMNA:
		delays, err := delaysMNA(t, d, cfg, res.Sinks)
		if err != nil {
			return nil, err
		}
		for i := range res.Sinks {
			res.Sinks[i].Delay = delays[i]
		}
	case EngineReduced:
		delays, info, err := delaysReduced(t, d, cfg, res.Sinks)
		if err == nil {
			res.Reduced = true
			res.MORInfo = info
		} else if cancel.Is(err) || faultinject.IsFault(err) {
			// Cancellation must not trigger the exact fallback — the
			// request is being abandoned, not re-routed. Injected faults
			// propagate too: a fallback would change the reported engine
			// and break retry byte-determinism.
			return nil, err
		} else {
			// Certification failure is an engine-selection event, not an
			// analysis error: the exact shared transient answers instead.
			if delays, err = delaysMNA(t, d, cfg, res.Sinks); err != nil {
				return nil, err
			}
			res.Fallback = true
		}
		for i := range res.Sinks {
			res.Sinks[i].Delay = delays[i]
		}
	default:
		return nil, fmt.Errorf("rlctree: unknown engine %v", cfg.Engine)
	}
	res.finishSkew()
	return res, nil
}

// closedTable fills the moment-derived columns for every sink.
func closedTable(t *Tree, d Drive) []SinkDelay {
	m := t.moments(d.Rtr)
	out := make([]SinkDelay, len(t.sinks))
	for k, node := range t.sinks {
		s := &out[k]
		s.Node = node
		s.M1, s.M2, s.M3 = m.M1[node], m.M2[node], m.M3[node]
		s.DelayClosed, s.Zeta, s.OmegaN, s.FitErr, s.InDomain = momentDelay(s.M1, s.M2, s.M3, m.M4[node])
		s.DelayRC, _, _, _, _ = momentDelay(s.M1, m.M2RC[node], m.M3RC[node], m.M4RC[node])
	}
	return out
}

// finishSkew derives the skew statistics from the filled sink table.
func (r *Result) finishSkew() {
	minD, maxD := math.Inf(1), math.Inf(-1)
	minRC, maxRC := math.Inf(1), math.Inf(-1)
	for i := range r.Sinks {
		s := &r.Sinks[i]
		minD = math.Min(minD, s.Delay)
		maxD = math.Max(maxD, s.Delay)
		minRC = math.Min(minRC, s.DelayRC)
		maxRC = math.Max(maxRC, s.DelayRC)
	}
	r.MinDelay, r.MaxDelay = minD, maxD
	r.MaxSkew = maxD - minD
	r.MaxSkewRC = maxRC - minRC
	// The relative skew error is only meaningful when the tree has
	// meaningful skew: on a near-perfectly balanced tree both skews are
	// numerical residue and their ratio is noise, so it reports 0.
	if r.MaxSkew > 1e-3*r.MaxDelay {
		r.SkewErrPct = 100 * (r.MaxSkewRC - r.MaxSkew) / r.MaxSkew
	}
}

// ToCircuit converts the driven tree to a circuit.Circuit for the MNA
// simulator (and, through mna.Reduce, the sparse-triplet form the
// model-order reduction projects). The source is an ideal step of
// d.Amplitude() volts delayed by delay. It returns the circuit and the
// mapping from tree node index to circuit node ID.
//
// A zero d.Rtr is replaced by a negligible 1e-6 Ω series resistance
// (the MNA formulation needs the source separated from the first
// reactive node), matching tline.BuildLadder's convention. Zero branch
// resistances or inductances are omitted rather than stamped.
func (t *Tree) ToCircuit(d Drive, delay float64) (*circuit.Circuit, []int, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if err := t.validate(); err != nil {
		return nil, nil, err
	}
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return nil, nil, fmt.Errorf("rlctree: source delay must be finite and non-negative, got %g: %w", delay, ErrValue)
	}
	ckt := circuit.New()
	src := ckt.Node()
	if err := ckt.AddV("vin", src, circuit.Ground,
		circuit.Step{Amplitude: d.Amplitude(), Delay: delay}); err != nil {
		return nil, nil, err
	}
	nodeOf := make([]int, len(t.parent))
	nodeOf[0] = ckt.Node()
	rtr := d.Rtr
	if rtr == 0 {
		rtr = 1e-6
	}
	if err := ckt.AddR("rtr", src, nodeOf[0], rtr); err != nil {
		return nil, nil, err
	}
	for i := 1; i < len(t.parent); i++ {
		from := nodeOf[t.parent[i]]
		ni := ckt.Node()
		nodeOf[i] = ni
		r, l := t.r[i], t.l[i]
		switch {
		case r > 0 && l > 0:
			mid := ckt.Node()
			if err := ckt.AddR(fmt.Sprintf("b%d.r", i), from, mid, r); err != nil {
				return nil, nil, err
			}
			if err := ckt.AddL(fmt.Sprintf("b%d.l", i), mid, ni, l); err != nil {
				return nil, nil, err
			}
		case r > 0:
			if err := ckt.AddR(fmt.Sprintf("b%d.r", i), from, ni, r); err != nil {
				return nil, nil, err
			}
		default: // l > 0, enforced at Add
			if err := ckt.AddL(fmt.Sprintf("b%d.l", i), from, ni, l); err != nil {
				return nil, nil, err
			}
		}
	}
	for i := range t.parent {
		if c := t.c[i] + t.load[i]; c > 0 {
			if err := ckt.AddC(fmt.Sprintf("n%d.c", i), nodeOf[i], circuit.Ground, c); err != nil {
				return nil, nil, err
			}
		}
	}
	return ckt, nodeOf, nil
}

// timeScales returns the tree's slow envelope scale and the fastest
// sink scale, derived from the closed-form table Analyze already
// built: the Elmore envelope (−m1) bounds settling from above, and the
// fastest fitted sink delay bounds the dynamics the transient (and the
// reduced model's certification band) must resolve. The raw per-sink
// b2 is NOT used here — near-cancelling sinks have b2 ≤ 0, which once
// collapsed this band to near-DC and let a certified reduced model be
// wildly wrong in the time domain (caught by the conformance harness).
func (t *Tree) timeScales(d Drive, table []SinkDelay) (horizon, tFast float64) {
	maxB1, dMax := 0.0, 0.0
	dMin := math.Inf(1)
	for k := range table {
		maxB1 = math.Max(maxB1, -table[k].M1)
		if d := table[k].DelayClosed; d > 0 && !math.IsInf(d, 0) {
			dMin = math.Min(dMin, d)
			dMax = math.Max(dMax, d)
		}
	}
	if dMax <= 0 || math.IsInf(dMin, 1) {
		// Degenerate estimates; fall back to the total cap seen through
		// the driver so every scale is still positive.
		horizon = 4 * (d.Rtr + 1) * t.TotalCap()
		return horizon, horizon
	}
	horizon = 4*maxB1 + 8*dMax
	return horizon, dMin / 2
}

// transientPlan derives the shared transient parameters from the
// closed-form table: the timestep, the source step delay, and the
// first-attempt end time. Both simulation engines — and their
// incremental (frozen) twins, which must reproduce the cold engines'
// arithmetic exactly — plan through this one function.
func (t *Tree) transientPlan(d Drive, cfg Config, table []SinkDelay) (dt, delay, tEnd float64) {
	horizon, tFast := t.timeScales(d, table)
	dt = math.Min(horizon/float64(cfg.StepsPerScale), tFast/30)
	delay = 10 * dt
	return dt, delay, horizon + delay
}

// runCrossings drives a transient to completion and reads every
// probe's 50% crossing, retrying with an extended horizon (×2.5, up to
// 4 attempts) when a sink has not crossed yet. sim runs one transient
// to tEnd; effDelay is the effective step time subtracted from the raw
// crossings; what names the engine for the exhaustion error.
func runCrossings(sim func(tEnd float64) (*mna.Result, error), probes []int, level, effDelay, tEnd float64, what string) ([]float64, error) {
	for attempt := 0; attempt < 4; attempt++ {
		res, err := sim(tEnd)
		if err != nil {
			return nil, err
		}
		out, err := extractCrossings(res, probes, level, effDelay)
		if err == nil {
			return out, nil
		}
		tEnd *= 2.5
	}
	return nil, fmt.Errorf("rlctree: a %s never crossed %g within the extended horizon", what, level)
}

// delaysMNA measures every sink's 50% delay from one shared transient:
// all sinks are probed in a single mna.Simulate solve, so the cost is
// one band factorization and one step loop regardless of sink count —
// this is what makes multi-sink nets cheaper than N point-to-point
// analyses (BenchmarkTreeDelay quantifies it).
func delaysMNA(t *Tree, d Drive, cfg Config, table []SinkDelay) ([]float64, error) {
	dt, delay, tEnd := t.transientPlan(d, cfg, table)
	ckt, nodeOf, err := t.ToCircuit(d, delay)
	if err != nil {
		return nil, err
	}
	probes := make([]int, len(t.sinks))
	for k, node := range t.sinks {
		probes[k] = nodeOf[node]
	}
	return runCrossings(func(tEnd float64) (*mna.Result, error) {
		return mna.Simulate(ckt, mna.Options{Dt: dt, TEnd: tEnd, Probes: probes, Ctx: cfg.Ctx})
	}, probes, d.Amplitude()/2, delay-dt/2, tEnd, "sink")
}

// extractCrossings reads each probe's 50% crossing from a shared
// transient result, subtracting the effective step time (the
// trapezoidal rule smears the ideal step across one timestep).
func extractCrossings(res *mna.Result, probes []int, level, effDelay float64) ([]float64, error) {
	out := make([]float64, len(probes))
	for k, p := range probes {
		w, err := res.Waveform(p)
		if err != nil {
			return nil, err
		}
		cross, err := w.CrossUp(level)
		if err != nil {
			return nil, err
		}
		out[k] = cross - effDelay
	}
	return out, nil
}

// treeProbeFreqs picks the reduced model's probe/validation band from
// the tree's time scales: well below the response envelope to well
// above the fastest sink's rise. The upper edge sits at 6/tFast: a
// sharp wave-front edge carries content several harmonics above the
// crossing scale, and a model certified only up to ~1.5/tFast can
// pass certification yet place the 50% crossing ~2% off (caught by
// the conformance corpus; at 6/tFast the residual is parts in 1e9).
func treeProbeFreqs(horizon, tFast float64) []float64 {
	fLo := 0.03 / horizon
	fHi := 6 / tFast
	const n = 7
	out := make([]float64, n)
	ratio := math.Pow(fHi/fLo, 1/float64(n-1))
	f := fLo
	for i := range out {
		out[i] = f
		f *= ratio
	}
	return out
}

// pencilKey renders the exact bits a reduced build depends on — the
// full tree arrays, the drive, and the build-relevant config — as a
// canonical string. Floats use hex notation ('x', precision -1), which
// round-trips every float64 exactly, so two analyses share a key iff
// they would build bit-identical models.
func pencilKey(t *Tree, d Drive, cfg Config) string {
	var b strings.Builder
	b.Grow(32 * len(t.parent))
	x := func(v float64) {
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
		b.WriteByte(' ')
	}
	b.WriteString("tree1|")
	for i, p := range t.parent {
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(':')
		x(t.r[i])
		x(t.l[i])
		x(t.c[i])
		x(t.load[i])
		if t.sink[i] {
			b.WriteByte('s')
		}
		b.WriteByte(';')
	}
	b.WriteByte('|')
	x(d.Rtr)
	x(d.V)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(cfg.StepsPerScale))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(cfg.MaxOrder))
	b.WriteByte(' ')
	x(cfg.ValTol)
	return b.String()
}

// delaysReduced measures every sink's delay on one multi-output
// reduced-order model: a single Krylov basis is built with every sink
// as an output (mna.Reduce), certified against exact solves, and the
// q×q reduced transient is stepped once for all sinks. An error means
// the model could not be certified; Analyze falls back to delaysMNA.
func delaysReduced(t *Tree, d Drive, cfg Config, table []SinkDelay) ([]float64, mor.Info, error) {
	horizon, tFast := t.timeScales(d, table)
	dt, delay, tEnd := t.transientPlan(d, cfg, table)
	ckt, nodeOf, err := t.ToCircuit(d, delay)
	if err != nil {
		return nil, mor.Info{}, err
	}
	probes := make([]int, len(t.sinks))
	for k, node := range t.sinks {
		probes[k] = nodeOf[node]
	}
	ropt := mna.ReduceOptions{
		Freqs:    treeProbeFreqs(horizon, tFast),
		MaxOrder: cfg.MaxOrder,
		ValTol:   cfg.ValTol,
		Ctx:      cfg.Ctx,
	}
	if cfg.Pencils != nil {
		key := pencilKey(t, d, cfg)
		if p, ok := cfg.Pencils.GetPencil(key); ok {
			ropt.Pencil = p
		}
		ropt.OnBuild = func(p []byte) { cfg.Pencils.PutPencil(key, p) }
	}
	red, err := mna.Reduce(ckt, probes, ropt)
	if err != nil {
		return nil, mor.Info{}, err
	}
	out, err := runCrossings(func(tEnd float64) (*mna.Result, error) {
		return red.Simulate(mna.Options{Dt: dt, TEnd: tEnd, Probes: probes, Ctx: cfg.Ctx})
	}, probes, d.Amplitude()/2, delay-dt/2, tEnd, "reduced sink response")
	if err != nil {
		return nil, mor.Info{}, err
	}
	return out, red.Info(), nil
}
