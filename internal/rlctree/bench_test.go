package rlctree

import (
	"math"
	"testing"
	"time"

	"rlckit/internal/mna"
)

// bench64 builds a deterministic 64-sink balanced tree (6 levels, mild
// per-level asymmetry so the skew is nonzero).
func bench64(tb testing.TB) (*Tree, Drive) {
	tb.Helper()
	tr, err := New(2e-15)
	if err != nil {
		tb.Fatal(err)
	}
	frontier := []int{0}
	for lvl := 0; lvl < 6; lvl++ {
		var next []int
		for fi, p := range frontier {
			for b := 0; b < 2; b++ {
				scale := 1 + 0.03*float64((fi+b+lvl)%4)
				id, err := tr.Add(p, 18*scale, 0.2e-9*scale, 25e-15*scale)
				if err != nil {
					tb.Fatal(err)
				}
				next = append(next, id)
			}
		}
		frontier = next
	}
	for i, leaf := range frontier {
		if err := tr.MarkSink(leaf, float64(4+i%8)*2e-15); err != nil {
			tb.Fatal(err)
		}
	}
	return tr, Drive{Rtr: 40}
}

// BenchmarkTreeDelay measures the shared-transient multi-sink path:
// all 64 sink delays from ONE MNA solve. Gated in CI against
// regressions; TestSharedTransientSpeedup asserts it beats 64
// independent solves ≥3×.
func BenchmarkTreeDelay(b *testing.B) {
	tr, d := bench64(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(tr, d, Config{Engine: EngineMNA}); err != nil {
			b.Fatal(err)
		}
	}
}

// perSinkDelays is the counterfactual the shared transient replaces:
// one full transient per sink, each probing a single node — what N
// point-to-point analyses of the same net would cost.
func perSinkDelays(tr *Tree, d Drive, cfg Config) ([]float64, error) {
	cfg = cfg.withDefaults()
	horizon, tFast := tr.timeScales(d, closedTable(tr, d))
	dt := math.Min(horizon/float64(cfg.StepsPerScale), tFast/30)
	delay := 10 * dt
	ckt, nodeOf, err := tr.ToCircuit(d, delay)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(tr.Sinks()))
	for k, node := range tr.Sinks() {
		res, err := mna.Simulate(ckt, mna.Options{Dt: dt, TEnd: horizon + delay, Probes: []int{nodeOf[node]}})
		if err != nil {
			return nil, err
		}
		one, err := extractCrossings(res, []int{nodeOf[node]}, d.Amplitude()/2, delay-dt/2)
		if err != nil {
			return nil, err
		}
		out[k] = one[0]
	}
	return out, nil
}

// BenchmarkTreeDelayPerSink is the comparison leg: 64 independent
// single-probe transients of the same tree.
func BenchmarkTreeDelayPerSink(b *testing.B) {
	tr, d := bench64(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perSinkDelays(tr, d, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSharedTransientSpeedup asserts the acceptance bound: one shared
// multi-sink transient beats 64 independent solves by at least 3× on
// the 64-sink tree (it lands near 64× — the probe bookkeeping is the
// only per-sink cost — so 3× has wide scheduling-noise margin).
func TestSharedTransientSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	tr, d := bench64(t)
	// A coarser-than-default step keeps the 64-transient comparison leg
	// fast in CI; both legs share it, so the delays still agree exactly.
	cfg := Config{StepsPerScale: 800}
	cfg.Engine = EngineMNA
	// Warm both paths once, then time single passes.
	shared, err := Analyze(tr, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, err := Analyze(tr, d, cfg); err != nil {
		t.Fatal(err)
	}
	sharedDur := time.Since(t0)
	t0 = time.Now()
	per, err := perSinkDelays(tr, d, Config{StepsPerScale: 800})
	if err != nil {
		t.Fatal(err)
	}
	perDur := time.Since(t0)
	for k := range per {
		if rel := math.Abs(per[k]-shared.Sinks[k].Delay) / shared.Sinks[k].Delay; rel > 1e-9 {
			t.Fatalf("per-sink and shared disagree at sink %d: %g vs %g", k, per[k], shared.Sinks[k].Delay)
		}
	}
	if ratio := float64(perDur) / float64(sharedDur); ratio < 3 {
		t.Errorf("shared transient only %.1f× faster than per-sink solves (want ≥3×): %v vs %v",
			ratio, sharedDur, perDur)
	} else {
		t.Logf("shared transient %.1f× faster (%v vs %v)", ratio, sharedDur, perDur)
	}
}
