package rlctree

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"rlckit/internal/cancel"
)

// sameBits fails unless every column of both results carries identical
// bits — the incremental engine's contract for the closed and MNA
// paths is bit-identity with a cold Analyze of the edited tree.
func sameBits(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.Engine != want.Engine || got.Reduced != want.Reduced || got.Fallback != want.Fallback {
		t.Fatalf("%s: flags (engine %v/%v reduced %v/%v fallback %v/%v)", tag,
			got.Engine, want.Engine, got.Reduced, want.Reduced, got.Fallback, want.Fallback)
	}
	if len(got.Sinks) != len(want.Sinks) {
		t.Fatalf("%s: sink count %d vs %d", tag, len(got.Sinks), len(want.Sinks))
	}
	eq := func(what string, a, b float64) {
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: %s differs: %v (%#x) vs %v (%#x)", tag, what,
				a, math.Float64bits(a), b, math.Float64bits(b))
		}
	}
	for i := range got.Sinks {
		g, w := &got.Sinks[i], &want.Sinks[i]
		if g.Node != w.Node || g.InDomain != w.InDomain {
			t.Fatalf("%s: sink %d identity (node %d/%d inDomain %v/%v)", tag, i,
				g.Node, w.Node, g.InDomain, w.InDomain)
		}
		eq("Delay", g.Delay, w.Delay)
		eq("DelayClosed", g.DelayClosed, w.DelayClosed)
		eq("DelayRC", g.DelayRC, w.DelayRC)
		eq("M1", g.M1, w.M1)
		eq("M2", g.M2, w.M2)
		eq("M3", g.M3, w.M3)
		eq("Zeta", g.Zeta, w.Zeta)
		eq("OmegaN", g.OmegaN, w.OmegaN)
		eq("FitErr", g.FitErr, w.FitErr)
	}
	eq("MinDelay", got.MinDelay, want.MinDelay)
	eq("MaxDelay", got.MaxDelay, want.MaxDelay)
	eq("MaxSkew", got.MaxSkew, want.MaxSkew)
	eq("MaxSkewRC", got.MaxSkewRC, want.MaxSkewRC)
	eq("SkewErrPct", got.SkewErrPct, want.SkewErrPct)
}

// editStep applies one deterministic pseudo-random value edit and
// returns a tag describing it.
func editStep(t *testing.T, inc *Incremental, rng *rand.Rand) string {
	t.Helper()
	n := inc.t.Len()
	node := 1 + rng.Intn(n-1)
	f := 0.8 + 0.45*rng.Float64()
	switch rng.Intn(3) {
	case 0:
		r, l, _, err := inc.t.Branch(node)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.SetBranch(node, r*f, l*f); err != nil {
			t.Fatal(err)
		}
		return "branch"
	case 1:
		// Re-target a sink load (sinks only).
		sinks := inc.t.Sinks()
		s := sinks[rng.Intn(len(sinks))]
		cl, err := inc.t.SinkLoad(s)
		if err != nil {
			t.Fatal(err)
		}
		if cl == 0 {
			cl = 1e-15
		}
		if err := inc.SetLoad(s, cl*f); err != nil {
			t.Fatal(err)
		}
		return "load"
	default:
		d := inc.Drive()
		d.Rtr = math.Max(1, d.Rtr*f)
		d.V = 0.9 + 0.2*rng.Float64()
		if err := inc.SetDriver(d); err != nil {
			t.Fatal(err)
		}
		return "driver"
	}
}

// TestIncrementalClosedBitIdentical: after every edit of a 200-step
// script, the incremental closed result must be bit-identical to a
// cold Analyze of the edited tree.
func TestIncrementalClosedBitIdentical(t *testing.T) {
	inc, err := NewIncremental(buildBalanced(t), Drive{Rtr: 80}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 200; step++ {
		tag := editStep(t, inc, rng)
		got, err := inc.Analyze(context.Background(), EngineClosed)
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, tag, err)
		}
		want, err := Analyze(inc.Tree(), inc.Drive(), Config{Engine: EngineClosed})
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		sameBits(t, tag, got, want)
	}
	// Any single edit perturbs the higher moments of every sink, so the
	// crossing memo pays off on re-reads of an unchanged state (and on
	// scripts that revisit values): a second Analyze must hit for every
	// sink's two lookups.
	before := inc.Stats()
	if _, err := inc.Analyze(context.Background(), EngineClosed); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	wantHits := 2 * len(inc.t.Sinks())
	if st.MemoHits < before.MemoHits+wantHits {
		t.Errorf("re-read hit %d memo entries, want ≥ %d", st.MemoHits-before.MemoHits, wantHits)
	}
	if st.Edits != 200 || st.Analyzes != 201 {
		t.Errorf("stats: %+v", st)
	}
}

// TestIncrementalMNABitIdentical: the frozen-ordering exact path must
// be bit-identical to a cold EngineMNA analysis after every edit,
// including a driver edit and a structural (zero-crossing) edit that
// forces a rebuild.
func TestIncrementalMNABitIdentical(t *testing.T) {
	inc, err := NewIncremental(buildY(t), Drive{Rtr: 80}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	check := func(tag string) {
		t.Helper()
		got, err := inc.Analyze(context.Background(), EngineMNA)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		want, err := Analyze(inc.Tree(), inc.Drive(), Config{Engine: EngineMNA})
		if err != nil {
			t.Fatalf("%s cold: %v", tag, err)
		}
		sameBits(t, tag, got, want)
	}
	check("open")
	for step := 0; step < 6; step++ {
		check(editStep(t, inc, rng))
	}
	// Structural edit: drop the stem's inductance entirely — the emitted
	// circuit loses an element and the frozen ordering must rebuild.
	r, _, _, err := inc.t.Branch(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetBranch(1, r, 0); err != nil {
		t.Fatal(err)
	}
	check("structural")
	if inc.Stats().Rebuilds == 0 {
		t.Error("zero-crossing edit did not rebuild the frozen state")
	}
}

// TestIncrementalReducedFastPath: value edits inside the anchor
// envelope must answer through the frozen reduced model (no fallback,
// no re-certification) and track a cold exact analysis of the edited
// tree within the conformance bound.
func TestIncrementalReducedFastPath(t *testing.T) {
	inc, err := NewIncremental(buildBalanced(t), Drive{Rtr: 80}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 8; step++ {
		tag := editStep(t, inc, rng)
		got, err := inc.Analyze(context.Background(), EngineReduced)
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, tag, err)
		}
		if !got.Reduced || got.Fallback {
			t.Fatalf("step %d (%s): in-envelope edit left the fast path (reduced %v fallback %v)",
				step, tag, got.Reduced, got.Fallback)
		}
		want, err := Analyze(inc.Tree(), inc.Drive(), Config{Engine: EngineMNA})
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		for i := range got.Sinks {
			g, w := got.Sinks[i].Delay, want.Sinks[i].Delay
			if rel := math.Abs(g-w) / w; rel > 0.01 {
				t.Errorf("step %d sink %d: reduced %g vs exact %g (%.2f%%)", step, i, g, w, 100*rel)
			}
		}
	}
	st := inc.Stats()
	if st.ReducedFast != 8 || st.Recerts != 0 || st.Fallbacks != 0 {
		t.Errorf("in-envelope script stats: %+v", st)
	}
}

// TestIncrementalReducedRecertify: an edit far outside the anchor
// envelope must trigger re-certification; whichever way it resolves —
// re-certified fast path or exact fallback — the answer must track a
// cold exact analysis, and a fallback must be bit-identical to it.
func TestIncrementalReducedRecertify(t *testing.T) {
	inc, err := NewIncremental(buildBalanced(t), Drive{Rtr: 80}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Analyze(context.Background(), EngineReduced); err != nil {
		t.Fatal(err)
	}
	// ×6 on a mid branch resistance: ratio 6 > 2^1.15 ≈ 2.22.
	r, l, _, err := inc.t.Branch(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetBranch(2, r*6, l); err != nil {
		t.Fatal(err)
	}
	got, err := inc.Analyze(context.Background(), EngineReduced)
	if err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.Recerts == 0 {
		t.Fatalf("out-of-envelope edit did not re-certify: %+v", st)
	}
	want, err := Analyze(inc.Tree(), inc.Drive(), Config{Engine: EngineMNA})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fallback {
		wantFB := *want
		wantFB.Engine = EngineReduced
		wantFB.Fallback = true
		sameBits(t, "fallback", got, &wantFB)
	} else {
		for i := range got.Sinks {
			g, w := got.Sinks[i].Delay, want.Sinks[i].Delay
			if rel := math.Abs(g-w) / w; rel > 0.01 {
				t.Errorf("sink %d: recertified %g vs exact %g (%.2f%%)", i, g, w, 100*rel)
			}
		}
		// A second read in the same neighborhood must reuse the expanded
		// envelope without certifying again.
		before := inc.Stats().Recerts
		if _, err := inc.Analyze(context.Background(), EngineReduced); err != nil {
			t.Fatal(err)
		}
		if inc.Stats().Recerts != before {
			t.Error("expanded envelope was not retained")
		}
	}
}

// TestIncrementalCancel: a canceled context must propagate out of the
// simulation paths as a cancel error, never as a fallback.
func TestIncrementalCancel(t *testing.T) {
	inc, err := NewIncremental(buildBalanced(t), Drive{Rtr: 80}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	stop()
	for _, eng := range []Engine{EngineMNA, EngineReduced} {
		if _, err := inc.Analyze(ctx, eng); !cancel.Is(err) {
			t.Errorf("%v: want cancel error, got %v", eng, err)
		}
	}
	// The session must remain usable after a canceled read.
	if _, err := inc.Analyze(context.Background(), EngineMNA); err != nil {
		t.Errorf("post-cancel analyze: %v", err)
	}
}

// TestIncrementalEditValidation: rejected edits must not corrupt the
// session — a bad node, a negative value, and a zeroed branch all
// error typed, and the next analysis still matches cold.
func TestIncrementalEditValidation(t *testing.T) {
	inc, err := NewIncremental(buildY(t), Drive{Rtr: 80}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetBranch(99, 1, 1e-9); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := inc.SetBranch(1, -5, 1e-9); err == nil {
		t.Error("negative resistance accepted")
	}
	if err := inc.SetBranch(1, 0, 0); err == nil {
		t.Error("zero-impedance branch accepted")
	}
	if err := inc.SetLoad(1, 1e-15); err == nil {
		t.Error("SetLoad on a non-sink accepted")
	}
	if err := inc.SetDriver(Drive{Rtr: -1}); err == nil {
		t.Error("negative driver resistance accepted")
	}
	got, err := inc.Analyze(context.Background(), EngineClosed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(inc.Tree(), inc.Drive(), Config{Engine: EngineClosed})
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "after rejected edits", got, want)
}
