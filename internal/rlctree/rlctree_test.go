package rlctree

import (
	"errors"
	"math"
	"testing"

	"rlckit/internal/elmore"
)

// buildY returns a small asymmetric Y tree: root → stem → two branches
// of different length, sinks at both tips.
func buildY(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(5e-15)
	if err != nil {
		t.Fatal(err)
	}
	stem, err := tr.Add(0, 20, 0.5e-9, 40e-15)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tr.Add(stem, 15, 0.4e-9, 30e-15)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := tr.Add(stem, 40, 1e-9, 60e-15)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := tr.Add(b1, 40, 1e-9, 60e-15)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(a, 20e-15); err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(b2, 35e-15); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestElmoreEquivalence: the tree engine's first moment must equal the
// RC Elmore delay of the identical topology for every node.
func TestElmoreEquivalence(t *testing.T) {
	tr := buildY(t)
	d := Drive{Rtr: 80}
	// Mirror the topology in internal/elmore (RC only: the first moment
	// is inductance-independent, so the RLC tree's −m1 must match).
	et, err := elmore.NewTree(d.Rtr, 5e-15)
	if err != nil {
		t.Fatal(err)
	}
	stem, _ := et.Add(0, 20, 40e-15)
	a, _ := et.Add(stem, 15, 30e-15)
	b1, _ := et.Add(stem, 40, 60e-15)
	b2, _ := et.Add(b1, 40, 60e-15)
	if err := et.AddCap(a, 20e-15); err != nil {
		t.Fatal(err)
	}
	if err := et.AddCap(b2, 35e-15); err != nil {
		t.Fatal(err)
	}
	want := et.Delays()
	got, err := tr.ElmoreDelays(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("node count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if rel := math.Abs(got[i]-want[i]) / want[i]; rel > 1e-12 {
			t.Errorf("node %d: elmore %g vs rlctree %g (rel %g)", i, want[i], got[i], rel)
		}
	}
}

// buildBalanced returns a mildly asymmetric two-level binary tree
// whose four leaf sinks all sit inside the closed form's accuracy
// domain.
func buildBalanced(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(5e-15)
	if err != nil {
		t.Fatal(err)
	}
	stem, err := tr.Add(0, 25, 0.24e-9, 50e-15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		scale := 1 + 0.15*float64(i)
		mid, err := tr.Add(stem, 30*scale, 0.28e-9*scale, 45e-15*scale)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			s2 := 1 + 0.1*float64(j)
			leaf, err := tr.Add(mid, 28*s2, 0.26e-9*s2, 40e-15*s2)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.MarkSink(leaf, (10+5*float64(2*i+j))*1e-15); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tr
}

// TestClosedVsMNA: in-domain sinks must track the shared-transient
// reference within 10%, and the accuracy-domain predicate must flag
// the Y tree's near sink (node 2 — shielded by the far branch's
// subtree, the regime no low-order moment model can track).
func TestClosedVsMNA(t *testing.T) {
	d := Drive{Rtr: 80}
	for name, tr := range map[string]*Tree{"y": buildY(t), "balanced": buildBalanced(t)} {
		closed, err := Analyze(tr, d, Config{Engine: EngineClosed})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Analyze(tr, d, Config{Engine: EngineMNA})
		if err != nil {
			t.Fatal(err)
		}
		inDomain := 0
		for k := range closed.Sinks {
			if !closed.Sinks[k].InDomain {
				continue
			}
			inDomain++
			c, e := closed.Sinks[k].Delay, exact.Sinks[k].Delay
			if rel := math.Abs(c-e) / e; rel > 0.10 {
				t.Errorf("%s sink %d: closed %g vs MNA %g (%.1f%%)", name, closed.Sinks[k].Node, c, e, 100*rel)
			}
		}
		if name == "balanced" && inDomain != len(closed.Sinks) {
			t.Errorf("balanced tree: %d/%d sinks in-domain", inDomain, len(closed.Sinks))
		}
		if exact.MaxSkew <= 0 {
			t.Errorf("%s: asymmetric tree should have positive skew, got %g", name, exact.MaxSkew)
		}
	}
}

// TestReducedVsMNA: the multi-output reduced model must reproduce the
// shared transient's per-sink delays within 1%.
func TestReducedVsMNA(t *testing.T) {
	tr := buildY(t)
	d := Drive{Rtr: 80}
	exact, err := Analyze(tr, d, Config{Engine: EngineMNA})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Analyze(tr, d, Config{Engine: EngineReduced})
	if err != nil {
		t.Fatal(err)
	}
	if red.Fallback {
		t.Fatalf("reduction fell back on a small well-behaved tree")
	}
	if !red.Reduced || red.MORInfo.Q <= 0 {
		t.Fatalf("missing MOR metadata: %+v", red.MORInfo)
	}
	for k := range red.Sinks {
		r, e := red.Sinks[k].Delay, exact.Sinks[k].Delay
		if rel := math.Abs(r-e) / e; rel > 0.01 {
			t.Errorf("sink %d: reduced %g vs MNA %g (%.2f%%)", red.Sinks[k].Node, r, e, 100*rel)
		}
	}
}

func TestConstructionErrors(t *testing.T) {
	tr, err := New(1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Add(5, 1, 0, 1e-15); !errors.Is(err, ErrNode) {
		t.Errorf("bad parent: got %v, want ErrNode", err)
	}
	if _, err := tr.Add(0, -1, 0, 1e-15); !errors.Is(err, ErrValue) {
		t.Errorf("negative r: got %v, want ErrValue", err)
	}
	if _, err := tr.Add(0, 0, 0, 1e-15); !errors.Is(err, ErrValue) {
		t.Errorf("zero-impedance branch: got %v, want ErrValue", err)
	}
	if _, err := tr.Add(0, math.NaN(), 0, 1e-15); !errors.Is(err, ErrValue) {
		t.Errorf("NaN r: got %v, want ErrValue", err)
	}
	if err := tr.MarkSink(3, 0); !errors.Is(err, ErrNode) {
		t.Errorf("bad sink node: got %v, want ErrNode", err)
	}
	n, err := tr.Add(0, 1, 1e-12, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(n, 1e-15); err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(n, 1e-15); !errors.Is(err, ErrNode) {
		t.Errorf("double sink: got %v, want ErrNode", err)
	}
	if _, err := Analyze(tr, Drive{Rtr: -1}, Config{}); !errors.Is(err, ErrValue) {
		t.Errorf("negative Rtr: got %v, want ErrValue", err)
	}
	empty, _ := New(1e-15)
	if _, err := Analyze(empty, Drive{}, Config{}); !errors.Is(err, ErrNoSinks) {
		t.Errorf("no sinks: got %v, want ErrNoSinks", err)
	}
}

func TestScale(t *testing.T) {
	tr := buildY(t)
	sc, err := tr.Scale(2, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r0, l0, c0, _ := tr.Branch(1)
	r1, l1, c1, _ := sc.Branch(1)
	if r1 != 2*r0 || l1 != 3*l0 || c1 != 0.5*c0 {
		t.Errorf("scaled branch (%g,%g,%g), want (%g,%g,%g)", r1, l1, c1, 2*r0, 3*l0, 0.5*c0)
	}
	if tot := sc.TotalCap(); math.Abs(tot-0.5*tr.TotalCap()) > 1e-30 {
		t.Errorf("scaled total cap %g, want %g", tot, 0.5*tr.TotalCap())
	}
	if _, err := tr.Scale(0, 1, 1); !errors.Is(err, ErrValue) {
		t.Errorf("zero scale: got %v, want ErrValue", err)
	}
}

// TestScaleIsolation: mutating a scaled copy must never corrupt the
// original's topology bookkeeping (regression: Scale once shared the
// parent/kids/sink slices).
func TestScaleIsolation(t *testing.T) {
	tr := buildY(t)
	before := append([]int(nil), tr.Sinks()...)
	cp, err := tr.Scale(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.MarkSink(1, 1e-15); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Add(0, 5, 0, 1e-15); err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(1, 2e-15); err != nil {
		t.Fatalf("original rejected a sink after copy mutation: %v", err)
	}
	if got := cp.Sinks(); len(got) != len(before)+1 {
		t.Errorf("copy has %d sinks, want %d", len(got), len(before)+1)
	}
	if load, _ := cp.SinkLoad(1); load != 1e-15 {
		t.Errorf("copy sink load %g leaked from original", load)
	}
	if load, _ := tr.SinkLoad(1); load != 2e-15 {
		t.Errorf("original sink load %g leaked from copy", load)
	}
}

// TestSingleSinkChainMatchesLine: a chain tree is a Gamma ladder; its
// closed-form delay must agree with the MNA reference on that exact
// lumped circuit to the same tolerance as any tree.
func TestSingleSinkChainMatchesLine(t *testing.T) {
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	node := 0
	for i := 0; i < n; i++ {
		node, err = tr.Add(node, 1000.0/n, 1e-7/n, 1e-12/n)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.MarkSink(node, 5e-13); err != nil {
		t.Fatal(err)
	}
	d := Drive{Rtr: 500}
	closed, err := Analyze(tr, d, Config{Engine: EngineClosed})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Analyze(tr, d, Config{Engine: EngineMNA})
	if err != nil {
		t.Fatal(err)
	}
	c, e := closed.Sinks[0].Delay, exact.Sinks[0].Delay
	if rel := math.Abs(c-e) / e; rel > 0.10 {
		t.Errorf("chain: closed %g vs MNA %g (%.1f%%)", c, e, 100*rel)
	}
	if closed.MaxSkew != 0 || closed.SkewErrPct != 0 {
		t.Errorf("single sink must have zero skew, got %g (%g%%)", closed.MaxSkew, closed.SkewErrPct)
	}
}
