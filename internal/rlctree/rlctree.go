// Package rlctree models multi-sink RLC interconnect trees — clock
// trees and routed fanout nets — and computes per-sink 50% delays and
// sink-to-sink skew with three engines of increasing cost:
//
//  1. Closed form: per-sink transfer-function moments m1/m2/m3 by two
//     tree traversals per order, mapped onto the paper's ζ/ωn two-pole
//     delay model (Eq. 9). The per-sink first moment is exactly the
//     Elmore delay of the driven tree, so with L = 0 the engine
//     reproduces internal/elmore — the conformance suite asserts this.
//  2. MNA: one shared transient of the whole tree (internal/mna) with
//     every sink probed — all sink delays come from a single solve, not
//     one simulation per sink.
//  3. Reduced: a Krylov reduced-order model (internal/mor via
//     mna.Reduce) with multi-output projection — one basis, every sink
//     an output — stepped in O(q²); certification failure falls back to
//     the exact MNA engine.
//
// The tree converts to a circuit.Circuit (ToCircuit) for the MNA and
// reduced paths; the sparse-triplet MNA form the reduction projects is
// assembled from that circuit by internal/mna.
//
// This is the companion analysis to the paper's point-to-point model:
// Ismail & Friedman's follow-on "equivalent Elmore delay for RLC trees"
// line of work extends the ζ/ωn form to per-sink moments on trees,
// which is exactly the closed-form engine here.
package rlctree

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"rlckit/internal/core"
)

// Typed construction errors. Every validation failure wraps one of
// these, so callers (and the fuzz harness) can classify failures with
// errors.Is instead of string matching.
var (
	// ErrNode reports a node or parent index outside the tree.
	ErrNode = errors.New("rlctree: node out of range")
	// ErrValue reports a non-finite, negative, or otherwise unphysical
	// element value.
	ErrValue = errors.New("rlctree: invalid element value")
	// ErrNoSinks reports an analysis request on a tree with no marked
	// sinks.
	ErrNoSinks = errors.New("rlctree: tree has no sinks")
	// ErrTooLarge reports a tree that exceeds MaxNodes.
	ErrTooLarge = errors.New("rlctree: tree too large")
)

// MaxNodes bounds a tree's node count. It is far above any physical
// net (the serving layer enforces much tighter request guards) and
// exists so that adversarial construction loops fail with a typed
// error instead of exhausting memory.
const MaxNodes = 1 << 20

// Drive is the gate driving the tree root: a step of V volts (default
// 1) behind output resistance Rtr. Sink loads live on the tree itself
// (MarkSink), not on the drive — a multi-sink net has one load per
// sink, not one per net.
type Drive struct {
	// Rtr is the driver's equivalent output resistance in ohms.
	Rtr float64
	// V is the step amplitude in volts (defaults to 1 if zero).
	V float64
}

// Validate checks the drive. Rtr may be zero (an ideal driver).
func (d Drive) Validate() error {
	if d.Rtr < 0 || math.IsNaN(d.Rtr) || math.IsInf(d.Rtr, 0) {
		return fmt.Errorf("rlctree: Rtr must be finite and non-negative, got %g: %w", d.Rtr, ErrValue)
	}
	if math.IsNaN(d.V) || math.IsInf(d.V, 0) {
		return fmt.Errorf("rlctree: V must be finite, got %g: %w", d.V, ErrValue)
	}
	return nil
}

// Amplitude returns the effective step amplitude (1 V default).
func (d Drive) Amplitude() float64 {
	if d.V == 0 {
		return 1
	}
	return d.V
}

// Tree is a lumped RLC tree: node 0 is the root (the driver's output
// net), and every other node hangs off its parent through a series
// branch resistance and inductance, carrying a capacitance to ground.
// Sinks — the receiver pins whose delays matter — are marked explicitly
// and may carry extra load capacitance.
//
// Children always have larger indices than their parents (construction
// order), which is what lets the moment engine run each traversal as a
// single forward or reverse index sweep.
type Tree struct {
	parent []int
	r, l   []float64 // branch impedance from parent (root entries 0)
	c      []float64 // node capacitance to ground
	load   []float64 // extra sink load capacitance
	sink   []bool
	kids   [][]int
	sinks  []int // marked sinks in ascending node order
}

// New returns a tree with a single root node of capacitance cRoot.
func New(cRoot float64) (*Tree, error) {
	if err := checkValue("root capacitance", cRoot); err != nil {
		return nil, err
	}
	return &Tree{
		parent: []int{-1},
		r:      []float64{0},
		l:      []float64{0},
		c:      []float64{cRoot},
		load:   []float64{0},
		sink:   []bool{false},
		kids:   [][]int{nil},
	}, nil
}

// checkValue validates a non-negative finite element value.
func checkValue(what string, v float64) error {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("rlctree: %s must be finite and non-negative, got %g: %w", what, v, ErrValue)
	}
	return nil
}

// checkNode validates a node index against the current tree.
func (t *Tree) checkNode(what string, n int) error {
	if n < 0 || n >= len(t.parent) {
		return fmt.Errorf("rlctree: %s %d out of range [0, %d): %w", what, n, len(t.parent), ErrNode)
	}
	return nil
}

// Add appends a node under parent through a branch of resistance r
// (Ω) and inductance l (H), with node capacitance c (F) to ground,
// returning the new node's index. The branch must have positive series
// impedance (r + l > 0): a zero-impedance branch would merge the node
// with its parent.
func (t *Tree) Add(parent int, r, l, c float64) (int, error) {
	if err := t.checkNode("parent", parent); err != nil {
		return 0, err
	}
	if err := checkValue("branch resistance", r); err != nil {
		return 0, err
	}
	if err := checkValue("branch inductance", l); err != nil {
		return 0, err
	}
	if err := checkValue("node capacitance", c); err != nil {
		return 0, err
	}
	if r == 0 && l == 0 {
		return 0, fmt.Errorf("rlctree: branch into node %d needs r + l > 0: %w", len(t.parent), ErrValue)
	}
	if len(t.parent) >= MaxNodes {
		return 0, fmt.Errorf("rlctree: %d nodes: %w", len(t.parent), ErrTooLarge)
	}
	id := len(t.parent)
	t.parent = append(t.parent, parent)
	t.r = append(t.r, r)
	t.l = append(t.l, l)
	t.c = append(t.c, c)
	t.load = append(t.load, 0)
	t.sink = append(t.sink, false)
	t.kids = append(t.kids, nil)
	t.kids[parent] = append(t.kids[parent], id)
	return id, nil
}

// AddCap adds extra capacitance at a node (e.g. a via stack or a
// non-sink receiver).
func (t *Tree) AddCap(node int, c float64) error {
	if err := t.checkNode("node", node); err != nil {
		return err
	}
	if err := checkValue("capacitance", c); err != nil {
		return err
	}
	t.c[node] += c
	return nil
}

// MarkSink marks a node as a sink carrying load capacitance cl. A node
// may be marked once; marking the root is allowed (a local receiver at
// the driver) but unusual.
func (t *Tree) MarkSink(node int, cl float64) error {
	if err := t.checkNode("sink", node); err != nil {
		return err
	}
	if err := checkValue("sink load", cl); err != nil {
		return err
	}
	if t.sink[node] {
		return fmt.Errorf("rlctree: node %d is already a sink: %w", node, ErrNode)
	}
	t.sink[node] = true
	t.load[node] = cl
	// Keep sinks ascending: nodes are only ever appended, but marking
	// order is the caller's choice.
	at := len(t.sinks)
	for at > 0 && t.sinks[at-1] > node {
		at--
	}
	t.sinks = append(t.sinks, 0)
	copy(t.sinks[at+1:], t.sinks[at:])
	t.sinks[at] = node
	return nil
}

// SetBranch replaces the series branch (r, l) into an existing non-root
// node — the what-if edit of a wire segment (width change, layer move).
// The same value rules as Add apply: finite, non-negative, r + l > 0.
// Topology is untouched; only the branch impedance changes.
func (t *Tree) SetBranch(node int, r, l float64) error {
	if err := t.checkNode("node", node); err != nil {
		return err
	}
	if node == 0 {
		return fmt.Errorf("rlctree: the root has no incoming branch: %w", ErrNode)
	}
	if err := checkValue("branch resistance", r); err != nil {
		return err
	}
	if err := checkValue("branch inductance", l); err != nil {
		return err
	}
	if r == 0 && l == 0 {
		return fmt.Errorf("rlctree: branch into node %d needs r + l > 0: %w", node, ErrValue)
	}
	t.r[node], t.l[node] = r, l
	return nil
}

// SetLoad replaces the load capacitance at a marked sink — the what-if
// edit of a receiver (gate resize, pin swap).
func (t *Tree) SetLoad(node int, cl float64) error {
	if err := t.checkNode("sink", node); err != nil {
		return err
	}
	if err := checkValue("sink load", cl); err != nil {
		return err
	}
	if !t.sink[node] {
		return fmt.Errorf("rlctree: node %d is not a sink: %w", node, ErrNode)
	}
	t.load[node] = cl
	return nil
}

// Len returns the node count.
func (t *Tree) Len() int { return len(t.parent) }

// Sinks returns the marked sink nodes in ascending order (shared
// slice; callers must not mutate).
func (t *Tree) Sinks() []int { return t.sinks }

// Parent returns a node's parent index (-1 for the root).
func (t *Tree) Parent(node int) (int, error) {
	if err := t.checkNode("node", node); err != nil {
		return 0, err
	}
	return t.parent[node], nil
}

// Branch returns the series branch (r, l) into a node and the node's
// total capacitance (own plus sink load).
func (t *Tree) Branch(node int) (r, l, c float64, err error) {
	if err := t.checkNode("node", node); err != nil {
		return 0, 0, 0, err
	}
	return t.r[node], t.l[node], t.c[node] + t.load[node], nil
}

// SinkLoad returns the extra load capacitance at a node (0 for
// non-sinks).
func (t *Tree) SinkLoad(node int) (float64, error) {
	if err := t.checkNode("node", node); err != nil {
		return 0, err
	}
	return t.load[node], nil
}

// TotalCap returns the total capacitance of the tree (node caps plus
// sink loads) — the load the driver sees at DC.
func (t *Tree) TotalCap() float64 {
	sum := 0.0
	for i := range t.c {
		sum += t.c[i] + t.load[i]
	}
	return sum
}

// Scale returns a copy of the tree with every branch resistance
// multiplied by sr, every branch inductance by sl, and every
// capacitance (node and sink load) by sc — the process-corner /
// Monte Carlo perturbation of a tree, mirroring how sweep corners
// scale a line's per-unit-length parameters.
func (t *Tree) Scale(sr, sl, sc float64) (*Tree, error) {
	for _, s := range [...]float64{sr, sl, sc} {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("rlctree: scale factors must be positive and finite, got (%g, %g, %g): %w", sr, sl, sc, ErrValue)
		}
	}
	out := &Tree{
		parent: append([]int(nil), t.parent...),
		sink:   append([]bool(nil), t.sink...),
		sinks:  append([]int(nil), t.sinks...),
		r:      make([]float64, len(t.r)),
		l:      make([]float64, len(t.l)),
		c:      make([]float64, len(t.c)),
		load:   make([]float64, len(t.load)),
	}
	// The child lists are rebuilt from one flat backing array with
	// full-capacity sub-slices: growing a copy's node later reallocates
	// that node's slice instead of writing into this tree's storage.
	// (An earlier version shared the topology slices outright; marking a
	// sink on the copy then corrupted the original's bookkeeping.)
	flat := make([]int, 0, len(t.parent)-1)
	out.kids = make([][]int, len(t.kids))
	for i, ks := range t.kids {
		start := len(flat)
		flat = append(flat, ks...)
		out.kids[i] = flat[start:len(flat):len(flat)]
	}
	for i := range t.r {
		out.r[i] = t.r[i] * sr
		out.l[i] = t.l[i] * sl
		out.c[i] = t.c[i] * sc
		out.load[i] = t.load[i] * sc
	}
	return out, nil
}

// validate checks the tree is analyzable: at least one sink and a
// positive total capacitance (a tree with no capacitance anywhere has
// no transient to measure).
func (t *Tree) validate() error {
	if len(t.sinks) == 0 {
		return ErrNoSinks
	}
	if t.TotalCap() <= 0 {
		return fmt.Errorf("rlctree: tree has no capacitance: %w", ErrValue)
	}
	return nil
}

// nodeMoments holds the per-node voltage moments of the driven tree:
// the transfer function from the step source to node i expanded as
// V_i(s) = 1 + M1[i]·s + M2[i]·s² + M3[i]·s³ + …. M2RC is the second
// moment of the same tree with every inductance removed — the RC-only
// counterfactual the skew error is measured against (the first moment
// is inductance-independent, so it needs no RC twin).
type nodeMoments struct {
	M1, M2, M3, M4   []float64
	M2RC, M3RC, M4RC []float64
}

// momentWorkspace holds the sweep scratch (and the output arrays) of
// momentsInto, so an incremental caller re-running the moment engine
// after every edit allocates nothing per call. The zero value is ready
// to use; arrays grow on demand.
type momentWorkspace struct {
	ctot, mPrev, mPrevRC []float64
	iPrev, iCur, iCurRC  []float64
	mCur, mCurRC         []float64
	out                  nodeMoments
}

// grow resizes every scratch array to n.
func (ws *momentWorkspace) grow(n int) {
	for _, p := range [...]*[]float64{
		&ws.ctot, &ws.mPrev, &ws.mPrevRC,
		&ws.iPrev, &ws.iCur, &ws.iCurRC,
		&ws.mCur, &ws.mCurRC,
	} {
		if cap(*p) < n {
			*p = make([]float64, n)
		}
		*p = (*p)[:n]
	}
}

// moments computes m1..m4 (and the RC-only twins) for every node with a
// fresh workspace.
func (t *Tree) moments(rtr float64) nodeMoments {
	var ws momentWorkspace
	return *t.momentsInto(rtr, &ws)
}

// momentsInto computes m1..m4 (and the RC-only twins) for every node by
// two index sweeps per order: a reverse (bottom-up) sweep accumulating
// the branch current moments I_j = Σ_subtree C·m_{j-1}, then a forward
// (top-down) sweep applying m_j(i) = m_j(parent) − r·I_j(i) − l·I_{j-1}(i).
// The driver resistance acts as the root's branch (with zero
// inductance). O(n) per order, no recursion; every array (including the
// returned nodeMoments' — valid until the workspace's next use) lives
// in ws. The arithmetic is identical for a fresh or a reused workspace,
// so repeated incremental calls are bit-identical to cold ones.
func (t *Tree) momentsInto(rtr float64, ws *momentWorkspace) *nodeMoments {
	n := len(t.parent)
	ws.grow(n)
	ctot := ws.ctot
	for i := range ctot {
		ctot[i] = t.c[i] + t.load[i]
	}
	mPrev := ws.mPrev // m_{j-1}; m_0 ≡ 1
	for i := range mPrev {
		mPrev[i] = 1
	}
	mPrevRC := ws.mPrevRC
	copy(mPrevRC, mPrev)
	iPrev := ws.iPrev // I_{j-1}; I_0 ≡ 0
	for i := range iPrev {
		iPrev[i] = 0
	}
	iCur := ws.iCur
	iCurRC := ws.iCurRC
	out := &ws.out
	store := func(dst *[]float64, src []float64) {
		*dst = append((*dst)[:0], src...)
	}
	mCur := ws.mCur
	mCurRC := ws.mCurRC
	for order := 1; order <= 4; order++ {
		// Bottom-up: branch current moments. Children have larger
		// indices than parents, so one reverse sweep accumulates
		// subtrees.
		for i := 0; i < n; i++ {
			iCur[i] = ctot[i] * mPrev[i]
			iCurRC[i] = ctot[i] * mPrevRC[i]
		}
		for i := n - 1; i >= 1; i-- {
			iCur[t.parent[i]] += iCur[i]
			iCurRC[t.parent[i]] += iCurRC[i]
		}
		// Top-down: voltage moments. The root hangs off the source
		// through Rtr (no driver inductance).
		mCur[0] = -rtr * iCur[0]
		mCurRC[0] = -rtr * iCurRC[0]
		for i := 1; i < n; i++ {
			mCur[i] = mCur[t.parent[i]] - t.r[i]*iCur[i] - t.l[i]*iPrev[i]
			mCurRC[i] = mCurRC[t.parent[i]] - t.r[i]*iCurRC[i]
		}
		switch order {
		case 1:
			store(&out.M1, mCur)
		case 2:
			store(&out.M2, mCur)
			store(&out.M2RC, mCurRC)
		case 3:
			store(&out.M3, mCur)
			store(&out.M3RC, mCurRC)
		case 4:
			store(&out.M4, mCur)
			store(&out.M4RC, mCurRC)
		}
		mPrev, mCur = mCur, mPrev
		mPrevRC, mCurRC = mCurRC, mPrevRC
		iPrev, iCur = iCur, iPrev
	}
	return out
}

// ElmoreDelays returns the Elmore delay from the source to every node
// of the driven tree: −m1, the first moment of the impulse response.
// With L = 0 this is exactly what internal/elmore computes for the
// same topology (asserted by the conformance suite).
func (t *Tree) ElmoreDelays(d Drive) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	m := t.moments(d.Rtr)
	out := make([]float64, len(m.M1))
	for i, v := range m.M1 {
		out[i] = -v
	}
	return out, nil
}

// momentDelay maps a sink's first three voltage moments onto the
// paper's ζ/ωn two-pole model and returns the 50% delay plus the
// two-pole parameters.
//
// A tree sink's transfer function has zeros — side branches hanging off
// the sink's path contribute capacitance to m1 but speed the local
// response up — so a zero-free two-pole fit systematically
// overestimates near-sink delays (and m1² − m2 can even go negative,
// which no (ζ, ωn) pair can represent). The three moments instead fit
//
//	H(s) ≈ (1 + a1·s) / (1 + b1·s + b2·s²)
//
// whose denominator is exactly the paper's two-pole form (ζ = b1·ωn/2,
// ωn = 1/sqrt(b2), Eq. 3/6 generalized per sink) while the single zero
// absorbs the branching effect; matching m1..m3 gives
//
//	b1 = (m3 − m1·m2) / (m1² − m2),  b2 = −m1·b1 − m2,  a1 = m1 + b1.
//
// The 50% delay is the first 0.5 crossing of that model's analytic
// step response. When the fit is unphysical (non-positive b1 or b2 —
// e.g. a response more than 3rd order can hide from three moments) the
// mapping degrades to the zero-free two-pole evaluated by Eq. 9, and
// as a last resort to the single-pole ln2·(−m1).
//
// fitErr is the model's self-diagnosis: the relative mismatch between
// the tree's true fourth moment m4 and the m4 the fitted model
// predicts. A small mismatch certifies that three moments really did
// pin the response down; a large one flags a sink whose response has
// strong higher-order structure (deep pole-zero cancellation from
// sibling subtrees) that no low-order moment map can track. Fallback
// paths report fitErr = +Inf.
//
// inDomain is the full validated-accuracy-domain verdict (see the
// inDomain* constants); within it the conformance suite holds the
// closed form to 10% of the MNA reference.
func momentDelay(m1, m2, m3, m4 float64) (delay, zeta, omegaN, fitErr float64, inDomain bool) {
	if den := m1*m1 - m2; den != 0 {
		b1 := (m3 - m1*m2) / den
		b2 := -m1*b1 - m2
		a1 := m1 + b1
		if b1 > 0 && b2 > 0 && !math.IsInf(b1, 0) && !math.IsInf(b2, 0) {
			omegaN = 1 / math.Sqrt(b2)
			zeta = b1 * omegaN / 2
			if d, shoulderRisk, ok := twoPoleCrossing(a1, b1, b2); ok {
				c3 := -b1*b1*b1 + 2*b1*b2
				c4 := b1*b1*b1*b1 - 3*b1*b1*b2 + b2*b2
				m4pred := c4 + a1*c3
				fitErr = math.Inf(1)
				if m4 != 0 {
					fitErr = math.Abs(m4pred-m4) / math.Abs(m4)
				}
				inDomain = fitErr <= InDomainMaxFitErr &&
					math.Abs(a1/b1) <= inDomainMaxZeroRatio &&
					zeta <= inDomainMaxZeta &&
					!shoulderRisk
				return d, zeta, omegaN, fitErr, inDomain
			}
		}
	}
	// Zero-free fallback: the direct two-pole map with Eq. 9's fitted
	// crossing, defined whenever m1² − m2 is a usable b2.
	b1 := -m1
	b2 := m1*m1 - m2
	if b1 > 0 && b2 > 0 {
		omegaN = 1 / math.Sqrt(b2)
		zeta = b1 * omegaN / 2
		return core.ScaledDelay(zeta) / omegaN, zeta, omegaN, math.Inf(1), false
	}
	return math.Ln2 * b1, math.Inf(1), math.Inf(1), math.Inf(1), false
}

// Accuracy-domain bounds of the closed-form engine, measured against
// the MNA reference over the conformance corpus (population scans in
// internal/conformance pinned them): inside all of them the per-sink
// closed-form delay tracks MNA within 10%.
const (
	// inDomainMaxZeroRatio bounds |a1|/b1 — a stronger fitted zero
	// means the response is dominated by branching structure the
	// two-pole form only partially captures.
	inDomainMaxZeroRatio = 0.25
	// inDomainMaxZeta bounds the fitted damping: far beyond critical
	// the true response is a diffusive multi-pole RC staircase whose
	// 50% crossing drifts from any two-pole's.
	inDomainMaxZeta = 5.0
)

// twoPoleCrossing returns the first time the unit step response of
// (1 + a1·s)/(1 + b1·s + b2·s²) crosses 0.5, plus a shoulder-risk
// flag: true when the response has well-separated real poles and
// either shoulders at a level that interacts with the 50% crossing or
// carries a right-half-plane-leaning zero — the regimes where the
// crossing time is ill-conditioned or the two-pole shape diverges from
// the true staircase (mirroring core.DelayPlateauRisk on lines). The
// response is evaluated from the analytic pole/residue form (uniformly
// in complex arithmetic, so under-, critically- and over-damped cases
// share one path): a coarse forward scan brackets the crossing and
// bisection refines it.
func twoPoleCrossing(a1, b1, b2 float64) (float64, bool, bool) {
	disc := complex(b1*b1-4*b2, 0)
	sq := cmplx.Sqrt(disc)
	p1 := (-complex(b1, 0) + sq) / complex(2*b2, 0)
	p2 := (-complex(b1, 0) - sq) / complex(2*b2, 0)
	if p1 == p2 {
		// Exactly critical damping: split the double pole by one ulp of
		// damping; the delay shift is far below every stated tolerance.
		p2 *= complex(1+1e-9, 0)
	}
	ca := complex(a1, 0)
	cb2 := complex(b2, 0)
	A1 := (1 + ca*p1) / (cb2 * p1 * (p1 - p2))
	A2 := (1 + ca*p2) / (cb2 * p2 * (p2 - p1))
	shoulderRisk := false
	if real(disc) > 0 {
		// Real poles: p1 (−b1+√disc) is the slow one. The shoulder
		// level after the fast transient is 1 + A_slow. Risk: a raised
		// shoulder the crossing can land on (> 0.08, an actual dwell
		// only under strong ≥8× separation), a deeply depressed one
		// (< −0.20: a pronounced staircase), or a negative-leaning zero
		// (a1/b1 < −0.12: slow-start responses whose early shape two
		// poles round off) under mild ≥2.5× separation.
		sep := real(p2) / real(p1) // both negative; ratio > 1
		plateau := 1 + real(A1)
		shoulderRisk = (sep > 8 && plateau > 0.08) ||
			(sep > 2.5 && (plateau < -0.20 || a1/b1 < -0.12))
	}
	y := func(t float64) float64 {
		ct := complex(t, 0)
		return 1 + real(A1*cmplx.Exp(p1*ct)+A2*cmplx.Exp(p2*ct))
	}
	// The slowest settling scale is 1/|Re p| of the slower pole; the
	// 50% crossing of a stable unit-DC-gain response lives well inside
	// a few of those.
	reSlow := math.Min(math.Abs(real(p1)), math.Abs(real(p2)))
	if reSlow <= 0 || math.IsNaN(reSlow) {
		return 0, false, false
	}
	tMax := 6 / reSlow
	const scan = 600
	for attempt := 0; attempt < 3; attempt++ {
		prev := 0.0
		for i := 1; i <= scan; i++ {
			t := tMax * float64(i) / scan
			if y(t) >= 0.5 {
				lo, hi := prev, t
				for k := 0; k < 60 && hi-lo > 1e-14*hi; k++ {
					mid := (lo + hi) / 2
					if y(mid) >= 0.5 {
						hi = mid
					} else {
						lo = mid
					}
				}
				return (lo + hi) / 2, shoulderRisk, true
			}
			prev = t
		}
		tMax *= 4
	}
	return 0, false, false
}
