package rlctree

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rlckit/internal/cancel"
	"rlckit/internal/circuit"
	"rlckit/internal/faultinject"
	"rlckit/internal/mna"
)

// This file is the incremental (what-if) twin of engines.go: load a
// tree once, stream value edits, and re-read per-sink delays after
// each with far less than a from-scratch analysis:
//
//   - closed: the O(n) moment sweeps re-run allocation-free in a
//     reused workspace, and the per-sink crossing search — the
//     dominant closed-form cost — is memoized on the sink's exact
//     moment bits, so sinks whose moments an edit did not move (and
//     any value revisited by the edit script) skip it entirely. The
//     result is bit-identical to a cold Analyze of the edited tree.
//   - mna: the RCM ordering is structural, so value edits re-stamp the
//     frozen ordering (mna.Frozen) and skip the symbolic work; the
//     step loop is unchanged and the result is bit-identical to a cold
//     Analyze of the edited tree.
//   - reduced: the Krylov basis built at open time (with anchors
//     bracketing an AnchorSpread envelope) is frozen; an edit
//     re-targets the reduced pencil by per-element congruence block
//     deltas in O(q²) — no Arnoldi, no re-assembly, nothing O(n·q²).
//     Edits inside the certified envelope evaluate immediately; edits
//     outside it trigger re-certification against exact probe solves,
//     and failure falls back to the (bit-exact frozen) MNA engine,
//     mirroring refeng's envelope guard. The reduced fast path is NOT
//     bit-identical to a cold EngineReduced analysis — a cold build
//     grows a different basis from the edited values — its contract is
//     the certified tolerance; the fallback path IS bit-identical to
//     cold EngineMNA.
//
// A structural edit — a branch r or l, or a node's total capacitance,
// crossing zero, which changes the circuit ToCircuit emits — discards
// the frozen engine state; the next Analyze rebuilds it (counted in
// Stats.Rebuilds).

// momentKey is a sink's exact moment bits — the memo key for the
// closed-form crossing search (momentDelay is a pure function of these
// four values).
type momentKey struct {
	m1, m2, m3, m4 float64
}

type momentVal struct {
	delay, zeta, omegaN, fitErr float64
	inDomain                    bool
}

// memoLimit bounds the crossing memo; when full it is cleared rather
// than evicted (edit scripts revisit a small working set).
const memoLimit = 1 << 15

// redParamKind classifies an envelope parameter.
type redParamKind uint8

const (
	paramR redParamKind = iota // branch or driver resistance
	paramL                     // branch inductance
	paramC                     // node total capacitance
)

// redParam is one envelope-tracked value of the frozen reduced model.
type redParam struct {
	kind   redParamKind
	elem   int     // circuit element index at build time
	build  float64 // build-time effective value
	rat    float64 // current/build ratio
	lo, hi float64 // certified envelope for rat
	out    bool    // rat outside [lo, hi]
}

// errReducedUnstable marks a frozen reduced transient that left the
// passive range: the rescaled pencil is unstable at the current values
// even though frequency-domain certification passed (an unstable mode
// can couple to every probe with negligible residue). The evaluation
// falls back to the exact engine.
var errReducedUnstable = errors.New("rlctree: frozen reduced transient left the passive range")

// IncStats counts the incremental engine's path decisions.
type IncStats struct {
	// Edits counts accepted edits; Analyzes completed result reads.
	Edits, Analyzes int
	// MemoHits/MemoMisses count the closed-form crossing memo.
	MemoHits, MemoMisses int
	// ReducedFast counts results answered by the frozen reduced model;
	// Recerts re-certifications triggered by out-of-envelope values;
	// RecertFails those that failed; Fallbacks results the exact engine
	// answered after a reduced failure.
	ReducedFast, Recerts, RecertFails, Fallbacks int
	// Rebuilds counts frozen-state rebuilds after structural edits.
	Rebuilds int
}

// Incremental is a stateful what-if analyzer over one tree: edit
// values (SetBranch/SetLoad/SetDriver), then Analyze with any engine.
// Not safe for concurrent use; callers serialize (internal/session
// wraps it with a lock).
type Incremental struct {
	t   *Tree
	d   Drive
	cfg Config

	// Closed-form state.
	ws   momentWorkspace
	memo map[momentKey]momentVal

	// Edits pending reduced-model sync, and the structural flag.
	dirty       map[int]bool
	driverDirty bool
	structDirty bool

	// Exact-engine state.
	frz *mna.Frozen

	// Reduced-engine state.
	red       *mna.Reduced
	redErr    error // sticky non-certifiable build → fallback
	redProbes []int
	delay0    float64 // frozen source step delay
	buildAmp  float64 // frozen source amplitude
	freqs0    []float64
	params    []redParam
	pR, pL    []int // per-node param index (-1 absent)
	pC        []int
	pRtr      int
	redOut    int // params currently outside their envelope

	stats IncStats
}

// NewIncremental opens a what-if session over a copy of the tree. The
// configured engine is only Analyze's default; every engine's state is
// built lazily on first use.
func NewIncremental(t *Tree, d Drive, cfg Config) (*Incremental, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	ct, err := t.Scale(1, 1, 1) // deep copy; ×1 is bit-exact
	if err != nil {
		return nil, err
	}
	return &Incremental{
		t:     ct,
		d:     d,
		cfg:   cfg.withDefaults(),
		memo:  make(map[momentKey]momentVal),
		dirty: make(map[int]bool),
	}, nil
}

// Tree returns a copy of the current (edited) tree — the net a cold
// analysis must be given to reproduce Analyze's answer.
func (inc *Incremental) Tree() *Tree {
	ct, _ := inc.t.Scale(1, 1, 1)
	return ct
}

// Drive returns the current drive.
func (inc *Incremental) Drive() Drive { return inc.d }

// Branch returns a branch's current series values (see Tree.Branch).
func (inc *Incremental) Branch(node int) (r, l, c float64, err error) {
	return inc.t.Branch(node)
}

// SinkLoad returns a sink's current load capacitance (see
// Tree.SinkLoad).
func (inc *Incremental) SinkLoad(node int) (float64, error) {
	return inc.t.SinkLoad(node)
}

// Stats returns the path counters.
func (inc *Incremental) Stats() IncStats { return inc.stats }

// SetBranch edits the series branch into a node. An r or l crossing
// zero is a structural edit (the emitted circuit changes shape) and
// schedules a frozen-state rebuild.
func (inc *Incremental) SetBranch(node int, r, l float64) error {
	if err := inc.t.checkNode("node", node); err != nil {
		return err
	}
	oldR, oldL := inc.t.r[node], inc.t.l[node]
	if err := inc.t.SetBranch(node, r, l); err != nil {
		return err
	}
	if (oldR > 0) != (r > 0) || (oldL > 0) != (l > 0) {
		inc.structDirty = true
	}
	inc.dirty[node] = true
	inc.stats.Edits++
	return nil
}

// SetLoad edits a sink's load capacitance.
func (inc *Incremental) SetLoad(node int, cl float64) error {
	if err := inc.t.checkNode("sink", node); err != nil {
		return err
	}
	oldTot := inc.t.c[node] + inc.t.load[node]
	if err := inc.t.SetLoad(node, cl); err != nil {
		return err
	}
	if (oldTot > 0) != (inc.t.c[node]+cl > 0) {
		inc.structDirty = true
	}
	inc.dirty[node] = true
	inc.stats.Edits++
	return nil
}

// SetDriver edits the drive. The driver resistance is always stamped
// (ToCircuit substitutes 1e-6 Ω for an ideal driver), so this is never
// structural; amplitude changes shift the reduced path's crossing
// level rather than its frozen source — a linear system's 50% delay is
// amplitude-invariant.
func (inc *Incremental) SetDriver(d Drive) error {
	if err := d.Validate(); err != nil {
		return err
	}
	inc.d = d
	inc.driverDirty = true
	inc.stats.Edits++
	return nil
}

// memoDelay is momentDelay behind the crossing memo. Non-finite
// moments bypass the memo (NaN keys never match themselves).
func (inc *Incremental) memoDelay(m1, m2, m3, m4 float64) (delay, zeta, omegaN, fitErr float64, inDomain bool) {
	if math.IsNaN(m1) || math.IsNaN(m2) || math.IsNaN(m3) || math.IsNaN(m4) {
		return momentDelay(m1, m2, m3, m4)
	}
	k := momentKey{m1, m2, m3, m4}
	if v, ok := inc.memo[k]; ok {
		inc.stats.MemoHits++
		return v.delay, v.zeta, v.omegaN, v.fitErr, v.inDomain
	}
	inc.stats.MemoMisses++
	delay, zeta, omegaN, fitErr, inDomain = momentDelay(m1, m2, m3, m4)
	if len(inc.memo) >= memoLimit {
		clear(inc.memo)
	}
	inc.memo[k] = momentVal{delay, zeta, omegaN, fitErr, inDomain}
	return delay, zeta, omegaN, fitErr, inDomain
}

// closedTable is closedTable on the reused workspace and crossing
// memo — the same arithmetic as the cold path, so the values are
// bit-identical.
func (inc *Incremental) closedTable() []SinkDelay {
	m := inc.t.momentsInto(inc.d.Rtr, &inc.ws)
	out := make([]SinkDelay, len(inc.t.sinks))
	for k, node := range inc.t.sinks {
		s := &out[k]
		s.Node = node
		s.M1, s.M2, s.M3 = m.M1[node], m.M2[node], m.M3[node]
		s.DelayClosed, s.Zeta, s.OmegaN, s.FitErr, s.InDomain = inc.memoDelay(s.M1, s.M2, s.M3, m.M4[node])
		s.DelayRC, _, _, _, _ = inc.memoDelay(s.M1, m.M2RC[node], m.M3RC[node], m.M4RC[node])
	}
	return out
}

// Analyze reads the per-sink delay table of the current (edited) tree
// with the given engine, reusing as much frozen state as the edit
// history allows. ctx cancels the simulation engines exactly as
// Config.Ctx does for the cold Analyze.
func (inc *Incremental) Analyze(ctx context.Context, engine Engine) (*Result, error) {
	cfg := inc.cfg
	cfg.Ctx = ctx
	if err := inc.t.validate(); err != nil {
		return nil, err
	}
	if inc.structDirty {
		if inc.frz != nil || inc.red != nil || inc.redErr != nil {
			inc.stats.Rebuilds++
		}
		inc.frz = nil
		inc.red, inc.redErr = nil, nil
		clear(inc.dirty)
		inc.driverDirty = false
		inc.structDirty = false
	}
	table := inc.closedTable()
	res := &Result{Engine: engine, Sinks: table}
	switch engine {
	case EngineClosed:
		for i := range res.Sinks {
			res.Sinks[i].Delay = res.Sinks[i].DelayClosed
		}
	case EngineMNA:
		delays, err := inc.delaysFrozenMNA(cfg, table)
		if err != nil {
			return nil, err
		}
		for i := range res.Sinks {
			res.Sinks[i].Delay = delays[i]
		}
	case EngineReduced:
		delays, reduced, err := inc.delaysFrozenReduced(ctx, cfg, table)
		if err != nil {
			return nil, err
		}
		res.Reduced = reduced
		if reduced {
			res.MORInfo = inc.red.Info()
			inc.stats.ReducedFast++
		} else {
			res.Fallback = true
			inc.stats.Fallbacks++
		}
		for i := range res.Sinks {
			res.Sinks[i].Delay = delays[i]
		}
	default:
		return nil, fmt.Errorf("rlctree: unknown engine %v", engine)
	}
	res.finishSkew()
	inc.stats.Analyzes++
	return res, nil
}

// delaysFrozenMNA is delaysMNA with the assembly's RCM/symbolic work
// frozen: the circuit is re-emitted with the current values, re-stamped
// into the pinned ordering, and simulated with the exact plan a cold
// run would use — bit-identical output, minus the ordering cost.
func (inc *Incremental) delaysFrozenMNA(cfg Config, table []SinkDelay) ([]float64, error) {
	dt, delay, tEnd := inc.t.transientPlan(inc.d, cfg, table)
	ckt, nodeOf, err := inc.t.ToCircuit(inc.d, delay)
	if err != nil {
		return nil, err
	}
	probes := make([]int, len(inc.t.sinks))
	for k, node := range inc.t.sinks {
		probes[k] = nodeOf[node]
	}
	if inc.frz == nil {
		if inc.frz, err = mna.Freeze(ckt); err != nil {
			return nil, err
		}
	} else if err = inc.frz.Restamp(ckt); err != nil {
		// A structural change slipped past the edit-time detection;
		// re-freeze rather than fail.
		inc.stats.Rebuilds++
		if inc.frz, err = mna.Freeze(ckt); err != nil {
			return nil, err
		}
	}
	return runCrossings(func(tEnd float64) (*mna.Result, error) {
		return inc.frz.Simulate(mna.Options{Dt: dt, TEnd: tEnd, Probes: probes, Ctx: cfg.Ctx})
	}, probes, inc.d.Amplitude()/2, delay-dt/2, tEnd, "sink")
}

// delaysFrozenReduced answers through the frozen reduced model when it
// exists (building it on first use) and its certified envelope — or a
// fresh re-certification — covers the current values; otherwise it
// answers through the frozen exact engine. reduced reports which path
// produced the delays.
func (inc *Incremental) delaysFrozenReduced(ctx context.Context, cfg Config, table []SinkDelay) (delays []float64, reduced bool, err error) {
	if inc.red == nil && inc.redErr == nil {
		if err := inc.buildReduced(cfg, table); err != nil {
			return nil, false, err
		}
	}
	fallback := func() ([]float64, bool, error) {
		d, err := inc.delaysFrozenMNA(cfg, table)
		return d, false, err
	}
	if inc.redErr != nil {
		// The open-time build could not be certified; the exact engine
		// owns this session until a structural rebuild.
		return fallback()
	}
	if err := inc.syncReduced(); err != nil {
		return nil, false, err
	}
	if inc.redOut > 0 {
		// The certified envelope no longer covers the values: re-certify
		// the recombined pencil against exact probe solves before
		// trusting it (one complex band factorization per probe).
		inc.stats.Recerts++
		errPct, cerr := inc.red.CertifyCurrent(inc.freqs0)
		if cerr != nil || errPct > 100*cfg.ValTol {
			inc.stats.RecertFails++
			if cerr != nil && (cancel.Is(cerr) || faultinject.IsFault(cerr)) {
				return nil, false, cerr
			}
			return fallback()
		}
		// Certified at the current values: the envelope grows to cover
		// them, so staying in this neighborhood stays on the fast path.
		for i := range inc.params {
			p := &inc.params[i]
			if p.out {
				p.lo = math.Min(p.lo, p.rat)
				p.hi = math.Max(p.hi, p.rat)
				p.out = false
			}
		}
		inc.redOut = 0
	}
	// The reduced transient replays the frozen source (step at delay0,
	// build amplitude): a linear system's 50% crossing is amplitude-
	// invariant. The grid is the EDITED net's cold grid — a cold run of
	// this net would step the source at 10·dt, while the frozen source
	// steps at delay0, so the discrete input is shifted by a whole number
	// of samples. A fixed-step linear recurrence shifted by whole samples
	// produces a bit-identical shifted output, so subtracting the shifted
	// effective step time reproduces the cold run's timing convention to
	// rounding. The on-sample indices are found by replaying the
	// simulator's accumulated `t += dt` clock, not by dividing, so that
	// accumulated-rounding near a sample boundary resolves identically
	// here and inside Simulate.
	horizon, tFast := inc.t.timeScales(inc.d, table)
	dt := math.Min(horizon/float64(cfg.StepsPerScale), tFast/30)
	onSample := func(stepAt float64) int {
		m, t := 0, 0.0
		for t < stepAt {
			t += dt
			m++
		}
		return m
	}
	shift := float64(onSample(inc.delay0)-onSample(10*dt)) * dt
	effDelay := 10*dt - dt/2 + shift
	tEnd := horizon + inc.delay0
	// Time-domain certificate: frequency-domain certification can miss
	// an unstable pole the rescaled pencil grew off the build point — a
	// right-half-plane mode with a tiny probe residue sits below the
	// certified tolerance at every probe frequency yet amplifies rounding
	// noise without bound in the transient (the conformance corpus caught
	// exactly this: cert error 2e-6 with the waveform at 1e200 by the
	// horizon). A passive RLC step response is bounded by ~2x the drive
	// amplitude, so any sample beyond a generous multiple (or non-finite)
	// convicts the pencil and this evaluation drops to the exact engine;
	// the next edit may move back to a stable point, so nothing is sticky.
	unstableBound := 8 * inc.buildAmp
	delays, rerr := runCrossings(func(tEnd float64) (*mna.Result, error) {
		res, err := inc.red.Simulate(mna.Options{Dt: dt, TEnd: tEnd, Probes: inc.redProbes, Ctx: ctx})
		if err != nil {
			return nil, err
		}
		for _, p := range inc.redProbes {
			w, werr := res.Waveform(p)
			if werr != nil {
				return nil, werr
			}
			for _, y := range w.Y {
				if math.IsNaN(y) || math.Abs(y) > unstableBound {
					return nil, errReducedUnstable
				}
			}
		}
		return res, nil
	}, inc.redProbes, inc.buildAmp/2, effDelay, tEnd, "reduced sink response")
	if rerr != nil {
		if cancel.Is(rerr) || faultinject.IsFault(rerr) {
			return nil, false, rerr
		}
		return fallback()
	}
	return delays, true, nil
}

// buildReduced is the open-time cost of the reduced fast path: one
// anchored Krylov build over the current tree, the per-element scaling
// index, and the certified envelope. A certification failure is sticky
// (inc.redErr): cold analyses of this tree would fall back too, and
// the exact engine answers until a structural rebuild.
func (inc *Incremental) buildReduced(cfg Config, table []SinkDelay) error {
	horizon, tFast := inc.t.timeScales(inc.d, table)
	dt := math.Min(horizon/float64(cfg.StepsPerScale), tFast/30)
	inc.delay0 = 10 * dt
	inc.buildAmp = inc.d.Amplitude()
	inc.freqs0 = treeProbeFreqs(horizon, tFast)
	ckt, nodeOf, err := inc.t.ToCircuit(inc.d, inc.delay0)
	if err != nil {
		return err
	}
	probes := make([]int, len(inc.t.sinks))
	for k, node := range inc.t.sinks {
		probes[k] = nodeOf[node]
	}
	// Anchors bracket a uniform ×spread / ÷spread family of the tree
	// elements AND of the driver resistance, so any value-set inside the
	// envelope projects accurately through the frozen basis (the same
	// contract refeng's corner anchors provide). The driver pair is not
	// redundant: rtr is held fixed by the tree-scaling pair, and a basis
	// anchored only there projects driver edits an order of magnitude
	// worse than its certificate claims.
	spread := cfg.AnchorSpread
	anchors := make([]*circuit.Circuit, 0, 4)
	for _, s := range [...]float64{1 / spread, spread} {
		st, err := inc.t.Scale(s, s, s)
		if err != nil {
			return err
		}
		ackt, _, err := st.ToCircuit(inc.d, inc.delay0)
		if err != nil {
			return err
		}
		anchors = append(anchors, ackt)
	}
	rtrEff := inc.d.Rtr
	if rtrEff == 0 {
		rtrEff = 1e-6
	}
	for _, s := range [...]float64{1 / spread, spread} {
		ad := inc.d
		ad.Rtr = rtrEff * s
		ackt, _, err := inc.t.ToCircuit(ad, inc.delay0)
		if err != nil {
			return err
		}
		anchors = append(anchors, ackt)
	}
	red, err := mna.Reduce(ckt, probes, mna.ReduceOptions{
		Freqs:    inc.freqs0,
		MaxOrder: cfg.MaxOrder,
		ValTol:   cfg.ValTol,
		Anchors:  anchors,
		Ctx:      cfg.Ctx,
	})
	if err != nil {
		if cancel.Is(err) || faultinject.IsFault(err) {
			return err
		}
		inc.redErr = err
		return nil
	}
	if err := red.StartElementScaling(); err != nil {
		return err
	}
	if err := inc.indexElements(ckt, cfg); err != nil {
		return err
	}
	inc.red = red
	inc.redProbes = probes
	inc.redOut = 0
	clear(inc.dirty)
	inc.driverDirty = false
	return nil
}

// indexElements rebuilds the tree-parameter → circuit-element map by
// replaying ToCircuit's construction order, and seeds the envelope.
func (inc *Incremental) indexElements(ckt *circuit.Circuit, cfg Config) error {
	n := inc.t.Len()
	inc.pR = make([]int, n)
	inc.pL = make([]int, n)
	inc.pC = make([]int, n)
	for i := 0; i < n; i++ {
		inc.pR[i], inc.pL[i], inc.pC[i] = -1, -1, -1
	}
	inc.params = inc.params[:0]
	lim := math.Pow(cfg.AnchorSpread, 1.15)
	if lim < 1.02 {
		lim = 1.02
	}
	elems := ckt.Elements()
	addParam := func(kind redParamKind, elem int, build float64, wantKind circuit.ElementKind) (int, error) {
		if elem >= len(elems) || elems[elem].Kind != wantKind {
			return 0, fmt.Errorf("rlctree: element map out of sync at element %d", elem)
		}
		inc.params = append(inc.params, redParam{
			kind: kind, elem: elem, build: build,
			rat: 1, lo: 1 / lim, hi: lim,
		})
		return len(inc.params) - 1, nil
	}
	// ToCircuit order: vin, rtr, per-branch R/L, then per-node C.
	ei := 1 // element 0 is vin
	rtr := inc.d.Rtr
	if rtr == 0 {
		rtr = 1e-6
	}
	var err error
	if inc.pRtr, err = addParam(paramR, ei, rtr, circuit.KindResistor); err != nil {
		return err
	}
	ei++
	for i := 1; i < n; i++ {
		if inc.t.r[i] > 0 {
			if inc.pR[i], err = addParam(paramR, ei, inc.t.r[i], circuit.KindResistor); err != nil {
				return err
			}
			ei++
		}
		if inc.t.l[i] > 0 {
			if inc.pL[i], err = addParam(paramL, ei, inc.t.l[i], circuit.KindInductor); err != nil {
				return err
			}
			ei++
		}
	}
	for i := 0; i < n; i++ {
		if tot := inc.t.c[i] + inc.t.load[i]; tot > 0 {
			if inc.pC[i], err = addParam(paramC, ei, tot, circuit.KindCapacitor); err != nil {
				return err
			}
			ei++
		}
	}
	if ei != len(elems) {
		return fmt.Errorf("rlctree: element map covered %d of %d elements", ei, len(elems))
	}
	return nil
}

// syncReduced replays the pending edits into the frozen reduced model:
// per edited parameter one O(q²) block delta, then one O(q²) pencil
// commit for the batch.
func (inc *Incremental) syncReduced() error {
	changed := false
	apply := func(pi int, val float64) error {
		p := &inc.params[pi]
		rat := val / p.build
		if rat == p.rat {
			return nil
		}
		var sG, sC float64 = 1, 1
		switch p.kind {
		case paramR:
			sG = 1 / rat // conductance stamps scale inversely
		case paramL:
			sC = rat // the ±1 topology stamps in G never scale
		case paramC:
			sC = rat
		}
		if err := inc.red.ScaleElement(p.elem, sG, sC); err != nil {
			return err
		}
		wasOut := p.out
		p.rat = rat
		p.out = rat < p.lo || rat > p.hi
		if p.out != wasOut {
			if p.out {
				inc.redOut++
			} else {
				inc.redOut--
			}
		}
		changed = true
		return nil
	}
	for node := range inc.dirty {
		if pi := inc.pR[node]; pi >= 0 {
			if err := apply(pi, inc.t.r[node]); err != nil {
				return err
			}
		}
		if pi := inc.pL[node]; pi >= 0 {
			if err := apply(pi, inc.t.l[node]); err != nil {
				return err
			}
		}
		if pi := inc.pC[node]; pi >= 0 {
			if err := apply(pi, inc.t.c[node]+inc.t.load[node]); err != nil {
				return err
			}
		}
	}
	if inc.driverDirty {
		rtr := inc.d.Rtr
		if rtr == 0 {
			rtr = 1e-6
		}
		if err := apply(inc.pRtr, rtr); err != nil {
			return err
		}
	}
	clear(inc.dirty)
	inc.driverDirty = false
	if changed {
		return inc.red.CommitPencil()
	}
	return nil
}
