package rlctree

import (
	"sync"
	"testing"
)

// mapPencils is a PencilStore over a plain map, with hit/put counters
// so tests can assert which path ran.
type mapPencils struct {
	mu               sync.Mutex
	m                map[string][]byte
	gets, hits, puts int
}

func (s *mapPencils) GetPencil(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	p, ok := s.m[key]
	if ok {
		s.hits++
	}
	return p, ok
}

func (s *mapPencils) PutPencil(key string, pencil []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.m == nil {
		s.m = map[string][]byte{}
	}
	s.m[key] = append([]byte(nil), pencil...)
}

// TestPencilStoreRoundTrip: a second analysis through a warm pencil
// store must skip the Arnoldi build and still produce bit-identical
// delays — the property that lets a restarted server promise warm
// responses equal to cold computes.
func TestPencilStoreRoundTrip(t *testing.T) {
	tr, d := buildY(t), Drive{Rtr: 80}
	ps := &mapPencils{}
	cfg := Config{Engine: EngineReduced, Pencils: ps}

	cold, err := Analyze(tr, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Reduced {
		t.Fatal("reduced engine fell back; pencil path untested")
	}
	if ps.puts != 1 || ps.hits != 0 {
		t.Fatalf("cold run: puts=%d hits=%d, want 1/0", ps.puts, ps.hits)
	}

	warm, err := Analyze(tr, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ps.hits != 1 {
		t.Fatalf("warm run did not hit the pencil store (gets=%d hits=%d)", ps.gets, ps.hits)
	}
	if ps.puts != 1 {
		t.Fatalf("warm run rebuilt the model (puts=%d)", ps.puts)
	}
	if !warm.Reduced || warm.MORInfo != cold.MORInfo {
		t.Fatalf("warm MORInfo %+v != cold %+v", warm.MORInfo, cold.MORInfo)
	}
	for i := range cold.Sinks {
		if warm.Sinks[i] != cold.Sinks[i] {
			t.Fatalf("sink %d differs warm vs cold:\n  %+v\n  %+v", i, warm.Sinks[i], cold.Sinks[i])
		}
	}
	if warm.MaxSkew != cold.MaxSkew || warm.MinDelay != cold.MinDelay || warm.MaxDelay != cold.MaxDelay {
		t.Fatal("skew statistics differ warm vs cold")
	}
}

// TestPencilKeySeparates: different trees, drives, or build options
// must never share a key (a collision is survivable thanks to the
// fingerprint check, but it would silently zero the hit rate by
// overwriting entries).
func TestPencilKeySeparates(t *testing.T) {
	tr, d := buildY(t), Drive{Rtr: 80}
	tr2 := buildY(t)
	if err := tr2.MarkSink(1, 1e-15); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Engine: EngineReduced}

	base := pencilKey(tr, d, cfg.withDefaults())
	if pencilKey(tr, d, cfg.withDefaults()) != base {
		t.Fatal("pencil key is not deterministic")
	}
	if pencilKey(tr2, d, cfg.withDefaults()) == base {
		t.Fatal("tree change kept the same key")
	}
	if pencilKey(tr, Drive{Rtr: d.Rtr * (1 + 1e-15)}, cfg.withDefaults()) == base {
		t.Fatal("one-ulp drive change kept the same key")
	}
	cfg2 := cfg
	cfg2.MaxOrder = 48
	if pencilKey(tr, d, cfg2.withDefaults()) == base {
		t.Fatal("MaxOrder change kept the same key")
	}
}

// TestPencilMismatchRebuilds: bytes under the right key but from the
// wrong system must be rejected by the fingerprint check and trigger a
// fresh build, not a wrong answer.
func TestPencilMismatchRebuilds(t *testing.T) {
	tr, d := buildY(t), Drive{Rtr: 80}
	ps := &mapPencils{}
	cfg := Config{Engine: EngineReduced, Pencils: ps}
	cold, err := Analyze(tr, d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Poison every entry with garbage of plausible length.
	ps.mu.Lock()
	for k, v := range ps.m {
		bad := append([]byte(nil), v...)
		for i := range bad {
			bad[i] ^= 0x5a
		}
		ps.m[k] = bad
	}
	ps.mu.Unlock()

	again, err := Analyze(tr, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ps.puts != 2 {
		t.Fatalf("poisoned pencil did not trigger a rebuild (puts=%d)", ps.puts)
	}
	for i := range cold.Sinks {
		if again.Sinks[i] != cold.Sinks[i] {
			t.Fatalf("rebuild after poisoned pencil differs at sink %d", i)
		}
	}
}
