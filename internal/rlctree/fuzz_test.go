package rlctree

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// fuzzValues maps a byte to an element value, covering the interesting
// classes: zeros, negatives, NaN/Inf, denormals, and huge-but-finite.
var fuzzValues = []float64{
	0, 1, -1, 1e-15, 1e-12, 50, -50, 1e300, -1e300,
	math.NaN(), math.Inf(1), math.Inf(-1), 5e-324, 1e-30, 0.5, 2,
}

func fuzzValue(b byte) float64 { return fuzzValues[int(b)%len(fuzzValues)] }

// interpretTree runs a byte-encoded construction program against a
// Tree, returning the first construction error (nil if every op
// succeeded). Opcodes: 0 = Add, 1 = AddCap, 2 = MarkSink, 3 = extend a
// chain from the last node (next byte × 64 segments — how small fuzz
// inputs reach 10k-sink-chain scale).
func interpretTree(data []byte) (*Tree, error) {
	t, err := New(fuzzValue(pick(data, 0)))
	if err != nil {
		return nil, err
	}
	last := 0
	for i := 1; i+4 < len(data); i += 5 {
		op, a, b, c, d := data[i], data[i+1], data[i+2], data[i+3], data[i+4]
		switch op % 4 {
		case 0:
			parent := int(a) - 2 // reaches -2 .. 253: orphan and wild parents
			id, err := t.Add(parent, fuzzValue(b), fuzzValue(c), fuzzValue(d))
			if err != nil {
				return t, err
			}
			last = id
		case 1:
			if err := t.AddCap(int(a)-2, fuzzValue(b)); err != nil {
				return t, err
			}
		case 2:
			if err := t.MarkSink(int(a)-2, fuzzValue(b)); err != nil {
				return t, err
			}
		case 3:
			n := int(a) * 64
			for k := 0; k < n; k++ {
				id, err := t.Add(last, 1, 1e-12, 1e-15)
				if err != nil {
					return t, err
				}
				if k%2 == 1 {
					if err := t.MarkSink(id, 1e-15); err != nil {
						return t, err
					}
				} else {
					last = id
				}
			}
		}
	}
	return t, nil
}

func pick(data []byte, i int) byte {
	if i < len(data) {
		return data[i]
	}
	return 0
}

// typedErr asserts an error wraps one of the package's typed errors.
func typedErr(err error) bool {
	return errors.Is(err, ErrNode) || errors.Is(err, ErrValue) ||
		errors.Is(err, ErrNoSinks) || errors.Is(err, ErrTooLarge)
}

// FuzzTreeTopology drives construction, conversion, and the closed
// analysis with arbitrary programs: orphan parents, zero/negative/NaN
// branch values, single-node trees, and op-3-generated chains up to
// 10k+ sinks. Nothing may panic, and every rejection must carry a
// typed error.
func FuzzTreeTopology(f *testing.F) {
	// Minimal valid tree with one sink.
	f.Add([]byte{1, 0, 2, 5, 4, 4, 2, 3, 3, 0, 0})
	// Orphan parent, negative and NaN values.
	f.Add([]byte{0, 0, 255, 2, 9, 5, 0, 0, 6, 3, 1})
	// Single-node tree (no branches): analysis must fail typed.
	f.Add([]byte{3})
	// Long chain: op 3 with a large repeat count → ~10k sinks.
	f.Add([]byte{1, 0, 2, 5, 4, 4, 3, 200, 0, 0, 0, 3, 255, 0, 0, 0})
	// Zero-impedance branch and double sink marking.
	f.Add([]byte{1, 0, 2, 0, 0, 4, 2, 3, 3, 0, 0, 2, 3, 3, 0, 0})
	// Dense random-ish program.
	seed := make([]byte, 64)
	binary.LittleEndian.PutUint64(seed, 0x9e3779b97f4a7c15)
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		tree, err := interpretTree(data)
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("untyped construction error: %v", err)
			}
			if tree == nil {
				return
			}
		}
		d := Drive{Rtr: fuzzValue(pick(data, 1))}
		if _, _, err := tree.ToCircuit(d, 0); err != nil && !typedErr(err) {
			t.Fatalf("untyped ToCircuit error: %v", err)
		}
		res, err := Analyze(tree, d, Config{Engine: EngineClosed})
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("untyped Analyze error: %v", err)
			}
			return
		}
		// A successful analysis must produce a full, ordered sink table.
		if len(res.Sinks) != len(tree.Sinks()) {
			t.Fatalf("sink table size %d vs %d sinks", len(res.Sinks), len(tree.Sinks()))
		}
		for i := 1; i < len(res.Sinks); i++ {
			if res.Sinks[i].Node <= res.Sinks[i-1].Node {
				t.Fatalf("sink table not ascending at %d", i)
			}
		}
		if _, err := tree.ElmoreDelays(d); err != nil && !typedErr(err) {
			t.Fatalf("untyped ElmoreDelays error: %v", err)
		}
	})
}

// TestTenKSinkChain pins the scale case the fuzz encoding reaches
// probabilistically: a 10k-sink chain constructs, converts, and
// analyzes (closed form) without issue.
func TestTenKSinkChain(t *testing.T) {
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	node := 0
	sinks := 0
	for sinks < 10000 {
		node, err = tr.Add(node, 0.5, 5e-13, 2e-15)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.MarkSink(node, 1e-15); err != nil {
			t.Fatal(err)
		}
		sinks++
	}
	d := Drive{Rtr: 25}
	ckt, _, err := tr.ToCircuit(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ckt.Nodes() < 10000 {
		t.Fatalf("conversion lost nodes: %d", ckt.Nodes())
	}
	res, err := Analyze(tr, d, Config{Engine: EngineClosed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks) != 10000 {
		t.Fatalf("got %d sinks", len(res.Sinks))
	}
	if res.MaxSkew <= 0 {
		t.Error("chain must have positive skew")
	}
}
