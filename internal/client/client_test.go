package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flaky returns a handler that fails `fails` times with status, then
// answers 200 with body "ok".
func flaky(fails int, status int, header http.Header) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fails) {
			for k, vs := range header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"transient"}`))
			return
		}
		w.Header().Set("X-Cache", "miss")
		w.Write([]byte("ok"))
	}, &calls
}

func TestRetriesTransientStatuses(t *testing.T) {
	for _, status := range []int{429, 500, 503} {
		h, calls := flaky(2, status, nil)
		ts := httptest.NewServer(h)
		c := New(ts.URL, Config{BaseDelay: time.Millisecond, Seed: 7})
		resp, err := c.PostJSON(context.Background(), "/v1/delay", []byte(`{}`))
		ts.Close()
		if err != nil || resp.Status != 200 || string(resp.Body) != "ok" {
			t.Fatalf("status %d: resp=%+v err=%v", status, resp, err)
		}
		if resp.Retries != 2 || calls.Load() != 3 {
			t.Errorf("status %d: retries=%d calls=%d, want 2 and 3", status, resp.Retries, calls.Load())
		}
	}
}

func TestNoRetryOnPermanentRejection(t *testing.T) {
	h, calls := flaky(100, 400, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL, Config{BaseDelay: time.Millisecond})
	resp, err := c.PostJSON(context.Background(), "/v1/delay", []byte(`{}`))
	if err != nil || resp.Status != 400 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if calls.Load() != 1 {
		t.Errorf("400 was retried: %d calls", calls.Load())
	}
}

func TestExhaustedRetriesReturnFinalResponse(t *testing.T) {
	h, calls := flaky(100, 503, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL, Config{MaxRetries: 2, BaseDelay: time.Millisecond})
	resp, err := c.PostJSON(context.Background(), "/v1/delay", []byte(`{}`))
	if err != nil || resp.Status != 503 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if resp.Retries != 2 || calls.Load() != 3 {
		t.Errorf("retries=%d calls=%d, want 2 and 3", resp.Retries, calls.Load())
	}
}

func TestHonorsRetryAfterCapped(t *testing.T) {
	c := New("http://unused", Config{BaseDelay: time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 3})
	// A 1-second server hint is capped at MaxDelay (plus ≤25% jitter).
	if d := c.backoff(1, time.Second); d > 100*time.Millisecond || d < 60*time.Millisecond {
		t.Errorf("hinted backoff = %v, want ~80ms capped", d)
	}
	// Without a hint the curve is exponential from BaseDelay.
	d1, d2 := c.backoff(1, 0), c.backoff(2, 0)
	if d1 > 2*time.Millisecond || d2 < d1 {
		t.Errorf("backoff curve %v, %v not exponential from 1ms", d1, d2)
	}
	// Deterministic: same seed, same waits.
	c2 := New("http://unused", Config{BaseDelay: time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 3})
	if c2.backoff(1, 0) != d1 || c2.backoff(2, 0) != d2 {
		t.Error("jitter not deterministic for a fixed seed")
	}
}

func TestRetryAfterHeaderIsUsed(t *testing.T) {
	hdr := http.Header{}
	hdr.Set("Retry-After", "1")
	h, _ := flaky(1, 503, hdr)
	ts := httptest.NewServer(h)
	defer ts.Close()
	// MaxDelay 30ms caps the 1s hint, keeping the test fast while still
	// proving the hint path runs.
	c := New(ts.URL, Config{BaseDelay: time.Millisecond, MaxDelay: 30 * time.Millisecond})
	start := time.Now()
	resp, err := c.PostJSON(context.Background(), "/v1/delay", []byte(`{}`))
	if err != nil || resp.Status != 200 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if wait := time.Since(start); wait < 20*time.Millisecond {
		t.Errorf("hinted retry waited only %v, want ≥ capped hint", wait)
	}
}

func TestContextCancelsBackoffSleep(t *testing.T) {
	h, _ := flaky(100, 503, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL, Config{BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second})
	ctx, stop := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); stop() }()
	start := time.Now()
	_, err := c.PostJSON(ctx, "/v1/delay", []byte(`{}`))
	if err == nil {
		t.Fatal("canceled request returned no error")
	}
	if time.Since(start) > time.Second {
		t.Errorf("cancellation did not interrupt the backoff sleep")
	}
}

func TestNetworkErrorRetriesThenErrors(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // refused from the first attempt
	c := New(ts.URL, Config{MaxRetries: 1, BaseDelay: time.Millisecond})
	_, err := c.PostJSON(context.Background(), "/v1/delay", []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("err=%v, want connection refused", err)
	}
}

// TestBackoffSaturatesAtHighAttempts: before the saturation fix,
// BaseDelay << (attempt-1) overflowed time.Duration around attempt 35
// and the negative result was floored to 1 ms — a 64-retry client
// would hammer the server at millisecond cadence exactly when it
// should be backing off hardest. Every attempt's wait must stay within
// the jittered MaxDelay band once the curve reaches the cap, and never
// collapse below BaseDelay.
func TestBackoffSaturatesAtHighAttempts(t *testing.T) {
	c := New("http://unused", Config{
		MaxRetries: 64,
		BaseDelay:  50 * time.Millisecond,
		MaxDelay:   2 * time.Second,
		Seed:       3,
	})
	prevCapped := false
	for attempt := 1; attempt <= 64; attempt++ {
		d := c.backoff(attempt, 0)
		if d < c.cfg.BaseDelay/2 {
			t.Fatalf("attempt %d: wait %v collapsed below BaseDelay (overflow regression)", attempt, d)
		}
		if max := c.cfg.MaxDelay + c.cfg.MaxDelay/4; d > max {
			t.Fatalf("attempt %d: wait %v exceeds jittered cap %v", attempt, d, max)
		}
		// Once an attempt reaches the cap band, every later one must too.
		capped := d >= c.cfg.MaxDelay-c.cfg.MaxDelay/4
		if prevCapped && !capped {
			t.Fatalf("attempt %d: wait %v fell back out of the cap band", attempt, d)
		}
		prevCapped = capped
	}
	if !prevCapped {
		t.Fatal("64 attempts never reached the MaxDelay band")
	}
}

// TestBackoffOverflowGuardNearDurationMax: a cap in the top half of
// the Duration range used to be unreachable (the shift overflowed
// first); the saturating loop must land on it instead.
func TestBackoffOverflowGuardNearDurationMax(t *testing.T) {
	c := New("http://unused", Config{
		MaxRetries: 80,
		BaseDelay:  time.Nanosecond,
		MaxDelay:   time.Duration(1<<63 - 1),
		Seed:       5,
	})
	for attempt := 60; attempt <= 80; attempt++ {
		if d := c.backoff(attempt, 0); d <= 0 {
			t.Fatalf("attempt %d: wait %v went non-positive (overflow)", attempt, d)
		}
	}
}
