// Package client is a small retrying HTTP client for rlckit's serving
// layer: it POSTs JSON request bodies to a rlckitd-compatible server
// and retries the transient failure classes the server documents —
// 429 admission rejections, 503 shutdown/cancellation responses, 5xx
// faults, and network errors — with capped exponential backoff and
// deterministic jitter. Permanent rejections (400s: the request's
// physics is wrong) are never retried.
//
// The server's Retry-After hint is honored when present: an adaptive
// hint from the batcher queue beats a blind backoff curve. Either way
// the delay is capped at MaxDelay, and the caller's context cancels a
// sleeping retry immediately.
//
// The serving layer's responses are pure functions of the request
// body, so retries are safe by construction; the chaos suite
// (internal/chaos) asserts a retried request returns byte-identical
// bytes.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Config tunes a Client. The zero value retries 4 times starting at
// 50 ms, capped at 2 s per wait.
type Config struct {
	// MaxRetries is the number of re-attempts after the first try;
	// 0 means DefaultMaxRetries, negative disables retries.
	MaxRetries int
	// BaseDelay is the first backoff wait (doubled each retry);
	// 0 means DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps every wait, including server Retry-After hints;
	// 0 means DefaultMaxDelay.
	MaxDelay time.Duration
	// Seed makes the jitter sequence reproducible; 0 seeds from 1.
	Seed int64
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// Client defaults.
const (
	DefaultMaxRetries = 4
	DefaultBaseDelay  = 50 * time.Millisecond
	DefaultMaxDelay   = 2 * time.Second
)

// Client posts JSON to one rlckit server with retries. It is safe for
// concurrent use.
type Client struct {
	base    string
	cfg     Config
	retries int
	http    *http.Client
}

// New builds a Client for the server at base URL (e.g.
// "http://127.0.0.1:8080").
func New(base string, cfg Config) *Client {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = DefaultBaseDelay
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultMaxDelay
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	retries := cfg.MaxRetries
	if retries < 0 {
		retries = 0
	}
	h := cfg.HTTP
	if h == nil {
		h = http.DefaultClient
	}
	return &Client{base: base, cfg: cfg, retries: retries, http: h}
}

// Response is one completed exchange: the final status and body, plus
// how many retries it took.
type Response struct {
	Status  int
	Body    []byte
	Retries int
	// Cache is the server's X-Cache header ("hit", "miss", or empty).
	Cache string
}

// retryable reports whether a status is a transient failure class.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// splitmix64 is the deterministic jitter source (same finalizer as
// internal/pool's seeding) — no global rand, no locks.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff computes the wait before re-attempt `attempt` (1-based):
// the server's Retry-After hint when given, else BaseDelay doubled per
// attempt but saturating at MaxDelay — the doubling stops at the cap,
// so a large attempt count cannot shift the Duration into overflow.
// Either way the wait is jittered ±25% and capped at MaxDelay.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseDelay
	for i := 1; i < attempt; i++ {
		if d >= c.cfg.MaxDelay {
			break
		}
		d <<= 1
		if d <= 0 {
			// Doubling overflowed (MaxDelay is in the top half of the
			// Duration range): saturate at the cap.
			d = c.cfg.MaxDelay
			break
		}
	}
	if retryAfter > 0 {
		d = retryAfter
	}
	if d > c.cfg.MaxDelay {
		d = c.cfg.MaxDelay
	}
	// Deterministic jitter in [−25%, +25%) from (seed, attempt).
	h := splitmix64(uint64(c.cfg.Seed) ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(h>>11)/(1<<53) - 0.5
	d += time.Duration(frac * 0.5 * float64(d))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// parseRetryAfter reads a Retry-After header in delta-seconds form
// (the only form the server emits); 0 means absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// PostJSON posts body to path (e.g. "/v1/delay") under ctx, retrying
// transient failures. It returns the final response — whose status may
// still be non-2xx once retries are exhausted or for permanent (4xx)
// rejections — or an error when the network failed on every attempt or
// ctx fired.
func (c *Client) PostJSON(ctx context.Context, path string, body []byte) (*Response, error) {
	return c.Do(ctx, "POST", path, body)
}

// Delete issues DELETE to path (e.g. "/v1/session/s1") with the same
// retry policy as PostJSON. Session deletion is idempotent server-side
// (a repeat delete answers 404), so retrying it is safe.
func (c *Client) Delete(ctx context.Context, path string) (*Response, error) {
	return c.Do(ctx, "DELETE", path, nil)
}

// Do issues one method/path/body exchange under the retry policy; see
// PostJSON. All rlckitd endpoints are safe to retry: responses are pure
// functions of the body, and the one mutating verb (session DELETE) is
// idempotent.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (*Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		ar, err := c.do(ctx, method, path, body)
		if err == nil && !retryable(ar.Status) {
			ar.Retries = attempt
			return &ar.Response, nil
		}
		var retryAfter time.Duration
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
		} else {
			lastErr = fmt.Errorf("client: %s: status %d: %s", path, ar.Status, bytes.TrimSpace(ar.Body))
			retryAfter = ar.retryAfter
		}
		if attempt == c.retries {
			if err == nil {
				// Retries exhausted on a retryable status: hand the final
				// response to the caller rather than hiding it in an error.
				ar.Retries = attempt
				return &ar.Response, nil
			}
			return nil, lastErr
		}
		wait := c.backoff(attempt+1, retryAfter)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// do is one attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*attemptResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &attemptResponse{
		Response:   Response{Status: resp.StatusCode, Body: b, Cache: resp.Header.Get("X-Cache")},
		retryAfter: parseRetryAfter(resp.Header),
	}, nil
}

type attemptResponse struct {
	Response
	retryAfter time.Duration
}
