package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 1000
		hits := make([]int32, n)
		err := Run(workers, n, func() struct{} { return struct{}{} },
			func(_ struct{}, i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(4, 0, func() int { return 0 }, func(int, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, workers := range []int{1, 4} {
		err := Run(workers, 100, func() struct{} { return struct{}{} },
			func(_ struct{}, i int) error {
				if i == 17 || i == 63 {
					return boom(i)
				}
				return nil
			})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		// With one worker the scan is sequential, so index 17 must win;
		// with several workers any failing index may be reported, but the
		// lowest *observed* failure wins and both candidates share text.
		if workers == 1 && err.Error() != "task 17 failed" {
			t.Fatalf("sequential error %q", err)
		}
	}
}

func TestRunStopsAfterError(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("stop")
	_ = Run(2, 100000, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) error {
			ran.Add(1)
			if i == 0 {
				return sentinel
			}
			return nil
		})
	if got := ran.Load(); got >= 100000 {
		t.Errorf("pool did not stop early: ran %d tasks", got)
	}
}

func TestWorkerScratchIsPrivate(t *testing.T) {
	// Each worker's scratch must be its own: count setups and ensure the
	// total work tallied through scratches equals n.
	var setups atomic.Int64
	type counter struct{ n int }
	counters := make(chan *counter, 64)
	n := 5000
	err := Run(8, n, func() *counter {
		setups.Add(1)
		c := &counter{}
		counters <- c
		return c
	}, func(c *counter, i int) error {
		c.n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(counters)
	total := 0
	for c := range counters {
		total += c.n
	}
	if total != n {
		t.Errorf("scratch-tallied work %d, want %d", total, n)
	}
	if s := setups.Load(); s < 1 || s > 8 {
		t.Errorf("%d setups for 8 workers", s)
	}
}

func TestSeedDeterministicAndDecorrelated(t *testing.T) {
	if Seed(42, 1, 2, 3) != Seed(42, 1, 2, 3) {
		t.Fatal("Seed not deterministic")
	}
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		s := Seed(7, i)
		if s < 0 {
			t.Fatalf("negative seed %d", s)
		}
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if Seed(7, 1, 0) == Seed(7, 0, 1) {
		t.Error("index path order ignored")
	}
	if Seed(7, 5) == Seed(8, 5) {
		t.Error("base seed ignored")
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0, 10); w < 1 {
		t.Errorf("Workers(0,10)=%d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8,3)=%d", w)
	}
	if w := Workers(-2, 0); w != 1 {
		t.Errorf("Workers(-2,0)=%d", w)
	}
}

func TestSourceSeedIsCheapAndDeterministic(t *testing.T) {
	a, b := NewSource(5), NewSource(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical seeds diverged")
		}
	}
	a.Seed(9)
	b.Seed(9)
	if a.Uint64() != b.Uint64() {
		t.Fatal("re-seed diverged")
	}
	if v := a.Int63(); v < 0 {
		t.Errorf("Int63 returned negative %d", v)
	}
	// Different seeds must decorrelate immediately.
	c, d := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between adjacent seeds", same)
	}
}
