// Package pool is the shared parallel-batch substrate of rlckit: a
// bounded worker pool over an index space, plus deterministic per-index
// seed derivation. Every batch layer in the module — the Monte Carlo
// sweep engine (internal/sweep), net screening (internal/screen), random
// workload generation (internal/netgen) and the AC frequency sweep
// (internal/mna) — runs on Run, so there is exactly one work-stealing
// loop to reason about.
//
// Determinism contract: Run gives no ordering guarantees about *when*
// indices execute, so callers that need reproducible output must (a)
// write results into per-index slots and (b) derive any randomness for
// index i from Seed(base, i, ...) rather than from a shared stream.
// Under that discipline the output is byte-identical for every worker
// count and GOMAXPROCS setting, which internal/sweep's determinism tests
// enforce.
//
// Cancellation: RunCtx threads a request context through the same
// loop. Workers re-check the context between claimed indices, so an
// abandoned request frees the whole pool within one index's work; the
// typed errors from internal/cancel propagate unwrapped for the serve
// layer to map onto 503 responses.
package pool

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"rlckit/internal/cancel"
	"rlckit/internal/faultinject"
)

// Workers resolves a requested worker count against a task count:
// requested <= 0 means GOMAXPROCS, and the result never exceeds tasks
// (or falls below 1).
func Workers(requested, tasks int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(scratch, i) for every index i in [0, n) on a bounded
// worker pool. Each worker calls setup once and reuses the returned
// scratch value for all of its tasks, so per-task work can be
// allocation-free (the pattern established by the mna AC sweep). Indices
// are claimed from a shared atomic counter, which keeps workers busy
// even when task costs are skewed.
//
// The first error stops the pool: in-flight tasks finish, remaining
// indices are skipped, and of the failures actually observed the one
// with the lowest index is returned. With one worker this is exactly
// the first failing index.
func Run[S any](workers, n int, setup func() S, fn func(scratch S, i int) error) error {
	return RunCtx(nil, workers, n, setup, fn)
}

// RunCtx is Run with a cancellation checkpoint between claimed
// indices: once ctx is done, workers stop claiming and RunCtx returns
// the typed cancel.ErrCanceled/ErrDeadline — unless a task had already
// failed, in which case that (lowest-index) error wins. In-flight
// tasks are never interrupted mid-index; callers whose per-index work
// is long thread ctx into fn themselves. A nil or background ctx adds
// one nil-channel select per index and nothing else.
func RunCtx[S any](ctx context.Context, workers, n int, setup func() S, fn func(scratch S, i int) error) error {
	if n <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Inline fast path: no goroutines, no atomics.
		scratch := setup()
		for i := 0; i < n; i++ {
			if canceled() {
				return cancel.Check(ctx)
			}
			faultinject.Sleep(faultinject.SitePoolWorker)
			if err := fn(scratch, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		failed    atomic.Bool
		abandoned atomic.Bool
		wg        sync.WaitGroup
		mu        sync.Mutex
		errIdx    = -1
		firstEr   error
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := setup()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if canceled() {
					abandoned.Store(true)
					failed.Store(true)
					return
				}
				faultinject.Sleep(faultinject.SitePoolWorker)
				if err := fn(scratch, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	if abandoned.Load() {
		return cancel.Check(ctx)
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used
// to decorrelate seed streams derived from sequential indices.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed derives a non-negative seed from a base seed and an index path
// (net index, corner index, sample index, ...). Adjacent indices map to
// decorrelated streams, and the derivation depends only on the values —
// never on scheduling — so per-index RNGs reproduce exactly across runs,
// worker counts, and GOMAXPROCS settings.
func Seed(base int64, idx ...int64) int64 {
	h := splitmix64(uint64(base))
	for _, i := range idx {
		h = splitmix64(h ^ uint64(i))
	}
	return int64(h >> 1)
}

// Source is a SplitMix64 rand.Source64. Unlike math/rand's default
// source — whose Seed reinitializes a 607-word lagged-Fibonacci state
// and costs microseconds — Seed here is a single store, so a worker can
// re-seed one Source per task (millions of times per sweep) for free.
// The generator is the standard SplitMix64 stream: state advances by the
// golden-ratio gamma and each output is the finalizer of the new state.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// SeededRand couples a rand.Rand to its re-seedable SplitMix64 source —
// the per-worker scratch every batch layer uses: create one per worker
// with NewSeededRand as the Run setup, then call Seed with a
// pool.Seed-derived value before each unit of randomized work.
type SeededRand struct {
	src *Source
	*rand.Rand
}

// NewSeededRand returns a SeededRand (seed it before first use).
func NewSeededRand() *SeededRand {
	src := NewSource(1)
	return &SeededRand{src: src, Rand: rand.New(src)}
}

// Seed rewinds the generator to the given seed's stream in O(1).
func (s *SeededRand) Seed(seed int64) { s.src.Seed(seed) }
