package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rlckit/internal/cancel"
)

func TestRunCtxNilAndBackgroundBehaveLikeRun(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		for _, workers := range []int{1, 4} {
			var n atomic.Int64
			err := RunCtx(ctx, workers, 100, func() int { return 0 }, func(int, int) error {
				n.Add(1)
				return nil
			})
			if err != nil || n.Load() != 100 {
				t.Fatalf("ctx=%v workers=%d: err=%v ran=%d", ctx, workers, err, n.Load())
			}
		}
	}
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := RunCtx(ctx, workers, 50, func() int { return 0 }, func(int, int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, cancel.ErrCanceled) {
			t.Fatalf("workers=%d: err=%v, want ErrCanceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran after pre-cancel", workers, ran.Load())
		}
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, stop := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := RunCtx(ctx, workers, 10000, func() int { return 0 }, func(_ int, i int) error {
			if ran.Add(1) == 20 {
				stop()
			}
			time.Sleep(50 * time.Microsecond)
			return nil
		})
		stop()
		if !errors.Is(err, cancel.ErrCanceled) {
			t.Fatalf("workers=%d: err=%v, want ErrCanceled", workers, err)
		}
		if n := ran.Load(); n >= 10000 {
			t.Fatalf("workers=%d: cancellation did not stop the run (ran %d)", workers, n)
		}
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, stop := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer stop()
	err := RunCtx(ctx, 4, 100, func() int { return 0 }, func(int, int) error { return nil })
	if !errors.Is(err, cancel.ErrDeadline) {
		t.Fatalf("err=%v, want ErrDeadline", err)
	}
}

// A genuine task error observed before the cancellation wins (it is
// more informative than the cancel sentinel).
func TestRunCtxTaskErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, stop := context.WithCancel(context.Background())
	err := RunCtx(ctx, 4, 1000, func() int { return 0 }, func(_ int, i int) error {
		if i == 3 {
			stop()
			return boom
		}
		return nil
	})
	stop()
	if !errors.Is(err, boom) && !cancel.Is(err) {
		t.Fatalf("err=%v, want boom or a cancel sentinel", err)
	}
}

// Goroutine-leak assertion (goleak-style, hand-rolled): a canceled
// multi-worker run must leave no workers behind once it returns.
func TestRunCtxLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, stop := context.WithCancel(context.Background())
		var n atomic.Int64
		_ = RunCtx(ctx, 8, 500, func() int { return 0 }, func(int, int) error {
			if n.Add(1) == 10 {
				stop()
			}
			return nil
		})
		stop()
	}
	waitStableGoroutines(t, base)
}

// waitStableGoroutines polls until the goroutine count returns to (or
// below) base plus a small slack, failing after a deadline.
func waitStableGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
