// Package chaos holds the fault-injection soak suite for the
// serve/engine stack. It has no production code: the package exists so
// that
//
//	go test -race -tags faultinject ./internal/chaos
//
// drives mixed traffic (delay, repeaters, sweep, tree) through a real
// HTTP server via the retrying client (internal/client) while seeded
// failpoints (internal/faultinject) fire panics in batched computes,
// corrupt cache entries, fail band-LU factorizations and stall pool
// workers, and a fraction of requests are canceled mid-flight.
//
// The invariants under test:
//
//   - no deadlock and no goroutine leak after the storm (the server
//     drains to its baseline goroutine count);
//   - every request that the client retried to success returns bytes
//     identical to the fault-free answer — injected faults may cost
//     latency, never correctness;
//   - cache corruption is caught by the integrity checksum and
//     repaired, never served.
//
// Without the faultinject build tag the same test runs as a plain
// concurrency soak (all failpoints compile to no-ops), so the suite is
// also a cheap -race smoke for the serving stack. FAULT_ROUNDS scales
// the number of traffic rounds for nightly runs; -short runs one.
package chaos
