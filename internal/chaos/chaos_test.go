package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rlckit/internal/client"
	"rlckit/internal/faultinject"
	"rlckit/internal/serve"
)

// spec is one request in the traffic mix. Bodies are fixed so the
// first fault-free answer is the golden answer for every later retry.
type spec struct {
	path string
	body string
}

const line = `{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01}`

// smallTree is a 7-node binary tree (root + 6 branches) with sinks at
// the four leaves.
func smallTree(engine string) string {
	return `{"tree":{"root_c":1e-14,"branches":[` +
		`{"parent":0,"r":20,"l":2e-10,"c":2.5e-14},` +
		`{"parent":0,"r":22,"l":2.2e-10,"c":2.4e-14},` +
		`{"parent":1,"r":18,"l":1.8e-10,"c":2.6e-14},` +
		`{"parent":1,"r":24,"l":2.4e-10,"c":2.2e-14},` +
		`{"parent":2,"r":19,"l":1.9e-10,"c":2.3e-14},` +
		`{"parent":2,"r":21,"l":2.1e-10,"c":2.5e-14}],` +
		`"sinks":[{"node":3,"cl":8e-15},{"node":4,"cl":1.2e-14},` +
		`{"node":5,"cl":1e-14},{"node":6,"cl":9e-15}]},` +
		`"drive":{"rtr":40},"engine":"` + engine + `"}`
}

// mix is the steady traffic every soak client replays each round.
var mix = []spec{
	{"/v1/delay", `{"line":` + line + `,"drive":{"rtr":500,"cl":5e-13}}`},
	{"/v1/delay", `{"line":` + line + `,"drive":{"rtr":250,"cl":1e-13},"method":"exact"}`},
	{"/v1/delay", `{"line":` + line + `,"drive":{"rtr":250,"cl":1e-13},"method":"reduced"}`},
	{"/v1/repeaters", `{"line":` + line + `,"node":"250nm"}`},
	{"/v1/sweep", `{"node":"250nm","nets":50,"seed":7,"rise_s":5e-11,"samples":2,"sigma":0.1}`},
	{"/v1/sweep", `{"node":"250nm","nets":20,"seed":9,"rise_s":5e-11,"estimator":"simulated"}`},
	{"/v1/tree", smallTree("closed")},
	{"/v1/tree", smallTree("mna")},
	{"/v1/tree", smallTree("reduced")},
}

// sessionScript is the fixed edit sequence every soak client replays
// in a what-if session of its own. Session responses carry a
// per-session ID and bypass the response cache, so the soak pins only
// the embedded result payload, keyed by script step: the same open
// body plus the same edits must produce byte-identical results in
// every session, in every round, at any worker count. The edits are
// absolute sets (not deltas), so a faulted-then-retried edit that was
// already applied re-applies to the same state — retries are safe for
// the payload even when the generation counter moves twice.
var sessionScript = []string{
	`{"edits":[{"op":"branch","node":2,"r":19.5,"l":1.95e-10}],"engine":"mna"}`,
	`{"edits":[{"op":"driver","rtr":36},{"op":"load","node":4,"cl":1.3e-14}],"engine":"reduced"}`,
	`{"edits":[{"op":"load","node":6,"cl":1.05e-14}]}`,
}

// heavy is a long-running sweep used only as a cancellation target: it
// is canceled a few milliseconds in, so the worker must bail out at a
// per-sample checkpoint rather than finish the full net count.
const heavy = `{"node":"250nm","nets":5000,"seed":3,"rise_s":5e-11,"estimator":"simulated"}`

func rounds(t *testing.T) int {
	if v := os.Getenv("FAULT_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad FAULT_ROUNDS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 1
	}
	return 3
}

// waitStableGoroutines polls until the goroutine count drains back to
// its pre-test baseline (plus scheduler slack), dumping stacks on
// timeout — a hand-rolled goleak.
func waitStableGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

func TestChaosSoak(t *testing.T) {
	base := runtime.NumGoroutine()
	if faultinject.Active {
		faultinject.Configure(faultinject.Config{
			Seed:     20260808,
			SleepFor: int64(time.Millisecond),
			Rates: map[string]float64{
				faultinject.SiteFactor:     0.15,
				faultinject.SitePoolWorker: 0.05,
				faultinject.SiteBatch:      0.10,
				faultinject.SiteCache:      0.10,
			},
		})
		defer faultinject.Reset()
	}

	s, err := serve.New(serve.Config{Workers: 4, MaxInFlight: 128, MaxSessions: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	httpc := ts.Client()
	c := client.New(ts.URL, client.Config{
		MaxRetries: 6,
		BaseDelay:  2 * time.Millisecond,
		MaxDelay:   50 * time.Millisecond,
		Seed:       11,
		HTTP:       httpc,
	})

	var (
		mu       sync.Mutex
		golden   = map[string][]byte{}
		sessions = map[int][]byte{}
		retried  atomic.Uint64
	)
	check := func(sp spec, resp *client.Response, err error) {
		if err != nil {
			t.Errorf("%s: %v", sp.path, err)
			return
		}
		if resp.Status != 200 {
			t.Errorf("%s: status %d after %d retries: %s", sp.path, resp.Status, resp.Retries, resp.Body)
			return
		}
		retried.Add(uint64(resp.Retries))
		key := sp.path + "\x00" + sp.body
		mu.Lock()
		defer mu.Unlock()
		if want, ok := golden[key]; ok {
			if !bytes.Equal(want, resp.Body) {
				t.Errorf("%s: retried/repeated response diverged from first answer\nfirst: %s\n now: %s",
					sp.path, want, resp.Body)
			}
			return
		}
		golden[key] = resp.Body
	}

	// checkSessionResult pins a session edit response's result payload
	// against the first answer for that script step.
	checkSessionResult := func(step int, body []byte) {
		var ed serve.SessionEditResponse
		if err := json.Unmarshal(body, &ed); err != nil {
			t.Errorf("session edit %d: bad response %q: %v", step, body, err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if want, ok := sessions[step]; ok {
			if !bytes.Equal(want, ed.Result) {
				t.Errorf("session edit %d: result diverged across sessions\nfirst: %s\n now: %s",
					step, want, ed.Result)
			}
			return
		}
		sessions[step] = append([]byte(nil), ed.Result...)
	}
	// runSession is one full what-if lifecycle: open, replay the fixed
	// edit script, close. Session deletion is idempotent server-side,
	// so the retrying client's Delete is safe; a close that exhausts
	// its retries just leaves the session for TTL/LRU eviction.
	//
	// Sessions bypass the response cache, so unlike the cached mix a
	// retried session request recomputes — and redraws its failpoints —
	// on every attempt; under sustained injection a request can
	// legitimately exhaust its retries and surface a 500. The handler
	// applies the edit batch before the faultable compute and the edits
	// are absolute sets, so the session state is identical whether or
	// not any attempt's compute survived: a final failure just skips
	// that step's golden comparison and the script continues.
	runSession := func() {
		resp, err := c.PostJSON(context.Background(), "/v1/session", []byte(smallTree("closed")))
		if err == nil && resp.Status != 200 && faultinject.Active {
			return
		}
		if err != nil || resp.Status != 200 {
			t.Errorf("session open: status %v err %v", resp, err)
			return
		}
		var open serve.SessionOpenResponse
		if err := json.Unmarshal(resp.Body, &open); err != nil {
			t.Errorf("session open: bad response %q: %v", resp.Body, err)
			return
		}
		for step, body := range sessionScript {
			er, err := c.PostJSON(context.Background(), "/v1/session/"+open.SessionID+"/edit", []byte(body))
			if err != nil {
				t.Errorf("session edit %d: %v", step, err)
				return
			}
			if er.Status != 200 {
				if faultinject.Active {
					continue // edit applied, compute faulted out; state converges
				}
				t.Errorf("session edit %d: status %d: %s", step, er.Status, er.Body)
				return
			}
			checkSessionResult(step, er.Body)
		}
		c.Delete(context.Background(), "/v1/session/"+open.SessionID)
	}

	const clients = 6
	for round := 0; round < rounds(t); round++ {
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i, sp := range mix {
					// Odd clients abandon every third request mid-flight:
					// the outcome is discarded, the invariant is that the
					// server frees the worker and the soak still drains.
					if w%2 == 1 && i%3 == 0 {
						ctx, stop := context.WithTimeout(context.Background(), 2*time.Millisecond)
						c.PostJSON(ctx, sp.path, []byte(sp.body))
						stop()
						continue
					}
					resp, err := c.PostJSON(context.Background(), sp.path, []byte(sp.body))
					check(sp, resp, err)
				}
				// Fresh bodies bust the response cache so computes (and
				// their failpoints: batch panics, factor failures) keep
				// running in every round, not just the first; posting
				// each twice pins the recompute against its own first
				// answer.
				fresh := spec{"/v1/delay", fmt.Sprintf(
					`{"line":`+line+`,"drive":{"rtr":%d,"cl":1e-13},"method":"exact"}`,
					400+round*clients+w)}
				for j := 0; j < 2; j++ {
					resp, err := c.PostJSON(context.Background(), fresh.path, []byte(fresh.body))
					check(fresh, resp, err)
				}
				runSession()
				// One heavy in-flight cancellation per client per round.
				ctx, stop := context.WithTimeout(context.Background(), 3*time.Millisecond)
				c.PostJSON(ctx, "/v1/sweep", []byte(heavy))
				stop()
			}(w)
		}
		wg.Wait()
	}

	st := s.Stats()
	if faultinject.Active {
		for _, site := range []string{faultinject.SiteFactor, faultinject.SitePoolWorker,
			faultinject.SiteBatch, faultinject.SiteCache, faultinject.SiteSession} {
			t.Logf("fired %-14s %d", site, faultinject.Fired(site))
		}
		t.Logf("client retries=%d server errors=%d canceled=%d poisoned=%d skipped=%d",
			retried.Load(), st.Errors, st.Canceled, st.CachePoisoned, st.BatchSkipped)
		t.Logf("sessions opened=%d evicted=%d edits=%d",
			st.SessionsOpened, st.SessionsEvicted, st.SessionEdits)
		if fired := faultinject.Fired(faultinject.SiteCache); fired > 0 && st.CachePoisoned == 0 {
			// Corruption happened but was never re-read; that is legal
			// (the poisoned keys may simply not have been hit again),
			// so only log it — the byte-identity check above already
			// proves no corrupt bytes were served.
			t.Logf("cache corrupted %d times but never re-hit", fired)
		}
	} else if st.Errors != 0 {
		t.Errorf("fault-free soak produced %d server errors", st.Errors)
	}

	ts.Close()
	httpc.CloseIdleConnections()
	s.Close()
	waitStableGoroutines(t, base)
}

// TestRetryReturnsIdenticalBytes pins the determinism contract the
// soak relies on in a minimal, always-on form: the same body posted
// twice — once cold, once after the cache may have been poisoned —
// returns byte-identical responses.
func TestRetryReturnsIdenticalBytes(t *testing.T) {
	if faultinject.Active {
		faultinject.Configure(faultinject.Config{
			Seed:  7,
			Rates: map[string]float64{faultinject.SiteCache: 1.0},
		})
		defer faultinject.Reset()
	}
	s, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.Config{BaseDelay: time.Millisecond, HTTP: ts.Client()})

	sp := mix[0]
	first, err := c.PostJSON(context.Background(), sp.path, []byte(sp.body))
	if err != nil || first.Status != 200 {
		t.Fatalf("first: %+v err=%v", first, err)
	}
	for i := 0; i < 4; i++ {
		again, err := c.PostJSON(context.Background(), sp.path, []byte(sp.body))
		if err != nil || again.Status != 200 {
			t.Fatalf("again[%d]: %+v err=%v", i, again, err)
		}
		if !bytes.Equal(first.Body, again.Body) {
			t.Fatalf("response %d diverged:\nfirst: %s\n now: %s", i, first.Body, again.Body)
		}
	}
	if faultinject.Active {
		st := s.Stats()
		if st.CachePoisoned == 0 {
			t.Error("cache corruption at rate 1.0 was never detected")
		}
		t.Logf("poisoned hits detected and repaired: %d", st.CachePoisoned)
	}
}
