package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"rlckit/internal/client"
	"rlckit/internal/serve"
)

// This file is the kill-mid-write crash harness: it builds the real
// rlckitd binary with the faultinject tag, arms one store-layer crash
// site per scenario via FAULTINJECT_CRASH, drives real HTTP traffic at
// the child until the injected SIGKILL lands mid-write, then restarts
// the daemon on the same -store-dir and asserts the durability
// contract: recovery succeeds, nothing corrupt is ever served (torn
// records are discarded and counted), warm answers are byte-identical
// to the cold golden answers, and a journaled what-if session
// continues its edit script with identical payloads.

// crashRounds scales the kill loop: every scenario runs this many
// times with a fresh store each (CRASH_ROUNDS env, default 1 — the
// nightly chaos job storms it).
func crashRounds(t *testing.T) int {
	if v := os.Getenv("CRASH_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CRASH_ROUNDS=%q", v)
		}
		return n
	}
	return 1
}

// crashMix is the cacheable traffic replayed cold and warm. Trimmed
// relative to the soak mix: every crash scenario replays it three
// times (golden, pre-crash, post-recovery) across two child processes.
var crashMix = []spec{
	{"/v1/delay", `{"line":` + line + `,"drive":{"rtr":500,"cl":5e-13}}`},
	{"/v1/delay", `{"line":` + line + `,"drive":{"rtr":250,"cl":1e-13},"method":"exact"}`},
	{"/v1/tree", smallTree("closed")},
	{"/v1/tree", smallTree("mna")},
	{"/v1/tree", smallTree("reduced")},
}

var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

// buildDaemon compiles cmd/rlckitd with the faultinject build tag once
// per test-process (the harness itself runs under any tag set — the
// crash sites live in the child).
func buildDaemon(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rlckitd-crash-")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "rlckitd")
		cmd := exec.Command("go", "build", "-tags", "faultinject", "-o", builtBin, "rlckit/cmd/rlckitd")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build -tags faultinject rlckit/cmd/rlckitd: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

var listenRe = regexp.MustCompile(`rlckitd .* listening on ([^ ]+) `)

// daemon is one live rlckitd child process.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	exited chan *os.ProcessState
}

// startDaemon launches the binary on a random port with the given
// store dir, waits for the listener line, and streams the rest of
// stderr into the test log. crashEnv, when non-empty, arms a crash
// site (e.g. "store.crash.journal=2").
func startDaemon(t *testing.T, bin, storeDir, snapInterval, crashEnv string) *daemon {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-store-dir", storeDir,
		"-snapshot-interval="+snapInterval,
		"-workers", "2",
	)
	cmd.Env = os.Environ()
	if crashEnv != "" {
		cmd.Env = append(cmd.Env, "FAULTINJECT_CRASH="+crashEnv)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, exited: make(chan *os.ProcessState, 1)}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.exited
	})

	addrCh := make(chan string, 1)
	go func() {
		defer close(addrCh)
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := stderr.Read(buf)
			if n > 0 {
				acc = append(acc, buf[:n]...)
				if m := listenRe.FindSubmatch(acc); m != nil {
					addrCh <- string(m[1])
					// Keep draining so the child never blocks on stderr.
					io.Copy(io.Discard, stderr)
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	go func() {
		cmd.Wait()
		d.exited <- cmd.ProcessState
	}()

	select {
	case addr, ok := <-addrCh:
		if !ok {
			st := <-d.exited
			d.exited <- st
			t.Fatalf("rlckitd exited before listening: %v", st)
		}
		d.base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("rlckitd never reported its listen address")
	}
	return d
}

// waitKilled blocks until the child exits and asserts the injected
// crash — a self-delivered SIGKILL — is what ended it.
func (d *daemon) waitKilled(t *testing.T, site string) {
	t.Helper()
	select {
	case st := <-d.exited:
		d.exited <- st // re-fill for the Cleanup reader
		ws, ok := st.Sys().(syscall.WaitStatus)
		if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("armed crash %q: child exited with %v, want SIGKILL", site, st)
		}
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("armed crash %q never fired within 15s", site)
	}
}

// shutdown terminates a healthy child gracefully and asserts exit 0.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case st := <-d.exited:
		d.exited <- st // re-fill for the Cleanup reader
		if st.ExitCode() != 0 {
			t.Fatalf("graceful shutdown: %v", st)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("graceful shutdown timed out")
	}
}

// rawPost is one no-retry POST; pre-crash traffic wants to observe the
// child dying, not paper over it.
func rawPost(base, path, body string) (int, []byte, error) {
	resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// storeVars reads the child's expvar rlckitd map.
func storeVars(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatalf("debug/vars: %v", err)
	}
	defer resp.Body.Close()
	var all struct {
		Rlckitd map[string]any `json:"rlckitd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatalf("debug/vars: %v", err)
	}
	if all.Rlckitd == nil {
		t.Fatal("debug/vars has no rlckitd map")
	}
	return all.Rlckitd
}

func varCount(t *testing.T, vars map[string]any, key string) float64 {
	t.Helper()
	v, ok := vars[key].(float64)
	if !ok {
		t.Fatalf("expvar rlckitd.%s missing or not a number: %v", key, vars[key])
	}
	return v
}

// crashGolden computes the golden bytes every scenario compares
// against, from an in-process server with no store — the same handler
// stack the child runs, so "warm equals cold" is checked against a
// server that has never seen a disk.
type crashGolden struct {
	mix  [][]byte // response body per crashMix entry
	edit [][]byte // session Result payload per sessionScript step
}

func goldenAnswers(t *testing.T) *crashGolden {
	t.Helper()
	s, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := &crashGolden{}
	for _, sp := range crashMix {
		status, body, err := rawPost(ts.URL, sp.path, sp.body)
		if err != nil || status != 200 {
			t.Fatalf("golden %s: status %d err %v: %s", sp.path, status, err, body)
		}
		g.mix = append(g.mix, body)
	}
	status, body, err := rawPost(ts.URL, "/v1/session", smallTree("closed"))
	if err != nil || status != 200 {
		t.Fatalf("golden session open: status %d err %v", status, err)
	}
	var open serve.SessionOpenResponse
	if err := json.Unmarshal(body, &open); err != nil {
		t.Fatal(err)
	}
	for step, eb := range sessionScript {
		status, body, err := rawPost(ts.URL, "/v1/session/"+open.SessionID+"/edit", eb)
		if err != nil || status != 200 {
			t.Fatalf("golden session edit %d: status %d err %v", step, status, err)
		}
		var ed serve.SessionEditResponse
		if err := json.Unmarshal(body, &ed); err != nil {
			t.Fatal(err)
		}
		g.edit = append(g.edit, append([]byte(nil), ed.Result...))
	}
	return g
}

// crashScenario arms one store failpoint.
type crashScenario struct {
	name string
	arm  string // FAULTINJECT_CRASH value
	// interval is the child's -snapshot-interval: the snapshot-path
	// crashes fire from the background loop, the journal crash from a
	// request, where a pending snapshot would only add noise.
	interval string
	// wantTorn: the crash provably leaves a torn record inside a live
	// store file, so recovery must count at least one discard.
	wantTorn bool
	// wantWarm: a full snapshot landed before the crash, so the
	// restarted child must answer the mix from the warm cache.
	wantWarm bool
}

var crashScenarios = []crashScenario{
	// Append #1 is the session open, #2 the first edit batch: die
	// half-way through the edit's journal frame.
	{name: "journal-append", arm: "store.crash.journal=2", interval: "-1s", wantTorn: true},
	// Die half-way through a snapshot record: the temp file is torn,
	// no snapshot is ever installed, the journal stays authoritative.
	{name: "snapshot-record", arm: "store.crash.snapshot=1", interval: "300ms"},
	// Die with the snapshot temp complete but never renamed in.
	{name: "snapshot-rename", arm: "store.crash.rename=1", interval: "300ms"},
	// Die mid journal compaction, after the snapshot installed: the
	// restart recovers the warm cache and the pre-compaction journal.
	{name: "journal-rewrite", arm: "store.crash.rewrite=1", interval: "300ms", wantWarm: true},
}

// TestCrashRecoveryAtEveryFailpoint is the acceptance harness for the
// persistence layer: for every store crash site, a real rlckitd child
// is SIGKILLed mid-write and must come back serving byte-identical
// answers, with every torn record discarded and counted, never served.
func TestCrashRecoveryAtEveryFailpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes; run without -short (PR CI runs the store smoke instead)")
	}
	bin := buildDaemon(t)
	golden := goldenAnswers(t)
	for round := 0; round < crashRounds(t); round++ {
		for _, sc := range crashScenarios {
			sc := sc
			t.Run(fmt.Sprintf("%s/round%d", sc.name, round), func(t *testing.T) {
				runCrashScenario(t, bin, golden, sc)
			})
		}
	}
}

func runCrashScenario(t *testing.T, bin string, golden *crashGolden, sc crashScenario) {
	dir := t.TempDir()

	// Phase 1: armed child. Drive the cacheable mix (fills the store's
	// snapshot source) and a what-if session (fills the journal), then
	// let the armed write land. Any request may observe the death as a
	// connection error — that is the point.
	d := startDaemon(t, bin, dir, sc.interval, sc.arm)
	alive := true
	for i, sp := range crashMix {
		status, body, err := rawPost(d.base, sp.path, sp.body)
		if err != nil {
			alive = false
			break
		}
		if status != 200 || !bytes.Equal(body, golden.mix[i]) {
			t.Fatalf("pre-crash %s: status %d, body diverged from golden:\n got %s\nwant %s",
				sp.path, status, body, golden.mix[i])
		}
	}
	sessID := ""
	editsAcked := 0
	if alive {
		if status, body, err := rawPost(d.base, "/v1/session", smallTree("closed")); err == nil {
			if status != 200 {
				t.Fatalf("pre-crash session open: status %d: %s", status, body)
			}
			var open serve.SessionOpenResponse
			if err := json.Unmarshal(body, &open); err != nil {
				t.Fatal(err)
			}
			sessID = open.SessionID
			// First edit batch: for the journal crash this request IS the
			// kill — the edit frame is half on disk and the ack never sent.
			if status, body, err := rawPost(d.base, "/v1/session/"+sessID+"/edit", sessionScript[0]); err == nil {
				if status != 200 {
					t.Fatalf("pre-crash session edit: status %d: %s", status, body)
				}
				var ed serve.SessionEditResponse
				if err := json.Unmarshal(body, &ed); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ed.Result, golden.edit[0]) {
					t.Fatalf("pre-crash edit result diverged from golden:\n got %s\nwant %s", ed.Result, golden.edit[0])
				}
				editsAcked = 1
			}
		}
	}
	d.waitKilled(t, sc.arm)

	// Phase 2: clean child on the same store dir. Recovery runs before
	// the listener opens, so a successful startDaemon already proves
	// the store loads; -snapshot-interval -1s keeps the restart from
	// writing new snapshots, so every warm answer below came off disk.
	d2 := startDaemon(t, bin, dir, "-1s", "")
	c := client.New(d2.base, client.Config{Seed: 5})

	vars := storeVars(t, d2.base)
	discarded := varCount(t, vars, "store_discarded_corrupt")
	recovered := varCount(t, vars, "store_recovered")
	if sc.wantTorn && discarded < 1 {
		t.Errorf("torn write at %s: store_discarded_corrupt = %v, want >= 1", sc.arm, discarded)
	}
	if sc.wantWarm && recovered < float64(len(crashMix)) {
		t.Errorf("store_recovered = %v, want >= %d (snapshot was installed before the crash)", recovered, len(crashMix))
	}

	// No corrupt result is ever served: the whole mix must answer the
	// golden bytes, warm or cold.
	warmHits := 0
	for i, sp := range crashMix {
		resp, err := c.PostJSON(context.Background(), sp.path, []byte(sp.body))
		if err != nil {
			t.Fatalf("post-recovery %s: %v", sp.path, err)
		}
		if resp.Status != 200 {
			t.Fatalf("post-recovery %s: status %d: %s", sp.path, resp.Status, resp.Body)
		}
		if !bytes.Equal(resp.Body, golden.mix[i]) {
			t.Errorf("post-recovery %s: body diverged from golden:\n got %s\nwant %s", sp.path, resp.Body, golden.mix[i])
		}
		if resp.Cache == "hit" {
			warmHits++
		}
	}
	if sc.wantWarm && warmHits == 0 {
		t.Errorf("no warm cache hit after recovering an installed snapshot")
	}

	// The journaled session continues its script. An un-acked edit may
	// or may not have survived (its journal frame is the torn one); the
	// edits are absolute sets, so re-applying every batch up to the
	// acked prefix converges the state either way. A session whose open
	// frame itself was torn answers 404 and is reopened — its journal
	// never acked the open.
	if sessID != "" {
		resp, err := c.PostJSON(context.Background(), "/v1/session/"+sessID+"/edit", []byte(sessionScript[0]))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case 200:
		case 404:
			if editsAcked > 0 {
				t.Fatalf("session %s was acked pre-crash but lost by recovery", sessID)
			}
			sessID = ""
		default:
			t.Fatalf("recovered session edit: status %d: %s", resp.Status, resp.Body)
		}
	}
	if sessID == "" {
		resp, err := c.PostJSON(context.Background(), "/v1/session", []byte(smallTree("closed")))
		if err != nil || resp.Status != 200 {
			t.Fatalf("session reopen: %v %v", resp, err)
		}
		var open serve.SessionOpenResponse
		if err := json.Unmarshal(resp.Body, &open); err != nil {
			t.Fatal(err)
		}
		sessID = open.SessionID
		if r, err := c.PostJSON(context.Background(), "/v1/session/"+sessID+"/edit", []byte(sessionScript[0])); err != nil || r.Status != 200 {
			t.Fatalf("reopened session edit 0: %v %v", r, err)
		}
	}
	for step := 1; step < len(sessionScript); step++ {
		resp, err := c.PostJSON(context.Background(), "/v1/session/"+sessID+"/edit", []byte(sessionScript[step]))
		if err != nil || resp.Status != 200 {
			t.Fatalf("recovered session edit %d: %v %v", step, resp, err)
		}
		var ed serve.SessionEditResponse
		if err := json.Unmarshal(resp.Body, &ed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ed.Result, golden.edit[step]) {
			t.Errorf("recovered session edit %d: result diverged from golden:\n got %s\nwant %s",
				step, ed.Result, golden.edit[step])
		}
	}
	if resp, err := c.Delete(context.Background(), "/v1/session/"+sessID); err != nil || resp.Status != 200 {
		t.Fatalf("recovered session close: %v %v", resp, err)
	}

	d2.shutdown(t)
}
