package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatBasics(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		sig  int
		want string
	}{
		{1.5e-12, "F", 3, "1.50pF"},
		{500, "Ohm", 3, "500Ohm"},
		{0, "s", 3, "0s"},
		{1e-9, "s", 2, "1.0ns"},
		{2.5e3, "Ohm", 3, "2.50kOhm"},
		{-3.3e-6, "H", 2, "-3.3uH"},
		{1e-5, "H", 3, "10.0uH"},
		{1e-8, "H", 3, "10.0nH"},
		{0.12, "V", 2, "120mV"},
		{999.96, "Ohm", 4, "1.000kOhm"},
	}
	for _, c := range cases {
		if got := Format(c.v, c.unit, c.sig); got != c.want {
			t.Errorf("Format(%g,%q,%d) = %q, want %q", c.v, c.unit, c.sig, got, c.want)
		}
	}
}

func TestFormatSpecials(t *testing.T) {
	if got := Format(math.NaN(), "s", 3); got != "NaNs" {
		t.Errorf("NaN: got %q", got)
	}
	if got := Format(math.Inf(1), "s", 3); got != "+Infs" {
		t.Errorf("+Inf: got %q", got)
	}
	if got := Format(math.Inf(-1), "s", 3); got != "-Infs" {
		t.Errorf("-Inf: got %q", got)
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1.5pF", 1.5e-12},
		{"500", 500},
		{"2k", 2000},
		{"0.1uH", 1e-7},
		{"1e-12", 1e-12},
		{"10p", 1e-11},
		{"3.3nH", 3.3e-9},
		{"  42 Ohm ", 42},
		{"-7mV", -7e-3},
		{"1.2e3k", 1.2e6},
		{"100µ", 1e-4},
		{"5M", 5e6},
		{"1m", 1e-3},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-15*math.Abs(c.want)+1e-30 {
			t.Errorf("Parse(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1.2.3", "10!!", "--5", "1e", "5 %%"} {
		if v, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %g, want error", in, v)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(mant float64, e int) bool {
		e = ((e % 12) + 12) % 12 // 0..11
		v := math.Abs(mant)
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		// Normalize mantissa into [1,10) then scale to a printable range.
		for v >= 10 {
			v /= 10
		}
		for v < 1 {
			v *= 10
		}
		val := v * math.Pow(10, float64(e-6)) // 1e-6 .. 1e5 range
		s := Format(val, "F", 6)
		got, err := Parse(s)
		if err != nil {
			return false
		}
		return math.Abs(got-val) <= 1e-4*val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage did not panic")
		}
	}()
	MustParse("not-a-number")
}

func TestConstructors(t *testing.T) {
	if PicoFarad(1) != 1e-12 {
		t.Error("PicoFarad")
	}
	if NanoHenry(2) != 2e-9 {
		t.Error("NanoHenry")
	}
	if KiloOhm(3) != 3000 {
		t.Error("KiloOhm")
	}
	if MilliMeter(10) != 0.01 {
		t.Error("MilliMeter")
	}
	if CentiMeter(2) != 0.02 {
		t.Error("CentiMeter")
	}
	if math.Abs(MicroMeter(5)-5e-6) > 1e-20 {
		t.Error("MicroMeter")
	}
	if FemtoFarad(7) != 7e-15 {
		t.Error("FemtoFarad")
	}
	if PicoSecond(1) != 1e-12 || NanoSecond(1) != 1e-9 {
		t.Error("seconds")
	}
	if Ohm(9) != 9 || Farad(1) != 1 || Henry(1) != 1 {
		t.Error("identity constructors")
	}
}

func TestFormatParseUnitsWithSlash(t *testing.T) {
	s := Format(25e-12, "F/m", 3)
	if !strings.HasSuffix(s, "pF/m") {
		t.Fatalf("got %q", s)
	}
	v, err := Parse(s)
	if err != nil || math.Abs(v-25e-12) > 1e-18 {
		t.Fatalf("round trip %q -> %g, %v", s, v, err)
	}
}
