// Package units provides SI engineering-notation parsing and formatting
// used throughout rlckit for electrical quantities (ohms, henries, farads,
// seconds, meters).
//
// The package deliberately works with bare float64 values in base SI units;
// it exists to make CLI input/output and table rendering pleasant, not to
// impose a unit system on the numerical core.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// siPrefix maps an exponent (multiple of 3) to its SI prefix symbol.
var siPrefix = map[int]string{
	-18: "a", -15: "f", -12: "p", -9: "n", -6: "u", -3: "m",
	0: "", 3: "k", 6: "M", 9: "G", 12: "T",
}

// siValue maps prefix symbols (including unicode micro) to exponents.
var siValue = map[string]int{
	"a": -18, "f": -15, "p": -12, "n": -9, "u": -6, "µ": -6, "m": -3,
	"": 0, "k": 3, "K": 3, "M": 6, "G": 9, "T": 12,
}

// Format renders v in engineering notation with the given unit suffix and
// number of significant digits, e.g. Format(1.5e-12, "F", 3) == "1.50pF".
// Zero renders as "0<unit>". Negative values keep their sign.
func Format(v float64, unit string, sig int) string {
	if sig < 1 {
		sig = 3
	}
	if v == 0 {
		return "0" + unit
	}
	if math.IsNaN(v) {
		return "NaN" + unit
	}
	if math.IsInf(v, 0) {
		if v > 0 {
			return "+Inf" + unit
		}
		return "-Inf" + unit
	}
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := int(math.Floor(math.Log10(v)))
	// Engineering exponent: round down to a multiple of 3.
	eng := int(math.Floor(float64(exp) / 3.0))
	e3 := eng * 3
	if e3 < -18 {
		e3 = -18
	}
	if e3 > 12 {
		e3 = 12
	}
	mant := v / math.Pow(10, float64(e3))
	// Guard against mantissa rounding to 1000 (e.g. 999.96 with 4 sig digits).
	digits := sig - 1 - int(math.Floor(math.Log10(mant)))
	if digits < 0 {
		digits = 0
	}
	s := strconv.FormatFloat(mant, 'f', digits, 64)
	if f, _ := strconv.ParseFloat(s, 64); f >= 1000 && e3 < 12 {
		e3 += 3
		mant = v / math.Pow(10, float64(e3))
		digits = sig - 1 - int(math.Floor(math.Log10(mant)))
		if digits < 0 {
			digits = 0
		}
		s = strconv.FormatFloat(mant, 'f', digits, 64)
	}
	// Rounding may have promoted the mantissa across a power of ten
	// (0.99996 → "1.0000"); recompute the digit count at the new magnitude.
	if f, _ := strconv.ParseFloat(s, 64); f > 0 {
		if nd := sig - 1 - int(math.Floor(math.Log10(f))); nd != digits && nd >= 0 {
			s = strconv.FormatFloat(f, 'f', nd, 64)
		}
	}
	return sign + s + siPrefix[e3] + unit
}

// Parse reads an engineering-notation quantity such as "1.5pF", "500", "2k",
// "0.1uH" or "1e-12". A trailing unit string (letters after the prefix) is
// accepted and ignored, so "10pF" and "10p" both parse to 1e-11.
func Parse(s string) (float64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty quantity")
	}
	// Find the longest numeric head (digits, sign, dot, exponent).
	i := 0
	seenE := false
	for i < len(t) {
		c := t[i]
		switch {
		case c >= '0' && c <= '9', c == '.', c == '+', c == '-':
			if (c == '+' || c == '-') && i > 0 && !(t[i-1] == 'e' || t[i-1] == 'E') {
				goto done
			}
			i++
		case (c == 'e' || c == 'E') && !seenE && i+1 < len(t) &&
			(t[i+1] == '+' || t[i+1] == '-' || (t[i+1] >= '0' && t[i+1] <= '9')):
			seenE = true
			i++
		default:
			goto done
		}
	}
done:
	head, tail := t[:i], strings.TrimSpace(t[i:])
	base, err := strconv.ParseFloat(head, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q: %v", s, err)
	}
	if tail == "" {
		return base, nil
	}
	if tail == "e" || tail == "E" {
		return 0, fmt.Errorf("units: dangling exponent in %q", s)
	}
	// First rune of the tail may be an SI prefix; the rest is a unit name.
	// Disambiguate "m": treat as milli unless the tail is exactly a known
	// bare unit ("m" for meters is ambiguous; engineering convention in EDA
	// decks is milli, which we follow).
	pr := string([]rune(tail)[0])
	if exp, ok := siValue[pr]; ok {
		rest := string([]rune(tail)[1:])
		if isUnitWord(rest) {
			return base * math.Pow(10, float64(exp)), nil
		}
	}
	if isUnitWord(tail) {
		return base, nil
	}
	return 0, fmt.Errorf("units: cannot parse suffix %q in %q", tail, s)
}

// isUnitWord reports whether s is empty or a plausible unit name
// (letters, ohm sign, slash for per-unit-length units like "F/m").
func isUnitWord(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r == 'Ω', r == 'Ω', r == '/', r == 'µ':
		default:
			return false
		}
	}
	return true
}

// MustParse is Parse that panics on error; for tests and literals in examples.
func MustParse(s string) float64 {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Convenience constructors in base SI units. They make example code read
// like a datasheet: Ohm(500), PicoFarad(1), MilliMeter(10).

// Ohm returns v ohms.
func Ohm(v float64) float64 { return v }

// KiloOhm returns v kilo-ohms in ohms.
func KiloOhm(v float64) float64 { return v * 1e3 }

// Farad returns v farads.
func Farad(v float64) float64 { return v }

// PicoFarad returns v picofarads in farads.
func PicoFarad(v float64) float64 { return v * 1e-12 }

// FemtoFarad returns v femtofarads in farads.
func FemtoFarad(v float64) float64 { return v * 1e-15 }

// Henry returns v henries.
func Henry(v float64) float64 { return v }

// NanoHenry returns v nanohenries in henries.
func NanoHenry(v float64) float64 { return v * 1e-9 }

// PicoSecond returns v picoseconds in seconds.
func PicoSecond(v float64) float64 { return v * 1e-12 }

// NanoSecond returns v nanoseconds in seconds.
func NanoSecond(v float64) float64 { return v * 1e-9 }

// MilliMeter returns v millimeters in meters.
func MilliMeter(v float64) float64 { return v * 1e-3 }

// MicroMeter returns v micrometers in meters.
func MicroMeter(v float64) float64 { return v * 1e-6 }

// CentiMeter returns v centimeters in meters.
func CentiMeter(v float64) float64 { return v * 1e-2 }
