package circuit

import (
	"math"
	"testing"
)

func TestSources(t *testing.T) {
	if DC(3).V(99) != 3 {
		t.Error("DC")
	}
	s := Step{Amplitude: 1, Delay: 1, Rise: 2}
	cases := []struct{ t, want float64 }{
		{0, 0}, {0.999, 0}, {1, 0}, {2, 0.5}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.V(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Step.V(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	ideal := Step{Amplitude: 2}
	if ideal.V(0) != 2 || ideal.V(-1) != 0 {
		t.Error("ideal step")
	}
}

func TestPulse(t *testing.T) {
	p := Pulse{Amplitude: 1, Delay: 1, Rise: 1, Width: 2, Fall: 1}
	cases := []struct{ t, want float64 }{
		{0.5, 0}, {1.5, 0.5}, {2, 1}, {3.9, 1}, {4.5, 0.5}, {6, 0},
	}
	for _, c := range cases {
		if got := p.V(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Pulse.V(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	// Periodic repetition.
	pp := Pulse{Amplitude: 1, Rise: 0, Width: 1, Fall: 0, Period: 4}
	if pp.V(0.5) != 1 || pp.V(2) != 0 || pp.V(4.5) != 1 {
		t.Error("periodic pulse")
	}
	// Zero rise/fall edges.
	pz := Pulse{Amplitude: 1, Width: 1}
	if pz.V(0) != 1 || pz.V(1.5) != 0 {
		t.Error("zero-edge pulse")
	}
}

func TestSine(t *testing.T) {
	s := Sine{Amplitude: 2, Freq: 1, Offset: 1}
	if math.Abs(s.V(0.25)-3) > 1e-12 {
		t.Errorf("Sine.V(0.25) = %g", s.V(0.25))
	}
}

func TestBuilderAndValidate(t *testing.T) {
	c := New()
	n1 := c.Node()
	n2 := c.Node()
	if n1 != 1 || n2 != 2 || c.Nodes() != 3 {
		t.Fatalf("node allocation: %d %d %d", n1, n2, c.Nodes())
	}
	if err := c.AddV("vin", n1, Ground, Step{Amplitude: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("r1", n1, n2, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC("c1", n2, Ground, 1e-12); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.R != 1 || st.C != 1 || st.V != 1 || st.L != 0 || st.Nodes != 3 {
		t.Errorf("stats %+v", st)
	}
	if got := c.TotalOfKind(KindResistor); got != 100 {
		t.Errorf("TotalOfKind R = %g", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	c := New()
	n := c.Node()
	if err := c.AddR("bad", n, n, 1); err == nil {
		t.Error("same-terminal element accepted")
	}
	if err := c.AddR("bad", n, 99, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := c.AddR("bad", n, Ground, -5); err == nil {
		t.Error("negative resistance accepted")
	}
	if err := c.AddC("bad", n, Ground, 0); err == nil {
		t.Error("zero capacitance accepted")
	}
	if err := c.AddL("bad", n, Ground, math.NaN()); err == nil {
		t.Error("NaN inductance accepted")
	}
	if err := c.AddV("bad", n, Ground, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestValidateFailures(t *testing.T) {
	c := New()
	if err := c.Validate(); err == nil {
		t.Error("empty circuit accepted")
	}
	n := c.Node()
	if err := c.AddR("r", n, Ground, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("sourceless circuit accepted")
	}
	// Disconnected node.
	c2 := New()
	a := c2.Node()
	_ = c2.Node() // floating
	if err := c2.AddV("v", a, Ground, DC(1)); err != nil {
		t.Fatal(err)
	}
	if err := c2.Validate(); err == nil {
		t.Error("floating node accepted")
	}
}

func TestElementKindString(t *testing.T) {
	if KindResistor.String() != "R" || KindCapacitor.String() != "C" ||
		KindInductor.String() != "L" || KindVSource.String() != "V" {
		t.Error("kind strings")
	}
	if ElementKind(42).String() == "" {
		t.Error("unknown kind string")
	}
}
