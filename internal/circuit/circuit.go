// Package circuit models lumped linear circuits — the netlists that
// rlckit's transient simulator (internal/mna) consumes.
//
// A Circuit is a set of nodes (node 0 is ground) connected by resistors,
// capacitors, inductors and independent voltage sources. The package
// provides builders, validation (positivity, connectivity, source
// presence), and small structural queries. It deliberately supports only
// the linear elements the paper's experiments need; the MNA engine is
// written against this element set.
package circuit

import (
	"errors"
	"fmt"
	"math"
)

// Ground is the reference node present in every circuit.
const Ground = 0

// Source is a time-dependent voltage source waveform.
type Source interface {
	// V returns the source voltage at time t.
	V(t float64) float64
}

// DC is a constant source.
type DC float64

// V implements Source.
func (d DC) V(float64) float64 { return float64(d) }

// Step is a delayed finite-rise step source: 0 for t < Delay, then a
// linear ramp of duration Rise up to Amplitude. Rise == 0 gives an ideal
// step. The paper drives lines with "a fast rising signal that can be
// approximated by a step signal"; a short ramp keeps fixed-step
// integrators honest while matching the ideal-step delay to well below
// measurement tolerance.
type Step struct {
	Amplitude float64
	Delay     float64
	Rise      float64
}

// V implements Source.
func (s Step) V(t float64) float64 {
	switch {
	case t < s.Delay:
		return 0
	case s.Rise <= 0 || t >= s.Delay+s.Rise:
		return s.Amplitude
	default:
		return s.Amplitude * (t - s.Delay) / s.Rise
	}
}

// Pulse is a trapezoidal pulse source (delay, rise, width at amplitude,
// fall), useful for repeater switching-energy experiments.
type Pulse struct {
	Amplitude                float64
	Delay, Rise, Width, Fall float64
	Period                   float64 // 0 = single shot
}

// V implements Source.
func (p Pulse) V(t float64) float64 {
	if t < p.Delay {
		return 0
	}
	tt := t - p.Delay
	if p.Period > 0 {
		tt = math.Mod(tt, p.Period)
	}
	switch {
	case tt < p.Rise:
		if p.Rise == 0 {
			return p.Amplitude
		}
		return p.Amplitude * tt / p.Rise
	case tt < p.Rise+p.Width:
		return p.Amplitude
	case tt < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return 0
		}
		return p.Amplitude * (1 - (tt-p.Rise-p.Width)/p.Fall)
	default:
		return 0
	}
}

// Sine is a sinusoidal source for frequency-domain sanity experiments.
type Sine struct {
	Amplitude, Freq, Phase, Offset float64
}

// V implements Source.
func (s Sine) V(t float64) float64 {
	return s.Offset + s.Amplitude*math.Sin(2*math.Pi*s.Freq*t+s.Phase)
}

// ElementKind enumerates circuit element types.
type ElementKind int

// Element kinds.
const (
	KindResistor ElementKind = iota
	KindCapacitor
	KindInductor
	KindVSource
	KindISource
)

func (k ElementKind) String() string {
	switch k {
	case KindResistor:
		return "R"
	case KindCapacitor:
		return "C"
	case KindInductor:
		return "L"
	case KindVSource:
		return "V"
	case KindISource:
		return "I"
	default:
		return fmt.Sprintf("ElementKind(%d)", int(k))
	}
}

// Element is one two-terminal circuit element between nodes A and B.
// For sources, A is the positive terminal. Value holds R in ohms, C in
// farads, or L in henries; sources use Src instead.
type Element struct {
	Kind  ElementKind
	Name  string
	A, B  int
	Value float64
	Src   Source
}

// Mutual couples two inductors (by element index) with mutual
// inductance M = k·sqrt(L1·L2), 0 <= k < 1.
type Mutual struct {
	Name   string
	L1, L2 int // indexes into the element list; must be inductors
	M      float64
}

// Circuit is a lumped linear circuit under construction or analysis.
type Circuit struct {
	nodes    int // count including ground
	elements []Element
	mutuals  []Mutual
}

// New returns an empty circuit containing only the ground node.
func New() *Circuit {
	return &Circuit{nodes: 1}
}

// Node allocates and returns a fresh node ID.
func (c *Circuit) Node() int {
	id := c.nodes
	c.nodes++
	return id
}

// Nodes returns the number of nodes including ground.
func (c *Circuit) Nodes() int { return c.nodes }

// Elements returns the element list (shared slice; callers must not
// mutate).
func (c *Circuit) Elements() []Element { return c.elements }

func (c *Circuit) checkNode(n int) error {
	if n < 0 || n >= c.nodes {
		return fmt.Errorf("circuit: node %d out of range [0, %d)", n, c.nodes)
	}
	return nil
}

// AddR adds a resistor of r ohms between nodes a and b.
func (c *Circuit) AddR(name string, a, b int, r float64) error {
	if err := c.checkTerminals(a, b); err != nil {
		return err
	}
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("circuit: resistor %q must have positive finite resistance, got %g", name, r)
	}
	c.elements = append(c.elements, Element{Kind: KindResistor, Name: name, A: a, B: b, Value: r})
	return nil
}

// AddC adds a capacitor of v farads between nodes a and b.
func (c *Circuit) AddC(name string, a, b int, v float64) error {
	if err := c.checkTerminals(a, b); err != nil {
		return err
	}
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("circuit: capacitor %q must have positive finite capacitance, got %g", name, v)
	}
	c.elements = append(c.elements, Element{Kind: KindCapacitor, Name: name, A: a, B: b, Value: v})
	return nil
}

// AddL adds an inductor of v henries between nodes a and b.
func (c *Circuit) AddL(name string, a, b int, v float64) error {
	if err := c.checkTerminals(a, b); err != nil {
		return err
	}
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("circuit: inductor %q must have positive finite inductance, got %g", name, v)
	}
	c.elements = append(c.elements, Element{Kind: KindInductor, Name: name, A: a, B: b, Value: v})
	return nil
}

// AddV adds an independent voltage source with positive terminal a.
func (c *Circuit) AddV(name string, a, b int, src Source) error {
	if err := c.checkTerminals(a, b); err != nil {
		return err
	}
	if src == nil {
		return fmt.Errorf("circuit: source %q has nil waveform", name)
	}
	c.elements = append(c.elements, Element{Kind: KindVSource, Name: name, A: a, B: b, Src: src})
	return nil
}

// AddI adds an independent current source driving current from node b
// into node a (conventional arrow pointing at a); src gives the current
// in amperes.
func (c *Circuit) AddI(name string, a, b int, src Source) error {
	if err := c.checkTerminals(a, b); err != nil {
		return err
	}
	if src == nil {
		return fmt.Errorf("circuit: source %q has nil waveform", name)
	}
	c.elements = append(c.elements, Element{Kind: KindISource, Name: name, A: a, B: b, Src: src})
	return nil
}

// AddK magnetically couples the inductors named l1 and l2 with coupling
// coefficient k ∈ [0, 1). The inductors must already exist.
func (c *Circuit) AddK(name, l1, l2 string, k float64) error {
	if k < 0 || k >= 1 || math.IsNaN(k) {
		return fmt.Errorf("circuit: coupling %q needs 0 <= k < 1, got %g", name, k)
	}
	find := func(want string) (int, error) {
		for i, e := range c.elements {
			if e.Kind == KindInductor && e.Name == want {
				return i, nil
			}
		}
		return 0, fmt.Errorf("circuit: coupling %q references unknown inductor %q", name, want)
	}
	i1, err := find(l1)
	if err != nil {
		return err
	}
	i2, err := find(l2)
	if err != nil {
		return err
	}
	if i1 == i2 {
		return fmt.Errorf("circuit: coupling %q references inductor %q twice", name, l1)
	}
	m := k * math.Sqrt(c.elements[i1].Value*c.elements[i2].Value)
	c.mutuals = append(c.mutuals, Mutual{Name: name, L1: i1, L2: i2, M: m})
	return nil
}

// Mutuals returns the mutual-inductance list (shared slice; callers must
// not mutate).
func (c *Circuit) Mutuals() []Mutual { return c.mutuals }

func (c *Circuit) checkTerminals(a, b int) error {
	if err := c.checkNode(a); err != nil {
		return err
	}
	if err := c.checkNode(b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("circuit: element terminals must differ, got node %d twice", a)
	}
	return nil
}

// Validate checks the circuit is simulatable: it has at least one source,
// and every node is connected to ground through some element path.
func (c *Circuit) Validate() error {
	if c.nodes < 2 {
		return errors.New("circuit: no nodes besides ground")
	}
	hasSource := false
	for _, e := range c.elements {
		if e.Kind == KindVSource || e.Kind == KindISource {
			hasSource = true
			break
		}
	}
	if !hasSource {
		return errors.New("circuit: no source")
	}
	// Connectivity by BFS over the element graph.
	adj := make([][]int, c.nodes)
	for _, e := range c.elements {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	seen := make([]bool, c.nodes)
	queue := []int{Ground}
	seen[Ground] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	for n, ok := range seen {
		if !ok {
			return fmt.Errorf("circuit: node %d is not connected to ground", n)
		}
	}
	return nil
}

// Stats summarizes element counts for diagnostics.
type Stats struct {
	Nodes, R, C, L, V int
}

// Stats returns element counts.
func (c *Circuit) Stats() Stats {
	s := Stats{Nodes: c.nodes}
	for _, e := range c.elements {
		switch e.Kind {
		case KindResistor:
			s.R++
		case KindCapacitor:
			s.C++
		case KindInductor:
			s.L++
		case KindVSource, KindISource:
			s.V++
		}
	}
	return s
}

// TotalOfKind sums element values of the given kind (R in ohms, etc.).
func (c *Circuit) TotalOfKind(k ElementKind) float64 {
	t := 0.0
	for _, e := range c.elements {
		if e.Kind == k {
			t += e.Value
		}
	}
	return t
}
