// Package ratfun analyzes rational transfer functions H(s) = num/den:
// pole extraction, partial fractions, and exact step responses.
//
// Together with internal/laplace it forms the second and third
// independent reference engines that rlckit validates its transient
// simulator (and ultimately the paper's closed-form delay model)
// against: a lumped ladder's rational H(s) is solved here *exactly* —
// no time stepping — via pole/residue decomposition.
package ratfun

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"rlckit/internal/numeric"
)

// R is a rational function num(s)/den(s).
type R struct {
	Num, Den numeric.Poly
}

// New validates and builds a rational function. The denominator must be
// nonzero; for step-response analysis the system must also be strictly
// proper, but that is checked by StepResponse, not here.
func New(num, den numeric.Poly) (R, error) {
	if den.IsZero() {
		return R{}, errors.New("ratfun: zero denominator")
	}
	return R{Num: num, Den: den}, nil
}

// Eval evaluates H at complex s.
func (r R) Eval(s complex128) complex128 {
	return r.Num.EvalC(s) / r.Den.EvalC(s)
}

// DCGain returns H(0). It errors if den(0) = 0 (pole at the origin).
func (r R) DCGain() (float64, error) {
	d := r.Den.Eval(0)
	if d == 0 {
		return 0, errors.New("ratfun: pole at s = 0")
	}
	return r.Num.Eval(0) / d, nil
}

// Poles returns the denominator roots.
func (r R) Poles() []complex128 {
	return r.Den.Roots()
}

// IsStable reports whether every pole has negative real part. tol is the
// acceptance band for roundoff (poles with Re p < tol·scale pass); pass
// 0 for a sensible default.
func (r R) IsStable(tol float64) bool {
	if tol <= 0 {
		tol = 1e-9
	}
	for _, p := range r.Poles() {
		scale := cmplx.Abs(p) + 1
		if real(p) > tol*scale {
			return false
		}
	}
	return true
}

// StepResponse returns the exact unit-step response
//
//	v(t) = L⁻¹[H(s)/s](t) = H(0) + Σ_k Num(p_k)/(p_k·Den′(p_k)) · e^{p_k t}
//
// valid for strictly proper H with simple poles and no pole at the
// origin. The returned function is real (conjugate pole pairs cancel
// imaginary parts; any residual imaginary part is discarded).
func (r R) StepResponse() (func(t float64) float64, error) {
	if r.Num.Degree() >= r.Den.Degree() {
		return nil, fmt.Errorf("ratfun: step response needs strictly proper H (num degree %d, den degree %d)",
			r.Num.Degree(), r.Den.Degree())
	}
	h0, err := r.DCGain()
	if err != nil {
		return nil, err
	}
	poles := r.Poles()
	// Simple-pole check: minimum pairwise distance relative to scale.
	scale := 0.0
	for _, p := range poles {
		if a := cmplx.Abs(p); a > scale {
			scale = a
		}
	}
	for i := 0; i < len(poles); i++ {
		for j := i + 1; j < len(poles); j++ {
			if cmplx.Abs(poles[i]-poles[j]) < 1e-8*(scale+1) {
				return nil, fmt.Errorf("ratfun: repeated pole near %v; partial fractions need simple poles", poles[i])
			}
		}
	}
	dden := r.Den.Derivative()
	type term struct {
		res, p complex128
	}
	terms := make([]term, 0, len(poles))
	for _, p := range poles {
		dp := dden.EvalC(p)
		if dp == 0 {
			return nil, fmt.Errorf("ratfun: Den′(p) = 0 at pole %v", p)
		}
		res := r.Num.EvalC(p) / (p * dp)
		terms = append(terms, term{res: res, p: p})
	}
	return func(t float64) float64 {
		if t < 0 {
			return 0
		}
		s := complex(h0, 0)
		for _, tm := range terms {
			s += tm.res * cmplx.Exp(tm.p*complex(t, 0))
		}
		return real(s)
	}, nil
}

// SettleTime estimates the time for the slowest pole's transient to decay
// to the given fraction (e.g. 1e-3): max_k (−ln frac / |Re p_k|). It
// errors on unstable or marginal systems, and is the horizon-picking
// helper for sampling step responses.
func (r R) SettleTime(frac float64) (float64, error) {
	if frac <= 0 || frac >= 1 {
		return 0, fmt.Errorf("ratfun: settle fraction must be in (0,1), got %g", frac)
	}
	worst := 0.0
	for _, p := range r.Poles() {
		re := -real(p)
		if re <= 0 {
			return 0, fmt.Errorf("ratfun: non-decaying pole %v", p)
		}
		if t := -math.Log(frac) / re; t > worst {
			worst = t
		}
	}
	if worst == 0 {
		return 0, errors.New("ratfun: no poles")
	}
	return worst, nil
}
