package ratfun

import (
	"errors"
	"fmt"
	"math/cmplx"
)

// RampResponse returns the exact response of H to a unit saturating ramp
// input (0 at t ≤ 0, rising linearly to 1 at t = rise, then flat) — the
// finite-rise-time "step" the paper approximates as ideal. It is built
// from the integral response g(t) = L⁻¹[H(s)/s²](t):
//
//	v(t) = (g(t) − g(t − rise)) / rise
//
// with the same validity conditions as StepResponse (strictly proper,
// simple poles, no pole at the origin). A zero rise returns the plain
// step response.
func (r R) RampResponse(rise float64) (func(t float64) float64, error) {
	if rise < 0 {
		return nil, fmt.Errorf("ratfun: negative rise time %g", rise)
	}
	if rise == 0 {
		return r.StepResponse()
	}
	if r.Num.Degree() >= r.Den.Degree() {
		return nil, fmt.Errorf("ratfun: ramp response needs strictly proper H (num degree %d, den degree %d)",
			r.Num.Degree(), r.Den.Degree())
	}
	h0, err := r.DCGain()
	if err != nil {
		return nil, err
	}
	// H(s)/s² = h0/s² + h1/s + Σ_k r2_k/(s − p_k), with
	// h1 = H′(0) and r2_k = Num(p_k)/(p_k²·Den′(p_k)).
	d0 := r.Den.Eval(0)
	n0 := r.Num.Eval(0)
	n1 := r.Num.Derivative().Eval(0)
	d1 := r.Den.Derivative().Eval(0)
	h1 := (n1*d0 - n0*d1) / (d0 * d0)
	poles := r.Poles()
	scale := 0.0
	for _, p := range poles {
		if a := cmplx.Abs(p); a > scale {
			scale = a
		}
	}
	for i := 0; i < len(poles); i++ {
		for j := i + 1; j < len(poles); j++ {
			if cmplx.Abs(poles[i]-poles[j]) < 1e-8*(scale+1) {
				return nil, fmt.Errorf("ratfun: repeated pole near %v; ramp response needs simple poles", poles[i])
			}
		}
	}
	dden := r.Den.Derivative()
	type term struct{ res, p complex128 }
	terms := make([]term, 0, len(poles))
	for _, p := range poles {
		dp := dden.EvalC(p)
		if dp == 0 || p == 0 {
			return nil, errors.New("ratfun: degenerate pole in ramp response")
		}
		terms = append(terms, term{res: r.Num.EvalC(p) / (p * p * dp), p: p})
	}
	g := func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		s := complex(h0*t+h1, 0)
		for _, tm := range terms {
			s += tm.res * cmplx.Exp(tm.p*complex(t, 0))
		}
		return real(s)
	}
	return func(t float64) float64 {
		return (g(t) - g(t-rise)) / rise
	}, nil
}
