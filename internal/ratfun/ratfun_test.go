package ratfun

import (
	"math"
	"testing"

	"rlckit/internal/numeric"
)

func TestNewRejectsZeroDen(t *testing.T) {
	if _, err := New(numeric.NewPoly(1), numeric.NewPoly(0)); err == nil {
		t.Error("zero denominator accepted")
	}
}

func TestFirstOrderStepResponse(t *testing.T) {
	// H = 1/(1 + τs): step response 1 − e^{−t/τ}.
	tau := 2.0
	r, err := New(numeric.NewPoly(1), numeric.NewPoly(1, tau))
	if err != nil {
		t.Fatal(err)
	}
	step, err := r.StepResponse()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 1, 2, 5, 10} {
		want := 1 - math.Exp(-tt/tau)
		if got := step(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("v(%g) = %.15g, want %.15g", tt, got, want)
		}
	}
	if step(-1) != 0 {
		t.Error("negative time should be 0")
	}
}

func TestSecondOrderUnderdampedStepResponse(t *testing.T) {
	// H = 1/(1 + 2ζ s/ωn + s²/ωn²), ζ = 0.25, ωn = 3.
	zeta, wn := 0.25, 3.0
	r, err := New(numeric.NewPoly(1), numeric.NewPoly(1, 2*zeta/wn, 1/(wn*wn)))
	if err != nil {
		t.Fatal(err)
	}
	step, err := r.StepResponse()
	if err != nil {
		t.Fatal(err)
	}
	wd := wn * math.Sqrt(1-zeta*zeta)
	analytic := func(tt float64) float64 {
		e := math.Exp(-zeta * wn * tt)
		return 1 - e*(math.Cos(wd*tt)+zeta/math.Sqrt(1-zeta*zeta)*math.Sin(wd*tt))
	}
	for tt := 0.05; tt < 8; tt += 0.31 {
		if got, want := step(tt), analytic(tt); math.Abs(got-want) > 1e-10 {
			t.Fatalf("v(%g) = %.12g, want %.12g", tt, got, want)
		}
	}
}

func TestDCGainAndEval(t *testing.T) {
	r, _ := New(numeric.NewPoly(2, 1), numeric.NewPoly(4, 0, 1))
	g, err := r.DCGain()
	if err != nil || g != 0.5 {
		t.Errorf("DCGain = %g, %v", g, err)
	}
	v := r.Eval(complex(1, 0)) // (2+1)/(4+1)
	if math.Abs(real(v)-0.6) > 1e-14 || imag(v) != 0 {
		t.Errorf("Eval = %v", v)
	}
	rp, _ := New(numeric.NewPoly(1), numeric.NewPoly(0, 1))
	if _, err := rp.DCGain(); err == nil {
		t.Error("pole at origin accepted")
	}
}

func TestStability(t *testing.T) {
	stable, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, 2, 1)) // poles at −1,−1... repeated; use distinct
	stable, _ = New(numeric.NewPoly(1), numeric.NewPoly(2, 3, 1))  // (s+1)(s+2)
	if !stable.IsStable(0) {
		t.Error("stable system reported unstable")
	}
	unstable, _ := New(numeric.NewPoly(1), numeric.NewPoly(-1, 0, 1)) // poles ±1
	if unstable.IsStable(0) {
		t.Error("unstable system reported stable")
	}
}

func TestStepResponseErrors(t *testing.T) {
	// Improper.
	r, _ := New(numeric.NewPoly(0, 0, 1), numeric.NewPoly(1, 1))
	if _, err := r.StepResponse(); err == nil {
		t.Error("improper H accepted")
	}
	// Pole at origin.
	r2, _ := New(numeric.NewPoly(1), numeric.NewPoly(0, 1, 1))
	if _, err := r2.StepResponse(); err == nil {
		t.Error("pole at origin accepted")
	}
	// Repeated pole: (1+s)².
	r3, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, 2, 1))
	if _, err := r3.StepResponse(); err == nil {
		t.Error("repeated pole accepted")
	}
}

func TestSettleTime(t *testing.T) {
	// Slowest pole at −0.5 → settle(1e-3) = ln(1000)/0.5.
	r, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, 3, 2)) // poles −0.5, −1
	ts, err := r.SettleTime(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1000) / 0.5
	if math.Abs(ts-want) > 1e-6*want {
		t.Errorf("SettleTime = %g, want %g", ts, want)
	}
	if _, err := r.SettleTime(0); err == nil {
		t.Error("bad fraction accepted")
	}
	un, _ := New(numeric.NewPoly(1), numeric.NewPoly(-1, 0, 1))
	if _, err := un.SettleTime(1e-3); err == nil {
		t.Error("unstable settle accepted")
	}
}

func TestHighOrderLadderChebyshevLike(t *testing.T) {
	// Product of well-separated real poles: step response must go from 0
	// to DC gain monotonically-ish; check endpoints and sanity.
	den := numeric.NewPoly(1)
	for i := 1; i <= 8; i++ {
		den = den.Mul(numeric.NewPoly(1, 1/float64(i))) // (1 + s/i)
	}
	r, _ := New(numeric.NewPoly(1), den)
	step, err := r.StepResponse()
	if err != nil {
		t.Fatal(err)
	}
	if v := step(0); math.Abs(v) > 1e-7 {
		t.Errorf("v(0) = %g, want 0", v)
	}
	if v := step(60); math.Abs(v-1) > 1e-9 {
		t.Errorf("v(∞) = %g, want 1", v)
	}
}

func TestRampResponseFirstOrder(t *testing.T) {
	// H = 1/(1+τs) driven by a ramp of duration tr: textbook result
	// v(t) = (t − τ(1 − e^{−t/τ}))/tr for t ≤ tr.
	tau, tr := 1.0, 2.0
	r, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, tau))
	ramp, err := r.RampResponse(tr)
	if err != nil {
		t.Fatal(err)
	}
	analytic := func(tt float64) float64 {
		g := func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return x - tau*(1-math.Exp(-x/tau))
		}
		return (g(tt) - g(tt-tr)) / tr
	}
	for tt := 0.1; tt < 10; tt += 0.37 {
		if got, want := ramp(tt), analytic(tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("v(%g) = %.14g, want %.14g", tt, got, want)
		}
	}
	if ramp(0) != 0 {
		t.Error("v(0) != 0")
	}
	if v := ramp(60); math.Abs(v-1) > 1e-9 {
		t.Errorf("v(∞) = %g", v)
	}
}

func TestRampResponseZeroRiseIsStep(t *testing.T) {
	r, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, 2))
	ramp, err := r.RampResponse(0)
	if err != nil {
		t.Fatal(err)
	}
	step, _ := r.StepResponse()
	for tt := 0.2; tt < 6; tt += 0.5 {
		if math.Abs(ramp(tt)-step(tt)) > 1e-12 {
			t.Fatalf("mismatch at %g", tt)
		}
	}
}

func TestRampResponseConvergesToStepAsRiseShrinks(t *testing.T) {
	// Second-order underdamped: tiny rise time ≈ step response.
	r, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, 0.4, 1))
	step, _ := r.StepResponse()
	ramp, err := r.RampResponse(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0.3; tt < 12; tt += 0.7 {
		if math.Abs(ramp(tt)-step(tt)) > 1e-3 {
			t.Fatalf("rise→0 limit broken at t=%g: %g vs %g", tt, ramp(tt), step(tt))
		}
	}
}

func TestRampResponseErrors(t *testing.T) {
	r, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, 2))
	if _, err := r.RampResponse(-1); err == nil {
		t.Error("negative rise accepted")
	}
	improper, _ := New(numeric.NewPoly(0, 0, 1), numeric.NewPoly(1, 1))
	if _, err := improper.RampResponse(1); err == nil {
		t.Error("improper accepted")
	}
	atOrigin, _ := New(numeric.NewPoly(1), numeric.NewPoly(0, 1, 1))
	if _, err := atOrigin.RampResponse(1); err == nil {
		t.Error("origin pole accepted")
	}
	repeated, _ := New(numeric.NewPoly(1), numeric.NewPoly(1, 2, 1))
	if _, err := repeated.RampResponse(1); err == nil {
		t.Error("repeated pole accepted")
	}
}
