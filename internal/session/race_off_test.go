//go:build !race

package session

// raceEnabled reports whether the race detector is compiled in; timing
// assertions skip under it (instrumentation distorts relative engine
// costs, not just absolute ones).
const raceEnabled = false
