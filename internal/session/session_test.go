package session

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"rlckit/internal/netgen"
	"rlckit/internal/rlctree"
	"rlckit/internal/tech"
)

// buildSmall returns a small asymmetric tree with two sinks.
func buildSmall(t testing.TB) (*rlctree.Tree, rlctree.Drive) {
	t.Helper()
	tr, err := rlctree.New(5e-15)
	if err != nil {
		t.Fatal(err)
	}
	stem, err := tr.Add(0, 20, 0.5e-9, 40e-15)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tr.Add(stem, 15, 0.4e-9, 30e-15)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Add(stem, 40, 1e-9, 60e-15)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(a, 20e-15); err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(b, 35e-15); err != nil {
		t.Fatal(err)
	}
	return tr, rlctree.Drive{Rtr: 80}
}

// buildClockTree returns a 64-sink H-tree instance — the tree class
// whose anchored reduced build certifies, exercising the session's
// O(q²) fast path.
func buildClockTree(t testing.TB) netgen.TreeNet {
	t.Helper()
	node, err := tech.Lookup("180nm")
	if err != nil {
		t.Fatal(err)
	}
	trees, err := netgen.RandomTreeBatch(42, node, netgen.TreeClockH, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return trees[0]
}

// randomEdit applies one deterministic pseudo-random value edit
// through Apply.
func randomEdit(t testing.TB, s *Session, rng *rand.Rand) {
	t.Helper()
	tr := s.Tree()
	n := tr.Len()
	f := 0.85 + 0.3*rng.Float64()
	var e Edit
	switch rng.Intn(3) {
	case 0:
		node := 1 + rng.Intn(n-1)
		r, l, _, err := tr.Branch(node)
		if err != nil {
			t.Fatal(err)
		}
		e = Edit{Op: OpBranch, Node: node, R: r * f, L: l * f}
	case 1:
		sinks := tr.Sinks()
		node := sinks[rng.Intn(len(sinks))]
		cl, err := tr.SinkLoad(node)
		if err != nil {
			t.Fatal(err)
		}
		if cl == 0 {
			cl = 1e-15
		}
		e = Edit{Op: OpLoad, Node: node, CL: cl * f}
	default:
		d := s.Drive()
		e = Edit{Op: OpDriver, Rtr: math.Max(1, d.Rtr*f), V: 1}
	}
	if err := s.Apply([]Edit{e}); err != nil {
		t.Fatal(err)
	}
}

// sameBits fails unless both results carry identical bits in every
// column — the session contract for the closed and MNA engines.
func sameBits(t *testing.T, tag string, got, want *rlctree.Result) {
	t.Helper()
	if got.Engine != want.Engine || got.Reduced != want.Reduced || got.Fallback != want.Fallback {
		t.Fatalf("%s: flags differ", tag)
	}
	if len(got.Sinks) != len(want.Sinks) {
		t.Fatalf("%s: sink count %d vs %d", tag, len(got.Sinks), len(want.Sinks))
	}
	eq := func(what string, a, b float64) {
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: %s differs: %v vs %v", tag, what, a, b)
		}
	}
	for i := range got.Sinks {
		g, w := &got.Sinks[i], &want.Sinks[i]
		if g.Node != w.Node || g.InDomain != w.InDomain {
			t.Fatalf("%s: sink %d identity differs", tag, i)
		}
		eq("Delay", g.Delay, w.Delay)
		eq("DelayClosed", g.DelayClosed, w.DelayClosed)
		eq("DelayRC", g.DelayRC, w.DelayRC)
		eq("M1", g.M1, w.M1)
		eq("Zeta", g.Zeta, w.Zeta)
		eq("OmegaN", g.OmegaN, w.OmegaN)
	}
	eq("MaxSkew", got.MaxSkew, want.MaxSkew)
	eq("SkewErrPct", got.SkewErrPct, want.SkewErrPct)
}

// TestSessionMatchesColdAnalysis: after every edit of a mixed script,
// the session's closed and MNA results must be bit-identical to a
// cold rlctree.Analyze of the session's current tree.
func TestSessionMatchesColdAnalysis(t *testing.T) {
	tr, d := buildSmall(t)
	s, err := Open(tr, d, rlctree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 12; step++ {
		randomEdit(t, s, rng)
		for _, eng := range []rlctree.Engine{rlctree.EngineClosed, rlctree.EngineMNA} {
			got, err := s.Result(context.Background(), eng)
			if err != nil {
				t.Fatalf("step %d %v: %v", step, eng, err)
			}
			want, err := rlctree.Analyze(s.Tree(), s.Drive(), rlctree.Config{Engine: eng})
			if err != nil {
				t.Fatalf("step %d %v cold: %v", step, eng, err)
			}
			sameBits(t, "session", got, want)
		}
	}
}

// TestSessionApplyAtomic: a batch whose tail edit is invalid must roll
// back entirely — the next result matches a cold analysis of the
// pre-batch tree bit for bit.
func TestSessionApplyAtomic(t *testing.T) {
	tr, d := buildSmall(t)
	s, err := Open(tr, d, rlctree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Tree()
	err = s.Apply([]Edit{
		{Op: OpBranch, Node: 1, R: 35, L: 0.7e-9},
		{Op: OpLoad, Node: 2, CL: 25e-15},
		{Op: OpBranch, Node: 99, R: 1, L: 1e-9}, // invalid: no such node
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	got, rerr := s.Result(context.Background(), rlctree.EngineClosed)
	if rerr != nil {
		t.Fatal(rerr)
	}
	want, rerr := rlctree.Analyze(before, d, rlctree.Config{Engine: rlctree.EngineClosed})
	if rerr != nil {
		t.Fatal(rerr)
	}
	sameBits(t, "rolled back", got, want)
	if s.Stats().Gen != 0 {
		t.Errorf("failed batch bumped the generation to %d", s.Stats().Gen)
	}
	// The batch must apply cleanly without the poison edit.
	if err := s.Apply([]Edit{
		{Op: OpBranch, Node: 1, R: 35, L: 0.7e-9},
		{Op: OpLoad, Node: 2, CL: 25e-15},
	}); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Gen != 1 {
		t.Errorf("gen %d after one applied batch", s.Stats().Gen)
	}
}

// TestSessionResultCache: re-reading an unchanged state returns the
// cached result without re-running an engine; any edit invalidates it.
func TestSessionResultCache(t *testing.T) {
	tr, d := buildSmall(t)
	s, err := Open(tr, d, rlctree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Result(context.Background(), rlctree.EngineMNA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Result(context.Background(), rlctree.EngineMNA)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("unchanged state did not reuse the cached result")
	}
	if s.Stats().CacheHits != 1 {
		t.Errorf("cache hits %d, want 1", s.Stats().CacheHits)
	}
	if err := s.Apply([]Edit{{Op: OpDriver, Rtr: 60, V: 1}}); err != nil {
		t.Fatal(err)
	}
	r3, err := s.Result(context.Background(), rlctree.EngineMNA)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("edit did not invalidate the cached result")
	}
}

// TestSessionClosed: every operation on a closed session fails with
// ErrClosed.
func TestSessionClosed(t *testing.T) {
	tr, d := buildSmall(t)
	s, err := Open(tr, d, rlctree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Apply([]Edit{{Op: OpDriver, Rtr: 60, V: 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply on closed session: %v", err)
	}
	if _, err := s.Result(context.Background(), rlctree.EngineClosed); !errors.Is(err, ErrClosed) {
		t.Errorf("Result on closed session: %v", err)
	}
}

// TestSessionDeterministicReplay: replaying the same edit script into
// two independent sessions yields bit-identical results at every step
// — the property that makes session traffic worker-count independent.
func TestSessionDeterministicReplay(t *testing.T) {
	tn := buildClockTree(t)
	open := func() *Session {
		s, err := Open(tn.Tree, tn.Drive, rlctree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := open(), open()
	rng1, rng2 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for step := 0; step < 6; step++ {
		randomEdit(t, s1, rng1)
		randomEdit(t, s2, rng2)
		r1, err := s1.Result(context.Background(), rlctree.EngineReduced)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Result(context.Background(), rlctree.EngineReduced)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "replay", r1, r2)
	}
}

// TestWhatIfSpeedupAtLeast10x: the acceptance gate for the what-if
// engine — on a 64-sink clock tree, an edit-and-reanalyze loop through
// the session (certified reduced fast path) must run at least 10×
// faster per edit than naive full-order re-analysis (a cold
// EngineMNA run of the edited tree, the reference the reduced answers
// are certified against). Measured ratios are ~15-20×; the 10× bound
// leaves margin for loaded CI machines.
func TestWhatIfSpeedupAtLeast10x(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("timing test: race instrumentation distorts relative engine costs")
	}
	tn := buildClockTree(t)
	s, err := Open(tn.Tree, tn.Drive, rlctree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Open-time build, outside the measured edit loop (it amortizes over
	// the session's lifetime).
	if _, err := s.Result(ctx, rlctree.EngineReduced); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const edits = 200
	start := time.Now()
	for i := 0; i < edits; i++ {
		randomEdit(t, s, rng)
		res, err := s.Result(ctx, rlctree.EngineReduced)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reduced || res.Fallback {
			t.Fatalf("edit %d left the reduced fast path (reduced=%v fallback=%v)", i, res.Reduced, res.Fallback)
		}
	}
	perEdit := time.Since(start) / edits
	if st := s.Stats(); st.Fallbacks != 0 {
		t.Fatalf("fast-path script fell back: %+v", st)
	}
	// Naive baseline: full-order re-analysis of the edited tree, sampled
	// and averaged (running it 200 times would dominate the suite).
	const samples = 4
	tr, d := s.Tree(), s.Drive()
	start = time.Now()
	for i := 0; i < samples; i++ {
		if _, err := rlctree.Analyze(tr, d, rlctree.Config{Engine: rlctree.EngineMNA}); err != nil {
			t.Fatal(err)
		}
	}
	perCold := time.Since(start) / samples
	ratio := float64(perCold) / float64(perEdit)
	t.Logf("session %v/edit vs naive full re-analysis %v/edit: %.1f×", perEdit, perCold, ratio)
	if ratio < 10 {
		t.Errorf("what-if speedup %.1f× < 10× (session %v/edit, naive %v/edit)", ratio, perEdit, perCold)
	}
}

// BenchmarkWhatIfEditSequence replays a 1000-edit what-if script
// (branch, load, and driver edits) against a 64-sink clock tree,
// reading the closed-form delay table after every edit — the
// interactive what-if loop the session exists for. Gated in
// cmd/benchgate.
func BenchmarkWhatIfEditSequence(b *testing.B) {
	tn := buildClockTree(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(tn.Tree, tn.Drive, rlctree.Config{})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(23))
		for e := 0; e < 1000; e++ {
			randomEdit(b, s, rng)
			if _, err := s.Result(ctx, rlctree.EngineClosed); err != nil {
				b.Fatal(err)
			}
		}
	}
}
