package session

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rlckit/internal/rlctree"
)

// TestSessionHistoryReplay: History must return the applied batches in
// order, and replaying them into a fresh Open must reproduce the
// session's Result bit-for-bit — the contract the serving layer's
// crash-recovery journal depends on.
func TestSessionHistoryReplay(t *testing.T) {
	tr, d := buildSmall(t)
	cfg := rlctree.Config{}
	s, err := Open(tr, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		randomEdit(t, s, rng)
	}
	// A failed batch must not appear in the history.
	if err := s.Apply([]Edit{{Op: "bogus"}}); err == nil {
		t.Fatal("invalid edit accepted")
	}
	// An empty batch must not appear either.
	if err := s.Apply(nil); err != nil {
		t.Fatal(err)
	}

	hist := s.History()
	if len(hist) != 6 {
		t.Fatalf("history has %d batches, want 6", len(hist))
	}
	// The returned copy must be isolated from the session.
	hist[0][0].R = -1
	if s.History()[0][0].R == -1 {
		t.Fatal("History returned aliased storage")
	}
	hist = s.History()

	replay, err := Open(tr, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()
	for i, batch := range hist {
		if err := replay.Apply(batch); err != nil {
			t.Fatalf("replaying batch %d: %v", i, err)
		}
	}
	ctx := context.Background()
	for _, eng := range []rlctree.Engine{rlctree.EngineClosed, rlctree.EngineMNA} {
		want, err := s.Result(ctx, eng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := replay.Result(ctx, eng)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, fmt.Sprint(eng), got, want)
	}
}
